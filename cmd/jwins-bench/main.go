// Command jwins-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	jwins-bench -exp table1            # Table I + Figure 4 (all 5 datasets)
//	jwins-bench -exp fig2              # wavelet vs FFT vs random reconstruction
//	jwins-bench -exp fig3              # randomized cut-off in action
//	jwins-bench -exp fig5              # run-to-target-accuracy comparison
//	jwins-bench -exp fig6              # JWINS vs CHOCO at 20%/10% budgets
//	jwins-bench -exp fig7              # dynamic vs static topologies
//	jwins-bench -exp fig8              # ablation study
//	jwins-bench -exp fig9              # metadata compression
//	jwins-bench -exp fig10             # scalability sweep
//	jwins-bench -exp ext-asyncchurn    # event-driven stragglers + churn
//	jwins-bench -exp ext-replay        # trace record/replay parity + staleness
//	jwins-bench -exp ext-dyntopo       # epoch-randomized topologies at 96-384 nodes
//	jwins-bench -exp ext-scale         # async engine at 256-8192 nodes (sampled eval from 2048)
//	jwins-bench -exp ext-semiasync     # aggregation policies x heterogeneity
//	jwins-bench -exp all               # everything, in paper order
//
// Flags: -scale micro|small|paper (default small), -seed N,
// -datasets a,b,c (table1/fig5 only).
//
// Performance mode: -bench-json FILE runs the engine + hot-path benchmark
// suite (see internal/perf), checks serial-vs-parallel determinism, and
// writes a BENCH_*.json artifact; -bench-quick runs each benchmark once
// (CI smoke). -cpuprofile / -memprofile write pprof profiles of whichever
// mode ran, so regressions are diagnosable without editing code:
//
//	jwins-bench -bench-json BENCH_1.json
//	jwins-bench -exp table1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/perf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jwins-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expName    = flag.String("exp", "all", "experiment: fig2, fig3, table1, fig5..fig10, ext-*, or all")
		scaleName  = flag.String("scale", "small", "experiment scale: micro, small, or paper")
		seed       = flag.Uint64("seed", 42, "root random seed")
		datasets   = flag.String("datasets", "", "comma-separated dataset filter for table1/fig5")
		outDir     = flag.String("out", "", "directory for per-experiment CSV files (optional)")
		benchJSON  = flag.String("bench-json", "", "run the benchmark suite and write a BENCH_*.json report to this path (skips experiments)")
		benchQuick = flag.Bool("bench-quick", false, "with -bench-json: run each benchmark once (-benchtime=1x semantics)")
		evalSample = flag.Int("eval-sample", 0, "ext-scale: force this rotating eval subset size on every arm (0 = exact below 2048 nodes, 64-node sample above)")
		evalRotate = flag.Int("eval-rotate", 0, "ext-scale: advance the eval sampling window every k eval rows (0/1 = every row)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this path on exit")
	)
	flag.Parse()
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jwins-bench: memprofile:", err)
				return
			}
			defer f.Close()
			// The GC must run before the heap is profiled: WriteHeapProfile
			// reports the live set as of the last collection, so skipping it
			// snapshots whatever garbage the final iteration left and the
			// profile overstates retained memory by that noise.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "jwins-bench: memprofile:", err)
			}
		}()
	}

	if *benchJSON != "" {
		return runBenchSuite(*benchJSON, *benchQuick)
	}

	scale, err := experiments.ParseScale(*scaleName)
	if err != nil {
		return err
	}
	var filter []string
	if *datasets != "" {
		filter = strings.Split(*datasets, ",")
	}

	names := []string{*expName}
	if *expName == "all" {
		names = []string{"fig2", "fig3", "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
			"ext-powergossip", "ext-adaptive", "ext-faults", "ext-asyncchurn", "ext-replay", "ext-dyntopo", "ext-scale", "ext-semiasync"}
	}
	for _, name := range names {
		start := time.Now()
		var result fmt.Stringer
		switch name {
		case "fig2":
			result, err = experiments.Fig2(scale, *seed)
		case "fig3":
			result, err = experiments.Fig3(scale, *seed)
		case "table1", "fig4":
			result, err = experiments.Table1(scale, *seed, filter)
		case "fig5":
			result, err = experiments.Fig5(scale, *seed, filter)
		case "fig6":
			result, err = experiments.Fig6(scale, *seed)
		case "fig7":
			result, err = experiments.Fig7(scale, *seed)
		case "fig8":
			result, err = experiments.Fig8(scale, *seed)
		case "fig9":
			result, err = experiments.Fig9(scale, *seed)
		case "fig10":
			result, err = experiments.Fig10(scale, *seed)
		case "ext-powergossip":
			result, err = experiments.ExtPowerGossip(scale, *seed)
		case "ext-adaptive":
			result, err = experiments.ExtAdaptive(scale, *seed)
		case "ext-faults":
			result, err = experiments.ExtFaults(scale, *seed)
		case "ext-asyncchurn":
			result, err = experiments.ExtAsyncChurn(scale, *seed)
		case "ext-replay":
			result, err = experiments.ExtReplay(scale, *seed)
		case "ext-dyntopo":
			result, err = experiments.ExtDynTopo(scale, *seed)
		case "ext-scale":
			result, err = experiments.ExtScaleWith(scale, *seed,
				experiments.ExtScaleOpts{EvalSample: *evalSample, EvalRotate: *evalRotate})
		case "ext-semiasync":
			result, err = experiments.ExtSemiAsync(scale, *seed)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("=== %s (scale=%s, seed=%d, took %s)\n%s\n", name, scale, *seed, time.Since(start).Round(time.Millisecond), result)
		if *outDir != "" {
			if c, ok := result.(experiments.CSVer); ok {
				path := filepath.Join(*outDir, name+".csv")
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					return fmt.Errorf("%s: writing %s: %w", name, path, err)
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
	}
	return nil
}

// runBenchSuite measures the standard suite, verifies that parallel engine
// execution is bit-identical to serial, and writes the JSON artifact. A
// determinism mismatch is a hard error (CI's bench smoke job relies on the
// non-zero exit).
func runBenchSuite(path string, quick bool) error {
	fmt.Printf("=== benchmark suite (quick=%v, NumCPU=%d)\n", quick, runtime.NumCPU())
	rep, err := perf.Run(quick, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		return err
	}
	fmt.Print("determinism check (serial vs parallel): ")
	if err := perf.CheckDeterminism(); err != nil {
		fmt.Println("FAIL")
		return fmt.Errorf("determinism check: %w", err)
	}
	fmt.Println("ok")
	if err := rep.WriteJSON(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
