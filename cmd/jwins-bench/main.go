// Command jwins-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	jwins-bench -exp table1            # Table I + Figure 4 (all 5 datasets)
//	jwins-bench -exp fig2              # wavelet vs FFT vs random reconstruction
//	jwins-bench -exp fig3              # randomized cut-off in action
//	jwins-bench -exp fig5              # run-to-target-accuracy comparison
//	jwins-bench -exp fig6              # JWINS vs CHOCO at 20%/10% budgets
//	jwins-bench -exp fig7              # dynamic vs static topologies
//	jwins-bench -exp fig8              # ablation study
//	jwins-bench -exp fig9              # metadata compression
//	jwins-bench -exp fig10             # scalability sweep
//	jwins-bench -exp ext-asyncchurn    # event-driven stragglers + churn
//	jwins-bench -exp ext-replay        # trace record/replay parity + staleness
//	jwins-bench -exp all               # everything, in paper order
//
// Flags: -scale micro|small|paper (default small), -seed N,
// -datasets a,b,c (table1/fig5 only).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jwins-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expName   = flag.String("exp", "all", "experiment: fig2, fig3, table1, fig5..fig10, ext-*, or all")
		scaleName = flag.String("scale", "small", "experiment scale: micro, small, or paper")
		seed      = flag.Uint64("seed", 42, "root random seed")
		datasets  = flag.String("datasets", "", "comma-separated dataset filter for table1/fig5")
		outDir    = flag.String("out", "", "directory for per-experiment CSV files (optional)")
	)
	flag.Parse()
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	scale, err := experiments.ParseScale(*scaleName)
	if err != nil {
		return err
	}
	var filter []string
	if *datasets != "" {
		filter = strings.Split(*datasets, ",")
	}

	names := []string{*expName}
	if *expName == "all" {
		names = []string{"fig2", "fig3", "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
			"ext-powergossip", "ext-adaptive", "ext-faults", "ext-asyncchurn", "ext-replay"}
	}
	for _, name := range names {
		start := time.Now()
		var result fmt.Stringer
		switch name {
		case "fig2":
			result, err = experiments.Fig2(scale, *seed)
		case "fig3":
			result, err = experiments.Fig3(scale, *seed)
		case "table1", "fig4":
			result, err = experiments.Table1(scale, *seed, filter)
		case "fig5":
			result, err = experiments.Fig5(scale, *seed, filter)
		case "fig6":
			result, err = experiments.Fig6(scale, *seed)
		case "fig7":
			result, err = experiments.Fig7(scale, *seed)
		case "fig8":
			result, err = experiments.Fig8(scale, *seed)
		case "fig9":
			result, err = experiments.Fig9(scale, *seed)
		case "fig10":
			result, err = experiments.Fig10(scale, *seed)
		case "ext-powergossip":
			result, err = experiments.ExtPowerGossip(scale, *seed)
		case "ext-adaptive":
			result, err = experiments.ExtAdaptive(scale, *seed)
		case "ext-faults":
			result, err = experiments.ExtFaults(scale, *seed)
		case "ext-asyncchurn":
			result, err = experiments.ExtAsyncChurn(scale, *seed)
		case "ext-replay":
			result, err = experiments.ExtReplay(scale, *seed)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("=== %s (scale=%s, seed=%d, took %s)\n%s\n", name, scale, *seed, time.Since(start).Round(time.Millisecond), result)
		if *outDir != "" {
			if c, ok := result.(experiments.CSVer); ok {
				path := filepath.Join(*outDir, name+".csv")
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					return fmt.Errorf("%s: writing %s: %w", name, path, err)
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
	}
	return nil
}
