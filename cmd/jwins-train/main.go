// Command jwins-train runs a single decentralized training experiment and
// prints per-round metrics, for exploring algorithms and hyperparameters
// outside the fixed experiment grid.
//
// Example:
//
//	jwins-train -dataset cifar10 -algo jwins -nodes 16 -rounds 60
//	jwins-train -dataset movielens -algo choco -choco-gamma 0.4 -choco-frac 0.2
//	jwins-train -dataset shakespeare -algo full-sharing -dynamic
//	jwins-train -dataset cifar10 -algo jwins -async -churn 0.2 -compute-spread 0.5
//	jwins-train -dataset cifar10 -algo jwins -async -trace-out run.jsonl
//	jwins-train -dataset cifar10 -algo jwins -async -dynamic -epoch-sec 0.5
//	jwins-train -dataset cifar10 -algo jwins -async -policy bounded -stale-tau 2
//	jwins-train -dataset cifar10 -algo jwins -async -policy deadline -deadline-factor 1.5
//	jwins-train -dataset cifar10 -algo jwins -async -telemetry-addr localhost:9090
//
// -telemetry-addr serves live introspection over HTTP while the run executes:
// Prometheus text exposition on /metrics (async runs stream the engine's
// queue/wait/speculation/byte counters into it), Go expvar on /debug/vars,
// and the pprof profile endpoints under /debug/pprof/.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/choco"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/simulation"
	"repro/internal/trace"
	"repro/internal/vec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jwins-train:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset    = flag.String("dataset", "cifar10", "cifar10, movielens, shakespeare, celeba, or femnist")
		algo       = flag.String("algo", "jwins", "jwins, full-sharing, random-sampling, choco, jwins-no-wavelet, jwins-no-accumulation, jwins-no-cutoff")
		scaleName  = flag.String("scale", "small", "micro, small, or paper")
		nodes      = flag.Int("nodes", 0, "node count (0 = scale default)")
		rounds     = flag.Int("rounds", 0, "communication rounds (0 = workload default)")
		seed       = flag.Uint64("seed", 42, "root random seed")
		dynamic    = flag.Bool("dynamic", false, "re-randomize the topology (sync: every round; async: every epoch, see -epoch-sec)")
		target     = flag.Float64("target", 0, "stop at this test accuracy (0 = disabled)")
		budget     = flag.Float64("budget", 0, "JWINS low-budget alpha distribution: 0.2 or 0.1 (0 = default alphas)")
		randFrac   = flag.Float64("rand-frac", 0.37, "random-sampling share fraction")
		chocoGamma = flag.Float64("choco-gamma", 0.6, "CHOCO consensus step size")
		chocoFrac  = flag.Float64("choco-frac", 0.2, "CHOCO TopK fraction")
		wavelet    = flag.String("wavelet", "sym2", "wavelet basis for JWINS")
		levels     = flag.Int("levels", 4, "wavelet decomposition levels")

		// Evaluation schedule (sync and async). Exact all-node evaluation is
		// the default; large fleets opt into sampling.
		evalNodes  = flag.Int("eval-nodes", 0, "cap evaluated nodes to a seeded uniform subset fixed for the run (0 = all; previously the first k nodes, which biased toward low-index nodes)")
		evalSample = flag.Int("eval-sample", 0, "evaluate a seeded rotating subset of this many nodes per eval row (0 = exact); every node is visited within ceil(n/sample) eval rows")
		evalRotate = flag.Int("eval-rotate", 0, "with -eval-sample: advance the sampling window every k eval rows (0/1 = every row)")

		// Event-driven scheduler (async engine).
		async          = flag.Bool("async", false, "use the event-driven scheduler instead of synchronous rounds")
		gossip         = flag.Bool("gossip", false, "async: aggregate freshest payloads immediately instead of the local barrier (shorthand for -policy gossip)")
		policyName     = flag.String("policy", "", "async: aggregation policy: barrier, gossip, bounded, or deadline (empty = barrier)")
		staleK         = flag.Int("stale-k", 0, "async -policy bounded: aggregate once this many live-neighbor payloads arrived (0 = half the node degree)")
		staleTau       = flag.Int("stale-tau", 2, "async -policy bounded: max tolerated iteration lag before waiting")
		adaptiveTau    = flag.Bool("adaptive-tau", false, "async -policy bounded: retune tau each epoch to the observed lag p95")
		deadlineFactor = flag.Float64("deadline-factor", 1.5, "async -policy deadline: aggregate after this multiple of the node's nominal round length, dropping stragglers")
		churnFrac      = flag.Float64("churn", 0, "async: fraction of nodes that leave and rejoin mid-run")
		computeSpread  = flag.Float64("compute-spread", 0, "async: lognormal sigma on per-node compute time")
		bwSpread       = flag.Float64("bw-spread", 0, "async: lognormal sigma on per-node uplink bandwidth")
		latencySpread  = flag.Float64("latency-spread", 0, "async: lognormal sigma on per-node latency")
		traceOut       = flag.String("trace-out", "", "async: stream the executed schedule to this trace file as it runs (.jtb = binary, else JSONL; replay with jwins-trace)")
		epochSec       = flag.Float64("epoch-sec", 0, "async: topology epoch length in simulated seconds (0 with -dynamic = one nominal round)")
		mixingEvery    = flag.Int("mixing-every", 0, "async: compute the spectral gap only every k-th epoch (0/1 = every epoch, -1 = never; sampled-off epochs report NaN)")
		telemetryAddr  = flag.String("telemetry-addr", "", "serve /metrics (Prometheus), /debug/vars, and /debug/pprof on this address while the run executes")
	)
	flag.Parse()

	tf := trainFlags{
		Async: *async, Gossip: *gossip, Policy: *policyName,
		StaleK: *staleK, StaleTau: *staleTau, DeadlineFactor: *deadlineFactor,
		Churn: *churnFrac, ComputeSpread: *computeSpread, BwSpread: *bwSpread,
		LatencySpread: *latencySpread, TraceOut: *traceOut,
		EpochSec: *epochSec, MixingEvery: *mixingEvery,
		EvalNodes: *evalNodes, EvalSample: *evalSample, EvalRotate: *evalRotate,
	}
	if err := tf.validate(); err != nil {
		return err
	}

	scale, err := experiments.ParseScale(*scaleName)
	if err != nil {
		return err
	}
	w, err := experiments.NewWorkload(*dataset, scale, *nodes, *seed)
	if err != nil {
		return err
	}

	spec := experiments.AlgoSpec{Kind: experiments.Algo(*algo)}
	switch spec.Kind {
	case experiments.AlgoJWINS, experiments.AlgoJWINSNoWavelet, experiments.AlgoJWINSNoAccum, experiments.AlgoJWINSNoCutoff:
		cfg := core.DefaultJWINSConfig()
		cfg.Wavelet = *wavelet
		cfg.Levels = *levels
		if *budget != 0 {
			cfg.Alphas, err = core.BudgetAlphas(*budget)
			if err != nil {
				return err
			}
		}
		spec.JWINS = &cfg
	case experiments.AlgoRandom:
		spec.RandomFraction = *randFrac
	case experiments.AlgoChoco:
		spec.Choco = &choco.Config{Fraction: *chocoFrac, Gamma: *chocoGamma}
	}

	// Resolve the effective epoch length up front: the trace header must
	// record the value the engine actually rotates with, so replays can
	// validate their topology against the recording.
	effEpochSec := *epochSec
	if *async && *dynamic && effEpochSec <= 0 {
		effEpochSec = experiments.DefaultEpochSec(w)
	}

	// Resolve the aggregation policy the same way: the header records its
	// name and parameters, so a replaying engine can reject a mismatch.
	effStaleK := *staleK
	if effStaleK == 0 {
		if effStaleK = (w.Degree + 1) / 2; effStaleK < 1 {
			effStaleK = 1
		}
	}
	policy, err := simulation.PolicyByName(*policyName, effStaleK, *staleTau, *adaptiveTau, *deadlineFactor)
	if err != nil {
		return err
	}
	headerPolicy := policy
	if *gossip {
		headerPolicy = simulation.GossipPolicy{}
	}

	// The schedule streams to disk as it executes (bounded buffers), so
	// recording 1024-node runs does not hold O(events) in memory. Closing
	// writes the footer that makes the file a complete trace; a run killed
	// mid-way leaves a file that readers report as truncated.
	var recorder *trace.StreamRecorder
	if *traceOut != "" {
		recorder, err = trace.NewStreamRecorderFile(*traceOut, experiments.WithEvalSchedule(
			experiments.TraceHeaderForPolicy(
				w, experiments.Algo(*algo), *rounds, *seed, headerPolicy, *async && *dynamic, effEpochSec),
			*evalSample, *evalRotate))
		if err != nil {
			return err
		}
	}

	// Live introspection: the registry serves while the run executes. Engine
	// telemetry only exists under the async scheduler; a sync run still gets
	// the process-level endpoints (expvar, pprof).
	var tel *simulation.Telemetry
	if *telemetryAddr != "" {
		reg := metrics.New()
		if *async {
			tel = simulation.NewTelemetry()
			reg = tel.Registry()
		}
		srv, err := metrics.Serve(*telemetryAddr, reg)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics (also /debug/vars, /debug/pprof)\n", srv.Addr())
	}

	fmt.Printf("dataset=%s algo=%s nodes=%d degree=%d params=%d rounds=%d\n",
		w.Name, *algo, w.Nodes, w.Degree, w.NewModel(vec.NewRNG(*seed)).ParamCount(), pick(*rounds, w.Rounds))
	fmt.Printf("%-7s %-11s %-10s %-9s %-13s %-10s\n",
		"round", "train-loss", "test-loss", "test-acc", "sent-total", "sim-time")

	runSpec := experiments.RunSpec{
		Workload:       w,
		Algo:           spec,
		Rounds:         *rounds,
		TargetAccuracy: *target,
		Dynamic:        *dynamic,
		EpochSec:       effEpochSec,
		EvalNodes:      *evalNodes,
		EvalSample:     *evalSample,
		EvalRotate:     *evalRotate,
		Seed:           *seed,
		Async:          *async,
		Gossip:         *gossip,
		Policy:         policy,
		ChurnFraction:  *churnFrac,
		MixingEvery:    *mixingEvery,
		Telemetry:      tel,
		Het: simulation.Heterogeneity{
			ComputeSpread:   *computeSpread,
			BandwidthSpread: *bwSpread,
			LatencySpread:   *latencySpread,
		},
		OnRound: func(rm simulation.RoundMetrics) {
			if math.IsNaN(rm.TestAcc) {
				return
			}
			fmt.Printf("%-7d %-11.4f %-10.4f %-8.1f%% %-13s %-9.1fs\n",
				rm.Round+1, rm.TrainLoss, rm.TestLoss, rm.TestAcc*100,
				experiments.FormatBytes(rm.CumTotalBytes), rm.SimTime)
		},
	}
	if recorder != nil {
		runSpec.Recorder = recorder
	}
	res, err := experiments.Run(runSpec)
	if err != nil {
		if recorder != nil {
			// Abort, don't Close: a failed run must leave a file that reads
			// as truncated, not a finalized trace of rounds never executed.
			recorder.Abort()
		}
		return err
	}

	fmt.Printf("\nfinal: accuracy %.1f%%, loss %.4f, %s sent (%s metadata), %.1fs simulated\n",
		res.FinalAccuracy*100, res.FinalLoss,
		experiments.FormatBytes(res.TotalBytes), experiments.FormatBytes(res.MetaBytes), res.SimTime)
	if *async {
		fmt.Printf("staleness: mean %.3f, max %.0f, p95 %.3f iterations\n",
			res.StaleMean, res.StaleMax, res.StaleP95)
		polName := trace.PolicyBarrier
		if headerPolicy != nil {
			polName = headerPolicy.Name()
		}
		fmt.Printf("policy: %s, eff neighbors mean %.2f, drop rate %.2f%%, late drops %d\n",
			polName, res.EffNeighborsMean, res.DropRate*100, res.LateDrops)
		fmt.Printf("mixing: %d epochs, spectral gap mean %.4f (min %.4f), neighbor turnover %.4f\n",
			res.Epochs, res.SpectralGapMean, res.SpectralGapMin, res.TurnoverMean)
		if res.Telemetry != nil {
			ts := simulation.Summarize(res.Telemetry)
			fmt.Printf("telemetry: queue p95 %.0f, policy wait p95 %.3fs, speculation hit rate %.0f%%\n",
				ts.QueueP95, ts.WaitP95, ts.SpecHitRate*100)
		}
	}
	if recorder != nil {
		if err := recorder.Close(); err != nil {
			return fmt.Errorf("finalizing %s: %w", *traceOut, err)
		}
		fmt.Printf("trace: streamed %s (%d events; replay with: jwins-trace replay %s)\n",
			*traceOut, recorder.Len(), *traceOut)
	}
	if *target > 0 {
		if res.RoundsToTarget > 0 {
			fmt.Printf("target %.1f%% reached in %d rounds, %s\n",
				*target*100, res.RoundsToTarget, experiments.FormatBytes(res.BytesToTarget))
		} else {
			fmt.Printf("target %.1f%% not reached\n", *target*100)
		}
	}
	return nil
}

func pick(a, b int) int {
	if a > 0 {
		return a
	}
	return b
}

// errBadFlag is the typed rejection for invalid flag combinations and
// out-of-range values; match with errors.Is.
var errBadFlag = errors.New("invalid flag")

// trainFlags carries the scheduler-facing flag values through validation,
// keeping the rejection rules testable without a flag.FlagSet.
type trainFlags struct {
	Async, Gossip  bool
	Policy         string
	StaleK         int
	StaleTau       int
	DeadlineFactor float64
	Churn          float64
	ComputeSpread  float64
	BwSpread       float64
	LatencySpread  float64
	TraceOut       string
	EpochSec       float64
	MixingEvery    int
	EvalNodes      int
	EvalSample     int
	EvalRotate     int
}

// validate rejects flag combinations the engine would otherwise misinterpret.
// The async-only knobs are rejected without -async rather than silently
// ignored: a sync run has no schedule to record and no event times for
// policies/churn/heterogeneity to shape.
func (f trainFlags) validate() error {
	if !f.Async {
		switch {
		case f.Gossip:
			return fmt.Errorf("%w: -gossip requires -async (the synchronous engine has a single blocking aggregation policy)", errBadFlag)
		case f.Policy != "":
			return fmt.Errorf("%w: -policy requires -async (aggregation policies only exist under the event-driven scheduler)", errBadFlag)
		case f.Churn != 0:
			return fmt.Errorf("%w: -churn requires -async (synchronous runs model failures via the fault experiments instead)", errBadFlag)
		case f.ComputeSpread != 0 || f.BwSpread != 0 || f.LatencySpread != 0:
			return fmt.Errorf("%w: -compute-spread/-bw-spread/-latency-spread require -async (the synchronous time model is per-round, not per-node)", errBadFlag)
		case f.TraceOut != "":
			return fmt.Errorf("%w: -trace-out requires -async (only the event-driven scheduler produces an event trace)", errBadFlag)
		case f.EpochSec != 0:
			return fmt.Errorf("%w: -epoch-sec requires -async (simulated-time epochs only exist under the event-driven scheduler; sync -dynamic rotates per round)", errBadFlag)
		case f.MixingEvery != 0:
			return fmt.Errorf("%w: -mixing-every requires -async (spectral-gap sampling is per simulated-time epoch)", errBadFlag)
		}
	}
	switch f.Policy {
	case "", trace.PolicyBarrier, trace.PolicyGossip, trace.PolicyBounded, trace.PolicyDeadline:
	default:
		return fmt.Errorf("%w: -policy %q unknown (want barrier, gossip, bounded, or deadline)", errBadFlag, f.Policy)
	}
	if f.Gossip && f.Policy != "" {
		return fmt.Errorf("%w: -gossip and -policy conflict; -gossip is shorthand for -policy gossip", errBadFlag)
	}
	if f.StaleK < 0 {
		return fmt.Errorf("%w: -stale-k must be >= 0 (0 = half the node degree), got %d", errBadFlag, f.StaleK)
	}
	if f.StaleTau < 0 {
		return fmt.Errorf("%w: -stale-tau must be >= 0, got %d", errBadFlag, f.StaleTau)
	}
	if f.DeadlineFactor <= 0 {
		return fmt.Errorf("%w: -deadline-factor must be > 0, got %g", errBadFlag, f.DeadlineFactor)
	}
	if f.EpochSec < 0 {
		// A negative value would silently run static while recording a
		// bogus epoch length into the trace header, breaking replay.
		return fmt.Errorf("%w: -epoch-sec must be >= 0, got %g", errBadFlag, f.EpochSec)
	}
	if f.MixingEvery < -1 {
		return fmt.Errorf("%w: -mixing-every must be >= -1 (0/1 = every epoch, -1 = never), got %d", errBadFlag, f.MixingEvery)
	}
	if f.EvalNodes < 0 {
		return fmt.Errorf("%w: -eval-nodes must be >= 0 (0 = all), got %d", errBadFlag, f.EvalNodes)
	}
	if f.EvalSample < 0 {
		return fmt.Errorf("%w: -eval-sample must be >= 0 (0 = exact evaluation), got %d", errBadFlag, f.EvalSample)
	}
	if f.EvalRotate < 0 {
		return fmt.Errorf("%w: -eval-rotate must be >= 0 (0/1 = advance every eval row), got %d", errBadFlag, f.EvalRotate)
	}
	if f.EvalRotate > 1 && f.EvalSample == 0 {
		return fmt.Errorf("%w: -eval-rotate only applies with -eval-sample (exact evaluation has no rotation window)", errBadFlag)
	}
	return nil
}
