// Command jwins-train runs a single decentralized training experiment and
// prints per-round metrics, for exploring algorithms and hyperparameters
// outside the fixed experiment grid.
//
// Example:
//
//	jwins-train -dataset cifar10 -algo jwins -nodes 16 -rounds 60
//	jwins-train -dataset movielens -algo choco -choco-gamma 0.4 -choco-frac 0.2
//	jwins-train -dataset shakespeare -algo full-sharing -dynamic
//	jwins-train -dataset cifar10 -algo jwins -async -churn 0.2 -compute-spread 0.5
//	jwins-train -dataset cifar10 -algo jwins -async -trace-out run.jsonl
//	jwins-train -dataset cifar10 -algo jwins -async -dynamic -epoch-sec 0.5
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/choco"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/simulation"
	"repro/internal/trace"
	"repro/internal/vec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jwins-train:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset    = flag.String("dataset", "cifar10", "cifar10, movielens, shakespeare, celeba, or femnist")
		algo       = flag.String("algo", "jwins", "jwins, full-sharing, random-sampling, choco, jwins-no-wavelet, jwins-no-accumulation, jwins-no-cutoff")
		scaleName  = flag.String("scale", "small", "micro, small, or paper")
		nodes      = flag.Int("nodes", 0, "node count (0 = scale default)")
		rounds     = flag.Int("rounds", 0, "communication rounds (0 = workload default)")
		seed       = flag.Uint64("seed", 42, "root random seed")
		dynamic    = flag.Bool("dynamic", false, "re-randomize the topology (sync: every round; async: every epoch, see -epoch-sec)")
		target     = flag.Float64("target", 0, "stop at this test accuracy (0 = disabled)")
		budget     = flag.Float64("budget", 0, "JWINS low-budget alpha distribution: 0.2 or 0.1 (0 = default alphas)")
		randFrac   = flag.Float64("rand-frac", 0.37, "random-sampling share fraction")
		chocoGamma = flag.Float64("choco-gamma", 0.6, "CHOCO consensus step size")
		chocoFrac  = flag.Float64("choco-frac", 0.2, "CHOCO TopK fraction")
		wavelet    = flag.String("wavelet", "sym2", "wavelet basis for JWINS")
		levels     = flag.Int("levels", 4, "wavelet decomposition levels")

		// Event-driven scheduler (async engine).
		async         = flag.Bool("async", false, "use the event-driven scheduler instead of synchronous rounds")
		gossip        = flag.Bool("gossip", false, "async: aggregate freshest payloads immediately instead of the local barrier")
		churnFrac     = flag.Float64("churn", 0, "async: fraction of nodes that leave and rejoin mid-run")
		computeSpread = flag.Float64("compute-spread", 0, "async: lognormal sigma on per-node compute time")
		bwSpread      = flag.Float64("bw-spread", 0, "async: lognormal sigma on per-node uplink bandwidth")
		latencySpread = flag.Float64("latency-spread", 0, "async: lognormal sigma on per-node latency")
		traceOut      = flag.String("trace-out", "", "async: stream the executed schedule to this trace file as it runs (.jtb = binary, else JSONL; replay with jwins-trace)")
		epochSec      = flag.Float64("epoch-sec", 0, "async: topology epoch length in simulated seconds (0 with -dynamic = one nominal round)")
		mixingEvery   = flag.Int("mixing-every", 0, "async: compute the spectral gap only every k-th epoch (0/1 = every epoch, negative = never; sampled-off epochs report NaN)")
	)
	flag.Parse()

	// The async-only knobs are rejected without -async rather than silently
	// ignored: a sync run has no schedule to record and no event times for
	// gossip/churn/heterogeneity to shape.
	if !*async {
		switch {
		case *gossip:
			return fmt.Errorf("-gossip requires -async (the synchronous engine has a single blocking aggregation policy)")
		case *churnFrac != 0:
			return fmt.Errorf("-churn requires -async (synchronous runs model failures via the fault experiments instead)")
		case *computeSpread != 0 || *bwSpread != 0 || *latencySpread != 0:
			return fmt.Errorf("-compute-spread/-bw-spread/-latency-spread require -async (the synchronous time model is per-round, not per-node)")
		case *traceOut != "":
			return fmt.Errorf("-trace-out requires -async (only the event-driven scheduler produces an event trace)")
		case *epochSec != 0:
			return fmt.Errorf("-epoch-sec requires -async (simulated-time epochs only exist under the event-driven scheduler; sync -dynamic rotates per round)")
		case *mixingEvery != 0:
			return fmt.Errorf("-mixing-every requires -async (spectral-gap sampling is per simulated-time epoch)")
		}
	}
	if *epochSec < 0 {
		// A negative value would silently run static while recording a
		// bogus epoch length into the trace header, breaking replay.
		return fmt.Errorf("-epoch-sec must be >= 0, got %g", *epochSec)
	}

	scale, err := experiments.ParseScale(*scaleName)
	if err != nil {
		return err
	}
	w, err := experiments.NewWorkload(*dataset, scale, *nodes, *seed)
	if err != nil {
		return err
	}

	spec := experiments.AlgoSpec{Kind: experiments.Algo(*algo)}
	switch spec.Kind {
	case experiments.AlgoJWINS, experiments.AlgoJWINSNoWavelet, experiments.AlgoJWINSNoAccum, experiments.AlgoJWINSNoCutoff:
		cfg := core.DefaultJWINSConfig()
		cfg.Wavelet = *wavelet
		cfg.Levels = *levels
		if *budget != 0 {
			cfg.Alphas, err = core.BudgetAlphas(*budget)
			if err != nil {
				return err
			}
		}
		spec.JWINS = &cfg
	case experiments.AlgoRandom:
		spec.RandomFraction = *randFrac
	case experiments.AlgoChoco:
		spec.Choco = &choco.Config{Fraction: *chocoFrac, Gamma: *chocoGamma}
	}

	// Resolve the effective epoch length up front: the trace header must
	// record the value the engine actually rotates with, so replays can
	// validate their topology against the recording.
	effEpochSec := *epochSec
	if *async && *dynamic && effEpochSec <= 0 {
		effEpochSec = experiments.DefaultEpochSec(w)
	}

	// The schedule streams to disk as it executes (bounded buffers), so
	// recording 1024-node runs does not hold O(events) in memory. Closing
	// writes the footer that makes the file a complete trace; a run killed
	// mid-way leaves a file that readers report as truncated.
	var recorder *trace.StreamRecorder
	if *traceOut != "" {
		recorder, err = trace.NewStreamRecorderFile(*traceOut, experiments.TraceHeaderFor(
			w, experiments.Algo(*algo), *rounds, *seed, *gossip, *async && *dynamic, effEpochSec))
		if err != nil {
			return err
		}
	}

	fmt.Printf("dataset=%s algo=%s nodes=%d degree=%d params=%d rounds=%d\n",
		w.Name, *algo, w.Nodes, w.Degree, w.NewModel(vec.NewRNG(*seed)).ParamCount(), pick(*rounds, w.Rounds))
	fmt.Printf("%-7s %-11s %-10s %-9s %-13s %-10s\n",
		"round", "train-loss", "test-loss", "test-acc", "sent-total", "sim-time")

	runSpec := experiments.RunSpec{
		Workload:       w,
		Algo:           spec,
		Rounds:         *rounds,
		TargetAccuracy: *target,
		Dynamic:        *dynamic,
		EpochSec:       effEpochSec,
		Seed:           *seed,
		Async:          *async,
		Gossip:         *gossip,
		ChurnFraction:  *churnFrac,
		MixingEvery:    *mixingEvery,
		Het: simulation.Heterogeneity{
			ComputeSpread:   *computeSpread,
			BandwidthSpread: *bwSpread,
			LatencySpread:   *latencySpread,
		},
		OnRound: func(rm simulation.RoundMetrics) {
			if math.IsNaN(rm.TestAcc) {
				return
			}
			fmt.Printf("%-7d %-11.4f %-10.4f %-8.1f%% %-13s %-9.1fs\n",
				rm.Round+1, rm.TrainLoss, rm.TestLoss, rm.TestAcc*100,
				experiments.FormatBytes(rm.CumTotalBytes), rm.SimTime)
		},
	}
	if recorder != nil {
		runSpec.Recorder = recorder
	}
	res, err := experiments.Run(runSpec)
	if err != nil {
		if recorder != nil {
			// Abort, don't Close: a failed run must leave a file that reads
			// as truncated, not a finalized trace of rounds never executed.
			recorder.Abort()
		}
		return err
	}

	fmt.Printf("\nfinal: accuracy %.1f%%, loss %.4f, %s sent (%s metadata), %.1fs simulated\n",
		res.FinalAccuracy*100, res.FinalLoss,
		experiments.FormatBytes(res.TotalBytes), experiments.FormatBytes(res.MetaBytes), res.SimTime)
	if *async {
		fmt.Printf("staleness: mean %.3f, max %.0f, p95 %.3f iterations\n",
			res.StaleMean, res.StaleMax, res.StaleP95)
		fmt.Printf("mixing: %d epochs, spectral gap mean %.4f (min %.4f), neighbor turnover %.4f\n",
			res.Epochs, res.SpectralGapMean, res.SpectralGapMin, res.TurnoverMean)
	}
	if recorder != nil {
		if err := recorder.Close(); err != nil {
			return fmt.Errorf("finalizing %s: %w", *traceOut, err)
		}
		fmt.Printf("trace: streamed %s (%d events; replay with: jwins-trace replay %s)\n",
			*traceOut, recorder.Len(), *traceOut)
	}
	if *target > 0 {
		if res.RoundsToTarget > 0 {
			fmt.Printf("target %.1f%% reached in %d rounds, %s\n",
				*target*100, res.RoundsToTarget, experiments.FormatBytes(res.BytesToTarget))
		} else {
			fmt.Printf("target %.1f%% not reached\n", *target*100)
		}
	}
	return nil
}

func pick(a, b int) int {
	if a > 0 {
		return a
	}
	return b
}
