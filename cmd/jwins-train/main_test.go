package main

import (
	"errors"
	"testing"
)

// validBase is an async flag set every rule-specific mutation starts from.
func validBase() trainFlags {
	return trainFlags{Async: true, StaleTau: 2, DeadlineFactor: 1.5}
}

// TestValidateFlagsRejections: every malformed combination must be rejected
// with the typed errBadFlag, so main can distinguish usage errors from run
// failures.
func TestValidateFlagsRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*trainFlags)
	}{
		{"gossip-without-async", func(f *trainFlags) { f.Async = false; f.Gossip = true }},
		{"policy-without-async", func(f *trainFlags) { f.Async = false; f.Policy = "bounded" }},
		{"churn-without-async", func(f *trainFlags) { f.Async = false; f.Churn = 0.2 }},
		{"spread-without-async", func(f *trainFlags) { f.Async = false; f.ComputeSpread = 0.5 }},
		{"trace-without-async", func(f *trainFlags) { f.Async = false; f.TraceOut = "x.jtb" }},
		{"epoch-without-async", func(f *trainFlags) { f.Async = false; f.EpochSec = 0.5 }},
		{"mixing-without-async", func(f *trainFlags) { f.Async = false; f.MixingEvery = 2 }},
		{"unknown-policy", func(f *trainFlags) { f.Policy = "quorum" }},
		{"gossip-and-policy", func(f *trainFlags) { f.Gossip = true; f.Policy = "bounded" }},
		{"negative-stale-k", func(f *trainFlags) { f.Policy = "bounded"; f.StaleK = -1 }},
		{"negative-stale-tau", func(f *trainFlags) { f.Policy = "bounded"; f.StaleTau = -1 }},
		{"zero-deadline-factor", func(f *trainFlags) { f.Policy = "deadline"; f.DeadlineFactor = 0 }},
		{"negative-deadline-factor", func(f *trainFlags) { f.Policy = "deadline"; f.DeadlineFactor = -0.5 }},
		{"negative-epoch-sec", func(f *trainFlags) { f.EpochSec = -1 }},
		{"mixing-below-never", func(f *trainFlags) { f.MixingEvery = -2 }},
		{"negative-eval-nodes", func(f *trainFlags) { f.EvalNodes = -1 }},
		{"negative-eval-sample", func(f *trainFlags) { f.EvalSample = -8 }},
		{"negative-eval-rotate", func(f *trainFlags) { f.EvalSample = 8; f.EvalRotate = -2 }},
		{"rotate-without-sample", func(f *trainFlags) { f.EvalRotate = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validBase()
			tc.mut(&f)
			if err := f.validate(); !errors.Is(err, errBadFlag) {
				t.Fatalf("validate(%+v) = %v, want errBadFlag", f, err)
			}
		})
	}
}

// TestValidateFlagsAccepts: the combinations the engine supports must pass.
func TestValidateFlagsAccepts(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*trainFlags)
	}{
		{"sync-defaults", func(f *trainFlags) { f.Async = false }},
		{"async-defaults", func(f *trainFlags) {}},
		{"gossip", func(f *trainFlags) { f.Gossip = true }},
		{"policy-barrier", func(f *trainFlags) { f.Policy = "barrier" }},
		{"policy-bounded", func(f *trainFlags) { f.Policy = "bounded"; f.StaleK = 3 }},
		{"policy-deadline", func(f *trainFlags) { f.Policy = "deadline"; f.DeadlineFactor = 2 }},
		{"mixing-never", func(f *trainFlags) { f.MixingEvery = -1 }},
		{"mixing-sampled", func(f *trainFlags) { f.MixingEvery = 4 }},
		{"stale-k-sentinel", func(f *trainFlags) { f.Policy = "bounded"; f.StaleK = 0 }},
		{"eval-nodes-cap", func(f *trainFlags) { f.EvalNodes = 8 }},
		{"eval-sample-sync", func(f *trainFlags) { f.Async = false; f.EvalSample = 16 }},
		{"eval-sample-rotated", func(f *trainFlags) { f.EvalSample = 16; f.EvalRotate = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validBase()
			tc.mut(&f)
			if err := f.validate(); err != nil {
				t.Fatalf("validate(%+v) = %v, want nil", f, err)
			}
		})
	}
}
