package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perf"
	"repro/internal/simulation"
	"repro/internal/trace"
)

// TestStatsTruncatedZeroEvents: a recording killed before its first event (a
// header-only file) must yield stats without panicking, keep stdout
// machine-readable, and route the truncation warning to stderr.
func TestStatsTruncatedZeroEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jtb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := trace.NewStreamRecorder(f, trace.Header{
		Nodes: 4, Rounds: 3, Source: trace.SourceSim, Policy: trace.PolicyBarrier,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Flush(); err != nil {
		t.Fatal(err)
	}
	// No Close: the footer is missing, as after a mid-run kill.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr strings.Builder
	if err := statsCmd(path, &stdout, &stderr); err != nil {
		t.Fatalf("statsCmd on a truncated zero-event trace: %v", err)
	}
	if !strings.Contains(stdout.String(), "4 nodes") {
		t.Fatalf("stdout lacks the header line:\n%s", stdout.String())
	}
	if strings.Contains(stdout.String(), "WARNING") {
		t.Fatalf("truncation warning leaked to stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "WARNING") || !strings.Contains(stderr.String(), "truncated") {
		t.Fatalf("stderr lacks the truncation warning:\n%s", stderr.String())
	}
}

// TestStatsHardCorruption: a file that is not a trace at all must be a hard
// error (non-zero exit), not a warning.
func TestStatsHardCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.jtb")
	if err := os.WriteFile(path, []byte("not a trace\x00\xff\xfe"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if err := statsCmd(path, &stdout, &stderr); err == nil {
		t.Fatalf("statsCmd accepted garbage; stdout:\n%s", stdout.String())
	}
}

// TestTimeline256NodeRecording is the acceptance run for the timeline
// subcommand: record a real 256-node async run to disk, convert it, and
// check the output is valid Chrome trace-event JSON — every record carries
// the format's required keys (name/ph/ts/pid/tid; dur on complete events).
func TestTimeline256NodeRecording(t *testing.T) {
	if testing.Short() {
		t.Skip("records a 256-node engine run")
	}
	const rounds = 4
	nodes, ds, topo, err := perf.ScaleFleet(256)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "run256"+trace.BinaryExt)
	sr, err := trace.NewStreamRecorderFile(src, trace.Header{
		Nodes: len(nodes), Rounds: rounds, Source: trace.SourceSim, Policy: trace.PolicyBarrier,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := &simulation.AsyncEngine{
		Nodes: nodes, Topology: topo, TestSet: ds,
		Config: simulation.AsyncConfig{
			Config: simulation.Config{Rounds: rounds, EvalEvery: rounds, EvalNodes: 8},
			Het:    simulation.Heterogeneity{ComputeSpread: 0.3, Seed: perf.Seed},
			Record: sr,
		},
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(dir, "run256.json")
	var stdout, stderr strings.Builder
	if err := timelineCmd(src, dst, &stdout, &stderr); err != nil {
		t.Fatalf("timelineCmd: %v", err)
	}
	if stderr.Len() != 0 {
		t.Fatalf("clean recording produced a warning:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote "+dst) {
		t.Fatalf("stdout lacks the summary line:\n%s", stdout.String())
	}

	buf, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	// 256 nodes × 4 rounds: at minimum a train span and a wait span per
	// node-round, plus per-node metadata.
	if len(doc.TraceEvents) < 4*256 {
		t.Fatalf("only %d timeline records for a 256-node, %d-round run", len(doc.TraceEvents), rounds)
	}
	trains := 0
	for i, rec := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := rec[key]; !ok {
				t.Fatalf("record %d lacks required key %q: %v", i, key, rec)
			}
		}
		ph, _ := rec["ph"].(string)
		if ph == "X" {
			dur, ok := rec["dur"].(float64)
			if !ok && rec["dur"] != nil {
				t.Fatalf("record %d: dur is not a number: %v", i, rec)
			}
			if dur < 0 {
				t.Fatalf("record %d: negative dur: %v", i, rec)
			}
			if rec["name"] == "train" {
				trains++
			}
		}
	}
	if trains < 256*rounds {
		t.Fatalf("train spans = %d, want at least %d", trains, 256*rounds)
	}
}
