package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestStatsTruncatedZeroEvents: a recording killed before its first event (a
// header-only file) must yield stats without panicking, keep stdout
// machine-readable, and route the truncation warning to stderr.
func TestStatsTruncatedZeroEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jtb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := trace.NewStreamRecorder(f, trace.Header{
		Nodes: 4, Rounds: 3, Source: trace.SourceSim, Policy: trace.PolicyBarrier,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Flush(); err != nil {
		t.Fatal(err)
	}
	// No Close: the footer is missing, as after a mid-run kill.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr strings.Builder
	if err := statsCmd(path, &stdout, &stderr); err != nil {
		t.Fatalf("statsCmd on a truncated zero-event trace: %v", err)
	}
	if !strings.Contains(stdout.String(), "4 nodes") {
		t.Fatalf("stdout lacks the header line:\n%s", stdout.String())
	}
	if strings.Contains(stdout.String(), "WARNING") {
		t.Fatalf("truncation warning leaked to stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "WARNING") || !strings.Contains(stderr.String(), "truncated") {
		t.Fatalf("stderr lacks the truncation warning:\n%s", stderr.String())
	}
}

// TestStatsHardCorruption: a file that is not a trace at all must be a hard
// error (non-zero exit), not a warning.
func TestStatsHardCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.jtb")
	if err := os.WriteFile(path, []byte("not a trace\x00\xff\xfe"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if err := statsCmd(path, &stdout, &stderr); err == nil {
		t.Fatalf("statsCmd accepted garbage; stdout:\n%s", stdout.String())
	}
}
