// Command jwins-trace inspects, compares, and replays event traces recorded
// by the simulator (jwins-train -trace-out) or a real cluster (jwins-node).
//
//	jwins-trace stats run.jsonl           # counts, byte ledger, staleness
//	jwins-trace diff sim.jsonl real.jsonl # per-event time error, ordering
//	jwins-trace convert run.jsonl run.jtb # re-encode (JSONL <-> binary)
//	jwins-trace timeline run.jtb run.json # Chrome trace-event JSON (Perfetto)
//	jwins-trace replay run.jsonl          # re-execute through the simulator
//	jwins-trace replay -check run.jsonl   # exit non-zero on parity failure
//
// timeline converts a recording into the Chrome trace-event format: load the
// output at https://ui.perfetto.dev (or chrome://tracing) for a browsable
// Gantt of per-node train/wait spans, churn and deadline markers, epoch
// boundaries, and the cumulative wire-byte counter. Truncated recordings
// convert like stats computes: the readable prefix becomes a valid timeline
// and a warning lands on stderr.
//
// replay rebuilds the fleet from the trace header's metadata (dataset,
// scale, algo, seed), re-executes the recorded schedule through the async
// engine, and reports parity: emitted rows, the byte ledger against the
// trace's send ledger, and the event diff. For cluster traces it
// additionally runs a pure simulation of the same configuration and diffs it
// against the observed timings — the time-model error the cost model's
// claims rest on.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

// openStream opens path for event-by-event reading. The caller closes the
// returned file once the stream is drained.
func openStream(path string) (*trace.StreamReader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	sr, err := trace.NewStreamReader(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return sr, f, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jwins-trace:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: jwins-trace stats <file> | diff <a> <b> | convert <in> <out> | timeline <in> <out.json> | replay [-check] <file>")
}

func run() error {
	if len(os.Args) < 2 {
		return usage()
	}
	switch os.Args[1] {
	case "stats":
		if len(os.Args) != 3 {
			return usage()
		}
		return statsCmd(os.Args[2], os.Stdout, os.Stderr)

	case "diff":
		if len(os.Args) != 4 {
			return usage()
		}
		ra, fa, err := openStream(os.Args[2])
		if err != nil {
			return err
		}
		defer fa.Close()
		rb, fb, err := openStream(os.Args[3])
		if err != nil {
			return err
		}
		defer fb.Close()
		fmt.Printf("A = %s (%s), B = %s (%s)\n", os.Args[2], ra.Header().Source, os.Args[3], rb.Header().Source)
		// Both inputs stream through the matcher; the per-key match index is
		// held (one timestamp per B event), not either trace's event slice.
		d, err := trace.CompareReaders(ra, rb)
		if err != nil {
			return err
		}
		fmt.Print(d)
		return nil

	case "convert":
		if len(os.Args) != 4 {
			return usage()
		}
		tr, err := trace.ReadFile(os.Args[2])
		if err != nil {
			return err
		}
		if err := trace.WriteFile(os.Args[3], tr); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events)\n", os.Args[3], len(tr.Events))
		return nil

	case "timeline":
		if len(os.Args) != 4 {
			return usage()
		}
		return timelineCmd(os.Args[2], os.Args[3], os.Stdout, os.Stderr)

	case "replay":
		fs := flag.NewFlagSet("replay", flag.ContinueOnError)
		check := fs.Bool("check", false, "exit non-zero unless the replay matches the trace exactly")
		if err := fs.Parse(os.Args[2:]); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return usage()
		}
		return replay(fs.Arg(0), *check)

	default:
		return usage()
	}
}

// statsCmd implements the stats subcommand. The file is folded event by
// event, never held as a slice (what remains is O(nodes) plus one float per
// aggregation for the exact staleness P95) — and a recording cut off
// mid-write (a killed run) still yields the stats of its readable prefix,
// with a warning on stderr so piped stdout stays machine-readable. Hard
// corruption (an unreadable header or garbled event) is an error.
func statsCmd(path string, stdout, stderr io.Writer) error {
	h, stats, err := trace.ReadStatsFile(path)
	if err != nil && !errors.Is(err, trace.ErrTruncated) {
		return err
	}
	fmt.Fprintf(stdout, "%s: %s trace, %d nodes, %d rounds, %s policy\n",
		path, h.Source, h.Nodes, h.Rounds, h.Policy)
	if err != nil {
		fmt.Fprintf(stderr, "WARNING: trace is truncated (%v); stats cover the %d readable events\n", err, stats.Events)
	}
	fmt.Fprint(stdout, stats)
	return nil
}

// timelineCmd implements the timeline subcommand: src (JSONL or .jtb) is
// converted to Chrome trace-event JSON at dst. Truncation degrades gracefully
// — the readable prefix becomes a complete, loadable timeline — with the
// warning on stderr so scripted stdout stays clean.
func timelineCmd(src, dst string, stdout, stderr io.Writer) error {
	n, err := trace.WriteTimelineFile(dst, src)
	if err != nil && !errors.Is(err, trace.ErrTruncated) {
		return err
	}
	if err != nil {
		fmt.Fprintf(stderr, "WARNING: trace is truncated (%v); timeline covers the readable prefix\n", err)
	}
	fmt.Fprintf(stdout, "wrote %s (%d timeline records); load it at https://ui.perfetto.dev\n", dst, n)
	return nil
}

func replay(path string, check bool) error {
	tr, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	stats := trace.ComputeStats(tr)
	res, replayed, err := experiments.ReplayTrace(tr)
	if err != nil {
		return err
	}
	d := trace.Compare(replayed, tr)

	fmt.Printf("replayed %s (%s trace) through the simulator:\n", path, tr.Header.Source)
	fmt.Printf("  rows: %d/%d, final accuracy %.1f%%\n", len(res.Rounds), tr.Header.Rounds, res.FinalAccuracy*100)
	fmt.Printf("  byte ledger: replay %d vs trace %d (delta %d)\n",
		res.TotalBytes, stats.TotalBytes, res.TotalBytes-stats.TotalBytes)
	fmt.Printf("  schedule: %d matched, %d unmatched, %d/%d nodes reordered, time err max %.6fs\n",
		d.Matched, d.OnlyA+d.OnlyB, d.OrderMismatches, d.Nodes, d.TimeErrMax)

	inSync := d.InSync() && len(res.Rounds) == tr.Header.Rounds && res.TotalBytes == stats.TotalBytes

	// For a cluster trace, also measure how well the simulator's time model
	// predicts the observed wall clock: run the same configuration purely
	// simulated and diff it against the recording.
	if tr.Header.Source == trace.SourceCluster {
		if sim, err := simulatePrediction(tr); err != nil {
			fmt.Printf("  time-model comparison unavailable: %v\n", err)
		} else {
			md := trace.Compare(sim, tr)
			fmt.Printf("time-model error (pure sim vs observed wall clock):\n")
			fmt.Printf("  per-event: mean %.4fs, p95 %.4fs, max %.4fs\n", md.TimeErrMean, md.TimeErrP95, md.TimeErrMax)
			fmt.Printf("  duration: sim %.3fs vs real %.3fs (ratio %.3f)\n",
				md.DurationA, md.DurationB, ratio(md.DurationA, md.DurationB))
		}
	}

	if check && !inSync {
		return fmt.Errorf("replay parity check failed (rows %d/%d, byte delta %d, unmatched %d, reordered nodes %d)",
			len(res.Rounds), tr.Header.Rounds, res.TotalBytes-stats.TotalBytes, d.OnlyA+d.OnlyB, d.OrderMismatches)
	}
	if inSync {
		fmt.Println("replay parity: OK")
	}
	return nil
}

// simulatePrediction runs the trace's configuration through the plain async
// engine (default homogeneous profiles, no churn) and records the predicted
// schedule.
func simulatePrediction(tr *trace.Trace) (*trace.Trace, error) {
	spec, err := experiments.SpecFromTraceHeader(tr.Header)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder(tr.Header)
	rec.Trace().Header.Source = trace.SourceSim
	spec.Recorder = rec
	if _, err := experiments.Run(spec); err != nil {
		return nil, err
	}
	return rec.Trace(), nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
