// Command jwins-node runs one node of a real decentralized training cluster
// over TCP sockets — the multi-process counterpart of the simulator's
// event-driven schedule. One process acts as the coordinator (hands out node
// ids and the address map, fires the start signal, merges per-worker event
// logs into a wall-clock trace); every other process is a worker executing
// the local-barrier schedule against its neighbors.
//
// 4-node loopback cluster:
//
//	jwins-node -role coordinator -nodes 4 -listen 127.0.0.1:7600 \
//	    -dataset cifar10 -scale micro -rounds 6 -trace-out cluster.jsonl &
//	for i in 1 2 3 4; do jwins-node -role worker -coordinator 127.0.0.1:7600 & done
//	wait
//
// The emitted trace replays through the simulator (jwins-trace replay) to
// check schedule parity and measure the time model's error against observed
// wall-clock timings.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jwins-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		role    = flag.String("role", "worker", "coordinator or worker")
		listen  = flag.String("listen", "", "coordinator: control listen address (host:port); worker: data-plane listen address (default 127.0.0.1:0)")
		coord   = flag.String("coordinator", "", "worker: coordinator control address")
		timeout = flag.Duration("timeout", 5*time.Minute, "per-phase control timeout")

		// Coordinator-only run parameters (workers receive them over the
		// control plane).
		nodes    = flag.Int("nodes", 4, "coordinator: fleet size (= worker count)")
		rounds   = flag.Int("rounds", 6, "coordinator: per-node iteration budget")
		dataset  = flag.String("dataset", "cifar10", "coordinator: workload name")
		scale    = flag.String("scale", "micro", "coordinator: micro, small, or paper")
		algo     = flag.String("algo", "jwins", "coordinator: algorithm name")
		seed     = flag.Uint64("seed", 42, "coordinator: root random seed")
		traceOut = flag.String("trace-out", "", "coordinator: write the merged cluster trace here (.jtb = binary, else JSONL)")
	)
	flag.Parse()

	switch *role {
	case "coordinator":
		addr := *listen
		if addr == "" {
			addr = "127.0.0.1:7600"
		}
		cfg := cluster.RunConfig{
			Dataset: *dataset, Scale: *scale, Algo: *algo,
			Nodes: *nodes, Rounds: *rounds, Seed: *seed,
		}
		c, err := cluster.NewCoordinator(addr, cfg)
		if err != nil {
			return err
		}
		c.Timeout = *timeout
		fmt.Printf("coordinator listening on %s: %d nodes, %s/%s/%s, %d rounds, seed %d\n",
			c.Addr(), cfg.Nodes, cfg.Dataset, cfg.Scale, cfg.Algo, cfg.Rounds, cfg.Seed)
		tr, err := c.Run()
		if err != nil {
			return err
		}
		fmt.Print(trace.ComputeStats(tr))
		if *traceOut != "" {
			if err := trace.WriteFile(*traceOut, tr); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d events)\n", *traceOut, len(tr.Events))
		}
		return nil

	case "worker":
		if *coord == "" {
			return fmt.Errorf("worker needs -coordinator host:port")
		}
		dataListen := *listen
		if dataListen == "" {
			dataListen = "127.0.0.1:0"
		}
		return cluster.RunWorker(*coord, dataListen, *timeout)

	default:
		return fmt.Errorf("unknown role %q (want coordinator or worker)", *role)
	}
}
