// Command jwins-node runs one node of a real decentralized training cluster
// over TCP sockets — the multi-process counterpart of the simulator's
// event-driven schedule. One process acts as the coordinator (hands out node
// ids and the address map, fires the start signal, merges per-worker event
// logs into a wall-clock trace); every other process is a worker executing
// the local-barrier schedule against its neighbors.
//
// 4-node loopback cluster:
//
//	jwins-node -role coordinator -nodes 4 -listen 127.0.0.1:7600 \
//	    -dataset cifar10 -scale micro -rounds 6 -trace-out cluster.jsonl &
//	for i in 1 2 3 4; do jwins-node -role worker -coordinator 127.0.0.1:7600 & done
//	wait
//
// The emitted trace replays through the simulator (jwins-trace replay) to
// check schedule parity and measure the time model's error against observed
// wall-clock timings.
//
// -telemetry-addr serves live introspection over HTTP while the run executes:
// Prometheus text exposition on /metrics (workers stream their schedule
// progress — rounds, sends, bytes, barrier waits — into it), Go expvar on
// /debug/vars, and the pprof endpoints under /debug/pprof/.
//
// Both roles shut down gracefully on SIGINT/SIGTERM: the coordinator closes
// its control listener and finalizes -trace-out (a run cut short leaves a
// file readers report as truncated, never a silently corrupt one); a worker
// closes its control and data-plane sockets so every blocked peer unwinds.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jwins-node:", err)
		os.Exit(1)
	}
}

// interruptChan converts SIGINT/SIGTERM into a closed channel, the shape
// cluster.WorkerOptions.Interrupt and the coordinator's stop path consume.
func interruptChan() <-chan struct{} {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	intr := make(chan struct{})
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "jwins-node: %v: shutting down\n", s)
		close(intr)
		// A second signal kills the process the default way.
		signal.Stop(sig)
	}()
	return intr
}

func run() error {
	var (
		role    = flag.String("role", "worker", "coordinator or worker")
		listen  = flag.String("listen", "", "coordinator: control listen address (host:port); worker: data-plane listen address (default 127.0.0.1:0)")
		coord   = flag.String("coordinator", "", "worker: coordinator control address")
		timeout = flag.Duration("timeout", 5*time.Minute, "per-phase control timeout")

		// Coordinator-only run parameters (workers receive them over the
		// control plane).
		nodes    = flag.Int("nodes", 4, "coordinator: fleet size (= worker count)")
		rounds   = flag.Int("rounds", 6, "coordinator: per-node iteration budget")
		dataset  = flag.String("dataset", "cifar10", "coordinator: workload name")
		scale    = flag.String("scale", "micro", "coordinator: micro, small, or paper")
		algo     = flag.String("algo", "jwins", "coordinator: algorithm name")
		seed     = flag.Uint64("seed", 42, "coordinator: root random seed")
		traceOut = flag.String("trace-out", "", "coordinator: write the merged cluster trace here (.jtb = binary, else JSONL)")

		telemetryAddr = flag.String("telemetry-addr", "", "serve /metrics (Prometheus), /debug/vars, and /debug/pprof on this address while the run executes")
	)
	flag.Parse()

	intr := interruptChan()

	switch *role {
	case "coordinator":
		addr := *listen
		if addr == "" {
			addr = "127.0.0.1:7600"
		}
		cfg := cluster.RunConfig{
			Dataset: *dataset, Scale: *scale, Algo: *algo,
			Nodes: *nodes, Rounds: *rounds, Seed: *seed,
		}
		return runCoordinator(addr, cfg, *timeout, *traceOut, *telemetryAddr, intr)

	case "worker":
		if *coord == "" {
			return fmt.Errorf("worker needs -coordinator host:port")
		}
		dataListen := *listen
		if dataListen == "" {
			dataListen = "127.0.0.1:0"
		}
		return runWorker(*coord, dataListen, *timeout, *telemetryAddr, intr)

	default:
		return fmt.Errorf("unknown role %q (want coordinator or worker)", *role)
	}
}

// runCoordinator drives one coordinated run. The trace streams to traceOut
// through a StreamRecorder once the merged schedule is available; an
// interrupted or failed run aborts the recording so the file on disk reads as
// truncated rather than masquerading as a complete trace.
func runCoordinator(addr string, cfg cluster.RunConfig, timeout time.Duration, traceOut, telemetryAddr string, intr <-chan struct{}) error {
	c, err := cluster.NewCoordinator(addr, cfg)
	if err != nil {
		return err
	}
	c.Timeout = timeout
	go func() {
		<-intr
		c.Stop()
	}()

	if telemetryAddr != "" {
		// The coordinator has no per-round counters of its own; the endpoint
		// still serves the process-level surfaces (expvar, pprof) and an
		// empty exposition.
		srv, err := metrics.Serve(telemetryAddr, metrics.New())
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics (also /debug/vars, /debug/pprof)\n", srv.Addr())
	}

	var rec *trace.StreamRecorder
	if traceOut != "" {
		rec, err = trace.NewStreamRecorderFile(traceOut, cfg.Header())
		if err != nil {
			return err
		}
	}

	fmt.Printf("coordinator listening on %s: %d nodes, %s/%s/%s, %d rounds, seed %d\n",
		c.Addr(), cfg.Nodes, cfg.Dataset, cfg.Scale, cfg.Algo, cfg.Rounds, cfg.Seed)
	tr, err := c.Run()
	if err != nil {
		if rec != nil {
			// Abort, don't Close: the file must read as truncated, not as a
			// finalized trace of a run that never completed.
			rec.Abort()
		}
		if errors.Is(err, cluster.ErrStopped) {
			fmt.Println("coordinator stopped before the run completed")
		}
		return err
	}
	fmt.Print(trace.ComputeStats(tr))
	if rec != nil {
		for _, ev := range tr.Events {
			rec.Record(ev)
		}
		// Close writes the footer that makes the file a complete trace.
		if err := rec.Close(); err != nil {
			return fmt.Errorf("finalizing %s: %w", traceOut, err)
		}
		fmt.Printf("wrote %s (%d events)\n", traceOut, len(tr.Events))
	}
	return nil
}

// runWorker executes one worker, optionally serving its live metrics.
func runWorker(coordAddr, dataListen string, timeout time.Duration, telemetryAddr string, intr <-chan struct{}) error {
	opts := cluster.WorkerOptions{Timeout: timeout, Interrupt: intr}
	if telemetryAddr != "" {
		opts.Metrics = cluster.NewWorkerMetrics()
		srv, err := metrics.Serve(telemetryAddr, opts.Metrics.Registry())
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics (also /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	return cluster.RunWorkerOpts(coordAddr, dataListen, opts)
}
