// Package repro's benchmark harness: one testing.B target per table and
// figure of the paper (micro scale, so `go test -bench=.` terminates in
// minutes) plus micro-benchmarks of the primitives on JWINS's hot path.
// Full-scale regeneration is cmd/jwins-bench's job; recorded outputs live in
// EXPERIMENTS.md.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dwt"
	"repro/internal/experiments"
	"repro/internal/fourier"
	"repro/internal/nn"
	"repro/internal/perf"
	"repro/internal/sparsify"
	"repro/internal/topology"
	"repro/internal/vec"
)

const benchSeed = 42

// --- One benchmark per table/figure ----------------------------------------

func BenchmarkFigure2Reconstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Epochs) - 1
		b.ReportMetric(r.Wavelet[last], "waveletMSE")
		b.ReportMetric(r.Random[last], "randomMSE")
	}
}

func BenchmarkFigure3RandomizedCutoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, m := range r.MeanPerRound {
			mean += m
		}
		b.ReportMetric(mean/float64(len(r.MeanPerRound))*100, "meanAlpha%")
	}
}

// benchTable1Dataset runs one dataset's Table I row.
func benchTable1Dataset(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(experiments.Micro, benchSeed, []string{name})
		if err != nil {
			b.Fatal(err)
		}
		row := r.Rows[0]
		b.ReportMetric(row.AccJWINS, "jwinsAcc%")
		b.ReportMetric(row.NetworkSavings*100, "savings%")
	}
}

func BenchmarkTable1CIFAR10(b *testing.B)     { benchTable1Dataset(b, "cifar10") }
func BenchmarkTable1MovieLens(b *testing.B)   { benchTable1Dataset(b, "movielens") }
func BenchmarkTable1Shakespeare(b *testing.B) { benchTable1Dataset(b, "shakespeare") }
func BenchmarkTable1CelebA(b *testing.B)      { benchTable1Dataset(b, "celeba") }
func BenchmarkTable1FEMNIST(b *testing.B)     { benchTable1Dataset(b, "femnist") }

func BenchmarkFigure5RunToTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(experiments.Micro, benchSeed, []string{"cifar10"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[0].RoundsSaved), "roundsSaved")
	}
}

func BenchmarkFigure6VsChoco(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[1].AccJWINS-r.Rows[1].AccChoco, "accGain10%budget")
	}
}

func BenchmarkFigure7DynamicTopology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FullDynamic-r.FullStatic, "dynamicGain%")
	}
}

func BenchmarkFigure8Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Acc[string(experiments.AlgoJWINS)]-r.Acc[string(experiments.AlgoJWINSNoWavelet)], "waveletGain%")
	}
}

func BenchmarkFigure9Metadata(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Compression, "gammaCompressionX")
	}
}

func BenchmarkFigure10Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[len(r.Rows)-1].AccGain, "accGainLargestN%")
	}
}

// --- Engine throughput: synchronous vs event-driven -------------------------
//
// The fleets live in internal/perf so `go test -bench` and `jwins-bench
// -bench-json` measure identical workloads. Async benchmarks run at
// parallelism 1 (the serial reference) and at NumCPU, bracketing the worker
// pool's win; the parallelism-invariance tests assert the two are
// bit-identical in everything but wall-clock time.

// BenchmarkEngineSync16 measures synchronous-engine throughput: 10 rounds of
// a 16-node full-sharing run per iteration.
func BenchmarkEngineSync16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := perf.RunSync16(perf.MaxParallelism()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineAsync16 is the event-driven counterpart on identical inputs
// (homogeneous profiles, no churn), so sync vs async/p1 brackets the
// scheduler's bookkeeping overhead and p1 vs pmax the pool speedup.
func BenchmarkEngineAsync16(b *testing.B) {
	for _, p := range []int{1, perf.MaxParallelism()} {
		p := p
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				events, err := perf.RunAsync16(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(events), "events/run")
			}
		})
	}
}

// BenchmarkEngineAsyncChurn16 adds a straggler tail and 25% churn, the cost
// of the scenario the scheduler exists to express.
func BenchmarkEngineAsyncChurn16(b *testing.B) {
	for _, p := range []int{1, perf.MaxParallelism()} {
		p := p
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				events, err := perf.RunAsyncChurn16(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(events), "events/run")
			}
		})
	}
}

// BenchmarkEngineAsyncDynTopo16 rotates the topology every simulated epoch
// on top of the churned configuration: graph regeneration, spectral-gap
// estimation, state-sync sends, and buffer re-keying join the measured path.
func BenchmarkEngineAsyncDynTopo16(b *testing.B) {
	for _, p := range []int{1, perf.MaxParallelism()} {
		p := p
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				events, err := perf.RunAsyncDynTopo16(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(events), "events/run")
			}
		})
	}
}

// BenchmarkEngineAsync256 is the scale tier: 256 heterogeneous nodes on the
// lean MLP task, so scheduler cost (heap, pooled buffers, payload fan-out)
// dominates the measurement rather than SGD.
func BenchmarkEngineAsync256(b *testing.B) {
	for _, p := range []int{1, perf.MaxParallelism()} {
		p := p
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				events, err := perf.RunAsync256(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(events), "events/run")
			}
		})
	}
}

// BenchmarkEngineAsync1024 is the first sampled-eval tier: 1024 heterogeneous
// nodes, copy-on-write fleet construction, and a 64-node rotating eval subset
// per eval row.
func BenchmarkEngineAsync1024(b *testing.B) {
	for _, p := range []int{1, perf.MaxParallelism()} {
		p := p
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				events, err := perf.RunAsync1024(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(events), "events/run")
			}
		})
	}
}

// BenchmarkEngineAsync4096 is the 10k-ceiling tier: 4096 nodes under the same
// sampled-eval configuration, the largest fleet the committed BENCH baselines
// track.
func BenchmarkEngineAsync4096(b *testing.B) {
	for _, p := range []int{1, perf.MaxParallelism()} {
		p := p
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				events, err := perf.RunAsync4096(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(events), "events/run")
			}
		})
	}
}

// --- Primitive micro-benchmarks ---------------------------------------------

func benchParams(n int) []float64 {
	rng := vec.NewRNG(1)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func BenchmarkDWTForward(b *testing.B) {
	const n = 1 << 17
	tr, err := dwt.NewTransformer(n, dwt.MustByName("sym2"), 4)
	if err != nil {
		b.Fatal(err)
	}
	x := benchParams(n)
	out := make([]float64, tr.CoeffLen())
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Forward(x, out)
	}
}

func BenchmarkDWTInverse(b *testing.B) {
	const n = 1 << 17
	tr, err := dwt.NewTransformer(n, dwt.MustByName("sym2"), 4)
	if err != nil {
		b.Fatal(err)
	}
	x := benchParams(n)
	coeffs := make([]float64, tr.CoeffLen())
	tr.Forward(x, coeffs)
	out := make([]float64, n)
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Inverse(coeffs, out)
	}
}

func BenchmarkFFTForward(b *testing.B) {
	const n = 1 << 17
	tr, err := fourier.NewTransformer(n)
	if err != nil {
		b.Fatal(err)
	}
	x := benchParams(n)
	out := make([]float64, tr.CoeffLen())
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Forward(x, out)
	}
}

func BenchmarkTopKSelection(b *testing.B) {
	const n = 1 << 17
	x := benchParams(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparsify.TopKIndices(x, n/10)
	}
}

func BenchmarkEliasGammaEncode(b *testing.B) {
	const dim = 1 << 17
	idx := vec.NewRNG(2).SampleWithoutReplacement(dim, dim*37/100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.EncodeIndicesGamma(idx); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFloatCodec(b *testing.B, fc codec.FloatCodec) {
	b.Helper()
	vals := benchParams(1 << 16)
	b.SetBytes(int64(4 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := fc.Encode(vals)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fc.Decode(buf, len(vals)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloatCodecRaw32(b *testing.B)   { benchFloatCodec(b, codec.Raw32{}) }
func BenchmarkFloatCodecFlate32(b *testing.B) { benchFloatCodec(b, codec.PlaneFlate32{}) }
func BenchmarkFloatCodecXOR32(b *testing.B)   { benchFloatCodec(b, codec.XOR32{}) }

// BenchmarkJWINSShareAggregate measures one full JWINS communication round
// (share + aggregate) for a 100k-parameter model, excluding local training.
func BenchmarkJWINSShareAggregate(b *testing.B) {
	node, neighbor, err := perf.JWINSPair(100_000)
	if err != nil {
		b.Fatal(err)
	}
	wA, wB := perf.PairWeights(1), perf.PairWeights(0)
	msgsA := make(map[int][]byte, 1)
	msgsB := make(map[int][]byte, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p1, _, err := node.Share(i)
		if err != nil {
			b.Fatal(err)
		}
		p2, _, err := neighbor.Share(i)
		if err != nil {
			b.Fatal(err)
		}
		msgsA[1] = p2
		if err := node.Aggregate(i, wA, msgsA); err != nil {
			b.Fatal(err)
		}
		msgsB[0] = p1
		if err := neighbor.Aggregate(i, wB, msgsB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJWINSShare isolates the share half of the pipeline (accumulate,
// DWT, top-k, encode): the allocs/op here are the PR's zero-allocation
// acceptance metric. The flate32 sub-benchmark is the paper's default; the
// raw32 one shows the repository's own pipeline with compress/flate's
// internal allocations out of the picture.
func BenchmarkJWINSShare(b *testing.B) {
	for _, v := range microCodecVariants() {
		v := v
		b.Run(v.name, func(b *testing.B) {
			node, _, err := perf.JWINSPairCodec(100_000, v.fc)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := node.Share(0); err != nil { // warm the scratch buffers
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := node.Share(i + 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJWINSShareBatch is BenchmarkJWINSShare through the batched
// pipeline: one op runs a SharePipeline batch of 8 plan-sharing
// 100k-parameter nodes, and the reported ns/share compares directly against
// BenchmarkJWINSShare's ns/op (the batched path's acceptance bar is >= 30%
// under it). Per-node observables stay bit-identical to looped Share calls —
// this measures the same work, scheduled better.
func BenchmarkJWINSShareBatch(b *testing.B) {
	const width = 8
	for _, v := range microCodecVariants() {
		v := v
		b.Run(v.name, func(b *testing.B) {
			nodes, err := perf.JWINSBatchNodes(100_000, width, v.fc)
			if err != nil {
				b.Fatal(err)
			}
			pipe := &core.SharePipeline{}
			payloads := make([][]byte, width)
			bds := make([]codec.ByteBreakdown, width)
			if err := pipe.ShareBatch(nodes, payloads, bds); err != nil { // warm the scratch
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pipe.ShareBatch(nodes, payloads, bds); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*width), "ns/share")
		})
	}
}

// BenchmarkJWINSAggregate isolates the aggregate half (decode, partial
// average, inverse DWT, accumulator fold) by re-merging a fixed payload.
func BenchmarkJWINSAggregate(b *testing.B) {
	for _, v := range microCodecVariants() {
		v := v
		b.Run(v.name, func(b *testing.B) {
			node, neighbor, err := perf.JWINSPairCodec(100_000, v.fc)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := node.Share(0); err != nil {
				b.Fatal(err)
			}
			payload, _, err := neighbor.Share(0)
			if err != nil {
				b.Fatal(err)
			}
			w := perf.PairWeights(1)
			msgs := map[int][]byte{1: payload}
			if err := node.Aggregate(0, w, msgs); err != nil { // warm the scratch
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := node.Aggregate(i+1, w, msgs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJWINSAggregateBatch is BenchmarkJWINSAggregate through the batched
// pipeline: one op runs an AggregatePipeline batch of 8 plan-sharing
// 100k-parameter recipients merging the SAME broadcast payload through a
// fleet-shared DecodeCache, and the reported ns/aggregate compares directly
// against BenchmarkJWINSAggregate's ns/op (acceptance bar: >= 30% under it).
// The sender's cache line is invalidated each op, so every op pays one real
// decode plus seven cache hits — the fan-out steady state, not a pre-decoded
// freebie. Per-node observables stay bit-identical to looped Aggregate calls.
func BenchmarkJWINSAggregateBatch(b *testing.B) {
	const width = 8
	for _, v := range microCodecVariants() {
		v := v
		b.Run(v.name, func(b *testing.B) {
			nodes, err := perf.JWINSBatchNodes(100_000, width+1, v.fc)
			if err != nil {
				b.Fatal(err)
			}
			sender, recips := nodes[width], nodes[:width]
			dc := &core.DecodeCache{}
			for _, n := range recips {
				n.SetDecodeCache(dc)
			}
			payload, _, err := sender.Share(0)
			if err != nil {
				b.Fatal(err)
			}
			ws := make([]topology.Weights, width)
			msgs := make([]map[int][]byte, width)
			for i := range recips {
				ws[i] = topology.Weights{Self: 0.5, Neighbor: map[int]float64{width: 0.5}}
				msgs[i] = map[int][]byte{width: payload}
			}
			pipe := &core.AggregatePipeline{}
			if err := pipe.AggregateBatch(recips, ws, msgs); err != nil { // warm the scratch
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dc.InvalidateSender(width)
				if err := pipe.AggregateBatch(recips, ws, msgs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*width), "ns/aggregate")
		})
	}
}

func microCodecVariants() []struct {
	name string
	fc   codec.FloatCodec
} {
	return []struct {
		name string
		fc   codec.FloatCodec
	}{
		{"flate32", nil},
		{"raw32", codec.Raw32{}},
	}
}

// BenchmarkLocalSGDStep measures one GN-LeNet minibatch train step.
func BenchmarkLocalSGDStep(b *testing.B) {
	rng := vec.NewRNG(4)
	clf := nn.NewGNLeNet(nn.ModelConfig{Channels: 3, Height: 16, Width: 16, Classes: 10, WidthScale: 4}, rng)
	x := nn.NewTensor(8, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := make([]float64, 8)
	for i := range y {
		y[i] = float64(rng.Intn(10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.TrainBatch(x, y, 0.05)
	}
}
