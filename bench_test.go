// Package repro's benchmark harness: one testing.B target per table and
// figure of the paper (micro scale, so `go test -bench=.` terminates in
// minutes) plus micro-benchmarks of the primitives on JWINS's hot path.
// Full-scale regeneration is cmd/jwins-bench's job; recorded outputs live in
// EXPERIMENTS.md.
package repro

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dwt"
	"repro/internal/experiments"
	"repro/internal/fourier"
	"repro/internal/nn"
	"repro/internal/simulation"
	"repro/internal/sparsify"
	"repro/internal/topology"
	"repro/internal/vec"
)

const benchSeed = 42

// --- One benchmark per table/figure ----------------------------------------

func BenchmarkFigure2Reconstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Epochs) - 1
		b.ReportMetric(r.Wavelet[last], "waveletMSE")
		b.ReportMetric(r.Random[last], "randomMSE")
	}
}

func BenchmarkFigure3RandomizedCutoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, m := range r.MeanPerRound {
			mean += m
		}
		b.ReportMetric(mean/float64(len(r.MeanPerRound))*100, "meanAlpha%")
	}
}

// benchTable1Dataset runs one dataset's Table I row.
func benchTable1Dataset(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(experiments.Micro, benchSeed, []string{name})
		if err != nil {
			b.Fatal(err)
		}
		row := r.Rows[0]
		b.ReportMetric(row.AccJWINS, "jwinsAcc%")
		b.ReportMetric(row.NetworkSavings*100, "savings%")
	}
}

func BenchmarkTable1CIFAR10(b *testing.B)     { benchTable1Dataset(b, "cifar10") }
func BenchmarkTable1MovieLens(b *testing.B)   { benchTable1Dataset(b, "movielens") }
func BenchmarkTable1Shakespeare(b *testing.B) { benchTable1Dataset(b, "shakespeare") }
func BenchmarkTable1CelebA(b *testing.B)      { benchTable1Dataset(b, "celeba") }
func BenchmarkTable1FEMNIST(b *testing.B)     { benchTable1Dataset(b, "femnist") }

func BenchmarkFigure5RunToTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(experiments.Micro, benchSeed, []string{"cifar10"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[0].RoundsSaved), "roundsSaved")
	}
}

func BenchmarkFigure6VsChoco(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[1].AccJWINS-r.Rows[1].AccChoco, "accGain10%budget")
	}
}

func BenchmarkFigure7DynamicTopology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FullDynamic-r.FullStatic, "dynamicGain%")
	}
}

func BenchmarkFigure8Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Acc[string(experiments.AlgoJWINS)]-r.Acc[string(experiments.AlgoJWINSNoWavelet)], "waveletGain%")
	}
}

func BenchmarkFigure9Metadata(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Compression, "gammaCompressionX")
	}
}

func BenchmarkFigure10Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(experiments.Micro, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[len(r.Rows)-1].AccGain, "accGainLargestN%")
	}
}

// --- Engine throughput: synchronous vs event-driven -------------------------

// benchEngineFleet builds a 16-node full-sharing fleet over a 4-regular graph
// on the standard small non-IID image task, shared by the engine benchmarks.
func benchEngineFleet(b *testing.B) ([]core.Node, *datasets.Dataset, topology.Provider) {
	b.Helper()
	const n = 16
	rng := vec.NewRNG(benchSeed)
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Channels: 1, Height: 8, Width: 8,
		TrainPerClass: 40, TestPerClass: 10,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	parts, err := datasets.PartitionShards(ds, n, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.TrainOpts{LR: 0.05, LocalSteps: 2}
	nodes := make([]core.Node, n)
	for i := range nodes {
		nodeRNG := rng.Split()
		model := nn.NewMLP(64, 24, 4, nodeRNG)
		loader := datasets.NewLoader(ds, parts[i], 8, nodeRNG.Split())
		nodes[i], err = core.NewFullSharing(i, model, loader, opts, codec.Raw32{})
		if err != nil {
			b.Fatal(err)
		}
	}
	g, err := topology.Regular(n, 4, vec.NewRNG(benchSeed^1))
	if err != nil {
		b.Fatal(err)
	}
	return nodes, ds, topology.NewStatic(g)
}

// BenchmarkEngineSync16 measures synchronous-engine throughput: 10 rounds of
// a 16-node full-sharing run per iteration.
func BenchmarkEngineSync16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nodes, ds, topo := benchEngineFleet(b)
		eng := &simulation.Engine{
			Nodes: nodes, Topology: topo, TestSet: ds,
			Config: simulation.Config{Rounds: 10, EvalEvery: 10},
		}
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalBytes), "bytes/run")
	}
}

// BenchmarkEngineAsync16 is the event-driven counterpart on identical inputs
// (homogeneous profiles, no churn), so the two benchmarks bracket the
// scheduler's bookkeeping overhead.
func BenchmarkEngineAsync16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nodes, ds, topo := benchEngineFleet(b)
		eng := &simulation.AsyncEngine{
			Nodes: nodes, Topology: topo, TestSet: ds,
			Config: simulation.AsyncConfig{
				Config: simulation.Config{Rounds: 10, EvalEvery: 10},
			},
		}
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalBytes), "bytes/run")
	}
}

// BenchmarkEngineAsyncChurn16 adds a straggler tail and 25% churn, the cost
// of the scenario the scheduler exists to express.
func BenchmarkEngineAsyncChurn16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nodes, ds, topo := benchEngineFleet(b)
		eng := &simulation.AsyncEngine{
			Nodes: nodes, Topology: topo, TestSet: ds,
			Config: simulation.AsyncConfig{
				Config: simulation.Config{Rounds: 10, EvalEvery: 10},
				Het:    simulation.Heterogeneity{ComputeSpread: 0.5, Seed: benchSeed},
				Churn:  simulation.GenerateChurn(16, 0.25, 0.02, 0.15, 0.05, benchSeed),
			},
		}
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalBytes), "bytes/run")
	}
}

// --- Primitive micro-benchmarks ---------------------------------------------

func benchParams(n int) []float64 {
	rng := vec.NewRNG(1)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func BenchmarkDWTForward(b *testing.B) {
	const n = 1 << 17
	tr, err := dwt.NewTransformer(n, dwt.MustByName("sym2"), 4)
	if err != nil {
		b.Fatal(err)
	}
	x := benchParams(n)
	out := make([]float64, tr.CoeffLen())
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Forward(x, out)
	}
}

func BenchmarkDWTInverse(b *testing.B) {
	const n = 1 << 17
	tr, err := dwt.NewTransformer(n, dwt.MustByName("sym2"), 4)
	if err != nil {
		b.Fatal(err)
	}
	x := benchParams(n)
	coeffs := make([]float64, tr.CoeffLen())
	tr.Forward(x, coeffs)
	out := make([]float64, n)
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Inverse(coeffs, out)
	}
}

func BenchmarkFFTForward(b *testing.B) {
	const n = 1 << 17
	tr, err := fourier.NewTransformer(n)
	if err != nil {
		b.Fatal(err)
	}
	x := benchParams(n)
	out := make([]float64, tr.CoeffLen())
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Forward(x, out)
	}
}

func BenchmarkTopKSelection(b *testing.B) {
	const n = 1 << 17
	x := benchParams(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparsify.TopKIndices(x, n/10)
	}
}

func BenchmarkEliasGammaEncode(b *testing.B) {
	const dim = 1 << 17
	idx := vec.NewRNG(2).SampleWithoutReplacement(dim, dim*37/100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.EncodeIndicesGamma(idx); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFloatCodec(b *testing.B, fc codec.FloatCodec) {
	b.Helper()
	vals := benchParams(1 << 16)
	b.SetBytes(int64(4 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := fc.Encode(vals)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fc.Decode(buf, len(vals)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloatCodecRaw32(b *testing.B)   { benchFloatCodec(b, codec.Raw32{}) }
func BenchmarkFloatCodecFlate32(b *testing.B) { benchFloatCodec(b, codec.PlaneFlate32{}) }
func BenchmarkFloatCodecXOR32(b *testing.B)   { benchFloatCodec(b, codec.XOR32{}) }

// BenchmarkJWINSShareAggregate measures one full JWINS communication round
// (share + aggregate) for a 100k-parameter model, excluding local training.
func BenchmarkJWINSShareAggregate(b *testing.B) {
	const dim = 100_000
	rng := vec.NewRNG(3)
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 2, Channels: 1, Height: 4, Width: 4, TrainPerClass: 4, TestPerClass: 2,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	loader := datasets.NewLoader(ds, []int{0, 1, 2, 3}, 2, rng.Split())
	model := &flatModel{params: benchParams(dim)}
	node, err := core.NewJWINS(0, model, loader, core.TrainOpts{LR: 0.1, LocalSteps: 1}, core.DefaultJWINSConfig(), rng.Split())
	if err != nil {
		b.Fatal(err)
	}
	neighbor, err := core.NewJWINS(1, &flatModel{params: benchParams(dim)}, loader, core.TrainOpts{LR: 0.1, LocalSteps: 1}, core.DefaultJWINSConfig(), rng.Split())
	if err != nil {
		b.Fatal(err)
	}
	w := weightsForID(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p1, _, err := node.Share(i)
		if err != nil {
			b.Fatal(err)
		}
		p2, _, err := neighbor.Share(i)
		if err != nil {
			b.Fatal(err)
		}
		if err := node.Aggregate(i, w, map[int][]byte{1: p2}); err != nil {
			b.Fatal(err)
		}
		if err := neighbor.Aggregate(i, weightsForID(0), map[int][]byte{0: p1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalSGDStep measures one GN-LeNet minibatch train step.
func BenchmarkLocalSGDStep(b *testing.B) {
	rng := vec.NewRNG(4)
	clf := nn.NewGNLeNet(nn.ModelConfig{Channels: 3, Height: 16, Width: 16, Classes: 10, WidthScale: 4}, rng)
	x := nn.NewTensor(8, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := make([]float64, 8)
	for i := range y {
		y[i] = float64(rng.Intn(10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.TrainBatch(x, y, 0.05)
	}
}

// flatModel is a minimal Trainable over a raw parameter vector.
type flatModel struct {
	params []float64
}

func (m *flatModel) ParamCount() int                                   { return len(m.params) }
func (m *flatModel) CopyParams(dst []float64)                          { copy(dst, m.params) }
func (m *flatModel) SetParams(src []float64)                           { copy(m.params, src) }
func (m *flatModel) TrainBatch(*nn.Tensor, []float64, float64) float64 { return 0 }
func (m *flatModel) EvalBatch(*nn.Tensor, []float64) (float64, int, int) {
	return 0, 0, 1
}

func weightsForID(neighbor int) topology.Weights {
	return topology.Weights{Self: 0.5, Neighbor: map[int]float64{neighbor: 0.5}}
}
