package experiments

import (
	"fmt"
	"strings"

	"repro/internal/simulation"
)

// ExtDynTopoRow is one arm of the dynamic-topology sweep: a node count with
// a rotation cadence (in nominal-round multiples; 0 = static pin) and a
// churn level, reporting the final accuracy alongside the mixing
// instrumentation the rotation is supposed to improve.
type ExtDynTopoRow struct {
	Arm    string
	Nodes  int
	Degree int
	Rounds int
	// EpochMult is the rotation cadence in nominal synchronous rounds per
	// epoch (0 = static). EpochSec is the resolved simulated-time length.
	EpochMult float64
	EpochSec  float64
	Churn     float64

	Acc     float64 // final accuracy, percent
	SimTime float64
	Bytes   int64

	// Mixing instrumentation (see simulation.Result).
	Epochs       int
	GapMean      float64
	GapMin       float64
	TurnoverMean float64
	StaleMean    float64
}

// ExtDynTopoResult is the sweep over node counts × epoch length × churn.
type ExtDynTopoResult struct {
	Scale  Scale
	Rows   []ExtDynTopoRow
	Curves map[string][]simulation.RoundMetrics
}

// extDynTopoSizes returns the sweep's node counts: the paper's 96/192/384
// (degrees 4/5/6 via degreeFor) at small and paper scale, shrunk for the
// test-sized micro scale.
func extDynTopoSizes(scale Scale) []int {
	if scale == Micro {
		return []int{16, 32}
	}
	return []int{96, 192, 384}
}

// extDynTopoRounds caps the iteration budget: the sweep measures mixing and
// robustness at scale, not asymptotic accuracy, so it stays short enough to
// run 12 arms at 384 nodes.
func extDynTopoRounds(scale Scale) int {
	if scale == Micro {
		return 6
	}
	return 10
}

// ExtDynTopo sweeps epoch-randomized topologies under the async engine on
// the CIFAR-10-like task: per node count, a static baseline, rotations every
// 1 and 4 nominal rounds, and a rotated arm with 20% churn. Expectation from
// decentralized-SGD theory: the per-epoch spectral gap of a fresh random
// regular graph stays high as n grows (expander behaviour) while any fixed
// graph's gap decays, so rotated arms should match or beat the static
// baseline's accuracy at the same byte budget — and the gap/turnover columns
// make that mechanism visible.
func ExtDynTopo(scale Scale, seed uint64) (*ExtDynTopoResult, error) {
	res := &ExtDynTopoResult{Scale: scale, Curves: map[string][]simulation.RoundMetrics{}}
	rounds := extDynTopoRounds(scale)
	arms := []struct {
		name      string
		epochMult float64 // nominal rounds per epoch; 0 = static
		churn     float64
	}{
		{"static", 0, 0},
		{"epoch-1x", 1, 0},
		{"epoch-4x", 4, 0},
		{"epoch-1x-churn", 1, 0.2},
	}
	for _, n := range extDynTopoSizes(scale) {
		w, err := NewWorkload("cifar10", scale, n, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: ext-dyntopo n=%d: %w", n, err)
		}
		nominal := DefaultEpochSec(w)
		for _, arm := range arms {
			spec := RunSpec{
				Workload: w,
				Algo:     AlgoSpec{Kind: AlgoJWINS},
				Rounds:   rounds,
				Seed:     seed,
				Async:    true,
				// Cap evaluation cost: accuracy is a sanity column here, and
				// evaluating all 384 models would dominate the sweep.
				EvalNodes:     8,
				ChurnFraction: arm.churn,
			}
			if arm.epochMult > 0 {
				spec.Dynamic = true
				spec.EpochSec = arm.epochMult * nominal
			}
			r, err := Run(spec)
			if err != nil {
				return nil, fmt.Errorf("experiments: ext-dyntopo n=%d %s: %w", n, arm.name, err)
			}
			key := fmt.Sprintf("n%d-%s", n, arm.name)
			res.Curves[key] = r.Rounds
			res.Rows = append(res.Rows, ExtDynTopoRow{
				Arm: arm.name, Nodes: n, Degree: w.Degree, Rounds: len(r.Rounds),
				EpochMult: arm.epochMult, EpochSec: spec.EpochSec, Churn: arm.churn,
				Acc: r.FinalAccuracy * 100, SimTime: r.SimTime, Bytes: r.TotalBytes,
				Epochs: r.Epochs, GapMean: r.SpectralGapMean, GapMin: r.SpectralGapMin,
				TurnoverMean: r.TurnoverMean, StaleMean: r.StaleMean,
			})
		}
	}
	return res, nil
}

// String renders the sweep.
func (r *ExtDynTopoResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: epoch-randomized dynamic topologies under the async engine (scale=%s, CIFAR-10-like, JWINS)\n", r.Scale)
	fmt.Fprintf(&b, "%-6s %-6s %-15s %-6s | %8s %9s | %7s %9s %9s %9s | %9s\n",
		"nodes", "degree", "arm", "churn", "acc", "sim-time", "epochs", "gap:mean", "gap:min", "turnover", "bytes")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6d %-6d %-15s %-6.2f | %7.1f%% %8.1fs | %7d %9.4f %9.4f %9.4f | %9s\n",
			row.Nodes, row.Degree, row.Arm, row.Churn,
			row.Acc, row.SimTime,
			row.Epochs, row.GapMean, row.GapMin, row.TurnoverMean,
			FormatBytes(row.Bytes))
	}
	return b.String()
}

// CSV implements CSVer: summary rows plus per-arm curves (whose rows carry
// the epoch/spectral_gap/turnover columns) in long format.
func (r *ExtDynTopoResult) CSV() string {
	var b strings.Builder
	b.WriteString("nodes,degree,arm,epoch_mult,epoch_sec,churn,rounds,acc,sim_time,bytes,epochs,spectral_gap_mean,spectral_gap_min,turnover_mean,stale_mean\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d,%d,%s,%.2f,%.6f,%.2f,%d,%.2f,%.4f,%d,%d,%.4f,%.4f,%.4f,%.4f\n",
			row.Nodes, row.Degree, row.Arm, row.EpochMult, row.EpochSec, row.Churn, row.Rounds,
			row.Acc, row.SimTime, row.Bytes,
			row.Epochs, row.GapMean, row.GapMin, row.TurnoverMean, row.StaleMean)
	}
	b.WriteString("\n")
	b.WriteString(CurvesCSV(r.Curves))
	return b.String()
}
