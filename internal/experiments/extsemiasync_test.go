package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simulation"
	"repro/internal/trace"
)

// TestPolicyHeaderRoundTrip: every policy's name and parameters must survive
// the trace header — the contract that lets SpecFromTraceHeader rebuild the
// exact run a semi-async trace describes.
func TestPolicyHeaderRoundTrip(t *testing.T) {
	w, err := NewWorkload("cifar10", Micro, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		policy simulation.AggregationPolicy
		want   simulation.AggregationPolicy // nil = engine default
	}{
		{nil, nil},
		{simulation.BarrierPolicy{}, nil},
		{simulation.GossipPolicy{}, simulation.GossipPolicy{}},
		{simulation.BoundedStalenessPolicy{K: 3, Tau: 2, AdaptiveTau: true}, simulation.BoundedStalenessPolicy{K: 3, Tau: 2, AdaptiveTau: true}},
		{simulation.DeadlinePolicy{Factor: 1.25}, simulation.DeadlinePolicy{Factor: 1.25}},
	}
	for _, tc := range cases {
		h := TraceHeaderForPolicy(w, AlgoJWINS, 5, 7, tc.policy, false, 0)
		got, err := policyFromTraceHeader(h)
		if err != nil {
			t.Fatalf("%+v: %v", tc.policy, err)
		}
		if got != tc.want {
			t.Fatalf("round trip of %#v: got %#v, want %#v", tc.policy, got, tc.want)
		}
	}

	h := TraceHeaderForPolicy(w, AlgoJWINS, 5, 7, nil, false, 0)
	h.Policy = "quorum"
	if _, err := policyFromTraceHeader(h); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}

// TestSemiAsyncRecordReplayRoundTrip: a bounded-staleness run recorded
// through the experiments pipeline must replay with exact event parity, with
// the policy reconstructed from header metadata alone.
func TestSemiAsyncRecordReplayRoundTrip(t *testing.T) {
	w, err := NewWorkload("cifar10", Micro, 0, 23)
	if err != nil {
		t.Fatal(err)
	}
	policy := simulation.BoundedStalenessPolicy{K: 2, Tau: 1}
	rec := trace.NewRecorder(TraceHeaderForPolicy(w, AlgoJWINS, 5, 23, policy, false, 0))
	recorded, err := Run(RunSpec{
		Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Rounds: 5, Seed: 23,
		Async: true, Policy: policy,
		Het:      simulation.Heterogeneity{ComputeSpread: 0.6, BandwidthSpread: 0.3},
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := trace.WriteBinary(&wire, rec.Trace()); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.Read(&wire)
	if err != nil {
		t.Fatal(err)
	}
	replayRes, replayed, err := ReplayTrace(decoded)
	if err != nil {
		t.Fatal(err)
	}
	diff := trace.Compare(replayed, rec.Trace())
	if !diff.InSync() || diff.TimeErrMax != 0 {
		t.Fatalf("replay out of sync: %+v", diff)
	}
	if replayRes.TotalBytes != recorded.TotalBytes || replayRes.SimTime != recorded.SimTime {
		t.Fatalf("replay ledger/time differ: (%d, %v) vs (%d, %v)",
			replayRes.TotalBytes, replayRes.SimTime, recorded.TotalBytes, recorded.SimTime)
	}
}

// TestRunSpecPolicyRequiresAsync: aggregation policies have no meaning under
// the synchronous engine; the combination is a typed rejection.
func TestRunSpecPolicyRequiresAsync(t *testing.T) {
	w, err := NewWorkload("cifar10", Micro, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(RunSpec{
		Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Rounds: 2, Seed: 3,
		Policy: simulation.GossipPolicy{},
	})
	if err == nil {
		t.Fatal("sync Policy accepted")
	}
}

// TestExtSemiAsyncMicro: the sweep smoke test — every (spread, policy) arm
// present and complete, the barrier arms clean, the semi-async arms showing
// the policy signature (drops or bounded lag), and the CSV carrying the
// effective-neighbor and drop-rate columns.
func TestExtSemiAsyncMicro(t *testing.T) {
	r, err := ExtSemiAsync(Micro, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantArms := 5 * len(extSemiAsyncSpreads)
	if len(r.Arms) != wantArms {
		t.Fatalf("expected %d arms, got %d", wantArms, len(r.Arms))
	}
	for _, a := range r.Arms {
		if a.Rows != r.Rounds {
			t.Fatalf("arm %s spread %.1f completed %d/%d rows", a.Policy, a.Spread, a.Rows, r.Rounds)
		}
		switch a.Policy {
		case "barrier":
			if a.DropRate != 0 || a.LateDrops != 0 || a.Stale.Max != 0 {
				t.Fatalf("barrier arm not clean: %+v", a)
			}
		case "gossip", "bounded", "bounded-adaptive":
			if a.EffNeighbors <= 0 {
				t.Fatalf("arm %s merged nothing: %+v", a.Policy, a)
			}
		}
	}
	csv := r.CSV()
	for _, col := range []string{"eff_neighbors", "drop_rate", "late_drops", "stale_p95"} {
		if !strings.Contains(csv, col) {
			t.Fatalf("CSV lacks %q", col)
		}
	}
	if r.String() == "" {
		t.Fatal("empty rendering")
	}
}
