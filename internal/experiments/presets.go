// Package experiments assembles datasets, models, node fleets, and run
// harnesses for every table and figure in the paper's evaluation (Section
// IV). Each experiment has a function FigN/Table1 returning a printable
// result; cmd/jwins-bench exposes them on the command line and bench_test.go
// wraps micro-scale versions as Go benchmarks.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/vec"
)

// Scale selects the experiment size. The paper's testbed (96-384 Python
// processes on 6 Xeon machines, full-size datasets, hundreds of epochs) does
// not fit a laptop-scale pure-Go run, so Micro and Small shrink nodes, data,
// and model widths while preserving every structural property the
// conclusions rest on (non-IID partitioning, architecture shapes, alpha
// distributions, compression stack).
type Scale int

// Scales.
const (
	// Micro: seconds per run; used by unit tests and Go benchmarks.
	Micro Scale = iota
	// Small: minutes per full experiment; the default for cmd/jwins-bench.
	Small
	// Paper: the paper's node counts and model widths. Provided for
	// completeness; expect very long runtimes.
	Paper
)

// ParseScale converts a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "micro":
		return Micro, nil
	case "small":
		return Small, nil
	case "paper":
		return Paper, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (want micro, small, or paper)", s)
	}
}

func (s Scale) String() string {
	switch s {
	case Micro:
		return "micro"
	case Small:
		return "small"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Workload is one benchmark task instantiated at a scale: the dataset, its
// node partitioning, a model factory, and tuned hyperparameters.
type Workload struct {
	Name     string
	Scale    Scale
	Nodes    int
	Degree   int
	Dataset  *datasets.Dataset
	Parts    [][]int
	NewModel func(rng *vec.RNG) nn.Trainable
	Opts     core.TrainOpts
	Batch    int
	// Rounds is the fixed-epoch round budget used by the Table 1 protocol.
	Rounds int
	// EvalEvery is the evaluation cadence for learning curves.
	EvalEvery int
}

// WorkloadNames lists the five benchmark tasks in paper order.
var WorkloadNames = []string{"cifar10", "movielens", "shakespeare", "celeba", "femnist"}

// workloadKey identifies one deterministic workload synthesis: the build
// functions draw everything from (name, scale, nodes, shards, seed), so equal
// keys produce identical workloads and the synthesis can be shared.
type workloadKey struct {
	name   string
	scale  Scale
	nodes  int
	shards int
	seed   uint64
}

// workloadCache memoizes dataset synthesis across sweep arms: a sweep that
// runs three arms per node count used to synthesize (and partition) the same
// tensors three times. Cached workloads share their Dataset, Parts, and model
// factory — all read-only after construction (loaders copy the index slices
// they shuffle) — while each caller gets its own Workload struct to keep
// value-field writes private.
var workloadCache = struct {
	sync.Mutex
	m map[workloadKey]*Workload
}{m: map[workloadKey]*Workload{}}

// memoWorkload returns a shallow copy of the cached workload for key,
// building and caching it on first use. The lock is held across the build so
// concurrent arms of a sweep synthesize each key once.
func memoWorkload(key workloadKey, build func() (*Workload, error)) (*Workload, error) {
	workloadCache.Lock()
	defer workloadCache.Unlock()
	w, ok := workloadCache.m[key]
	if !ok {
		var err error
		if w, err = build(); err != nil {
			return nil, err
		}
		workloadCache.m[key] = w
	}
	cp := *w
	return &cp, nil
}

// NewWorkload builds the named workload ("cifar10", "movielens",
// "shakespeare", "celeba", "femnist") at the given scale. nodes == 0 uses the
// scale's default node count. All randomness descends from seed; repeated
// calls with the same arguments share one synthesized dataset (memoized
// across sweep arms).
func NewWorkload(name string, scale Scale, nodes int, seed uint64) (*Workload, error) {
	if nodes == 0 {
		nodes = defaultNodes(scale)
	}
	shards := 0
	if name == "cifar10" {
		shards = 2
	}
	return memoWorkload(workloadKey{name, scale, nodes, shards, seed}, func() (*Workload, error) {
		rng := vec.NewRNG(seed)
		w := &Workload{Name: name, Scale: scale, Nodes: nodes, Degree: degreeFor(nodes)}
		var err error
		switch name {
		case "cifar10":
			err = buildCIFAR10(w, scale, rng, 2)
		case "femnist":
			err = buildFEMNIST(w, scale, rng)
		case "celeba":
			err = buildCelebA(w, scale, rng)
		case "shakespeare":
			err = buildShakespeare(w, scale, rng)
		case "movielens":
			err = buildMovieLens(w, scale, rng)
		default:
			return nil, fmt.Errorf("experiments: unknown workload %q", name)
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s: %w", name, err)
		}
		return w, nil
	})
}

// NewCIFAR10Shards builds the CIFAR-10-like workload with a custom
// shards-per-node setting (the scalability study uses 4 instead of 2).
// Memoized like NewWorkload.
func NewCIFAR10Shards(scale Scale, nodes, shardsPerNode int, seed uint64) (*Workload, error) {
	if nodes == 0 {
		nodes = defaultNodes(scale)
	}
	return memoWorkload(workloadKey{"cifar10", scale, nodes, shardsPerNode, seed}, func() (*Workload, error) {
		rng := vec.NewRNG(seed)
		w := &Workload{Name: "cifar10", Scale: scale, Nodes: nodes, Degree: degreeFor(nodes)}
		if err := buildCIFAR10(w, scale, rng, shardsPerNode); err != nil {
			return nil, err
		}
		return w, nil
	})
}

func defaultNodes(scale Scale) int {
	switch scale {
	case Micro:
		return 8
	case Small:
		return 16
	default:
		return 96
	}
}

// degreeFor mirrors the paper's choice: degree 4 for 96 nodes, 5 for 192 and
// 288, 6 for 384, so edges grow with nodes. Scaled-down settings keep 4.
func degreeFor(nodes int) int {
	switch {
	case nodes >= 384:
		return 6
	case nodes >= 192:
		return 5
	case nodes >= 5:
		return 4
	default:
		return 2
	}
}

func buildCIFAR10(w *Workload, scale Scale, rng *vec.RNG, shards int) error {
	var (
		size, perClass, width int
		rounds                int
		noise                 float64
	)
	switch scale {
	case Micro:
		size, perClass, width, rounds, noise = 8, 16, 8, 15, 0.3
	case Small:
		// Higher noise keeps the task unsaturated over the round budget so
		// algorithm differences stay visible (real CIFAR-10 is far harder
		// than smooth synthetic templates).
		size, perClass, width, rounds, noise = 16, 8*w.Nodes, 4, 60, 2.8
	default:
		size, perClass, width, rounds, noise = 32, 500, 1, 2680, 1.4
	}
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Name: "cifar10", Classes: 10, Channels: 3, Height: size, Width: size,
		TrainPerClass: perClass, TestPerClass: perClass / 4,
		NoiseSD: noise,
	}, rng)
	if err != nil {
		return err
	}
	parts, err := datasets.PartitionShards(ds, w.Nodes, shards, rng)
	if err != nil {
		return err
	}
	w.Dataset, w.Parts = ds, parts
	w.NewModel = func(r *vec.RNG) nn.Trainable {
		return nn.NewGNLeNet(nn.ModelConfig{Channels: 3, Height: size, Width: size, Classes: 10, WidthScale: width}, r)
	}
	w.Opts = core.TrainOpts{LR: 0.05, LocalSteps: 3}
	w.Batch = 8
	w.Rounds = rounds
	w.EvalEvery = evalCadence(rounds)
	return nil
}

func buildFEMNIST(w *Workload, scale Scale, rng *vec.RNG) error {
	var (
		size, classes, perClass, width int
		rounds                         int
	)
	var noise float64
	switch scale {
	case Micro:
		size, classes, perClass, width, rounds, noise = 8, 10, 16, 8, 15, 0.3
	case Small:
		size, classes, perClass, width, rounds, noise = 16, 26, 4*w.Nodes, 4, 50, 1.0
	default:
		size, classes, perClass, width, rounds, noise = 28, 62, 1000, 1, 1500, 1.0
	}
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Name: "femnist", Classes: classes, Channels: 1, Height: size, Width: size,
		TrainPerClass: perClass, TestPerClass: perClass/4 + 1,
		Clients: 3 * w.Nodes,
		NoiseSD: noise,
	}, rng)
	if err != nil {
		return err
	}
	parts, err := datasets.PartitionByClient(ds, w.Nodes, rng)
	if err != nil {
		return err
	}
	w.Dataset, w.Parts = ds, parts
	w.NewModel = func(r *vec.RNG) nn.Trainable {
		return nn.NewLEAFCNN(nn.ModelConfig{Channels: 1, Height: size, Width: size, Classes: classes, WidthScale: width}, r)
	}
	w.Opts = core.TrainOpts{LR: 0.05, LocalSteps: 3}
	w.Batch = 8
	w.Rounds = rounds
	w.EvalEvery = evalCadence(rounds)
	return nil
}

func buildCelebA(w *Workload, scale Scale, rng *vec.RNG) error {
	var (
		size, perClass, width int
		rounds                int
	)
	var noise float64
	switch scale {
	case Micro:
		size, perClass, width, rounds, noise = 8, 32, 8, 12, 0.3
	case Small:
		size, perClass, width, rounds, noise = 16, 16*w.Nodes, 4, 40, 2.2
	default:
		size, perClass, width, rounds, noise = 32, 40000, 1, 520, 2.2
	}
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Name: "celeba", Classes: 2, Channels: 3, Height: size, Width: size,
		TrainPerClass: perClass, TestPerClass: perClass/4 + 1,
		Clients: 3 * w.Nodes,
		NoiseSD: noise,
	}, rng)
	if err != nil {
		return err
	}
	parts, err := datasets.PartitionByClient(ds, w.Nodes, rng)
	if err != nil {
		return err
	}
	w.Dataset, w.Parts = ds, parts
	w.NewModel = func(r *vec.RNG) nn.Trainable {
		return nn.NewLEAFCNN(nn.ModelConfig{Channels: 3, Height: size, Width: size, Classes: 2, WidthScale: width}, r)
	}
	w.Opts = core.TrainOpts{LR: 0.05, LocalSteps: 3}
	w.Batch = 8
	w.Rounds = rounds
	w.EvalEvery = evalCadence(rounds)
	return nil
}

func buildShakespeare(w *Workload, scale Scale, rng *vec.RNG) error {
	var (
		seqLen, windows, hidden, embed, layers int
		rounds                                 int
	)
	switch scale {
	case Micro:
		seqLen, windows, hidden, embed, layers, rounds = 16, 16, 16, 8, 1, 12
	case Small:
		seqLen, windows, hidden, embed, layers, rounds = 24, 48, 32, 8, 2, 40
	default:
		seqLen, windows, hidden, embed, layers, rounds = 80, 1000, 256, 8, 2, 570
	}
	ds, err := datasets.ShakespeareLike(datasets.TextConfig{
		SeqLen: seqLen, Clients: w.Nodes, WindowsPerClient: windows,
	}, rng)
	if err != nil {
		return err
	}
	parts, err := datasets.PartitionByClient(ds, w.Nodes, rng)
	if err != nil {
		return err
	}
	vocab := ds.Classes
	w.Dataset, w.Parts = ds, parts
	w.NewModel = func(r *vec.RNG) nn.Trainable {
		return nn.NewCharLSTM(nn.CharLSTMConfig{Vocab: vocab, Embed: embed, Hidden: hidden, Layers: layers}, r)
	}
	w.Opts = core.TrainOpts{LR: 0.3, LocalSteps: 2}
	w.Batch = 8
	w.Rounds = rounds
	w.EvalEvery = evalCadence(rounds)
	return nil
}

func buildMovieLens(w *Workload, scale Scale, rng *vec.RNG) error {
	var (
		usersPerNode, items, factor int
		rounds                      int
	)
	switch scale {
	case Micro:
		usersPerNode, items, factor, rounds = 2, 60, 8, 15
	case Small:
		usersPerNode, items, factor, rounds = 4, 200, 8, 60
	default:
		usersPerNode, items, factor, rounds = 10, 1700, 16, 4000
	}
	users := usersPerNode * w.Nodes
	ds, err := datasets.MovieLensLike(datasets.RatingConfig{
		Users: users, Items: items, TrainPerUser: 20, TestPerUser: 5,
	}, rng)
	if err != nil {
		return err
	}
	parts, err := datasets.PartitionByClient(ds, w.Nodes, rng)
	if err != nil {
		return err
	}
	w.Dataset, w.Parts = ds, parts
	w.NewModel = func(r *vec.RNG) nn.Trainable {
		return nn.NewMatrixFactorization(users, items, factor, r)
	}
	w.Opts = core.TrainOpts{LR: 0.05, LocalSteps: 2}
	w.Batch = 16
	w.Rounds = rounds
	w.EvalEvery = evalCadence(rounds)
	return nil
}

func evalCadence(rounds int) int {
	switch {
	case rounds <= 20:
		return 3
	case rounds <= 80:
		return 5
	default:
		return rounds / 20
	}
}
