package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/powergossip"
	"repro/internal/topology"
	"repro/internal/vec"
)

// ExtPowerGossipResult compares JWINS against POWERGOSSIP (the other
// state-of-the-art compressor the paper cites) on the CIFAR-10-like task.
// This extends the paper's evaluation: the authors compare only against
// CHOCO, arguing POWERGOSSIP performs as well as tuned CHOCO.
type ExtPowerGossipResult struct {
	Rounds int
	// Accuracies (percent) and total bytes after the fixed round budget.
	AccJWINS, AccPG     float64
	BytesJWINS, BytesPG int64
}

// ExtPowerGossip runs both algorithms for the workload's round budget.
func ExtPowerGossip(scale Scale, seed uint64) (*ExtPowerGossipResult, error) {
	w, err := NewWorkload("cifar10", scale, 0, seed)
	if err != nil {
		return nil, err
	}
	res := &ExtPowerGossipResult{Rounds: w.Rounds}

	jwins, err := Run(RunSpec{Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Seed: seed})
	if err != nil {
		return nil, err
	}
	res.AccJWINS = jwins.FinalAccuracy * 100
	res.BytesJWINS = jwins.TotalBytes

	// POWERGOSSIP has its own driver (per-edge two-phase exchange).
	root := vec.NewRNG(seed)
	template := w.NewModel(root.Split())
	initial := make([]float64, template.ParamCount())
	template.CopyParams(initial)
	nodes := make([]*powergossip.Node, w.Nodes)
	for i := 0; i < w.Nodes; i++ {
		nodeRNG := root.Split()
		model := w.NewModel(nodeRNG)
		model.SetParams(initial)
		loader := datasets.NewLoader(w.Dataset, w.Parts[i], w.Batch, nodeRNG.Split())
		nodes[i], err = powergossip.New(i, model, loader, w.Opts.LR, w.Opts.LocalSteps)
		if err != nil {
			return nil, err
		}
	}
	g, err := topology.Regular(w.Nodes, w.Degree, vec.NewRNG(seed^0x746f706f))
	if err != nil {
		return nil, err
	}
	for round := 0; round < w.Rounds; round++ {
		_, bytes := powergossip.RunRound(nodes, g, powergossip.Config{PowerIterations: 2})
		res.BytesPG += bytes
	}
	var acc float64
	for _, nd := range nodes {
		_, a := datasets.Evaluate(w.Dataset, nd.Model(), 32, 0)
		acc += a / float64(len(nodes))
	}
	res.AccPG = acc * 100
	return res, nil
}

// String renders the comparison.
func (r *ExtPowerGossipResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: JWINS vs POWERGOSSIP (%d rounds, CIFAR-10-like)\n", r.Rounds)
	fmt.Fprintf(&b, "  jwins:       %5.1f%% accuracy, %s sent\n", r.AccJWINS, FormatBytes(r.BytesJWINS))
	fmt.Fprintf(&b, "  powergossip: %5.1f%% accuracy, %s sent (rank-1 sketches, 2 power iterations)\n",
		r.AccPG, FormatBytes(r.BytesPG))
	return b.String()
}

// ExtAdaptiveResult compares default JWINS against the band-adaptive
// selection of the paper's future-work section (budget split across wavelet
// sub-bands by accumulated importance mass).
type ExtAdaptiveResult struct {
	Rounds                    int
	AccDefault, AccAdaptive   float64
	LossDefault, LossAdaptive float64
	BytesDefault, BytesAdapt  int64
}

// ExtAdaptive runs both variants on the CIFAR-10-like workload.
func ExtAdaptive(scale Scale, seed uint64) (*ExtAdaptiveResult, error) {
	w, err := NewWorkload("cifar10", scale, 0, seed)
	if err != nil {
		return nil, err
	}
	res := &ExtAdaptiveResult{Rounds: w.Rounds}

	base, err := Run(RunSpec{Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Seed: seed})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultJWINSConfig()
	cfg.BandAdaptive = true
	adaptive, err := Run(RunSpec{Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS, JWINS: &cfg}, Seed: seed})
	if err != nil {
		return nil, err
	}
	res.AccDefault, res.AccAdaptive = base.FinalAccuracy*100, adaptive.FinalAccuracy*100
	res.LossDefault, res.LossAdaptive = base.FinalLoss, adaptive.FinalLoss
	res.BytesDefault, res.BytesAdapt = base.TotalBytes, adaptive.TotalBytes
	return res, nil
}

// String renders the comparison.
func (r *ExtAdaptiveResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: band-adaptive selection (paper future work), %d rounds\n", r.Rounds)
	fmt.Fprintf(&b, "  jwins default:       %5.1f%% accuracy, loss %.3f, %s\n",
		r.AccDefault, r.LossDefault, FormatBytes(r.BytesDefault))
	fmt.Fprintf(&b, "  jwins band-adaptive: %5.1f%% accuracy, loss %.3f, %s\n",
		r.AccAdaptive, r.LossAdaptive, FormatBytes(r.BytesAdapt))
	return b.String()
}

// ExtFaultsResult measures resilience to message loss and node churn — the
// systems property behind the paper's claim that JWINS (unlike CHOCO) is
// flexible to nodes leaving and joining.
type ExtFaultsResult struct {
	Rounds int
	// Accuracy (percent) per (algorithm, fault level).
	Clean, Drops, Churn map[string]float64
}

// ExtFaults runs JWINS and CHOCO with 0%/20% message drops and 15% churn.
func ExtFaults(scale Scale, seed uint64) (*ExtFaultsResult, error) {
	w, err := NewWorkload("cifar10", scale, 0, seed)
	if err != nil {
		return nil, err
	}
	res := &ExtFaultsResult{
		Rounds: w.Rounds,
		Clean:  map[string]float64{},
		Drops:  map[string]float64{},
		Churn:  map[string]float64{},
	}
	for _, kind := range []Algo{AlgoJWINS, AlgoChoco} {
		for name, fault := range map[string][2]float64{
			"clean": {0, 0}, "drops": {0.2, 0}, "churn": {0, 0.15},
		} {
			nodes, err := BuildFleet(w, AlgoSpec{Kind: kind}, seed)
			if err != nil {
				return nil, err
			}
			spec := RunSpec{Workload: w, Algo: AlgoSpec{Kind: kind}, Seed: seed}
			r, err := runFleetWithFaults(spec, nodes, fault[0], fault[1])
			if err != nil {
				return nil, err
			}
			switch name {
			case "clean":
				res.Clean[string(kind)] = r * 100
			case "drops":
				res.Drops[string(kind)] = r * 100
			case "churn":
				res.Churn[string(kind)] = r * 100
			}
		}
	}
	return res, nil
}

// String renders the fault matrix.
func (r *ExtFaultsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: fault tolerance (%d rounds, CIFAR-10-like)\n", r.Rounds)
	fmt.Fprintf(&b, "%-8s %10s %12s %12s\n", "algo", "clean", "20% drops", "15% churn")
	for _, kind := range []Algo{AlgoJWINS, AlgoChoco} {
		k := string(kind)
		fmt.Fprintf(&b, "%-8s %9.1f%% %11.1f%% %11.1f%%\n", k, r.Clean[k], r.Drops[k], r.Churn[k])
	}
	return b.String()
}
