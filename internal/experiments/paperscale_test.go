package experiments

import (
	"testing"

	"repro/internal/vec"
)

// TestPaperScaleConstructs verifies the paper-scale presets (96 nodes,
// full-width models) build without error — running them is hours of compute,
// but their configuration must stay valid.
func TestPaperScaleConstructs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates full-size datasets")
	}
	for _, name := range WorkloadNames {
		w, err := NewWorkload(name, Paper, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Nodes != 96 {
			t.Fatalf("%s: paper scale has %d nodes, want 96", name, w.Nodes)
		}
		if w.Degree != 4 {
			t.Fatalf("%s: degree %d, want 4", name, w.Degree)
		}
		model := w.NewModel(vec.NewRNG(1))
		if model.ParamCount() < 10_000 {
			t.Fatalf("%s: paper-scale model only has %d params", name, model.ParamCount())
		}
	}
}

// TestPaperScaleScalabilitySizes checks the Figure 10 sweep uses the paper's
// node counts and degrees at paper scale.
func TestPaperScaleScalabilitySizes(t *testing.T) {
	sizes, degrees := fig10Sizes(Paper)
	wantN := []int{96, 192, 288, 384}
	wantD := []int{4, 5, 5, 6}
	for i := range wantN {
		if sizes[i] != wantN[i] || degrees[i] != wantD[i] {
			t.Fatalf("paper sweep %v/%v, want %v/%v", sizes, degrees, wantN, wantD)
		}
	}
}
