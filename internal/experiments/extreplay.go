package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/simulation"
	"repro/internal/trace"
)

// TraceHeaderFor builds the trace header for a recorded run, carrying enough
// metadata (dataset, scale, algo, seed, topology) for ReplayTrace to rebuild
// the fleet and topology without any flags. For a dynamic async run, pass
// the effective epoch length (DefaultEpochSec when RunSpec.EpochSec is
// unset) — replay validates its engine topology against it.
func TraceHeaderFor(w *Workload, algo Algo, rounds int, seed uint64, gossip, dynamic bool, epochSec float64) trace.Header {
	var policy simulation.AggregationPolicy = simulation.BarrierPolicy{}
	if gossip {
		policy = simulation.GossipPolicy{}
	}
	return TraceHeaderForPolicy(w, algo, rounds, seed, policy, dynamic, epochSec)
}

// TraceHeaderForPolicy is TraceHeaderFor for an arbitrary aggregation policy:
// the header carries the policy name plus its parameters in Meta
// (policy_k/policy_tau/policy_adaptive for bounded staleness,
// policy_deadline_factor for the straggler-dropping deadline), so
// SpecFromTraceHeader can rebuild the exact policy and replay validation can
// reject a mismatched engine. A nil policy means the engine default (barrier).
func TraceHeaderForPolicy(w *Workload, algo Algo, rounds int, seed uint64, policy simulation.AggregationPolicy, dynamic bool, epochSec float64) trace.Header {
	if policy == nil {
		policy = simulation.BarrierPolicy{}
	}
	if rounds <= 0 {
		rounds = w.Rounds
	}
	topo := "static"
	if dynamic {
		topo = "dynamic"
	}
	h := trace.Header{
		Nodes: w.Nodes, Rounds: rounds, Source: trace.SourceSim, Policy: policy.Name(),
		Meta: map[string]string{
			"dataset":   w.Name,
			"scale":     w.Scale.String(),
			"algo":      string(algo),
			"seed":      strconv.FormatUint(seed, 10),
			"topology":  topo,
			"epoch_sec": strconv.FormatFloat(epochSec, 'g', -1, 64),
		},
	}
	switch p := policy.(type) {
	case simulation.BoundedStalenessPolicy:
		h.Meta["policy_k"] = strconv.Itoa(p.K)
		h.Meta["policy_tau"] = strconv.Itoa(p.Tau)
		h.Meta["policy_adaptive"] = strconv.FormatBool(p.AdaptiveTau)
	case simulation.DeadlinePolicy:
		h.Meta["policy_deadline_factor"] = strconv.FormatFloat(p.Factor, 'g', -1, 64)
	}
	return h
}

// WithEvalSchedule stamps a sampled-evaluation schedule into a trace header
// (eval_sample/eval_rotate Meta keys), so replays validate their eval config
// against the recording's and SpecFromTraceHeader rebuilds it. Exact-eval
// runs (sample <= 0) leave the header untouched — older traces and exact
// recordings stay byte-identical.
func WithEvalSchedule(h trace.Header, sample, rotate int) trace.Header {
	if sample <= 0 {
		return h
	}
	if rotate <= 0 {
		rotate = 1
	}
	// Copy-on-write: Header is a value but Meta is a shared map — mutating it
	// in place would leak the schedule into the caller's header too.
	meta := make(map[string]string, len(h.Meta)+2)
	for k, v := range h.Meta {
		meta[k] = v
	}
	meta["eval_sample"] = strconv.Itoa(sample)
	meta["eval_rotate"] = strconv.Itoa(rotate)
	h.Meta = meta
	return h
}

// policyFromTraceHeader rebuilds the aggregation policy a header describes
// from its Policy name and Meta parameters. An empty or barrier policy maps
// to nil (the engine default).
func policyFromTraceHeader(h trace.Header) (simulation.AggregationPolicy, error) {
	switch h.Policy {
	case "", trace.PolicyBarrier:
		return nil, nil
	case trace.PolicyGossip:
		return simulation.GossipPolicy{}, nil
	case trace.PolicyBounded:
		k, err := strconv.Atoi(h.Meta["policy_k"])
		if err != nil {
			return nil, fmt.Errorf("experiments: trace header policy_k %q: %w", h.Meta["policy_k"], err)
		}
		tau, err := strconv.Atoi(h.Meta["policy_tau"])
		if err != nil {
			return nil, fmt.Errorf("experiments: trace header policy_tau %q: %w", h.Meta["policy_tau"], err)
		}
		adaptive := h.Meta["policy_adaptive"] == "true"
		return simulation.BoundedStalenessPolicy{K: k, Tau: tau, AdaptiveTau: adaptive}, nil
	case trace.PolicyDeadline:
		f, err := strconv.ParseFloat(h.Meta["policy_deadline_factor"], 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: trace header policy_deadline_factor %q: %w", h.Meta["policy_deadline_factor"], err)
		}
		return simulation.DeadlinePolicy{Factor: f}, nil
	default:
		return nil, fmt.Errorf("experiments: trace header policy %q unknown", h.Policy)
	}
}

// ReplayTrace rebuilds the fleet a trace describes (from its header
// metadata) and re-executes the recorded schedule through the async engine,
// recording the replayed schedule alongside. For a sim trace the replay must
// be event-identical; for a cluster trace it re-costs the observed wall-clock
// schedule under the simulator's byte ledger.
func ReplayTrace(tr *trace.Trace) (*simulation.Result, *trace.Trace, error) {
	spec, err := SpecFromTraceHeader(tr.Header)
	if err != nil {
		return nil, nil, err
	}
	rp, err := trace.NewReplayer(tr)
	if err != nil {
		return nil, nil, err
	}
	spec.Replay = rp
	rec := trace.NewRecorder(tr.Header)
	rec.Trace().Header.Source = trace.SourceSim // the replay itself is simulated
	spec.Recorder = rec
	res, err := Run(spec)
	if err != nil {
		return nil, nil, err
	}
	return res, rec.Trace(), nil
}

// SpecFromTraceHeader reconstructs the run specification a trace header
// describes. Only default algorithm knobs are representable; runs with
// custom alphas/gammas replay through the library API instead.
func SpecFromTraceHeader(h trace.Header) (RunSpec, error) {
	for _, key := range []string{"dataset", "scale", "algo", "seed"} {
		if h.Meta[key] == "" {
			return RunSpec{}, fmt.Errorf("experiments: trace header lacks %q metadata; replay needs dataset/scale/algo/seed", key)
		}
	}
	scale, err := ParseScale(h.Meta["scale"])
	if err != nil {
		return RunSpec{}, err
	}
	seed, err := strconv.ParseUint(h.Meta["seed"], 10, 64)
	if err != nil {
		return RunSpec{}, fmt.Errorf("experiments: trace header seed %q: %w", h.Meta["seed"], err)
	}
	w, err := NewWorkload(h.Meta["dataset"], scale, h.Nodes, seed)
	if err != nil {
		return RunSpec{}, err
	}
	policy, err := policyFromTraceHeader(h)
	if err != nil {
		return RunSpec{}, err
	}
	spec := RunSpec{
		Workload: w,
		Algo:     AlgoSpec{Kind: Algo(h.Meta["algo"])},
		Rounds:   h.Rounds,
		Seed:     seed,
		Async:    true,
		Policy:   policy,
	}
	// Topology metadata is optional (older and cluster traces are static).
	switch h.Meta["topology"] {
	case "", "static":
	case "dynamic":
		spec.Dynamic = true
	default:
		return RunSpec{}, fmt.Errorf("experiments: trace header topology %q unknown (want static or dynamic)", h.Meta["topology"])
	}
	if s := h.Meta["epoch_sec"]; s != "" {
		spec.EpochSec, err = strconv.ParseFloat(s, 64)
		if err != nil {
			return RunSpec{}, fmt.Errorf("experiments: trace header epoch_sec %q: %w", s, err)
		}
	}
	// Eval-schedule metadata is optional (exact-eval traces omit it).
	if s := h.Meta["eval_sample"]; s != "" {
		spec.EvalSample, err = strconv.Atoi(s)
		if err != nil {
			return RunSpec{}, fmt.Errorf("experiments: trace header eval_sample %q: %w", s, err)
		}
	}
	if s := h.Meta["eval_rotate"]; s != "" {
		spec.EvalRotate, err = strconv.Atoi(s)
		if err != nil {
			return RunSpec{}, fmt.Errorf("experiments: trace header eval_rotate %q: %w", s, err)
		}
	}
	return spec, nil
}

// ExtReplayResult is the record/replay extension experiment: one async run
// with heterogeneity and churn is recorded, round-tripped through the wire
// format, and replayed as the authoritative schedule. The replay must
// reproduce the event sequence and byte ledger exactly — the property that
// makes cluster traces re-costable through the simulator.
type ExtReplayResult struct {
	Nodes, Rounds int

	// Recorded-run outcome.
	Events        int
	RecordedBytes int64
	RecordedAcc   float64

	// Replay parity.
	ReplayedBytes int64
	ReplayedAcc   float64
	RowsRecorded  int
	RowsReplayed  int
	SequenceMatch bool

	// Staleness of the recorded run (the gossip-staleness study's columns).
	StaleMean, StaleMax, StaleP95 float64

	Stats trace.Stats
	Diff  trace.Diff
}

// ExtReplay runs the record → write → read → replay loop on the CIFAR-10-like
// workload under stragglers and churn.
func ExtReplay(scale Scale, seed uint64) (*ExtReplayResult, error) {
	w, err := NewWorkload("cifar10", scale, 0, seed)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder(TraceHeaderFor(w, AlgoJWINS, 0, seed, false, false, 0))
	spec := RunSpec{
		Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Seed: seed, Async: true,
		Het:           simulation.Heterogeneity{ComputeSpread: 0.5, BandwidthSpread: 0.3, LatencySpread: 0.2},
		ChurnFraction: 0.2,
		Recorder:      rec,
	}
	recorded, err := Run(spec)
	if err != nil {
		return nil, err
	}

	// Round-trip through the wire format before replaying: the parity claim
	// covers serialization, not just the in-memory recording.
	var wire bytes.Buffer
	if err := trace.WriteBinary(&wire, rec.Trace()); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	decoded, err := trace.Read(&wire)
	if err != nil {
		return nil, fmt.Errorf("deserialize: %w", err)
	}
	replayRes, replayedTrace, err := ReplayTrace(decoded)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}

	diff := trace.Compare(replayedTrace, rec.Trace())
	return &ExtReplayResult{
		Nodes: w.Nodes, Rounds: w.Rounds,
		Events:        rec.Len(),
		RecordedBytes: recorded.TotalBytes,
		RecordedAcc:   recorded.FinalAccuracy * 100,
		ReplayedBytes: replayRes.TotalBytes,
		ReplayedAcc:   replayRes.FinalAccuracy * 100,
		RowsRecorded:  len(recorded.Rounds),
		RowsReplayed:  len(replayRes.Rounds),
		SequenceMatch: diff.InSync() && diff.TimeErrMax == 0,
		StaleMean:     recorded.StaleMean,
		StaleMax:      recorded.StaleMax,
		StaleP95:      recorded.StaleP95,
		Stats:         trace.ComputeStats(rec.Trace()),
		Diff:          diff,
	}, nil
}

// String renders the parity report.
func (r *ExtReplayResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: trace record/replay (%d nodes, %d rounds, CIFAR-10-like, stragglers + 20%% churn)\n",
		r.Nodes, r.Rounds)
	fmt.Fprintf(&b, "  recorded: %d events, %s, %.1f%% accuracy, %d rows\n",
		r.Events, FormatBytes(r.RecordedBytes), r.RecordedAcc, r.RowsRecorded)
	fmt.Fprintf(&b, "  replayed: %s, %.1f%% accuracy, %d rows\n",
		FormatBytes(r.ReplayedBytes), r.ReplayedAcc, r.RowsReplayed)
	fmt.Fprintf(&b, "  sequence match: %v (time err max %.6fs, %d/%d unmatched)\n",
		r.SequenceMatch, r.Diff.TimeErrMax, r.Diff.OnlyA+r.Diff.OnlyB, r.Diff.Matched)
	fmt.Fprintf(&b, "  staleness: mean %.3f, max %.0f, p95 %.3f iterations\n",
		r.StaleMean, r.StaleMax, r.StaleP95)
	return b.String()
}

// CSV implements CSVer.
func (r *ExtReplayResult) CSV() string {
	var b strings.Builder
	b.WriteString("nodes,rounds,events,recorded_bytes,replayed_bytes,recorded_acc,replayed_acc,rows_recorded,rows_replayed,sequence_match,time_err_max,stale_mean,stale_max,stale_p95\n")
	fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%.2f,%.2f,%d,%d,%v,%.6f,%.4f,%.0f,%.4f\n",
		r.Nodes, r.Rounds, r.Events, r.RecordedBytes, r.ReplayedBytes,
		r.RecordedAcc, r.ReplayedAcc, r.RowsRecorded, r.RowsReplayed,
		r.SequenceMatch, r.Diff.TimeErrMax, r.StaleMean, r.StaleMax, r.StaleP95)
	return b.String()
}
