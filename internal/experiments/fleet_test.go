package experiments

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/simulation"
)

// TestLazyFleetMatchesEager: copy-on-write fleets must be bit-identical to
// eagerly built ones across every algorithm — including CHOCO, whose replica
// bookkeeping requires all nodes to observe the same initial weights, and
// JWINS, whose constructor snapshots the start parameters before any model
// materializes.
func TestLazyFleetMatchesEager(t *testing.T) {
	w, err := ScaleWorkload(8, 3)
	if err != nil {
		t.Fatalf("ScaleWorkload: %v", err)
	}
	for _, algo := range []Algo{AlgoFull, AlgoRandom, AlgoJWINS, AlgoChoco} {
		t.Run(string(algo), func(t *testing.T) {
			run := func(build func(*Workload, AlgoSpec, uint64) ([]core.Node, error)) *simulation.Result {
				nodes, err := build(w, AlgoSpec{Kind: algo}, 11)
				if err != nil {
					t.Fatalf("build fleet: %v", err)
				}
				res, err := runWithNodes(RunSpec{Workload: w, Algo: AlgoSpec{Kind: algo}, Seed: 11}, nodes)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return res
			}
			lazyRes := run(BuildFleet)
			eagerRes := run(BuildFleetEager)
			if len(lazyRes.Rounds) != len(eagerRes.Rounds) {
				t.Fatalf("row count: lazy %d, eager %d", len(lazyRes.Rounds), len(eagerRes.Rounds))
			}
			// Bit-identical, with NaN == NaN (rows before the first eval
			// cadence carry NaN test metrics).
			eq := func(a, b float64) bool {
				return a == b || (math.IsNaN(a) && math.IsNaN(b))
			}
			for i := range lazyRes.Rounds {
				l, e := lazyRes.Rounds[i], eagerRes.Rounds[i]
				if !eq(l.TrainLoss, e.TrainLoss) || !eq(l.TestLoss, e.TestLoss) || !eq(l.TestAcc, e.TestAcc) {
					t.Fatalf("row %d diverged: lazy %+v, eager %+v", i, l, e)
				}
			}
			if !eq(lazyRes.FinalAccuracy, eagerRes.FinalAccuracy) || !eq(lazyRes.FinalLoss, eagerRes.FinalLoss) {
				t.Fatalf("final diverged: lazy acc=%v loss=%v, eager acc=%v loss=%v",
					lazyRes.FinalAccuracy, lazyRes.FinalLoss, eagerRes.FinalAccuracy, eagerRes.FinalLoss)
			}
		})
	}
}

// TestWorkloadMemoization: repeated synthesis of the same workload key must
// share the expensive read-only pieces (dataset, partition) while still
// handing each caller a distinct *Workload, so callers can tweak Rounds or
// EvalEvery without corrupting the cache.
func TestWorkloadMemoization(t *testing.T) {
	a, err := NewWorkload("cifar10", Micro, 8, 7)
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	b, err := NewWorkload("cifar10", Micro, 8, 7)
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	if a == b {
		t.Fatal("NewWorkload returned the same *Workload twice; callers must get copies")
	}
	if a.Dataset != b.Dataset {
		t.Fatal("NewWorkload re-synthesized the dataset for an identical key")
	}
	c, err := NewWorkload("cifar10", Micro, 8, 8)
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	if a.Dataset == c.Dataset {
		t.Fatal("NewWorkload shared a dataset across different seeds")
	}

	s1, err := ScaleWorkload(32, 5)
	if err != nil {
		t.Fatalf("ScaleWorkload: %v", err)
	}
	s2, err := ScaleWorkload(32, 5)
	if err != nil {
		t.Fatalf("ScaleWorkload: %v", err)
	}
	if s1 == s2 {
		t.Fatal("ScaleWorkload returned the same *Workload twice")
	}
	if s1.Dataset != s2.Dataset {
		t.Fatal("ScaleWorkload re-synthesized the dataset for an identical key")
	}
}

// TestLazyFleetDefersMaterialization: a freshly built fleet must not have
// built any per-node layer graphs yet — that deferral is the whole point of
// the copy-on-write path.
func TestLazyFleetDefersMaterialization(t *testing.T) {
	w, err := ScaleWorkload(16, 3)
	if err != nil {
		t.Fatalf("ScaleWorkload: %v", err)
	}
	nodes, err := BuildFleet(w, AlgoSpec{Kind: AlgoJWINS}, 11)
	if err != nil {
		t.Fatalf("build fleet: %v", err)
	}
	for i, nd := range nodes {
		lz, ok := nd.Model().(*nn.Lazy)
		if !ok {
			t.Fatalf("node %d model is %T, want *nn.Lazy", i, nd.Model())
		}
		if lz.Materialized() {
			t.Fatalf("node %d materialized at construction", i)
		}
	}
	// First local training materializes exactly that node.
	nodes[3].LocalTrain()
	for i, nd := range nodes {
		if got := nd.Model().(*nn.Lazy).Materialized(); got != (i == 3) {
			t.Fatalf("node %d materialized = %v after training node 3", i, got)
		}
	}
}
