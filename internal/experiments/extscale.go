package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/simulation"
	"repro/internal/trace"
	"repro/internal/vec"
)

// ScaleWorkload builds the deliberately lean n-node task of the ext-scale
// sweep: 8×8 single-channel 4-class images (two shards per node, the usual
// non-IID dealing) under a 64→16→4 MLP, so per-node compute stays tiny and
// the run measures the *system* — scheduler, payload fan-out, mixing
// bookkeeping — rather than SGD. One sample per class per node keeps dataset
// memory linear in n (4n samples) all the way to 8192 nodes. Synthesis is
// memoized per (n, seed), so a sweep's arms and benchmark re-runs share one
// dataset.
func ScaleWorkload(n int, seed uint64) (*Workload, error) {
	return memoWorkload(workloadKey{"extscale", Micro, n, 2, seed}, func() (*Workload, error) {
		rng := vec.NewRNG(seed)
		ds, err := datasets.SyntheticImages(datasets.ImageConfig{
			Name: "extscale", Classes: 4, Channels: 1, Height: 8, Width: 8,
			TrainPerClass: n, TestPerClass: 8, NoiseSD: 0.3,
		}, rng)
		if err != nil {
			return nil, err
		}
		parts, err := datasets.PartitionShards(ds, n, 2, rng)
		if err != nil {
			return nil, err
		}
		return &Workload{
			Name:    "extscale",
			Nodes:   n,
			Degree:  degreeFor(n),
			Dataset: ds,
			Parts:   parts,
			NewModel: func(r *vec.RNG) nn.Trainable {
				return nn.NewMLP(64, 16, 4, r)
			},
			Opts:      core.TrainOpts{LR: 0.05, LocalSteps: 2},
			Batch:     4,
			Rounds:    4,
			EvalEvery: 4,
		}, nil
	})
}

// ExtScaleRow is one arm of the scale sweep.
type ExtScaleRow struct {
	Arm    string
	Nodes  int
	Degree int
	Rounds int

	// Events is the recorded schedule length (every kind, incl. derived
	// send/aggregate records); WallMS and EventsPerSec measure the host, not
	// simulated time.
	Events       int
	WallMS       float64
	EventsPerSec float64

	SimTime float64
	Bytes   int64
	Acc     float64 // final accuracy, percent

	// Mixing/staleness instrumentation (GapMean is NaN-safe: dyntopo arms
	// sample the gap every MixingEvery epochs).
	Epochs    int
	GapMean   float64
	StaleMean float64

	// EvalSample is the rotating eval subset size the arm ran with (0 =
	// exact evaluation over the EvalNodes cap).
	EvalSample int

	// Streamed marks arms recorded through a trace.StreamRecorder to disk
	// (bounded memory); TraceBytes is the resulting .jtb size.
	Streamed   bool
	TraceBytes int64

	// Engine telemetry (internal/metrics registry, snapshotted per arm):
	// queue-depth p95, simulated policy-wait p95, speculation hit rate, and
	// the decoded-payload cache's hit rate (decodes served from the
	// fleet-shared cache / all payload decodes).
	QueueP95      float64
	WaitP95       float64
	SpecHitRate   float64
	DecodeHitRate float64
}

// ExtScaleResult is the sweep over node counts × arms.
type ExtScaleResult struct {
	Scale Scale
	Rows  []ExtScaleRow
}

// extScaleSizes returns the sweep's node counts: 256 through 8192 (the push
// past the previous sweep's 1024-node ceiling), shrunk to 32/64 plus one
// 4096-node smoke row at micro scale for CI.
func extScaleSizes(scale Scale) []int {
	if scale == Micro {
		return []int{32, 64, 4096}
	}
	return []int{256, 512, 1024, 2048, 4096, 8192}
}

// extScaleSampledFloor is the node count from which ext-scale arms switch to
// sampled rotating evaluation, sampled mixing metrics, and streamed traces —
// the three knobs that keep per-arm cost from scaling super-linearly.
const extScaleSampledFloor = 2048

// extScaleEvalSample is the rotating eval subset size of the big arms.
const extScaleEvalSample = 64

// ExtScaleOpts overrides the sweep's evaluation schedule (jwins-bench flags).
// Zero values keep the defaults: exact-over-EvalNodes evaluation below 2048
// nodes, a 64-node rotating sample from 2048 up.
type ExtScaleOpts struct {
	// EvalSample forces this rotating subset size on every arm when > 0.
	EvalSample int
	// EvalRotate advances the sampling window every k eval rows (0/1 = every
	// row); only meaningful with sampling on.
	EvalRotate int
}

// ExtScale sweeps the async engine to 8192 nodes under three arms per size:
// plain heterogeneous async, +20% churn, and +epoch-rotated dynamic
// topologies with sampled mixing metrics (MixingEvery=2, so spectral-gap
// estimation stays off the critical path). Arms at 2048 nodes and beyond
// (and every arm of the largest size) record their full schedule through a
// trace.StreamRecorder to a temporary .jtb — the demonstration that big-fleet
// recording needs bounded memory only — and score a 64-node rotating eval
// sample instead of the exact fleet; smaller arms count events through an
// in-process sink and keep exact (EvalNodes-capped) evaluation.
func ExtScale(scale Scale, seed uint64) (*ExtScaleResult, error) {
	return ExtScaleWith(scale, seed, ExtScaleOpts{})
}

// ExtScaleWith is ExtScale with an overridden evaluation schedule.
func ExtScaleWith(scale Scale, seed uint64, opts ExtScaleOpts) (*ExtScaleResult, error) {
	res := &ExtScaleResult{Scale: scale}
	sizes := extScaleSizes(scale)
	largest := sizes[len(sizes)-1]
	arms := []struct {
		name    string
		churn   float64
		dyntopo bool
	}{
		{"async", 0, false},
		{"churn", 0.2, false},
		{"dyntopo", 0, true},
	}
	tmpDir, err := os.MkdirTemp("", "extscale-traces-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmpDir)
	for _, n := range sizes {
		w, err := ScaleWorkload(n, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: ext-scale n=%d: %w", n, err)
		}
		for _, arm := range arms {
			spec := RunSpec{
				Workload:      w,
				Algo:          AlgoSpec{Kind: AlgoJWINS},
				Seed:          seed,
				Async:         true,
				EvalNodes:     8,
				EvalRotate:    opts.EvalRotate,
				ChurnFraction: arm.churn,
				Het:           simulation.Heterogeneity{ComputeSpread: 0.3},
				Telemetry:     simulation.NewTelemetry(),
			}
			if arm.dyntopo {
				spec.Dynamic = true
				spec.MixingEvery = 2
			}
			if n >= extScaleSampledFloor {
				spec.EvalSample = extScaleEvalSample
				spec.MixingEvery = 2
			}
			if opts.EvalSample > 0 {
				spec.EvalSample = opts.EvalSample
			}

			row := ExtScaleRow{
				Arm: arm.name, Nodes: n, Degree: w.Degree, Rounds: w.Rounds,
				EvalSample: spec.EvalSample,
			}
			var (
				stream    *trace.StreamRecorder
				counter   countingSink
				tracePath string
			)
			if n == largest || n >= extScaleSampledFloor {
				// The headline arms stream their schedule to disk with
				// bounded buffers: nothing here retains O(events). The header
				// carries the eval schedule so replays validate against it.
				tracePath = filepath.Join(tmpDir, fmt.Sprintf("n%d-%s%s", n, arm.name, trace.BinaryExt))
				stream, err = trace.NewStreamRecorderFile(tracePath, WithEvalSchedule(TraceHeaderFor(
					w, AlgoJWINS, w.Rounds, seed, false, arm.dyntopo, extScaleEpochSec(&spec, w)),
					spec.EvalSample, spec.EvalRotate))
				if err != nil {
					return nil, err
				}
				spec.Recorder = stream
				row.Streamed = true
			} else {
				spec.Recorder = &counter
			}

			start := time.Now()
			r, err := Run(spec)
			if err != nil {
				return nil, fmt.Errorf("experiments: ext-scale n=%d %s: %w", n, arm.name, err)
			}
			row.WallMS = float64(time.Since(start).Microseconds()) / 1000

			if stream != nil {
				if err := stream.Close(); err != nil {
					return nil, fmt.Errorf("experiments: ext-scale n=%d %s trace: %w", n, arm.name, err)
				}
				row.Events = stream.Len()
				if fi, err := os.Stat(tracePath); err == nil {
					row.TraceBytes = fi.Size()
				}
			} else {
				row.Events = counter.n
			}
			if row.WallMS > 0 {
				row.EventsPerSec = float64(row.Events) / (row.WallMS / 1000)
			}
			row.SimTime = r.SimTime
			row.Bytes = r.TotalBytes
			row.Acc = r.FinalAccuracy * 100
			row.Epochs = r.Epochs
			row.GapMean = r.SpectralGapMean
			row.StaleMean = r.StaleMean
			tel := simulation.Summarize(r.Telemetry)
			row.QueueP95 = tel.QueueP95
			row.WaitP95 = tel.WaitP95
			row.SpecHitRate = tel.SpecHitRate
			row.DecodeHitRate = tel.DecodeHitRate
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// extScaleEpochSec resolves the epoch length a dyntopo arm will run with, so
// the streamed trace header records the effective value (replay validates
// against it). Non-dynamic arms record 0.
func extScaleEpochSec(spec *RunSpec, w *Workload) float64 {
	if !spec.Dynamic {
		return 0
	}
	if spec.EpochSec > 0 {
		return spec.EpochSec
	}
	eff := DefaultEpochSec(w)
	spec.EpochSec = eff
	return eff
}

// countingSink counts recorded events without retaining them — the
// cheap-side instrumentation of the non-streamed arms.
type countingSink struct{ n int }

// Record implements trace.Sink.
func (c *countingSink) Record(trace.Event) { c.n++ }

// String renders the sweep.
func (r *ExtScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: async engine at scale (scale=%s, lean MLP task, JWINS)\n", r.Scale)
	fmt.Fprintf(&b, "%-6s %-6s %-8s %-5s | %9s %9s %12s | %8s %8s | %7s %8s | %8s %8s %7s %7s | %-8s\n",
		"nodes", "degree", "arm", "eval", "events", "wall-ms", "events/s", "sim-time", "acc", "epochs", "gap", "q-p95", "wait-p95", "spec", "decode", "trace")
	for _, row := range r.Rows {
		traceCol := "-"
		if row.Streamed {
			traceCol = FormatBytes(row.TraceBytes)
		}
		evalCol := "exact"
		if row.EvalSample > 0 {
			evalCol = fmt.Sprintf("s%d", row.EvalSample)
		}
		fmt.Fprintf(&b, "%-6d %-6d %-8s %-5s | %9d %9.1f %12.0f | %7.2fs %7.1f%% | %7d %8.4f | %8.1f %7.3fs %6.0f%% %6.0f%% | %-8s\n",
			row.Nodes, row.Degree, row.Arm, evalCol,
			row.Events, row.WallMS, row.EventsPerSec,
			row.SimTime, row.Acc,
			row.Epochs, row.GapMean,
			row.QueueP95, row.WaitP95, row.SpecHitRate*100, row.DecodeHitRate*100, traceCol)
	}
	b.WriteString("streamed arms record their full schedule through trace.StreamRecorder (bounded memory).\n")
	b.WriteString("eval sN arms score a seeded rotating n-node subset per eval row (exact below 2048 nodes).\n")
	b.WriteString("q-p95/wait-p95/spec/decode come from the engine telemetry registry (internal/metrics).\n")
	return b.String()
}

// CSV implements CSVer.
func (r *ExtScaleResult) CSV() string {
	var b strings.Builder
	b.WriteString("nodes,degree,arm,rounds,eval_sample,events,wall_ms,events_per_sec,sim_time,bytes,acc,epochs,gap_mean,stale_mean,streamed,trace_bytes,queue_p95,wait_p95,spec_hit_rate,decode_hit_rate\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d,%d,%s,%d,%d,%d,%.1f,%.0f,%.4f,%d,%.2f,%d,%.4f,%.4f,%v,%d,%.1f,%.4f,%.4f,%.4f\n",
			row.Nodes, row.Degree, row.Arm, row.Rounds, row.EvalSample,
			row.Events, row.WallMS, row.EventsPerSec,
			row.SimTime, row.Bytes, row.Acc,
			row.Epochs, row.GapMean, row.StaleMean, row.Streamed, row.TraceBytes,
			row.QueueP95, row.WaitP95, row.SpecHitRate, row.DecodeHitRate)
	}
	return b.String()
}
