package experiments

import (
	"fmt"
	"strings"

	"repro/internal/simulation"
)

// Table1Row is one dataset's row of Table I plus the Figure 4 curves behind it.
type Table1Row struct {
	Dataset string
	Rounds  int
	// Final test accuracies (percent).
	AccFull, AccRandom, AccJWINS float64
	// Final test losses.
	LossFull, LossRandom, LossJWINS float64
	// Total bytes sent by all nodes.
	BytesFull, BytesRandom, BytesJWINS int64
	// Metadata bytes for JWINS (Figure 4 row-3 inset).
	MetaJWINS int64
	// NetworkSavings is 1 - JWINS/full bytes (the paper reports 62-65%).
	NetworkSavings float64
	// Curves keyed by algorithm (Figure 4 rows 1-2).
	Curves map[string][]simulation.RoundMetrics
}

// Table1Result is the full table.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reproduces Table I / Figure 4: full-sharing vs random sampling vs
// JWINS on the five workloads for a fixed round budget. datasetFilter limits
// the run to the named datasets (nil = all five).
func Table1(scale Scale, seed uint64, datasetFilter []string) (*Table1Result, error) {
	names := datasetFilter
	if len(names) == 0 {
		names = WorkloadNames
	}
	res := &Table1Result{}
	for _, name := range names {
		row, err := table1Row(name, scale, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: table 1 %s: %w", name, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func table1Row(name string, scale Scale, seed uint64) (*Table1Row, error) {
	w, err := NewWorkload(name, scale, 0, seed)
	if err != nil {
		return nil, err
	}
	row := &Table1Row{Dataset: name, Rounds: w.Rounds, Curves: map[string][]simulation.RoundMetrics{}}

	type outcome struct {
		acc, loss float64
		bytes     int64
		meta      int64
	}
	runOne := func(kind Algo) (*outcome, error) {
		var series []simulation.RoundMetrics
		r, err := Run(RunSpec{
			Workload: w,
			Algo:     AlgoSpec{Kind: kind},
			Seed:     seed,
			OnRound:  func(rm simulation.RoundMetrics) { series = append(series, rm) },
		})
		if err != nil {
			return nil, err
		}
		row.Curves[string(kind)] = series
		return &outcome{acc: r.FinalAccuracy, loss: r.FinalLoss, bytes: r.TotalBytes, meta: r.MetaBytes}, nil
	}

	full, err := runOne(AlgoFull)
	if err != nil {
		return nil, err
	}
	random, err := runOne(AlgoRandom)
	if err != nil {
		return nil, err
	}
	jwins, err := runOne(AlgoJWINS)
	if err != nil {
		return nil, err
	}

	row.AccFull, row.AccRandom, row.AccJWINS = full.acc*100, random.acc*100, jwins.acc*100
	row.LossFull, row.LossRandom, row.LossJWINS = full.loss, random.loss, jwins.loss
	row.BytesFull, row.BytesRandom, row.BytesJWINS = full.bytes, random.bytes, jwins.bytes
	row.MetaJWINS = jwins.meta
	row.NetworkSavings = 1 - float64(jwins.bytes)/float64(full.bytes)
	return row, nil
}

// String renders the table in the paper's layout.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: final test accuracies and network transfer (fixed rounds)\n")
	fmt.Fprintf(&b, "%-12s %7s | %8s %8s %8s | %12s %12s | %8s\n",
		"dataset", "rounds", "acc:full", "acc:rand", "acc:jwins", "sent:full", "sent:jwins", "savings")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %7d | %7.1f%% %7.1f%% %7.1f%% | %12s %12s | %7.1f%%\n",
			row.Dataset, row.Rounds,
			row.AccFull, row.AccRandom, row.AccJWINS,
			FormatBytes(row.BytesFull), FormatBytes(row.BytesJWINS),
			row.NetworkSavings*100)
	}
	return b.String()
}

// FormatBytes renders a byte count with binary units.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
