package experiments

import (
	"fmt"
	"strings"
)

// Fig5Row compares convergence cost to a common target accuracy on one
// dataset (Figure 5's protocol): random sampling runs long to establish its
// best accuracy; then every algorithm runs until it reaches that target.
type Fig5Row struct {
	Dataset        string
	TargetAccuracy float64 // percent
	// Rounds to target per algorithm (-1 = not reached within budget).
	RoundsFull, RoundsRandom, RoundsJWINS int
	// Bytes pushed to the network until the target was reached.
	BytesFull, BytesRandom, BytesJWINS int64
	// RoundsSaved is random-sampling rounds minus JWINS rounds (the paper
	// annotates e.g. "-4305 rounds" on CIFAR-10).
	RoundsSaved int
	// ByteRatio is random-sampling bytes / JWINS bytes (paper: 1.5x-4x).
	ByteRatio float64
}

// Fig5Result is the full figure.
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5 reproduces Figure 5 on the given datasets (nil = all five).
func Fig5(scale Scale, seed uint64, datasetFilter []string) (*Fig5Result, error) {
	names := datasetFilter
	if len(names) == 0 {
		names = WorkloadNames
	}
	res := &Fig5Result{}
	for _, name := range names {
		row, err := fig5Row(name, scale, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 5 %s: %w", name, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func fig5Row(name string, scale Scale, seed uint64) (*Fig5Row, error) {
	w, err := NewWorkload(name, scale, 0, seed)
	if err != nil {
		return nil, err
	}
	// Step 1: run random sampling for the fixed budget; its best accuracy is
	// the target (the paper runs it "very long"; the fixed-epoch budget plays
	// that role at reduced scale).
	probe, err := Run(RunSpec{Workload: w, Algo: AlgoSpec{Kind: AlgoRandom}, Seed: seed})
	if err != nil {
		return nil, err
	}
	target := probe.FinalAccuracy * 0.98 // small slack against eval noise
	row := &Fig5Row{Dataset: name, TargetAccuracy: target * 100}

	// Step 2: run everyone to the target, with generous round ceilings.
	ceiling := 3 * w.Rounds
	runTo := func(kind Algo) (int, int64, error) {
		r, err := Run(RunSpec{
			Workload:       w,
			Algo:           AlgoSpec{Kind: kind},
			Rounds:         ceiling,
			TargetAccuracy: target,
			Seed:           seed,
		})
		if err != nil {
			return 0, 0, err
		}
		return r.RoundsToTarget, r.BytesToTarget, nil
	}
	if row.RoundsFull, row.BytesFull, err = runTo(AlgoFull); err != nil {
		return nil, err
	}
	if row.RoundsRandom, row.BytesRandom, err = runTo(AlgoRandom); err != nil {
		return nil, err
	}
	if row.RoundsJWINS, row.BytesJWINS, err = runTo(AlgoJWINS); err != nil {
		return nil, err
	}
	if row.RoundsRandom > 0 && row.RoundsJWINS > 0 {
		row.RoundsSaved = row.RoundsRandom - row.RoundsJWINS
	}
	if row.BytesJWINS > 0 {
		row.ByteRatio = float64(row.BytesRandom) / float64(row.BytesJWINS)
	}
	return row, nil
}

// String renders the figure as a table.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: rounds and bytes to reach random sampling's accuracy\n")
	fmt.Fprintf(&b, "%-12s %8s | %9s %9s %9s | %11s %11s %11s | %7s %6s\n",
		"dataset", "target", "r:full", "r:rand", "r:jwins", "B:full", "B:rand", "B:jwins", "Δrounds", "Bx")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %7.1f%% | %9d %9d %9d | %11s %11s %11s | %7d %5.1fx\n",
			row.Dataset, row.TargetAccuracy,
			row.RoundsFull, row.RoundsRandom, row.RoundsJWINS,
			FormatBytes(row.BytesFull), FormatBytes(row.BytesRandom), FormatBytes(row.BytesJWINS),
			row.RoundsSaved, row.ByteRatio)
	}
	return b.String()
}
