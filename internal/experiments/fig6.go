package experiments

import (
	"fmt"
	"strings"

	"repro/internal/choco"
	"repro/internal/core"
)

// Fig6Row compares JWINS and CHOCO under one communication budget on the
// CIFAR-10-like workload: accuracy for the same fixed rounds, and
// bytes/simulated time to reach CHOCO's final accuracy.
type Fig6Row struct {
	Budget float64 // 0.20 or 0.10
	Gamma  float64 // CHOCO's tuned step size for this budget
	// Fixed-round comparison.
	Rounds               int
	AccChoco, AccJWINS   float64 // percent
	LossChoco, LossJWINS float64
	TimeChoco, TimeJWINS float64 // simulated seconds for the fixed rounds
	BytesPerNodeChoco    int64
	BytesPerNodeJWINS    int64
	// Run-to-target comparison (target = CHOCO's final accuracy).
	TargetAcc                     float64 // percent
	RoundsToTargetJWINS           int
	BytesToTargetJWINS            int64
	BytesToTargetFull             int64
	TimeToTargetJWINS, TimeChocoT float64
}

// Fig6Result is both budget rows.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 reproduces Figure 6: JWINS vs CHOCO at 20% and 10% communication
// budgets, with the paper's alpha distributions and tuned gammas
// (gamma=0.6 at 20%, gamma=0.1 at 10%).
func Fig6(scale Scale, seed uint64) (*Fig6Result, error) {
	res := &Fig6Result{}
	for _, cse := range []struct {
		budget, gamma float64
	}{{0.20, 0.6}, {0.10, 0.1}} {
		row, err := fig6Row(scale, seed, cse.budget, cse.gamma)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 6 budget %v: %w", cse.budget, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func fig6Row(scale Scale, seed uint64, budget, gamma float64) (*Fig6Row, error) {
	w, err := NewWorkload("cifar10", scale, 0, seed)
	if err != nil {
		return nil, err
	}
	alphas, err := core.BudgetAlphas(budget)
	if err != nil {
		return nil, err
	}
	jwinsCfg := core.DefaultJWINSConfig()
	jwinsCfg.Alphas = alphas
	jwinsSpec := AlgoSpec{Kind: AlgoJWINS, JWINS: &jwinsCfg}
	chocoSpec := AlgoSpec{Kind: AlgoChoco, Choco: &choco.Config{Fraction: budget, Gamma: gamma}}

	row := &Fig6Row{Budget: budget, Gamma: gamma, Rounds: w.Rounds}

	// Fixed-round comparison.
	chocoRes, err := Run(RunSpec{Workload: w, Algo: chocoSpec, Seed: seed})
	if err != nil {
		return nil, err
	}
	jwinsRes, err := Run(RunSpec{Workload: w, Algo: jwinsSpec, Seed: seed})
	if err != nil {
		return nil, err
	}
	n := int64(w.Nodes)
	row.AccChoco, row.AccJWINS = chocoRes.FinalAccuracy*100, jwinsRes.FinalAccuracy*100
	row.LossChoco, row.LossJWINS = chocoRes.FinalLoss, jwinsRes.FinalLoss
	row.TimeChoco, row.TimeJWINS = chocoRes.SimTime, jwinsRes.SimTime
	row.BytesPerNodeChoco = chocoRes.TotalBytes / n
	row.BytesPerNodeJWINS = jwinsRes.TotalBytes / n

	// Run-to-target: target is CHOCO's final accuracy.
	target := chocoRes.FinalAccuracy
	row.TargetAcc = target * 100
	row.TimeChocoT = chocoRes.SimTime
	toTarget, err := Run(RunSpec{
		Workload: w, Algo: jwinsSpec, Rounds: 3 * w.Rounds,
		TargetAccuracy: target, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	row.RoundsToTargetJWINS = toTarget.RoundsToTarget
	row.BytesToTargetJWINS = toTarget.BytesToTarget / n
	row.TimeToTargetJWINS = toTarget.TimeToTarget
	fullRes, err := Run(RunSpec{
		Workload: w, Algo: AlgoSpec{Kind: AlgoFull}, Rounds: 3 * w.Rounds,
		TargetAccuracy: target, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	row.BytesToTargetFull = fullRes.BytesToTarget / n
	return row, nil
}

// String renders the comparison.
func (r *Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: JWINS vs CHOCO under tight communication budgets (CIFAR-10-like)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "budget %.0f%% (gamma=%.1f), %d rounds:\n", row.Budget*100, row.Gamma, row.Rounds)
		fmt.Fprintf(&b, "  accuracy:      choco %5.1f%%  jwins %5.1f%%  (Δ %+.1f%%)\n",
			row.AccChoco, row.AccJWINS, row.AccJWINS-row.AccChoco)
		fmt.Fprintf(&b, "  test loss:     choco %5.3f   jwins %5.3f\n", row.LossChoco, row.LossJWINS)
		fmt.Fprintf(&b, "  bytes/node:    choco %s  jwins %s\n",
			FormatBytes(row.BytesPerNodeChoco), FormatBytes(row.BytesPerNodeJWINS))
		fmt.Fprintf(&b, "  sim time:      choco %.1fs  jwins %.1fs\n", row.TimeChoco, row.TimeJWINS)
		if row.RoundsToTargetJWINS > 0 {
			fmt.Fprintf(&b, "  to CHOCO's %.1f%%: jwins %d rounds, %s/node, %.1fs (choco took %.1fs); full-sharing %s/node\n",
				row.TargetAcc, row.RoundsToTargetJWINS, FormatBytes(row.BytesToTargetJWINS),
				row.TimeToTargetJWINS, row.TimeChocoT, FormatBytes(row.BytesToTargetFull))
		} else {
			fmt.Fprintf(&b, "  to CHOCO's %.1f%%: jwins did not reach target within 3x budget\n", row.TargetAcc)
		}
	}
	return b.String()
}
