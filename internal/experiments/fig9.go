package experiments

import (
	"fmt"
	"strings"

	"repro/internal/codec"
)

// Fig9Result quantifies metadata compression (Figure 9): JWINS runs with
// uncompressed float32 values, so the model payload is exactly 4 bytes per
// shared coefficient. Uncompressed metadata would also be 4 bytes per
// coefficient (a 32-bit index each), i.e. equal to the model bytes; the
// Elias-gamma encoding shrinks it by roughly an order of magnitude.
type Fig9Result struct {
	Rounds int
	// ModelBytes is the total float32 payload (== hypothetical uncompressed
	// index metadata).
	ModelBytes int64
	// MetaRaw is the uncompressed metadata size (4 bytes per index).
	MetaRaw int64
	// MetaGamma is the actual gamma-compressed metadata (headers + framing
	// included).
	MetaGamma int64
	// Compression is MetaRaw / MetaGamma (the paper reports 9.9x).
	Compression float64
	// WastedFraction is metadata's share of traffic without compression
	// (the paper: ~50%).
	WastedFraction float64
}

// Fig9 reproduces Figure 9 with a short JWINS run on the CIFAR-10-like task.
func Fig9(scale Scale, seed uint64) (*Fig9Result, error) {
	w, err := NewWorkload("cifar10", scale, 0, seed)
	if err != nil {
		return nil, err
	}
	rounds := w.Rounds / 2
	if rounds < 5 {
		rounds = 5
	}
	// Raw32 values make ModelBytes = 4 * (#shared coefficients * receivers),
	// which equals the hypothetical uncompressed index metadata exactly.
	r, err := Run(RunSpec{
		Workload: w,
		Algo:     AlgoSpec{Kind: AlgoJWINS, Codec: codec.Raw32{}},
		Rounds:   rounds,
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Rounds:     rounds,
		ModelBytes: r.ModelBytes,
		MetaRaw:    r.ModelBytes, // 4 bytes/index == 4 bytes/value
		MetaGamma:  r.MetaBytes,
	}
	if res.MetaGamma > 0 {
		res.Compression = float64(res.MetaRaw) / float64(res.MetaGamma)
	}
	res.WastedFraction = float64(res.MetaRaw) / float64(res.MetaRaw+res.ModelBytes)
	return res, nil
}

// String renders the bar chart as text.
func (r *Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: metadata size with and without Elias gamma (%d rounds)\n", r.Rounds)
	fmt.Fprintf(&b, "  model parameters:            %s\n", FormatBytes(r.ModelBytes))
	fmt.Fprintf(&b, "  metadata, uncompressed:      %s (%.0f%% of traffic wasted)\n",
		FormatBytes(r.MetaRaw), r.WastedFraction*100)
	fmt.Fprintf(&b, "  metadata, Elias gamma:       %s\n", FormatBytes(r.MetaGamma))
	fmt.Fprintf(&b, "  compression:                 %.1fx\n", r.Compression)
	return b.String()
}
