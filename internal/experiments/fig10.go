package experiments

import (
	"fmt"
	"strings"
)

// Fig10Row is one node-count setting of the scalability study.
type Fig10Row struct {
	Nodes  int
	Degree int
	Rounds int
	// Final accuracies at fixed rounds (percent).
	AccRandom, AccJWINS float64
	// AccGain is JWINS minus random sampling (paper: +10-12%).
	AccGain float64
	// RoundsToTarget for JWINS to reach random sampling's final accuracy.
	RoundsToTargetJWINS int
	// RoundsSaved vs random sampling's full budget.
	RoundsSaved int
	// Gross bytes (all nodes) until target accuracy.
	BytesRandom, BytesJWINS int64
}

// Fig10Result is the scalability sweep.
type Fig10Result struct {
	Rows []Fig10Row
}

// fig10Sizes returns the node counts and degrees per scale, mirroring the
// paper's 96/192/288/384 at degree 4/5/5/6.
func fig10Sizes(scale Scale) ([]int, []int) {
	switch scale {
	case Micro:
		return []int{8, 12}, []int{4, 4}
	case Small:
		return []int{16, 32, 48, 64}, []int{4, 5, 5, 6}
	default:
		return []int{96, 192, 288, 384}, []int{4, 5, 5, 6}
	}
}

// Fig10 reproduces the scalability study on the CIFAR-10-like task with the
// less-strict 4-shards-per-node partitioning: at every size, JWINS should
// beat random sampling on accuracy and reach its target accuracy sooner,
// with gross savings growing with the node count.
func Fig10(scale Scale, seed uint64) (*Fig10Result, error) {
	sizes, degrees := fig10Sizes(scale)
	res := &Fig10Result{}
	for i, n := range sizes {
		row, err := fig10Row(scale, seed, n, degrees[i])
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 10 n=%d: %w", n, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func fig10Row(scale Scale, seed uint64, nodes, degree int) (*Fig10Row, error) {
	w, err := NewCIFAR10Shards(scale, nodes, 4, seed)
	if err != nil {
		return nil, err
	}
	w.Degree = degree
	row := &Fig10Row{Nodes: nodes, Degree: degree, Rounds: w.Rounds}

	random, err := Run(RunSpec{Workload: w, Algo: AlgoSpec{Kind: AlgoRandom}, Seed: seed})
	if err != nil {
		return nil, err
	}
	jwins, err := Run(RunSpec{Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Seed: seed})
	if err != nil {
		return nil, err
	}
	row.AccRandom = random.FinalAccuracy * 100
	row.AccJWINS = jwins.FinalAccuracy * 100
	row.AccGain = row.AccJWINS - row.AccRandom
	row.BytesRandom = random.TotalBytes

	target := random.FinalAccuracy
	toTarget, err := Run(RunSpec{
		Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS},
		Rounds: 2 * w.Rounds, TargetAccuracy: target, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	row.RoundsToTargetJWINS = toTarget.RoundsToTarget
	row.BytesJWINS = toTarget.BytesToTarget
	if toTarget.RoundsToTarget > 0 {
		row.RoundsSaved = w.Rounds - toTarget.RoundsToTarget
	}
	return row, nil
}

// String renders the sweep.
func (r *Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: scalability (CIFAR-10-like, 4 shards/node)\n")
	fmt.Fprintf(&b, "%-6s %-6s %-7s | %9s %9s %7s | %8s %8s | %12s %12s\n",
		"nodes", "degree", "rounds", "acc:rand", "acc:jwins", "gain", "r:jwins", "saved", "B:rand", "B:jwins")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6d %-6d %-7d | %8.1f%% %8.1f%% %+6.1f%% | %8d %8d | %12s %12s\n",
			row.Nodes, row.Degree, row.Rounds,
			row.AccRandom, row.AccJWINS, row.AccGain,
			row.RoundsToTargetJWINS, row.RoundsSaved,
			FormatBytes(row.BytesRandom), FormatBytes(row.BytesJWINS))
	}
	return b.String()
}
