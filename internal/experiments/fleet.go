package experiments

import (
	"errors"
	"fmt"

	"repro/internal/choco"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/simulation"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/vec"
)

// ErrUnsupportedSpec rejects RunSpec combinations that no engine implements
// (as opposed to malformed inputs); match with errors.Is.
var ErrUnsupportedSpec = errors.New("experiments: unsupported run specification")

// Algo names a decentralized learning algorithm variant.
type Algo string

// Algorithms.
const (
	AlgoFull   Algo = "full-sharing"
	AlgoRandom Algo = "random-sampling"
	AlgoJWINS  Algo = "jwins"
	AlgoChoco  Algo = "choco"
	// Ablation variants (Figure 8).
	AlgoJWINSNoWavelet Algo = "jwins-no-wavelet"
	AlgoJWINSNoAccum   Algo = "jwins-no-accumulation"
	AlgoJWINSNoCutoff  Algo = "jwins-no-cutoff"
)

// AlgoSpec selects an algorithm and its knobs.
type AlgoSpec struct {
	Kind Algo
	// JWINS overrides the default JWINS config when non-nil.
	JWINS *core.JWINSConfig
	// RandomFraction is the random-sampling share per round (default 0.37,
	// the paper's byte-matched setting).
	RandomFraction float64
	// Choco configures CHOCO-SGD (default fraction 0.2, gamma 0.6).
	Choco *choco.Config
	// Codec overrides the float codec (default flate32).
	Codec codec.FloatCodec
}

func (s AlgoSpec) codec() codec.FloatCodec {
	if s.Codec != nil {
		return s.Codec
	}
	return codec.PlaneFlate32{}
}

// BuildFleet constructs one node per partition entry. All nodes start from
// identical initial weights (standard D-PSGD practice, required for CHOCO's
// replica bookkeeping); per-node randomness (batch order, cut-off draws)
// descends deterministically from seed.
//
// Per-node models are copy-on-write (nn.Lazy): construction builds one
// template model plus a small wrapper per node, and each node's real layer
// graph materializes on its first train/aggregate/eval touch with the shared
// initial weights installed. A 10k-node fleet at round 0 therefore costs ~1
// model; results are bit-identical to eager construction (the wrapped build
// closure owns a dedicated RNG split, so loader and algorithm seeds do not
// depend on when — or whether — the model is built).
func BuildFleet(w *Workload, spec AlgoSpec, seed uint64) ([]core.Node, error) {
	return buildFleet(w, spec, seed, true)
}

// BuildFleetEager is BuildFleet without copy-on-write models: every node's
// layer graph is built up front. It exists for equivalence tests and for
// measuring what the lazy path saves; fleets behave identically either way.
func BuildFleetEager(w *Workload, spec AlgoSpec, seed uint64) ([]core.Node, error) {
	return buildFleet(w, spec, seed, false)
}

func buildFleet(w *Workload, spec AlgoSpec, seed uint64, lazy bool) ([]core.Node, error) {
	root := vec.NewRNG(seed)
	template := w.NewModel(root.Split())
	initial := make([]float64, template.ParamCount())
	template.CopyParams(initial)

	nodes := make([]core.Node, 0, w.Nodes)
	for i := 0; i < w.Nodes; i++ {
		nodeRNG := root.Split()
		// The model gets its own split in both paths so the loader/algorithm
		// splits below are independent of model construction order; a lazy
		// node that never materializes must not shift its siblings' seeds.
		modelRNG := nodeRNG.Split()
		var model nn.Trainable
		if lazy {
			model = nn.NewLazy(len(initial), initial, func() nn.Trainable { return w.NewModel(modelRNG) })
		} else {
			model = w.NewModel(modelRNG)
			model.SetParams(initial)
		}
		loader := datasets.NewLoader(w.Dataset, w.Parts[i], w.Batch, nodeRNG.Split())

		var (
			n   core.Node
			err error
		)
		switch spec.Kind {
		case AlgoFull:
			n, err = core.NewFullSharing(i, model, loader, w.Opts, spec.codec())
		case AlgoRandom:
			frac := spec.RandomFraction
			if frac == 0 {
				frac = 0.37
			}
			n, err = core.NewRandomSampling(i, model, loader, w.Opts, frac, spec.codec(), nodeRNG.Split())
		case AlgoJWINS, AlgoJWINSNoWavelet, AlgoJWINSNoAccum, AlgoJWINSNoCutoff:
			cfg := core.DefaultJWINSConfig()
			if spec.JWINS != nil {
				cfg = *spec.JWINS
			}
			cfg.FloatCodec = spec.codec()
			switch spec.Kind {
			case AlgoJWINSNoWavelet:
				cfg.DisableWavelet = true
			case AlgoJWINSNoAccum:
				cfg.DisableAccumulation = true
			case AlgoJWINSNoCutoff:
				cfg.DisableRandomCutoff = true
			}
			n, err = core.NewJWINS(i, model, loader, w.Opts, cfg, nodeRNG.Split())
		case AlgoChoco:
			cfg := choco.Config{Fraction: 0.2, Gamma: 0.6}
			if spec.Choco != nil {
				cfg = *spec.Choco
			}
			if cfg.FloatCodec == nil {
				cfg.FloatCodec = spec.codec()
			}
			n, err = choco.New(i, model, loader, w.Opts, cfg)
		default:
			return nil, fmt.Errorf("experiments: unknown algorithm %q", spec.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: building node %d (%s): %w", i, spec.Kind, err)
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}

// RunSpec describes one engine run.
type RunSpec struct {
	Workload *Workload
	Algo     AlgoSpec
	// Rounds overrides the workload's fixed-epoch budget when > 0.
	Rounds int
	// TargetAccuracy stops early when reached (Figure 5/6 protocol).
	TargetAccuracy float64
	// Dynamic re-randomizes the topology: every round under the synchronous
	// engine (Figure 7), every simulated-time epoch (see EpochSec) under the
	// async engine.
	Dynamic bool
	// EpochSec is the topology epoch length in simulated seconds (async
	// only). With Dynamic it sets the rotation cadence (0 = one nominal
	// round, see DefaultEpochSec); without Dynamic a positive value rotates
	// epochs over the static graph (bookkeeping only — no edges change).
	EpochSec float64
	// EvalNodes caps evaluated nodes (0 = all); the cap is a seeded uniform
	// subset fixed for the run (see simulation.Config.EvalNodes).
	EvalNodes int
	// EvalSample, when > 0, evaluates a seeded rotating subset of that many
	// nodes per eval row instead of the whole fleet; every node is still
	// visited within ceil(n/EvalSample)×EvalRotate eval rows. 0 keeps exact
	// evaluation (see simulation.Config.EvalSample).
	EvalSample int
	// EvalRotate advances the sampling window every EvalRotate eval rows
	// (0 = every row).
	EvalRotate int
	// Seed controls every random choice in the run.
	Seed uint64
	// OnRound is forwarded to the engine (optional).
	OnRound func(simulation.RoundMetrics)

	// Async switches to the event-driven scheduler; Rounds becomes the
	// per-node iteration budget.
	Async bool
	// Gossip selects the non-blocking aggregation policy (async only).
	// Shorthand for Policy: simulation.GossipPolicy{}; setting both is a
	// configuration error.
	Gossip bool
	// Policy selects the async aggregation policy (async only): nil defaults
	// to the full barrier (or gossip when Gossip is set); see
	// simulation.BoundedStalenessPolicy and simulation.DeadlinePolicy for the
	// semi-async middle ground.
	Policy simulation.AggregationPolicy
	// Het draws per-node compute/bandwidth/latency profiles (async only).
	Het simulation.Heterogeneity
	// ChurnFraction cycles this fraction of nodes out and back in mid-run
	// (async only); the trace is seeded from Seed and placed over the
	// nominal run horizon.
	ChurnFraction float64
	// MixingEvery samples the spectral-gap computation (async only): 0/1 =
	// every epoch, k > 1 = epochs whose index is a multiple of k (skipped
	// epochs report NaN), negative = never. Keeps gap estimation off the
	// critical path of 1024-node sweeps.
	MixingEvery int
	// Recorder, if set, captures the executed async schedule as a trace
	// (async only — the synchronous engine has no event schedule to record).
	// Pass a trace.Recorder to keep it in memory or a trace.StreamRecorder
	// to write it out incrementally with bounded buffers.
	Recorder trace.Sink
	// Replay, if set, makes a recorded trace the authoritative async
	// schedule; Het/ChurnFraction stop influencing event times (async only).
	Replay *trace.Replayer
	// Telemetry, if set, streams engine counters (queue depth, barrier
	// waits, speculation hit rate, byte split) into the given registry as
	// the run executes and snapshots them into Result.Telemetry (async
	// only). Strictly observational: the schedule is identical with or
	// without it. The same registry may serve a live HTTP endpoint (see
	// internal/metrics.Serve) while the run is in flight.
	Telemetry *simulation.Telemetry

	// failure injection, set by runFleetWithFaults
	faultDrop, faultOffline float64
}

// Run builds the fleet and topology and executes the run.
func Run(spec RunSpec) (*simulation.Result, error) {
	nodes, err := BuildFleet(spec.Workload, spec.Algo, spec.Seed)
	if err != nil {
		return nil, err
	}
	return runWithNodes(spec, nodes)
}

// DefaultEpochSec is the topology epoch length used when RunSpec.EpochSec is
// unset for an async dynamic run: one nominal synchronous round under the
// default time model, estimated from an uncompressed payload. The graph then
// rotates at roughly the per-round cadence of the paper's Figure 7, and the
// value is reproducible from the workload alone — trace headers record it so
// replays can validate their topology against the recording.
func DefaultEpochSec(w *Workload) float64 {
	payload := 4 * w.NewModel(vec.NewRNG(0)).ParamCount()
	return simulation.Config{}.NominalRoundSec(w.Opts.LocalSteps, payload, w.Degree)
}

// runFleetWithFaults executes a run with failure injection and returns the
// final accuracy (fraction).
func runFleetWithFaults(spec RunSpec, nodes []core.Node, dropProb, offlineProb float64) (float64, error) {
	spec.faultDrop, spec.faultOffline = dropProb, offlineProb
	res, err := runWithNodes(spec, nodes)
	if err != nil {
		return 0, err
	}
	return res.FinalAccuracy, nil
}

// runWithNodes executes a run over pre-built nodes (used by experiments that
// instrument node state during the run).
func runWithNodes(spec RunSpec, nodes []core.Node) (*simulation.Result, error) {
	w := spec.Workload
	topoRNG := vec.NewRNG(spec.Seed ^ 0x746f706f) // "topo"
	var provider topology.Provider
	switch {
	case spec.Dynamic && spec.Async:
		// Async dynamic topologies rotate on simulated-time epochs; the base
		// graphs must be random-access deterministic so trace replay can
		// regenerate the recorded sequence.
		epochSec := spec.EpochSec
		if epochSec <= 0 {
			epochSec = DefaultEpochSec(w)
		}
		provider = topology.NewEpochProvider(
			topology.NewSeededDynamic(w.Nodes, w.Degree, spec.Seed^0x746f706f), w.Nodes, epochSec)
	case spec.Dynamic:
		provider = topology.NewDynamic(w.Nodes, w.Degree, topoRNG)
	default:
		g, err := topology.Regular(w.Nodes, w.Degree, topoRNG)
		if err != nil {
			return nil, err
		}
		p := topology.Provider(topology.NewStatic(g))
		if spec.Async && spec.EpochSec > 0 {
			p = topology.NewEpochProvider(p, w.Nodes, spec.EpochSec)
		}
		provider = p
	}
	rounds := spec.Rounds
	if rounds == 0 {
		rounds = w.Rounds
	}
	cfg := simulation.Config{
		Rounds:         rounds,
		EvalEvery:      w.EvalEvery,
		EvalNodes:      spec.EvalNodes,
		EvalSample:     spec.EvalSample,
		EvalRotate:     spec.EvalRotate,
		EvalSeed:       spec.Seed,
		TargetAccuracy: spec.TargetAccuracy,
		DropProb:       spec.faultDrop,
		OfflineProb:    spec.faultOffline,
		FaultSeed:      spec.Seed,
	}
	if !spec.Async {
		if spec.Recorder != nil || spec.Replay != nil {
			return nil, fmt.Errorf("%w: trace recording and replay require Async runs (the synchronous engine has no event schedule)", ErrUnsupportedSpec)
		}
		if spec.Telemetry != nil {
			return nil, fmt.Errorf("%w: engine telemetry instruments the Async event loop (the synchronous engine has no queue, pool, or policy waits to observe)", ErrUnsupportedSpec)
		}
		if spec.Policy != nil || spec.Gossip {
			return nil, fmt.Errorf("%w: aggregation policies belong to the Async engine (the synchronous engine is a global barrier by construction)", ErrUnsupportedSpec)
		}
		if spec.EpochSec > 0 {
			return nil, fmt.Errorf("%w: EpochSec rotates on simulated-time epochs, which only the Async engine has (synchronous runs use Dynamic's per-round rotation)", ErrUnsupportedSpec)
		}
		eng := &simulation.Engine{
			Nodes:    nodes,
			Topology: provider,
			TestSet:  w.Dataset,
			Config:   cfg,
			OnRound:  spec.OnRound,
		}
		return eng.Run()
	}

	acfg := simulation.AsyncConfig{
		Config: cfg, Het: spec.Het, Gossip: spec.Gossip, Policy: spec.Policy,
		Record: spec.Recorder, Replay: spec.Replay,
		MixingEvery: spec.MixingEvery, Telemetry: spec.Telemetry,
	}
	if acfg.Het.Seed == 0 {
		acfg.Het.Seed = spec.Seed ^ 0x686574 // "het"
	}
	if spec.ChurnFraction > 0 && spec.Replay == nil {
		// Place the churn window over the nominal run horizon, estimated from
		// an uncompressed payload. That is an upper bound — compression can
		// shorten real rounds severalfold — so the window sits early
		// ([5%, 35%] of the estimate) to keep leave/join cycles inside the
		// run for compressed algorithms too.
		payload := 4 * nodes[0].Model().ParamCount()
		horizon := cfg.NominalRoundSec(w.Opts.LocalSteps, payload, w.Degree) * float64(rounds)
		acfg.Churn = simulation.GenerateChurn(
			w.Nodes, spec.ChurnFraction, 0.05*horizon, 0.35*horizon, 0.1*horizon, spec.Seed)
	}
	eng := &simulation.AsyncEngine{
		Nodes:    nodes,
		Topology: provider,
		TestSet:  w.Dataset,
		Config:   acfg,
		OnRound:  spec.OnRound,
	}
	return eng.Run()
}
