package experiments

import (
	"fmt"
	"strings"

	"repro/internal/simulation"
)

// Fig7Result compares static and dynamic topologies (Figure 7): dynamic
// topologies improve full-sharing and JWINS, while CHOCO's error-feedback
// state breaks when neighbors change every round.
type Fig7Result struct {
	Rounds int
	// Final accuracies (percent).
	FullStatic, FullDynamic, JWINSDynamic, ChocoDynamic float64
	// Curves for plotting.
	Curves map[string][]simulation.RoundMetrics
}

// Fig7 reproduces Figure 7 on the CIFAR-10-like workload. The paper omits
// CHOCO from the chart because it does not learn on dynamic topologies; we
// run it anyway and report the (near-chance) accuracy to document that.
func Fig7(scale Scale, seed uint64) (*Fig7Result, error) {
	w, err := NewWorkload("cifar10", scale, 0, seed)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Rounds: w.Rounds, Curves: map[string][]simulation.RoundMetrics{}}

	runOne := func(label string, algo AlgoSpec, dynamic bool) (float64, error) {
		var series []simulation.RoundMetrics
		r, err := Run(RunSpec{
			Workload: w, Algo: algo, Dynamic: dynamic, Seed: seed,
			OnRound: func(rm simulation.RoundMetrics) { series = append(series, rm) },
		})
		if err != nil {
			return 0, err
		}
		res.Curves[label] = series
		return r.FinalAccuracy * 100, nil
	}

	if res.FullStatic, err = runOne("full-static", AlgoSpec{Kind: AlgoFull}, false); err != nil {
		return nil, err
	}
	if res.FullDynamic, err = runOne("full-dynamic", AlgoSpec{Kind: AlgoFull}, true); err != nil {
		return nil, err
	}
	if res.JWINSDynamic, err = runOne("jwins-dynamic", AlgoSpec{Kind: AlgoJWINS}, true); err != nil {
		return nil, err
	}
	if res.ChocoDynamic, err = runOne("choco-dynamic", AlgoSpec{Kind: AlgoChoco}, true); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the comparison.
func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: dynamic topology study (%d rounds, CIFAR-10-like)\n", r.Rounds)
	fmt.Fprintf(&b, "  full-sharing static:   %5.1f%%\n", r.FullStatic)
	fmt.Fprintf(&b, "  full-sharing dynamic:  %5.1f%%\n", r.FullDynamic)
	fmt.Fprintf(&b, "  jwins dynamic:         %5.1f%%\n", r.JWINSDynamic)
	fmt.Fprintf(&b, "  choco dynamic:         %5.1f%%  (paper: no learning on dynamic topologies)\n", r.ChocoDynamic)
	return b.String()
}
