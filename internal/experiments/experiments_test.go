package experiments

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/vec"
)

func TestParseScale(t *testing.T) {
	for _, s := range []string{"micro", "small", "paper"} {
		sc, err := ParseScale(s)
		if err != nil {
			t.Fatal(err)
		}
		if sc.String() != s {
			t.Fatalf("round trip %s -> %s", s, sc)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("expected error")
	}
}

func TestAllWorkloadsBuild(t *testing.T) {
	for _, name := range WorkloadNames {
		w, err := NewWorkload(name, Micro, 0, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(w.Parts) != w.Nodes {
			t.Fatalf("%s: %d parts for %d nodes", name, len(w.Parts), w.Nodes)
		}
		for i, p := range w.Parts {
			if len(p) == 0 {
				t.Fatalf("%s: node %d has no data", name, i)
			}
		}
		model := w.NewModel(vec.NewRNG(123))
		if model.ParamCount() <= 0 {
			t.Fatalf("%s: empty model", name)
		}
		if w.Rounds <= 0 || w.Batch <= 0 || w.Opts.LR <= 0 {
			t.Fatalf("%s: bad hyperparameters %+v", name, w)
		}
	}
	if _, err := NewWorkload("imagenet", Micro, 0, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestBuildFleetAllAlgos(t *testing.T) {
	w, err := NewWorkload("cifar10", Micro, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Algo{AlgoFull, AlgoRandom, AlgoJWINS, AlgoChoco, AlgoJWINSNoWavelet, AlgoJWINSNoAccum, AlgoJWINSNoCutoff} {
		nodes, err := BuildFleet(w, AlgoSpec{Kind: kind}, 9)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(nodes) != w.Nodes {
			t.Fatalf("%s: %d nodes", kind, len(nodes))
		}
		// All nodes share identical initial weights.
		dim := nodes[0].Model().ParamCount()
		ref := make([]float64, dim)
		nodes[0].Model().CopyParams(ref)
		p := make([]float64, dim)
		for i := 1; i < len(nodes); i++ {
			nodes[i].Model().CopyParams(p)
			for k := range p {
				if p[k] != ref[k] {
					t.Fatalf("%s: node %d initial weights differ", kind, i)
				}
			}
		}
	}
	if _, err := BuildFleet(w, AlgoSpec{Kind: "nope"}, 9); err == nil {
		t.Fatal("unknown algo accepted")
	}
}

func TestRunSmoke(t *testing.T) {
	w, err := NewWorkload("cifar10", Micro, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunSpec{Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Rounds: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 || res.TotalBytes <= 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestFig2Micro(t *testing.T) {
	r, err := Fig2(Micro, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Epochs) == 0 {
		t.Fatal("no epochs")
	}
	// Cumulative series must be non-decreasing.
	for i := 1; i < len(r.Wavelet); i++ {
		if r.Wavelet[i] < r.Wavelet[i-1] || r.FFT[i] < r.FFT[i-1] || r.Random[i] < r.Random[i-1] {
			t.Fatal("cumulative error decreased")
		}
	}
	// The headline property: wavelet loses the least information.
	last := len(r.Epochs) - 1
	if r.Wavelet[last] >= r.Random[last] {
		t.Fatalf("wavelet MSE %v not better than random %v", r.Wavelet[last], r.Random[last])
	}
	if !strings.Contains(r.String(), "wavelet") {
		t.Fatal("String() output incomplete")
	}
}

func TestFig3Micro(t *testing.T) {
	r, err := Fig3(Micro, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerNode) == 0 {
		t.Fatal("no per-node alphas captured")
	}
	for _, a := range r.PerNode {
		if a < 0.05 || a > 1 {
			t.Fatalf("alpha %v out of range", a)
		}
	}
	if len(r.MeanPerRound) == 0 {
		t.Fatal("no per-round means")
	}
	_ = r.String()
}

func TestFig9Micro(t *testing.T) {
	r, err := Fig9(Micro, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Compression < 2 {
		t.Fatalf("gamma compression only %.1fx", r.Compression)
	}
	if r.WastedFraction < 0.3 || r.WastedFraction > 0.7 {
		t.Fatalf("uncompressed metadata share %.2f, expected ~0.5", r.WastedFraction)
	}
	_ = r.String()
}

// TestExtReplayMicro: the record → write → read → replay loop must report an
// exact sequence match at micro scale.
func TestExtReplayMicro(t *testing.T) {
	r, err := ExtReplay(Micro, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !r.SequenceMatch {
		t.Fatalf("replay did not reproduce the recorded schedule: %+v", r.Diff)
	}
	if r.RecordedBytes != r.ReplayedBytes {
		t.Fatalf("byte ledgers differ: recorded %d, replayed %d", r.RecordedBytes, r.ReplayedBytes)
	}
	if r.RowsRecorded != r.Rounds || r.RowsReplayed != r.Rounds {
		t.Fatalf("rows: recorded %d, replayed %d, want %d", r.RowsRecorded, r.RowsReplayed, r.Rounds)
	}
	if r.Events == 0 || r.Stats.ByKind == nil {
		t.Fatal("empty stats")
	}
	if !strings.Contains(r.String(), "sequence match: true") {
		t.Fatalf("report:\n%s", r)
	}
}

// TestSpecFromTraceHeaderRejects: replay without fleet metadata must fail
// with a clear error, not build a wrong fleet.
func TestSpecFromTraceHeaderRejects(t *testing.T) {
	h := trace.Header{Format: trace.FormatName, Version: trace.FormatVersion, Nodes: 4, Rounds: 2}
	if _, err := SpecFromTraceHeader(h); err == nil {
		t.Fatal("header without metadata accepted")
	}
}

// TestEvalScheduleHeaderRoundTrip: WithEvalSchedule must stamp the eval
// schedule into the header, SpecFromTraceHeader must rebuild it, and a zero
// sample must leave the header untouched so pre-sampler traces stay
// byte-identical.
func TestEvalScheduleHeaderRoundTrip(t *testing.T) {
	w, err := NewWorkload("cifar10", Micro, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := TraceHeaderFor(w, AlgoJWINS, 4, 1, false, false, 0)

	h := WithEvalSchedule(base, 64, 2)
	if h.Meta["eval_sample"] != "64" || h.Meta["eval_rotate"] != "2" {
		t.Fatalf("meta = %v", h.Meta)
	}
	spec, err := SpecFromTraceHeader(h)
	if err != nil {
		t.Fatal(err)
	}
	if spec.EvalSample != 64 || spec.EvalRotate != 2 {
		t.Fatalf("spec eval schedule = (%d, %d), want (64, 2)", spec.EvalSample, spec.EvalRotate)
	}

	// Zero rotate normalizes to 1 (every row).
	if h := WithEvalSchedule(base, 8, 0); h.Meta["eval_rotate"] != "1" {
		t.Fatalf("rotate not normalized: %v", h.Meta)
	}

	// Sampling off: the header must pass through untouched.
	plain := WithEvalSchedule(base, 0, 3)
	if _, ok := plain.Meta["eval_sample"]; ok {
		t.Fatalf("exact-eval header gained eval meta: %v", plain.Meta)
	}
	spec, err = SpecFromTraceHeader(plain)
	if err != nil {
		t.Fatal(err)
	}
	if spec.EvalSample != 0 || spec.EvalRotate != 0 {
		t.Fatalf("legacy header produced eval schedule (%d, %d)", spec.EvalSample, spec.EvalRotate)
	}
}

// TestRecorderRequiresAsync: trace hooks on a synchronous run are a user
// error, reported as such.
func TestRecorderRequiresAsync(t *testing.T) {
	w, err := NewWorkload("cifar10", Micro, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(TraceHeaderFor(w, AlgoJWINS, 0, 1, false, false, 0))
	_, err = Run(RunSpec{Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Seed: 1, Recorder: rec})
	if err == nil || !strings.Contains(err.Error(), "Async") {
		t.Fatalf("sync run with recorder: got %v", err)
	}
}
