package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/simulation"
)

// CSVer is implemented by results that can emit machine-readable series for
// external plotting.
type CSVer interface {
	CSV() string
}

// CurvesCSV renders per-algorithm learning curves as long-format CSV:
// algo,round,train_loss,test_loss,test_acc,cum_bytes,cum_meta_bytes,
// sim_time,stale_mean,stale_max,stale_p95,epoch,spectral_gap,turnover. The
// staleness columns carry the per-iteration payload lag distribution (0 for
// synchronous runs and the async barrier in the clean limit); the last three
// carry the topology epoch active at row emission and its mixing quality
// (spectral gap of the live mixing matrix, neighbor turnover vs the previous
// epoch — both 0 for synchronous runs).
func CurvesCSV(curves map[string][]simulation.RoundMetrics) string {
	var b strings.Builder
	b.WriteString("algo,round,train_loss,test_loss,test_acc,cum_bytes,cum_meta_bytes,sim_time,stale_mean,stale_max,stale_p95,epoch,spectral_gap,turnover\n")
	algos := make([]string, 0, len(curves))
	for a := range curves {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	for _, a := range algos {
		for _, rm := range curves[a] {
			fmt.Fprintf(&b, "%s,%d,%s,%s,%s,%d,%d,%.4f,%.4f,%.0f,%.4f,%d,%.4f,%.4f\n",
				a, rm.Round, csvFloat(rm.TrainLoss), csvFloat(rm.TestLoss), csvFloat(rm.TestAcc),
				rm.CumTotalBytes, rm.CumMetaBytes, rm.SimTime,
				rm.StaleMean, rm.StaleMax, rm.StaleP95,
				rm.Epoch, rm.SpectralGap, rm.NeighborTurnover)
		}
	}
	return b.String()
}

func csvFloat(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return fmt.Sprintf("%.6f", v)
}

// CSV implements CSVer for Table 1: one row per dataset plus the Figure 4
// curves appended in long format.
func (r *Table1Result) CSV() string {
	var b strings.Builder
	b.WriteString("dataset,rounds,acc_full,acc_random,acc_jwins,loss_full,loss_random,loss_jwins,bytes_full,bytes_random,bytes_jwins,meta_jwins,savings\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%.2f,%.2f,%.2f,%.4f,%.4f,%.4f,%d,%d,%d,%d,%.4f\n",
			row.Dataset, row.Rounds,
			row.AccFull, row.AccRandom, row.AccJWINS,
			row.LossFull, row.LossRandom, row.LossJWINS,
			row.BytesFull, row.BytesRandom, row.BytesJWINS,
			row.MetaJWINS, row.NetworkSavings)
	}
	b.WriteString("\n# figure 4 curves\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "# dataset=%s\n", row.Dataset)
		b.WriteString(CurvesCSV(row.Curves))
	}
	return b.String()
}

// CSV implements CSVer for Figure 2.
func (r *Fig2Result) CSV() string {
	var b strings.Builder
	b.WriteString("epoch,wavelet_mse,fft_mse,random_mse\n")
	for i := range r.Epochs {
		fmt.Fprintf(&b, "%d,%.8f,%.8f,%.8f\n", r.Epochs[i], r.Wavelet[i], r.FFT[i], r.Random[i])
	}
	return b.String()
}

// CSV implements CSVer for Figure 3.
func (r *Fig3Result) CSV() string {
	var b strings.Builder
	b.WriteString("node,alpha\n")
	for i, a := range r.PerNode {
		fmt.Fprintf(&b, "%d,%.4f\n", i, a)
	}
	b.WriteString("\nround,mean_alpha\n")
	for i, m := range r.MeanPerRound {
		fmt.Fprintf(&b, "%d,%.4f\n", i, m)
	}
	return b.String()
}

// CSV implements CSVer for Figure 5.
func (r *Fig5Result) CSV() string {
	var b strings.Builder
	b.WriteString("dataset,target_acc,rounds_full,rounds_random,rounds_jwins,bytes_full,bytes_random,bytes_jwins,rounds_saved,byte_ratio\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%.2f,%d,%d,%d,%d,%d,%d,%d,%.3f\n",
			row.Dataset, row.TargetAccuracy,
			row.RoundsFull, row.RoundsRandom, row.RoundsJWINS,
			row.BytesFull, row.BytesRandom, row.BytesJWINS,
			row.RoundsSaved, row.ByteRatio)
	}
	return b.String()
}

// CSV implements CSVer for Figure 6.
func (r *Fig6Result) CSV() string {
	var b strings.Builder
	b.WriteString("budget,gamma,rounds,acc_choco,acc_jwins,loss_choco,loss_jwins,bytes_node_choco,bytes_node_jwins,target_acc,rounds_to_target_jwins,bytes_to_target_jwins,bytes_to_target_full\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%.2f,%.2f,%d,%.2f,%.2f,%.4f,%.4f,%d,%d,%.2f,%d,%d,%d\n",
			row.Budget, row.Gamma, row.Rounds,
			row.AccChoco, row.AccJWINS, row.LossChoco, row.LossJWINS,
			row.BytesPerNodeChoco, row.BytesPerNodeJWINS,
			row.TargetAcc, row.RoundsToTargetJWINS, row.BytesToTargetJWINS, row.BytesToTargetFull)
	}
	return b.String()
}

// CSV implements CSVer for Figure 7.
func (r *Fig7Result) CSV() string {
	var b strings.Builder
	b.WriteString("arm,final_acc\n")
	fmt.Fprintf(&b, "full-static,%.2f\nfull-dynamic,%.2f\njwins-dynamic,%.2f\nchoco-dynamic,%.2f\n",
		r.FullStatic, r.FullDynamic, r.JWINSDynamic, r.ChocoDynamic)
	b.WriteString("\n")
	b.WriteString(CurvesCSV(r.Curves))
	return b.String()
}

// CSV implements CSVer for Figure 8.
func (r *Fig8Result) CSV() string {
	var b strings.Builder
	b.WriteString("variant,test_loss,accuracy\n")
	for _, v := range Fig8Variants {
		fmt.Fprintf(&b, "%s,%.4f,%.2f\n", v, r.Loss[string(v)], r.Acc[string(v)])
	}
	b.WriteString("\n")
	b.WriteString(CurvesCSV(r.Curves))
	return b.String()
}

// CSV implements CSVer for Figure 9.
func (r *Fig9Result) CSV() string {
	return fmt.Sprintf("rounds,model_bytes,meta_raw,meta_gamma,compression,wasted_fraction\n%d,%d,%d,%d,%.2f,%.4f\n",
		r.Rounds, r.ModelBytes, r.MetaRaw, r.MetaGamma, r.Compression, r.WastedFraction)
}

// CSV implements CSVer for Figure 10.
func (r *Fig10Result) CSV() string {
	var b strings.Builder
	b.WriteString("nodes,degree,rounds,acc_random,acc_jwins,gain,rounds_to_target_jwins,rounds_saved,bytes_random,bytes_jwins\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d,%d,%d,%.2f,%.2f,%.2f,%d,%d,%d,%d\n",
			row.Nodes, row.Degree, row.Rounds,
			row.AccRandom, row.AccJWINS, row.AccGain,
			row.RoundsToTargetJWINS, row.RoundsSaved,
			row.BytesRandom, row.BytesJWINS)
	}
	return b.String()
}
