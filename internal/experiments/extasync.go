package experiments

import (
	"fmt"
	"strings"

	"repro/internal/simulation"
)

// ExtAsyncChurnResult is the extension figure for the event-driven scheduler:
// the same non-IID image task run (a) synchronously and clean, (b) through
// the async engine with heterogeneous node profiles and churn for JWINS, and
// (c) the same async setting for CHOCO. The paper's Figure 6 wall-clock story
// plus its "flexible to nodes leaving and joining" remark, reproduced under
// realistic stragglers instead of per-round coin flips.
type ExtAsyncChurnResult struct {
	Nodes, Rounds int
	ChurnFraction float64
	ComputeSpread float64

	// Final accuracies (percent) and simulated wall-clock seconds per arm.
	AccJWINSSync, AccJWINSAsync, AccChoco float64
	SimJWINSSync, SimJWINSAsync, SimChoco float64
	// RowsJWINSAsync counts completed iteration rows for the churned JWINS
	// arm (a divergent or stalled run completes fewer than Rounds).
	RowsJWINSAsync int

	// Staleness of merged payloads per async arm (mean/max/p95 iteration
	// lag) — the first cut of the gossip-staleness study. Zero under the
	// barrier except for rejoining nodes merging cached broadcasts.
	StaleJWINS, StaleChoco StalenessSummary

	Curves map[string][]simulation.RoundMetrics
}

// StalenessSummary is one run's payload iteration-lag distribution.
type StalenessSummary struct {
	Mean, Max, P95 float64
}

func stalenessOf(r *simulation.Result) StalenessSummary {
	return StalenessSummary{Mean: r.StaleMean, Max: r.StaleMax, P95: r.StaleP95}
}

// ExtAsyncChurnNodes returns the arm's node count at a scale: the small
// setting uses 32 nodes (the acceptance scenario), micro stays test-sized.
func ExtAsyncChurnNodes(scale Scale) int {
	switch scale {
	case Micro:
		return 8
	case Small:
		return 32
	default:
		return 96
	}
}

// ExtAsyncChurn runs the three arms on the CIFAR-10-like workload with 20%
// churn and a lognormal compute/bandwidth straggler tail.
func ExtAsyncChurn(scale Scale, seed uint64) (*ExtAsyncChurnResult, error) {
	w, err := NewWorkload("cifar10", scale, ExtAsyncChurnNodes(scale), seed)
	if err != nil {
		return nil, err
	}
	res := &ExtAsyncChurnResult{
		Nodes:         w.Nodes,
		Rounds:        w.Rounds,
		ChurnFraction: 0.2,
		ComputeSpread: 0.5,
		Curves:        map[string][]simulation.RoundMetrics{},
	}
	het := simulation.Heterogeneity{
		ComputeSpread:   res.ComputeSpread,
		BandwidthSpread: 0.3,
		LatencySpread:   0.2,
		Seed:            seed ^ 0x686574,
	}

	arm := func(name string, kind Algo, async bool) (*simulation.Result, error) {
		spec := RunSpec{Workload: w, Algo: AlgoSpec{Kind: kind}, Seed: seed, Async: async}
		if async {
			spec.Het = het
			spec.ChurnFraction = res.ChurnFraction
		}
		r, err := Run(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		res.Curves[name] = r.Rounds
		return r, nil
	}

	syncRef, err := arm("jwins-sync", AlgoJWINS, false)
	if err != nil {
		return nil, err
	}
	res.AccJWINSSync, res.SimJWINSSync = syncRef.FinalAccuracy*100, syncRef.SimTime

	jwins, err := arm("jwins-async-churn", AlgoJWINS, true)
	if err != nil {
		return nil, err
	}
	res.AccJWINSAsync, res.SimJWINSAsync = jwins.FinalAccuracy*100, jwins.SimTime
	res.RowsJWINSAsync = len(jwins.Rounds)
	res.StaleJWINS = stalenessOf(jwins)

	choco, err := arm("choco-async-churn", AlgoChoco, true)
	if err != nil {
		return nil, err
	}
	res.AccChoco, res.SimChoco = choco.FinalAccuracy*100, choco.SimTime
	res.StaleChoco = stalenessOf(choco)
	return res, nil
}

// String renders the comparison.
func (r *ExtAsyncChurnResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: event-driven scheduler with stragglers + churn (%d nodes, %d rounds, CIFAR-10-like)\n",
		r.Nodes, r.Rounds)
	fmt.Fprintf(&b, "  heterogeneity: compute sigma %.1f, churn %.0f%% of nodes leave and rejoin\n",
		r.ComputeSpread, r.ChurnFraction*100)
	fmt.Fprintf(&b, "  %-22s %9s %12s\n", "arm", "accuracy", "sim-time")
	fmt.Fprintf(&b, "  %-22s %8.1f%% %11.1fs\n", "jwins sync clean", r.AccJWINSSync, r.SimJWINSSync)
	fmt.Fprintf(&b, "  %-22s %8.1f%% %11.1fs (%d/%d rows)\n", "jwins async+churn", r.AccJWINSAsync, r.SimJWINSAsync,
		r.RowsJWINSAsync, r.Rounds)
	fmt.Fprintf(&b, "  %-22s %8.1f%% %11.1fs\n", "choco async+churn", r.AccChoco, r.SimChoco)
	fmt.Fprintf(&b, "  staleness (mean/max/p95 iterations): jwins %.3f/%.0f/%.3f, choco %.3f/%.0f/%.3f\n",
		r.StaleJWINS.Mean, r.StaleJWINS.Max, r.StaleJWINS.P95,
		r.StaleChoco.Mean, r.StaleChoco.Max, r.StaleChoco.P95)
	return b.String()
}

// CSV implements CSVer: a summary row plus the three learning curves in long
// format for external plotting.
func (r *ExtAsyncChurnResult) CSV() string {
	var b strings.Builder
	b.WriteString("nodes,rounds,churn_fraction,compute_spread,acc_jwins_sync,acc_jwins_async,acc_choco_async,sim_jwins_sync,sim_jwins_async,sim_choco_async,stale_mean_jwins,stale_max_jwins,stale_p95_jwins,stale_mean_choco,stale_max_choco,stale_p95_choco\n")
	fmt.Fprintf(&b, "%d,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.4f,%.4f,%.4f,%.4f,%.0f,%.4f,%.4f,%.0f,%.4f\n",
		r.Nodes, r.Rounds, r.ChurnFraction, r.ComputeSpread,
		r.AccJWINSSync, r.AccJWINSAsync, r.AccChoco,
		r.SimJWINSSync, r.SimJWINSAsync, r.SimChoco,
		r.StaleJWINS.Mean, r.StaleJWINS.Max, r.StaleJWINS.P95,
		r.StaleChoco.Mean, r.StaleChoco.Max, r.StaleChoco.P95)
	b.WriteString("\n")
	b.WriteString(CurvesCSV(r.Curves))
	return b.String()
}
