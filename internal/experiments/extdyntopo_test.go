package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestRunSpecDynamicAsync: the previously rejected Dynamic+Async combination
// now runs through the epoch-rotated provider, completes its budget, and
// reports mixing instrumentation.
func TestRunSpecDynamicAsync(t *testing.T) {
	w, err := NewWorkload("cifar10", Micro, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunSpec{
		Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Rounds: 5, Seed: 11,
		Async: true, Dynamic: true, EpochSec: DefaultEpochSec(w),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 5 || res.TotalBytes <= 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.Epochs < 2 {
		t.Fatalf("topology never rotated: %d epochs", res.Epochs)
	}
	if res.TurnoverMean <= 0 || res.SpectralGapMean <= 0 {
		t.Fatalf("mixing instrumentation missing: turnover %v, gap %v", res.TurnoverMean, res.SpectralGapMean)
	}
}

// TestRunSpecEpochSecRequiresAsync: simulated-time epochs have no meaning
// under the synchronous engine; the combination is a typed rejection.
func TestRunSpecEpochSecRequiresAsync(t *testing.T) {
	w, err := NewWorkload("cifar10", Micro, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(RunSpec{Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Rounds: 2, Seed: 3, EpochSec: 0.5})
	if !errors.Is(err, ErrUnsupportedSpec) {
		t.Fatalf("sync EpochSec: got %v, want ErrUnsupportedSpec", err)
	}
}

// TestDynTopoRecordReplayRoundTrip: a recorded dynamic-topology run replays
// through the full experiments pipeline (header metadata → fleet + topology
// reconstruction) with exact event parity.
func TestDynTopoRecordReplayRoundTrip(t *testing.T) {
	w, err := NewWorkload("cifar10", Micro, 0, 19)
	if err != nil {
		t.Fatal(err)
	}
	epochSec := DefaultEpochSec(w)
	rec := trace.NewRecorder(TraceHeaderFor(w, AlgoJWINS, 5, 19, false, true, epochSec))
	recorded, err := Run(RunSpec{
		Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Rounds: 5, Seed: 19,
		Async: true, Dynamic: true, EpochSec: epochSec,
		ChurnFraction: 0.25, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := trace.WriteBinary(&wire, rec.Trace()); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.Read(&wire)
	if err != nil {
		t.Fatal(err)
	}
	replayRes, replayed, err := ReplayTrace(decoded)
	if err != nil {
		t.Fatal(err)
	}
	diff := trace.Compare(replayed, rec.Trace())
	if !diff.InSync() || diff.TimeErrMax != 0 {
		t.Fatalf("replay out of sync: %+v", diff)
	}
	if replayRes.TotalBytes != recorded.TotalBytes || replayRes.SimTime != recorded.SimTime {
		t.Fatalf("replay ledger/time differ: (%d, %v) vs (%d, %v)",
			replayRes.TotalBytes, replayRes.SimTime, recorded.TotalBytes, recorded.SimTime)
	}
}

// TestExtDynTopoMicro: the sweep smoke test — every (size, arm) row present,
// rotated arms rotate and report mixing, the static baseline does not, and
// the CSV carries the new columns.
func TestExtDynTopoMicro(t *testing.T) {
	r, err := ExtDynTopo(Micro, 5)
	if err != nil {
		t.Fatal(err)
	}
	sizes := extDynTopoSizes(Micro)
	if len(r.Rows) != 4*len(sizes) {
		t.Fatalf("expected %d rows, got %d", 4*len(sizes), len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Rounds != extDynTopoRounds(Micro) {
			t.Fatalf("arm %s n=%d completed %d rows", row.Arm, row.Nodes, row.Rounds)
		}
		if row.GapMean <= 0 || row.GapMean > 1 {
			t.Fatalf("arm %s n=%d gap %v outside (0,1]", row.Arm, row.Nodes, row.GapMean)
		}
		if row.EpochMult == 0 {
			if row.TurnoverMean != 0 || row.Epochs != 1 {
				t.Fatalf("static arm rotated: %+v", row)
			}
		} else {
			if row.Epochs < 2 || row.TurnoverMean <= 0 {
				t.Fatalf("rotated arm %s n=%d did not rotate: %+v", row.Arm, row.Nodes, row)
			}
		}
	}
	csv := r.CSV()
	for _, col := range []string{"spectral_gap_mean", "turnover_mean", "epoch,spectral_gap,turnover"} {
		if !strings.Contains(csv, col) {
			t.Fatalf("CSV lacks %q:\n%s", col, csv[:200])
		}
	}
	if r.String() == "" {
		t.Fatal("empty rendering")
	}
}
