package experiments

import (
	"fmt"
	"strings"

	"repro/internal/simulation"
)

// SemiAsyncArm is one (heterogeneity spread, aggregation policy) cell of the
// semi-async sweep: final quality, simulated wall-clock, and the staleness /
// effective-neighbor / drop-rate profile of the policy.
type SemiAsyncArm struct {
	Policy string
	Spread float64

	Acc, Loss, SimTime float64
	Stale              StalenessSummary
	// EffNeighbors is the mean number of payloads actually merged per
	// aggregation; DropRate the fraction of live-neighbor payloads that had
	// not arrived when aggregations fired (straggler drops under the deadline
	// policy, tolerated lag under gossip and bounded staleness).
	EffNeighbors, DropRate float64
	LateDrops              int64
	Rows                   int
}

// ExtSemiAsyncResult sweeps the aggregation-policy spectrum — full barrier,
// bounded staleness (fixed and adaptive tau), straggler-dropping deadline,
// and pure gossip — across a low- and a high-heterogeneity straggler profile.
// The question it answers: how much of the barrier's wall-clock cost can a
// semi-async policy recover before giving up gossip-level accuracy?
type ExtSemiAsyncResult struct {
	Nodes, Rounds int
	StaleK, Tau   int
	Factor        float64

	Arms   []SemiAsyncArm
	Curves map[string][]simulation.RoundMetrics
}

// extSemiAsyncSpreads are the two heterogeneity profiles: a mild spread where
// the barrier is cheap, and a heavy-tailed one where stragglers dominate it.
var extSemiAsyncSpreads = []float64{0.2, 0.8}

// ExtSemiAsync runs the policy × heterogeneity sweep on the CIFAR-10-like
// workload (no churn: the sweep isolates straggler effects). The topology is
// epoch-rotated so the adaptive-tau arm has epoch boundaries to retune at.
func ExtSemiAsync(scale Scale, seed uint64) (*ExtSemiAsyncResult, error) {
	w, err := NewWorkload("cifar10", scale, ExtAsyncChurnNodes(scale), seed)
	if err != nil {
		return nil, err
	}
	res := &ExtSemiAsyncResult{
		Nodes:  w.Nodes,
		Rounds: w.Rounds,
		StaleK: (w.Degree + 1) / 2,
		Tau:    2,
		Factor: 1.5,
		Curves: map[string][]simulation.RoundMetrics{},
	}
	if res.StaleK < 1 {
		res.StaleK = 1
	}

	policies := []struct {
		name   string
		policy simulation.AggregationPolicy
	}{
		{"barrier", simulation.BarrierPolicy{}},
		{"bounded", simulation.BoundedStalenessPolicy{K: res.StaleK, Tau: res.Tau}},
		{"bounded-adaptive", simulation.BoundedStalenessPolicy{K: res.StaleK, Tau: res.Tau, AdaptiveTau: true}},
		{"deadline", simulation.DeadlinePolicy{Factor: res.Factor}},
		{"gossip", simulation.GossipPolicy{}},
	}

	for _, spread := range extSemiAsyncSpreads {
		het := simulation.Heterogeneity{
			ComputeSpread:   spread,
			BandwidthSpread: spread / 2,
			LatencySpread:   0.2,
			Seed:            seed ^ 0x686574,
		}
		for _, pc := range policies {
			spec := RunSpec{
				Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Seed: seed,
				Async: true, Dynamic: true, Het: het, Policy: pc.policy,
			}
			r, err := Run(spec)
			if err != nil {
				return nil, fmt.Errorf("%s (spread %.1f): %w", pc.name, spread, err)
			}
			key := fmt.Sprintf("%s-s%.1f", pc.name, spread)
			res.Curves[key] = r.Rounds
			res.Arms = append(res.Arms, SemiAsyncArm{
				Policy: pc.name, Spread: spread,
				Acc: r.FinalAccuracy * 100, Loss: r.FinalLoss, SimTime: r.SimTime,
				Stale:        stalenessOf(r),
				EffNeighbors: r.EffNeighborsMean, DropRate: r.DropRate,
				LateDrops: r.LateDrops, Rows: len(r.Rounds),
			})
		}
	}
	return res, nil
}

// String renders the sweep table.
func (r *ExtSemiAsyncResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: semi-async aggregation policies (%d nodes, %d rounds, CIFAR-10-like, JWINS)\n",
		r.Nodes, r.Rounds)
	fmt.Fprintf(&b, "  bounded staleness: k=%d, tau=%d (adaptive arm retunes tau to the epoch lag p95); deadline factor %.1fx\n",
		r.StaleK, r.Tau, r.Factor)
	fmt.Fprintf(&b, "  %-18s %6s %9s %10s %8s %7s %22s\n",
		"policy", "spread", "accuracy", "sim-time", "eff-nbr", "drop", "staleness mean/max/p95")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "  %-18s %6.1f %8.1f%% %9.1fs %8.2f %6.1f%% %10.3f/%.0f/%.3f\n",
			a.Policy, a.Spread, a.Acc, a.SimTime, a.EffNeighbors, a.DropRate*100,
			a.Stale.Mean, a.Stale.Max, a.Stale.P95)
	}
	return b.String()
}

// CSV implements CSVer: one row per (spread, policy) arm plus the learning
// curves in long format.
func (r *ExtSemiAsyncResult) CSV() string {
	var b strings.Builder
	b.WriteString("nodes,rounds,policy,spread,stale_k,tau,deadline_factor,acc,final_loss,sim_time,stale_mean,stale_max,stale_p95,eff_neighbors,drop_rate,late_drops,rows\n")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%d,%d,%s,%.2f,%d,%d,%.2f,%.2f,%.4f,%.4f,%.4f,%.0f,%.4f,%.4f,%.4f,%d,%d\n",
			r.Nodes, r.Rounds, a.Policy, a.Spread, r.StaleK, r.Tau, r.Factor,
			a.Acc, a.Loss, a.SimTime,
			a.Stale.Mean, a.Stale.Max, a.Stale.P95,
			a.EffNeighbors, a.DropRate, a.LateDrops, a.Rows)
	}
	b.WriteString("\n")
	b.WriteString(CurvesCSV(r.Curves))
	return b.String()
}
