package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/simulation"
)

func TestCurvesCSV(t *testing.T) {
	curves := map[string][]simulation.RoundMetrics{
		"jwins": {
			{Round: 0, TrainLoss: 1.5, TestLoss: math.NaN(), TestAcc: math.NaN(), CumTotalBytes: 100},
			{Round: 1, TrainLoss: 1.2, TestLoss: 1.1, TestAcc: 0.5, CumTotalBytes: 200},
		},
		"full-sharing": {
			{Round: 0, TrainLoss: 1.4, TestLoss: 1.3, TestAcc: 0.4, CumTotalBytes: 300},
		},
	}
	out := CurvesCSV(curves)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 3 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "algo,round,") {
		t.Fatalf("bad header: %s", lines[0])
	}
	// Algorithms sorted: full-sharing first.
	if !strings.HasPrefix(lines[1], "full-sharing,0,") {
		t.Fatalf("rows not sorted by algo: %s", lines[1])
	}
	// NaN becomes empty field.
	if !strings.Contains(lines[2], ",,") {
		t.Fatalf("NaN not blanked: %s", lines[2])
	}
}

func TestResultCSVs(t *testing.T) {
	t1 := &Table1Result{Rows: []Table1Row{{
		Dataset: "cifar10", Rounds: 10, AccFull: 50, AccRandom: 40, AccJWINS: 49,
		BytesFull: 1000, BytesRandom: 400, BytesJWINS: 380, NetworkSavings: 0.62,
		Curves: map[string][]simulation.RoundMetrics{},
	}}}
	if !strings.Contains(t1.CSV(), "cifar10,10,50.00,40.00,49.00") {
		t.Fatalf("table1 CSV malformed:\n%s", t1.CSV())
	}

	f2 := &Fig2Result{Epochs: []int{1}, Wavelet: []float64{0.1}, FFT: []float64{0.2}, Random: []float64{0.3}}
	if !strings.Contains(f2.CSV(), "1,0.10000000,0.20000000,0.30000000") {
		t.Fatalf("fig2 CSV malformed:\n%s", f2.CSV())
	}

	f3 := &Fig3Result{PerNode: []float64{0.1, 1}, MeanPerRound: []float64{0.4}}
	if !strings.Contains(f3.CSV(), "0,0.1000") {
		t.Fatalf("fig3 CSV malformed:\n%s", f3.CSV())
	}

	f5 := &Fig5Result{Rows: []Fig5Row{{Dataset: "x", TargetAccuracy: 40, RoundsJWINS: 5, ByteRatio: 2}}}
	if !strings.Contains(f5.CSV(), "x,40.00,") {
		t.Fatalf("fig5 CSV malformed:\n%s", f5.CSV())
	}

	f9 := &Fig9Result{Rounds: 7, ModelBytes: 100, MetaRaw: 100, MetaGamma: 10, Compression: 10, WastedFraction: 0.5}
	if !strings.Contains(f9.CSV(), "7,100,100,10,10.00,0.5000") {
		t.Fatalf("fig9 CSV malformed:\n%s", f9.CSV())
	}

	f10 := &Fig10Result{Rows: []Fig10Row{{Nodes: 8, Degree: 4, Rounds: 10}}}
	if !strings.Contains(f10.CSV(), "8,4,10,") {
		t.Fatalf("fig10 CSV malformed:\n%s", f10.CSV())
	}

	f6 := &Fig6Result{Rows: []Fig6Row{{Budget: 0.2, Gamma: 0.6, Rounds: 10}}}
	if !strings.Contains(f6.CSV(), "0.20,0.60,10,") {
		t.Fatalf("fig6 CSV malformed:\n%s", f6.CSV())
	}

	f7 := &Fig7Result{FullStatic: 1, FullDynamic: 2, JWINSDynamic: 3, ChocoDynamic: 4,
		Curves: map[string][]simulation.RoundMetrics{}}
	if !strings.Contains(f7.CSV(), "jwins-dynamic,3.00") {
		t.Fatalf("fig7 CSV malformed:\n%s", f7.CSV())
	}

	f8 := &Fig8Result{Loss: map[string]float64{}, Acc: map[string]float64{},
		Curves: map[string][]simulation.RoundMetrics{}}
	if !strings.HasPrefix(f8.CSV(), "variant,") {
		t.Fatalf("fig8 CSV malformed:\n%s", f8.CSV())
	}
}

func TestCurvesCSVStalenessColumns(t *testing.T) {
	curves := map[string][]simulation.RoundMetrics{
		"gossip": {{Round: 0, TrainLoss: 1, StaleMean: 0.5, StaleMax: 3, StaleP95: 2}},
	}
	out := CurvesCSV(curves)
	if !strings.Contains(out, "stale_mean,stale_max,stale_p95") {
		t.Fatalf("staleness columns missing from header:\n%s", out)
	}
	if !strings.Contains(out, "0.5000,3,2.0000") {
		t.Fatalf("staleness values not rendered:\n%s", out)
	}
}

func TestExtReplayCSV(t *testing.T) {
	r := &ExtReplayResult{
		Nodes: 8, Rounds: 10, Events: 500,
		RecordedBytes: 1000, ReplayedBytes: 1000,
		RowsRecorded: 10, RowsReplayed: 10, SequenceMatch: true,
		StaleMean: 0.1, StaleMax: 2, StaleP95: 1,
	}
	out := r.CSV()
	if !strings.Contains(out, "sequence_match") || !strings.Contains(out, "8,10,500,1000,1000") {
		t.Fatalf("ext-replay CSV malformed:\n%s", out)
	}
}
