package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/simulation"
)

// Fig3Result captures the randomized cut-off in action: the per-node sharing
// fraction in one representative round (left chart) and the mean sharing
// fraction across nodes per round (right chart).
type Fig3Result struct {
	// PerNode is each node's alpha in the sampled round.
	PerNode []float64
	// SampledRound is the round PerNode was captured at.
	SampledRound int
	// MeanPerRound is the cross-node mean alpha per round.
	MeanPerRound []float64
	// ExpectedMean is the analytic E[alpha] of the distribution.
	ExpectedMean float64
}

// Fig3 reproduces Figure 3 by instrumenting a JWINS run on the CIFAR-10-like
// workload with the default alpha distribution.
func Fig3(scale Scale, seed uint64) (*Fig3Result, error) {
	w, err := NewWorkload("cifar10", scale, 0, seed)
	if err != nil {
		return nil, err
	}
	rounds := 40
	if scale == Micro {
		rounds = 10
	}
	res := &Fig3Result{ExpectedMean: core.DefaultAlphas().Mean()}
	res.SampledRound = rounds / 2

	spec := RunSpec{Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Rounds: rounds, Seed: seed}
	engineNodes, err := BuildFleet(w, spec.Algo, spec.Seed)
	if err != nil {
		return nil, err
	}
	spec.OnRound = func(rm simulation.RoundMetrics) {
		res.MeanPerRound = append(res.MeanPerRound, rm.MeanAlpha)
		if rm.Round == res.SampledRound {
			for _, n := range engineNodes {
				if j, ok := n.(*core.JWINSNode); ok {
					res.PerNode = append(res.PerNode, j.LastAlpha)
				}
			}
		}
	}
	if _, err := runWithNodes(spec, engineNodes); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the distributions.
func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: randomized cut-off in JWINS\n")
	fmt.Fprintf(&b, "shared fraction per node in round %d:\n", r.SampledRound)
	for i, a := range r.PerNode {
		fmt.Fprintf(&b, "  node %-3d %5.0f%%\n", i, a*100)
	}
	var mean float64
	for _, m := range r.MeanPerRound {
		mean += m
	}
	mean /= float64(len(r.MeanPerRound))
	fmt.Fprintf(&b, "mean shared fraction over %d rounds: %.1f%% (analytic E[alpha] = %.1f%%)\n",
		len(r.MeanPerRound), mean*100, r.ExpectedMean*100)
	spread := 0.0
	for _, m := range r.MeanPerRound {
		spread = math.Max(spread, math.Abs(m-r.ExpectedMean))
	}
	fmt.Fprintf(&b, "max per-round deviation from E[alpha]: %.1f%%\n", spread*100)
	return b.String()
}
