package experiments

import (
	"fmt"
	"strings"

	"repro/internal/simulation"
)

// Fig8Result is the ablation study: JWINS with each component removed.
type Fig8Result struct {
	Rounds int
	// Final test losses (the figure's y-axis) and accuracies per variant.
	Loss map[string]float64
	Acc  map[string]float64
	// Curves for plotting.
	Curves map[string][]simulation.RoundMetrics
}

// Fig8Variants lists the ablation arms in the paper's order.
var Fig8Variants = []Algo{AlgoJWINSNoWavelet, AlgoJWINSNoAccum, AlgoJWINSNoCutoff, AlgoJWINS}

// Fig8 reproduces Figure 8 on the CIFAR-10-like workload: removing the
// wavelet hurts most; removing accumulation or the randomized cut-off hurts
// less; full JWINS reaches the lowest test loss.
func Fig8(scale Scale, seed uint64) (*Fig8Result, error) {
	w, err := NewWorkload("cifar10", scale, 0, seed)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{
		Rounds: w.Rounds,
		Loss:   map[string]float64{},
		Acc:    map[string]float64{},
		Curves: map[string][]simulation.RoundMetrics{},
	}
	for _, variant := range Fig8Variants {
		var series []simulation.RoundMetrics
		r, err := Run(RunSpec{
			Workload: w, Algo: AlgoSpec{Kind: variant}, Seed: seed,
			OnRound: func(rm simulation.RoundMetrics) { series = append(series, rm) },
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 8 %s: %w", variant, err)
		}
		res.Loss[string(variant)] = r.FinalLoss
		res.Acc[string(variant)] = r.FinalAccuracy * 100
		res.Curves[string(variant)] = series
	}
	return res, nil
}

// String renders the ablation table.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: ablation study (%d rounds, CIFAR-10-like)\n", r.Rounds)
	fmt.Fprintf(&b, "%-26s %10s %10s\n", "variant", "test loss", "accuracy")
	for _, variant := range Fig8Variants {
		fmt.Fprintf(&b, "%-26s %10.3f %9.1f%%\n", variant, r.Loss[string(variant)], r.Acc[string(variant)])
	}
	return b.String()
}
