package experiments

import (
	"math"
	"testing"
)

func TestTable1MicroSingleDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := Table1(Micro, 42, []string{"cifar10"})
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	// The headline claims at any scale: JWINS stays close to full-sharing,
	// beats random sampling, and saves a large fraction of bytes.
	if row.AccJWINS < row.AccRandom {
		t.Fatalf("JWINS %.1f%% below random sampling %.1f%%", row.AccJWINS, row.AccRandom)
	}
	if row.NetworkSavings < 0.35 {
		t.Fatalf("network savings only %.0f%%", row.NetworkSavings*100)
	}
	if len(row.Curves["jwins"]) == 0 {
		t.Fatal("missing learning curves")
	}
	_ = r.String()
}

func TestFig5Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := Fig5(Micro, 42, []string{"cifar10"})
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row.RoundsJWINS <= 0 {
		t.Fatal("JWINS never reached the random-sampling target")
	}
	if row.RoundsJWINS > row.RoundsRandom {
		t.Fatalf("JWINS needed %d rounds, random sampling %d", row.RoundsJWINS, row.RoundsRandom)
	}
	_ = r.String()
}

func TestFig6Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := Fig6(Micro, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("want 2 budget rows, got %d", len(r.Rows))
	}
	// At the tighter 10% budget JWINS must not lose to CHOCO (the paper's
	// gap grows as the budget shrinks).
	low := r.Rows[1]
	if low.AccJWINS < low.AccChoco-1 {
		t.Fatalf("JWINS %.1f%% vs CHOCO %.1f%% at 10%% budget", low.AccJWINS, low.AccChoco)
	}
	_ = r.String()
}

func TestFig7Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := Fig7(Micro, 42)
	if err != nil {
		t.Fatal(err)
	}
	// CHOCO must be clearly the worst arm on dynamic topologies.
	if r.ChocoDynamic >= r.JWINSDynamic {
		t.Fatalf("CHOCO dynamic %.1f%% >= JWINS dynamic %.1f%%", r.ChocoDynamic, r.JWINSDynamic)
	}
	if r.ChocoDynamic >= r.FullDynamic {
		t.Fatalf("CHOCO dynamic %.1f%% >= full dynamic %.1f%%", r.ChocoDynamic, r.FullDynamic)
	}
	_ = r.String()
}

func TestFig8Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := Fig8(Micro, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Fig8Variants {
		if math.IsNaN(r.Loss[string(v)]) || r.Loss[string(v)] <= 0 {
			t.Fatalf("variant %s has no loss", v)
		}
	}
	_ = r.String()
}

func TestFig10Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := Fig10(Micro, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("want >= 2 sizes, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.AccGain < -2 {
			t.Fatalf("JWINS lost to random sampling at n=%d by %.1f%%", row.Nodes, -row.AccGain)
		}
	}
	_ = r.String()
}

func TestExtensionsMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	pg, err := ExtPowerGossip(Micro, 42)
	if err != nil {
		t.Fatal(err)
	}
	if pg.BytesPG <= 0 || pg.AccPG <= 0 {
		t.Fatalf("powergossip produced no results: %+v", pg)
	}
	_ = pg.String()

	ad, err := ExtAdaptive(Micro, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ad.AccAdaptive <= 0 {
		t.Fatalf("adaptive produced no results: %+v", ad)
	}
	_ = ad.String()

	fa, err := ExtFaults(Micro, 42)
	if err != nil {
		t.Fatal(err)
	}
	// The contrast the extension exists to show: CHOCO degrades more under
	// drops than JWINS does.
	jwinsDrop := fa.Clean["jwins"] - fa.Drops["jwins"]
	chocoDrop := fa.Clean["choco"] - fa.Drops["choco"]
	if chocoDrop < jwinsDrop-5 {
		t.Fatalf("expected CHOCO to degrade at least as much as JWINS (choco -%.1f%%, jwins -%.1f%%)",
			chocoDrop, jwinsDrop)
	}
	_ = fa.String()
}

func TestExtAsyncChurnMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := ExtAsyncChurn(Micro, 42)
	if err != nil {
		t.Fatal(err)
	}
	// The async+churn JWINS arm must complete its full iteration budget and
	// stay within a few points of the clean synchronous reference, while
	// CHOCO's error-feedback replicas are expected to suffer.
	if r.RowsJWINSAsync != r.Rounds {
		t.Fatalf("async JWINS completed %d/%d rows", r.RowsJWINSAsync, r.Rounds)
	}
	if r.AccJWINSAsync < r.AccJWINSSync-10 {
		t.Fatalf("async+churn JWINS lost too much accuracy: %.1f%% vs sync %.1f%%",
			r.AccJWINSAsync, r.AccJWINSSync)
	}
	if r.AccChoco > r.AccJWINSAsync+5 {
		t.Fatalf("expected CHOCO (%.1f%%) to degrade at least as much as JWINS (%.1f%%)",
			r.AccChoco, r.AccJWINSAsync)
	}
	if len(r.Curves) != 3 {
		t.Fatalf("expected 3 curves, got %d", len(r.Curves))
	}
	if r.CSV() == "" || r.String() == "" {
		t.Fatal("empty renderings")
	}
}

func TestRunSpecAsyncSmoke(t *testing.T) {
	w, err := NewWorkload("cifar10", Micro, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunSpec{
		Workload: w, Algo: AlgoSpec{Kind: AlgoJWINS}, Rounds: 4, Seed: 11,
		Async: true, ChurnFraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 || res.TotalBytes <= 0 {
		t.Fatalf("unexpected async result: %+v", res)
	}
}
