package experiments

import (
	"fmt"
	"strings"

	"repro/internal/datasets"
	"repro/internal/dwt"
	"repro/internal/fourier"
	"repro/internal/sparsify"
	"repro/internal/vec"
)

// Fig2Result holds the cumulative reconstruction error series of Figure 2:
// sparsifying a single node's model in the wavelet, FFT, and random-sampling
// domains at a 10% budget, epoch by epoch.
type Fig2Result struct {
	Epochs  []int
	Wavelet []float64
	FFT     []float64
	Random  []float64
}

// Fig2 reproduces Figure 2: a single node trains on the CIFAR-10-like task;
// after every epoch the model-so-far is sparsified to 10% of coefficients in
// each transform domain, reconstructed, and scored with MSE against the
// uncompressed model. Lower cumulative error = less information loss, and
// the paper's ordering is Wavelet < FFT < random sampling.
func Fig2(scale Scale, seed uint64) (*Fig2Result, error) {
	w, err := NewWorkload("cifar10", scale, 0, seed)
	if err != nil {
		return nil, err
	}
	epochs := 16
	if scale == Micro {
		epochs = 6
	}
	rng := vec.NewRNG(seed)
	model := w.NewModel(rng.Split())
	dim := model.ParamCount()

	// Single-node training uses all data.
	all := make([]int, len(w.Dataset.Train))
	for i := range all {
		all[i] = i
	}
	loader := datasets.NewLoader(w.Dataset, all, w.Batch, rng.Split())

	wav, err := dwt.NewTransformer(dim, dwt.MustByName("sym2"), 4)
	if err != nil {
		return nil, err
	}
	fft, err := fourier.NewTransformer(dim)
	if err != nil {
		return nil, err
	}

	res := &Fig2Result{}
	var cumWav, cumFFT, cumRand float64
	params := make([]float64, dim)
	budget := dim / 10

	randRNG := rng.Split()
	for epoch := 1; epoch <= epochs; epoch++ {
		for b := 0; b < loader.BatchesPerEpoch(); b++ {
			x, y := loader.Next()
			model.TrainBatch(x, y, w.Opts.LR)
		}
		model.CopyParams(params)

		cumWav += reconstructionMSE(wav, params, budget, nil)
		cumFFT += reconstructionMSE(fft, params, budget, nil)
		cumRand += reconstructionMSE(dwt.Identity{N: dim}, params, budget, randRNG)

		res.Epochs = append(res.Epochs, epoch)
		res.Wavelet = append(res.Wavelet, cumWav)
		res.FFT = append(res.FFT, cumFFT)
		res.Random = append(res.Random, cumRand)
	}
	return res, nil
}

// transform abstracts the two coefficient domains plus identity.
type transform interface {
	CoeffLen() int
	Forward(x, out []float64)
	Inverse(coeffs, out []float64)
}

// reconstructionMSE sparsifies params to `budget` coefficients in the given
// domain (TopK by magnitude, or uniformly at random when randRNG != nil) and
// returns the MSE of the reconstruction against the original.
func reconstructionMSE(tr transform, params []float64, budget int, randRNG *vec.RNG) float64 {
	cd := tr.CoeffLen()
	coeffs := make([]float64, cd)
	tr.Forward(params, coeffs)
	var keep []int
	if randRNG != nil {
		keep = randRNG.SampleWithoutReplacement(cd, minInt(budget, cd))
	} else {
		keep = sparsify.TopKIndices(coeffs, budget)
	}
	sparse := make([]float64, cd)
	for _, i := range keep {
		sparse[i] = coeffs[i]
	}
	out := make([]float64, len(params))
	tr.Inverse(sparse, out)
	return vec.MSE(params, out)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// String renders the series as an aligned text table.
func (r *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: cumulative reconstruction MSE, 10%% sparsification budget\n")
	fmt.Fprintf(&b, "%-6s %14s %14s %14s\n", "epoch", "wavelet", "fft", "random")
	for i := range r.Epochs {
		fmt.Fprintf(&b, "%-6d %14.6f %14.6f %14.6f\n", r.Epochs[i], r.Wavelet[i], r.FFT[i], r.Random[i])
	}
	last := len(r.Epochs) - 1
	fmt.Fprintf(&b, "paper's ordering wavelet < fft < random holds: %v\n",
		r.Wavelet[last] < r.FFT[last] && r.FFT[last] < r.Random[last])
	return b.String()
}
