package fourier

import "fmt"

// Transformer maps real vectors to a real coefficient vector through the FFT,
// mirroring the dwt.Transform interface so the Figure 2 experiment can swap
// transforms. The complex spectrum of a length-p real signal is Hermitian, so
// it is fully described by p real numbers; we store them as
// [Re X_0, Re X_{p/2}, Re X_1, Im X_1, ..., Re X_{p/2-1}, Im X_{p/2-1}]
// for even p. Sparsifying this real vector and inverting stays within real
// signals. The input is zero-padded to the next power of two.
type Transformer struct {
	n      int // original length
	padded int
	buf    []complex128
}

// NewTransformer builds an FFT transformer for real input vectors of length n.
func NewTransformer(n int) (*Transformer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fourier: input length must be positive, got %d", n)
	}
	p := 2
	for p < n {
		p <<= 1
	}
	return &Transformer{n: n, padded: p, buf: make([]complex128, p)}, nil
}

// InputLen returns the original input length.
func (t *Transformer) InputLen() int { return t.n }

// CoeffLen returns the real coefficient vector length (padded length).
func (t *Transformer) CoeffLen() int { return t.padded }

// Forward writes the packed real spectrum of x into out.
func (t *Transformer) Forward(x, out []float64) {
	if len(x) != t.n || len(out) != t.padded {
		panic("fourier: Forward length mismatch")
	}
	for i := 0; i < t.padded; i++ {
		if i < t.n {
			t.buf[i] = complex(x[i], 0)
		} else {
			t.buf[i] = 0
		}
	}
	FFT(t.buf)
	p := t.padded
	out[0] = real(t.buf[0])
	out[1] = real(t.buf[p/2])
	for k := 1; k < p/2; k++ {
		out[2*k] = real(t.buf[k])
		out[2*k+1] = imag(t.buf[k])
	}
}

// Inverse reconstructs the real signal from the packed spectrum.
func (t *Transformer) Inverse(coeffs, out []float64) {
	if len(coeffs) != t.padded || len(out) != t.n {
		panic("fourier: Inverse length mismatch")
	}
	p := t.padded
	t.buf[0] = complex(coeffs[0], 0)
	t.buf[p/2] = complex(coeffs[1], 0)
	for k := 1; k < p/2; k++ {
		t.buf[k] = complex(coeffs[2*k], coeffs[2*k+1])
		t.buf[p-k] = complex(coeffs[2*k], -coeffs[2*k+1])
	}
	IFFT(t.buf)
	for i := 0; i < t.n; i++ {
		out[i] = real(t.buf[i])
	}
}
