package fourier

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/vec"
)

const tol = 1e-9

func TestFFTKnownValues(t *testing.T) {
	// DFT of [1, 0, 0, 0] is [1, 1, 1, 1].
	x := []complex128{1, 0, 0, 0}
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > tol {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
	// DFT of a pure tone lands in a single bin.
	n := 64
	tone := make([]complex128, n)
	for i := range tone {
		tone[i] = complex(math.Cos(2*math.Pi*5*float64(i)/float64(n)), 0)
	}
	FFT(tone)
	for i, v := range tone {
		mag := cmplx.Abs(v)
		if i == 5 || i == n-5 {
			if math.Abs(mag-float64(n)/2) > 1e-6 {
				t.Fatalf("tone bin %d magnitude %v, want %v", i, mag, float64(n)/2)
			}
		} else if mag > 1e-6 {
			t.Fatalf("leakage at bin %d: %v", i, mag)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := vec.NewRNG(21)
	for _, n := range []int{1, 2, 8, 64, 1024} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-8 {
				t.Fatalf("n=%d: round trip error at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestBluesteinMatchesRadix2(t *testing.T) {
	rng := vec.NewRNG(22)
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	viaBluestein := Bluestein(x)
	direct := make([]complex128, n)
	copy(direct, x)
	FFT(direct)
	for i := range x {
		if cmplx.Abs(viaBluestein[i]-direct[i]) > 1e-7 {
			t.Fatalf("mismatch at bin %d: %v vs %v", i, viaBluestein[i], direct[i])
		}
	}
}

func TestBluesteinArbitraryLengthRoundTrip(t *testing.T) {
	rng := vec.NewRNG(23)
	for _, n := range []int{3, 7, 12, 100, 321} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		spec := Bluestein(x)
		back := InverseBluestein(spec)
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-7 {
				t.Fatalf("n=%d: round trip error at %d: %v vs %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestBluesteinMatchesNaiveDFT(t *testing.T) {
	rng := vec.NewRNG(24)
	n := 17
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	got := Bluestein(x)
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			want += x[j] * cmplx.Exp(complex(0, ang))
		}
		if cmplx.Abs(got[k]-want) > 1e-7 {
			t.Fatalf("bin %d: %v vs naive %v", k, got[k], want)
		}
	}
}

func TestTransformerRoundTrip(t *testing.T) {
	rng := vec.NewRNG(25)
	for _, n := range []int{2, 5, 64, 100, 1000} {
		tr, err := NewTransformer(n)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		coeffs := make([]float64, tr.CoeffLen())
		tr.Forward(x, coeffs)
		y := make([]float64, n)
		tr.Inverse(coeffs, y)
		if mse := vec.MSE(x, y); mse > 1e-12 {
			t.Fatalf("n=%d: round-trip MSE %v", n, mse)
		}
	}
}

func TestNewTransformerError(t *testing.T) {
	if _, err := NewTransformer(0); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestEmptyInputs(t *testing.T) {
	FFT(nil)
	IFFT(nil)
	if out := Bluestein(nil); out != nil {
		t.Fatalf("Bluestein(nil) = %v", out)
	}
	if out := InverseBluestein(nil); out != nil {
		t.Fatalf("InverseBluestein(nil) = %v", out)
	}
}
