// Package fourier implements the fast Fourier transform used as the
// frequency-domain baseline in the paper's Figure 2 (wavelet vs FFT vs
// random-sampling reconstruction error). It provides an iterative radix-2
// Cooley-Tukey transform for power-of-two lengths and Bluestein's algorithm
// for arbitrary lengths, plus a real-signal sparsifying Transform that plugs
// into the same interface as the DWT.
package fourier

import (
	"math"
	"math/cmplx"
)

// FFT computes the in-place forward discrete Fourier transform of x.
// len(x) must be a power of two; use Bluestein for other lengths.
func FFT(x []complex128) {
	fftRadix2(x, false)
}

// IFFT computes the in-place inverse DFT (normalized by 1/n) of x.
// len(x) must be a power of two.
func IFFT(x []complex128) {
	fftRadix2(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic("fourier: radix-2 FFT requires a power-of-two length")
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
}

// Bluestein computes the forward DFT of x for arbitrary length using the
// chirp-z transform, returning a new slice.
func Bluestein(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := make([]complex128, n)
		copy(out, x)
		FFT(out)
		return out
	}
	m := 1
	for m < 2*n+1 {
		m <<= 1
	}
	// chirp[k] = exp(-i*pi*k^2/n)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		phase := -math.Pi * float64(k) * float64(k) / float64(n)
		chirp[k] = cmplx.Exp(complex(0, phase))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	FFT(a)
	FFT(b)
	for i := range a {
		a[i] *= b[i]
	}
	IFFT(a)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * chirp[k]
	}
	return out
}

// InverseBluestein computes the inverse DFT (normalized) for arbitrary length.
func InverseBluestein(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	conj := make([]complex128, n)
	for i, v := range x {
		conj[i] = cmplx.Conj(v)
	}
	fwd := Bluestein(conj)
	out := make([]complex128, n)
	inv := 1 / float64(n)
	for i, v := range fwd {
		out[i] = complex(real(v)*inv, -imag(v)*inv)
	}
	return out
}
