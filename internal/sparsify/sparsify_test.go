package sparsify

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

// referenceTopK is the obviously correct O(n log n) implementation.
func referenceTopK(v []float64, k int) []int {
	n := len(v)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		aa, ab := math.Abs(v[idx[a]]), math.Abs(v[idx[b]])
		if aa != ab {
			return aa > ab
		}
		return idx[a] < idx[b]
	})
	out := idx[:k]
	sort.Ints(out)
	return out
}

func TestTopKSmall(t *testing.T) {
	v := []float64{0.1, -5, 3, 0, 2}
	got := TopKIndices(v, 2)
	want := []int{1, 2}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if got := TopKIndices(nil, 3); len(got) != 0 {
		t.Fatalf("nil input: %v", got)
	}
	if got := TopKIndices([]float64{1, 2}, 0); got != nil {
		t.Fatalf("k=0: %v", got)
	}
	got := TopKIndices([]float64{1, 2}, 5)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("k>n: %v", got)
	}
}

func TestTopKTiesDeterministic(t *testing.T) {
	v := []float64{1, 1, 1, 1, 1}
	got := TopKIndices(v, 3)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie-breaking: %v, want %v", got, want)
		}
	}
}

func TestTopKMatchesReference(t *testing.T) {
	r := vec.NewRNG(31)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(200) + 1
		k := r.Intn(n + 2)
		v := make([]float64, n)
		for i := range v {
			// Mix in repeated values to stress tie handling.
			v[i] = float64(r.Intn(10)) * 0.5 * float64(1-2*(r.Intn(2)))
		}
		got := TopKIndices(v, k)
		want := referenceTopK(v, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d k=%d): got %v want %v\nv=%v", trial, n, k, got, want, v)
			}
		}
	}
}

func TestQuickTopKSelectsLargest(t *testing.T) {
	f := func(seed uint64, rawN uint16, rawK uint16) bool {
		n := int(rawN)%500 + 1
		k := int(rawK) % (n + 1)
		r := vec.NewRNG(seed)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		got := TopKIndices(v, k)
		if len(got) != k {
			return false
		}
		if k == 0 || k == n {
			return true
		}
		chosen := make(map[int]bool, k)
		minChosen := math.Inf(1)
		for _, i := range got {
			chosen[i] = true
			if a := math.Abs(v[i]); a < minChosen {
				minChosen = a
			}
		}
		for i, x := range v {
			if !chosen[i] && math.Abs(x) > minChosen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKIntoMatchesSortedReference: the scratch-backed quickselect must
// agree index-for-index with the O(n log n) stable-sort reference across
// random sizes, duplicated magnitudes (tie handling), and scratch reuse —
// the selection a node makes must not depend on what its scratch held last
// round.
func TestTopKIntoMatchesSortedReference(t *testing.T) {
	var s TopKScratch
	r := vec.NewRNG(47)
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(300) + 1
		k := r.Intn(n + 2)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(r.Intn(8)) * 0.25 * float64(1-2*(r.Intn(2)))
		}
		got := TopKIndicesWith(&s, v, k)
		want := referenceTopK(v, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d k=%d): len %d vs %d", trial, n, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d k=%d): got %v want %v\nv=%v", trial, n, k, got, want, v)
			}
		}
	}
}

// TestTopKIntoAllocationFree: a warm scratch must make selection free of
// allocations.
func TestTopKIntoAllocationFree(t *testing.T) {
	r := vec.NewRNG(3)
	v := make([]float64, 4096)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	var s TopKScratch
	TopKIndicesWith(&s, v, len(v)/10) // warm
	allocs := testing.AllocsPerRun(50, func() {
		TopKIndicesWith(&s, v, len(v)/10)
	})
	if allocs > 0 {
		t.Fatalf("TopKIndicesWith allocates %v per op with warm scratch, want 0", allocs)
	}
}

// TestAppendGather matches Gather and reuses capacity.
func TestAppendGather(t *testing.T) {
	v := []float64{10, 20, 30, 40, 50}
	scratch := make([]float64, 0, 8)
	got := AppendGather(scratch, v, []int{4, 0, 2})
	want := []float64{50, 10, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendGather = %v, want %v", got, want)
		}
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("AppendGather reallocated despite sufficient capacity")
	}
}

func TestRandomIndicesDeterministic(t *testing.T) {
	a := RandomIndices(42, 1000, 100)
	b := RandomIndices(42, 1000, 100)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different index sets")
		}
	}
	c := RandomIndices(43, 1000, 100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical index sets")
	}
}

func TestRandomIndicesClamp(t *testing.T) {
	if got := RandomIndices(1, 5, 100); len(got) != 5 {
		t.Fatalf("clamp failed: %v", got)
	}
	if got := RandomIndices(1, 5, 0); got != nil {
		t.Fatalf("k=0: %v", got)
	}
}

func TestThresholdIndices(t *testing.T) {
	v := []float64{0.1, -2, 0.5, 3, -0.4}
	got := ThresholdIndices(v, 0.5)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestGatherScatter(t *testing.T) {
	v := []float64{10, 20, 30, 40}
	g := Gather(v, []int{0, 3})
	if g[0] != 10 || g[1] != 40 {
		t.Fatalf("Gather = %v", g)
	}
	dst := make([]float64, 4)
	Scatter(dst, []int{1, 2}, []float64{7, 8})
	if dst[1] != 7 || dst[2] != 8 || dst[0] != 0 {
		t.Fatalf("Scatter = %v", dst)
	}
}

func TestScatterMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Scatter(make([]float64, 3), []int{0, 1}, []float64{1})
}

func BenchmarkTopK(b *testing.B) {
	r := vec.NewRNG(1)
	n := 1 << 18
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKIndices(v, n/10)
	}
}
