// Package sparsify selects which coefficients of a flat vector are shared in
// a communication round. JWINS applies TopK to accumulated wavelet-domain
// importance scores; the random-sampling baseline draws a seeded uniform
// subset; CHOCO applies TopK to the model-difference vector.
package sparsify

import (
	"math"
	"sort"

	"repro/internal/vec"
)

// TopKIndices returns the indices of the k largest |v[i]| in increasing index
// order, using quickselect (expected O(n)). Ties are broken towards lower
// indices for determinism. k is clamped to [0, len(v)].
func TopKIndices(v []float64, k int) []int {
	var s TopKScratch
	sel := TopKIndicesWith(&s, v, k)
	if sel == nil {
		return nil
	}
	out := make([]int, len(sel))
	copy(out, sel)
	return out
}

// TopKScratch holds the reusable selection buffers of TopKIndicesWith. The
// zero value is ready; a warm scratch makes selection allocation-free.
type TopKScratch struct {
	abs []float64
	idx []int
	out []int
}

// TopKIndicesWith is TopKIndices backed by caller-owned scratch. The returned
// slice is owned by s and valid until its next use; selection semantics
// (magnitude ranking, low-index tie-breaking, ascending result) are identical
// to TopKIndices.
func TopKIndicesWith(s *TopKScratch, v []float64, k int) []int {
	n := len(v)
	if k <= 0 {
		return nil
	}
	if cap(s.out) < n {
		s.out = make([]int, n)
	}
	if k >= n {
		all := s.out[:n]
		for i := range all {
			all[i] = i
		}
		return all
	}
	// Work on (abs value, index) pairs so selection is deterministic.
	if cap(s.abs) < n {
		s.abs = make([]float64, n)
		s.idx = make([]int, n)
	}
	abs, idx := s.abs[:n], s.idx[:n]
	for i, x := range v {
		abs[i] = math.Abs(x)
		idx[i] = i
	}
	quickselectTopK(abs, idx, k)
	out := s.out[:k]
	copy(out, idx[:k])
	sort.Ints(out)
	return out
}

// quickselectTopK partitions (abs, idx) so the k pairs with the largest abs
// values (ties by smaller index first) occupy positions [0, k).
func quickselectTopK(abs []float64, idx []int, k int) {
	lo, hi := 0, len(abs)
	// Deterministic pseudo-random pivots to defeat adversarial orderings.
	seed := uint64(len(abs))*0x9e3779b97f4a7c15 + uint64(k)
	for hi-lo > 1 {
		p := lo + int(vec.SplitMix64(&seed)%uint64(hi-lo))
		pAbs, pIdx := abs[p], idx[p]
		abs[p], abs[hi-1] = abs[hi-1], abs[p]
		idx[p], idx[hi-1] = idx[hi-1], idx[p]
		store := lo
		for i := lo; i < hi-1; i++ {
			if greater(abs[i], idx[i], pAbs, pIdx) {
				abs[i], abs[store] = abs[store], abs[i]
				idx[i], idx[store] = idx[store], idx[i]
				store++
			}
		}
		abs[store], abs[hi-1] = abs[hi-1], abs[store]
		idx[store], idx[hi-1] = idx[hi-1], idx[store]
		switch {
		case store == k || store == k-1:
			return
		case store > k:
			hi = store
		default:
			lo = store + 1
		}
	}
}

// greater reports whether (a1, i1) outranks (a2, i2): larger magnitude first,
// then lower index.
func greater(a1 float64, i1 int, a2 float64, i2 int) bool {
	if a1 != a2 {
		return a1 > a2
	}
	return i1 < i2
}

// RandomIndices returns k uniformly random distinct indices from [0, dim) in
// increasing order, derived deterministically from seed. Sender and receiver
// of a seeded sparse payload both call this.
func RandomIndices(seed uint64, dim, k int) []int {
	if k <= 0 {
		return nil
	}
	if k > dim {
		k = dim
	}
	return vec.NewRNG(seed).SampleWithoutReplacement(dim, k)
}

// ThresholdIndices returns all indices with |v[i]| >= threshold, in
// increasing order. Used by threshold-based baselines (e.g. GAIA-style
// significance filtering).
func ThresholdIndices(v []float64, threshold float64) []int {
	var out []int
	for i, x := range v {
		if math.Abs(x) >= threshold {
			out = append(out, i)
		}
	}
	return out
}

// Gather copies v[indices] into a new slice.
func Gather(v []float64, indices []int) []float64 {
	return AppendGather(make([]float64, 0, len(indices)), v, indices)
}

// AppendGather appends v[indices] to dst (which may be recycled scratch
// sliced to zero length) and returns the extended slice.
func AppendGather(dst, v []float64, indices []int) []float64 {
	for _, i := range indices {
		dst = append(dst, v[i])
	}
	return dst
}

// Scatter writes vals into dst at indices: dst[indices[j]] = vals[j].
func Scatter(dst []float64, indices []int, vals []float64) {
	if len(indices) != len(vals) {
		panic("sparsify: Scatter length mismatch")
	}
	for j, i := range indices {
		dst[i] = vals[j]
	}
}
