// Package sparsify selects which coefficients of a flat vector are shared in
// a communication round. JWINS applies TopK to accumulated wavelet-domain
// importance scores; the random-sampling baseline draws a seeded uniform
// subset; CHOCO applies TopK to the model-difference vector.
package sparsify

import (
	"math"

	"repro/internal/vec"
)

// TopKIndices returns the indices of the k largest |v[i]| in increasing index
// order, using quickselect (expected O(n)). Ties are broken towards lower
// indices for determinism. k is clamped to [0, len(v)].
func TopKIndices(v []float64, k int) []int {
	var s TopKScratch
	sel := TopKIndicesWith(&s, v, k)
	if sel == nil {
		return nil
	}
	out := make([]int, len(sel))
	copy(out, sel)
	return out
}

// TopKScratch holds the reusable selection buffers of TopKIndicesWith. The
// zero value is ready; a warm scratch makes selection allocation-free.
type TopKScratch struct {
	bits []uint64
	cand []int
	out  []int
}

// TopKIndicesWith is TopKIndices backed by caller-owned scratch. The returned
// slice is owned by s and valid until its next use; selection semantics
// (magnitude ranking, low-index tie-breaking, ascending result) are identical
// to TopKIndices.
//
// Selection runs as a byte-wise radix select over the IEEE-754 bit patterns
// of |v[i]| — for non-negative floats, unsigned bit order equals numeric
// order — which finds the k-th largest magnitude in a few counting passes
// with no data movement, then emits the selected indices in one ascending
// sweep. The top-k set under (magnitude desc, index asc) ordering is unique,
// so this is output-identical to any comparison-based select. NaN magnitudes
// order above +Inf (deterministically).
func TopKIndicesWith(s *TopKScratch, v []float64, k int) []int {
	n := len(v)
	if k <= 0 {
		return nil
	}
	if cap(s.out) < n {
		s.out = make([]int, n)
	}
	if k >= n {
		all := s.out[:n]
		for i := range all {
			all[i] = i
		}
		return all
	}
	if cap(s.bits) < n {
		s.bits = make([]uint64, n)
		s.cand = make([]int, n)
	}
	bits := s.bits[:n]
	for i, x := range v {
		bits[i] = math.Float64bits(math.Abs(x))
	}
	var thresh uint64
	if eq, val := allCandidatesEqual(bits, nil, false); eq {
		// Fully tied input (e.g. a freshly zeroed accumulator): the
		// threshold is the common value and the sweep's lowest-index-first
		// tie quota does the whole selection.
		thresh = val
	} else {
		thresh = radixThreshold(bits, s.cand[:0], k)
	}
	// Two-pass emit: everything above the threshold is selected; ties at the
	// threshold are filled lowest-index-first by the ascending sweep.
	above := 0
	for _, b := range bits {
		if b > thresh {
			above++
		}
	}
	quota := k - above
	out := s.out[:0]
	for i, b := range bits {
		if b > thresh {
			out = append(out, i)
		} else if b == thresh && quota > 0 {
			quota--
			out = append(out, i)
		}
	}
	return out
}

// radixThreshold returns the bit pattern of the k-th largest value in bits,
// refining one byte per pass from the most significant byte down over a
// shrinking candidate set. When every remaining candidate must be selected
// the low bytes are left zero, which the caller's >=-style sweep absorbs.
func radixThreshold(bits []uint64, cand []int, k int) uint64 {
	var thresh uint64
	need := k
	compacted := false // false: the candidate set is all of bits
	checkedEqual := false
	for byteIdx := 7; byteIdx >= 0; byteIdx-- {
		shift := uint(byteIdx * 8)
		var hist [256]int
		var total int
		if !compacted {
			total = len(bits)
			for _, b := range bits {
				hist[(b>>shift)&0xff]++
			}
		} else {
			total = len(cand)
			for _, p := range cand {
				hist[(bits[p]>>shift)&0xff]++
			}
		}
		cum := 0
		bsel := 0
		for b := 255; b >= 0; b-- {
			if cum+hist[b] >= need {
				bsel = b
				break
			}
			cum += hist[b]
		}
		thresh |= uint64(bsel) << shift
		need -= cum
		if byteIdx == 0 {
			break
		}
		if hist[bsel] == total {
			// Every candidate shares this byte, so compaction would be a
			// no-op. If the whole set is one repeated value — common for a
			// freshly zeroed accumulator — resolve the threshold in a single
			// comparison pass instead of byte-by-byte.
			if !checkedEqual {
				checkedEqual = true
				if eq, val := allCandidatesEqual(bits, cand, compacted); eq {
					return val
				}
			}
			continue
		}
		checkedEqual = false
		if !compacted {
			cand = cand[:0]
			for i, b := range bits {
				if int((b>>shift)&0xff) == bsel {
					cand = append(cand, i)
				}
			}
			compacted = true
		} else {
			w := 0
			for _, p := range cand {
				if int((bits[p]>>shift)&0xff) == bsel {
					cand[w] = p
					w++
				}
			}
			cand = cand[:w]
		}
		if need == len(cand) {
			// All remaining candidates are selected; the unresolved low
			// bytes stay zero and the sweep's tie quota covers them.
			break
		}
		if len(cand) == 1 {
			thresh = bits[cand[0]]
			break
		}
	}
	return thresh
}

// allCandidatesEqual reports whether every candidate carries the same bit
// pattern, returning that pattern when so.
func allCandidatesEqual(bits []uint64, cand []int, compacted bool) (bool, uint64) {
	if !compacted {
		ref := bits[0]
		for _, b := range bits[1:] {
			if b != ref {
				return false, 0
			}
		}
		return true, ref
	}
	ref := bits[cand[0]]
	for _, p := range cand[1:] {
		if bits[p] != ref {
			return false, 0
		}
	}
	return true, ref
}

// RandomIndices returns k uniformly random distinct indices from [0, dim) in
// increasing order, derived deterministically from seed. Sender and receiver
// of a seeded sparse payload both call this.
func RandomIndices(seed uint64, dim, k int) []int {
	if k <= 0 {
		return nil
	}
	if k > dim {
		k = dim
	}
	return vec.NewRNG(seed).SampleWithoutReplacement(dim, k)
}

// ThresholdIndices returns all indices with |v[i]| >= threshold, in
// increasing order. Used by threshold-based baselines (e.g. GAIA-style
// significance filtering).
func ThresholdIndices(v []float64, threshold float64) []int {
	var out []int
	for i, x := range v {
		if math.Abs(x) >= threshold {
			out = append(out, i)
		}
	}
	return out
}

// Gather copies v[indices] into a new slice.
func Gather(v []float64, indices []int) []float64 {
	return AppendGather(make([]float64, 0, len(indices)), v, indices)
}

// AppendGather appends v[indices] to dst (which may be recycled scratch
// sliced to zero length) and returns the extended slice.
func AppendGather(dst, v []float64, indices []int) []float64 {
	for _, i := range indices {
		dst = append(dst, v[i])
	}
	return dst
}

// Scatter writes vals into dst at indices: dst[indices[j]] = vals[j].
func Scatter(dst []float64, indices []int, vals []float64) {
	if len(indices) != len(vals) {
		panic("sparsify: Scatter length mismatch")
	}
	for j, i := range indices {
		dst[i] = vals[j]
	}
}
