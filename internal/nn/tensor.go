// Package nn is a small neural-network library with manual backpropagation.
// It stands in for the paper's PyTorch dependency: dense, convolutional,
// group-norm, embedding, and LSTM layers cover the four model families the
// paper trains (CNNs, a stacked LSTM, matrix factorization, and fully
// connected heads). Every layer's gradients are verified against numerical
// differentiation in the test suite.
//
// Decentralized learning code treats models as flat parameter vectors; the
// Trainable interface exposes exactly that view plus minibatch training and
// evaluation.
package nn

import "fmt"

// Tensor is a dense row-major float64 tensor. The first dimension is always
// the batch dimension.
type Tensor struct {
	Data  []float64
	Shape []int
}

// NewTensor allocates a zero tensor with the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("nn: non-positive tensor dimension in %v", shape))
		}
		n *= s
	}
	return &Tensor{Data: make([]float64, n), Shape: append([]int(nil), shape...)}
}

// FromData wraps data in a tensor of the given shape. The data is not copied.
func FromData(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("nn: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Data: data, Shape: append([]int(nil), shape...)}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Batch returns the leading (batch) dimension.
func (t *Tensor) Batch() int { return t.Shape[0] }

// Reshape returns a view of t with a new shape (same data).
func (t *Tensor) Reshape(shape ...int) *Tensor {
	return FromData(t.Data, shape...)
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Data: make([]float64, len(t.Data)), Shape: append([]int(nil), t.Shape...)}
	copy(out.Data, t.Data)
	return out
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// tscratch is a reusable tensor backed by a buffer grown on demand. Layers
// keep one per direction (forward output, backward gradient) so steady-state
// training allocates nothing: ensure reshapes in place and only allocates
// when the required element count outgrows the buffer.
type tscratch struct{ t Tensor }

// ensure shapes the scratch tensor without clearing it. Callers must
// overwrite every element.
func (s *tscratch) ensure(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("nn: non-positive tensor dimension in %v", shape))
		}
		n *= d
	}
	if cap(s.t.Data) < n {
		s.t.Data = make([]float64, n)
	}
	s.t.Data = s.t.Data[:n]
	s.t.Shape = append(s.t.Shape[:0], shape...)
	return &s.t
}

// ensureZero shapes the scratch tensor and clears it, for layers that
// accumulate into their output.
func (s *tscratch) ensureZero(shape ...int) *Tensor {
	t := s.ensure(shape...)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// Param is one learnable parameter block with its gradient accumulator.
type Param struct {
	Name string
	Data []float64
	Grad []float64
}

// newParam allocates a named parameter of size n.
func newParam(name string, n int) *Param {
	return &Param{Name: name, Data: make([]float64, n), Grad: make([]float64, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Layer is a differentiable module. Forward caches whatever Backward needs;
// a Layer instance is therefore stateful and must not be shared across
// concurrent nodes (each DL node builds its own model). Returned tensors are
// owned by the layer and valid only until its next Forward/Backward call —
// the training loop consumes them within one TrainBatch (forward chain, loss,
// backward chain), which is what lets layers reuse their output buffers.
type Layer interface {
	// Forward computes the layer output. train toggles train-time behaviour
	// (e.g. dropout).
	Forward(x *Tensor, train bool) *Tensor
	// Backward consumes the gradient of the loss w.r.t. the layer output and
	// returns the gradient w.r.t. the layer input, accumulating parameter
	// gradients along the way. It must be called after Forward.
	Backward(grad *Tensor) *Tensor
	// Params returns the learnable parameters (possibly empty).
	Params() []*Param
}
