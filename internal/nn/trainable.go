package nn

import (
	"fmt"
	"math"
)

// Trainable is the model view the decentralized learning engine operates on:
// a flat parameter vector plus minibatch train and eval steps. All models in
// the zoo (CNN classifiers, the stacked LSTM, matrix factorization) implement
// it, which is what lets JWINS treat every architecture identically, as the
// paper emphasizes ("JWINS considers models as flat vectors of parameters").
type Trainable interface {
	// ParamCount returns the flat parameter dimension.
	ParamCount() int
	// CopyParams writes the current flat parameter vector into dst.
	CopyParams(dst []float64)
	// SetParams overwrites the parameters from a flat vector.
	SetParams(src []float64)
	// TrainBatch runs forward + backward + one SGD step, returning the batch loss.
	TrainBatch(x *Tensor, y []float64, lr float64) float64
	// EvalBatch returns summed loss, number of correct predictions, and the
	// number of scored predictions for the batch.
	EvalBatch(x *Tensor, y []float64) (sumLoss float64, correct, count int)
}

// Classifier wraps a Sequential network with a loss for classification or
// sequence-classification tasks. If the network emits [N, T, K] (sequence
// models), logits and targets are flattened to [N*T, K] positions.
type Classifier struct {
	Net    *Sequential
	LossFn Loss
	opt    SGD

	// lossGrad is the reusable gradient buffer for losses implementing
	// lossInto; gradView is the reused reshape header for sequence outputs.
	lossGrad tscratch
	gradView Tensor
}

var _ Trainable = (*Classifier)(nil)

// NewClassifier builds a softmax-cross-entropy classifier over net.
func NewClassifier(net *Sequential) *Classifier {
	return &Classifier{Net: net, LossFn: SoftmaxCrossEntropy{}}
}

// ParamCount implements Trainable.
func (c *Classifier) ParamCount() int { return c.Net.ParamCount() }

// CopyParams implements Trainable.
func (c *Classifier) CopyParams(dst []float64) { c.Net.CopyParams(dst) }

// SetParams implements Trainable.
func (c *Classifier) SetParams(src []float64) { c.Net.SetParams(src) }

// logits2D flattens [N, T, K] sequence logits to [N*T, K].
func logits2D(out *Tensor) *Tensor {
	switch len(out.Shape) {
	case 2:
		return out
	case 3:
		return out.Reshape(out.Shape[0]*out.Shape[1], out.Shape[2])
	default:
		panic(fmt.Sprintf("nn: classifier output shape %v unsupported", out.Shape))
	}
}

// lossAndGrad computes the loss and its gradient, reusing the classifier's
// grad buffer when the loss supports in-place computation.
func (c *Classifier) lossAndGrad(flat *Tensor, y []float64) (float64, *Tensor) {
	if li, ok := c.LossFn.(lossInto); ok {
		grad := c.lossGrad.ensure(flat.Shape...)
		return li.ComputeInto(flat, y, grad), grad
	}
	return c.LossFn.Compute(flat, y)
}

// TrainBatch implements Trainable.
func (c *Classifier) TrainBatch(x *Tensor, y []float64, lr float64) float64 {
	c.Net.ZeroGrad()
	out := c.Net.Forward(x, true)
	flat := logits2D(out)
	loss, grad := c.lossAndGrad(flat, y)
	if len(out.Shape) != 2 {
		// Sequence outputs: restore [N, T, K] through a reused view header.
		c.gradView.Data = grad.Data
		c.gradView.Shape = append(c.gradView.Shape[:0], out.Shape...)
		grad = &c.gradView
	}
	c.Net.Backward(grad)
	c.opt.Step(lr, c.Net.Params())
	return loss
}

// EvalBatch implements Trainable.
func (c *Classifier) EvalBatch(x *Tensor, y []float64) (float64, int, int) {
	out := c.Net.Forward(x, false)
	flat := logits2D(out)
	loss, _ := c.lossAndGrad(flat, y)
	m := flat.Shape[0]
	correct := 0
	for i := 0; i < m; i++ {
		if Argmax(flat, i) == int(y[i]) {
			correct++
		}
	}
	return loss * float64(m), correct, m
}

// MatrixFactorization is the paper's MovieLens recommender: biased matrix
// factorization r̂(u,i) = μ + b_u + b_i + p_u · q_i trained with MSE.
// Batches carry (user, item) id pairs in x ([N, 2]) and ratings in y.
// A prediction counts as "correct" when it rounds to the true rating within
// 0.5, mirroring accuracy-style reporting for recommendation.
type MatrixFactorization struct {
	Users, Items, K int
	UserEmb         *Param
	ItemEmb         *Param
	UserBias        *Param
	ItemBias        *Param
	GlobalBias      *Param

	params []*Param
	count  int
}

var _ Trainable = (*MatrixFactorization)(nil)

// NewMatrixFactorization builds an MF model with N(0, 0.1) embeddings.
func NewMatrixFactorization(users, items, k int, rng interface{ NormFloat64() float64 }) *MatrixFactorization {
	m := &MatrixFactorization{
		Users:      users,
		Items:      items,
		K:          k,
		UserEmb:    newParam("mf.user_emb", users*k),
		ItemEmb:    newParam("mf.item_emb", items*k),
		UserBias:   newParam("mf.user_bias", users),
		ItemBias:   newParam("mf.item_bias", items),
		GlobalBias: newParam("mf.global_bias", 1),
	}
	for i := range m.UserEmb.Data {
		m.UserEmb.Data[i] = rng.NormFloat64() * 0.1
	}
	for i := range m.ItemEmb.Data {
		m.ItemEmb.Data[i] = rng.NormFloat64() * 0.1
	}
	m.GlobalBias.Data[0] = 3 // ratings live in [1, 5]
	m.params = []*Param{m.UserEmb, m.ItemEmb, m.UserBias, m.ItemBias, m.GlobalBias}
	for _, p := range m.params {
		m.count += len(p.Data)
	}
	return m
}

// ParamCount implements Trainable.
func (m *MatrixFactorization) ParamCount() int { return m.count }

// CopyParams implements Trainable.
func (m *MatrixFactorization) CopyParams(dst []float64) { copyParamsOut(dst, m.params, m.count) }

// SetParams implements Trainable.
func (m *MatrixFactorization) SetParams(src []float64) { copyParamsIn(src, m.params, m.count) }

// Params returns the parameter blocks (for optimizer access in tests).
func (m *MatrixFactorization) Params() []*Param { return m.params }

func (m *MatrixFactorization) predict(u, it int) float64 {
	pu := m.UserEmb.Data[u*m.K : (u+1)*m.K]
	qi := m.ItemEmb.Data[it*m.K : (it+1)*m.K]
	var dot float64
	for k := range pu {
		dot += pu[k] * qi[k]
	}
	return m.GlobalBias.Data[0] + m.UserBias.Data[u] + m.ItemBias.Data[it] + dot
}

func (m *MatrixFactorization) ids(x *Tensor, i int) (int, int) {
	u := int(x.Data[2*i])
	it := int(x.Data[2*i+1])
	if u < 0 || u >= m.Users || it < 0 || it >= m.Items {
		panic(fmt.Sprintf("nn: MF ids (%d, %d) out of range (%d users, %d items)", u, it, m.Users, m.Items))
	}
	return u, it
}

// TrainBatch implements Trainable. x is [N, 2] (user, item) ids; y ratings.
// MF embedding gradients are per-sample sparse, so TrainBatch performs one
// online SGD sweep over the batch (each sample's squared-error gradient is
// applied immediately), which is the standard way to train MF recommenders.
func (m *MatrixFactorization) TrainBatch(x *Tensor, y []float64, lr float64) float64 {
	n := x.Shape[0]
	var total float64
	const inv = 2.0 // d(err^2)/dpred for a single sample
	for i := 0; i < n; i++ {
		u, it := m.ids(x, i)
		err := m.predict(u, it) - y[i]
		total += err * err
		g := inv * err
		pu := m.UserEmb.Data[u*m.K : (u+1)*m.K]
		qi := m.ItemEmb.Data[it*m.K : (it+1)*m.K]
		for k := 0; k < m.K; k++ {
			du := g * qi[k]
			di := g * pu[k]
			pu[k] -= lr * du
			qi[k] -= lr * di
		}
		m.UserBias.Data[u] -= lr * g
		m.ItemBias.Data[it] -= lr * g
		m.GlobalBias.Data[0] -= lr * g
	}
	return total / float64(n)
}

// EvalBatch implements Trainable.
func (m *MatrixFactorization) EvalBatch(x *Tensor, y []float64) (float64, int, int) {
	n := x.Shape[0]
	var sumLoss float64
	correct := 0
	for i := 0; i < n; i++ {
		u, it := m.ids(x, i)
		pred := m.predict(u, it)
		d := pred - y[i]
		sumLoss += d * d
		if math.Abs(d) < 0.5 {
			correct++
		}
	}
	return sumLoss, correct, n
}
