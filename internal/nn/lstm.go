package nn

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// LSTM is a single recurrent layer processing full sequences: input
// [N, T, In] to output [N, T, Hidden] (hidden state at every step). Stack two
// instances in a Sequential for the paper's stacked-LSTM Shakespeare model.
// Initial hidden and cell states are zero. Backward runs full BPTT.
//
// Gate layout in the packed weight matrices is [input; forget; cell; output].
type LSTM struct {
	In, Hidden int
	Wx         *Param // [4H, In]
	Wh         *Param // [4H, H]
	B          *Param // [4H]

	// caches, indexed per timestep
	x          *Tensor
	gates      []float64 // [T][N][4H] post-nonlinearity: i, f, g, o
	cells      []float64 // [T][N][H] cell states
	tanhCells  []float64 // [T][N][H]
	hiddens    []float64 // [T][N][H]
	seqN, seqT int
}

var _ Layer = (*LSTM)(nil)

// NewLSTM builds an LSTM layer with uniform(-1/sqrt(H), 1/sqrt(H)) init and
// forget-gate bias 1 (standard practice for stable early training).
func NewLSTM(in, hidden int, rng *vec.RNG) *LSTM {
	l := &LSTM{
		In:     in,
		Hidden: hidden,
		Wx:     newParam(fmt.Sprintf("lstm_%dx%d.wx", hidden, in), 4*hidden*in),
		Wh:     newParam(fmt.Sprintf("lstm_%dx%d.wh", hidden, in), 4*hidden*hidden),
		B:      newParam(fmt.Sprintf("lstm_%dx%d.b", hidden, in), 4*hidden),
	}
	bound := 1 / math.Sqrt(float64(hidden))
	for i := range l.Wx.Data {
		l.Wx.Data[i] = (2*rng.Float64() - 1) * bound
	}
	for i := range l.Wh.Data {
		l.Wh.Data[i] = (2*rng.Float64() - 1) * bound
	}
	for h := 0; h < hidden; h++ {
		l.B.Data[hidden+h] = 1 // forget gate bias
	}
	return l
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Forward implements Layer. x must be [N, T, In].
func (l *LSTM) Forward(x *Tensor, _ bool) *Tensor {
	if len(x.Shape) != 3 || x.Shape[2] != l.In {
		panic(fmt.Sprintf("nn: LSTM expects [N, T, %d], got %v", l.In, x.Shape))
	}
	n, t := x.Shape[0], x.Shape[1]
	h4 := 4 * l.Hidden
	hd := l.Hidden
	l.x = x
	l.seqN, l.seqT = n, t
	l.gates = grow(l.gates, t*n*h4)
	l.cells = grow(l.cells, t*n*hd)
	l.tanhCells = grow(l.tanhCells, t*n*hd)
	l.hiddens = grow(l.hiddens, t*n*hd)
	y := NewTensor(n, t, hd)

	wx, wh, b := l.Wx.Data, l.Wh.Data, l.B.Data
	for ti := 0; ti < t; ti++ {
		for ni := 0; ni < n; ni++ {
			xrow := x.Data[(ni*t+ti)*l.In:][:l.In:l.In]
			var hPrev, cPrev []float64
			if ti > 0 {
				hPrev = l.hiddens[((ti-1)*n+ni)*hd:][:hd:hd]
				cPrev = l.cells[((ti-1)*n+ni)*hd:][:hd:hd]
			}
			gateRow := l.gates[(ti*n+ni)*h4:][:h4:h4]
			cellRow := l.cells[(ti*n+ni)*hd:][:hd:hd]
			tanhRow := l.tanhCells[(ti*n+ni)*hd:][:hd:hd]
			hidRow := l.hiddens[(ti*n+ni)*hd:][:hd:hd]
			for u := 0; u < h4; u++ {
				s := b[u]
				wxRow := wx[u*l.In:][:l.In:l.In]
				for k, xv := range xrow {
					s += wxRow[k] * xv
				}
				if hPrev != nil {
					whRow := wh[u*hd:][:hd:hd]
					for k, hv := range hPrev {
						s += whRow[k] * hv
					}
				}
				gateRow[u] = s
			}
			for hIdx := 0; hIdx < hd; hIdx++ {
				iG := sigmoid(gateRow[hIdx])
				fG := sigmoid(gateRow[hd+hIdx])
				gG := math.Tanh(gateRow[2*hd+hIdx])
				oG := sigmoid(gateRow[3*hd+hIdx])
				gateRow[hIdx], gateRow[hd+hIdx], gateRow[2*hd+hIdx], gateRow[3*hd+hIdx] = iG, fG, gG, oG
				var cPrevV float64
				if cPrev != nil {
					cPrevV = cPrev[hIdx]
				}
				c := fG*cPrevV + iG*gG
				tc := math.Tanh(c)
				cellRow[hIdx] = c
				tanhRow[hIdx] = tc
				hidRow[hIdx] = oG * tc
			}
			copy(y.Data[(ni*t+ti)*hd:][:hd:hd], hidRow)
		}
	}
	return y
}

// Backward implements Layer.
func (l *LSTM) Backward(grad *Tensor) *Tensor {
	n, t := l.seqN, l.seqT
	hd := l.Hidden
	h4 := 4 * hd
	x := l.x
	dx := NewTensor(x.Shape...)
	wx, wh := l.Wx.Data, l.Wh.Data
	gwx, gwh, gb := l.Wx.Grad, l.Wh.Grad, l.B.Grad

	dhNext := make([]float64, n*hd) // dL/dh_t flowing from t+1
	dcNext := make([]float64, n*hd)
	dz := make([]float64, h4)

	for ti := t - 1; ti >= 0; ti-- {
		for ni := 0; ni < n; ni++ {
			gateRow := l.gates[(ti*n+ni)*h4:][:h4:h4]
			tanhRow := l.tanhCells[(ti*n+ni)*hd:][:hd:hd]
			var cPrev, hPrev []float64
			if ti > 0 {
				cPrev = l.cells[((ti-1)*n+ni)*hd:][:hd:hd]
				hPrev = l.hiddens[((ti-1)*n+ni)*hd:][:hd:hd]
			}
			for hIdx := 0; hIdx < hd; hIdx++ {
				dh := grad.Data[(ni*t+ti)*hd+hIdx] + dhNext[ni*hd+hIdx]
				iG, fG, gG, oG := gateRow[hIdx], gateRow[hd+hIdx], gateRow[2*hd+hIdx], gateRow[3*hd+hIdx]
				tc := tanhRow[hIdx]
				dc := dh*oG*(1-tc*tc) + dcNext[ni*hd+hIdx]
				var cPrevV float64
				if cPrev != nil {
					cPrevV = cPrev[hIdx]
				}
				dI := dc * gG
				dF := dc * cPrevV
				dG := dc * iG
				dO := dh * tc
				dz[hIdx] = dI * iG * (1 - iG)
				dz[hd+hIdx] = dF * fG * (1 - fG)
				dz[2*hd+hIdx] = dG * (1 - gG*gG)
				dz[3*hd+hIdx] = dO * oG * (1 - oG)
				dcNext[ni*hd+hIdx] = dc * fG
				dhNext[ni*hd+hIdx] = 0 // recomputed below from Wh^T dz
			}
			xrow := x.Data[(ni*t+ti)*l.In:][:l.In:l.In]
			dxRow := dx.Data[(ni*t+ti)*l.In:][:l.In:l.In]
			for u := 0; u < h4; u++ {
				dzu := dz[u]
				if dzu == 0 {
					continue
				}
				gb[u] += dzu
				wxRow := wx[u*l.In:][:l.In:l.In]
				gwxRow := gwx[u*l.In:][:l.In:l.In]
				for k, xv := range xrow {
					gwxRow[k] += dzu * xv
					dxRow[k] += dzu * wxRow[k]
				}
				if hPrev != nil {
					whRow := wh[u*hd:][:hd:hd]
					gwhRow := gwh[u*hd:][:hd:hd]
					dhPrev := dhNext[ni*hd:][:hd:hd]
					for k, hv := range hPrev {
						gwhRow[k] += dzu * hv
						dhPrev[k] += dzu * whRow[k]
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
