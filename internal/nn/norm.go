package nn

import (
	"fmt"
	"math"
)

// GroupNorm normalizes NCHW activations over channel groups per sample, with
// a learned per-channel affine transform. The paper's image models follow
// GN-LeNet (Hsieh et al.), which replaces batch norm with group norm because
// batch statistics break under non-IID decentralized training.
type GroupNorm struct {
	C      int // channels
	Groups int
	Eps    float64
	Gamma  *Param
	Beta   *Param

	x       *Tensor
	xhat    []float64
	invSD   []float64 // per (sample, group)
	out, dx tscratch
}

var _ Layer = (*GroupNorm)(nil)

// NewGroupNorm builds a group-norm layer over c channels in the given number
// of groups (c must be divisible by groups).
func NewGroupNorm(c, groups int) *GroupNorm {
	if groups <= 0 || c%groups != 0 {
		panic(fmt.Sprintf("nn: GroupNorm channels %d not divisible by groups %d", c, groups))
	}
	g := &GroupNorm{
		C:      c,
		Groups: groups,
		Eps:    1e-5,
		Gamma:  newParam(fmt.Sprintf("gn_%d.gamma", c), c),
		Beta:   newParam(fmt.Sprintf("gn_%d.beta", c), c),
	}
	for i := range g.Gamma.Data {
		g.Gamma.Data[i] = 1
	}
	return g
}

// Forward implements Layer. x must be [N, C, H, W].
func (g *GroupNorm) Forward(x *Tensor, _ bool) *Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != g.C {
		panic(fmt.Sprintf("nn: GroupNorm expects [N, %d, H, W], got %v", g.C, x.Shape))
	}
	g.x = x
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	spatial := h * w
	chPerGroup := g.C / g.Groups
	groupLen := chPerGroup * spatial
	y := g.out.ensure(x.Shape...)
	if cap(g.xhat) < x.Len() {
		g.xhat = make([]float64, x.Len())
	}
	g.xhat = g.xhat[:x.Len()]
	if cap(g.invSD) < n*g.Groups {
		g.invSD = make([]float64, n*g.Groups)
	}
	g.invSD = g.invSD[:n*g.Groups]

	for ni := 0; ni < n; ni++ {
		for gi := 0; gi < g.Groups; gi++ {
			off := ni*g.C*spatial + gi*groupLen
			seg := x.Data[off : off+groupLen]
			var mean float64
			for _, v := range seg {
				mean += v
			}
			mean /= float64(groupLen)
			var variance float64
			for _, v := range seg {
				d := v - mean
				variance += d * d
			}
			variance /= float64(groupLen)
			inv := 1 / math.Sqrt(variance+g.Eps)
			g.invSD[ni*g.Groups+gi] = inv
			for c := 0; c < chPerGroup; c++ {
				ch := gi*chPerGroup + c
				gamma, beta := g.Gamma.Data[ch], g.Beta.Data[ch]
				for s := 0; s < spatial; s++ {
					i := off + c*spatial + s
					xh := (x.Data[i] - mean) * inv
					g.xhat[i] = xh
					y.Data[i] = gamma*xh + beta
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (g *GroupNorm) Backward(grad *Tensor) *Tensor {
	x := g.x
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	spatial := h * w
	chPerGroup := g.C / g.Groups
	groupLen := chPerGroup * spatial
	m := float64(groupLen)
	dx := g.dx.ensure(x.Shape...)

	for ni := 0; ni < n; ni++ {
		for gi := 0; gi < g.Groups; gi++ {
			off := ni*g.C*spatial + gi*groupLen
			inv := g.invSD[ni*g.Groups+gi]
			// dxhat = dy * gamma; need sum(dxhat) and sum(dxhat * xhat).
			var sumD, sumDX float64
			for c := 0; c < chPerGroup; c++ {
				ch := gi*chPerGroup + c
				gamma := g.Gamma.Data[ch]
				for s := 0; s < spatial; s++ {
					i := off + c*spatial + s
					dxh := grad.Data[i] * gamma
					sumD += dxh
					sumDX += dxh * g.xhat[i]
					// Accumulate affine gradients in the same pass.
					g.Gamma.Grad[ch] += grad.Data[i] * g.xhat[i]
					g.Beta.Grad[ch] += grad.Data[i]
				}
			}
			for c := 0; c < chPerGroup; c++ {
				ch := gi*chPerGroup + c
				gamma := g.Gamma.Data[ch]
				for s := 0; s < spatial; s++ {
					i := off + c*spatial + s
					dxh := grad.Data[i] * gamma
					dx.Data[i] = inv / m * (m*dxh - sumD - g.xhat[i]*sumDX)
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (g *GroupNorm) Params() []*Param { return []*Param{g.Gamma, g.Beta} }
