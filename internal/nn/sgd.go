package nn

// SGD is plain stochastic gradient descent (the paper uses SGD without
// momentum for all tasks). Momentum and weight decay are provided for
// experimentation but default to off.
type SGD struct {
	Momentum    float64
	WeightDecay float64

	velocity map[*Param][]float64
}

// Step applies one update with learning rate lr to params using their
// accumulated gradients. Gradients are not cleared.
func (s *SGD) Step(lr float64, params []*Param) {
	for _, p := range params {
		grad := p.Grad
		if s.WeightDecay != 0 {
			for i := range grad {
				grad[i] += s.WeightDecay * p.Data[i]
			}
		}
		if s.Momentum != 0 {
			if s.velocity == nil {
				s.velocity = make(map[*Param][]float64)
			}
			v, ok := s.velocity[p]
			if !ok {
				v = make([]float64, len(p.Data))
				s.velocity[p] = v
			}
			for i := range p.Data {
				v[i] = s.Momentum*v[i] + grad[i]
				p.Data[i] -= lr * v[i]
			}
		} else {
			for i := range p.Data {
				p.Data[i] -= lr * grad[i]
			}
		}
	}
}
