package nn

import (
	"fmt"
	"math"
)

// Loss computes a scalar training objective and its gradient with respect to
// the network output.
type Loss interface {
	// Compute returns the mean loss over predictions and dLoss/dPred.
	// pred is [M, K]; targets has length M (class ids or regression values).
	Compute(pred *Tensor, targets []float64) (float64, *Tensor)
}

// SoftmaxCrossEntropy is the standard classification loss over logits.
type SoftmaxCrossEntropy struct{}

var _ Loss = SoftmaxCrossEntropy{}

// lossInto is implemented by losses that can write the gradient into a
// caller-owned tensor, letting Classifier reuse one grad buffer across
// batches instead of allocating per step.
type lossInto interface {
	// ComputeInto returns the mean loss and fills grad (pre-shaped to pred's
	// shape) with dLoss/dPred.
	ComputeInto(pred *Tensor, targets []float64, grad *Tensor) float64
}

// Compute implements Loss. pred is [M, K] logits; targets are class ids.
func (s SoftmaxCrossEntropy) Compute(pred *Tensor, targets []float64) (float64, *Tensor) {
	grad := NewTensor(pred.Shape...)
	return s.ComputeInto(pred, targets, grad), grad
}

// ComputeInto implements lossInto.
func (SoftmaxCrossEntropy) ComputeInto(pred *Tensor, targets []float64, grad *Tensor) float64 {
	if len(pred.Shape) != 2 {
		panic(fmt.Sprintf("nn: cross-entropy expects [M, K] logits, got %v", pred.Shape))
	}
	m, k := pred.Shape[0], pred.Shape[1]
	if len(targets) != m {
		panic(fmt.Sprintf("nn: %d targets for %d predictions", len(targets), m))
	}
	var total float64
	for i := 0; i < m; i++ {
		row := pred.Data[i*k : (i+1)*k]
		gRow := grad.Data[i*k : (i+1)*k]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			gRow[j] = e
			sum += e
		}
		target := int(targets[i])
		if target < 0 || target >= k {
			panic(fmt.Sprintf("nn: target class %d out of range [0, %d)", target, k))
		}
		p := gRow[target] / sum
		total += -math.Log(math.Max(p, 1e-300))
		inv := 1 / (sum * float64(m))
		for j := range gRow {
			gRow[j] *= inv
		}
		gRow[target] -= 1 / float64(m)
	}
	return total / float64(m)
}

// MSE is the mean squared error loss for regression heads.
type MSE struct{}

var _ Loss = MSE{}

// Compute implements Loss. pred is [M, 1] (or [M, K] with targets length M*K).
func (l MSE) Compute(pred *Tensor, targets []float64) (float64, *Tensor) {
	grad := NewTensor(pred.Shape...)
	return l.ComputeInto(pred, targets, grad), grad
}

// ComputeInto implements lossInto.
func (MSE) ComputeInto(pred *Tensor, targets []float64, grad *Tensor) float64 {
	if pred.Len() != len(targets) {
		panic(fmt.Sprintf("nn: MSE got %d predictions for %d targets", pred.Len(), len(targets)))
	}
	m := pred.Len()
	var total float64
	for i, p := range pred.Data {
		d := p - targets[i]
		total += d * d
		grad.Data[i] = 2 * d / float64(m)
	}
	return total / float64(m)
}

// Argmax returns the index of the largest value in row i of a [M, K] tensor.
func Argmax(pred *Tensor, i int) int {
	k := pred.Shape[len(pred.Shape)-1]
	row := pred.Data[i*k : (i+1)*k]
	best, bestV := 0, row[0]
	for j, v := range row[1:] {
		if v > bestV {
			best, bestV = j+1, v
		}
	}
	return best
}
