package nn

import (
	"math"
	"testing"

	"repro/internal/vec"
)

// lazyPair builds an eager MLP and a Lazy wrapper around an identically
// seeded build closure, both starting from the same initial vector.
func lazyPair() (eager Trainable, lazy *Lazy, initial []float64) {
	template := NewMLP(6, 5, 3, vec.NewRNG(1))
	initial = make([]float64, template.ParamCount())
	template.CopyParams(initial)

	eager = NewMLP(6, 5, 3, vec.NewRNG(2))
	eager.SetParams(initial)
	lazy = NewLazy(template.ParamCount(), initial, func() Trainable {
		return NewMLP(6, 5, 3, vec.NewRNG(3))
	})
	return eager, lazy, initial
}

func lazyBatch() (*Tensor, []float64) {
	x := NewTensor(4, 6)
	rng := vec.NewRNG(9)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x, []float64{0, 1, 2, 1}
}

// TestLazyReadsBeforeMaterialization: ParamCount and CopyParams must answer
// from the shared initial vector without building a model — algorithm
// constructors (JWINS start state, CHOCO replicas) read through this path.
func TestLazyReadsBeforeMaterialization(t *testing.T) {
	_, lazy, initial := lazyPair()
	if lazy.Materialized() {
		t.Fatal("fresh Lazy is materialized")
	}
	if got, want := lazy.ParamCount(), len(initial); got != want {
		t.Fatalf("ParamCount() = %d, want %d", got, want)
	}
	dst := make([]float64, len(initial))
	lazy.CopyParams(dst)
	for i := range dst {
		if dst[i] != initial[i] {
			t.Fatalf("CopyParams()[%d] = %v, want initial %v", i, dst[i], initial[i])
		}
	}
	if lazy.Materialized() {
		t.Fatal("CopyParams materialized the model")
	}
}

// TestLazyMatchesEagerUnderTraining: a Lazy node that materializes on first
// TrainBatch must be bit-identical to an eager node with the same initial
// weights — the COW fleet's correctness contract.
func TestLazyMatchesEagerUnderTraining(t *testing.T) {
	eager, lazy, initial := lazyPair()
	x, y := lazyBatch()
	for step := 0; step < 3; step++ {
		le := eager.TrainBatch(x, y, 0.1)
		ll := lazy.TrainBatch(x, y, 0.1)
		if le != ll || math.IsNaN(ll) {
			t.Fatalf("step %d: eager loss %v != lazy loss %v", step, le, ll)
		}
	}
	if !lazy.Materialized() {
		t.Fatal("TrainBatch did not materialize")
	}
	got := make([]float64, len(initial))
	want := make([]float64, len(initial))
	lazy.CopyParams(got)
	eager.CopyParams(want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("param %d: lazy %v != eager %v", i, got[i], want[i])
		}
	}
}

// TestLazyMaterializeOnSetParams: aggregation's SetParams is a write and must
// materialize; the installed vector wins over the initial one.
func TestLazyMaterializeOnSetParams(t *testing.T) {
	_, lazy, initial := lazyPair()
	repl := make([]float64, len(initial))
	for i := range repl {
		repl[i] = float64(i)
	}
	lazy.SetParams(repl)
	if !lazy.Materialized() {
		t.Fatal("SetParams did not materialize")
	}
	got := make([]float64, len(repl))
	lazy.CopyParams(got)
	for i := range got {
		if got[i] != repl[i] {
			t.Fatalf("param %d: got %v, want %v", i, got[i], repl[i])
		}
	}
}

// TestLazyEvalBatchMatchesEager: evaluation materializes and must score
// identically to the eager twin.
func TestLazyEvalBatchMatchesEager(t *testing.T) {
	eager, lazy, _ := lazyPair()
	x, y := lazyBatch()
	el, ec, en := eager.EvalBatch(x, y)
	ll, lc, ln := lazy.EvalBatch(x, y)
	if el != ll || ec != lc || en != ln {
		t.Fatalf("eager (%v,%d,%d) != lazy (%v,%d,%d)", el, ec, en, ll, lc, ln)
	}
	if !lazy.Materialized() {
		t.Fatal("EvalBatch did not materialize")
	}
}
