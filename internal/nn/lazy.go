package nn

// Lazy is a copy-on-write Trainable: a placeholder that answers parameter
// reads from a shared initial vector and only builds its real model on the
// first operation that needs one (a write via SetParams, or compute via
// TrainBatch/EvalBatch). Fleet construction at 10k nodes then costs one
// template model plus a small wrapper per node; the per-node layer graphs and
// parameter storage materialize on first divergence.
//
// A Lazy is not safe for concurrent use, matching every other Trainable: the
// engines serialize all access to one node's model through its task chain.
// Different nodes' Lazy values may materialize concurrently because each owns
// its build closure and only reads the shared initial vector.
type Lazy struct {
	count   int
	initial []float64 // shared, read-only; never written through
	build   func() Trainable
	m       Trainable
}

// NewLazy wraps a deferred model. initial is the shared flat parameter vector
// every node starts from (callers must not mutate it afterwards); build
// constructs the concrete model and must be callable exactly once. count is
// the model's flat parameter dimension, which must equal len(initial).
func NewLazy(count int, initial []float64, build func() Trainable) *Lazy {
	return &Lazy{count: count, initial: initial, build: build}
}

// Materialized reports whether the concrete model has been built.
func (l *Lazy) Materialized() bool { return l.m != nil }

// materialize builds the concrete model and installs the shared initial
// weights, so the first divergence starts from the same state an eagerly
// built node would have.
func (l *Lazy) materialize() Trainable {
	if l.m == nil {
		l.m = l.build()
		l.build = nil
		l.m.SetParams(l.initial)
	}
	return l.m
}

// ParamCount returns the flat parameter dimension without materializing.
func (l *Lazy) ParamCount() int { return l.count }

// CopyParams reads the current parameters. Before materialization that is the
// shared initial vector — algorithm constructors (e.g. JWINS's accumulated
// start state) read it without forcing a build.
func (l *Lazy) CopyParams(dst []float64) {
	if l.m == nil {
		copy(dst, l.initial)
		return
	}
	l.m.CopyParams(dst)
}

// SetParams is the first write path (aggregation installs averaged weights):
// it materializes, then overwrites.
func (l *Lazy) SetParams(src []float64) {
	l.materialize().SetParams(src)
}

// TrainBatch materializes on first local training.
func (l *Lazy) TrainBatch(x *Tensor, y []float64, lr float64) float64 {
	return l.materialize().TrainBatch(x, y, lr)
}

// EvalBatch materializes on first evaluation: evaluation runs a real forward
// pass, and building the layer graph once here is what makes sampled
// evaluation pay off — unsampled nodes never build one.
func (l *Lazy) EvalBatch(x *Tensor, y []float64) (sumLoss float64, correct, count int) {
	return l.materialize().EvalBatch(x, y)
}
