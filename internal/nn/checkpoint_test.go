package nn

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/vec"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := vec.NewRNG(400)
	src := NewMLP(8, 4, 3, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := NewMLP(8, 4, 3, vec.NewRNG(401)) // different init
	if err := LoadParams(&buf, dst); err != nil {
		t.Fatal(err)
	}
	a := make([]float64, src.ParamCount())
	b := make([]float64, dst.ParamCount())
	src.CopyParams(a)
	dst.CopyParams(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("param %d differs after checkpoint round trip", i)
		}
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	rng := vec.NewRNG(402)
	m := NewMLP(4, 2, 2, rng)
	if err := LoadParams(strings.NewReader("not a checkpoint at all"), m); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCheckpointRejectsDimMismatch(t *testing.T) {
	rng := vec.NewRNG(403)
	small := NewMLP(4, 2, 2, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, small); err != nil {
		t.Fatal(err)
	}
	big := NewMLP(8, 4, 3, rng)
	if err := LoadParams(&buf, big); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	rng := vec.NewRNG(404)
	m := NewMLP(4, 2, 2, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[20] ^= 0xff // flip payload bits
	if err := LoadParams(bytes.NewReader(data), m); err == nil {
		t.Fatal("corruption not detected")
	}
	// Truncation.
	if err := LoadParams(bytes.NewReader(data[:len(data)-8]), m); err == nil {
		t.Fatal("truncation not detected")
	}
}
