package nn

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Dense is a fully connected layer: y = x W^T + b with W shaped [out][in].
type Dense struct {
	In, Out int
	W       *Param
	B       *Param

	x       *Tensor // cached input
	out, dx tscratch
}

var _ Layer = (*Dense)(nil)

// NewDense builds a dense layer with He-uniform initialization.
func NewDense(in, out int, rng *vec.RNG) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   newParam(fmt.Sprintf("dense_%dx%d.w", out, in), in*out),
		B:   newParam(fmt.Sprintf("dense_%dx%d.b", out, in), out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range d.W.Data {
		d.W.Data[i] = (2*rng.Float64() - 1) * bound
	}
	return d
}

// Forward implements Layer. x must be [N, In].
func (d *Dense) Forward(x *Tensor, _ bool) *Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: Dense expects [N, %d], got %v", d.In, x.Shape))
	}
	d.x = x
	n := x.Shape[0]
	y := d.out.ensure(n, d.Out)
	w := d.W.Data
	b := d.B.Data
	for i := 0; i < n; i++ {
		xi := x.Data[i*d.In : (i+1)*d.In]
		yi := y.Data[i*d.Out : (i+1)*d.Out]
		for o := 0; o < d.Out; o++ {
			row := w[o*d.In : (o+1)*d.In]
			var s float64
			for k, xv := range xi {
				s += row[k] * xv
			}
			yi[o] = s + b[o]
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(grad *Tensor) *Tensor {
	x := d.x
	n := x.Shape[0]
	dx := d.dx.ensureZero(n, d.In)
	w := d.W.Data
	gw := d.W.Grad
	gb := d.B.Grad
	for i := 0; i < n; i++ {
		xi := x.Data[i*d.In : (i+1)*d.In]
		gi := grad.Data[i*d.Out : (i+1)*d.Out]
		dxi := dx.Data[i*d.In : (i+1)*d.In]
		for o := 0; o < d.Out; o++ {
			g := gi[o]
			if g == 0 {
				continue
			}
			gb[o] += g
			row := w[o*d.In : (o+1)*d.In]
			growRow := gw[o*d.In : (o+1)*d.In]
			for k, xv := range xi {
				growRow[k] += g * xv
				dxi[k] += g * row[k]
			}
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Flatten reshapes [N, ...] to [N, prod(...)]. It has no parameters. The
// returned tensors are reused header views over the input's data.
type Flatten struct {
	inShape []int
	view    Tensor // reused flattened view (aliases the input's data)
	back    Tensor // reused gradient view
}

var _ Layer = (*Flatten)(nil)

// Forward implements Layer.
func (f *Flatten) Forward(x *Tensor, _ bool) *Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	n := x.Shape[0]
	f.view.Data = x.Data
	f.view.Shape = append(f.view.Shape[:0], n, x.Len()/n)
	return &f.view
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *Tensor) *Tensor {
	f.back.Data = grad.Data
	f.back.Shape = append(f.back.Shape[:0], f.inShape...)
	return &f.back
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }
