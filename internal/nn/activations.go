package nn

import (
	"math"

	"repro/internal/vec"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	mask    []bool
	out, dx tscratch
}

var _ Layer = (*ReLU)(nil)

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor, _ bool) *Tensor {
	y := r.out.ensure(x.Shape...)
	if cap(r.mask) < len(y.Data) {
		r.mask = make([]bool, len(y.Data))
	}
	r.mask = r.mask[:len(y.Data)]
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
			y.Data[i] = v
		} else {
			r.mask[i] = false
			y.Data[i] = 0
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *Tensor) *Tensor {
	dx := r.dx.ensure(grad.Shape...)
	for i, g := range grad.Data {
		if r.mask[i] {
			dx.Data[i] = g
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	y       []float64
	out, dx tscratch
}

var _ Layer = (*Tanh)(nil)

// Forward implements Layer.
func (t *Tanh) Forward(x *Tensor, _ bool) *Tensor {
	y := t.out.ensure(x.Shape...)
	for i, v := range x.Data {
		y.Data[i] = math.Tanh(v)
	}
	t.y = y.Data
	return y
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *Tensor) *Tensor {
	dx := t.dx.ensure(grad.Shape...)
	for i, g := range grad.Data {
		dx.Data[i] = g * (1 - t.y[i]*t.y[i])
	}
	return dx
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	y       []float64
	out, dx tscratch
}

var _ Layer = (*Sigmoid)(nil)

// Forward implements Layer.
func (s *Sigmoid) Forward(x *Tensor, _ bool) *Tensor {
	y := s.out.ensure(x.Shape...)
	for i, v := range x.Data {
		y.Data[i] = 1 / (1 + math.Exp(-v))
	}
	s.y = y.Data
	return y
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *Tensor) *Tensor {
	dx := s.dx.ensure(grad.Shape...)
	for i, g := range grad.Data {
		dx.Data[i] = g * s.y[i] * (1 - s.y[i])
	}
	return dx
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Dropout zeroes activations with probability P at train time and scales the
// survivors by 1/(1-P) (inverted dropout). At eval time it is the identity.
type Dropout struct {
	P   float64
	rng *vec.RNG

	mask    []bool
	out, dx tscratch
}

var _ Layer = (*Dropout)(nil)

// NewDropout builds a dropout layer with drop probability p.
func NewDropout(p float64, rng *vec.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0, 1)")
	}
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *Tensor, train bool) *Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	y := d.out.ensure(x.Shape...)
	if cap(d.mask) < len(y.Data) {
		d.mask = make([]bool, len(y.Data))
	}
	d.mask = d.mask[:len(y.Data)]
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = false
			y.Data[i] = 0
		} else {
			d.mask[i] = true
			y.Data[i] = v * scale
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *Tensor) *Tensor {
	if d.mask == nil {
		return grad
	}
	dx := d.dx.ensure(grad.Shape...)
	scale := 1 / (1 - d.P)
	for i, g := range grad.Data {
		if d.mask[i] {
			dx.Data[i] = g * scale
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }
