package nn

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Conv2D is a 2-D convolution over NCHW tensors with stride 1 and symmetric
// zero padding. Kernels are shaped [OutC][InC][KH][KW].
type Conv2D struct {
	InC, OutC int
	K         int // square kernel size
	Pad       int
	W         *Param
	B         *Param

	x       *Tensor
	out, dx tscratch
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D builds a convolution layer with He-uniform initialization.
func NewConv2D(inC, outC, k, pad int, rng *vec.RNG) *Conv2D {
	c := &Conv2D{
		InC:  inC,
		OutC: outC,
		K:    k,
		Pad:  pad,
		W:    newParam(fmt.Sprintf("conv_%dx%dx%d.w", outC, inC, k), outC*inC*k*k),
		B:    newParam(fmt.Sprintf("conv_%dx%dx%d.b", outC, inC, k), outC),
	}
	fanIn := float64(inC * k * k)
	bound := math.Sqrt(6.0 / fanIn)
	for i := range c.W.Data {
		c.W.Data[i] = (2*rng.Float64() - 1) * bound
	}
	return c
}

// OutSize returns the spatial output size for input size s.
func (c *Conv2D) OutSize(s int) int { return s + 2*c.Pad - c.K + 1 }

// Forward implements Layer. x must be [N, InC, H, W].
func (c *Conv2D) Forward(x *Tensor, _ bool) *Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects [N, %d, H, W], got %v", c.InC, x.Shape))
	}
	c.x = x
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := c.OutSize(h), c.OutSize(w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: Conv2D output size %dx%d not positive", oh, ow))
	}
	y := c.out.ensureZero(n, c.OutC, oh, ow)
	k := c.K
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.B.Data[oc]
			out := y.Data[((ni*c.OutC)+oc)*oh*ow:][: oh*ow : oh*ow]
			for ic := 0; ic < c.InC; ic++ {
				in := x.Data[((ni*c.InC)+ic)*h*w:][: h*w : h*w]
				ker := c.W.Data[((oc*c.InC)+ic)*k*k:][: k*k : k*k]
				for oy := 0; oy < oh; oy++ {
					iy0 := oy - c.Pad
					for ox := 0; ox < ow; ox++ {
						ix0 := ox - c.Pad
						var s float64
						for ky := 0; ky < k; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							rowIn := in[iy*w:]
							rowK := ker[ky*k:]
							for kx := 0; kx < k; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								s += rowIn[ix] * rowK[kx]
							}
						}
						out[oy*ow+ox] += s
					}
				}
			}
			if bias != 0 {
				for i := range out {
					out[i] += bias
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *Tensor) *Tensor {
	x := c.x
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := grad.Shape[2], grad.Shape[3]
	k := c.K
	dx := c.dx.ensureZero(n, c.InC, h, w)
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < c.OutC; oc++ {
			g := grad.Data[((ni*c.OutC)+oc)*oh*ow:][: oh*ow : oh*ow]
			for i := range g {
				c.B.Grad[oc] += g[i]
			}
			for ic := 0; ic < c.InC; ic++ {
				in := x.Data[((ni*c.InC)+ic)*h*w:][: h*w : h*w]
				dIn := dx.Data[((ni*c.InC)+ic)*h*w:][: h*w : h*w]
				ker := c.W.Data[((oc*c.InC)+ic)*k*k:][: k*k : k*k]
				dKer := c.W.Grad[((oc*c.InC)+ic)*k*k:][: k*k : k*k]
				for oy := 0; oy < oh; oy++ {
					iy0 := oy - c.Pad
					for ox := 0; ox < ow; ox++ {
						gv := g[oy*ow+ox]
						if gv == 0 {
							continue
						}
						ix0 := ox - c.Pad
						for ky := 0; ky < k; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								dKer[ky*k+kx] += gv * in[iy*w+ix]
								dIn[iy*w+ix] += gv * ker[ky*k+kx]
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// MaxPool2D is a max pooling layer with square window and equal stride.
type MaxPool2D struct {
	K int // window size == stride

	argmax  []int
	inShape []int
	out, dx tscratch
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D builds a max-pool layer with window k (stride k).
func NewMaxPool2D(k int) *MaxPool2D {
	if k <= 0 {
		panic("nn: MaxPool2D window must be positive")
	}
	return &MaxPool2D{K: k}
}

// Forward implements Layer. x must be [N, C, H, W] with H and W divisible by K.
func (m *MaxPool2D) Forward(x *Tensor, _ bool) *Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D expects NCHW, got %v", x.Shape))
	}
	n, cdim, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if h%m.K != 0 || w%m.K != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D input %dx%d not divisible by %d", h, w, m.K))
	}
	oh, ow := h/m.K, w/m.K
	m.inShape = append(m.inShape[:0], x.Shape...)
	y := m.out.ensure(n, cdim, oh, ow)
	if cap(m.argmax) < y.Len() {
		m.argmax = make([]int, y.Len())
	}
	m.argmax = m.argmax[:y.Len()]
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < cdim; ci++ {
			in := x.Data[((ni*cdim)+ci)*h*w:][: h*w : h*w]
			base := ((ni * cdim) + ci) * h * w
			out := y.Data[((ni*cdim)+ci)*oh*ow:][: oh*ow : oh*ow]
			arg := m.argmax[((ni*cdim)+ci)*oh*ow:][: oh*ow : oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for ky := 0; ky < m.K; ky++ {
						iy := oy*m.K + ky
						for kx := 0; kx < m.K; kx++ {
							ix := ox*m.K + kx
							if v := in[iy*w+ix]; v > best {
								best = v
								bestIdx = base + iy*w + ix
							}
						}
					}
					out[oy*ow+ox] = best
					arg[oy*ow+ox] = bestIdx
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *Tensor) *Tensor {
	dx := m.dx.ensureZero(m.inShape...)
	for i, g := range grad.Data {
		dx.Data[m.argmax[i]] += g
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }
