package nn

import (
	"math"
	"testing"

	"repro/internal/vec"
)

// numericalGradCheck verifies analytic parameter and input gradients of a
// network against central finite differences through a given loss.
func numericalGradCheck(t *testing.T, net *Sequential, lossFn Loss, x *Tensor, y []float64, tol float64) {
	t.Helper()
	const eps = 1e-5

	lossAt := func() float64 {
		out := net.Forward(x.Clone(), true)
		flat := logits2D(out)
		loss, _ := lossFn.Compute(flat, y)
		return loss
	}

	// Analytic gradients.
	net.ZeroGrad()
	out := net.Forward(x.Clone(), true)
	flat := logits2D(out)
	_, grad := lossFn.Compute(flat, y)
	dx := net.Backward(grad.Reshape(out.Shape...))

	// Parameter gradients.
	for _, p := range net.Params() {
		for _, i := range sampleIndices(len(p.Data), 12) {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			up := lossAt()
			p.Data[i] = orig - eps
			down := lossAt()
			p.Data[i] = orig
			want := (up - down) / (2 * eps)
			got := p.Grad[i]
			if !gradClose(got, want, tol) {
				t.Errorf("param %s[%d]: analytic %v numeric %v", p.Name, i, got, want)
			}
		}
	}

	// Input gradients (skip integer-id inputs, which have no gradient).
	if dx != nil && len(dx.Data) == len(x.Data) && !isIDInput(net) {
		for _, i := range sampleIndices(len(x.Data), 8) {
			orig := x.Data[i]
			x.Data[i] = orig + eps
			up := lossAt()
			x.Data[i] = orig - eps
			down := lossAt()
			x.Data[i] = orig
			want := (up - down) / (2 * eps)
			got := dx.Data[i]
			if !gradClose(got, want, tol) {
				t.Errorf("input[%d]: analytic %v numeric %v", i, got, want)
			}
		}
	}
}

func isIDInput(net *Sequential) bool {
	if len(net.Layers) == 0 {
		return false
	}
	_, ok := net.Layers[0].(*Embedding)
	return ok
}

func gradClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// sampleIndices returns up to k deterministic probe indices spread over [0, n).
func sampleIndices(n, k int) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, k)
	for i := range out {
		out[i] = i * n / k
	}
	return out
}

func randInput(rng *vec.RNG, shape ...int) *Tensor {
	x := NewTensor(shape...)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func classTargets(rng *vec.RNG, m, classes int) []float64 {
	y := make([]float64, m)
	for i := range y {
		y[i] = float64(rng.Intn(classes))
	}
	return y
}

func TestGradCheckDense(t *testing.T) {
	rng := vec.NewRNG(101)
	net := NewSequential(NewDense(7, 5, rng))
	x := randInput(rng, 3, 7)
	numericalGradCheck(t, net, SoftmaxCrossEntropy{}, x, classTargets(rng, 3, 5), 1e-4)
}

func TestGradCheckDenseMSE(t *testing.T) {
	rng := vec.NewRNG(102)
	net := NewSequential(NewDense(4, 1, rng))
	x := randInput(rng, 5, 4)
	y := make([]float64, 5)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	numericalGradCheck(t, net, MSE{}, x, y, 1e-4)
}

func TestGradCheckMLP(t *testing.T) {
	rng := vec.NewRNG(103)
	net := NewSequential(
		NewDense(6, 8, rng),
		&ReLU{},
		NewDense(8, 4, rng),
		&Tanh{},
		NewDense(4, 3, rng),
	)
	x := randInput(rng, 4, 6)
	numericalGradCheck(t, net, SoftmaxCrossEntropy{}, x, classTargets(rng, 4, 3), 1e-4)
}

func TestGradCheckSigmoid(t *testing.T) {
	rng := vec.NewRNG(104)
	net := NewSequential(NewDense(5, 5, rng), &Sigmoid{}, NewDense(5, 2, rng))
	x := randInput(rng, 3, 5)
	numericalGradCheck(t, net, SoftmaxCrossEntropy{}, x, classTargets(rng, 3, 2), 1e-4)
}

func TestGradCheckConv(t *testing.T) {
	rng := vec.NewRNG(105)
	net := NewSequential(
		NewConv2D(2, 3, 3, 1, rng),
		&ReLU{},
		&Flatten{},
		NewDense(3*6*6, 4, rng),
	)
	x := randInput(rng, 2, 2, 6, 6)
	numericalGradCheck(t, net, SoftmaxCrossEntropy{}, x, classTargets(rng, 2, 4), 1e-4)
}

func TestGradCheckConvNoPad(t *testing.T) {
	rng := vec.NewRNG(106)
	net := NewSequential(
		NewConv2D(1, 2, 3, 0, rng),
		&Flatten{},
		NewDense(2*4*4, 3, rng),
	)
	x := randInput(rng, 2, 1, 6, 6)
	numericalGradCheck(t, net, SoftmaxCrossEntropy{}, x, classTargets(rng, 2, 3), 1e-4)
}

func TestGradCheckMaxPool(t *testing.T) {
	rng := vec.NewRNG(107)
	net := NewSequential(
		NewConv2D(1, 2, 3, 1, rng),
		NewMaxPool2D(2),
		&Flatten{},
		NewDense(2*3*3, 3, rng),
	)
	x := randInput(rng, 2, 1, 6, 6)
	numericalGradCheck(t, net, SoftmaxCrossEntropy{}, x, classTargets(rng, 2, 3), 1e-4)
}

func TestGradCheckGroupNorm(t *testing.T) {
	rng := vec.NewRNG(108)
	net := NewSequential(
		NewConv2D(2, 4, 3, 1, rng),
		NewGroupNorm(4, 2),
		&ReLU{},
		&Flatten{},
		NewDense(4*4*4, 3, rng),
	)
	x := randInput(rng, 2, 2, 4, 4)
	numericalGradCheck(t, net, SoftmaxCrossEntropy{}, x, classTargets(rng, 2, 3), 2e-4)
}

func TestGradCheckGNLeNetTiny(t *testing.T) {
	rng := vec.NewRNG(109)
	clf := NewGNLeNet(ModelConfig{Channels: 1, Height: 8, Width: 8, Classes: 3, WidthScale: 8}, rng)
	x := randInput(rng, 2, 1, 8, 8)
	numericalGradCheck(t, clf.Net, SoftmaxCrossEntropy{}, x, classTargets(rng, 2, 3), 2e-4)
}

func TestGradCheckEmbedding(t *testing.T) {
	rng := vec.NewRNG(110)
	net := NewSequential(
		NewEmbedding(10, 4, rng),
		&Flatten{},
		NewDense(3*4, 5, rng),
	)
	x := NewTensor(2, 3)
	for i := range x.Data {
		x.Data[i] = float64(rng.Intn(10))
	}
	numericalGradCheck(t, net, SoftmaxCrossEntropy{}, x, classTargets(rng, 2, 5), 1e-4)
}

func TestGradCheckLSTM(t *testing.T) {
	rng := vec.NewRNG(111)
	net := NewSequential(NewLSTM(3, 5, rng), &seqDense{NewDense(5, 4, rng)})
	x := randInput(rng, 2, 6, 3)
	// Per-position targets: 2*6 = 12.
	numericalGradCheck(t, net, SoftmaxCrossEntropy{}, x, classTargets(rng, 12, 4), 2e-4)
}

func TestGradCheckStackedLSTMWithEmbedding(t *testing.T) {
	rng := vec.NewRNG(112)
	clf := NewCharLSTM(CharLSTMConfig{Vocab: 8, Embed: 3, Hidden: 4, Layers: 2}, rng)
	x := NewTensor(2, 5)
	for i := range x.Data {
		x.Data[i] = float64(rng.Intn(8))
	}
	numericalGradCheck(t, clf.Net, SoftmaxCrossEntropy{}, x, classTargets(rng, 10, 8), 3e-4)
}
