package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3)
	if x.Len() != 6 || x.Batch() != 2 || x.Dim(1) != 3 {
		t.Fatalf("tensor dims wrong: %+v", x)
	}
	x.Data[5] = 7
	y := x.Clone()
	y.Data[5] = 0
	if x.Data[5] != 7 {
		t.Fatal("Clone aliases data")
	}
	r := x.Reshape(3, 2)
	if r.Data[5] != 7 {
		t.Fatal("Reshape must share data")
	}
	if !x.SameShape(NewTensor(2, 3)) || x.SameShape(NewTensor(3, 2)) {
		t.Fatal("SameShape broken")
	}
}

func TestTensorPanics(t *testing.T) {
	mustPanic(t, func() { NewTensor(2, 0) })
	mustPanic(t, func() { FromData([]float64{1, 2}, 3) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestParamVectorRoundTrip(t *testing.T) {
	rng := vec.NewRNG(200)
	net := NewSequential(
		NewDense(4, 8, rng),
		&ReLU{},
		NewDense(8, 3, rng),
	)
	n := net.ParamCount()
	if n != 4*8+8+8*3+3 {
		t.Fatalf("ParamCount = %d", n)
	}
	v := make([]float64, n)
	net.CopyParams(v)
	// Mutate the vector, load it, copy back out: must be identical.
	for i := range v {
		v[i] += 0.5
	}
	net.SetParams(v)
	v2 := make([]float64, n)
	net.CopyParams(v2)
	for i := range v {
		if v[i] != v2[i] {
			t.Fatalf("round trip differs at %d: %v vs %v", i, v[i], v2[i])
		}
	}
}

func TestQuickParamVectorRoundTrip(t *testing.T) {
	rng := vec.NewRNG(201)
	net := NewSequential(NewDense(3, 4, rng), NewDense(4, 2, rng))
	n := net.ParamCount()
	f := func(seed uint64) bool {
		r := vec.NewRNG(seed)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		net.SetParams(v)
		out := make([]float64, n)
		net.CopyParams(out)
		for i := range v {
			if out[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over K classes must give loss log(K).
	pred := NewTensor(2, 4)
	loss, grad := SoftmaxCrossEntropy{}.Compute(pred, []float64{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform loss = %v, want %v", loss, math.Log(4))
	}
	// Gradient rows sum to zero.
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 4; j++ {
			s += grad.Data[i*4+j]
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("grad row %d sums to %v", i, s)
		}
	}
}

func TestMSEKnown(t *testing.T) {
	pred := FromData([]float64{1, 2}, 2, 1)
	loss, grad := MSE{}.Compute(pred, []float64{0, 0})
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("MSE = %v, want 2.5", loss)
	}
	if math.Abs(grad.Data[0]-1) > 1e-12 || math.Abs(grad.Data[1]-2) > 1e-12 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestArgmax(t *testing.T) {
	pred := FromData([]float64{1, 5, 2, 9, 0, 3}, 2, 3)
	if Argmax(pred, 0) != 1 || Argmax(pred, 1) != 0 {
		t.Fatal("Argmax wrong")
	}
}

// TestMLPLearnsXOR trains on the XOR problem, which requires the hidden
// layer: passing proves forward, backward, and SGD work end to end.
func TestMLPLearnsXOR(t *testing.T) {
	rng := vec.NewRNG(202)
	clf := NewMLP(2, 8, 2, rng)
	x := FromData([]float64{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	y := []float64{0, 1, 1, 0}
	var loss float64
	for epoch := 0; epoch < 800; epoch++ {
		loss = clf.TrainBatch(x, y, 0.5)
	}
	if loss > 0.1 {
		t.Fatalf("XOR did not converge: loss %v", loss)
	}
	_, correct, total := clf.EvalBatch(x, y)
	if correct != total {
		t.Fatalf("XOR accuracy %d/%d", correct, total)
	}
}

// TestCNNLearnsToy trains the scaled GN-LeNet on a trivially separable
// image task (bright vs dark) to verify the conv stack optimizes.
func TestCNNLearnsToy(t *testing.T) {
	rng := vec.NewRNG(203)
	clf := NewGNLeNet(ModelConfig{Channels: 1, Height: 8, Width: 8, Classes: 2, WidthScale: 8}, rng)
	n := 16
	x := NewTensor(n, 1, 8, 8)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		label := i % 2
		y[i] = float64(label)
		for j := 0; j < 64; j++ {
			base := -0.5
			if label == 1 {
				base = 0.5
			}
			x.Data[i*64+j] = base + 0.1*rng.NormFloat64()
		}
	}
	var loss float64
	for epoch := 0; epoch < 60; epoch++ {
		loss = clf.TrainBatch(x, y, 0.1)
	}
	if loss > 0.2 {
		t.Fatalf("toy CNN did not converge: loss %v", loss)
	}
}

// TestLSTMLearnsCopy trains a small LSTM to predict the previous character
// (a one-step memory task).
func TestLSTMLearnsCopy(t *testing.T) {
	rng := vec.NewRNG(204)
	clf := NewCharLSTM(CharLSTMConfig{Vocab: 4, Embed: 4, Hidden: 16, Layers: 1}, rng)
	n, seq := 8, 6
	x := NewTensor(n, seq)
	y := make([]float64, n*seq)
	for i := 0; i < n; i++ {
		prev := 0
		for s := 0; s < seq; s++ {
			cur := rng.Intn(4)
			x.Data[i*seq+s] = float64(cur)
			y[i*seq+s] = float64(prev) // predict previous token
			prev = cur
		}
	}
	var loss float64
	for epoch := 0; epoch < 300; epoch++ {
		loss = clf.TrainBatch(x, y, 0.3)
	}
	if loss > 0.5 {
		t.Fatalf("LSTM copy task did not converge: loss %v", loss)
	}
}

func TestMatrixFactorizationLearns(t *testing.T) {
	rng := vec.NewRNG(205)
	users, items, k := 12, 15, 4
	mf := NewMatrixFactorization(users, items, k, rng)
	// Ground-truth low-rank ratings.
	gtU := make([]float64, users*k)
	gtI := make([]float64, items*k)
	for i := range gtU {
		gtU[i] = rng.NormFloat64()
	}
	for i := range gtI {
		gtI[i] = rng.NormFloat64()
	}
	var xs []float64
	var ys []float64
	for u := 0; u < users; u++ {
		for it := 0; it < items; it++ {
			var dot float64
			for kk := 0; kk < k; kk++ {
				dot += gtU[u*k+kk] * gtI[it*k+kk]
			}
			r := 3 + dot
			if r < 1 {
				r = 1
			}
			if r > 5 {
				r = 5
			}
			xs = append(xs, float64(u), float64(it))
			ys = append(ys, r)
		}
	}
	x := FromData(xs, len(ys), 2)
	var loss float64
	for epoch := 0; epoch < 400; epoch++ {
		loss = mf.TrainBatch(x, ys, 0.01)
	}
	if loss > 0.05 {
		t.Fatalf("MF did not fit low-rank ratings: loss %v", loss)
	}
	sumLoss, correct, total := mf.EvalBatch(x, ys)
	if total != len(ys) || correct < total*8/10 {
		t.Fatalf("MF eval: correct %d/%d, sumLoss %v", correct, total, sumLoss)
	}
}

func TestMFParamRoundTrip(t *testing.T) {
	rng := vec.NewRNG(206)
	mf := NewMatrixFactorization(3, 4, 2, rng)
	n := mf.ParamCount()
	if n != 3*2+4*2+3+4+1 {
		t.Fatalf("ParamCount = %d", n)
	}
	v := make([]float64, n)
	mf.CopyParams(v)
	v[0] = 42
	mf.SetParams(v)
	v2 := make([]float64, n)
	mf.CopyParams(v2)
	if v2[0] != 42 {
		t.Fatal("SetParams did not write through")
	}
}

func TestDropout(t *testing.T) {
	rng := vec.NewRNG(207)
	d := NewDropout(0.5, rng)
	x := NewTensor(1, 1000)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := d.Forward(x, true)
	zeros := 0
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("dropout zeroed %d/1000, expected ~500", zeros)
	}
	// Eval mode is identity.
	y2 := d.Forward(x, false)
	for i := range y2.Data {
		if y2.Data[i] != 1 {
			t.Fatal("dropout not identity at eval time")
		}
	}
	mustPanic(t, func() { NewDropout(1.0, rng) })
}

func TestSGDMomentum(t *testing.T) {
	p := newParam("w", 1)
	p.Data[0] = 1
	p.Grad[0] = 1
	opt := &SGD{Momentum: 0.9}
	opt.Step(0.1, []*Param{p})
	if math.Abs(p.Data[0]-0.9) > 1e-12 {
		t.Fatalf("after step 1: %v", p.Data[0])
	}
	p.Grad[0] = 1
	opt.Step(0.1, []*Param{p})
	// velocity = 0.9*1 + 1 = 1.9; p = 0.9 - 0.19 = 0.71.
	if math.Abs(p.Data[0]-0.71) > 1e-12 {
		t.Fatalf("after step 2: %v", p.Data[0])
	}
}

func TestEmbeddingOutOfRangePanics(t *testing.T) {
	rng := vec.NewRNG(208)
	e := NewEmbedding(5, 2, rng)
	x := FromData([]float64{7}, 1, 1)
	mustPanic(t, func() { e.Forward(x, true) })
}

func TestConvOutputShape(t *testing.T) {
	rng := vec.NewRNG(209)
	c := NewConv2D(3, 8, 5, 2, rng)
	x := NewTensor(2, 3, 16, 16)
	y := c.Forward(x, true)
	want := []int{2, 8, 16, 16}
	for i, w := range want {
		if y.Shape[i] != w {
			t.Fatalf("conv output shape %v, want %v", y.Shape, want)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	a := NewGNLeNet(ModelConfig{Channels: 1, Height: 8, Width: 8, Classes: 2, WidthScale: 8}, vec.NewRNG(5))
	b := NewGNLeNet(ModelConfig{Channels: 1, Height: 8, Width: 8, Classes: 2, WidthScale: 8}, vec.NewRNG(5))
	va := make([]float64, a.ParamCount())
	vb := make([]float64, b.ParamCount())
	a.CopyParams(va)
	b.CopyParams(vb)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("same-seed models differ")
		}
	}
}
