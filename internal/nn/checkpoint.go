package nn

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Checkpoint format: "JWNN" magic, u8 version, u64 dim, dim float64s (LE),
// u32 CRC-32 of the payload. Used to persist and restore trained models
// across runs of the examples and CLIs.
var checkpointMagic = [4]byte{'J', 'W', 'N', 'N'}

const checkpointVersion = 1

// SaveParams writes m's flat parameter vector to w in checkpoint format.
func SaveParams(w io.Writer, m Trainable) error {
	dim := m.ParamCount()
	params := make([]float64, dim)
	m.CopyParams(params)

	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("nn: writing checkpoint magic: %w", err)
	}
	header := make([]byte, 9)
	header[0] = checkpointVersion
	binary.LittleEndian.PutUint64(header[1:], uint64(dim))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("nn: writing checkpoint header: %w", err)
	}
	payload := make([]byte, 8*dim)
	for i, v := range params {
		binary.LittleEndian.PutUint64(payload[8*i:], math.Float64bits(v))
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("nn: writing checkpoint payload: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("nn: writing checkpoint checksum: %w", err)
	}
	return nil
}

// LoadParams restores a checkpoint into m. The checkpoint dimension must
// match m's ParamCount exactly.
func LoadParams(r io.Reader, m Trainable) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: not a checkpoint file (magic %q)", magic)
	}
	header := make([]byte, 9)
	if _, err := io.ReadFull(r, header); err != nil {
		return fmt.Errorf("nn: reading checkpoint header: %w", err)
	}
	if header[0] != checkpointVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d", header[0])
	}
	dim := int(binary.LittleEndian.Uint64(header[1:]))
	if dim != m.ParamCount() {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", dim, m.ParamCount())
	}
	payload := make([]byte, 8*dim)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("nn: reading checkpoint payload: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return fmt.Errorf("nn: reading checkpoint checksum: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crc[:]) {
		return fmt.Errorf("nn: checkpoint checksum mismatch")
	}
	params := make([]float64, dim)
	for i := range params {
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	m.SetParams(params)
	return nil
}
