package nn

import "repro/internal/vec"

// ModelConfig scales the model zoo. Scale=1 mirrors the paper's architectures
// (GN-LeNet etc.); smaller scales shrink channel/hidden widths so the full
// multi-node experiment suite runs quickly on laptop CPUs while keeping the
// architecture shape (conv → GN → pool stacks, stacked LSTM, MF embeddings).
type ModelConfig struct {
	Channels, Height, Width int
	Classes                 int
	// WidthScale divides the layer widths of the paper architecture.
	// 1 = paper scale.
	WidthScale int
}

func scaled(width, scale int) int {
	if scale <= 1 {
		return width
	}
	w := width / scale
	if w < 2 {
		w = 2
	}
	return w
}

// NewGNLeNet builds the GN-LeNet image classifier of Hsieh et al. used by
// the paper for CIFAR-10: two conv(5x5) + GroupNorm + ReLU + MaxPool stages
// followed by a fully connected softmax head.
func NewGNLeNet(cfg ModelConfig, rng *vec.RNG) *Classifier {
	c1 := scaled(32, cfg.WidthScale)
	c2 := scaled(32, cfg.WidthScale)
	groups := 2
	if c1 < 4 {
		groups = 1
	}
	conv1 := NewConv2D(cfg.Channels, c1, 5, 2, rng)
	conv2 := NewConv2D(c1, c2, 5, 2, rng)
	h2 := cfg.Height / 4
	w2 := cfg.Width / 4
	net := NewSequential(
		conv1,
		NewGroupNorm(c1, groups),
		&ReLU{},
		NewMaxPool2D(2),
		conv2,
		NewGroupNorm(c2, groups),
		&ReLU{},
		NewMaxPool2D(2),
		&Flatten{},
		NewDense(c2*h2*w2, cfg.Classes, rng),
	)
	return NewClassifier(net)
}

// NewLEAFCNN builds the two-conv CNN used by the LEAF benchmarks (FEMNIST
// and CelebA in the paper): conv(5x5) + ReLU + pool stacks with a hidden
// dense layer before the softmax head.
func NewLEAFCNN(cfg ModelConfig, rng *vec.RNG) *Classifier {
	c1 := scaled(32, cfg.WidthScale)
	c2 := scaled(64, cfg.WidthScale)
	hidden := scaled(128, cfg.WidthScale)
	h2 := cfg.Height / 4
	w2 := cfg.Width / 4
	net := NewSequential(
		NewConv2D(cfg.Channels, c1, 5, 2, rng),
		&ReLU{},
		NewMaxPool2D(2),
		NewConv2D(c1, c2, 5, 2, rng),
		&ReLU{},
		NewMaxPool2D(2),
		&Flatten{},
		NewDense(c2*h2*w2, hidden, rng),
		&ReLU{},
		NewDense(hidden, cfg.Classes, rng),
	)
	return NewClassifier(net)
}

// CharLSTMConfig sizes the stacked-LSTM next-character model (the paper's
// Shakespeare task uses embedding 8 and two LSTM layers of 256 units).
type CharLSTMConfig struct {
	Vocab  int
	Embed  int
	Hidden int
	Layers int
}

// NewCharLSTM builds the stacked-LSTM next-character model: embedding →
// Layers× LSTM → dense softmax over the vocabulary at every position.
func NewCharLSTM(cfg CharLSTMConfig, rng *vec.RNG) *Classifier {
	layers := []Layer{NewEmbedding(cfg.Vocab, cfg.Embed, rng)}
	in := cfg.Embed
	for i := 0; i < cfg.Layers; i++ {
		layers = append(layers, NewLSTM(in, cfg.Hidden, rng))
		in = cfg.Hidden
	}
	layers = append(layers, &seqDense{NewDense(in, cfg.Vocab, rng)})
	return NewClassifier(NewSequential(layers...))
}

// seqDense applies a Dense layer independently at every timestep of a
// [N, T, In] tensor, producing [N, T, Out].
type seqDense struct {
	*Dense
}

// Forward implements Layer.
func (s *seqDense) Forward(x *Tensor, train bool) *Tensor {
	n, t := x.Shape[0], x.Shape[1]
	out := s.Dense.Forward(x.Reshape(n*t, x.Shape[2]), train)
	return out.Reshape(n, t, s.Out)
}

// Backward implements Layer.
func (s *seqDense) Backward(grad *Tensor) *Tensor {
	n, t := grad.Shape[0], grad.Shape[1]
	dx := s.Dense.Backward(grad.Reshape(n*t, grad.Shape[2]))
	return dx.Reshape(n, t, s.In)
}

// NewMLP builds a small fully connected classifier, useful for fast tests
// and the quickstart example. Inputs of any shape are flattened to [N, in].
func NewMLP(in, hidden, classes int, rng *vec.RNG) *Classifier {
	return NewClassifier(NewSequential(
		&Flatten{},
		NewDense(in, hidden, rng),
		&ReLU{},
		NewDense(hidden, classes, rng),
	))
}
