package nn

import "fmt"

// Sequential chains layers. It also implements the flat-parameter-vector view
// that all decentralized learning algorithms in this repository operate on.
type Sequential struct {
	Layers []Layer

	params     []*Param
	paramCount int
}

// NewSequential builds a network from layers in order.
func NewSequential(layers ...Layer) *Sequential {
	s := &Sequential{Layers: layers}
	for _, l := range layers {
		for _, p := range l.Params() {
			s.params = append(s.params, p)
			s.paramCount += len(p.Data)
		}
	}
	return s
}

// Forward runs all layers in order.
func (s *Sequential) Forward(x *Tensor, train bool) *Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs all layers in reverse, accumulating parameter gradients, and
// returns the gradient with respect to the network input.
func (s *Sequential) Backward(grad *Tensor) *Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all parameters in deterministic layer order.
func (s *Sequential) Params() []*Param { return s.params }

// ZeroGrad clears all parameter gradients.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar parameters.
func (s *Sequential) ParamCount() int { return s.paramCount }

// CopyParams writes the flat parameter vector into dst, which must have
// length ParamCount.
func (s *Sequential) CopyParams(dst []float64) {
	copyParamsOut(dst, s.params, s.paramCount)
}

// SetParams loads the flat parameter vector from src, which must have length
// ParamCount.
func (s *Sequential) SetParams(src []float64) {
	copyParamsIn(src, s.params, s.paramCount)
}

func copyParamsOut(dst []float64, params []*Param, count int) {
	if len(dst) != count {
		panic(fmt.Sprintf("nn: param vector length %d, want %d", len(dst), count))
	}
	off := 0
	for _, p := range params {
		copy(dst[off:off+len(p.Data)], p.Data)
		off += len(p.Data)
	}
}

func copyParamsIn(src []float64, params []*Param, count int) {
	if len(src) != count {
		panic(fmt.Sprintf("nn: param vector length %d, want %d", len(src), count))
	}
	off := 0
	for _, p := range params {
		copy(p.Data, src[off:off+len(p.Data)])
		off += len(p.Data)
	}
}
