package nn

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Embedding maps integer token ids to dense vectors. Input tensors carry ids
// as float64 values (the tensor type is shared across layers); ids must be
// integral and in [0, Vocab). Input [N, T] maps to output [N, T, Dim].
// Ids receive no gradient: Backward returns a zero tensor of the input shape.
type Embedding struct {
	Vocab, Dim int
	W          *Param

	ids     []int
	inShape []int
}

var _ Layer = (*Embedding)(nil)

// NewEmbedding builds an embedding table with N(0, 1/sqrt(Dim)) init.
func NewEmbedding(vocab, dim int, rng *vec.RNG) *Embedding {
	e := &Embedding{
		Vocab: vocab,
		Dim:   dim,
		W:     newParam(fmt.Sprintf("embed_%dx%d.w", vocab, dim), vocab*dim),
	}
	sd := 1 / math.Sqrt(float64(dim))
	for i := range e.W.Data {
		e.W.Data[i] = rng.NormFloat64() * sd
	}
	return e
}

// Forward implements Layer. x must be [N, T] of integral ids.
func (e *Embedding) Forward(x *Tensor, _ bool) *Tensor {
	if len(x.Shape) != 2 {
		panic(fmt.Sprintf("nn: Embedding expects [N, T], got %v", x.Shape))
	}
	n, t := x.Shape[0], x.Shape[1]
	e.inShape = append(e.inShape[:0], x.Shape...)
	if cap(e.ids) < n*t {
		e.ids = make([]int, n*t)
	}
	e.ids = e.ids[:n*t]
	y := NewTensor(n, t, e.Dim)
	for i, f := range x.Data {
		id := int(f)
		if id < 0 || id >= e.Vocab {
			panic(fmt.Sprintf("nn: embedding id %d out of range [0, %d)", id, e.Vocab))
		}
		e.ids[i] = id
		copy(y.Data[i*e.Dim:(i+1)*e.Dim], e.W.Data[id*e.Dim:(id+1)*e.Dim])
	}
	return y
}

// Backward implements Layer.
func (e *Embedding) Backward(grad *Tensor) *Tensor {
	for i, id := range e.ids {
		g := grad.Data[i*e.Dim : (i+1)*e.Dim]
		w := e.W.Grad[id*e.Dim : (id+1)*e.Dim]
		for k, v := range g {
			w[k] += v
		}
	}
	return NewTensor(e.inShape...)
}

// Params implements Layer.
func (e *Embedding) Params() []*Param { return []*Param{e.W} }
