package nn

import (
	"testing"

	"repro/internal/vec"
)

func TestDenseShapeValidation(t *testing.T) {
	rng := vec.NewRNG(300)
	d := NewDense(4, 2, rng)
	mustPanic(t, func() { d.Forward(NewTensor(3, 5), true) })
	mustPanic(t, func() { d.Forward(NewTensor(2, 2, 2), true) })
}

func TestConvShapeValidation(t *testing.T) {
	rng := vec.NewRNG(301)
	c := NewConv2D(3, 4, 3, 1, rng)
	mustPanic(t, func() { c.Forward(NewTensor(1, 2, 8, 8), true) }) // wrong channels
	mustPanic(t, func() { c.Forward(NewTensor(1, 3, 8), true) })    // wrong rank
	// Kernel larger than padded input must panic, not return garbage.
	tiny := NewConv2D(1, 1, 7, 0, rng)
	mustPanic(t, func() { tiny.Forward(NewTensor(1, 1, 3, 3), true) })
}

func TestMaxPoolValidation(t *testing.T) {
	p := NewMaxPool2D(2)
	mustPanic(t, func() { p.Forward(NewTensor(1, 1, 5, 4), true) }) // 5 not divisible
	mustPanic(t, func() { p.Forward(NewTensor(2, 3), true) })       // wrong rank
	mustPanic(t, func() { NewMaxPool2D(0) })
}

func TestGroupNormValidation(t *testing.T) {
	mustPanic(t, func() { NewGroupNorm(5, 2) }) // 5 % 2 != 0
	mustPanic(t, func() { NewGroupNorm(4, 0) })
	g := NewGroupNorm(4, 2)
	mustPanic(t, func() { g.Forward(NewTensor(1, 3, 2, 2), true) }) // wrong channels
}

func TestLSTMShapeValidation(t *testing.T) {
	rng := vec.NewRNG(302)
	l := NewLSTM(3, 4, rng)
	mustPanic(t, func() { l.Forward(NewTensor(2, 5), true) })    // wrong rank
	mustPanic(t, func() { l.Forward(NewTensor(2, 5, 7), true) }) // wrong feature dim
}

func TestEmbeddingShapeValidation(t *testing.T) {
	rng := vec.NewRNG(303)
	e := NewEmbedding(10, 4, rng)
	mustPanic(t, func() { e.Forward(NewTensor(2, 3, 4), true) }) // wrong rank
}

func TestSeqDenseShapes(t *testing.T) {
	rng := vec.NewRNG(304)
	clf := NewCharLSTM(CharLSTMConfig{Vocab: 6, Embed: 3, Hidden: 5, Layers: 1}, rng)
	x := NewTensor(2, 4)
	for i := range x.Data {
		x.Data[i] = float64(i % 6)
	}
	out := clf.Net.Forward(x, false)
	want := []int{2, 4, 6}
	for i, w := range want {
		if out.Shape[i] != w {
			t.Fatalf("char LSTM output shape %v, want %v", out.Shape, want)
		}
	}
}

func TestLossValidation(t *testing.T) {
	mustPanic(t, func() { SoftmaxCrossEntropy{}.Compute(NewTensor(2, 3), []float64{0}) })
	mustPanic(t, func() { SoftmaxCrossEntropy{}.Compute(NewTensor(2, 3), []float64{0, 9}) }) // class out of range
	mustPanic(t, func() { SoftmaxCrossEntropy{}.Compute(NewTensor(6), []float64{0}) })
	mustPanic(t, func() { MSE{}.Compute(NewTensor(2, 1), []float64{0}) })
}

func TestClassifierSequenceEval(t *testing.T) {
	rng := vec.NewRNG(305)
	clf := NewCharLSTM(CharLSTMConfig{Vocab: 4, Embed: 2, Hidden: 3, Layers: 1}, rng)
	x := NewTensor(2, 3)
	y := make([]float64, 6) // per-position targets
	loss, correct, total := clf.EvalBatch(x, y)
	if total != 6 {
		t.Fatalf("scored %d positions, want 6", total)
	}
	if loss <= 0 || correct < 0 || correct > total {
		t.Fatalf("odd eval results: loss=%v correct=%d", loss, correct)
	}
}

func TestMFValidation(t *testing.T) {
	rng := vec.NewRNG(306)
	mf := NewMatrixFactorization(3, 4, 2, rng)
	x := FromData([]float64{5, 0}, 1, 2) // user 5 out of range
	mustPanic(t, func() { mf.TrainBatch(x, []float64{3}, 0.1) })
}

func TestGNLeNetParamCountScalesDown(t *testing.T) {
	rng := vec.NewRNG(307)
	big := NewGNLeNet(ModelConfig{Channels: 3, Height: 16, Width: 16, Classes: 10, WidthScale: 1}, rng)
	small := NewGNLeNet(ModelConfig{Channels: 3, Height: 16, Width: 16, Classes: 10, WidthScale: 4}, rng)
	if small.ParamCount() >= big.ParamCount() {
		t.Fatalf("width scaling failed: %d >= %d", small.ParamCount(), big.ParamCount())
	}
}
