package dwt

import (
	"math"
	"math/rand"
	"testing"
)

// refForward is the reference multi-level forward: the textbook kernel
// (AnalyzePeriodicFilters) cascaded exactly as the pre-plan Transformer did.
// The plan path must match it bit for bit.
func refForward(p *Plan, x []float64) []float64 {
	out := make([]float64, p.CoeffLen())
	cur := make([]float64, p.CoeffLen())
	next := make([]float64, p.CoeffLen())
	copy(cur, x)
	g := p.Wavelet().G()
	curLen := p.CoeffLen()
	for lvl := 1; lvl <= p.Levels(); lvl++ {
		half := curLen / 2
		b := p.Bands()[p.Levels()-lvl+1]
		AnalyzePeriodicFilters(cur[:curLen], p.Wavelet().H, g, next[:half], out[b.Offset:b.Offset+b.Len])
		cur, next = next, cur
		curLen = half
	}
	copy(out[:curLen], cur[:curLen])
	return out
}

// refInverse cascades SynthesizePeriodicFilters the way the pre-plan
// Transformer did.
func refInverse(p *Plan, coeffs []float64) []float64 {
	cur := make([]float64, p.CoeffLen())
	next := make([]float64, p.CoeffLen())
	coarse := p.CoeffLen() >> uint(p.Levels())
	copy(cur[:coarse], coeffs[:coarse])
	g := p.Wavelet().G()
	curLen := coarse
	for lvl := p.Levels(); lvl >= 1; lvl-- {
		b := p.Bands()[p.Levels()-lvl+1]
		SynthesizePeriodicFilters(cur[:curLen], coeffs[b.Offset:b.Offset+b.Len], p.Wavelet().H, g, next[:2*curLen])
		cur, next = next, cur
		curLen *= 2
	}
	out := make([]float64, p.InputLen())
	copy(out, cur[:p.InputLen()])
	return out
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestPlanKernelsBitIdenticalToReference drives the specialized plan kernels
// (wrap-free main region, unrolled 4-tap bank, pad-free first level) across
// random dims, wavelets, and depths and demands bit equality with the
// reference cascade — the invariant every batched path in the repo leans on.
func TestPlanKernelsBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	names := Names()
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(600)
		if trial%17 == 0 {
			n = 4000 + rng.Intn(5000) // a few large-dim cases
		}
		levels := 1 + rng.Intn(6)
		name := names[rng.Intn(len(names))]
		w := MustByName(name)
		p, err := PlanFor(n, w, levels)
		if err != nil {
			t.Fatalf("PlanFor(%d, %s, %d): %v", n, name, levels, err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		var s Scratch
		got := make([]float64, p.CoeffLen())
		p.Forward(x, got, &s)
		want := refForward(p, x)
		if !bitsEqual(got, want) {
			t.Fatalf("Forward(n=%d, %s, levels=%d) diverges from reference kernel", n, name, levels)
		}
		gotInv := make([]float64, n)
		p.Inverse(got, gotInv, &s)
		wantInv := refInverse(p, want)
		if !bitsEqual(gotInv, wantInv) {
			t.Fatalf("Inverse(n=%d, %s, levels=%d) diverges from reference kernel", n, name, levels)
		}
	}
}

// TestBatchBitIdenticalToLooped is the differential property test for the
// batch entry points: ForwardBatch/InverseBatch over random dims, levels,
// wavelets, and batch sizes (including batch=1 and ragged final batches) must
// be bit-identical to looping the per-signal calls.
func TestBatchBitIdenticalToLooped(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	names := Names()
	sizes := []int{1, 2, 3, 5, 8, 11} // primes and non-powers catch ragged tails
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(900)
		levels := 1 + rng.Intn(5)
		name := names[rng.Intn(len(names))]
		batch := sizes[rng.Intn(len(sizes))]
		w := MustByName(name)
		p, err := PlanFor(n, w, levels)
		if err != nil {
			t.Fatalf("PlanFor(%d, %s, %d): %v", n, name, levels, err)
		}
		tr, err := NewTransformer(n, w, levels)
		if err != nil {
			t.Fatal(err)
		}
		xs := make([][]float64, batch)
		batchOut := make([][]float64, batch)
		loopOut := make([][]float64, batch)
		for b := 0; b < batch; b++ {
			xs[b] = make([]float64, n)
			for i := range xs[b] {
				xs[b][i] = rng.NormFloat64()
			}
			batchOut[b] = make([]float64, p.CoeffLen())
			loopOut[b] = make([]float64, p.CoeffLen())
		}
		var s Scratch
		p.ForwardBatch(xs, batchOut, &s)
		for b := 0; b < batch; b++ {
			tr.Forward(xs[b], loopOut[b])
			if !bitsEqual(batchOut[b], loopOut[b]) {
				t.Fatalf("ForwardBatch(n=%d, %s, levels=%d, batch=%d) signal %d diverges from looped Forward",
					n, name, levels, batch, b)
			}
		}
		batchInv := make([][]float64, batch)
		loopInv := make([][]float64, batch)
		for b := 0; b < batch; b++ {
			batchInv[b] = make([]float64, n)
			loopInv[b] = make([]float64, n)
		}
		p.InverseBatch(batchOut, batchInv, &s)
		for b := 0; b < batch; b++ {
			tr.Inverse(loopOut[b], loopInv[b])
			if !bitsEqual(batchInv[b], loopInv[b]) {
				t.Fatalf("InverseBatch(n=%d, %s, levels=%d, batch=%d) signal %d diverges from looped Inverse",
					n, name, levels, batch, b)
			}
		}
	}
}

// TestPlanMemoization checks the fleet-sharing contract: identical
// (dim, wavelet, levels) triples resolve to one *Plan, distinct triples to
// distinct plans, and a caller-constructed wavelet that collides with a
// registered name gets a private (uncached) plan instead of a wrong hit.
func TestPlanMemoization(t *testing.T) {
	w := MustByName("sym2")
	p1, err := PlanFor(1108, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanFor(1108, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("identical (dim, wavelet, levels) did not share a plan")
	}
	p3, err := PlanFor(1108, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("different levels shared a plan")
	}
	tr1, err := NewTransformer(1108, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := NewTransformer(1108, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Plan() != tr2.Plan() {
		t.Fatal("transformers with identical shape did not share a plan")
	}
	if tr1 == tr2 {
		t.Fatal("distinct transformers must not share scratch")
	}
	// Same name, different taps: must not hit the cached sym2 plan.
	imposter := Wavelet{Name: "sym2", H: []float64{0.5, 0.5, 0.5, 0.5}}
	pi, err := PlanFor(1108, imposter, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pi == p1 {
		t.Fatal("name-colliding wavelet with different taps hit the cached plan")
	}
	if pi.Wavelet().H[0] != 0.5 {
		t.Fatal("private plan lost its caller-supplied filter")
	}
}

// TestNewTransformerCacheHitAllocs locks in the fleet-build win: once a plan
// is cached, constructing another transformer of the same shape is one
// struct allocation — no filter, band-table, or scratch rebuilds.
func TestNewTransformerCacheHitAllocs(t *testing.T) {
	w := MustByName("sym2")
	if _, err := NewTransformer(50_000, w, 4); err != nil { // warm the cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := NewTransformer(50_000, w, 4); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("NewTransformer on a cached plan allocates %.1f times, want <= 1 (the struct)", allocs)
	}
}
