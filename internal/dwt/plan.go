package dwt

import (
	"fmt"
	"sync"
)

// Plan is an immutable, fleet-shareable description of one periodized
// multi-level DWT: the filter bank (h plus the derived high-pass g), the
// padding layout, and the flat band table. A Plan carries no mutable state,
// so any number of goroutines and transforms may use one concurrently;
// per-call buffers live in Scratch. PlanFor memoizes plans per
// (dim, wavelet, levels), so a fleet of nodes that share a model shape share
// one filter bank and band table instead of rebuilding them per node.
type Plan struct {
	wavelet Wavelet
	g       []float64 // cached high-pass filter (Wavelet.G allocates)
	n       int       // original input length
	padded  int       // padded length (multiple of 2^levels)
	levels  int
	bands   []Band
}

// planKey identifies a memoized plan. Wavelets are compared by name first and
// by filter taps on lookup, so a caller-constructed wavelet that reuses a
// registered name with different coefficients gets a private, uncached plan
// rather than a stale hit.
type planKey struct {
	n      int
	levels int
	name   string
}

var planCache sync.Map // planKey -> *Plan

// PlanFor returns the memoized plan for input length n under the given
// wavelet and decomposition depth, building and caching it on first use.
func PlanFor(n int, w Wavelet, levels int) (*Plan, error) {
	key := planKey{n: n, levels: levels, name: w.Name}
	if v, ok := planCache.Load(key); ok {
		p := v.(*Plan)
		if sameFilter(p.wavelet.H, w.H) {
			return p, nil
		}
		// Name collision with different taps: build privately, don't cache.
		return newPlan(n, w, levels)
	}
	p, err := newPlan(n, w, levels)
	if err != nil {
		return nil, err
	}
	v, _ := planCache.LoadOrStore(key, p)
	return v.(*Plan), nil
}

func sameFilter(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func newPlan(n int, w Wavelet, levels int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dwt: input length must be positive, got %d", n)
	}
	if levels <= 0 {
		return nil, fmt.Errorf("dwt: levels must be positive, got %d", levels)
	}
	if len(w.H) == 0 {
		return nil, fmt.Errorf("dwt: wavelet has no filter coefficients")
	}
	block := 1 << uint(levels)
	padded := ((n + block - 1) / block) * block
	// Keep the coarsest band at least as long as half the filter so the
	// periodized convolution wraps at most once per tap in the common case.
	for padded>>uint(levels) < 2 {
		padded += block
	}
	p := &Plan{
		wavelet: w,
		g:       w.G(),
		n:       n,
		padded:  padded,
		levels:  levels,
	}
	// Flat layout: [cA_L | cD_L | cD_{L-1} | ... | cD_1].
	lens := make([]int, levels) // lens[i] = detail length of level i+1
	cur := padded
	for lvl := 1; lvl <= levels; lvl++ {
		cur /= 2
		lens[lvl-1] = cur
	}
	off := 0
	p.bands = append(p.bands, Band{Name: fmt.Sprintf("cA%d", levels), Offset: 0, Len: lens[levels-1]})
	off += lens[levels-1]
	for lvl := levels; lvl >= 1; lvl-- {
		p.bands = append(p.bands, Band{Name: fmt.Sprintf("cD%d", lvl), Offset: off, Len: lens[lvl-1]})
		off += lens[lvl-1]
	}
	if off != padded {
		return nil, fmt.Errorf("dwt: internal layout error: bands sum to %d, padded %d", off, padded)
	}
	return p, nil
}

// InputLen returns the original (unpadded) input length.
func (p *Plan) InputLen() int { return p.n }

// CoeffLen returns the flat coefficient vector length (the padded length).
func (p *Plan) CoeffLen() int { return p.padded }

// Levels returns the number of decomposition levels.
func (p *Plan) Levels() int { return p.levels }

// Bands returns the coefficient layout. The returned slice is shared; callers
// must not modify it.
func (p *Plan) Bands() []Band { return p.bands }

// Wavelet returns the plan's wavelet.
func (p *Plan) Wavelet() Wavelet { return p.wavelet }

// detailSlot returns the cD_lvl slice inside a flat coefficient vector.
func (p *Plan) detailSlot(flat []float64, lvl int) []float64 {
	// bands[0] is cA_L; bands[1] is cD_L ... bands[levels] is cD_1.
	b := p.bands[p.levels-lvl+1]
	return flat[b.Offset : b.Offset+b.Len]
}

// Scratch holds the reusable ping-pong buffers a plan's transforms run in.
// Buffers grow lazily on first use, so holding a Scratch costs nothing until
// a transform actually runs. A Scratch serializes the transforms that run in
// it and is therefore NOT safe for concurrent use; a batch pipeline or a
// single node owns one.
type Scratch struct {
	a, b []float64
}

func (s *Scratch) ensure(padded int) {
	if len(s.a) < padded {
		s.a = make([]float64, padded)
		s.b = make([]float64, padded)
	}
}

// Forward computes the multi-level DWT of x into out using s for scratch.
// len(x) must equal InputLen and len(out) must equal CoeffLen.
func (p *Plan) Forward(x, out []float64, s *Scratch) {
	if len(x) != p.n {
		panic(fmt.Sprintf("dwt: Forward input length %d, want %d", len(x), p.n))
	}
	if len(out) != p.padded {
		panic(fmt.Sprintf("dwt: Forward output length %d, want %d", len(out), p.padded))
	}
	s.ensure(p.padded)
	// When the input needs no padding the first level reads x directly —
	// identical values, one less full-vector copy. Otherwise stage the
	// zero-padded copy in scratch.
	cur, next := x, s.a
	if p.padded != p.n {
		buf := s.a[:p.padded]
		copy(buf, x)
		for i := p.n; i < p.padded; i++ {
			buf[i] = 0
		}
		cur, next = buf, s.b
	}
	curLen := p.padded
	// Details are emitted from finest (cD1, at the tail of out) to coarsest;
	// the shrinking approximation ping-pongs between the two scratch buffers
	// instead of copying back each level.
	for lvl := 1; lvl <= p.levels; lvl++ {
		half := curLen / 2
		approx := next[:half]
		detail := p.detailSlot(out, lvl)
		analyzeLevel(cur[:curLen], p.wavelet.H, p.g, approx, detail)
		if lvl == 1 && p.padded == p.n {
			cur, next = next, s.b // never write back into the caller's x
		} else {
			cur, next = next, cur
		}
		curLen = half
	}
	copy(out[:curLen], cur[:curLen]) // cA_L
}

// Inverse reconstructs the signal from coeffs into out using s for scratch.
// len(coeffs) must equal CoeffLen and len(out) must equal InputLen.
func (p *Plan) Inverse(coeffs, out []float64, s *Scratch) {
	if len(coeffs) != p.padded {
		panic(fmt.Sprintf("dwt: Inverse input length %d, want %d", len(coeffs), p.padded))
	}
	if len(out) != p.n {
		panic(fmt.Sprintf("dwt: Inverse output length %d, want %d", len(out), p.n))
	}
	s.ensure(p.padded)
	coarse := p.padded >> uint(p.levels)
	cur, next := s.a, s.b
	copy(cur[:coarse], coeffs[:coarse]) // cA_L
	curLen := coarse
	for lvl := p.levels; lvl >= 1; lvl-- {
		detail := p.detailSlot(coeffs, lvl)
		synthesizeLevel(cur[:curLen], detail, p.wavelet.H, p.g, next[:2*curLen])
		cur, next = next, cur
		curLen *= 2
	}
	copy(out, cur[:p.n])
}

// ForwardBatch transforms a batch of same-shape signals in one pass: the
// filter taps, padding layout, and ping-pong scratch are set up once and each
// signal's level cascade completes while its intermediate bands are still
// cache-resident. (Blocking over signals, not levels, is deliberate: for the
// large vectors JWINS shares, a level-major sweep would evict every
// intermediate band between levels.) Bit-identical to calling Forward on each
// pair in order.
func (p *Plan) ForwardBatch(xs, outs [][]float64, s *Scratch) {
	if len(xs) != len(outs) {
		panic(fmt.Sprintf("dwt: ForwardBatch size mismatch: %d inputs, %d outputs", len(xs), len(outs)))
	}
	for i := range xs {
		p.Forward(xs[i], outs[i], s)
	}
}

// InverseBatch reconstructs a batch of signals from their coefficient
// vectors. Bit-identical to calling Inverse on each pair in order.
func (p *Plan) InverseBatch(coeffs, outs [][]float64, s *Scratch) {
	if len(coeffs) != len(outs) {
		panic(fmt.Sprintf("dwt: InverseBatch size mismatch: %d inputs, %d outputs", len(coeffs), len(outs)))
	}
	for i := range coeffs {
		p.Inverse(coeffs[i], outs[i], s)
	}
}

// analyzeLevel is the plan-path analysis kernel: the wrap-free main region is
// split from the wrapped tail so the hot loop carries no index branches, with
// the 4-tap bank (sym2/db2, the paper's default) fully unrolled. Each output
// accumulates its taps in exactly the reference order of
// AnalyzePeriodicFilters — `a += h[k]*xv` then `d += g[k]*xv`, k ascending —
// so results are bit-identical on every platform (including those that fuse
// multiply-add).
func analyzeLevel(x, h, g []float64, approx, detail []float64) {
	if len(h) > len(x) {
		// Filter longer than the (coarse) signal: taps wrap more than once;
		// keep the reference full-modulo kernel.
		AnalyzePeriodicFilters(x, h, g, approx, detail)
		return
	}
	if len(h) == 4 {
		analyze4(x, h, g, approx, detail)
		return
	}
	analyzeGeneric(x, h, g, approx, detail)
}

// analyze4 is analyzeGeneric specialized for 4-tap filters: taps live in
// registers and the main region retires two outputs per iteration, exposing
// four independent accumulator chains to the out-of-order core (the serial
// a/d add chains, not loop overhead, bound the reference kernel).
func analyze4(x, h, g []float64, approx, detail []float64) {
	n := len(x)
	half := n / 2
	h0, h1, h2, h3 := h[0], h[1], h[2], h[3]
	g0, g1, g2, g3 := g[0], g[1], g[2], g[3]
	main := (n-4)/2 + 1 // outputs whose 4-tap window never wraps
	i := 0
	for ; i+1 < main; i += 2 {
		xs := x[2*i : 2*i+6]
		x0, x1, x2, x3, x4, x5 := xs[0], xs[1], xs[2], xs[3], xs[4], xs[5]
		var a0, d0, a1, d1 float64
		a0 += h0 * x0
		d0 += g0 * x0
		a0 += h1 * x1
		d0 += g1 * x1
		a0 += h2 * x2
		d0 += g2 * x2
		a0 += h3 * x3
		d0 += g3 * x3
		a1 += h0 * x2
		d1 += g0 * x2
		a1 += h1 * x3
		d1 += g1 * x3
		a1 += h2 * x4
		d1 += g2 * x4
		a1 += h3 * x5
		d1 += g3 * x5
		approx[i] = a0
		detail[i] = d0
		approx[i+1] = a1
		detail[i+1] = d1
	}
	for ; i < main; i++ {
		xs := x[2*i : 2*i+4]
		x0, x1, x2, x3 := xs[0], xs[1], xs[2], xs[3]
		var a, d float64
		a += h0 * x0
		d += g0 * x0
		a += h1 * x1
		d += g1 * x1
		a += h2 * x2
		d += g2 * x2
		a += h3 * x3
		d += g3 * x3
		approx[i] = a
		detail[i] = d
	}
	analyzeWrapped(x, h, g, approx, detail, main, half)
}

// analyzeGeneric handles arbitrary even tap counts with the same main/tail
// split; the main loop indexes a window sub-slice so bounds checks vanish.
func analyzeGeneric(x, h, g []float64, approx, detail []float64) {
	n := len(x)
	half := n / 2
	l := len(h)
	g = g[:l]
	main := (n-l)/2 + 1
	for i := 0; i < main; i++ {
		xs := x[2*i : 2*i+l]
		var a, d float64
		for k := 0; k < l; k++ {
			xv := xs[k]
			a += h[k] * xv
			d += g[k] * xv
		}
		approx[i] = a
		detail[i] = d
	}
	analyzeWrapped(x, h, g, approx, detail, main, half)
}

// analyzeWrapped computes the outputs whose filter window wraps past the end
// of the signal — at most len(h)/2-1 of them. A single subtraction folds the
// index because callers guarantee len(h) <= len(x).
func analyzeWrapped(x, h, g []float64, approx, detail []float64, from, to int) {
	n := len(x)
	l := len(h)
	g = g[:l]
	for i := from; i < to; i++ {
		base := 2 * i
		var a, d float64
		for k := 0; k < l; k++ {
			j := base + k
			if j >= n {
				j -= n
			}
			xv := x[j]
			a += h[k] * xv
			d += g[k] * xv
		}
		approx[i] = a
		detail[i] = d
	}
}

// synthesizeLevel mirrors analyzeLevel for reconstruction. The scatter order
// into x — outputs i ascending, taps k ascending — matches
// SynthesizePeriodicFilters exactly, which matters because consecutive
// outputs accumulate into overlapping slots.
func synthesizeLevel(approx, detail, h, g []float64, x []float64) {
	if len(h) > len(x) {
		SynthesizePeriodicFilters(approx, detail, h, g, x)
		return
	}
	if len(h) == 4 {
		synthesize4(approx, detail, h, g, x)
		return
	}
	synthesizeGeneric(approx, detail, h, g, x)
}

func synthesize4(approx, detail, h, g []float64, x []float64) {
	half := len(approx)
	n := 2 * half
	h0, h1, h2, h3 := h[0], h[1], h[2], h[3]
	g0, g1, g2, g3 := g[0], g[1], g[2], g[3]
	for i := range x {
		x[i] = 0
	}
	main := (n-4)/2 + 1
	for i := 0; i < main; i++ {
		a, d := approx[i], detail[i]
		xs := x[2*i : 2*i+4]
		xs[0] += h0*a + g0*d
		xs[1] += h1*a + g1*d
		xs[2] += h2*a + g2*d
		xs[3] += h3*a + g3*d
	}
	synthesizeWrapped(approx, detail, h, g, x, main, half)
}

func synthesizeGeneric(approx, detail, h, g []float64, x []float64) {
	half := len(approx)
	n := 2 * half
	l := len(h)
	g = g[:l]
	for i := range x {
		x[i] = 0
	}
	main := (n-l)/2 + 1
	for i := 0; i < main; i++ {
		a, d := approx[i], detail[i]
		xs := x[2*i : 2*i+l]
		for k := 0; k < l; k++ {
			xs[k] += h[k]*a + g[k]*d
		}
	}
	synthesizeWrapped(approx, detail, h, g, x, main, half)
}

func synthesizeWrapped(approx, detail, h, g []float64, x []float64, from, to int) {
	n := len(x)
	l := len(h)
	g = g[:l]
	for i := from; i < to; i++ {
		a, d := approx[i], detail[i]
		base := 2 * i
		for k := 0; k < l; k++ {
			j := base + k
			if j >= n {
				j -= n
			}
			x[j] += h[k]*a + g[k]*d
		}
	}
}
