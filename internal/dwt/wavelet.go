// Package dwt implements the 1-D discrete wavelet transform used by JWINS to
// rank, share, and average model parameters in the wavelet-frequency domain.
//
// The transform is the periodized orthogonal DWT: for an even-length signal,
// analysis rows are circular shifts (by 2) of the scaling filter h and the
// wavelet filter g, which form an orthonormal basis, so reconstruction is
// exact to floating-point precision. Multi-level decomposition recursively
// transforms the approximation band, mirroring PyWavelets' wavedec with the
// "periodization" mode: the flat coefficient vector has exactly the length of
// the (padded) input, laid out as [cA_L | cD_L | cD_{L-1} | ... | cD_1].
package dwt

import (
	"fmt"
	"math"
)

// Wavelet is an orthogonal wavelet described by its scaling (low-pass)
// synthesis filter. The wavelet (high-pass) filter is derived by the
// alternating-flip construction, which preserves orthonormality.
type Wavelet struct {
	Name string
	// H is the scaling filter; sum(H) = sqrt(2) and sum(H^2) = 1.
	H []float64
}

// G returns the wavelet (high-pass) filter derived from the scaling filter by
// alternating flip: g[k] = (-1)^k * h[L-1-k].
func (w Wavelet) G() []float64 {
	l := len(w.H)
	g := make([]float64, l)
	for k := 0; k < l; k++ {
		v := w.H[l-1-k]
		if k%2 == 1 {
			v = -v
		}
		g[k] = v
	}
	return g
}

var (
	sqrt2 = math.Sqrt(2)
	// Daubechies scaling filters (standard published coefficients).
	haarH = []float64{1 / sqrt2, 1 / sqrt2}
	db2H  = []float64{
		0.48296291314469025, 0.836516303737469,
		0.22414386804185735, -0.12940952255092145,
	}
	db3H = []float64{
		0.3326705529509569, 0.8068915093133388, 0.4598775021193313,
		-0.13501102001039084, -0.08544127388224149, 0.035226291882100656,
	}
	db4H = []float64{
		0.23037781330885523, 0.7148465705525415, 0.6308807679295904,
		-0.02798376941698385, -0.18703481171888114, 0.030841381835986965,
		0.032883011666982945, -0.010597401784997278,
	}
	// Symlet-4 ("least asymmetric" Daubechies of order 4). Note sym2 and sym3
	// are coefficient-identical to db2 and db3.
	sym4H = []float64{
		-0.07576571478927333, -0.02963552764599851, 0.49761866763201545,
		0.8037387518059161, 0.29785779560527736, -0.09921954357684722,
		-0.012603967262037833, 0.0322231006040427,
	}
)

// wavelets is the registry of supported wavelet names.
var wavelets = map[string][]float64{
	"haar": haarH,
	"db1":  haarH,
	"db2":  db2H,
	"db3":  db3H,
	"db4":  db4H,
	"sym2": db2H, // sym2 == db2
	"sym3": db3H, // sym3 == db3
	"sym4": sym4H,
}

// ByName returns the wavelet registered under name.
// Supported names: haar, db1..db4, sym2..sym4.
func ByName(name string) (Wavelet, error) {
	h, ok := wavelets[name]
	if !ok {
		return Wavelet{}, fmt.Errorf("dwt: unknown wavelet %q", name)
	}
	return Wavelet{Name: name, H: h}, nil
}

// MustByName is ByName for statically known names; it panics on error.
func MustByName(name string) Wavelet {
	w, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return w
}

// Names returns the registered wavelet names (unordered).
func Names() []string {
	out := make([]string, 0, len(wavelets))
	for n := range wavelets {
		out = append(out, n)
	}
	return out
}

// AnalyzePeriodic performs one level of periodized analysis of the
// even-length signal x into approx and detail bands of length len(x)/2.
// approx and detail must each have length len(x)/2.
func AnalyzePeriodic(x []float64, w Wavelet, approx, detail []float64) {
	AnalyzePeriodicFilters(x, w.H, w.G(), approx, detail)
}

// AnalyzePeriodicFilters is AnalyzePeriodic with the high-pass filter g
// precomputed, so per-round transforms on cached filters stay allocation
// free (Wavelet.G allocates on every call).
func AnalyzePeriodicFilters(x, h, g []float64, approx, detail []float64) {
	n := len(x)
	if n%2 != 0 {
		panic("dwt: AnalyzePeriodic requires an even-length signal")
	}
	half := n / 2
	if len(approx) != half || len(detail) != half {
		panic("dwt: output band length must be len(x)/2")
	}
	l := len(h)
	for i := 0; i < half; i++ {
		var a, d float64
		base := 2 * i
		for k := 0; k < l; k++ {
			j := base + k
			if j >= n {
				j -= n
				if j >= n { // filter longer than signal: full modulo
					j %= n
				}
			}
			xv := x[j]
			a += h[k] * xv
			d += g[k] * xv
		}
		approx[i] = a
		detail[i] = d
	}
}

// SynthesizePeriodic inverts AnalyzePeriodic: it reconstructs the even-length
// signal x (length 2*len(approx)) from the approx and detail bands.
// x must have length 2*len(approx); it is overwritten.
func SynthesizePeriodic(approx, detail []float64, w Wavelet, x []float64) {
	SynthesizePeriodicFilters(approx, detail, w.H, w.G(), x)
}

// SynthesizePeriodicFilters is SynthesizePeriodic with g precomputed.
func SynthesizePeriodicFilters(approx, detail, h, g []float64, x []float64) {
	half := len(approx)
	if len(detail) != half {
		panic("dwt: approx/detail length mismatch")
	}
	n := 2 * half
	if len(x) != n {
		panic("dwt: output length must be 2*len(approx)")
	}
	l := len(h)
	for i := range x {
		x[i] = 0
	}
	for i := 0; i < half; i++ {
		a, d := approx[i], detail[i]
		base := 2 * i
		for k := 0; k < l; k++ {
			j := base + k
			if j >= n {
				j -= n
				if j >= n {
					j %= n
				}
			}
			x[j] += h[k]*a + g[k]*d
		}
	}
}
