package dwt

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/vec"
)

// TestGeneratedMatchesHardcoded: the spectral-factorization generator must
// reproduce the published db2-db4 filters used by the paper's sym2 setting.
func TestGeneratedMatchesHardcoded(t *testing.T) {
	for p, want := range map[int][]float64{2: db2H, 3: db3H, 4: db4H} {
		got, err := GenerateDaubechies(p)
		if err != nil {
			t.Fatalf("db%d: %v", p, err)
		}
		if len(got) != len(want) {
			t.Fatalf("db%d: %d taps, want %d", p, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("db%d tap %d: generated %v, published %v", p, i, got[i], want[i])
			}
		}
	}
}

// TestGeneratedHigherOrders: db5-db10 must be orthonormal filters with exact
// perfect reconstruction and p vanishing moments.
func TestGeneratedHigherOrders(t *testing.T) {
	rng := vec.NewRNG(77)
	for p := 5; p <= 10; p++ {
		name := fmt.Sprintf("db%d", p)
		w := MustByName(name)
		if len(w.H) != 2*p {
			t.Fatalf("%s: %d taps, want %d", name, len(w.H), 2*p)
		}
		// Orthonormality.
		var energy, sum float64
		for _, v := range w.H {
			energy += v * v
			sum += v
		}
		if math.Abs(energy-1) > 1e-10 {
			t.Errorf("%s: energy %v", name, energy)
		}
		if math.Abs(sum-math.Sqrt2) > 1e-10 {
			t.Errorf("%s: sum %v", name, sum)
		}
		for m := 1; 2*m < len(w.H); m++ {
			var dot float64
			for k := 0; k+2*m < len(w.H); k++ {
				dot += w.H[k] * w.H[k+2*m]
			}
			if math.Abs(dot) > 1e-10 {
				t.Errorf("%s: shift-%d inner product %v", name, 2*m, dot)
			}
		}
		// Vanishing moments: the wavelet filter annihilates polynomials up
		// to degree p-1: sum_k k^m g[k] = 0 for m < p.
		g := w.G()
		for m := 0; m < p; m++ {
			var moment float64
			for k, v := range g {
				moment += math.Pow(float64(k), float64(m)) * v
			}
			// Moment magnitudes grow with k^m; tolerate relative error.
			if math.Abs(moment) > 1e-6*math.Pow(float64(len(g)), float64(m)) {
				t.Errorf("%s: moment %d = %v, want 0", name, m, moment)
			}
		}
		// Perfect reconstruction through the multi-level transformer.
		tr, err := NewTransformer(777, w, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := make([]float64, 777)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		coeffs := make([]float64, tr.CoeffLen())
		tr.Forward(x, coeffs)
		y := make([]float64, len(x))
		tr.Inverse(coeffs, y)
		if mse := vec.MSE(x, y); mse > 1e-16 {
			t.Errorf("%s: reconstruction MSE %v", name, mse)
		}
	}
}

func TestGenerateDaubechiesValidation(t *testing.T) {
	if _, err := GenerateDaubechies(0); err == nil {
		t.Fatal("order 0 accepted")
	}
	if _, err := GenerateDaubechies(17); err == nil {
		t.Fatal("order 17 accepted")
	}
	h, err := GenerateDaubechies(1)
	if err != nil || len(h) != 2 {
		t.Fatalf("db1: %v %v", h, err)
	}
}

// TestHigherOrderEnergyCompaction: higher-order wavelets compact smooth
// signals at least as well as db2 (more vanishing moments).
func TestHigherOrderEnergyCompaction(t *testing.T) {
	n := 2048
	x := make([]float64, n)
	for i := range x {
		u := float64(i) / float64(n)
		x[i] = u*u*u - 0.5*u + math.Sin(4*math.Pi*u)
	}
	mseFor := func(name string) float64 {
		tr, err := NewTransformer(n, MustByName(name), 4)
		if err != nil {
			t.Fatal(err)
		}
		coeffs := make([]float64, tr.CoeffLen())
		tr.Forward(x, coeffs)
		return sparsifyReconstructMSE(tr, coeffs, n/20, x)
	}
	db2 := mseFor("db2")
	db8 := mseFor("db8")
	if db8 > db2*2 {
		t.Fatalf("db8 compaction much worse than db2: %v vs %v", db8, db2)
	}
	t.Logf("5%% budget reconstruction MSE: db2 %.3g, db8 %.3g", db2, db8)
}
