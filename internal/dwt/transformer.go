package dwt

// Transform maps a flat parameter vector to a flat coefficient vector and
// back. JWINS ranks, shares, and averages in the coefficient domain; the
// ablation "JWINS without wavelet" swaps in Identity, which degenerates the
// algorithm to plain TopK sparsification in the parameter domain.
type Transform interface {
	// CoeffLen returns the length of the coefficient vector.
	CoeffLen() int
	// Forward writes the coefficients of x (length = input length given at
	// construction) into out (length = CoeffLen).
	Forward(x, out []float64)
	// Inverse writes the reconstruction of coeffs into out
	// (length = input length given at construction).
	Inverse(coeffs, out []float64)
}

// Band describes one sub-band slice inside the flat coefficient vector.
type Band struct {
	Name   string // "cA4", "cD4", ..., "cD1"
	Offset int
	Len    int
}

// Transformer is a multi-level periodized DWT bound to a fixed input length.
// The input is zero-padded once to a multiple of 2^levels so every level sees
// an even-length signal; the coefficient vector length equals the padded
// length. The immutable layout (filter bank, padding, band table) lives in a
// memoized Plan shared across every transformer with the same
// (dim, wavelet, levels); only the lazily-grown scratch buffers are per
// instance. A Transformer is therefore cheap to construct in a fleet but NOT
// safe for concurrent use; each DL node owns its own instance.
type Transformer struct {
	plan    *Plan
	scratch Scratch
}

var _ Transform = (*Transformer)(nil)

// NewTransformer builds a transformer for input vectors of length n using the
// given wavelet and number of decomposition levels. JWINS uses four levels of
// sym2, per the paper. The heavy layout work is memoized in the plan cache,
// so repeated construction across a fleet costs one small struct per node.
func NewTransformer(n int, w Wavelet, levels int) (*Transformer, error) {
	p, err := PlanFor(n, w, levels)
	if err != nil {
		return nil, err
	}
	return &Transformer{plan: p}, nil
}

// Plan returns the shared immutable plan backing this transformer. Batch
// pipelines group nodes by plan identity: nodes whose transformers return the
// same *Plan can run through one batched pass.
func (t *Transformer) Plan() *Plan { return t.plan }

// InputLen returns the original (unpadded) input length.
func (t *Transformer) InputLen() int { return t.plan.n }

// CoeffLen returns the flat coefficient vector length (the padded length).
func (t *Transformer) CoeffLen() int { return t.plan.padded }

// Levels returns the number of decomposition levels.
func (t *Transformer) Levels() int { return t.plan.levels }

// Bands returns the coefficient layout. The returned slice is shared; callers
// must not modify it.
func (t *Transformer) Bands() []Band { return t.plan.bands }

// Forward computes the multi-level DWT of x into out.
// len(x) must equal InputLen and len(out) must equal CoeffLen.
func (t *Transformer) Forward(x, out []float64) {
	t.plan.Forward(x, out, &t.scratch)
}

// Inverse reconstructs the signal from coeffs into out.
// len(coeffs) must equal CoeffLen and len(out) must equal InputLen.
func (t *Transformer) Inverse(coeffs, out []float64) {
	t.plan.Inverse(coeffs, out, &t.scratch)
}

// Identity is a Transform that passes vectors through unchanged. It backs the
// "JWINS without wavelet" ablation and the random-sampling baseline, which
// operate directly in the parameter domain.
type Identity struct{ N int }

var _ Transform = Identity{}

// CoeffLen returns the input length (identity mapping).
func (id Identity) CoeffLen() int { return id.N }

// Forward copies x into out.
func (id Identity) Forward(x, out []float64) {
	if len(x) != id.N || len(out) != id.N {
		panic("dwt: Identity length mismatch")
	}
	copy(out, x)
}

// Inverse copies coeffs into out.
func (id Identity) Inverse(coeffs, out []float64) {
	if len(coeffs) != id.N || len(out) != id.N {
		panic("dwt: Identity length mismatch")
	}
	copy(out, coeffs)
}
