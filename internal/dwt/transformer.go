package dwt

import "fmt"

// Transform maps a flat parameter vector to a flat coefficient vector and
// back. JWINS ranks, shares, and averages in the coefficient domain; the
// ablation "JWINS without wavelet" swaps in Identity, which degenerates the
// algorithm to plain TopK sparsification in the parameter domain.
type Transform interface {
	// CoeffLen returns the length of the coefficient vector.
	CoeffLen() int
	// Forward writes the coefficients of x (length = input length given at
	// construction) into out (length = CoeffLen).
	Forward(x, out []float64)
	// Inverse writes the reconstruction of coeffs into out
	// (length = input length given at construction).
	Inverse(coeffs, out []float64)
}

// Band describes one sub-band slice inside the flat coefficient vector.
type Band struct {
	Name   string // "cA4", "cD4", ..., "cD1"
	Offset int
	Len    int
}

// Transformer is a multi-level periodized DWT bound to a fixed input length.
// The input is zero-padded once to a multiple of 2^levels so every level sees
// an even-length signal; the coefficient vector length equals the padded
// length. A Transformer reuses internal scratch buffers and is therefore NOT
// safe for concurrent use; each DL node owns its own instance.
type Transformer struct {
	wavelet   Wavelet
	g         []float64 // cached high-pass filter (Wavelet.G allocates)
	n         int       // original input length
	padded    int       // padded length (multiple of 2^levels)
	levels    int
	bands     []Band
	scratchA  []float64
	scratchB  []float64
	scratchIn []float64
}

var _ Transform = (*Transformer)(nil)

// NewTransformer builds a transformer for input vectors of length n using the
// given wavelet and number of decomposition levels. JWINS uses four levels of
// sym2, per the paper.
func NewTransformer(n int, w Wavelet, levels int) (*Transformer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dwt: input length must be positive, got %d", n)
	}
	if levels <= 0 {
		return nil, fmt.Errorf("dwt: levels must be positive, got %d", levels)
	}
	if len(w.H) == 0 {
		return nil, fmt.Errorf("dwt: wavelet has no filter coefficients")
	}
	block := 1 << uint(levels)
	padded := ((n + block - 1) / block) * block
	// Keep the coarsest band at least as long as half the filter so the
	// periodized convolution wraps at most once per tap in the common case.
	for padded>>uint(levels) < 2 {
		padded += block
	}
	t := &Transformer{
		wavelet:   w,
		g:         w.G(),
		n:         n,
		padded:    padded,
		levels:    levels,
		scratchA:  make([]float64, padded),
		scratchB:  make([]float64, padded),
		scratchIn: make([]float64, padded),
	}
	// Flat layout: [cA_L | cD_L | cD_{L-1} | ... | cD_1].
	lens := make([]int, levels) // lens[i] = detail length of level i+1
	cur := padded
	for lvl := 1; lvl <= levels; lvl++ {
		cur /= 2
		lens[lvl-1] = cur
	}
	off := 0
	t.bands = append(t.bands, Band{Name: fmt.Sprintf("cA%d", levels), Offset: 0, Len: lens[levels-1]})
	off += lens[levels-1]
	for lvl := levels; lvl >= 1; lvl-- {
		t.bands = append(t.bands, Band{Name: fmt.Sprintf("cD%d", lvl), Offset: off, Len: lens[lvl-1]})
		off += lens[lvl-1]
	}
	if off != padded {
		return nil, fmt.Errorf("dwt: internal layout error: bands sum to %d, padded %d", off, padded)
	}
	return t, nil
}

// InputLen returns the original (unpadded) input length.
func (t *Transformer) InputLen() int { return t.n }

// CoeffLen returns the flat coefficient vector length (the padded length).
func (t *Transformer) CoeffLen() int { return t.padded }

// Levels returns the number of decomposition levels.
func (t *Transformer) Levels() int { return t.levels }

// Bands returns the coefficient layout. The returned slice is shared; callers
// must not modify it.
func (t *Transformer) Bands() []Band { return t.bands }

// Forward computes the multi-level DWT of x into out.
// len(x) must equal InputLen and len(out) must equal CoeffLen.
func (t *Transformer) Forward(x, out []float64) {
	if len(x) != t.n {
		panic(fmt.Sprintf("dwt: Forward input length %d, want %d", len(x), t.n))
	}
	if len(out) != t.padded {
		panic(fmt.Sprintf("dwt: Forward output length %d, want %d", len(out), t.padded))
	}
	cur := t.scratchIn[:t.padded]
	copy(cur, x)
	for i := t.n; i < t.padded; i++ {
		cur[i] = 0
	}
	next := t.scratchA
	curLen := t.padded
	// Details are emitted from finest (cD1, at the tail of out) to coarsest;
	// the shrinking approximation ping-pongs between the two scratch buffers
	// instead of copying back each level.
	for lvl := 1; lvl <= t.levels; lvl++ {
		half := curLen / 2
		approx := next[:half]
		detail := t.detailSlot(out, lvl)
		AnalyzePeriodicFilters(cur[:curLen], t.wavelet.H, t.g, approx, detail)
		cur, next = next, cur
		curLen = half
	}
	copy(out[:curLen], cur[:curLen]) // cA_L
}

// Inverse reconstructs the signal from coeffs into out.
// len(coeffs) must equal CoeffLen and len(out) must equal InputLen.
func (t *Transformer) Inverse(coeffs, out []float64) {
	if len(coeffs) != t.padded {
		panic(fmt.Sprintf("dwt: Inverse input length %d, want %d", len(coeffs), t.padded))
	}
	if len(out) != t.n {
		panic(fmt.Sprintf("dwt: Inverse output length %d, want %d", len(out), t.n))
	}
	coarse := t.padded >> uint(t.levels)
	cur := t.scratchA
	next := t.scratchB
	copy(cur[:coarse], coeffs[:coarse]) // cA_L
	curLen := coarse
	for lvl := t.levels; lvl >= 1; lvl-- {
		detail := t.detailSlot(coeffs, lvl)
		SynthesizePeriodicFilters(cur[:curLen], detail, t.wavelet.H, t.g, next[:2*curLen])
		cur, next = next, cur
		curLen *= 2
	}
	copy(out, cur[:t.n])
}

// detailSlot returns the cD_lvl slice inside a flat coefficient vector.
func (t *Transformer) detailSlot(flat []float64, lvl int) []float64 {
	// bands[0] is cA_L; bands[1] is cD_L ... bands[levels] is cD_1.
	b := t.bands[t.levels-lvl+1]
	return flat[b.Offset : b.Offset+b.Len]
}

// Identity is a Transform that passes vectors through unchanged. It backs the
// "JWINS without wavelet" ablation and the random-sampling baseline, which
// operate directly in the parameter domain.
type Identity struct{ N int }

var _ Transform = Identity{}

// CoeffLen returns the input length (identity mapping).
func (id Identity) CoeffLen() int { return id.N }

// Forward copies x into out.
func (id Identity) Forward(x, out []float64) {
	if len(x) != id.N || len(out) != id.N {
		panic("dwt: Identity length mismatch")
	}
	copy(out, x)
}

// Inverse copies coeffs into out.
func (id Identity) Inverse(coeffs, out []float64) {
	if len(coeffs) != id.N || len(out) != id.N {
		panic("dwt: Identity length mismatch")
	}
	copy(out, coeffs)
}
