package dwt

import (
	"testing"

	"repro/internal/vec"
)

// TestTransformerAllocationFree: Forward and Inverse run once per node per
// simulated round (twice each for JWINS), so they must not allocate: filters
// are cached at construction and the level recursion ping-pongs between the
// transformer's scratch buffers.
func TestTransformerAllocationFree(t *testing.T) {
	const n = 10_000
	tr, err := NewTransformer(n, MustByName("sym2"), 4)
	if err != nil {
		t.Fatal(err)
	}
	r := vec.NewRNG(1)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	coeffs := make([]float64, tr.CoeffLen())
	out := make([]float64, n)
	tr.Forward(x, coeffs)
	tr.Inverse(coeffs, out)
	if allocs := testing.AllocsPerRun(20, func() { tr.Forward(x, coeffs) }); allocs > 0 {
		t.Fatalf("Forward allocates %v per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { tr.Inverse(coeffs, out) }); allocs > 0 {
		t.Fatalf("Inverse allocates %v per op, want 0", allocs)
	}
}

// TestFilterVariantsMatch: the cached-filter entry points must agree exactly
// with the Wavelet-receiving ones.
func TestFilterVariantsMatch(t *testing.T) {
	w := MustByName("db4")
	g := w.G()
	r := vec.NewRNG(2)
	x := make([]float64, 64)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	a1, d1 := make([]float64, 32), make([]float64, 32)
	a2, d2 := make([]float64, 32), make([]float64, 32)
	AnalyzePeriodic(x, w, a1, d1)
	AnalyzePeriodicFilters(x, w.H, g, a2, d2)
	for i := range a1 {
		if a1[i] != a2[i] || d1[i] != d2[i] {
			t.Fatalf("analysis differs at %d", i)
		}
	}
	x1, x2 := make([]float64, 64), make([]float64, 64)
	SynthesizePeriodic(a1, d1, w, x1)
	SynthesizePeriodicFilters(a2, d2, w.H, g, x2)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("synthesis differs at %d", i)
		}
	}
}
