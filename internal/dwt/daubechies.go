package dwt

import (
	"fmt"
	"math"
	"math/cmplx"
)

// GenerateDaubechies computes the order-p Daubechies scaling filter (2p taps,
// p vanishing moments) by spectral factorization: the halfband polynomial
// P(y) = sum_{k<p} C(p-1+k, k) y^k is factored over its roots, the roots of
// the corresponding polynomial in z that lie inside the unit circle are kept
// (minimum-phase choice, giving the classic extremal-phase "db" family), and
// the filter is (1+z)^p times that factor, normalized to sum sqrt(2).
//
// The hardcoded db2-db4 filters in this package agree with the generated ones
// to ~1e-12; the generator extends the registry to arbitrary order (db5-db10
// are pre-registered). Filters are validated by the package's orthonormality
// and perfect-reconstruction property tests.
func GenerateDaubechies(p int) ([]float64, error) {
	if p < 1 || p > 16 {
		return nil, fmt.Errorf("dwt: daubechies order %d out of range [1, 16]", p)
	}
	if p == 1 {
		return []float64{1 / math.Sqrt2, 1 / math.Sqrt2}, nil
	}
	// P(y) = sum_{k=0}^{p-1} C(p-1+k, k) y^k.
	py := make([]complex128, p)
	for k := 0; k < p; k++ {
		py[k] = complex(binomial(p-1+k, k), 0)
	}
	yRoots, err := polyRoots(py)
	if err != nil {
		return nil, err
	}
	// Each root y0 maps to a quadratic in z: y = (2 - z - 1/z)/4, i.e.
	// z^2 - (2 - 4 y0) z + 1 = 0. Keep the root with |z| < 1.
	var zRoots []complex128
	for _, y0 := range yRoots {
		b := complex(2, 0) - 4*y0
		disc := cmplx.Sqrt(b*b - 4)
		z1 := (b + disc) / 2
		z2 := (b - disc) / 2
		if cmplx.Abs(z1) < 1 {
			zRoots = append(zRoots, z1)
		} else {
			zRoots = append(zRoots, z2)
		}
	}
	// h(z) = (1+z)^p * prod (z - z_k), then normalize.
	coeffs := []complex128{1}
	for i := 0; i < p; i++ {
		coeffs = polyMul(coeffs, []complex128{1, 1}) // (1 + z)
	}
	for _, zk := range zRoots {
		coeffs = polyMul(coeffs, []complex128{-zk, 1}) // (z - zk)
	}
	if len(coeffs) != 2*p {
		return nil, fmt.Errorf("dwt: internal error: got %d taps for db%d", len(coeffs), p)
	}
	h := make([]float64, 2*p)
	var sum float64
	for i, c := range coeffs {
		if math.Abs(imag(c)) > 1e-6*(1+math.Abs(real(c))) {
			return nil, fmt.Errorf("dwt: non-real coefficient %v in db%d factorization", c, p)
		}
		h[i] = real(c)
		sum += h[i]
	}
	scale := math.Sqrt2 / sum
	for i := range h {
		h[i] *= scale
	}
	// The extremal-phase convention lists the large leading taps first;
	// match the orientation of the hardcoded db filters (energy at the
	// front). Reverse if the tail carries more energy.
	var front, back float64
	for i := 0; i < p; i++ {
		front += h[i] * h[i]
		back += h[2*p-1-i] * h[2*p-1-i]
	}
	if back > front {
		for i, j := 0, len(h)-1; i < j; i, j = i+1, j-1 {
			h[i], h[j] = h[j], h[i]
		}
	}
	return h, nil
}

// binomial returns C(n, k) as float64.
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}

// polyMul multiplies polynomials in coefficient form (index = power).
func polyMul(a, b []complex128) []complex128 {
	out := make([]complex128, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// polyRoots finds all roots of the polynomial with the given coefficients
// (index = power, highest order last) using the Durand-Kerner iteration.
func polyRoots(coeffs []complex128) ([]complex128, error) {
	// Trim leading (highest-power) zeros.
	n := len(coeffs)
	for n > 1 && coeffs[n-1] == 0 {
		n--
	}
	coeffs = coeffs[:n]
	deg := n - 1
	if deg == 0 {
		return nil, nil
	}
	// Normalize to monic.
	monic := make([]complex128, n)
	for i := range coeffs {
		monic[i] = coeffs[i] / coeffs[n-1]
	}
	eval := func(z complex128) complex128 {
		out := complex(0, 0)
		for i := deg; i >= 0; i-- {
			out = out*z + monic[i]
		}
		return out
	}
	// Initial guesses on a slightly irrational spiral.
	roots := make([]complex128, deg)
	seed := complex(0.4, 0.9)
	cur := complex(1, 0)
	for i := range roots {
		cur *= seed
		roots[i] = cur
	}
	for iter := 0; iter < 500; iter++ {
		var maxDelta float64
		for i := range roots {
			num := eval(roots[i])
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				den = complex(1e-12, 0)
			}
			delta := num / den
			roots[i] -= delta
			if d := cmplx.Abs(delta); d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta < 1e-14 {
			return roots, nil
		}
	}
	return nil, fmt.Errorf("dwt: root finding did not converge for degree %d", deg)
}

func init() {
	// Extend the registry with generated higher-order Daubechies filters.
	for p := 5; p <= 10; p++ {
		h, err := GenerateDaubechies(p)
		if err != nil {
			panic(fmt.Sprintf("dwt: generating db%d: %v", p, err))
		}
		wavelets[fmt.Sprintf("db%d", p)] = h
	}
}
