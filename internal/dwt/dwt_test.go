package dwt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

const tol = 1e-9

// TestFilterOrthonormality checks the two algebraic properties perfect
// reconstruction depends on: unit energy and shift-2 orthogonality of the
// scaling filter, plus cross-orthogonality with the derived wavelet filter.
func TestFilterOrthonormality(t *testing.T) {
	for _, name := range Names() {
		w := MustByName(name)
		h, g := w.H, w.G()
		if s := sumSq(h); math.Abs(s-1) > tol {
			t.Errorf("%s: sum(h^2) = %v, want 1", name, s)
		}
		if s := sum(h); math.Abs(s-math.Sqrt2) > 1e-7 {
			t.Errorf("%s: sum(h) = %v, want sqrt(2)", name, s)
		}
		for m := 1; 2*m < len(h); m++ {
			var dot float64
			for k := 0; k+2*m < len(h); k++ {
				dot += h[k] * h[k+2*m]
			}
			if math.Abs(dot) > tol {
				t.Errorf("%s: shift-%d self inner product %v, want 0", name, 2*m, dot)
			}
		}
		for m := -len(h) / 2; m <= len(h)/2; m++ {
			var dot float64
			for k := 0; k < len(h); k++ {
				j := k + 2*m
				if j >= 0 && j < len(g) {
					dot += h[k] * g[j]
				}
			}
			if math.Abs(dot) > tol {
				t.Errorf("%s: h/g shift-%d inner product %v, want 0", name, 2*m, dot)
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown wavelet")
	}
}

func TestSingleLevelPerfectReconstruction(t *testing.T) {
	rng := vec.NewRNG(11)
	for _, name := range Names() {
		w := MustByName(name)
		for _, n := range []int{2, 4, 8, 16, 34, 128, 1000} {
			x := randVec(rng, n)
			a := make([]float64, n/2)
			d := make([]float64, n/2)
			AnalyzePeriodic(x, w, a, d)
			y := make([]float64, n)
			SynthesizePeriodic(a, d, w, y)
			if mse := vec.MSE(x, y); mse > tol {
				t.Errorf("%s n=%d: reconstruction MSE %v", name, n, mse)
			}
		}
	}
}

func TestSingleLevelEnergyPreservation(t *testing.T) {
	rng := vec.NewRNG(12)
	w := MustByName("sym2")
	x := randVec(rng, 256)
	a := make([]float64, 128)
	d := make([]float64, 128)
	AnalyzePeriodic(x, w, a, d)
	in := vec.Dot(x, x)
	out := vec.Dot(a, a) + vec.Dot(d, d)
	if math.Abs(in-out) > tol*in {
		t.Fatalf("energy not preserved: in %v out %v", in, out)
	}
}

func TestTransformerRoundTrip(t *testing.T) {
	rng := vec.NewRNG(13)
	for _, name := range []string{"haar", "db2", "sym2", "db3", "db4", "sym4"} {
		w := MustByName(name)
		for _, n := range []int{1, 2, 5, 16, 100, 1023, 4096, 21357} {
			for _, levels := range []int{1, 2, 4} {
				tr, err := NewTransformer(n, w, levels)
				if err != nil {
					t.Fatalf("%s n=%d L=%d: %v", name, n, levels, err)
				}
				x := randVec(rng, n)
				coeffs := make([]float64, tr.CoeffLen())
				tr.Forward(x, coeffs)
				y := make([]float64, n)
				tr.Inverse(coeffs, y)
				if mse := vec.MSE(x, y); mse > tol {
					t.Errorf("%s n=%d L=%d: round-trip MSE %v", name, n, levels, mse)
				}
			}
		}
	}
}

func TestTransformerBandsLayout(t *testing.T) {
	tr, err := NewTransformer(4096, MustByName("sym2"), 4)
	if err != nil {
		t.Fatal(err)
	}
	bands := tr.Bands()
	if len(bands) != 5 {
		t.Fatalf("want 5 bands, got %d", len(bands))
	}
	wantNames := []string{"cA4", "cD4", "cD3", "cD2", "cD1"}
	total := 0
	prevEnd := 0
	for i, b := range bands {
		if b.Name != wantNames[i] {
			t.Errorf("band %d name %q, want %q", i, b.Name, wantNames[i])
		}
		if b.Offset != prevEnd {
			t.Errorf("band %q offset %d, want contiguous %d", b.Name, b.Offset, prevEnd)
		}
		prevEnd = b.Offset + b.Len
		total += b.Len
	}
	if total != tr.CoeffLen() {
		t.Fatalf("bands sum %d != CoeffLen %d", total, tr.CoeffLen())
	}
	// For n = 4096, L=4: cA4 = cD4 = 256, cD3 = 512, cD2 = 1024, cD1 = 2048.
	wantLens := []int{256, 256, 512, 1024, 2048}
	for i, b := range bands {
		if b.Len != wantLens[i] {
			t.Errorf("band %q len %d, want %d", b.Name, b.Len, wantLens[i])
		}
	}
}

// TestEnergyCompaction verifies the property JWINS relies on: for a smooth
// signal, the wavelet domain concentrates energy into far fewer coefficients
// than the parameter domain, so a TopK-sparsified wavelet vector reconstructs
// with much lower error than a TopK-sparsified raw vector.
func TestEnergyCompaction(t *testing.T) {
	n := 4096
	x := make([]float64, n)
	for i := range x {
		u := float64(i) / float64(n)
		x[i] = math.Sin(2*math.Pi*3*u) + 0.5*math.Cos(2*math.Pi*7*u)
	}
	tr, err := NewTransformer(n, MustByName("sym2"), 4)
	if err != nil {
		t.Fatal(err)
	}
	coeffs := make([]float64, tr.CoeffLen())
	tr.Forward(x, coeffs)

	keep := n / 10 // 10% budget, as in the paper's Figure 2 setup
	waveletMSE := sparsifyReconstructMSE(tr, coeffs, keep, x)

	id := Identity{N: n}
	rawCoeffs := make([]float64, n)
	id.Forward(x, rawCoeffs)
	rawMSE := sparsifyReconstructMSE(id, rawCoeffs, keep, x)

	if waveletMSE >= rawMSE {
		t.Fatalf("wavelet sparsification MSE %v not better than raw %v", waveletMSE, rawMSE)
	}
	if waveletMSE > rawMSE/10 {
		t.Logf("note: wavelet MSE %v vs raw %v (expected large gap on smooth signals)", waveletMSE, rawMSE)
	}
}

func sparsifyReconstructMSE(tr Transform, coeffs []float64, keep int, orig []float64) float64 {
	sparse := make([]float64, len(coeffs))
	// Keep the `keep` largest-magnitude coefficients.
	idx := topKAbs(coeffs, keep)
	for _, i := range idx {
		sparse[i] = coeffs[i]
	}
	out := make([]float64, len(orig))
	tr.Inverse(sparse, out)
	return vec.MSE(orig, out)
}

// topKAbs is a small O(n*k) helper adequate for tests.
func topKAbs(v []float64, k int) []int {
	picked := make([]bool, len(v))
	out := make([]int, 0, k)
	for j := 0; j < k; j++ {
		best, bestAbs := -1, -1.0
		for i, x := range v {
			if picked[i] {
				continue
			}
			if a := math.Abs(x); a > bestAbs {
				best, bestAbs = i, a
			}
		}
		if best < 0 {
			break
		}
		picked[best] = true
		out = append(out, best)
	}
	return out
}

func TestIdentityTransform(t *testing.T) {
	id := Identity{N: 5}
	x := []float64{1, 2, 3, 4, 5}
	out := make([]float64, 5)
	id.Forward(x, out)
	back := make([]float64, 5)
	id.Inverse(out, back)
	for i := range x {
		if back[i] != x[i] {
			t.Fatalf("identity round trip: %v", back)
		}
	}
}

func TestNewTransformerErrors(t *testing.T) {
	w := MustByName("sym2")
	if _, err := NewTransformer(0, w, 4); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := NewTransformer(10, w, 0); err == nil {
		t.Error("expected error for levels=0")
	}
	if _, err := NewTransformer(10, Wavelet{}, 1); err == nil {
		t.Error("expected error for empty wavelet")
	}
}

// TestQuickRoundTrip property-tests perfect reconstruction over random
// lengths and contents.
func TestQuickRoundTrip(t *testing.T) {
	w := MustByName("sym2")
	f := func(seed uint64, rawN uint16) bool {
		n := int(rawN)%5000 + 1
		x := make([]float64, n)
		r := vec.NewRNG(seed)
		for i := range x {
			x[i] = r.NormFloat64() * 10
		}
		tr, err := NewTransformer(n, w, 4)
		if err != nil {
			return false
		}
		coeffs := make([]float64, tr.CoeffLen())
		tr.Forward(x, coeffs)
		y := make([]float64, n)
		tr.Inverse(coeffs, y)
		return vec.MSE(x, y) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randVec(r *vec.RNG, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

func sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

func sumSq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}
