// epoch.go extends the provider vocabulary for the async engine's
// simulated-time world: graphs there are not keyed by a global round number
// (no such thing exists under the event-driven scheduler) but by *epochs* of
// simulated seconds. EpochProvider rotates the base graph once per epoch and
// filters it to the live node set, SeededDynamic supplies deterministic
// random-access per-epoch regular graphs, and the mixing instrumentation
// (spectral gap, edge turnover) quantifies why rotating helps: a fresh random
// regular graph every epoch keeps the expected spectral gap high, so
// information spreads in O(log n) epochs even when any single snapshot mixes
// poorly.
package topology

import (
	"math"

	"repro/internal/vec"
)

// LiveProvider is a Provider that additionally tracks node liveness and
// serves live-induced subgraphs. Masked (static pin) and EpochProvider
// (epoch-rotated) both implement it; the async engine drives either through
// this interface.
type LiveProvider interface {
	Provider
	// SetLive flips one node's liveness, invalidating cached subgraphs.
	SetLive(node int, alive bool)
	// Live reports whether node is currently live.
	Live(node int) bool
	// NumLive counts the live nodes.
	NumLive() int
	// ResetLive marks every node live again (the start-of-run state).
	ResetLive()
}

// SeededDynamic yields a random d-regular graph per round index where round
// t's graph is a pure function of (Seed, t): queries are random-access and
// repeatable, unlike Dynamic, whose shared RNG stream makes graphs depend on
// query history. The async engine requires this — its epoch queries can
// repeat and, under trace replay, must regenerate the recorded sequence
// exactly.
type SeededDynamic struct {
	N, D int
	Seed uint64

	cachedRound int
	cachedG     *Graph
	cachedW     []Weights
}

// NewSeededDynamic builds the provider. Parameters are validated on first
// use (Regular's constraints: n*d even, 2 <= d < n).
func NewSeededDynamic(n, d int, seed uint64) *SeededDynamic {
	return &SeededDynamic{N: n, D: d, Seed: seed, cachedRound: -1}
}

// Round implements Provider. Mixing weights are built lazily: the
// EpochProvider path only needs the graph (it recomputes weights on the
// live-induced subgraph), so rotations skip the full-graph weight pass.
func (s *SeededDynamic) Round(t int) (*Graph, []Weights) {
	g := s.Graph(t)
	if s.cachedW == nil {
		s.cachedW = MetropolisHastings(g)
	}
	return g, s.cachedW
}

// Graph returns round t's graph without building mixing weights. The
// per-round RNG is derived by mixing the round index into the base seed
// through SplitMix64, so neighboring rounds get statistically independent
// graphs.
func (s *SeededDynamic) Graph(t int) *Graph {
	if t != s.cachedRound || s.cachedG == nil {
		st := s.Seed ^ (uint64(t) + 0x65706f6368) // "epoch"
		rng := vec.NewRNG(vec.SplitMix64(&st))
		g, err := Regular(s.N, s.D, rng)
		if err != nil {
			panic("topology: seeded dynamic generation failed: " + err.Error())
		}
		s.cachedG, s.cachedW = g, nil
		s.cachedRound = t
	}
	return s.cachedG
}

// EpochProvider rotates a base Provider on simulated-time epochs and filters
// every epoch's graph to the currently live nodes, recomputing
// Metropolis-Hastings weights on the induced subgraph (Masked semantics).
// Round takes an *epoch index*, not a synchronous round number; EpochAt maps
// simulated time to that index. The cache is keyed by (epoch, liveVersion),
// so a SetLive racing an epoch boundary — churn processed at the same
// simulated instant the graph rotates — always invalidates correctly
// whichever of the two queries comes first.
type EpochProvider struct {
	// Base yields the unfiltered graph per epoch index: Static repeats one
	// graph (only liveness changes across epochs), SeededDynamic
	// re-randomizes deterministically.
	Base Provider
	// EpochSec is the epoch length in simulated seconds. Non-positive means
	// a single epoch spanning the whole run.
	EpochSec float64

	liveSet
	cachedEpoch int
	cachedVer   int
	cachedG     *Graph
	cachedW     []Weights
}

// NewEpochProvider builds an epoch provider over n nodes, all initially live.
func NewEpochProvider(base Provider, n int, epochSec float64) *EpochProvider {
	return &EpochProvider{Base: base, EpochSec: epochSec, liveSet: newLiveSet(n), cachedEpoch: -1, cachedVer: -1}
}

// EpochAt maps a simulated timestamp to its epoch index.
func (p *EpochProvider) EpochAt(t float64) int {
	if p.EpochSec <= 0 || t <= 0 {
		return 0
	}
	return int(math.Floor(t / p.EpochSec))
}

// graphOnly is satisfied by bases that can serve a round's graph without
// building mixing weights (SeededDynamic); EpochProvider always recomputes
// weights on the live-induced subgraph, so the base's weights are dead work.
type graphOnly interface {
	Graph(t int) *Graph
}

// Round implements Provider over the live-induced subgraph of epoch e.
func (p *EpochProvider) Round(e int) (*Graph, []Weights) {
	if e == p.cachedEpoch && p.liveVersion == p.cachedVer {
		return p.cachedG, p.cachedW
	}
	var base *Graph
	if gp, ok := p.Base.(graphOnly); ok {
		base = gp.Graph(e)
	} else {
		base, _ = p.Base.Round(e)
	}
	g := Induced(base, p.live)
	p.cachedG, p.cachedW = g, MetropolisHastings(g)
	p.cachedEpoch, p.cachedVer = e, p.liveVersion
	return p.cachedG, p.cachedW
}

// SLEMScratch holds the power-iteration work buffers of MixingSLEM so
// repeated gap computations (one per epoch on a 1024-node run) reuse them
// instead of allocating four O(n) arrays each time. The zero value is ready;
// a scratch is not safe for concurrent use.
type SLEMScratch struct {
	idx  []int
	pos  []int
	x, y []float64
}

// MixingSLEM returns the second-largest eigenvalue modulus of the mixing
// matrix W restricted to the live nodes (nil live = all live), estimated by
// deterministic power iteration with deflation of the top eigenvector.
//
// W over a connected live set is symmetric doubly stochastic (Metropolis-
// Hastings), so its top eigenpair is (1, uniform); iterating W on a vector
// kept orthogonal to uniform converges to |lambda_2|. The spectral gap
// 1 - |lambda_2| governs mixing: per gossip round, the deviation from
// consensus contracts by at least lambda_2, so a larger gap means faster
// information spread. A disconnected live subgraph has a second eigenvalue
// of 1 (gap 0): no amount of averaging merges separated components, which
// is exactly what the instrumentation should report.
//
// The estimate is a pure function of (g, w, live) — fixed start vector,
// fixed iteration/tolerance schedule — so replays and parallel runs
// reproduce it bit for bit.
func MixingSLEM(g *Graph, w []Weights, live []bool) float64 {
	return new(SLEMScratch).MixingSLEM(g, w, live)
}

// MixingSLEM is the scratch-reusing form of the package-level MixingSLEM:
// same estimate, bit for bit, with the work buffers kept across calls.
func (s *SLEMScratch) MixingSLEM(g *Graph, w []Weights, live []bool) float64 {
	idx := s.idx[:0]
	for i := 0; i < g.N; i++ {
		if live == nil || (i < len(live) && live[i]) {
			idx = append(idx, i)
		}
	}
	s.idx = idx
	m := len(idx)
	if m <= 1 {
		return 0
	}
	if cap(s.pos) < g.N {
		s.pos = make([]int, g.N)
	}
	pos := s.pos[:g.N]
	for k, i := range idx {
		pos[i] = k
	}
	if cap(s.x) < m {
		s.x = make([]float64, m)
		s.y = make([]float64, m)
	}
	x, y := s.x[:m], s.y[:m]
	// Deterministic non-uniform start vector, already roughly mean-free.
	rng := vec.NewRNG(0x6d6978) // "mix"
	for k := range x {
		x[k] = rng.Float64() - 0.5
	}
	deflate := func(v []float64) {
		var sum float64
		for _, e := range v {
			sum += e
		}
		mean := sum / float64(m)
		for k := range v {
			v[k] -= mean
		}
	}
	norm := func(v []float64) float64 {
		var s float64
		for _, e := range v {
			s += e * e
		}
		return math.Sqrt(s)
	}
	deflate(x)
	if n := norm(x); n > 0 {
		for k := range x {
			x[k] /= n
		}
	}
	est := 0.0
	for iter := 0; iter < 400; iter++ {
		// y = W x over the live-restricted rows.
		for k, i := range idx {
			v := w[i].Self * x[k]
			for _, j := range g.Adj[i] {
				if live == nil || (j < len(live) && live[j]) {
					v += w[i].Neighbor[j] * x[pos[j]]
				}
			}
			y[k] = v
		}
		deflate(y)
		n := norm(y)
		if n == 0 {
			return 0
		}
		for k := range y {
			y[k] /= n
		}
		x, y = y, x
		if iter >= 50 && math.Abs(n-est) <= 1e-12 {
			return clampSLEM(n)
		}
		est = n
	}
	return clampSLEM(est)
}

func clampSLEM(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// SpectralGap is 1 - MixingSLEM: 0 for disconnected live subgraphs, close to
// 1 for expander-like graphs.
func SpectralGap(g *Graph, w []Weights, live []bool) float64 {
	return 1 - MixingSLEM(g, w, live)
}

// SpectralGap is the scratch-reusing form of the package-level SpectralGap.
func (s *SLEMScratch) SpectralGap(g *Graph, w []Weights, live []bool) float64 {
	return 1 - s.MixingSLEM(g, w, live)
}

// EdgeTurnover reports which fraction of cur's edges are new relative to
// prev (0 = identical edge set, 1 = fully rotated), counting only edges with
// both endpoints live in cur. A nil prev (the run's first epoch) counts as
// full turnover when cur has any edge. The async engine reports this per
// epoch as the neighbor-turnover rate.
func EdgeTurnover(prev, cur *Graph) float64 {
	total, fresh := 0, 0
	for i := 0; i < cur.N; i++ {
		for _, j := range cur.Adj[i] {
			if j <= i {
				continue
			}
			total++
			if prev == nil || i >= prev.N || !prev.HasEdge(i, j) {
				fresh++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(fresh) / float64(total)
}
