package topology

import (
	"testing"

	"repro/internal/vec"
)

// hasEdgeScan is the reference O(degree) linear scan HasEdge replaced.
func hasEdgeScan(g *Graph, i, j int) bool {
	for _, v := range g.Adj[i] {
		if v == j {
			return true
		}
	}
	return false
}

// TestHasEdgeBitmapMatchesScan: the lazily-built adjacency bitmap must agree
// with the linear scan on every pair, including graphs with isolated nodes
// (the live-induced subgraphs the async engine queries).
func TestHasEdgeBitmapMatchesScan(t *testing.T) {
	graphs := map[string]*Graph{
		"ring":  Ring(9),
		"full":  Full(6),
		"pair":  Ring(2),
		"lone":  Ring(1),
		"empty": {N: 3, Adj: make([][]int, 3)},
	}
	if g, err := Regular(24, 5, vec.NewRNG(3)); err != nil {
		t.Fatal(err)
	} else {
		graphs["regular"] = g
		live := make([]bool, 24)
		for i := range live {
			live[i] = i%3 != 0
		}
		graphs["induced"] = Induced(g, live)
	}
	for name, g := range graphs {
		for i := 0; i < g.N; i++ {
			for j := 0; j < g.N; j++ {
				if got, want := g.HasEdge(i, j), hasEdgeScan(g, i, j); got != want {
					t.Fatalf("%s: HasEdge(%d,%d) = %v, scan says %v", name, i, j, got, want)
				}
			}
		}
	}
}

// TestHasEdgeSearchFallback: graphs past the bitmap cap answer via binary
// search over the sorted adjacency lists; exercise the search directly so a
// future cap change cannot silently break it.
func TestHasEdgeSearchFallback(t *testing.T) {
	g, err := Regular(64, 6, vec.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			if got, want := g.hasEdgeSearch(i, j), hasEdgeScan(g, i, j); got != want {
				t.Fatalf("hasEdgeSearch(%d,%d) = %v, scan says %v", i, j, got, want)
			}
		}
	}
}

// TestHasEdgeBitmapBoundary: the bitmap/binary-search seam sits at exactly
// maxBitmapNodes — a 4096-node graph must materialize the bitmap (2 MiB,
// still worth it), a 4097-node graph must never allocate N² bits. Full O(N²)
// verification is too slow at this size; ring graphs make the true edge set
// checkable per node.
func TestHasEdgeBitmapBoundary(t *testing.T) {
	check := func(t *testing.T, g *Graph, wantBitmap bool) {
		t.Helper()
		for _, i := range []int{0, 1, g.N / 2, g.N - 2, g.N - 1} {
			prev, next := (i+g.N-1)%g.N, (i+1)%g.N
			if !g.HasEdge(i, prev) || !g.HasEdge(i, next) {
				t.Fatalf("N=%d: ring edge at node %d missing", g.N, i)
			}
			far := (i + g.N/2) % g.N
			if far != prev && far != next && far != i && g.HasEdge(i, far) {
				t.Fatalf("N=%d: phantom edge (%d,%d)", g.N, i, far)
			}
			if g.HasEdge(i, i) {
				t.Fatalf("N=%d: self-loop at %d", g.N, i)
			}
		}
		if got := g.bitmap != nil; got != wantBitmap {
			t.Fatalf("N=%d: bitmap built = %v, want %v", g.N, got, wantBitmap)
		}
	}
	t.Run("at-cap", func(t *testing.T) { check(t, Ring(maxBitmapNodes), true) })
	t.Run("past-cap", func(t *testing.T) { check(t, Ring(maxBitmapNodes+1), false) })
}

// TestSLEMScratchReuse: the scratch-reusing SLEM must reproduce the
// allocation-per-call estimate bit for bit across differently sized and
// live-restricted queries, in any order.
func TestSLEMScratchReuse(t *testing.T) {
	var s SLEMScratch
	g1, err := Regular(16, 4, vec.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Regular(40, 4, vec.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	live := make([]bool, 40)
	for i := range live {
		live[i] = i%4 != 1
	}
	cases := []struct {
		g    *Graph
		live []bool
	}{
		{g2, nil}, {g1, nil}, {g2, live}, {g1, nil}, {g2, nil},
	}
	for i, tc := range cases {
		w := MetropolisHastings(tc.g)
		want := MixingSLEM(tc.g, w, tc.live)
		got := s.MixingSLEM(tc.g, w, tc.live)
		if got != want {
			t.Fatalf("case %d: scratch SLEM %v != fresh %v", i, got, want)
		}
	}
}
