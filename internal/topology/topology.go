// Package topology builds the communication graphs used by decentralized
// learning: random d-regular graphs (the paper's setting), rings, and fully
// connected graphs, together with Metropolis-Hastings mixing weights and
// support for dynamic (per-round re-randomized) topologies.
package topology

import (
	"fmt"

	"repro/internal/vec"
)

// Graph is an undirected simple graph over nodes 0..N-1 stored as sorted
// adjacency lists. A Graph is immutable once built: the constructors and
// providers in this package never modify Adj after returning one, which is
// what lets HasEdge build its adjacency bitmap lazily.
type Graph struct {
	N   int
	Adj [][]int

	// bitmap is the N×N adjacency matrix, built lazily on the first HasEdge
	// query (it sits on the async engine's arrival/epoch path, where the old
	// O(degree) scan was measurable at 1024 nodes). nil until then; graphs
	// past maxBitmapNodes answer from a binary search instead.
	bitmap []uint64
}

// maxBitmapNodes caps the lazily-built adjacency bitmap at 4096 nodes
// (4096² bits = 2 MiB); larger graphs fall back to binary search over the
// sorted adjacency lists.
const maxBitmapNodes = 4096

// Neighbors returns the adjacency list of node i. Callers must not modify it.
func (g *Graph) Neighbors(i int) []int { return g.Adj[i] }

// Degree returns the degree of node i.
func (g *Graph) Degree(i int) int { return len(g.Adj[i]) }

// HasEdge reports whether the undirected edge {i, j} exists. The first query
// on a bitmap-sized graph materializes the adjacency bitmap; later queries
// are one mask test. Lazy construction is safe because graphs are only
// queried from the single-threaded scheduler loop (Graph is not safe for
// concurrent first use, like the rest of the provider caching).
func (g *Graph) HasEdge(i, j int) bool {
	if g.bitmap == nil {
		if g.N > maxBitmapNodes {
			return g.hasEdgeSearch(i, j)
		}
		g.buildBitmap()
	}
	bit := uint(i*g.N + j)
	return g.bitmap[bit>>6]&(1<<(bit&63)) != 0
}

// hasEdgeSearch answers by binary search over the sorted adjacency list.
func (g *Graph) hasEdgeSearch(i, j int) bool {
	adj := g.Adj[i]
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == j
}

func (g *Graph) buildBitmap() {
	g.bitmap = make([]uint64, (g.N*g.N+63)/64)
	for i, adj := range g.Adj {
		row := i * g.N
		for _, j := range adj {
			bit := uint(row + j)
			g.bitmap[bit>>6] |= 1 << (bit & 63)
		}
	}
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.Adj {
		total += len(a)
	}
	return total / 2
}

// Connected reports whether the graph is connected (true for N <= 1).
func (g *Graph) Connected() bool {
	if g.N <= 1 {
		return true
	}
	seen := make([]bool, g.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.N
}

// Ring returns the cycle graph over n nodes (n >= 3), or the single edge for
// n == 2, or an isolated vertex for n == 1.
func Ring(n int) *Graph {
	g := &Graph{N: n, Adj: make([][]int, n)}
	switch {
	case n <= 1:
	case n == 2:
		g.Adj[0] = []int{1}
		g.Adj[1] = []int{0}
	default:
		for i := 0; i < n; i++ {
			prev := (i - 1 + n) % n
			next := (i + 1) % n
			if prev < next {
				g.Adj[i] = []int{prev, next}
			} else {
				g.Adj[i] = []int{next, prev}
			}
		}
	}
	return g
}

// Full returns the complete graph over n nodes.
func Full(n int) *Graph {
	g := &Graph{N: n, Adj: make([][]int, n)}
	for i := 0; i < n; i++ {
		adj := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				adj = append(adj, j)
			}
		}
		g.Adj[i] = adj
	}
	return g
}

// Regular returns a connected random d-regular simple graph over n nodes.
// It starts from a circulant base graph (guaranteed d-regular and connected)
// and applies random degree-preserving double-edge swaps, rejecting swaps
// that would create self-loops, parallel edges, or disconnect the graph.
// n*d must be even, d < n, and d >= 2 for n > 2.
func Regular(n, d int, rng *vec.RNG) (*Graph, error) {
	if d >= n {
		return nil, fmt.Errorf("topology: degree %d must be < n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("topology: n*d must be even (n=%d, d=%d)", n, d)
	}
	if d < 2 && n > 2 {
		return nil, fmt.Errorf("topology: degree %d cannot form a connected graph over %d nodes", d, n)
	}
	edges := circulantEdges(n, d)
	// Randomize with double-edge swaps: pick edges (a,b), (c,e); rewire to
	// (a,c), (b,e) when the result stays simple. ~10 swaps per edge mixes well.
	attempts := 10 * len(edges)
	edgeSet := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		edgeSet[e] = true
	}
	for t := 0; t < attempts; t++ {
		i := rng.Intn(len(edges))
		j := rng.Intn(len(edges))
		if i == j {
			continue
		}
		a, b := edges[i][0], edges[i][1]
		c, e := edges[j][0], edges[j][1]
		if rng.Intn(2) == 1 {
			c, e = e, c
		}
		// New edges: (a,c) and (b,e).
		if a == c || b == e {
			continue
		}
		n1, n2 := normEdge(a, c), normEdge(b, e)
		if edgeSet[n1] || edgeSet[n2] || n1 == n2 {
			continue
		}
		delete(edgeSet, edges[i])
		delete(edgeSet, edges[j])
		edgeSet[n1] = true
		edgeSet[n2] = true
		edges[i], edges[j] = n1, n2
	}
	g := graphFromEdges(n, edges)
	if !g.Connected() {
		// Extremely unlikely starting from a connected circulant with simple
		// swap acceptance, but regenerate deterministically if it happens.
		return Regular(n, d, rng)
	}
	for i := 0; i < n; i++ {
		if g.Degree(i) != d {
			return nil, fmt.Errorf("topology: internal error: node %d degree %d != %d", i, g.Degree(i), d)
		}
	}
	return g, nil
}

// circulantEdges builds the edge list of the circulant graph C_n(1..d/2)
// plus the antipodal matching when d is odd (n must then be even).
func circulantEdges(n, d int) [][2]int {
	var edges [][2]int
	for k := 1; k <= d/2; k++ {
		for i := 0; i < n; i++ {
			j := (i + k) % n
			e := normEdge(i, j)
			if k == n-k && i > j {
				continue // avoid double-adding antipodal offset when 2k == n
			}
			edges = append(edges, e)
		}
	}
	if d%2 == 1 {
		for i := 0; i < n/2; i++ {
			edges = append(edges, normEdge(i, i+n/2))
		}
	}
	return dedupeEdges(edges)
}

func dedupeEdges(edges [][2]int) [][2]int {
	seen := make(map[[2]int]bool, len(edges))
	out := edges[:0]
	for _, e := range edges {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

func normEdge(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func graphFromEdges(n int, edges [][2]int) *Graph {
	g := &Graph{N: n, Adj: make([][]int, n)}
	for _, e := range edges {
		g.Adj[e[0]] = append(g.Adj[e[0]], e[1])
		g.Adj[e[1]] = append(g.Adj[e[1]], e[0])
	}
	for i := range g.Adj {
		sortInts(g.Adj[i])
	}
	return g
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// MetropolisHastings returns the mixing weight rows for g: for edge {i,j},
// w_ij = 1/(1+max(deg_i, deg_j)); the self weight w_ii absorbs the remainder
// so each row sums to 1. Rows are returned as neighbor-indexed maps plus the
// self weight. This is the doubly stochastic scheme of Xiao & Boyd used by
// the paper's D-PSGD.
func MetropolisHastings(g *Graph) []Weights {
	out := make([]Weights, g.N)
	for i := 0; i < g.N; i++ {
		w := Weights{Neighbor: make(map[int]float64, g.Degree(i))}
		var sum float64
		for _, j := range g.Adj[i] {
			wij := 1.0 / (1.0 + float64(maxInt(g.Degree(i), g.Degree(j))))
			w.Neighbor[j] = wij
			sum += wij
		}
		w.Self = 1 - sum
		out[i] = w
	}
	return out
}

// Weights is one node's mixing row: its self weight and one weight per
// neighbor. For a connected graph, Self + sum(Neighbor) == 1.
type Weights struct {
	Self     float64
	Neighbor map[int]float64
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Provider yields the topology for each round. Static topologies return the
// same graph every round; dynamic topologies (paper Figure 7) re-randomize.
type Provider interface {
	// Round returns the graph and per-node mixing weights for round t.
	Round(t int) (*Graph, []Weights)
}

// Static wraps a fixed graph as a Provider.
type Static struct {
	G *Graph
	W []Weights
}

// NewStatic builds a static provider with Metropolis-Hastings weights.
func NewStatic(g *Graph) *Static {
	return &Static{G: g, W: MetropolisHastings(g)}
}

// Round implements Provider.
func (s *Static) Round(int) (*Graph, []Weights) { return s.G, s.W }

// Induced returns the subgraph of g induced by the live set: node ids are
// preserved, but every edge with a dead endpoint is removed, so dead nodes
// become isolated vertices. The async engine uses this to shrink and grow the
// active communication graph as nodes leave and rejoin mid-run.
func Induced(g *Graph, live []bool) *Graph {
	out := &Graph{N: g.N, Adj: make([][]int, g.N)}
	for i := 0; i < g.N; i++ {
		if i < len(live) && !live[i] {
			continue
		}
		adj := make([]int, 0, len(g.Adj[i]))
		for _, j := range g.Adj[i] {
			if j >= len(live) || live[j] {
				adj = append(adj, j)
			}
		}
		out.Adj[i] = adj
	}
	return out
}

// liveSet is the liveness bitmap shared by the live-filtering providers
// (Masked, EpochProvider): per-node flags plus a version counter bumped on
// every effective change, which the providers key their subgraph caches on.
// A SetLive racing a round/epoch query in either order therefore always
// invalidates correctly.
type liveSet struct {
	live        []bool
	liveVersion int
}

func newLiveSet(n int) liveSet {
	live := make([]bool, n)
	for i := range live {
		live[i] = true
	}
	return liveSet{live: live}
}

// SetLive flips one node's liveness, invalidating cached subgraphs.
func (s *liveSet) SetLive(node int, alive bool) {
	if s.live[node] == alive {
		return
	}
	s.live[node] = alive
	s.liveVersion++
}

// Live reports whether node is currently live.
func (s *liveSet) Live(node int) bool { return s.live[node] }

// NumLive counts the live nodes.
func (s *liveSet) NumLive() int {
	n := 0
	for _, a := range s.live {
		if a {
			n++
		}
	}
	return n
}

// ResetLive marks every node live again (the start-of-run state).
func (s *liveSet) ResetLive() {
	for i := range s.live {
		if !s.live[i] {
			s.live[i] = true
			s.liveVersion++
		}
	}
}

// Masked wraps a Provider and restricts every round's graph to the currently
// live nodes, recomputing Metropolis-Hastings weights on the induced
// subgraph. Rows of dead nodes are empty with Self == 1, so a rejoining node
// that has not yet re-earned edges simply keeps its own model.
type Masked struct {
	Base Provider

	liveSet
	// cache keyed by (round, liveVersion) so repeated queries within an epoch
	// don't rebuild the induced graph.
	cachedRound int
	cachedVer   int
	cachedG     *Graph
	cachedW     []Weights
}

// NewMasked builds a masked provider with all n nodes initially live.
func NewMasked(base Provider, n int) *Masked {
	return &Masked{Base: base, liveSet: newLiveSet(n), cachedRound: -1, cachedVer: -1}
}

// Round implements Provider over the live-induced subgraph.
func (m *Masked) Round(t int) (*Graph, []Weights) {
	if t == m.cachedRound && m.liveVersion == m.cachedVer {
		return m.cachedG, m.cachedW
	}
	base, _ := m.Base.Round(t)
	g := Induced(base, m.live)
	m.cachedG, m.cachedW = g, MetropolisHastings(g)
	m.cachedRound, m.cachedVer = t, m.liveVersion
	return m.cachedG, m.cachedW
}

// Dynamic regenerates a random d-regular graph every round, modelling the
// paper's dynamic-topology experiment (randomized neighbors each round).
type Dynamic struct {
	N, D int
	rng  *vec.RNG

	cachedRound int
	cachedG     *Graph
	cachedW     []Weights
}

// NewDynamic builds a dynamic d-regular provider seeded by rng.
func NewDynamic(n, d int, rng *vec.RNG) *Dynamic {
	return &Dynamic{N: n, D: d, rng: rng, cachedRound: -1}
}

// Round implements Provider. Graphs are generated on first access per round
// and cached so all nodes in a round see the same topology.
func (dy *Dynamic) Round(t int) (*Graph, []Weights) {
	if t != dy.cachedRound {
		g, err := Regular(dy.N, dy.D, dy.rng)
		if err != nil {
			// Construction parameters were validated by the first successful
			// call; failures here are programmer error.
			panic(fmt.Sprintf("topology: dynamic regeneration failed: %v", err))
		}
		dy.cachedG, dy.cachedW = g, MetropolisHastings(g)
		dy.cachedRound = t
	}
	return dy.cachedG, dy.cachedW
}
