package topology

import (
	"math"
	"testing"

	"repro/internal/vec"
)

// TestSeededDynamicRandomAccess: round t's graph must depend only on
// (seed, t) — repeated and out-of-order queries return identical graphs,
// unlike Dynamic's history-dependent stream.
func TestSeededDynamicRandomAccess(t *testing.T) {
	a := NewSeededDynamic(24, 4, 7)
	g5a, _ := a.Round(5)
	g2, _ := a.Round(2)
	g5b, _ := a.Round(5) // revisit after moving away
	if !sameAdj(g5a, g5b) {
		t.Fatal("revisiting an epoch returned a different graph")
	}
	if sameAdj(g5a, g2) {
		t.Fatal("distinct epochs returned identical graphs (seed mixing broken)")
	}

	b := NewSeededDynamic(24, 4, 7)
	g5c, _ := b.Round(5) // fresh provider, direct query
	if !sameAdj(g5a, g5c) {
		t.Fatal("graph depends on query history, not just (seed, round)")
	}
	other := NewSeededDynamic(24, 4, 8)
	g5d, _ := other.Round(5)
	if sameAdj(g5a, g5d) {
		t.Fatal("different seeds returned identical graphs")
	}
	for i := 0; i < 24; i++ {
		if g5a.Degree(i) != 4 {
			t.Fatalf("node %d degree %d != 4", i, g5a.Degree(i))
		}
	}
	if !g5a.Connected() {
		t.Fatal("generated graph not connected")
	}
}

func sameAdj(a, b *Graph) bool {
	if a.N != b.N {
		return false
	}
	for i := 0; i < a.N; i++ {
		if len(a.Adj[i]) != len(b.Adj[i]) {
			return false
		}
		for k := range a.Adj[i] {
			if a.Adj[i][k] != b.Adj[i][k] {
				return false
			}
		}
	}
	return true
}

// TestEpochProviderRotatesAndFilters: epochs rotate the base graph, dead
// nodes are isolated, and weights are recomputed on the induced subgraph.
func TestEpochProviderRotatesAndFilters(t *testing.T) {
	p := NewEpochProvider(NewSeededDynamic(16, 4, 3), 16, 2.5)
	g0, w0 := p.Round(0)
	g1, _ := p.Round(1)
	if sameAdj(g0, g1) {
		t.Fatal("epochs 0 and 1 returned identical graphs")
	}
	if w0[3].Self <= 0 {
		t.Fatalf("implausible self weight %v", w0[3].Self)
	}

	p.SetLive(3, false)
	g1b, w1b := p.Round(1)
	if len(g1b.Adj[3]) != 0 {
		t.Fatal("dead node kept edges")
	}
	if w1b[3].Self != 1 || len(w1b[3].Neighbor) != 0 {
		t.Fatalf("dead node row not isolated: %+v", w1b[3])
	}
	for _, j := range g1.Adj[3] {
		if g1b.HasEdge(j, 3) {
			t.Fatalf("live node %d still linked to dead node 3", j)
		}
	}

	if p.NumLive() != 15 || p.Live(3) {
		t.Fatal("liveness bookkeeping wrong")
	}
	p.ResetLive()
	if p.NumLive() != 16 {
		t.Fatal("ResetLive did not restore the full set")
	}
	g1c, _ := p.Round(1)
	if !sameAdj(g1, g1c) {
		t.Fatal("ResetLive did not restore epoch 1's full graph")
	}
}

// TestEpochProviderEpochAt maps simulated time to epoch indices.
func TestEpochProviderEpochAt(t *testing.T) {
	p := NewEpochProvider(NewStatic(Ring(8)), 8, 2.0)
	for _, tc := range []struct {
		t    float64
		want int
	}{{0, 0}, {1.99, 0}, {2, 1}, {3.5, 1}, {4, 2}, {-1, 0}} {
		if got := p.EpochAt(tc.t); got != tc.want {
			t.Fatalf("EpochAt(%v) = %d, want %d", tc.t, got, tc.want)
		}
	}
	unbounded := NewEpochProvider(NewStatic(Ring(8)), 8, 0)
	if unbounded.EpochAt(1e12) != 0 {
		t.Fatal("EpochSec <= 0 must pin epoch 0")
	}
}

// TestEpochProviderCacheInvalidation: the cache is keyed by
// (epoch, liveVersion), so a SetLive racing an epoch boundary — liveness
// flips interleaved with epoch queries in either order — must never serve a
// stale subgraph. This is the async-engine scenario where a churn event and
// a topology rotation land on the same simulated instant.
func TestEpochProviderCacheInvalidation(t *testing.T) {
	p := NewEpochProvider(NewSeededDynamic(16, 4, 9), 16, 1.0)

	// Query epoch 1, then flip liveness, then re-query the same epoch: the
	// cached full graph must be rebuilt.
	full, _ := p.Round(1)
	p.SetLive(5, false)
	masked, _ := p.Round(1)
	if len(masked.Adj[5]) != 0 {
		t.Fatal("SetLive after a same-epoch query served the stale cache")
	}
	if sameAdj(full, masked) && len(full.Adj[5]) > 0 {
		t.Fatal("cache not invalidated by liveVersion")
	}

	// Opposite interleaving: flip liveness first, then cross the epoch
	// boundary; the new epoch's graph must already exclude the dead node.
	p.SetLive(7, false)
	g2, _ := p.Round(2)
	if len(g2.Adj[7]) != 0 || len(g2.Adj[5]) != 0 {
		t.Fatal("epoch advance lost earlier liveness changes")
	}

	// Flip back on the boundary epoch: same epoch index, third liveness
	// version — still fresh.
	p.SetLive(5, true)
	g2b, _ := p.Round(2)
	if len(g2b.Adj[5]) == 0 {
		t.Fatal("rejoined node has no edges in the re-queried epoch")
	}
	// Redundant SetLive must not thrash the cache version.
	v := p.liveVersion
	p.SetLive(5, true)
	if p.liveVersion != v {
		t.Fatal("no-op SetLive bumped the live version")
	}
	gc, _ := p.Round(2)
	if !sameAdj(g2b, gc) {
		t.Fatal("repeated query after no-op SetLive changed the graph")
	}
}

// TestMaskedCacheInvalidationInterleaved mirrors the EpochProvider test for
// Masked: SetLive between two same-round queries must rebuild.
func TestMaskedCacheInvalidationInterleaved(t *testing.T) {
	g, err := Regular(12, 4, vec.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMasked(NewStatic(g), 12)
	full, _ := m.Round(0)
	if len(full.Adj[2]) != 4 {
		t.Fatalf("unexpected base degree %d", len(full.Adj[2]))
	}
	m.SetLive(2, false)
	masked, _ := m.Round(0)
	if len(masked.Adj[2]) != 0 {
		t.Fatal("Masked served stale cache after SetLive")
	}
	m.ResetLive()
	restored, _ := m.Round(0)
	if !sameAdj(full, restored) {
		t.Fatal("ResetLive did not restore the full graph")
	}
}

// TestMixingSLEM: known orderings — the complete graph mixes in one step
// (SLEM 0 under MH within numerical tolerance... in fact MH on K_n gives
// SLEM < ring's), a ring mixes slowly (SLEM near 1), a disconnected live
// set does not mix at all (SLEM 1, gap 0) — and the estimate is a pure
// function of its inputs.
func TestMixingSLEM(t *testing.T) {
	full := Full(16)
	ring := Ring(16)
	sFull := MixingSLEM(full, MetropolisHastings(full), nil)
	sRing := MixingSLEM(ring, MetropolisHastings(ring), nil)
	if !(sFull < sRing) {
		t.Fatalf("complete graph SLEM %v not below ring %v", sFull, sRing)
	}
	if sRing < 0.9 || sRing > 1 {
		t.Fatalf("ring SLEM %v implausible (theory: 1-O(1/n^2))", sRing)
	}
	if sFull < 0 || sFull > 0.5 {
		t.Fatalf("complete graph SLEM %v implausible", sFull)
	}

	// Two live components: no global mixing.
	g := &Graph{N: 4, Adj: [][]int{{1}, {0}, {3}, {2}}}
	if s := MixingSLEM(g, MetropolisHastings(g), nil); math.Abs(s-1) > 1e-6 {
		t.Fatalf("disconnected SLEM %v, want 1", s)
	}
	if gap := SpectralGap(g, MetropolisHastings(g), nil); gap > 1e-6 {
		t.Fatalf("disconnected gap %v, want 0", gap)
	}

	// Restricting to a live path inside the ring must still be connected.
	live := make([]bool, 16)
	for i := 0; i < 8; i++ {
		live[i] = true
	}
	ind := Induced(ring, live)
	s := MixingSLEM(ind, MetropolisHastings(ind), live)
	if s <= 0 || s >= 1 {
		t.Fatalf("live-path SLEM %v outside (0,1)", s)
	}

	// Determinism.
	a := MixingSLEM(ring, MetropolisHastings(ring), nil)
	b := MixingSLEM(ring, MetropolisHastings(ring), nil)
	if a != b {
		t.Fatalf("SLEM not deterministic: %v vs %v", a, b)
	}

	// Degenerate sizes.
	if s := MixingSLEM(Ring(1), MetropolisHastings(Ring(1)), nil); s != 0 {
		t.Fatalf("single node SLEM %v, want 0", s)
	}
}

// TestEdgeTurnover: identical graphs turn over nothing, disjoint edge sets
// everything, and a rotated regular graph lands in between.
func TestEdgeTurnover(t *testing.T) {
	r := Ring(8)
	if got := EdgeTurnover(r, r); got != 0 {
		t.Fatalf("self turnover %v, want 0", got)
	}
	if got := EdgeTurnover(nil, r); got != 1 {
		t.Fatalf("nil-prev turnover %v, want 1", got)
	}
	sd := NewSeededDynamic(24, 4, 11)
	g0, _ := sd.Round(0)
	g1, _ := sd.Round(1)
	tv := EdgeTurnover(g0, g1)
	if tv <= 0 || tv > 1 {
		t.Fatalf("rotated turnover %v outside (0,1]", tv)
	}
	empty := &Graph{N: 4, Adj: make([][]int, 4)}
	if got := EdgeTurnover(r, empty); got != 0 {
		t.Fatalf("empty current graph turnover %v, want 0", got)
	}
}
