package topology

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestRing(t *testing.T) {
	g := Ring(6)
	for i := 0; i < 6; i++ {
		if g.Degree(i) != 2 {
			t.Fatalf("node %d degree %d", i, g.Degree(i))
		}
	}
	if !g.Connected() {
		t.Fatal("ring not connected")
	}
	if !g.HasEdge(0, 5) || !g.HasEdge(0, 1) {
		t.Fatal("ring wrap-around edges missing")
	}
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if !Ring(1).Connected() || !Ring(2).Connected() {
		t.Fatal("tiny rings should be connected")
	}
}

func TestFull(t *testing.T) {
	g := Full(5)
	for i := 0; i < 5; i++ {
		if g.Degree(i) != 4 {
			t.Fatalf("node %d degree %d", i, g.Degree(i))
		}
	}
	if g.NumEdges() != 10 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestRegularProperties(t *testing.T) {
	rng := vec.NewRNG(41)
	cases := []struct{ n, d int }{
		{8, 4}, {96, 4}, {96, 5}, {192, 5}, {33, 4}, {10, 3}, {4, 2},
	}
	for _, c := range cases {
		g, err := Regular(c.n, c.d, rng)
		if err != nil {
			t.Fatalf("Regular(%d,%d): %v", c.n, c.d, err)
		}
		if !g.Connected() {
			t.Fatalf("Regular(%d,%d) not connected", c.n, c.d)
		}
		for i := 0; i < c.n; i++ {
			if g.Degree(i) != c.d {
				t.Fatalf("Regular(%d,%d): node %d degree %d", c.n, c.d, i, g.Degree(i))
			}
			// No self loops, no duplicate edges (adjacency sorted).
			prev := -1
			for _, j := range g.Neighbors(i) {
				if j == i {
					t.Fatalf("self loop at %d", i)
				}
				if j == prev {
					t.Fatalf("parallel edge %d-%d", i, j)
				}
				prev = j
			}
		}
	}
}

func TestRegularErrors(t *testing.T) {
	rng := vec.NewRNG(1)
	if _, err := Regular(5, 5, rng); err == nil {
		t.Fatal("d >= n should fail")
	}
	if _, err := Regular(5, 3, rng); err == nil {
		t.Fatal("odd n*d should fail")
	}
	if _, err := Regular(5, 1, rng); err == nil {
		t.Fatal("d=1 over n>2 should fail")
	}
}

func TestRegularRandomizes(t *testing.T) {
	// With different seeds the edge sets should differ (overwhelmingly).
	g1, err := Regular(32, 4, vec.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Regular(32, 4, vec.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < 32; i++ {
		for _, j := range g1.Neighbors(i) {
			if !g2.HasEdge(i, j) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical regular graphs")
	}
}

func TestRegularDeterministic(t *testing.T) {
	g1, _ := Regular(32, 4, vec.NewRNG(7))
	g2, _ := Regular(32, 4, vec.NewRNG(7))
	for i := 0; i < 32; i++ {
		a, b := g1.Neighbors(i), g2.Neighbors(i)
		if len(a) != len(b) {
			t.Fatal("seeded graphs differ")
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatal("seeded graphs differ")
			}
		}
	}
}

func TestMetropolisHastingsRowsSumToOne(t *testing.T) {
	rng := vec.NewRNG(42)
	g, err := Regular(24, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := MetropolisHastings(g)
	for i, row := range w {
		sum := row.Self
		for _, v := range row.Neighbor {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
		if row.Self <= 0 {
			t.Fatalf("row %d self weight %v", i, row.Self)
		}
	}
	// d-regular: every neighbor weight is 1/(d+1).
	for i, row := range w {
		for j, v := range row.Neighbor {
			if math.Abs(v-0.2) > 1e-12 {
				t.Fatalf("w[%d][%d] = %v, want 0.2", i, j, v)
			}
		}
	}
}

func TestMetropolisHastingsSymmetric(t *testing.T) {
	// Symmetry w_ij == w_ji makes the mixing matrix doubly stochastic.
	rng := vec.NewRNG(43)
	g, err := Regular(18, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := MetropolisHastings(g)
	for i := range w {
		for j, v := range w[i].Neighbor {
			if back, ok := w[j].Neighbor[i]; !ok || math.Abs(back-v) > 1e-12 {
				t.Fatalf("asymmetric weights: w[%d][%d]=%v w[%d][%d]=%v", i, j, v, j, i, back)
			}
		}
	}
}

func TestStaticProvider(t *testing.T) {
	g := Ring(5)
	s := NewStatic(g)
	g1, w1 := s.Round(0)
	g2, w2 := s.Round(10)
	if g1 != g2 {
		t.Fatal("static provider returned different graphs")
	}
	if len(w1) != 5 || len(w2) != 5 {
		t.Fatal("weights missing")
	}
}

func TestDynamicProviderChangesPerRound(t *testing.T) {
	dy := NewDynamic(24, 4, vec.NewRNG(44))
	g0a, _ := dy.Round(0)
	g0b, _ := dy.Round(0)
	if g0a != g0b {
		t.Fatal("same round should return cached graph")
	}
	g1, _ := dy.Round(1)
	diff := 0
	for i := 0; i < 24; i++ {
		for _, j := range g0a.Neighbors(i) {
			if !g1.HasEdge(i, j) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("dynamic topology did not change between rounds")
	}
	if !g1.Connected() {
		t.Fatal("dynamic graph not connected")
	}
}

func TestQuickRegularAlwaysValid(t *testing.T) {
	f := func(seed uint64, rawN uint8, rawD uint8) bool {
		n := int(rawN)%60 + 4
		d := int(rawD)%4 + 2
		if d >= n {
			d = n - 1
		}
		if n*d%2 != 0 {
			d-- // make n*d even
		}
		if d < 2 {
			return true // skip degenerate combinations
		}
		g, err := Regular(n, d, vec.NewRNG(seed))
		if err != nil {
			return false
		}
		if !g.Connected() {
			return false
		}
		for i := 0; i < n; i++ {
			if g.Degree(i) != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, err := Regular(10, 4, vec.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	live := make([]bool, 10)
	for i := range live {
		live[i] = true
	}
	live[2], live[7] = false, false
	sub := Induced(g, live)
	if sub.N != g.N {
		t.Fatalf("induced graph renumbered nodes: N=%d", sub.N)
	}
	if sub.Degree(2) != 0 || sub.Degree(7) != 0 {
		t.Fatal("dead nodes kept edges")
	}
	for i := 0; i < 10; i++ {
		for _, j := range sub.Neighbors(i) {
			if !live[i] || !live[j] {
				t.Fatalf("edge {%d,%d} touches a dead node", i, j)
			}
			if !g.HasEdge(i, j) {
				t.Fatalf("induced edge {%d,%d} not in base graph", i, j)
			}
		}
	}
	// Edges between live nodes are preserved.
	for i := 0; i < 10; i++ {
		if !live[i] {
			continue
		}
		for _, j := range g.Neighbors(i) {
			if live[j] && !sub.HasEdge(i, j) {
				t.Fatalf("live edge {%d,%d} lost", i, j)
			}
		}
	}
}

func TestMaskedProviderWeights(t *testing.T) {
	g, err := Regular(8, 4, vec.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMasked(NewStatic(g), 8)
	if m.NumLive() != 8 {
		t.Fatalf("expected 8 live nodes, got %d", m.NumLive())
	}
	full, fullW := m.Round(0)
	if full.NumEdges() != g.NumEdges() {
		t.Fatal("fully live mask altered the graph")
	}
	for i, w := range fullW {
		sum := w.Self
		for _, v := range w.Neighbor {
			sum += v
		}
		if d := sum - 1; d > 1e-12 || d < -1e-12 {
			t.Fatalf("row %d weights sum to %v", i, sum)
		}
	}

	m.SetLive(3, false)
	if m.Live(3) || m.NumLive() != 7 {
		t.Fatal("SetLive(3,false) not reflected")
	}
	sub, w := m.Round(0)
	if sub.Degree(3) != 0 {
		t.Fatal("dead node kept edges in masked round")
	}
	if w[3].Self != 1 || len(w[3].Neighbor) != 0 {
		t.Fatalf("dead node weight row should be self-only, got %+v", w[3])
	}
	for i := 0; i < 8; i++ {
		if _, ok := w[i].Neighbor[3]; ok {
			t.Fatalf("node %d still mixes with dead node 3", i)
		}
	}

	// Rejoining restores the original subgraph (cache must invalidate).
	m.SetLive(3, true)
	back, _ := m.Round(0)
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("rejoin did not restore edges")
	}
}
