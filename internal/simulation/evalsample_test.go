package simulation

import (
	"errors"
	"math"
	"runtime"
	"testing"

	"repro/internal/trace"
)

// TestEvalSamplerRotationCoverage: with sample size s and rotation k, every
// node must be visited within ceil(n/s)×k consecutive eval rows (one full
// cycle), each row's subset must be s distinct nodes, and the schedule must
// be a pure function of the config — a fresh sampler replays it exactly.
func TestEvalSamplerRotationCoverage(t *testing.T) {
	cfg := Config{EvalSample: 3, EvalEvery: 2, EvalRotate: 2, EvalSeed: 5}
	cfg.setDefaults()
	const n = 10
	s := newEvalSampler(n, cfg)
	if s == nil {
		t.Fatal("sampler unexpectedly off")
	}
	windows := (n + cfg.EvalSample - 1) / cfg.EvalSample
	budget := windows * cfg.EvalRotate // eval rows per full cycle

	replay := newEvalSampler(n, cfg)
	seen := make(map[int]bool)
	for ord := 0; ord < budget; ord++ {
		round := ord * cfg.EvalEvery // eval rows land every EvalEvery rounds
		subset := s.subsetFor(round)
		if len(subset) != cfg.EvalSample {
			t.Fatalf("row %d: subset size %d, want %d", ord, len(subset), cfg.EvalSample)
		}
		dup := make(map[int]bool)
		for _, idx := range subset {
			if idx < 0 || idx >= n {
				t.Fatalf("row %d: node %d out of range", ord, idx)
			}
			if dup[idx] {
				t.Fatalf("row %d: node %d sampled twice", ord, idx)
			}
			dup[idx] = true
			seen[idx] = true
		}
		again := replay.subsetFor(round)
		for i := range subset {
			if subset[i] != again[i] {
				t.Fatalf("row %d: fresh sampler diverged: %v vs %v", ord, subset, again)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("one cycle (%d eval rows) visited %d/%d nodes", budget, len(seen), n)
	}
}

// TestEvalSamplerOffBoundaries: sampling must stay off when the subset would
// not actually be a proper subset.
func TestEvalSamplerOffBoundaries(t *testing.T) {
	for _, tc := range []struct {
		name   string
		sample int
	}{
		{"zero", 0},
		{"equal-to-fleet", 8},
		{"above-fleet", 12},
	} {
		cfg := Config{EvalSample: tc.sample, EvalEvery: 1, EvalSeed: 1}
		cfg.setDefaults()
		if s := newEvalSampler(8, cfg); s != nil {
			t.Fatalf("%s: sampler on for EvalSample=%d over 8 nodes", tc.name, tc.sample)
		}
	}
	if got := (*evalSampler)(nil).subsetFor(0); got != nil {
		t.Fatalf("nil sampler returned subset %v", got)
	}
}

// TestSampledEvalParallelismInvariance: sampled rows must be bit-identical
// across worker-pool widths — the subset schedule depends on the config and
// row index only, never on execution order.
func TestSampledEvalParallelismInvariance(t *testing.T) {
	const rounds = 8
	capture := func(parallelism int) *Result {
		eng := asyncEngineFor(t, algoJWINS, rounds, func(cfg *AsyncConfig) {
			cfg.Parallelism = parallelism
			cfg.EvalEvery = 2
			cfg.EvalSample = 3
			cfg.EvalSeed = 17
			cfg.Het = Heterogeneity{ComputeSpread: 0.4, Seed: 5}
		})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := capture(1)
	levels := []int{2}
	if n := runtime.NumCPU(); n > 2 {
		levels = append(levels, n)
	}
	for _, p := range levels {
		got := capture(p)
		if len(got.Rounds) != len(ref.Rounds) {
			t.Fatalf("p=%d: row count %d, serial %d", p, len(got.Rounds), len(ref.Rounds))
		}
		for i := range ref.Rounds {
			if !metricsEqual(ref.Rounds[i], got.Rounds[i]) {
				t.Fatalf("p=%d row %d diverged:\nserial %+v\ngot    %+v", p, i, ref.Rounds[i], got.Rounds[i])
			}
		}
		if !floatsEqualNaN(ref.FinalAccuracy, got.FinalAccuracy) || !floatsEqualNaN(ref.FinalLoss, got.FinalLoss) {
			t.Fatalf("p=%d finals diverged: (%v,%v) vs (%v,%v)",
				p, got.FinalAccuracy, got.FinalLoss, ref.FinalAccuracy, ref.FinalLoss)
		}
	}
}

func floatsEqualNaN(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestSampledEvalOfflineNaN: subset entries that are offline contribute NaN
// and fall out of the mean; a fully offline subset yields NaN row metrics
// instead of scoring dead nodes' stale models.
func TestSampledEvalOfflineNaN(t *testing.T) {
	const n = 8
	ds, parts := buildTask(t, n, 42)
	nodes := buildNodes(t, algoFull, ds, parts, 7)
	pool := newComputePool(1)
	defer pool.close()
	cfg := Config{EvalEvery: 1}
	cfg.setDefaults()

	subset := []int{0, 1, 2}
	live := make([]bool, n)

	loss, acc := evaluateNodesOn(pool, nodes, ds, cfg, subset, live)
	if !math.IsNaN(loss) || !math.IsNaN(acc) {
		t.Fatalf("all-offline subset produced (%v, %v), want NaN", loss, acc)
	}

	live[1] = true
	loss, acc = evaluateNodesOn(pool, nodes, ds, cfg, subset, live)
	wantLoss, wantAcc := evaluateNodesOn(pool, nodes, ds, cfg, []int{1}, nil)
	if loss != wantLoss || acc != wantAcc {
		t.Fatalf("single live node: got (%v, %v), want node 1 alone (%v, %v)", loss, acc, wantLoss, wantAcc)
	}
}

// TestSampledEvalWithinToleranceOfExact: on the micro test task, the sampled
// estimate must track exact evaluation. The bound is loose — a 3-node sample
// of an 8-node fleet is noisy by construction — but it catches systematic
// bias (always scoring the same lucky subset, never visiting stragglers).
func TestSampledEvalWithinToleranceOfExact(t *testing.T) {
	const rounds = 12
	run := func(sample int) *Result {
		eng := asyncEngineFor(t, algoJWINS, rounds, func(cfg *AsyncConfig) {
			cfg.EvalEvery = 4
			cfg.EvalSample = sample
			cfg.EvalSeed = 9
		})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	exact := run(0)
	sampled := run(3)
	if math.Abs(exact.FinalAccuracy-sampled.FinalAccuracy) > 0.15 {
		t.Fatalf("sampled final accuracy %.4f drifted from exact %.4f beyond tolerance 0.15",
			sampled.FinalAccuracy, exact.FinalAccuracy)
	}
	if math.Abs(exact.FinalLoss-sampled.FinalLoss) > 0.5*(1+math.Abs(exact.FinalLoss)) {
		t.Fatalf("sampled final loss %.4f drifted from exact %.4f", sampled.FinalLoss, exact.FinalLoss)
	}
}

// TestReplayValidatesEvalSchedule: a trace recorded under sampled evaluation
// carries the schedule in its header; replaying under a different schedule
// must fail with ErrReplayConfig, and replaying under the recorded one must
// reproduce the rows exactly. Traces without eval meta (recorded before the
// sampler existed) skip the check.
func TestReplayValidatesEvalSchedule(t *testing.T) {
	const rounds = 8
	recordWith := func(meta map[string]string, sample int) (*trace.Trace, *Result) {
		rec := trace.NewRecorder(trace.Header{
			Nodes: 8, Rounds: rounds, Source: trace.SourceSim, Policy: trace.PolicyBarrier, Meta: meta,
		})
		eng := asyncEngineFor(t, algoJWINS, rounds, func(cfg *AsyncConfig) {
			cfg.EvalEvery = 2
			cfg.EvalSample = sample
			cfg.EvalSeed = 21
			cfg.Record = rec
		})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rec.Trace(), res
	}
	meta := map[string]string{"eval_sample": "3", "eval_rotate": "1"}
	recorded, recRes := recordWith(meta, 3)

	replayEng := func(sample int) *AsyncEngine {
		rp, err := trace.NewReplayer(recorded)
		if err != nil {
			t.Fatal(err)
		}
		return asyncEngineFor(t, algoJWINS, rounds, func(cfg *AsyncConfig) {
			cfg.EvalEvery = 2
			cfg.EvalSample = sample
			cfg.EvalSeed = 21
			cfg.Replay = rp
		})
	}

	// Matching schedule: row-for-row parity with the recording.
	repRes, err := replayEng(3).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(repRes.Rounds) != len(recRes.Rounds) {
		t.Fatalf("row counts differ: replay %d, recorded %d", len(repRes.Rounds), len(recRes.Rounds))
	}
	for i := range recRes.Rounds {
		if !metricsEqual(repRes.Rounds[i], recRes.Rounds[i]) {
			t.Fatalf("row %d differs: %+v vs %+v", i, repRes.Rounds[i], recRes.Rounds[i])
		}
	}

	// Mismatched schedule: typed configuration error.
	if _, err := replayEng(5).Run(); !errors.Is(err, ErrReplayConfig) {
		t.Fatalf("mismatched eval sample: got %v, want ErrReplayConfig", err)
	}
	if _, err := replayEng(0).Run(); !errors.Is(err, ErrReplayConfig) {
		t.Fatalf("exact replay of sampled trace: got %v, want ErrReplayConfig", err)
	}

	// A header without eval meta skips the check (legacy traces).
	legacy, _ := recordWith(nil, 3)
	rp, err := trace.NewReplayer(legacy)
	if err != nil {
		t.Fatal(err)
	}
	eng := asyncEngineFor(t, algoJWINS, rounds, func(cfg *AsyncConfig) {
		cfg.EvalEvery = 2
		cfg.EvalSample = 5 // differs from the recording, but nothing recorded it
		cfg.EvalSeed = 21
		cfg.Replay = rp
	})
	if _, err := eng.Run(); err != nil {
		t.Fatalf("legacy trace without eval meta rejected: %v", err)
	}
}
