package simulation

import (
	"bytes"
	"errors"
	"math"
	"strconv"
	"testing"

	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/vec"
)

// dynEngineFor builds an AsyncEngine over the 8-node test task with an
// epoch-rotated random 4-regular topology (epochSec simulated seconds per
// epoch; one test iteration is ~22ms under the default time model).
func dynEngineFor(t *testing.T, kind algo, rounds int, epochSec float64, mut func(*AsyncConfig)) *AsyncEngine {
	t.Helper()
	const n = 8
	ds, parts := buildTask(t, n, 42)
	nodes := buildNodes(t, kind, ds, parts, 7)
	cfg := AsyncConfig{
		Config: Config{Rounds: rounds, EvalEvery: rounds, Parallelism: 2},
	}
	if mut != nil {
		mut(&cfg)
	}
	return &AsyncEngine{
		Nodes:    nodes,
		Topology: topology.NewEpochProvider(topology.NewSeededDynamic(n, 4, 9), n, epochSec),
		TestSet:  ds,
		Config:   cfg,
	}
}

// TestAsyncEpochTopologyRotates: a rotated run completes its budget, crosses
// several epoch boundaries, reports nonzero neighbor turnover and a spectral
// gap in (0, 1], stamps rows with the active epoch, and still learns.
func TestAsyncEpochTopologyRotates(t *testing.T) {
	eng := dynEngineFor(t, algoJWINS, 12, 0.05, nil)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 12 {
		t.Fatalf("completed %d/12 rows", len(res.Rounds))
	}
	if res.Epochs < 3 {
		t.Fatalf("expected several epochs over the run, got %d", res.Epochs)
	}
	if res.TurnoverMean <= 0 || res.TurnoverMean > 1 {
		t.Fatalf("turnover mean %v outside (0,1]", res.TurnoverMean)
	}
	if res.SpectralGapMean <= 0 || res.SpectralGapMean > 1 {
		t.Fatalf("spectral gap mean %v outside (0,1]", res.SpectralGapMean)
	}
	if res.SpectralGapMin <= 0 || res.SpectralGapMin > res.SpectralGapMean {
		t.Fatalf("gap min %v inconsistent with mean %v", res.SpectralGapMin, res.SpectralGapMean)
	}
	lastEpoch := 0
	sawGap := false
	for _, rm := range res.Rounds {
		if rm.Epoch < lastEpoch {
			t.Fatalf("row %d epoch %d regressed below %d", rm.Round, rm.Epoch, lastEpoch)
		}
		lastEpoch = rm.Epoch
		if rm.SpectralGap > 0 {
			sawGap = true
		}
	}
	if lastEpoch == 0 {
		t.Fatal("no row saw a rotated epoch")
	}
	if !sawGap {
		t.Fatal("no row carries a spectral gap")
	}
	if res.FinalAccuracy < 0.55 {
		t.Fatalf("rotated-topology run reached only %.2f", res.FinalAccuracy)
	}
}

// TestAsyncEpochStaticBaseParity: rotating epochs over a *static* base graph
// changes nothing observable except the epoch bookkeeping — the byte ledger,
// rows, and learning trajectory must equal the plain static-pin run (no
// fresh edges ever appear, so no state-sync sends fire).
func TestAsyncEpochStaticBaseParity(t *testing.T) {
	const rounds = 10
	g, err := topology.Regular(8, 4, vec.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	run := func(rotated bool) *Result {
		ds, parts := buildTask(t, 8, 42)
		nodes := buildNodes(t, algoJWINS, ds, parts, 7)
		eng := &AsyncEngine{
			Nodes:   nodes,
			TestSet: ds,
			Config:  AsyncConfig{Config: Config{Rounds: rounds, EvalEvery: rounds, Parallelism: 2}},
		}
		if rotated {
			eng.Topology = topology.NewEpochProvider(topology.NewStatic(g), 8, 0.05)
		} else {
			eng.Topology = topology.NewStatic(g)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(false)
	rotated := run(true)
	if static.TotalBytes != rotated.TotalBytes || static.FinalAccuracy != rotated.FinalAccuracy ||
		static.SimTime != rotated.SimTime {
		t.Fatalf("static-base rotation changed the run: (%d, %.4f, %v) vs (%d, %.4f, %v)",
			rotated.TotalBytes, rotated.FinalAccuracy, rotated.SimTime,
			static.TotalBytes, static.FinalAccuracy, static.SimTime)
	}
	if rotated.Epochs <= 1 {
		t.Fatalf("rotated run counted %d epochs", rotated.Epochs)
	}
	if rotated.TurnoverMean != 0 {
		t.Fatalf("static base reported turnover %v", rotated.TurnoverMean)
	}
	for i := range static.Rounds {
		if static.Rounds[i].TrainLoss != rotated.Rounds[i].TrainLoss ||
			static.Rounds[i].CumTotalBytes != rotated.Rounds[i].CumTotalBytes {
			t.Fatalf("row %d differs under static-base rotation", i)
		}
	}
}

// TestAsyncDynTopoRecordReplayIdentical: the acceptance property — a
// recorded dynamic-topology run under heterogeneity, churn, and drops,
// round-tripped through the wire format, must replay event- and
// byte-identically, including the topology-change events.
func TestAsyncDynTopoRecordReplayIdentical(t *testing.T) {
	const rounds = 10
	const epochSec = 0.06
	mut := func(cfg *AsyncConfig) {
		cfg.Het = Heterogeneity{ComputeSpread: 0.4, BandwidthSpread: 0.3, LatencySpread: 0.2, Seed: 5}
		cfg.Churn = GenerateChurn(8, 0.25, 0.02, 0.2, 0.1, 77)
		cfg.DropProb = 0.1
		cfg.FaultSeed = 3
	}
	var rec *trace.Recorder
	eng := dynEngineFor(t, algoJWINS, rounds, epochSec, func(cfg *AsyncConfig) {
		mut(cfg)
		rec = trace.NewRecorder(trace.Header{
			Nodes: 8, Rounds: rounds, Source: trace.SourceSim, Policy: trace.PolicyBarrier,
			Meta: map[string]string{"epoch_sec": strconv.FormatFloat(epochSec, 'g', -1, 64)},
		})
		cfg.Record = rec
	})
	recRes, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	recorded := rec.Trace()
	epochEvents := 0
	for _, ev := range recorded.Events {
		if ev.Kind == trace.KindEpoch {
			epochEvents++
		}
	}
	if epochEvents < 2 {
		t.Fatalf("recorded only %d topology-change events", epochEvents)
	}

	for _, binary := range []bool{false, true} {
		var buf bytes.Buffer
		if binary {
			err = trace.WriteBinary(&buf, recorded)
		} else {
			err = trace.Write(&buf, recorded)
		}
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := trace.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := trace.NewReplayer(decoded)
		if err != nil {
			t.Fatal(err)
		}
		rec2 := trace.NewRecorder(decoded.Header)
		eng2 := dynEngineFor(t, algoJWINS, rounds, epochSec, func(cfg *AsyncConfig) {
			mut(cfg)
			// Replay must override these with the recorded schedule.
			cfg.Het = Heterogeneity{ComputeSpread: 9, Seed: 1234}
			cfg.Churn = nil
			cfg.DropProb = 0
			cfg.Replay = rp
			cfg.Record = rec2
		})
		repRes, err := eng2.Run()
		if err != nil {
			t.Fatal(err)
		}
		replayed := rec2.Trace()
		if len(replayed.Events) != len(recorded.Events) {
			t.Fatalf("event counts differ: replay %d, recorded %d", len(replayed.Events), len(recorded.Events))
		}
		for i := range recorded.Events {
			if replayed.Events[i] != recorded.Events[i] {
				t.Fatalf("event %d differs:\nreplay   %+v\nrecorded %+v", i, replayed.Events[i], recorded.Events[i])
			}
		}
		if repRes.TotalBytes != recRes.TotalBytes || repRes.SimTime != recRes.SimTime ||
			repRes.FinalAccuracy != recRes.FinalAccuracy {
			t.Fatalf("replay diverged: (%d, %v, %v) vs (%d, %v, %v)",
				repRes.TotalBytes, repRes.SimTime, repRes.FinalAccuracy,
				recRes.TotalBytes, recRes.SimTime, recRes.FinalAccuracy)
		}
		if len(repRes.Rounds) != len(recRes.Rounds) {
			t.Fatalf("row counts differ: %d vs %d", len(repRes.Rounds), len(recRes.Rounds))
		}
		for i := range recRes.Rounds {
			a, b := recRes.Rounds[i], repRes.Rounds[i]
			if !metricsEqual(a, b) || a.Epoch != b.Epoch || a.SpectralGap != b.SpectralGap ||
				a.NeighborTurnover != b.NeighborTurnover {
				t.Fatalf("row %d differs: %+v vs %+v", i, b, a)
			}
		}
	}
}

// TestAsyncDynTopoParallelismInvariance: parallel execution of an
// epoch-rotated run (with churn and stragglers in play) must be bit-identical
// to serial — same event trace, ledger, rows, and mixing metrics.
func TestAsyncDynTopoParallelismInvariance(t *testing.T) {
	capture := func(parallelism int) capturedRun {
		var evs []eventKey
		eng := dynEngineFor(t, algoJWINS, 10, 0.05, func(cfg *AsyncConfig) {
			cfg.Parallelism = parallelism
			cfg.EvalEvery = 5
			cfg.Het = Heterogeneity{ComputeSpread: 0.5, BandwidthSpread: 0.4, Seed: 5}
			cfg.Churn = GenerateChurn(8, 0.25, 0.02, 0.2, 0.1, 77)
			cfg.DropProb = 0.1
			cfg.FaultSeed = 3
			cfg.OnEvent = func(ev Event) {
				evs = append(evs, eventKey{ev.Time, ev.Seq, ev.Kind, ev.Node, ev.From, ev.Iter, ev.Dropped})
			}
		})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return capturedRun{trace: evs, result: res}
	}
	ref := capture(1)
	sawEpoch := false
	for _, ev := range ref.trace {
		if ev.Kind == EventEpoch {
			sawEpoch = true
		}
	}
	if !sawEpoch {
		t.Fatal("no epoch events in the reference trace")
	}
	for _, p := range parallelismLevels()[1:] {
		got := capture(p)
		assertRunsIdentical(t, "dyntopo", ref, got, p)
		for i := range ref.result.Rounds {
			a, b := ref.result.Rounds[i], got.result.Rounds[i]
			if a.Epoch != b.Epoch || a.SpectralGap != b.SpectralGap || a.NeighborTurnover != b.NeighborTurnover {
				t.Fatalf("parallelism %d row %d mixing metrics differ: %+v vs %+v", p, i, b, a)
			}
		}
	}
}

// TestAsyncEpochChurnBoundaryCrossing: churn landing exactly on an epoch
// boundary (the SetLive-races-rotation scenario) must neither deadlock nor
// lose rows, whichever side of the boundary each event processes on.
func TestAsyncEpochChurnBoundaryCrossing(t *testing.T) {
	const epochSec = 0.05
	res, err := dynEngineFor(t, algoFull, 12, epochSec, func(cfg *AsyncConfig) {
		cfg.Churn = []ChurnEvent{
			{Time: 1 * epochSec, Node: 2, Join: false}, // leave exactly on boundary 1
			{Time: 2 * epochSec, Node: 2, Join: true},  // rejoin exactly on boundary 2
			{Time: 2 * epochSec, Node: 5, Join: false},
			{Time: 3.5 * epochSec, Node: 5, Join: true},
		}
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 12 {
		t.Fatalf("completed %d/12 rows", len(res.Rounds))
	}
	if math.IsNaN(res.FinalAccuracy) {
		t.Fatal("NaN accuracy")
	}
}

// TestAsyncReplayEpochMismatch: replaying a rotated trace needs a matching
// engine topology; mismatched epoch lengths and static engines are typed
// configuration errors, not silent wrong runs.
func TestAsyncReplayEpochMismatch(t *testing.T) {
	const rounds = 6
	const epochSec = 0.06
	var rec *trace.Recorder
	eng := dynEngineFor(t, algoFull, rounds, epochSec, func(cfg *AsyncConfig) {
		rec = trace.NewRecorder(trace.Header{
			Nodes: 8, Rounds: rounds, Source: trace.SourceSim, Policy: trace.PolicyBarrier,
			Meta: map[string]string{"epoch_sec": strconv.FormatFloat(epochSec, 'g', -1, 64)},
		})
		cfg.Record = rec
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	// Wrong epoch length (header meta mismatch).
	rp, err := trace.NewReplayer(rec.Trace())
	if err != nil {
		t.Fatal(err)
	}
	wrongLen := dynEngineFor(t, algoFull, rounds, 0.1, func(cfg *AsyncConfig) { cfg.Replay = rp })
	if _, err := wrongLen.Run(); !errors.Is(err, ErrReplayConfig) {
		t.Fatalf("mismatched epoch length: got %v, want ErrReplayConfig", err)
	}

	// Static engine fed a rotated trace (no meta, rotation events only).
	headerless := *rec.Trace()
	headerless.Header.Meta = nil
	rp2, err := trace.NewReplayer(&headerless)
	if err != nil {
		t.Fatal(err)
	}
	static := asyncEngineFor(t, algoFull, rounds, func(cfg *AsyncConfig) { cfg.Replay = rp2 })
	if _, err := static.Run(); !errors.Is(err, ErrReplayConfig) {
		t.Fatalf("rotated trace into static engine: got %v, want ErrReplayConfig", err)
	}
}

// TestAsyncRejectsPerRoundDynamic: the old silent round-0 pin is now a typed
// rejection pointing at the EpochProvider wrapper.
func TestAsyncRejectsPerRoundDynamic(t *testing.T) {
	const n = 8
	ds, parts := buildTask(t, n, 42)
	nodes := buildNodes(t, algoFull, ds, parts, 7)
	eng := &AsyncEngine{
		Nodes:    nodes,
		Topology: topology.NewDynamic(n, 4, vec.NewRNG(9)),
		TestSet:  ds,
		Config:   AsyncConfig{Config: Config{Rounds: 3}},
	}
	if _, err := eng.Run(); !errors.Is(err, ErrUnsupportedTopology) {
		t.Fatalf("per-round Dynamic accepted by async engine: %v", err)
	}
}

// TestAsyncStaticRunsReportMixing: even without rotation, async results carry
// the (constant) spectral gap of the pinned graph, and zero turnover.
func TestAsyncStaticRunsReportMixing(t *testing.T) {
	res := runAsync(t, algoFull, 5, nil)
	if res.Epochs != 1 {
		t.Fatalf("static run counted %d epochs, want 1", res.Epochs)
	}
	if res.SpectralGapMean <= 0 || res.SpectralGapMean > 1 {
		t.Fatalf("static spectral gap %v outside (0,1]", res.SpectralGapMean)
	}
	if res.TurnoverMean != 0 {
		t.Fatalf("static run reported turnover %v", res.TurnoverMean)
	}
	for _, rm := range res.Rounds {
		if rm.Epoch != 0 || rm.NeighborTurnover != 0 {
			t.Fatalf("static row carries rotation state: %+v", rm)
		}
		if rm.SpectralGap != res.SpectralGapMean {
			t.Fatalf("static row gap %v != run gap %v", rm.SpectralGap, res.SpectralGapMean)
		}
	}
}
