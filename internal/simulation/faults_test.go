package simulation

import (
	"math"
	"testing"

	"repro/internal/topology"
	"repro/internal/vec"
)

// runWithFaults reruns the standard 8-node task with failure injection.
func runWithFaults(t *testing.T, kind algo, rounds int, dropProb, offlineProb float64) *Result {
	t.Helper()
	const n = 8
	ds, parts := buildTask(t, n, 42)
	nodes := buildNodes(t, kind, ds, parts, 7)
	g, err := topology.Regular(n, 4, vec.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{
		Nodes:    nodes,
		Topology: topology.NewStatic(g),
		TestSet:  ds,
		Config: Config{
			Rounds: rounds, EvalEvery: rounds, Parallelism: 2,
			DropProb: dropProb, OfflineProb: offlineProb, FaultSeed: 1,
		},
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestJWINSSurvivesMessageDrops: with 20% message loss, partial averaging
// renormalizes over the senders that arrived, so learning still works.
func TestJWINSSurvivesMessageDrops(t *testing.T) {
	res := runWithFaults(t, algoJWINS, 30, 0.2, 0)
	if res.FinalAccuracy < 0.55 {
		t.Fatalf("JWINS with 20%% drops reached only %.2f accuracy", res.FinalAccuracy)
	}
}

// TestFullSharingSurvivesChurn: with nodes dropping out of whole rounds,
// D-PSGD still converges (the paper's "flexible to nodes leaving/joining").
func TestFullSharingSurvivesChurn(t *testing.T) {
	res := runWithFaults(t, algoFull, 30, 0, 0.15)
	if res.FinalAccuracy < 0.55 {
		t.Fatalf("full-sharing with 15%% churn reached only %.2f accuracy", res.FinalAccuracy)
	}
}

// TestJWINSSurvivesChurnAndDrops: both faults at once.
func TestJWINSSurvivesChurnAndDrops(t *testing.T) {
	res := runWithFaults(t, algoJWINS, 30, 0.1, 0.1)
	if res.FinalAccuracy < 0.5 {
		t.Fatalf("JWINS with combined faults reached only %.2f accuracy", res.FinalAccuracy)
	}
}

// TestChocoDegradesUnderChurn documents the contrast the paper draws:
// CHOCO's error-feedback replicas desynchronize when messages are lost, so
// it should do clearly worse than JWINS under the same fault load.
func TestChocoDegradesUnderChurn(t *testing.T) {
	choco := runWithFaults(t, algoChoco, 30, 0.25, 0)
	jwins := runWithFaults(t, algoJWINS, 30, 0.25, 0)
	t.Logf("25%% drops: choco %.2f vs jwins %.2f", choco.FinalAccuracy, jwins.FinalAccuracy)
	if choco.FinalAccuracy > jwins.FinalAccuracy+0.05 {
		t.Fatalf("expected CHOCO (%.2f) to degrade at least as much as JWINS (%.2f) under drops",
			choco.FinalAccuracy, jwins.FinalAccuracy)
	}
}

// TestFaultsAreDeterministic: same fault seed, same result.
func TestFaultsAreDeterministic(t *testing.T) {
	a := runWithFaults(t, algoJWINS, 6, 0.3, 0.1)
	b := runWithFaults(t, algoJWINS, 6, 0.3, 0.1)
	if a.TotalBytes != b.TotalBytes {
		t.Fatalf("fault runs differ: %d vs %d bytes", a.TotalBytes, b.TotalBytes)
	}
}

// TestDropsReduceBytes: dropped messages are paid by the sender, but offline
// nodes send nothing, so heavy churn must reduce total traffic.
func TestDropsReduceBytes(t *testing.T) {
	clean := runWithFaults(t, algoFull, 10, 0, 0)
	churned := runWithFaults(t, algoFull, 10, 0, 0.3)
	if churned.TotalBytes >= clean.TotalBytes {
		t.Fatalf("churned run sent %d bytes >= clean %d", churned.TotalBytes, clean.TotalBytes)
	}
}

// TestAsyncFaultMatrix is the event-driven counterpart of the coin-flip fault
// tests above: churn traces, straggler tails, and in-flight drops, table
// driven across algorithms and severities. Each scenario must finish its full
// iteration budget and stay above a floor accuracy (or, for the adversarial
// CHOCO rows, is only required to complete without NaNs — the degradation
// contrast itself is asserted by TestAsyncChocoVsJWINSUnderChurn).
func TestAsyncFaultMatrix(t *testing.T) {
	const rounds = 30
	cases := []struct {
		name     string
		kind     algo
		churn    float64 // fraction of nodes cycling out and back
		compute  float64 // lognormal sigma on per-step compute time
		drop     float64 // per-message drop probability
		gossip   bool
		minAcc   float64 // 0 = only require completion
		wantRows int
	}{
		{name: "jwins/light-churn", kind: algoJWINS, churn: 0.15, minAcc: 0.5, wantRows: rounds},
		{name: "jwins/heavy-churn", kind: algoJWINS, churn: 0.4, minAcc: 0.45, wantRows: rounds},
		{name: "jwins/stragglers", kind: algoJWINS, compute: 1.2, minAcc: 0.5, wantRows: rounds},
		{name: "jwins/churn+stragglers+drops", kind: algoJWINS, churn: 0.25, compute: 0.8, drop: 0.1, minAcc: 0.45, wantRows: rounds},
		{name: "full/churn", kind: algoFull, churn: 0.25, minAcc: 0.5, wantRows: rounds},
		{name: "full/gossip-stragglers", kind: algoFull, compute: 0.8, gossip: true, minAcc: 0.45, wantRows: rounds},
		{name: "choco/churn-completes", kind: algoChoco, churn: 0.25, minAcc: 0, wantRows: rounds},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res := runAsync(t, tc.kind, rounds, func(cfg *AsyncConfig) {
				if tc.churn > 0 {
					cfg.Churn = GenerateChurn(8, tc.churn, 0.05, 0.5, 0.2, 17)
				}
				if tc.compute > 0 {
					cfg.Het = Heterogeneity{ComputeSpread: tc.compute, Seed: 19}
				}
				cfg.DropProb = tc.drop
				cfg.FaultSeed = 23
				cfg.Gossip = tc.gossip
			})
			if len(res.Rounds) != tc.wantRows {
				t.Fatalf("completed %d/%d rows", len(res.Rounds), tc.wantRows)
			}
			if math.IsNaN(res.FinalAccuracy) {
				t.Fatal("run produced NaN accuracy")
			}
			if tc.minAcc > 0 && res.FinalAccuracy < tc.minAcc {
				t.Fatalf("accuracy %.2f below floor %.2f", res.FinalAccuracy, tc.minAcc)
			}
		})
	}
}

// TestAsyncChocoVsJWINSUnderChurn documents the paper's flexibility contrast
// under the event-driven scheduler: when nodes leave and rejoin, CHOCO's
// error-feedback replicas desynchronize while JWINS's partial-sharing
// averaging renormalizes, so CHOCO must not come out meaningfully ahead.
func TestAsyncChocoVsJWINSUnderChurn(t *testing.T) {
	churn := func(cfg *AsyncConfig) {
		cfg.Churn = GenerateChurn(8, 0.33, 0.05, 0.5, 0.25, 29)
	}
	jwins := runAsync(t, algoJWINS, 30, churn)
	choco := runAsync(t, algoChoco, 30, churn)
	t.Logf("async churn: jwins %.2f vs choco %.2f", jwins.FinalAccuracy, choco.FinalAccuracy)
	if choco.FinalAccuracy > jwins.FinalAccuracy+0.05 {
		t.Fatalf("expected CHOCO (%.2f) to degrade at least as much as JWINS (%.2f) under churn",
			choco.FinalAccuracy, jwins.FinalAccuracy)
	}
}
