// roundio.go is the I/O layer shared by the synchronous round engine and the
// event-driven async scheduler: per-node train+share execution, cumulative
// byte accounting, and fleet evaluation. Both engines express their schedules
// in terms of these primitives so that byte ledgers and metrics stay
// comparable across execution modes; both fan compute out on the worker pool
// in pool.go.
package simulation

import (
	"math"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/transport"
)

// byteLedger accumulates the cumulative model/metadata byte split. Senders
// pay for every neighbor copy (payload + framing), mirroring the paper's
// per-node uplink accounting.
type byteLedger struct {
	total, model, meta int64
}

// addSend charges one sender for `receivers` copies of a payload and returns
// the bytes charged.
func (l *byteLedger) addSend(bd codec.ByteBreakdown, payloadLen int, receivers int64) int64 {
	sent := receivers * int64(payloadLen+transport.FrameOverhead)
	l.total += sent
	l.model += receivers * int64(bd.Model)
	l.meta += receivers * int64(bd.Meta+transport.FrameOverhead)
	return sent
}

// trainShare runs one node's local-training phase and builds its broadcast
// payload for the given round/iteration.
func trainShare(nd core.Node, round int) (loss float64, payload []byte, bd codec.ByteBreakdown, err error) {
	loss = nd.LocalTrain()
	payload, bd, err = nd.Share(round)
	return loss, payload, bd, err
}

// evaluateNodesOn returns mean test loss and accuracy over the first k nodes
// (k capped by cfg.EvalNodes when set), fanned out on the given pool.
func evaluateNodesOn(p *computePool, nodes []core.Node, testSet *datasets.Dataset, cfg Config) (loss, acc float64) {
	k := len(nodes)
	if cfg.EvalNodes > 0 && cfg.EvalNodes < k {
		k = cfg.EvalNodes
	}
	lossSum := make([]float64, k)
	accSum := make([]float64, k)
	_ = p.forEach(k, func(i int) error {
		l, a := datasets.Evaluate(testSet, nodes[i].Model(), cfg.EvalBatch, cfg.EvalMaxSamples)
		lossSum[i], accSum[i] = l, a
		return nil
	})
	return mean(lossSum), mean(accSum)
}

// evaluateNodes is evaluateNodesOn with a transient pool, for callers outside
// an engine run.
func evaluateNodes(nodes []core.Node, testSet *datasets.Dataset, cfg Config) (loss, acc float64) {
	p := newComputePool(cfg.Parallelism)
	defer p.close()
	return evaluateNodesOn(p, nodes, testSet, cfg)
}

// meanAlphaOf averages LastAlpha over JWINS nodes (NaN if none) — the
// Figure 3 sharing-fraction series.
func meanAlphaOf(nodes []core.Node) float64 {
	var sum float64
	count := 0
	for _, nd := range nodes {
		if j, ok := nd.(*core.JWINSNode); ok {
			sum += j.LastAlpha
			count++
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / float64(count)
}

// mean averages the non-NaN entries (offline nodes report NaN losses).
func mean(x []float64) float64 {
	var s float64
	count := 0
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		s += v
		count++
	}
	if count == 0 {
		return math.NaN()
	}
	return s / float64(count)
}

// localSteps peeks the per-round local step count for the time model.
func localSteps(n core.Node) int {
	type stepper interface{ LocalStepCount() int }
	if s, ok := n.(stepper); ok {
		return s.LocalStepCount()
	}
	return 1
}
