// roundio.go is the I/O layer shared by the synchronous round engine and the
// event-driven async scheduler: per-node train+share execution, cumulative
// byte accounting, and fleet evaluation. Both engines express their schedules
// in terms of these primitives so that byte ledgers and metrics stay
// comparable across execution modes; both fan compute out on the worker pool
// in pool.go.
package simulation

import (
	"math"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/transport"
	"repro/internal/vec"
)

// evalSeedSalt decorrelates evaluation sampling from the other consumers of
// the run seed ("eval").
const evalSeedSalt = 0x6576616c

// byteLedger accumulates the cumulative model/metadata byte split. Senders
// pay for every neighbor copy (payload + framing), mirroring the paper's
// per-node uplink accounting.
type byteLedger struct {
	total, model, meta int64
}

// addSend charges one sender for `receivers` copies of a payload and returns
// the bytes charged.
func (l *byteLedger) addSend(bd codec.ByteBreakdown, payloadLen int, receivers int64) int64 {
	sent := receivers * int64(payloadLen+transport.FrameOverhead)
	l.total += sent
	l.model += receivers * int64(bd.Model)
	l.meta += receivers * int64(bd.Meta+transport.FrameOverhead)
	return sent
}

// trainShare runs one node's local-training phase and builds its broadcast
// payload for the given round/iteration.
func trainShare(nd core.Node, round int) (loss float64, payload []byte, bd codec.ByteBreakdown, err error) {
	loss = nd.LocalTrain()
	payload, bd, err = nd.Share(round)
	return loss, payload, bd, err
}

// evalSampler produces the rotating subsets of sampled evaluation
// (Config.EvalSample). Rows score successive windows of a per-cycle random
// permutation: window w of cycle c covers perm_c[w*s : (w+1)*s], the window
// advances every EvalRotate eval rows, and a fresh seeded permutation is
// drawn once every ceil(n/s) windows — so every node is visited within one
// cycle and the visit order reshuffles across cycles. Subsets depend only on
// the config and the row's round, never on execution order, which keeps
// sampled runs bit-identical across parallelism levels. The sampler caches
// the cycle permutation so per-row subset construction is O(EvalSample).
type evalSampler struct {
	n      int
	cfg    Config
	cycle  int
	perm   []int
	subset []int
}

// newEvalSampler returns nil (sampling off) unless cfg.EvalSample is set and
// actually below the fleet size.
func newEvalSampler(n int, cfg Config) *evalSampler {
	if cfg.EvalSample <= 0 || cfg.EvalSample >= n {
		return nil
	}
	return &evalSampler{n: n, cfg: cfg, cycle: -1}
}

// subsetFor returns the sampled node indices for the row emitted at round, or
// nil when sampling is off (nil receiver). Valid for every round — alpha
// summaries reuse the subset on non-eval rows. The returned slice is reused
// by the next call; callers must not retain it.
func (s *evalSampler) subsetFor(round int) []int {
	if s == nil {
		return nil
	}
	sz := s.cfg.EvalSample
	windows := (s.n + sz - 1) / sz
	// Step by the eval ordinal (round/EvalEvery), not the raw round: eval
	// rows land every EvalEvery rounds, and stepping by round would skip
	// windows between them, breaking the coverage bound.
	step := (round / s.cfg.EvalEvery) / s.cfg.EvalRotate
	cycle, win := step/windows, step%windows
	if cycle != s.cycle {
		rng := vec.NewRNG(s.cfg.EvalSeed ^ evalSeedSalt ^ uint64(cycle)*0x9e3779b97f4a7c15)
		s.perm = rng.Perm(s.n)
		s.cycle = cycle
	}
	if s.subset == nil {
		s.subset = make([]int, sz)
	}
	for i := range s.subset {
		// The last window wraps to the permutation's head; s < n keeps the
		// wrapped entries distinct from the window's own.
		s.subset[i] = s.perm[(win*sz+i)%s.n]
	}
	return s.subset
}

// evaluateNodesOn returns mean test loss and accuracy fanned out on the given
// pool. A non-nil subset evaluates exactly those node indices (sampled
// rotating evaluation); subset entries outside live (when non-nil) contribute
// NaN and drop out of the mean, so offline nodes don't skew sampled rows. A
// nil subset is exact evaluation over every node — or, when cfg.EvalNodes
// caps it, over a seeded uniform k-subset fixed for the run; exact paths
// ignore live, preserving the historical behavior of scoring offline nodes'
// retained models.
func evaluateNodesOn(p *computePool, nodes []core.Node, testSet *datasets.Dataset, cfg Config, subset []int, live []bool) (loss, acc float64) {
	if subset == nil {
		live = nil
		n := len(nodes)
		if cfg.EvalNodes > 0 && cfg.EvalNodes < n {
			rng := vec.NewRNG(cfg.EvalSeed ^ evalSeedSalt)
			subset = rng.SampleWithoutReplacement(n, cfg.EvalNodes)
		}
	}
	k := len(nodes)
	if subset != nil {
		k = len(subset)
	}
	lossSum := make([]float64, k)
	accSum := make([]float64, k)
	_ = p.forEach(k, func(i int) error {
		j := i
		if subset != nil {
			j = subset[i]
		}
		if live != nil && !live[j] {
			lossSum[i], accSum[i] = math.NaN(), math.NaN()
			return nil
		}
		l, a := datasets.Evaluate(testSet, nodes[j].Model(), cfg.EvalBatch, cfg.EvalMaxSamples)
		lossSum[i], accSum[i] = l, a
		return nil
	})
	return mean(lossSum), mean(accSum)
}

// evaluateNodes is evaluateNodesOn with a transient pool, for callers outside
// an engine run (sampled configs score the round-0 subset).
func evaluateNodes(nodes []core.Node, testSet *datasets.Dataset, cfg Config) (loss, acc float64) {
	p := newComputePool(cfg.Parallelism)
	defer p.close()
	return evaluateNodesOn(p, nodes, testSet, cfg, newEvalSampler(len(nodes), cfg).subsetFor(0), nil)
}

// meanAlphaOf averages LastAlpha over JWINS nodes (NaN if none) — the
// Figure 3 sharing-fraction series.
func meanAlphaOf(nodes []core.Node) float64 {
	var sum float64
	count := 0
	for _, nd := range nodes {
		if j, ok := nd.(*core.JWINSNode); ok {
			sum += j.LastAlpha
			count++
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / float64(count)
}

// meanAlphaOver is meanAlphaOf restricted to the sampled subset (all nodes
// when subset is nil), keeping row emission O(sample) at 10k nodes.
func meanAlphaOver(nodes []core.Node, subset []int) float64 {
	if subset == nil {
		return meanAlphaOf(nodes)
	}
	var sum float64
	count := 0
	for _, i := range subset {
		if j, ok := nodes[i].(*core.JWINSNode); ok {
			sum += j.LastAlpha
			count++
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / float64(count)
}

// meanOverIdx averages the non-NaN entries of x at the given indices — the
// async engine's sampled-alpha path over its committed per-node alphas.
func meanOverIdx(x []float64, idx []int) float64 {
	var s float64
	count := 0
	for _, i := range idx {
		if math.IsNaN(x[i]) {
			continue
		}
		s += x[i]
		count++
	}
	if count == 0 {
		return math.NaN()
	}
	return s / float64(count)
}

// mean averages the non-NaN entries (offline nodes report NaN losses).
func mean(x []float64) float64 {
	var s float64
	count := 0
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		s += v
		count++
	}
	if count == 0 {
		return math.NaN()
	}
	return s / float64(count)
}

// localSteps peeks the per-round local step count for the time model.
func localSteps(n core.Node) int {
	type stepper interface{ LocalStepCount() int }
	if s, ok := n.(stepper); ok {
		return s.LocalStepCount()
	}
	return 1
}
