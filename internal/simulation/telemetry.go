// telemetry.go wires the zero-allocation metrics registry into the async
// scheduler's hot path. Everything here is strictly observational: no
// instrumented code path reads a metric back, so the scheduled state — and
// with it the record→replay and parallelism-invariance parity guarantees —
// is bit-identical with telemetry on or off. What MAY vary with parallelism
// is the telemetry itself (speculation hit rates depend on worker timing
// only in that a hit is a hit at any P; queue depths and waits are schedule-
// derived and deterministic), which is why snapshots are reported beside
// results, never compared by the determinism suite.
//
// Every operation used per event is a pre-registered atomic (see
// internal/metrics): the ≤4 allocs/event ceiling enforced by
// perf.TestSchedulerAllocationCeiling holds with telemetry enabled, and that
// test runs with telemetry on to prove it.
package simulation

import (
	"strings"

	"repro/internal/metrics"
)

// telemetry metric names (Prometheus families). Exported as constants so
// CSV/report consumers key snapshots without typo drift.
const (
	// MetricEvents counts processed scheduler events, labeled by kind.
	MetricEvents = "jwins_engine_events_total"
	// MetricQueueDepth is the event-queue depth observed at each pop.
	MetricQueueDepth = "jwins_engine_queue_depth"
	// MetricBarrierWait is the simulated seconds a node spends blocked on its
	// aggregation policy (broadcast → aggregate), labeled by policy name.
	MetricBarrierWait = "jwins_engine_barrier_wait_seconds"
	// MetricInboxOccupancy is the merged-payload count per aggregation.
	MetricInboxOccupancy = "jwins_engine_inbox_occupancy"
	// MetricSpecHits / MetricSpecMisses count train+share computations that
	// were speculatively dispatched to the pool vs run inline because a churn
	// or evaluation window made speculation unsafe.
	MetricSpecHits   = "jwins_engine_spec_train_hits_total"
	MetricSpecMisses = "jwins_engine_spec_train_misses_total"
	// MetricPoolTasks / MetricPoolInline count pool submissions that went to
	// a worker vs ran inline (serial mode) — the pool utilization split.
	MetricPoolTasks  = "jwins_engine_pool_tasks_total"
	MetricPoolInline = "jwins_engine_pool_inline_total"
	// MetricSends counts point-to-point payload copies; the byte counters
	// split the ledger by codec stage (model coefficients vs metadata+framing).
	MetricSends      = "jwins_engine_sends_total"
	MetricBytesTotal = "jwins_engine_bytes_total"
	MetricBytesModel = "jwins_engine_model_bytes_total"
	MetricBytesMeta  = "jwins_engine_meta_bytes_total"
	// MetricAggregations counts committed aggregations; MetricRows emitted
	// result rows.
	MetricAggregations = "jwins_engine_aggregations_total"
	MetricRows         = "jwins_engine_rows_total"
	// MetricDecodeHits / MetricDecodeMisses count payload decodes served from
	// the fleet-shared decoded-payload cache vs decoded fresh. Totals depend
	// on pool interleaving (which recipient reaches a broadcast first), so
	// they are telemetry only — never part of a determinism comparison.
	MetricDecodeHits   = "jwins_engine_decode_cache_hits_total"
	MetricDecodeMisses = "jwins_engine_decode_cache_misses_total"
)

// eventKindLabels maps EventKind to its Prometheus label value. Indexed by
// the EventKind constants; keep in sync with events.go.
var eventKindLabels = [...]string{
	EventTrainDone: `kind="train_done"`,
	EventArrival:   `kind="arrival"`,
	EventLeave:     `kind="leave"`,
	EventJoin:      `kind="join"`,
	EventEpoch:     `kind="epoch"`,
	EventDeadline:  `kind="deadline"`,
}

// Telemetry bundles the engine's pre-registered metrics. Create one with
// NewTelemetry, hand it to AsyncConfig.Telemetry, and either serve its
// Registry over HTTP (metrics.Serve) for live scraping or read the Snapshot
// the run leaves in Result.Telemetry. A Telemetry may be reused across runs;
// counters then accumulate (call Registry().Reset() between runs for
// per-run numbers).
type Telemetry struct {
	reg *metrics.Registry

	events         [len(eventKindLabels)]*metrics.Counter
	queueDepth     *metrics.Histogram
	inboxOccupancy *metrics.Histogram
	specHits       *metrics.Counter
	specMisses     *metrics.Counter
	poolTasks      *metrics.Counter
	poolInline     *metrics.Counter
	sends          *metrics.Counter
	bytesTotal     *metrics.Counter
	bytesModel     *metrics.Counter
	bytesMeta      *metrics.Counter
	aggregations   *metrics.Counter
	rows           *metrics.Counter
	decodeHits     *metrics.Counter
	decodeMisses   *metrics.Counter
}

// NewTelemetry builds a Telemetry on a fresh registry.
func NewTelemetry() *Telemetry {
	t := &Telemetry{reg: metrics.New()}
	for k, label := range eventKindLabels {
		t.events[k] = t.reg.CounterLabeled(MetricEvents, label, "processed scheduler events by kind")
	}
	t.queueDepth = t.reg.Histogram(MetricQueueDepth, "event-queue depth at pop",
		metrics.ExpBuckets(1, 2, 16)) // 1 .. 32768
	t.inboxOccupancy = t.reg.Histogram(MetricInboxOccupancy, "merged payloads per aggregation",
		metrics.ExpBuckets(1, 2, 9)) // 1 .. 256 (max graph degree in practice)
	t.specHits = t.reg.Counter(MetricSpecHits, "speculative train dispatches committed")
	t.specMisses = t.reg.Counter(MetricSpecMisses, "train computations forced inline (churn/eval window)")
	t.poolTasks = t.reg.Counter(MetricPoolTasks, "tasks dispatched to pool workers")
	t.poolInline = t.reg.Counter(MetricPoolInline, "tasks run inline (serial pool mode)")
	t.sends = t.reg.Counter(MetricSends, "point-to-point payload copies sent")
	t.bytesTotal = t.reg.Counter(MetricBytesTotal, "cumulative bytes on the wire (payload+framing)")
	t.bytesModel = t.reg.Counter(MetricBytesModel, "cumulative model-coefficient bytes")
	t.bytesMeta = t.reg.Counter(MetricBytesMeta, "cumulative metadata+framing bytes")
	t.aggregations = t.reg.Counter(MetricAggregations, "committed aggregations")
	t.rows = t.reg.Counter(MetricRows, "emitted result rows")
	t.decodeHits = t.reg.Counter(MetricDecodeHits, "payload decodes served from the shared cache")
	t.decodeMisses = t.reg.Counter(MetricDecodeMisses, "payload decodes performed fresh")
	return t
}

// Registry exposes the underlying registry, e.g. for metrics.Serve or a
// custom exposition.
func (t *Telemetry) Registry() *metrics.Registry { return t.reg }

// Snapshot returns a point-in-time copy of every metric.
func (t *Telemetry) Snapshot() *metrics.Snapshot { return t.reg.Snapshot() }

// WaitKey returns the snapshot key of the barrier-wait histogram for the
// given policy name (AggregationPolicy.Name of the run's policy).
func WaitKey(policy string) string {
	return MetricBarrierWait + `{policy="` + policy + `"}`
}

// TelemetrySummary distills a snapshot into the headline scalars experiment
// CSVs and perf reports carry alongside accuracy and bytes.
type TelemetrySummary struct {
	QueueP95      float64 // event-queue depth at pop, 95th percentile
	WaitP95       float64 // simulated policy-wait seconds, 95th percentile
	SpecHitRate   float64 // speculative train dispatches committed / all dispatches; 0 when none ran
	DecodeHitRate float64 // decode-cache hits / all payload decodes; 0 when none ran
}

// Summarize extracts the summary from a snapshot. The wait series is matched
// by family prefix — a run registers exactly one, named for its policy — and
// when several policies accumulated into a reused registry, the busiest
// series wins. A nil snapshot yields zeros.
func Summarize(snap *metrics.Snapshot) TelemetrySummary {
	var s TelemetrySummary
	if snap == nil {
		return s
	}
	if h, ok := snap.Histogram(MetricQueueDepth); ok && h.Count > 0 {
		s.QueueP95 = h.Quantile(0.95)
	}
	var wait metrics.HistogramSnapshot
	for key, h := range snap.Histograms {
		if strings.HasPrefix(key, MetricBarrierWait+"{") && h.Count > wait.Count {
			wait = h
		}
	}
	if wait.Count > 0 {
		s.WaitP95 = wait.Quantile(0.95)
	}
	hits := snap.Counter(MetricSpecHits)
	misses := snap.Counter(MetricSpecMisses)
	if hits+misses > 0 {
		s.SpecHitRate = float64(hits) / float64(hits+misses)
	}
	dh := snap.Counter(MetricDecodeHits)
	dm := snap.Counter(MetricDecodeMisses)
	if dh+dm > 0 {
		s.DecodeHitRate = float64(dh) / float64(dh+dm)
	}
	return s
}

// waitHistogram registers (or fetches) the per-policy barrier-wait series.
// Called once per Run at setup, never on the hot path.
func (t *Telemetry) waitHistogram(policy string) *metrics.Histogram {
	return t.reg.HistogramLabeled(MetricBarrierWait, `policy="`+policy+`"`,
		"simulated seconds blocked on the aggregation policy",
		[]float64{1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30})
}
