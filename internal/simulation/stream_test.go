package simulation

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/trace"
)

// streamMut is the shared run configuration of the streaming-parity tests:
// stragglers, churn, and message drops, so the streamed schedule covers every
// event kind.
func streamMut(cfg *AsyncConfig) {
	cfg.Het = Heterogeneity{ComputeSpread: 0.4, BandwidthSpread: 0.3, LatencySpread: 0.2, Seed: 5}
	cfg.Churn = GenerateChurn(8, 0.25, 0.02, 0.2, 0.1, 77)
	cfg.DropProb = 0.1
	cfg.FaultSeed = 3
}

// TestStreamRecorderEngineParity: recording a run through a StreamRecorder
// must produce byte-for-byte the file the in-memory Recorder serializes to —
// and reading the stream back must replay into the identical schedule. This
// is the record→stream→read→replay loop the 1024-node arms rely on, where
// only the streaming sink's bounded memory is viable.
func TestStreamRecorderEngineParity(t *testing.T) {
	const rounds = 10
	header := trace.Header{Nodes: 8, Rounds: rounds, Source: trace.SourceSim, Policy: trace.PolicyBarrier}

	// Reference: in-memory recorder, serialized after the fact.
	rec := trace.NewRecorder(header)
	eng := asyncEngineFor(t, algoJWINS, rounds, func(cfg *AsyncConfig) {
		streamMut(cfg)
		cfg.Record = rec
	})
	recRes, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	for _, binary := range []bool{false, true} {
		name := "jsonl"
		if binary {
			name = "binary"
		}
		t.Run(name, func(t *testing.T) {
			var want bytes.Buffer
			if binary {
				err = trace.WriteBinary(&want, rec.Trace())
			} else {
				err = trace.Write(&want, rec.Trace())
			}
			if err != nil {
				t.Fatal(err)
			}

			// Same run, streamed as it executes.
			var got bytes.Buffer
			sr, err := trace.NewStreamRecorder(&got, header, binary)
			if err != nil {
				t.Fatal(err)
			}
			eng2 := asyncEngineFor(t, algoJWINS, rounds, func(cfg *AsyncConfig) {
				streamMut(cfg)
				cfg.Record = sr
			})
			if _, err := eng2.Run(); err != nil {
				t.Fatal(err)
			}
			if err := sr.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("streamed recording differs from serialized in-memory recording (%d vs %d bytes)",
					got.Len(), want.Len())
			}

			// Read the stream back and replay it as the authoritative schedule.
			decoded, err := trace.Read(bytes.NewReader(got.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			rp, err := trace.NewReplayer(decoded)
			if err != nil {
				t.Fatal(err)
			}
			rec2 := trace.NewRecorder(decoded.Header)
			eng3 := asyncEngineFor(t, algoJWINS, rounds, func(cfg *AsyncConfig) {
				cfg.Replay = rp
				cfg.Record = rec2
			})
			repRes, err := eng3.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(rec2.Trace().Events) != len(rec.Trace().Events) {
				t.Fatalf("replay produced %d events, recorded %d", len(rec2.Trace().Events), len(rec.Trace().Events))
			}
			for i := range rec.Trace().Events {
				if rec2.Trace().Events[i] != rec.Trace().Events[i] {
					t.Fatalf("event %d differs after stream round trip", i)
				}
			}
			if repRes.TotalBytes != recRes.TotalBytes || repRes.SimTime != recRes.SimTime {
				t.Fatalf("replay ledger/time (%d, %v) differ from recorded (%d, %v)",
					repRes.TotalBytes, repRes.SimTime, recRes.TotalBytes, recRes.SimTime)
			}
		})
	}
}

// TestMixingEverySamples: with MixingEvery = 2, only epochs at even indices
// carry a finite spectral gap (others are NaN in rows), the Result mean
// covers sampled epochs only, and the schedule itself — which must not
// depend on instrumentation — is unchanged from the every-epoch run.
func TestMixingEverySamples(t *testing.T) {
	const (
		rounds   = 12
		epochSec = 0.05
	)
	run := func(every int) (*Result, []Event) {
		var evs []Event
		eng := dynEngineFor(t, algoJWINS, rounds, epochSec, func(cfg *AsyncConfig) {
			cfg.MixingEvery = every
			cfg.OnEvent = func(ev Event) { evs = append(evs, ev) }
		})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, evs
	}

	full, fullEvs := run(0)
	sampled, sampledEvs := run(2)

	// Instrumentation must not perturb the schedule.
	if len(fullEvs) != len(sampledEvs) {
		t.Fatalf("event counts differ: %d vs %d", len(fullEvs), len(sampledEvs))
	}
	for i := range fullEvs {
		a, b := fullEvs[i], sampledEvs[i]
		if a.Time != b.Time || a.Seq != b.Seq || a.Kind != b.Kind || a.Node != b.Node ||
			a.From != b.From || a.Iter != b.Iter || a.Dropped != b.Dropped {
			t.Fatalf("event %d differs between mixing cadences", i)
		}
	}
	if full.TotalBytes != sampled.TotalBytes || full.SimTime != sampled.SimTime {
		t.Fatalf("ledger/time differ between mixing cadences")
	}

	// Row gaps: finite on sampled epochs, NaN on skipped ones.
	sawNaN, sawFinite := false, false
	for _, rm := range sampled.Rounds {
		if math.IsNaN(rm.SpectralGap) {
			if rm.Epoch%2 == 0 {
				t.Fatalf("row %d (epoch %d): NaN gap on a sampled epoch", rm.Round, rm.Epoch)
			}
			sawNaN = true
		} else {
			if rm.Epoch%2 != 0 {
				t.Fatalf("row %d (epoch %d): finite gap on a skipped epoch", rm.Round, rm.Epoch)
			}
			if rm.SpectralGap <= 0 || rm.SpectralGap > 1 {
				t.Fatalf("row %d: gap %v outside (0,1]", rm.Round, rm.SpectralGap)
			}
			sawFinite = true
		}
	}
	if !sawFinite {
		t.Fatal("no sampled epoch produced a gap")
	}
	if !sawNaN && sampled.Epochs > 1 {
		t.Fatal("no skipped epoch appeared in rows despite multiple epochs")
	}

	if math.IsNaN(sampled.SpectralGapMean) || sampled.SpectralGapMean <= 0 {
		t.Fatalf("sampled gap mean %v", sampled.SpectralGapMean)
	}
	// Turnover is always on, sampling or not.
	if sampled.TurnoverMean != full.TurnoverMean {
		t.Fatalf("turnover differs: %v vs %v", sampled.TurnoverMean, full.TurnoverMean)
	}

	// MixingEvery < 0: never compute; aggregates are NaN, run still works.
	never, _ := run(-1)
	if !math.IsNaN(never.SpectralGapMean) || !math.IsNaN(never.SpectralGapMin) {
		t.Fatalf("never-sampled run reports gaps (%v, %v)", never.SpectralGapMean, never.SpectralGapMin)
	}
	if never.TotalBytes != full.TotalBytes {
		t.Fatalf("disabling mixing changed the ledger")
	}
}
