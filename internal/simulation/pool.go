// pool.go is the bounded deterministic worker pool shared by both engines.
// Compute-heavy node work (local training + payload construction, payload
// decoding + mixing) runs on the pool; everything that determines the event
// schedule, the byte ledger, or the recorded trace stays on the caller's
// goroutine. Determinism therefore does not depend on worker timing: tasks
// only read and write state owned by a single node, tasks of the same node
// are chained in program order, and the engines wait for a task exactly at
// the point where serial execution would have produced its result.
//
// With limit <= 1 the pool degenerates to inline execution at submit time,
// which is the serial reference the parallelism-invariance tests compare
// against.
package simulation

import (
	"sync"

	"repro/internal/metrics"
)

// future is the completion handle of one submitted task. The zero value is
// not usable; tasks create their futures through computePool.submit.
type future struct {
	ch  chan struct{}
	err error // written before ch is closed
}

// closedFutureCh backs the already-completed futures of the inline (serial)
// pool mode, where submit runs the task before returning.
var closedFutureCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// doneFuture is the shared completed-successfully future: inline submissions
// return it instead of allocating a future (and a channel) per task, which
// keeps the serial scheduler's steady state allocation-free.
var doneFuture = &future{ch: closedFutureCh}

// wait blocks until the task has run and returns its error. A nil future
// counts as an already-completed task.
func (f *future) wait() error {
	if f == nil {
		return nil
	}
	<-f.ch
	return f.err
}

// computePool executes tasks on a bounded set of worker goroutines.
type computePool struct {
	limit int
	tasks chan func()
	wg    sync.WaitGroup

	// telPooled/telInline count submissions dispatched to a worker vs run
	// inline — the pool-utilization split. Nil when telemetry is off.
	telPooled *metrics.Counter
	telInline *metrics.Counter
}

// newComputePool starts a pool with the given concurrency limit. limit <= 1
// creates a pool that runs every task inline on the submitting goroutine.
func newComputePool(limit int) *computePool {
	p := &computePool{limit: limit}
	if limit > 1 {
		p.tasks = make(chan func(), 2*limit)
		for i := 0; i < limit; i++ {
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				for fn := range p.tasks {
					fn()
				}
			}()
		}
	}
	return p
}

// close shuts the workers down. Callers must have waited for every submitted
// future first (the engines wait on all node tails before closing), so no
// chained submission can race the close.
func (p *computePool) close() {
	if p.tasks != nil {
		close(p.tasks)
		p.wg.Wait()
	}
}

// submit schedules fn to run after prev completes (prev may be nil) and
// returns its future. If prev failed, fn is skipped and the error propagates
// to the new future, so a node's chain stops at its first failure.
func (p *computePool) submit(prev *future, fn func() error) *future {
	if p.tasks == nil {
		// Inline mode: prev is always complete here because every earlier
		// submission ran inline too, so its error (if any) can propagate by
		// returning prev itself, and a successful run needs no fresh future.
		if p.telInline != nil {
			p.telInline.Inc()
		}
		if prev != nil && prev.err != nil {
			return prev
		}
		if err := fn(); err != nil {
			return &future{ch: closedFutureCh, err: err}
		}
		return doneFuture
	}
	if p.telPooled != nil {
		p.telPooled.Inc()
	}
	f := &future{ch: make(chan struct{})}
	run := func() {
		if prev != nil {
			if err := prev.wait(); err != nil {
				f.err = err
				close(f.ch)
				return
			}
		}
		f.err = fn()
		close(f.ch)
	}
	if prev == nil {
		p.tasks <- run
		return f
	}
	// Chained task: hand the dependency wait to a shim goroutine so a pool
	// worker is never parked on a future it cannot help complete.
	go func() {
		<-prev.ch
		p.tasks <- run
	}()
	return f
}

// submitBatch schedules fn to run after every future in prevs completes and
// returns one future shared by the whole batch. If any dependency failed, fn
// is skipped and the first (lowest-index) error propagates — an error aborts
// the run anyway, so per-member error attribution is not needed. prevs must
// stay unmodified until the returned future completes.
func (p *computePool) submitBatch(prevs []*future, fn func() error) *future {
	if p.tasks == nil {
		// Inline mode: every dependency already ran inline, so its error (if
		// any) is final and can be returned directly.
		if p.telInline != nil {
			p.telInline.Inc()
		}
		for _, prev := range prevs {
			if prev != nil && prev.err != nil {
				return prev
			}
		}
		if err := fn(); err != nil {
			return &future{ch: closedFutureCh, err: err}
		}
		return doneFuture
	}
	if p.telPooled != nil {
		p.telPooled.Inc()
	}
	f := &future{ch: make(chan struct{})}
	run := func() {
		for _, prev := range prevs {
			if prev == nil {
				continue
			}
			if err := prev.wait(); err != nil {
				f.err = err
				close(f.ch)
				return
			}
		}
		f.err = fn()
		close(f.ch)
	}
	// As in submit: dependency waits happen on a shim goroutine so a pool
	// worker is never parked on futures it cannot help complete.
	go func() {
		for _, prev := range prevs {
			if prev != nil {
				<-prev.ch
			}
		}
		p.tasks <- run
	}()
	return f
}

// msgsPool recycles the per-aggregation payload maps of the async scheduler.
// Maps are acquired on the event-loop goroutine and released by pool workers
// after Aggregate consumes them, so access is mutex-guarded. put clears the
// map so recycled maps never pin payload buffers.
type msgsPool struct {
	mu   sync.Mutex
	free []map[int][]byte
}

// get returns an empty map, reusing a recycled one when available.
func (p *msgsPool) get(capHint int) map[int][]byte {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return m
	}
	p.mu.Unlock()
	return make(map[int][]byte, capHint)
}

// put clears m and returns it to the pool.
func (p *msgsPool) put(m map[int][]byte) {
	for k := range m {
		delete(m, k)
	}
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
}

// forEach runs fn(i) for i in [0, n) on the pool and returns the
// lowest-index error (deterministic, unlike first-error-wins collection).
func (p *computePool) forEach(n int, fn func(i int) error) error {
	if p.tasks == nil || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.tasks <- func() {
			defer wg.Done()
			errs[i] = fn(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
