// sharebatch.go routes the async scheduler's speculative train+share
// dispatches through core.SharePipeline: when several plan-sharing JWINS
// nodes chain train-done events, their compute is deferred into a small
// queue and submitted as ONE pooled task that runs every member's local
// training and then a single batched share pass (one cache-blocked DWT
// sweep over all deltas, one over all parameter vectors).
//
// Only the dispatch is batched — never the schedule. Each member's result
// still commits at its own train-done event, exactly where the per-node
// path commits, so the event trace, byte ledger, emitted rows, and every
// per-node observable are bit-identical to ShareBatch=0 at any parallelism
// (the repo's hard invariant, locked by TestShareBatchEngineParity).
//
// Deferral is safe under exactly the per-node speculation predicate
// (specSafe): between enqueue and flush nothing on the serial schedule may
// read or write a queued node's state — churn before the train-done time is
// excluded at enqueue, evaluation rows below the node's iteration cannot be
// emitted while it holds the floor, and the node's own next aggregate needs
// this very train-done to be processed first. Flushing therefore happens at
// three points, all before any member's commit: when the queue reaches the
// configured batch size, once after the schedule is seeded, and in the event
// loop before processing any event at or after the earliest queued member's
// train-done time.
package simulation

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dwt"
)

// specEntry is one deferred speculative dispatch: node's train for iteration
// iter, whose train-done event is scheduled at simulated time t. jn is
// cleared once the entry has been folded into a flush group.
type specEntry struct {
	node int
	iter int
	t    float64
	jn   *core.JWINSNode
	plan *dwt.Plan
}

// shareBatchCtx is the reusable state of one in-flight batched dispatch: the
// pipeline (with its batch scratch), the member list, the dependency futures,
// and the result slices ShareBatch fills. A context is acquired on the event
// loop at flush time and released by the pool worker after the results have
// been copied into the members' trainTask slots, so the free list is
// mutex-guarded (multiple batches can be in flight at once).
type shareBatchCtx struct {
	pipe     core.SharePipeline
	members  []int
	nodes    []*core.JWINSNode
	prevs    []*future
	payloads [][]byte
	bds      []codec.ByteBreakdown
}

// batchCtxPool is the free list of shareBatchCtx values.
type batchCtxPool struct {
	mu   sync.Mutex
	free []*shareBatchCtx
}

// get returns an empty context, reusing a recycled one when available.
func (p *batchCtxPool) get() *shareBatchCtx {
	p.mu.Lock()
	var c *shareBatchCtx
	if n := len(p.free); n > 0 {
		c = p.free[n-1]
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if c == nil {
		return &shareBatchCtx{}
	}
	c.members = c.members[:0]
	c.nodes = c.nodes[:0]
	c.prevs = c.prevs[:0]
	c.payloads = c.payloads[:0]
	c.bds = c.bds[:0]
	return c
}

// put returns c to the free list. Slice contents are left in place (they are
// resliced on the next get); payload references are dropped the next time the
// context is used.
func (p *batchCtxPool) put(c *shareBatchCtx) {
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
}

// enqueueSpec defers node i's speculative dispatch into the share-batch
// queue. Caller has already established specSafe and that jn shares plan.
func (r *asyncRun) enqueueSpec(i, iter int, t float64, jn *core.JWINSNode, plan *dwt.Plan) {
	r.specQueue = append(r.specQueue, specEntry{node: i, iter: iter, t: t, jn: jn, plan: plan})
	if t < r.specDue {
		r.specDue = t
	}
	if len(r.specQueue) >= r.cfg.ShareBatch {
		r.flushSpec()
	}
}

// flushSpec dispatches every queued speculative train+share, grouping
// members by plan in first-appearance order. Singleton groups take the
// per-node reference path; larger groups become one pooled task running all
// members' local training followed by one SharePipeline pass.
func (r *asyncRun) flushSpec() {
	q := r.specQueue
	for s := range q {
		if q[s].jn == nil {
			continue
		}
		if !r.dispatchGroup(q, s) {
			// Degenerate single-member group: the batched machinery would add
			// overhead for nothing, so it runs the per-node path instead.
			r.dispatchSpec(q[s].node, q[s].iter)
			q[s].jn = nil
		}
	}
	r.specQueue = q[:0]
	r.specDue = math.Inf(1)
}

// dispatchGroup collects every queue entry from position s onward that
// shares q[s]'s plan and submits them as one batched task. It reports false
// (and submits nothing) when q[s] is the only member of its group.
func (r *asyncRun) dispatchGroup(q []specEntry, s int) bool {
	plan := q[s].plan
	count := 1
	for j := s + 1; j < len(q); j++ {
		if q[j].jn != nil && q[j].plan == plan {
			count++
		}
	}
	if count == 1 {
		return false
	}
	ctx := r.ctxPool.get()
	for j := s; j < len(q); j++ {
		e := &q[j]
		if e.jn == nil || e.plan != plan {
			continue
		}
		ctx.members = append(ctx.members, e.node)
		ctx.nodes = append(ctx.nodes, e.jn)
		ctx.prevs = append(ctx.prevs, r.tails[e.node])
		ctx.payloads = append(ctx.payloads, nil)
		ctx.bds = append(ctx.bds, codec.ByteBreakdown{})
		tt := &r.trainTasks[e.node]
		tt.loss, tt.payload, tt.bd = 0, nil, codec.ByteBreakdown{}
		e.jn = nil
	}
	fut := r.pool.submitBatch(ctx.prevs, func() error {
		// Per-member training first, then one batched share: identical to the
		// per-node LocalTrain+Share sequence because nodes are independent
		// and ShareBatch is stage-for-stage the per-node Share (see
		// core.SharePipeline's bit-identity contract).
		for _, i := range ctx.members {
			r.trainTasks[i].loss = r.eng.Nodes[i].LocalTrain()
		}
		if err := ctx.pipe.ShareBatch(ctx.nodes, ctx.payloads, ctx.bds); err != nil {
			return fmt.Errorf("share batch %v: %w", ctx.members, err)
		}
		for k, i := range ctx.members {
			tt := &r.trainTasks[i]
			tt.payload, tt.bd = ctx.payloads[k], ctx.bds[k]
		}
		r.ctxPool.put(ctx)
		return nil
	})
	for _, i := range ctx.members {
		tt := &r.trainTasks[i]
		tt.fut = fut
		r.pendTrain[i] = tt
		r.tails[i] = fut
	}
	return true
}
