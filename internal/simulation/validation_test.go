package simulation

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestEngineRejectsZeroRounds(t *testing.T) {
	const n = 4
	ds, parts := buildTask(t, n, 71)
	nodes := buildNodes(t, algoFull, ds, parts, 73)
	eng := &Engine{
		Nodes:    nodes,
		Topology: topology.NewStatic(topology.Ring(n)),
		TestSet:  ds,
		Config:   Config{Rounds: 0},
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestEngineRejectsTopologyMismatch(t *testing.T) {
	const n = 4
	ds, parts := buildTask(t, n, 81)
	nodes := buildNodes(t, algoFull, ds, parts, 83)
	eng := &Engine{
		Nodes:    nodes,
		Topology: topology.NewStatic(topology.Ring(n + 2)), // wrong size
		TestSet:  ds,
		Config:   Config{Rounds: 1},
	}
	_, err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "topology") {
		t.Fatalf("topology mismatch not rejected: %v", err)
	}
}

func TestEvaluateSubsetOfNodes(t *testing.T) {
	const n = 6
	ds, parts := buildTask(t, n, 91)
	nodes := buildNodes(t, algoFull, ds, parts, 93)
	eng := &Engine{
		Nodes:    nodes,
		Topology: topology.NewStatic(topology.Ring(n)),
		TestSet:  ds,
	}
	lossAll, accAll := eng.Evaluate(Config{EvalBatch: 16})
	lossTwo, accTwo := eng.Evaluate(Config{EvalBatch: 16, EvalNodes: 2})
	if lossAll <= 0 || lossTwo <= 0 {
		t.Fatalf("losses: %v %v", lossAll, lossTwo)
	}
	if accAll < 0 || accAll > 1 || accTwo < 0 || accTwo > 1 {
		t.Fatalf("accuracies out of range: %v %v", accAll, accTwo)
	}
}

func TestOnRoundCallback(t *testing.T) {
	const n = 4
	ds, parts := buildTask(t, n, 95)
	nodes := buildNodes(t, algoFull, ds, parts, 97)
	var seen []int
	eng := &Engine{
		Nodes:    nodes,
		Topology: topology.NewStatic(topology.Ring(n)),
		TestSet:  ds,
		Config:   Config{Rounds: 3, EvalEvery: 1},
		OnRound:  func(rm RoundMetrics) { seen = append(seen, rm.Round) },
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Fatalf("OnRound calls: %v", seen)
	}
}

func TestCumulativeBytesMonotone(t *testing.T) {
	res := runAlgo(t, algoRandom, 8)
	var prev int64 = -1
	for _, rm := range res.Rounds {
		if rm.CumTotalBytes <= prev {
			t.Fatalf("cumulative bytes not increasing: %d after %d", rm.CumTotalBytes, prev)
		}
		if rm.CumModelBytes+rm.CumMetaBytes != rm.CumTotalBytes {
			t.Fatalf("byte split inconsistent at round %d: %d + %d != %d",
				rm.Round, rm.CumModelBytes, rm.CumMetaBytes, rm.CumTotalBytes)
		}
		prev = rm.CumTotalBytes
	}
}
