package simulation

import (
	"math"
	"testing"
)

// TestSummarizeLags: the lag summary over the edge cases row emission hits —
// no samples (nothing merged this iteration), a single sample (p95 must be
// that sample, not an out-of-range rank), and a spread.
func TestSummarizeLags(t *testing.T) {
	cases := []struct {
		name              string
		lags              []float64
		mean, maxLag, p95 float64
	}{
		{"empty", nil, 0, 0, 0},
		{"empty-slice", []float64{}, 0, 0, 0},
		{"one-sample", []float64{3}, 3, 3, 3},
		{"uniform", []float64{2, 2, 2, 2}, 2, 2, 2},
		// Nearest-rank p95 over 1..20 is the 19th smallest sample.
		{"spread", []float64{20, 19, 18, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1}, 10.5, 20, 19},
	}
	for _, tc := range cases {
		mean, maxLag, p95 := summarizeLags(tc.lags)
		if mean != tc.mean || maxLag != tc.maxLag || p95 != tc.p95 {
			t.Errorf("%s: summarizeLags = (%v,%v,%v), want (%v,%v,%v)",
				tc.name, mean, maxLag, p95, tc.mean, tc.maxLag, tc.p95)
		}
		if math.IsNaN(mean) || math.IsNaN(p95) {
			t.Errorf("%s: summary contains NaN", tc.name)
		}
	}
}

// TestStaleTrackerRowStats: per-iteration bucketing, including out-of-range
// iterations (churn rejoins can aggregate past the recorded horizon) and
// iterations nothing aggregated at.
func TestStaleTrackerRowStats(t *testing.T) {
	s := newStaleTracker(3)
	s.add(0, []float64{1, 3})
	s.add(2, []float64{2})
	s.add(5, []float64{9})  // beyond the horizon: run summary only
	s.add(-1, []float64{9}) // defensive: never emitted as a row

	if mean, maxLag, p95 := s.rowStats(0); mean != 2 || maxLag != 3 || p95 != 3 {
		t.Fatalf("iter 0: (%v,%v,%v)", mean, maxLag, p95)
	}
	if mean, maxLag, p95 := s.rowStats(1); mean != 0 || maxLag != 0 || p95 != 0 {
		t.Fatalf("empty iter 1 not all-zero: (%v,%v,%v)", mean, maxLag, p95)
	}
	if mean, _, _ := s.rowStats(2); mean != 2 {
		t.Fatalf("iter 2 mean %v", mean)
	}
	for _, iter := range []int{-1, 3, 99} {
		if mean, maxLag, p95 := s.rowStats(iter); mean != 0 || maxLag != 0 || p95 != 0 {
			t.Fatalf("out-of-range iter %d not all-zero: (%v,%v,%v)", iter, mean, maxLag, p95)
		}
	}
	// The run summary pools everything, including out-of-range samples.
	if mean, maxLag, _ := s.runStats(); maxLag != 9 || mean != (1+3+2+9+9)/5.0 {
		t.Fatalf("run summary (%v,%v)", mean, maxLag)
	}
}

// TestPolicyTracker: effective-neighbor and drop-rate accounting, including
// the zero-aggregation case (all zeros, no division by zero).
func TestPolicyTracker(t *testing.T) {
	p := newPolicyTracker(2)
	if eff, rate := p.rowStats(0); eff != 0 || rate != 0 {
		t.Fatalf("fresh tracker row: (%v,%v)", eff, rate)
	}
	if eff, rate, late := p.runStats(); eff != 0 || rate != 0 || late != 0 {
		t.Fatalf("fresh tracker run: (%v,%v,%d)", eff, rate, late)
	}

	p.add(0, 4, 4, 0) // full barrier aggregation
	p.add(0, 2, 4, 2) // straggler-dropping aggregation
	p.add(1, 3, 3, 0)
	p.add(7, 1, 4, 3) // out of range: run totals only

	if eff, rate := p.rowStats(0); eff != 3 || rate != 0.25 {
		t.Fatalf("iter 0: eff %v, rate %v", eff, rate)
	}
	if eff, rate := p.rowStats(1); eff != 3 || rate != 0 {
		t.Fatalf("iter 1: eff %v, rate %v", eff, rate)
	}
	if eff, rate := p.rowStats(5); eff != 0 || rate != 0 {
		t.Fatalf("out-of-range row: (%v,%v)", eff, rate)
	}
	eff, rate, late := p.runStats()
	if eff != 10.0/4 || rate != 5.0/15 || late != 5 {
		t.Fatalf("run totals: eff %v, rate %v, late %d", eff, rate, late)
	}
}
