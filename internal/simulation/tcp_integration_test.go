package simulation

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/transport"
)

// TestEngineOverTCP runs a full JWINS training through real loopback sockets
// and cross-checks the engine's byte accounting against the wire counters.
func TestEngineOverTCP(t *testing.T) {
	const n = 4
	ds, parts := buildTask(t, n, 51)
	nodes := buildNodes(t, algoJWINS, ds, parts, 53)
	g := topology.Ring(n)
	mesh, err := transport.NewTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()

	eng := &Engine{
		Nodes:    nodes,
		Topology: topology.NewStatic(g),
		TestSet:  ds,
		Config:   Config{Rounds: 6, EvalEvery: 6, Parallelism: 2},
		Mesh:     mesh,
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	var wire int64
	for i := 0; i < n; i++ {
		wire += mesh.SentBytes(i)
	}
	if wire != res.TotalBytes {
		t.Fatalf("engine accounted %d bytes, TCP wire carried %d", res.TotalBytes, wire)
	}
	if res.FinalAccuracy <= 0.25 {
		t.Fatalf("no learning over TCP: accuracy %.2f", res.FinalAccuracy)
	}
}

// TestEngineOverTCPMatchesInMemory: identical runs through TCP and the
// in-memory mesh must produce identical models (transport transparency).
func TestEngineOverTCPMatchesInMemory(t *testing.T) {
	const n = 4
	run := func(mesh transport.Mesh) []float64 {
		ds, parts := buildTask(t, n, 61)
		nodes := buildNodes(t, algoFull, ds, parts, 63)
		eng := &Engine{
			Nodes:    nodes,
			Topology: topology.NewStatic(topology.Ring(n)),
			TestSet:  ds,
			Config:   Config{Rounds: 4, EvalEvery: 4, Parallelism: 1},
			Mesh:     mesh,
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, nodes[0].Model().ParamCount())
		nodes[0].Model().CopyParams(out)
		return out
	}

	tcp, err := transport.NewTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	inmem := transport.NewInMemory(n)
	defer inmem.Close()

	a := run(tcp)
	b := run(inmem)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("param %d differs across transports: %v vs %v", i, a[i], b[i])
		}
	}
}
