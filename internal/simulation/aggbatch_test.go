package simulation

import (
	"bytes"
	"testing"

	"repro/internal/codec"
	"repro/internal/trace"
)

// TestGatedBatchWidth pins the single-core gate's truth table: batching
// auto-disables only when a batch was requested, the host is GOMAXPROCS=1,
// and the caller did not force it.
func TestGatedBatchWidth(t *testing.T) {
	cases := []struct {
		requested  int
		force      bool
		gomaxprocs int
		want       int
	}{
		{0, false, 1, 0},   // nothing requested: nothing to gate
		{0, false, 8, 0},
		{1, false, 1, 1},   // width 1 is already per-node dispatch
		{8, false, 1, 0},   // the gate's purpose: 1-core host disables
		{8, true, 1, 8},    // ... unless forced
		{8, false, 2, 8},   // multi-core hosts keep the request
		{8, true, 2, 8},
		{2, false, 1, 0},
		{2, false, 4, 2},
	}
	for _, tc := range cases {
		if got := gatedBatchWidth(tc.requested, tc.force, tc.gomaxprocs); got != tc.want {
			t.Errorf("gatedBatchWidth(%d, %v, %d) = %d, want %d",
				tc.requested, tc.force, tc.gomaxprocs, got, tc.want)
		}
	}
}

// TestAggregateBatchEngineGoldenParity is the aggregate mirror of
// TestShareBatchEngineGoldenParity: a 64-node async run with AggregateBatch=8
// must byte-match the per-node path — identical binary trace, byte ledger,
// simulated time, and result rows — for all four algorithms crossed with all
// four codecs. Non-JWINS fleets never enter the aggregate queue; running them
// locks in that the knob cannot perturb their schedule either. A second JWINS
// arm turns ShareBatch and AggregateBatch on together, the production
// configuration, where flushAgg re-enqueues deferred trains into the share
// queue.
func TestAggregateBatchEngineGoldenParity(t *testing.T) {
	algos := []struct {
		name string
		kind algo
	}{
		{"full-sharing", algoFull},
		{"random-sampling", algoRandom},
		{"jwins", algoJWINS},
		{"choco", algoChoco},
	}
	codecs := []struct {
		name string
		fc   func(i int) codec.FloatCodec
	}{
		{"raw32", func(int) codec.FloatCodec { return codec.Raw32{} }},
		{"flate32", func(int) codec.FloatCodec { return codec.PlaneFlate32{} }},
		{"xor32", func(int) codec.FloatCodec { return codec.XOR32{} }},
		{"qsgd", func(i int) codec.FloatCodec { return codec.NewQSGD(64, uint64(4000+i)) }},
	}
	for _, al := range algos {
		for _, cd := range codecs {
			al, cd := al, cd
			t.Run(al.name+"/"+cd.name, func(t *testing.T) {
				refTrace, refRes := goldenRun(t, al.kind, cd.fc, 0, 0)
				batTrace, batRes := goldenRun(t, al.kind, cd.fc, 0, 8)
				assertGoldenEqual(t, refTrace, refRes, batTrace, batRes)
			})
		}
	}
	// Both pipelines at once on the JWINS fleet, all codecs.
	for _, cd := range codecs {
		cd := cd
		t.Run("jwins-share+agg/"+cd.name, func(t *testing.T) {
			refTrace, refRes := goldenRun(t, algoJWINS, cd.fc, 0, 0)
			batTrace, batRes := goldenRun(t, algoJWINS, cd.fc, 8, 8)
			assertGoldenEqual(t, refTrace, refRes, batTrace, batRes)
		})
	}
}

func assertGoldenEqual(t *testing.T, refTrace []byte, refRes *Result, batTrace []byte, batRes *Result) {
	t.Helper()
	if !bytes.Equal(refTrace, batTrace) {
		t.Fatalf("batched run's binary trace differs from per-node path (%d vs %d bytes)",
			len(batTrace), len(refTrace))
	}
	if refRes.TotalBytes != batRes.TotalBytes || refRes.ModelBytes != batRes.ModelBytes ||
		refRes.MetaBytes != batRes.MetaBytes {
		t.Fatalf("ledger differs: batched (%d,%d,%d), per-node (%d,%d,%d)",
			batRes.TotalBytes, batRes.ModelBytes, batRes.MetaBytes,
			refRes.TotalBytes, refRes.ModelBytes, refRes.MetaBytes)
	}
	if refRes.SimTime != batRes.SimTime {
		t.Fatalf("simulated time differs: batched %v, per-node %v", batRes.SimTime, refRes.SimTime)
	}
	if len(refRes.Rounds) != len(batRes.Rounds) {
		t.Fatalf("row counts differ: batched %d, per-node %d", len(batRes.Rounds), len(refRes.Rounds))
	}
	for i := range refRes.Rounds {
		a, b := refRes.Rounds[i], batRes.Rounds[i]
		if !sameFloat(a.TrainLoss, b.TrainLoss) || !sameFloat(a.TestLoss, b.TestLoss) ||
			!sameFloat(a.TestAcc, b.TestAcc) || !sameFloat(a.MeanAlpha, b.MeanAlpha) {
			t.Fatalf("row %d differs: batched (%v,%v,%v,%v), per-node (%v,%v,%v,%v)",
				i, b.TrainLoss, b.TestLoss, b.TestAcc, b.MeanAlpha,
				a.TrainLoss, a.TestLoss, a.TestAcc, a.MeanAlpha)
		}
	}
}

// TestAggregateBatchParallelismInvariance: the aggregate-batched engine keeps
// the parallelism invariant — identical trace, ledger, and rows at P ∈ {1, 2,
// NumCPU} — including under churn and stragglers, where queued aggregates mix
// with per-node dispatches and deferred trains re-enter the share queue.
func TestAggregateBatchParallelismInvariance(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*AsyncConfig)
	}{
		{"agg-only", func(cfg *AsyncConfig) {
			cfg.AggregateBatch = 8
			cfg.ShareBatchForce = true
		}},
		{"share+agg-het+churn+drops", func(cfg *AsyncConfig) {
			cfg.ShareBatch = 4
			cfg.AggregateBatch = 4
			cfg.ShareBatchForce = true
			cfg.Het = Heterogeneity{ComputeSpread: 0.5, BandwidthSpread: 0.4, LatencySpread: 0.2, Seed: 5}
			cfg.Churn = GenerateChurn(16, 0.25, 0.02, 0.2, 0.1, 77)
			cfg.DropProb = 0.1
			cfg.FaultSeed = 3
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ref := captureAsyncRun(t, 16, 10, 1, tc.mut)
			if len(ref.trace) == 0 {
				t.Fatal("no events traced")
			}
			for _, p := range parallelismLevels()[1:] {
				got := captureAsyncRun(t, 16, 10, p, tc.mut)
				assertRunsIdentical(t, tc.name, ref, got, p)
			}
		})
	}
}

// TestAggregateBatchRecordReplayCross: record→replay byte equality must hold
// across the aggregate-batching boundary in both directions, because
// AggregateBatch never shapes the schedule, only the compute dispatch.
func TestAggregateBatchRecordReplayCross(t *testing.T) {
	const rounds = 8
	mut := func(batch int) func(*AsyncConfig) {
		return func(cfg *AsyncConfig) {
			cfg.AggregateBatch = batch
			cfg.ShareBatchForce = true
			cfg.Het = Heterogeneity{ComputeSpread: 0.4, BandwidthSpread: 0.3, Seed: 5}
			cfg.Churn = GenerateChurn(8, 0.25, 0.02, 0.2, 0.1, 77)
			cfg.DropProb = 0.1
			cfg.FaultSeed = 3
		}
	}
	for _, dir := range []struct {
		name               string
		recBatch, repBatch int
	}{
		{"record-pernode-replay-batched", 0, 8},
		{"record-batched-replay-pernode", 8, 0},
	} {
		dir := dir
		t.Run(dir.name, func(t *testing.T) {
			recorded, recRes := recordedRun(t, rounds, mut(dir.recBatch))
			rp, err := trace.NewReplayer(recorded)
			if err != nil {
				t.Fatal(err)
			}
			rec2 := trace.NewRecorder(recorded.Header)
			eng := asyncEngineFor(t, algoJWINS, rounds, func(cfg *AsyncConfig) {
				mut(dir.repBatch)(cfg)
				cfg.Het = Heterogeneity{}
				cfg.Churn = nil
				cfg.DropProb = 0
				cfg.Replay = rp
				cfg.Record = rec2
			})
			repRes, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			var a, b bytes.Buffer
			if err := trace.WriteBinary(&a, recorded); err != nil {
				t.Fatal(err)
			}
			if err := trace.WriteBinary(&b, rec2.Trace()); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("replay trace differs from recording (%d vs %d bytes)", b.Len(), a.Len())
			}
			if recRes.TotalBytes != repRes.TotalBytes || recRes.SimTime != repRes.SimTime {
				t.Fatalf("replay result differs: bytes %d vs %d, time %v vs %v",
					repRes.TotalBytes, recRes.TotalBytes, repRes.SimTime, recRes.SimTime)
			}
		})
	}
}

// TestDecodeCacheEngineParity: the fleet-shared decoded-payload cache must be
// purely an allocation/compute optimization — a run with the cache must match
// a NoDecodeCache run event for event, row for row, under heterogeneity,
// churn, drops, and both batch pipelines, at serial and parallel dispatch.
func TestDecodeCacheEngineParity(t *testing.T) {
	muts := []struct {
		name string
		mut  func(*AsyncConfig)
	}{
		{"plain", nil},
		{"batched-churn-drops", func(cfg *AsyncConfig) {
			cfg.ShareBatch = 4
			cfg.AggregateBatch = 4
			cfg.ShareBatchForce = true
			cfg.Het = Heterogeneity{ComputeSpread: 0.5, BandwidthSpread: 0.4, Seed: 5}
			cfg.Churn = GenerateChurn(16, 0.25, 0.02, 0.2, 0.1, 77)
			cfg.DropProb = 0.1
			cfg.FaultSeed = 3
		}},
	}
	for _, tc := range muts {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range parallelismLevels() {
				off := captureAsyncRun(t, 16, 10, p, func(cfg *AsyncConfig) {
					if tc.mut != nil {
						tc.mut(cfg)
					}
					cfg.NoDecodeCache = true
				})
				on := captureAsyncRun(t, 16, 10, p, tc.mut)
				assertRunsIdentical(t, tc.name+"/cache-on-vs-off", off, on, p)
			}
		})
	}
}
