// record.go bridges the async scheduler and the trace subsystem: it maps
// processed scheduler events to trace records (the authoritative schedule a
// Replayer later feeds back), builds the derived send/aggregate records that
// carry byte breakdowns and staleness lags, and accumulates the staleness
// distribution reported in RoundMetrics/Result rows.
package simulation

import (
	"repro/internal/codec"
	"repro/internal/trace"
	"repro/internal/transport"
)

// schedTraceEvent converts a popped scheduler event to its trace record.
// ok is false for kinds that have no trace representation.
func schedTraceEvent(ev *Event) (trace.Event, bool) {
	out := trace.Event{Time: ev.Time, Node: ev.Node, Peer: -1, Iter: ev.Iter}
	switch ev.Kind {
	case EventTrainDone:
		out.Kind = trace.KindTrainDone
	case EventArrival:
		out.Kind = trace.KindArrival
		out.Peer = ev.From
		out.Dropped = ev.Dropped
	case EventLeave:
		out.Kind = trace.KindLeave
		out.Iter = 0
	case EventJoin:
		out.Kind = trace.KindJoin
		out.Iter = 0
	case EventEpoch:
		out.Kind = trace.KindEpoch
		out.Node = 0 // global event; trace validation needs an in-range node
	default:
		return trace.Event{}, false
	}
	return out, true
}

// sendTraceEvent builds the derived send record, mirroring the byte ledger's
// accounting (payload + framing, metadata charged for the frame header).
func sendTraceEvent(now float64, from, to, iter, payloadLen int, bd codec.ByteBreakdown, dropped bool) trace.Event {
	return trace.Event{
		Time: now, Kind: trace.KindSend, Node: from, Peer: to, Iter: iter, Dropped: dropped,
		Bytes:      payloadLen + transport.FrameOverhead,
		ModelBytes: bd.Model,
		MetaBytes:  bd.Meta + transport.FrameOverhead,
	}
}

// staleTracker accumulates per-aggregation payload iteration lags, bucketed
// by iteration for row emission and pooled for the run summary.
type staleTracker struct {
	perIter [][]float64
	all     []float64
}

func newStaleTracker(rounds int) *staleTracker {
	return &staleTracker{perIter: make([][]float64, rounds)}
}

// add records the lags of one aggregation at the given iteration.
func (s *staleTracker) add(iter int, lags []float64) {
	if iter >= 0 && iter < len(s.perIter) {
		s.perIter[iter] = append(s.perIter[iter], lags...)
	}
	s.all = append(s.all, lags...)
}

// rowStats summarizes one iteration's samples (zeros when empty: nothing
// stale was merged).
func (s *staleTracker) rowStats(iter int) (mean, max, p95 float64) {
	if iter < 0 || iter >= len(s.perIter) {
		return 0, 0, 0
	}
	return summarizeLags(s.perIter[iter])
}

// runStats summarizes the whole run.
func (s *staleTracker) runStats() (mean, max, p95 float64) {
	return summarizeLags(s.all)
}

func summarizeLags(lags []float64) (mean, max, p95 float64) {
	if len(lags) == 0 {
		return 0, 0, 0
	}
	var sum float64
	for _, l := range lags {
		sum += l
		if l > max {
			max = l
		}
	}
	return sum / float64(len(lags)), max, trace.Quantile(lags, 0.95)
}
