// record.go bridges the async scheduler and the trace subsystem: it maps
// processed scheduler events to trace records (the authoritative schedule a
// Replayer later feeds back), builds the derived send/aggregate records that
// carry byte breakdowns and staleness lags, and accumulates the staleness
// distribution reported in RoundMetrics/Result rows.
package simulation

import (
	"repro/internal/codec"
	"repro/internal/trace"
	"repro/internal/transport"
)

// schedTraceEvent converts a popped scheduler event to its trace record.
// ok is false for kinds that have no trace representation.
func schedTraceEvent(ev *Event) (trace.Event, bool) {
	out := trace.Event{Time: ev.Time, Node: ev.Node, Peer: -1, Iter: ev.Iter}
	switch ev.Kind {
	case EventTrainDone:
		out.Kind = trace.KindTrainDone
	case EventArrival:
		out.Kind = trace.KindArrival
		out.Peer = ev.From
		out.Dropped = ev.Dropped
	case EventLeave:
		out.Kind = trace.KindLeave
		out.Iter = 0
	case EventJoin:
		out.Kind = trace.KindJoin
		out.Iter = 0
	case EventEpoch:
		out.Kind = trace.KindEpoch
		out.Node = 0 // global event; trace validation needs an in-range node
	case EventDeadline:
		out.Kind = trace.KindDeadline
	default:
		return trace.Event{}, false
	}
	return out, true
}

// sendTraceEvent builds the derived send record, mirroring the byte ledger's
// accounting (payload + framing, metadata charged for the frame header).
func sendTraceEvent(now float64, from, to, iter, payloadLen int, bd codec.ByteBreakdown, dropped bool) trace.Event {
	return trace.Event{
		Time: now, Kind: trace.KindSend, Node: from, Peer: to, Iter: iter, Dropped: dropped,
		Bytes:      payloadLen + transport.FrameOverhead,
		ModelBytes: bd.Model,
		MetaBytes:  bd.Meta + transport.FrameOverhead,
	}
}

// staleTracker accumulates per-aggregation payload iteration lags, bucketed
// by iteration for row emission and pooled for the run summary.
type staleTracker struct {
	perIter [][]float64
	all     []float64
}

func newStaleTracker(rounds int) *staleTracker {
	return &staleTracker{perIter: make([][]float64, rounds)}
}

// add records the lags of one aggregation at the given iteration.
func (s *staleTracker) add(iter int, lags []float64) {
	if iter >= 0 && iter < len(s.perIter) {
		s.perIter[iter] = append(s.perIter[iter], lags...)
	}
	s.all = append(s.all, lags...)
}

// rowStats summarizes one iteration's samples (zeros when empty: nothing
// stale was merged).
func (s *staleTracker) rowStats(iter int) (mean, max, p95 float64) {
	if iter < 0 || iter >= len(s.perIter) {
		return 0, 0, 0
	}
	return summarizeLags(s.perIter[iter])
}

// runStats summarizes the whole run.
func (s *staleTracker) runStats() (mean, max, p95 float64) {
	return summarizeLags(s.all)
}

// policyTracker accumulates per-aggregation effective-neighbor and late-drop
// counts: merged is how many payloads an aggregation actually mixed, expected
// its live-neighbor count, and late how many live neighbors had not delivered
// the current iteration when it fired (always 0 under the full barrier;
// the deadline policy's straggler drops land here). Bucketed by iteration for
// row emission and totaled for the run summary.
type policyTracker struct {
	merged, expected, late, aggs     []int64
	mergedT, expectedT, lateT, aggsT int64
}

func newPolicyTracker(rounds int) *policyTracker {
	return &policyTracker{
		merged:   make([]int64, rounds),
		expected: make([]int64, rounds),
		late:     make([]int64, rounds),
		aggs:     make([]int64, rounds),
	}
}

// add records one aggregation at the given iteration.
func (p *policyTracker) add(iter, merged, expected, late int) {
	if iter >= 0 && iter < len(p.aggs) {
		p.merged[iter] += int64(merged)
		p.expected[iter] += int64(expected)
		p.late[iter] += int64(late)
		p.aggs[iter]++
	}
	p.mergedT += int64(merged)
	p.expectedT += int64(expected)
	p.lateT += int64(late)
	p.aggsT++
}

// rowStats summarizes one iteration: mean merged payloads per aggregation and
// the late fraction of expected payloads (zeros when nothing aggregated).
func (p *policyTracker) rowStats(iter int) (eff, dropRate float64) {
	if iter < 0 || iter >= len(p.aggs) {
		return 0, 0
	}
	return policyStats(p.merged[iter], p.expected[iter], p.late[iter], p.aggs[iter])
}

// runStats summarizes the whole run; late is the total straggler-drop count.
func (p *policyTracker) runStats() (eff, dropRate float64, late int64) {
	eff, dropRate = policyStats(p.mergedT, p.expectedT, p.lateT, p.aggsT)
	return eff, dropRate, p.lateT
}

func policyStats(merged, expected, late, aggs int64) (eff, dropRate float64) {
	if aggs > 0 {
		eff = float64(merged) / float64(aggs)
	}
	if expected > 0 {
		dropRate = float64(late) / float64(expected)
	}
	return eff, dropRate
}

func summarizeLags(lags []float64) (mean, max, p95 float64) {
	if len(lags) == 0 {
		return 0, 0, 0
	}
	var sum float64
	for _, l := range lags {
		sum += l
		if l > max {
			max = l
		}
	}
	return sum / float64(len(lags)), max, trace.Quantile(lags, 0.95)
}
