// policy.go defines the aggregation-policy layer of the async engine: the
// rule deciding when a node that finished broadcasting iteration k merges its
// buffered neighbor payloads. The two historical extremes — the full local
// barrier and non-blocking gossip — become two implementations of a shared
// AggregationPolicy interface, joined by the semi-async middle ground the
// ROADMAP calls for:
//
//   - BarrierPolicy: wait for every live neighbor's iteration-k payload (or
//     drop notice). Zero staleness, stragglers stall their neighborhood.
//   - GossipPolicy: never wait; merge the freshest payload per neighbor
//     immediately after broadcasting. Unbounded staleness.
//   - BoundedStalenessPolicy: wait until at least k live neighbors delivered
//     the current iteration, or every live neighbor is within τ iterations
//     (the SSP-style lag bound). Staleness is bounded by τ; an adaptive mode
//     retunes τ at each topology-epoch boundary from the observed lag p95.
//   - DeadlinePolicy: a straggler-dropping barrier — wait like the barrier,
//     but aggregate no later than a simulated-time deadline derived from the
//     node's own nominal round length, dropping neighbors whose payload is
//     late (they are counted in the drop-rate metrics; their stale payload
//     can still merge on a later iteration).
//
// Policies are pure ready-predicates over scheduler state (policyView); the
// engine owns all bookkeeping, so decisions are deterministic functions of
// the event schedule and replaying a recorded schedule reproduces them
// exactly. Only DeadlinePolicy injects new schedule events (EventDeadline),
// which are recorded in traces and consumed verbatim on replay.
package simulation

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// ErrPolicyConfig rejects invalid aggregation-policy parameters before a run
// starts; match with errors.Is.
var ErrPolicyConfig = errors.New("simulation: invalid aggregation policy")

// policyView is the scheduler state a policy's readiness decision may see:
// the waiting node's pending iteration, its live-neighbor bookkeeping, the
// current staleness bound, and whether this iteration's deadline has fired.
type policyView struct {
	// iter is the iteration the node wants to aggregate.
	iter int
	// live is the number of live neighbors in the current graph.
	live int
	// heard is how many live neighbors delivered (or dropped) their
	// iteration-iter payload: got[j] >= iter.
	heard int
	// minGot is the minimum got[j] over live neighbors, with never-heard
	// neighbors counted as -1. Meaningless when live == 0.
	minGot int
	// tau is the engine's current staleness bound (BoundedStalenessPolicy;
	// the adaptive mode retunes it at epoch boundaries).
	tau int
	// deadline reports that the node's iteration-iter deadline event fired
	// (DeadlinePolicy only).
	deadline bool
}

// AggregationPolicy decides when a broadcasting node merges its neighborhood.
// Implementations must be pure: ready may depend only on its view, so the
// decision replays deterministically from a recorded schedule.
type AggregationPolicy interface {
	// Name returns the trace-header policy name ("barrier", "gossip",
	// "bounded", "deadline" — the trace.Policy* constants).
	Name() string
	// Blocking reports whether nodes wait after broadcasting (everything but
	// gossip). Non-blocking policies aggregate immediately and keep only the
	// freshest payload per sender.
	Blocking() bool
	// ready reports whether a waiting node may aggregate now.
	ready(v policyView) bool
	// validate rejects unusable parameters with ErrPolicyConfig.
	validate() error
}

// BarrierPolicy is the full local barrier: aggregate iteration k once every
// live neighbor's iteration-k payload arrived or was known dropped. The
// default policy, and the degenerate-case twin of the synchronous engine.
type BarrierPolicy struct{}

// Name implements AggregationPolicy.
func (BarrierPolicy) Name() string { return trace.PolicyBarrier }

// Blocking implements AggregationPolicy.
func (BarrierPolicy) Blocking() bool { return true }

func (BarrierPolicy) ready(v policyView) bool { return v.heard == v.live }

func (BarrierPolicy) validate() error { return nil }

// GossipPolicy aggregates immediately after broadcasting, merging the
// freshest buffered payload per live neighbor. Never consulted for readiness
// (it never waits).
type GossipPolicy struct{}

// Name implements AggregationPolicy.
func (GossipPolicy) Name() string { return trace.PolicyGossip }

// Blocking implements AggregationPolicy.
func (GossipPolicy) Blocking() bool { return false }

func (GossipPolicy) ready(policyView) bool { return true }

func (GossipPolicy) validate() error { return nil }

// BoundedStalenessPolicy is the semi-async middle ground: a node aggregates
// iteration k once at least K live neighbors delivered their iteration-k
// payload, or once every live neighbor is within Tau iterations of k (the
// stale-synchronous-parallel lag bound: min_j got[j] >= k - Tau, never-heard
// neighbors counting as -1). Either condition suffices, so a node is never
// slower than the full barrier, and the merged staleness never exceeds Tau
// once the lag condition is the one firing.
type BoundedStalenessPolicy struct {
	// K is the fresh-payload quorum (clamped to the live-neighbor count; a
	// typical setting is half the degree).
	K int
	// Tau is the iteration-lag bound (>= 0). Tau 0 degenerates toward the
	// barrier: every neighbor must be at the current iteration.
	Tau int
	// AdaptiveTau retunes Tau at every topology-epoch boundary to
	// max(1, ceil(p95 of the lag samples observed since the last boundary)).
	// A no-op under a static topology (no epoch boundaries ever fire).
	AdaptiveTau bool
}

// Name implements AggregationPolicy.
func (BoundedStalenessPolicy) Name() string { return trace.PolicyBounded }

// Blocking implements AggregationPolicy.
func (BoundedStalenessPolicy) Blocking() bool { return true }

func (p BoundedStalenessPolicy) ready(v policyView) bool {
	if v.live == 0 {
		return true
	}
	quorum := p.K
	if quorum > v.live {
		quorum = v.live
	}
	return v.heard >= quorum || v.minGot >= v.iter-v.tau
}

func (p BoundedStalenessPolicy) validate() error {
	if p.K < 1 {
		return fmt.Errorf("%w: bounded staleness needs K >= 1, got %d", ErrPolicyConfig, p.K)
	}
	if p.Tau < 0 {
		return fmt.Errorf("%w: bounded staleness needs Tau >= 0, got %d", ErrPolicyConfig, p.Tau)
	}
	return nil
}

// DeadlinePolicy is the straggler-dropping barrier: a node waits like the
// full barrier but aggregates no later than Factor times its own nominal
// round length after broadcasting, merging whatever arrived and counting the
// missing neighbors as late drops. Deadline events are part of the recorded
// schedule, so replays reproduce the drops exactly.
type DeadlinePolicy struct {
	// Factor scales the node's per-profile nominal round duration into the
	// deadline slack (> 0; 1.5 tolerates neighbors up to 50% slower).
	Factor float64
}

// Name implements AggregationPolicy.
func (DeadlinePolicy) Name() string { return trace.PolicyDeadline }

// Blocking implements AggregationPolicy.
func (DeadlinePolicy) Blocking() bool { return true }

func (DeadlinePolicy) ready(v policyView) bool { return v.heard == v.live || v.deadline }

func (p DeadlinePolicy) validate() error {
	if p.Factor <= 0 {
		return fmt.Errorf("%w: deadline needs Factor > 0, got %g", ErrPolicyConfig, p.Factor)
	}
	return nil
}

// PolicyByName builds a policy from its trace-header name and parameters —
// the shared constructor behind CLI flags and trace-driven replay specs. An
// empty name returns nil (caller default); unknown names are rejected.
func PolicyByName(name string, k, tau int, adaptive bool, factor float64) (AggregationPolicy, error) {
	switch name {
	case "":
		return nil, nil
	case trace.PolicyBarrier:
		return BarrierPolicy{}, nil
	case trace.PolicyGossip:
		return GossipPolicy{}, nil
	case trace.PolicyBounded:
		return BoundedStalenessPolicy{K: k, Tau: tau, AdaptiveTau: adaptive}, nil
	case trace.PolicyDeadline:
		return DeadlinePolicy{Factor: factor}, nil
	default:
		return nil, fmt.Errorf("%w: unknown policy %q (want barrier, gossip, bounded, or deadline)", ErrPolicyConfig, name)
	}
}
