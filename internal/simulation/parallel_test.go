package simulation

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/topology"
	"repro/internal/vec"
)

// parallelism levels every invariance test sweeps. NumCPU is appended so CI
// machines with more cores stress the pool harder than the fixed levels.
func parallelismLevels() []int {
	levels := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		levels = append(levels, n)
	}
	return levels
}

// eventKey is the comparable projection of an Event (the payload field is
// scheduler-internal and not part of the observable trace).
type eventKey struct {
	Time    float64
	Seq     int64
	Kind    EventKind
	Node    int
	From    int
	Iter    int
	Dropped bool
}

// capturedRun is everything a run observably produces: the full event trace,
// the byte ledger, and the result rows (train losses, eval metrics, alphas,
// staleness). Parallel execution must reproduce all of it bit for bit.
type capturedRun struct {
	trace  []eventKey
	result *Result
}

func captureAsyncRun(t *testing.T, nodes int, rounds int, parallelism int, mut func(*AsyncConfig)) capturedRun {
	t.Helper()
	ds, parts := buildTask(t, nodes, 42)
	fleet := buildNodes(t, algoJWINS, ds, parts, 7)
	g, err := topology.Regular(nodes, 4, vec.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	var trace []eventKey
	cfg := AsyncConfig{
		Config: Config{Rounds: rounds, EvalEvery: 5, Parallelism: parallelism},
	}
	if mut != nil {
		mut(&cfg)
	}
	cfg.OnEvent = func(ev Event) {
		trace = append(trace, eventKey{ev.Time, ev.Seq, ev.Kind, ev.Node, ev.From, ev.Iter, ev.Dropped})
	}
	eng := &AsyncEngine{
		Nodes:    fleet,
		Topology: topology.NewStatic(g),
		TestSet:  ds,
		Config:   cfg,
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return capturedRun{trace: trace, result: res}
}

// sameFloat treats two NaNs as equal (rows without evaluation carry NaN).
func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func assertRunsIdentical(t *testing.T, name string, ref, got capturedRun, p int) {
	t.Helper()
	if len(ref.trace) != len(got.trace) {
		t.Fatalf("%s: parallelism %d trace has %d events, serial %d", name, p, len(got.trace), len(ref.trace))
	}
	for i := range ref.trace {
		if ref.trace[i] != got.trace[i] {
			t.Fatalf("%s: parallelism %d event %d differs:\n serial  %+v\n parallel %+v",
				name, p, i, ref.trace[i], got.trace[i])
		}
	}
	a, b := ref.result, got.result
	if a.TotalBytes != b.TotalBytes || a.ModelBytes != b.ModelBytes || a.MetaBytes != b.MetaBytes {
		t.Fatalf("%s: parallelism %d ledger (%d,%d,%d) != serial (%d,%d,%d)",
			name, p, b.TotalBytes, b.ModelBytes, b.MetaBytes, a.TotalBytes, a.ModelBytes, a.MetaBytes)
	}
	if !sameFloat(a.FinalAccuracy, b.FinalAccuracy) || !sameFloat(a.FinalLoss, b.FinalLoss) {
		t.Fatalf("%s: parallelism %d final metrics (%v,%v) != serial (%v,%v)",
			name, p, b.FinalAccuracy, b.FinalLoss, a.FinalAccuracy, a.FinalLoss)
	}
	if a.SimTime != b.SimTime || !sameFloat(a.StaleMean, b.StaleMean) || !sameFloat(a.StaleP95, b.StaleP95) {
		t.Fatalf("%s: parallelism %d sim/staleness differ: %+v vs %+v", name, p, b, a)
	}
	if a.EffNeighborsMean != b.EffNeighborsMean || a.DropRate != b.DropRate || a.LateDrops != b.LateDrops {
		t.Fatalf("%s: parallelism %d policy metrics (%v,%v,%d) != serial (%v,%v,%d)",
			name, p, b.EffNeighborsMean, b.DropRate, b.LateDrops, a.EffNeighborsMean, a.DropRate, a.LateDrops)
	}
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("%s: parallelism %d emitted %d rows, serial %d", name, p, len(b.Rounds), len(a.Rounds))
	}
	for i := range a.Rounds {
		ra, rb := a.Rounds[i], b.Rounds[i]
		if ra.CumTotalBytes != rb.CumTotalBytes || ra.CumModelBytes != rb.CumModelBytes || ra.CumMetaBytes != rb.CumMetaBytes {
			t.Fatalf("%s: parallelism %d row %d bytes differ", name, p, i)
		}
		if !sameFloat(ra.TrainLoss, rb.TrainLoss) || !sameFloat(ra.TestLoss, rb.TestLoss) || !sameFloat(ra.TestAcc, rb.TestAcc) {
			t.Fatalf("%s: parallelism %d row %d losses differ: (%v,%v,%v) vs (%v,%v,%v)",
				name, p, i, rb.TrainLoss, rb.TestLoss, rb.TestAcc, ra.TrainLoss, ra.TestLoss, ra.TestAcc)
		}
		if !sameFloat(ra.MeanAlpha, rb.MeanAlpha) {
			t.Fatalf("%s: parallelism %d row %d mean alpha %v vs %v", name, p, i, rb.MeanAlpha, ra.MeanAlpha)
		}
		if !sameFloat(ra.StaleMean, rb.StaleMean) || !sameFloat(ra.StaleMax, rb.StaleMax) {
			t.Fatalf("%s: parallelism %d row %d staleness differs", name, p, i)
		}
	}
}

// TestAsyncParallelismInvariance: the acceptance property of the worker-pool
// refactor — the 16-node async run (the BenchmarkEngineAsync16 fleet) must
// produce the identical event trace, byte ledger, result rows, and final
// losses at every parallelism level, homogeneous and under churn+stragglers.
func TestAsyncParallelismInvariance(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*AsyncConfig)
	}{
		{"homogeneous", nil},
		{"het+churn+drops", func(cfg *AsyncConfig) {
			cfg.Het = Heterogeneity{ComputeSpread: 0.5, BandwidthSpread: 0.4, LatencySpread: 0.2, Seed: 5}
			cfg.Churn = GenerateChurn(16, 0.25, 0.02, 0.2, 0.1, 77)
			cfg.DropProb = 0.1
			cfg.FaultSeed = 3
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ref := captureAsyncRun(t, 16, 10, 1, tc.mut)
			if len(ref.trace) == 0 {
				t.Fatal("no events traced")
			}
			for _, p := range parallelismLevels()[1:] {
				got := captureAsyncRun(t, 16, 10, p, tc.mut)
				assertRunsIdentical(t, tc.name, ref, got, p)
			}
		})
	}
}

// TestAsyncParallelismInvarianceGossip: the non-blocking policy lets fast
// nodes run ahead of the emission floor, exercising the speculation guard
// (train tasks of ahead-of-floor nodes must not run before an evaluation).
func TestAsyncParallelismInvarianceGossip(t *testing.T) {
	mut := func(cfg *AsyncConfig) {
		cfg.Gossip = true
		cfg.Het = Heterogeneity{ComputeSpread: 0.8, BandwidthSpread: 0.3, Seed: 21}
		cfg.Churn = GenerateChurn(8, 0.25, 0.02, 0.3, 0.1, 13)
	}
	ref := captureAsyncRun(t, 8, 12, 1, mut)
	for _, p := range parallelismLevels()[1:] {
		got := captureAsyncRun(t, 8, 12, p, mut)
		assertRunsIdentical(t, "gossip", ref, got, p)
	}
}

// TestSyncParallelismInvariance: the synchronous engine's pooled phases must
// match serial execution exactly too.
func TestSyncParallelismInvariance(t *testing.T) {
	run := func(parallelism int) *Result {
		const n = 8
		ds, parts := buildTask(t, n, 42)
		fleet := buildNodes(t, algoJWINS, ds, parts, 7)
		g, err := topology.Regular(n, 4, vec.NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		eng := &Engine{
			Nodes:    fleet,
			Topology: topology.NewStatic(g),
			TestSet:  ds,
			Config:   Config{Rounds: 8, EvalEvery: 4, Parallelism: parallelism, DropProb: 0.1, FaultSeed: 3},
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, p := range parallelismLevels()[1:] {
		got := run(p)
		if got.TotalBytes != ref.TotalBytes || !sameFloat(got.FinalAccuracy, ref.FinalAccuracy) {
			t.Fatalf("parallelism %d: (%d bytes, %v acc) != serial (%d bytes, %v acc)",
				p, got.TotalBytes, got.FinalAccuracy, ref.TotalBytes, ref.FinalAccuracy)
		}
		for i := range ref.Rounds {
			if !sameFloat(ref.Rounds[i].TrainLoss, got.Rounds[i].TrainLoss) {
				t.Fatalf("parallelism %d round %d train loss differs", p, i)
			}
		}
	}
}
