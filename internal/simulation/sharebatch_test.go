package simulation

import (
	"bytes"
	"testing"

	"repro/internal/choco"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/vec"
)

// buildNodesWithCodec mirrors buildNodes but injects a per-node float codec —
// per node because stateful codecs (QSGD's call counter) must not be shared
// across nodes, or encode order would leak into the payload bytes.
func buildNodesWithCodec(t *testing.T, kind algo, ds *datasets.Dataset, parts [][]int, seed uint64, fc func(i int) codec.FloatCodec) []core.Node {
	t.Helper()
	opts := core.TrainOpts{LR: 0.05, LocalSteps: 2}
	rootRNG := vec.NewRNG(seed)
	var nodes []core.Node
	for i := range parts {
		nodeRNG := rootRNG.Split()
		model := nn.NewMLP(64, 24, 4, nodeRNG)
		loader := datasets.NewLoader(ds, parts[i], 8, nodeRNG.Split())
		var (
			n   core.Node
			err error
		)
		switch kind {
		case algoFull:
			n, err = core.NewFullSharing(i, model, loader, opts, fc(i))
		case algoRandom:
			n, err = core.NewRandomSampling(i, model, loader, opts, 0.37, fc(i), nodeRNG.Split())
		case algoJWINS:
			cfg := core.DefaultJWINSConfig()
			cfg.FloatCodec = fc(i)
			n, err = core.NewJWINS(i, model, loader, opts, cfg, nodeRNG.Split())
		case algoChoco:
			n, err = choco.New(i, model, loader, opts, choco.Config{Fraction: 0.2, Gamma: 0.2, FloatCodec: fc(i)})
		}
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	return nodes
}

// goldenRun executes one recorded 64-node async run and returns the binary
// trace bytes plus the result. Heterogeneous profiles make train-done events
// chain at staggered times, so the share-batch queue exercises both its
// size-triggered and due-time-triggered flushes.
func goldenRun(t *testing.T, kind algo, fc func(i int) codec.FloatCodec, shareBatch, aggBatch int) ([]byte, *Result) {
	t.Helper()
	const (
		n      = 64
		rounds = 3
	)
	ds, parts := buildTask(t, n, 42)
	nodes := buildNodesWithCodec(t, kind, ds, parts, 7, fc)
	g, err := topology.Regular(n, 4, vec.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(trace.Header{
		Nodes: n, Rounds: rounds, Source: trace.SourceSim, Policy: trace.PolicyBarrier,
	})
	eng := &AsyncEngine{
		Nodes:    nodes,
		Topology: topology.NewStatic(g),
		TestSet:  ds,
		Config: AsyncConfig{
			Config:         Config{Rounds: rounds, EvalEvery: rounds, Parallelism: 2},
			Het:            Heterogeneity{ComputeSpread: 0.4, BandwidthSpread: 0.3, Seed: 5},
			ShareBatch:     shareBatch,
			AggregateBatch: aggBatch,
			// Batching must actually run on single-core CI hosts, where the
			// GOMAXPROCS gate would otherwise disable it.
			ShareBatchForce: true,
			Record:          rec,
		},
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, rec.Trace()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestShareBatchEngineGoldenParity is the engine half of the differential
// test layer: a batched 64-node async run must byte-match the per-node path
// — identical binary trace (every event, send byte-breakdown, and aggregate
// record), identical byte ledger, identical result rows — for all four
// algorithms crossed with all four codecs. Non-JWINS fleets never enter the
// batch queue; running them locks in that the ShareBatch knob cannot perturb
// their schedule either.
func TestShareBatchEngineGoldenParity(t *testing.T) {
	algos := []struct {
		name string
		kind algo
	}{
		{"full-sharing", algoFull},
		{"random-sampling", algoRandom},
		{"jwins", algoJWINS},
		{"choco", algoChoco},
	}
	codecs := []struct {
		name string
		fc   func(i int) codec.FloatCodec
	}{
		{"raw32", func(int) codec.FloatCodec { return codec.Raw32{} }},
		{"flate32", func(int) codec.FloatCodec { return codec.PlaneFlate32{} }},
		{"xor32", func(int) codec.FloatCodec { return codec.XOR32{} }},
		{"qsgd", func(i int) codec.FloatCodec { return codec.NewQSGD(64, uint64(4000+i)) }},
	}
	for _, al := range algos {
		for _, cd := range codecs {
			al, cd := al, cd
			t.Run(al.name+"/"+cd.name, func(t *testing.T) {
				refTrace, refRes := goldenRun(t, al.kind, cd.fc, 0, 0)
				batTrace, batRes := goldenRun(t, al.kind, cd.fc, 8, 0)
				if !bytes.Equal(refTrace, batTrace) {
					t.Fatalf("batched run's binary trace differs from per-node path (%d vs %d bytes)",
						len(batTrace), len(refTrace))
				}
				if refRes.TotalBytes != batRes.TotalBytes || refRes.ModelBytes != batRes.ModelBytes ||
					refRes.MetaBytes != batRes.MetaBytes {
					t.Fatalf("ledger differs: batched (%d,%d,%d), per-node (%d,%d,%d)",
						batRes.TotalBytes, batRes.ModelBytes, batRes.MetaBytes,
						refRes.TotalBytes, refRes.ModelBytes, refRes.MetaBytes)
				}
				if refRes.SimTime != batRes.SimTime {
					t.Fatalf("simulated time differs: batched %v, per-node %v", batRes.SimTime, refRes.SimTime)
				}
				if len(refRes.Rounds) != len(batRes.Rounds) {
					t.Fatalf("row counts differ: batched %d, per-node %d", len(batRes.Rounds), len(refRes.Rounds))
				}
				for i := range refRes.Rounds {
					a, b := refRes.Rounds[i], batRes.Rounds[i]
					if !sameFloat(a.TrainLoss, b.TrainLoss) || !sameFloat(a.TestLoss, b.TestLoss) ||
						!sameFloat(a.TestAcc, b.TestAcc) || !sameFloat(a.MeanAlpha, b.MeanAlpha) {
						t.Fatalf("row %d differs: batched (%v,%v,%v,%v), per-node (%v,%v,%v,%v)",
							i, b.TrainLoss, b.TestLoss, b.TestAcc, b.MeanAlpha,
							a.TrainLoss, a.TestLoss, a.TestAcc, a.MeanAlpha)
					}
				}
			})
		}
	}
}

// TestShareBatchParallelismInvariance: the batched engine keeps the repo's
// parallelism invariant — identical trace, ledger, and rows at P ∈ {1, 2,
// NumCPU} — including under churn and stragglers, where queued members churn
// out of eligibility and batches mix with per-node dispatches.
func TestShareBatchParallelismInvariance(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*AsyncConfig)
	}{
		{"homogeneous", func(cfg *AsyncConfig) {
			cfg.ShareBatch = 8
			cfg.ShareBatchForce = true
		}},
		{"het+churn+drops", func(cfg *AsyncConfig) {
			cfg.ShareBatch = 4
			cfg.ShareBatchForce = true
			cfg.Het = Heterogeneity{ComputeSpread: 0.5, BandwidthSpread: 0.4, LatencySpread: 0.2, Seed: 5}
			cfg.Churn = GenerateChurn(16, 0.25, 0.02, 0.2, 0.1, 77)
			cfg.DropProb = 0.1
			cfg.FaultSeed = 3
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ref := captureAsyncRun(t, 16, 10, 1, tc.mut)
			if len(ref.trace) == 0 {
				t.Fatal("no events traced")
			}
			for _, p := range parallelismLevels()[1:] {
				got := captureAsyncRun(t, 16, 10, p, tc.mut)
				assertRunsIdentical(t, tc.name, ref, got, p)
			}
		})
	}
}

// TestShareBatchRecordReplayCross: record→replay byte equality must hold
// across the batching boundary in both directions — a per-node recording
// replayed on the batched engine and a batched recording replayed on the
// per-node engine both reproduce the trace event for event, because
// ShareBatch never shapes the schedule, only the dispatch.
func TestShareBatchRecordReplayCross(t *testing.T) {
	const rounds = 8
	mut := func(batch int) func(*AsyncConfig) {
		return func(cfg *AsyncConfig) {
			cfg.ShareBatch = batch
			cfg.ShareBatchForce = true
			cfg.Het = Heterogeneity{ComputeSpread: 0.4, BandwidthSpread: 0.3, Seed: 5}
			cfg.Churn = GenerateChurn(8, 0.25, 0.02, 0.2, 0.1, 77)
			cfg.DropProb = 0.1
			cfg.FaultSeed = 3
		}
	}
	for _, dir := range []struct {
		name               string
		recBatch, repBatch int
	}{
		{"record-pernode-replay-batched", 0, 8},
		{"record-batched-replay-pernode", 8, 0},
	} {
		dir := dir
		t.Run(dir.name, func(t *testing.T) {
			recorded, recRes := recordedRun(t, rounds, mut(dir.recBatch))
			rp, err := trace.NewReplayer(recorded)
			if err != nil {
				t.Fatal(err)
			}
			rec2 := trace.NewRecorder(recorded.Header)
			eng := asyncEngineFor(t, algoJWINS, rounds, func(cfg *AsyncConfig) {
				mut(dir.repBatch)(cfg)
				cfg.Het = Heterogeneity{ComputeSpread: 9, Seed: 1234} // replay must override
				cfg.Churn = nil
				cfg.DropProb = 0
				cfg.Replay = rp
				cfg.Record = rec2
			})
			repRes, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			replayed := rec2.Trace()
			if len(replayed.Events) != len(recorded.Events) {
				t.Fatalf("event counts differ: replay %d, recorded %d", len(replayed.Events), len(recorded.Events))
			}
			for i := range recorded.Events {
				if replayed.Events[i] != recorded.Events[i] {
					t.Fatalf("event %d differs:\nreplay   %+v\nrecorded %+v", i, replayed.Events[i], recorded.Events[i])
				}
			}
			if repRes.TotalBytes != recRes.TotalBytes || repRes.SimTime != recRes.SimTime ||
				!sameFloat(repRes.FinalAccuracy, recRes.FinalAccuracy) {
				t.Fatalf("replay result differs: (%d bytes, %v, %v) vs (%d bytes, %v, %v)",
					repRes.TotalBytes, repRes.SimTime, repRes.FinalAccuracy,
					recRes.TotalBytes, recRes.SimTime, recRes.FinalAccuracy)
			}
		})
	}
}
