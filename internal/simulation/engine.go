// Package simulation drives decentralized training rounds over a topology,
// collecting the metrics the paper reports: per-round train loss, test
// accuracy/loss averaged over nodes, cumulative bytes split into model versus
// metadata, and a byte-driven simulated wall clock (compute + bandwidth +
// latency) standing in for the paper's cluster timings.
package simulation

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/vec"
)

// Config controls a run.
type Config struct {
	Rounds int
	// EvalEvery evaluates test metrics every k rounds (default 10; the final
	// round is always evaluated).
	EvalEvery int
	// EvalNodes caps how many nodes are evaluated (0 = all). Test accuracy is
	// the mean over evaluated nodes, as in the paper. The capped subset is a
	// seeded uniform sample (fixed for the run, drawn from EvalSeed) — it used
	// to be the first k nodes, which under churn and heterogeneity
	// systematically favored low-index nodes.
	EvalNodes int
	// EvalSample, when > 0 and below the node count, switches evaluation to a
	// seeded rotating subset of that many nodes per eval row: each row scores
	// one window of a per-cycle random permutation, so every node is visited
	// within ceil(n/EvalSample) (×EvalRotate) eval rows. Deterministic from
	// EvalSeed + the row's round — parallelism never changes the subset. 0
	// (the default) keeps exact all-node evaluation. Takes precedence over
	// EvalNodes.
	EvalSample int
	// EvalRotate slows the rotation: the sampling window advances every
	// EvalRotate eval rows (default 1 = advance each row). Larger values
	// re-score the same subset across consecutive rows, which smooths the
	// series at the cost of a longer full-fleet visit cadence.
	EvalRotate int
	// EvalSeed seeds the rotating-sample permutations and the EvalNodes cap
	// subset (typically the run seed).
	EvalSeed uint64
	// EvalBatch is the evaluation batch size (default 32).
	EvalBatch int
	// EvalMaxSamples caps test samples per node evaluation (0 = all).
	EvalMaxSamples int
	// TargetAccuracy, if > 0, stops the run once mean test accuracy reaches
	// it (the paper's Figure 5/6 protocol).
	TargetAccuracy float64
	// Parallelism bounds concurrent node execution (default NumCPU).
	Parallelism int

	// Simulated time model (Figure 6's wall-clock axis).
	// BandwidthBytesPerSec is each node's uplink (default 12.5 MB/s ~ 100 Mbps).
	BandwidthBytesPerSec float64
	// ComputeSecPerStep is the time of one local SGD step (default 5 ms).
	ComputeSecPerStep float64
	// LatencySec is the per-round communication latency (default 10 ms).
	LatencySec float64

	// Failure injection (extension experiments). Partial-sharing averaging
	// tolerates both: missing senders simply drop out of the per-coefficient
	// weight normalization. CHOCO's error-feedback replicas, by contrast,
	// silently diverge — the behaviour behind the paper's remark that JWINS
	// is "flexible to nodes leaving and joining".
	//
	// DropProb drops each point-to-point message independently.
	DropProb float64
	// OfflineProb takes a node fully offline for a round (no training, no
	// sending; it keeps its model and rejoins next round).
	OfflineProb float64
	// FaultSeed seeds the drop/offline decisions (default derived from 1).
	FaultSeed uint64
}

func (c *Config) setDefaults() {
	if c.EvalEvery <= 0 {
		c.EvalEvery = 10
	}
	if c.EvalBatch <= 0 {
		c.EvalBatch = 32
	}
	if c.EvalRotate <= 0 {
		c.EvalRotate = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.BandwidthBytesPerSec <= 0 {
		c.BandwidthBytesPerSec = 12.5e6
	}
	if c.ComputeSecPerStep <= 0 {
		c.ComputeSecPerStep = 5e-3
	}
	if c.LatencySec <= 0 {
		c.LatencySec = 10e-3
	}
}

// RoundMetrics is one row of the result series.
type RoundMetrics struct {
	Round     int
	TrainLoss float64
	// TestLoss/TestAcc are NaN on rounds without evaluation.
	TestLoss float64
	TestAcc  float64
	// Cumulative bytes sent by all nodes (payload × receivers + framing).
	CumTotalBytes int64
	CumModelBytes int64
	CumMetaBytes  int64
	// SimTime is the simulated elapsed seconds after this round.
	SimTime float64
	// MeanAlpha is the mean sharing fraction sampled this round (JWINS only,
	// NaN otherwise) — the Figure 3 series.
	MeanAlpha float64
	// StaleMean/StaleMax/StaleP95 summarize the iteration lag (staleness) of
	// payloads merged by this iteration's aggregations: per merged payload,
	// lag = aggregator's iteration - payload's iteration, clamped at zero.
	// Identically 0 under the synchronous engine and the async local barrier
	// (every aggregation consumes current-iteration payloads); nonzero under
	// gossip and for rejoining nodes that merge cached broadcasts.
	StaleMean float64
	StaleMax  float64
	StaleP95  float64
	// EffNeighbors is the mean number of payloads actually merged per
	// aggregation at this iteration; DropRate is the fraction of expected
	// live-neighbor payloads that had not delivered the current iteration
	// when the aggregation fired (0 under the full barrier; the deadline
	// policy's straggler drops and gossip/bounded-staleness misses land
	// here). Async engine only.
	EffNeighbors float64
	DropRate     float64
	// Epoch is the topology epoch active when this row was emitted;
	// SpectralGap (1 - SLEM of the live mixing matrix) and NeighborTurnover
	// (fraction of that epoch's live edges absent from the previous epoch)
	// describe that epoch's mixing. Filled by the async engine; the
	// synchronous engine leaves them zero.
	Epoch            int
	SpectralGap      float64
	NeighborTurnover float64
}

// Result aggregates a full run.
type Result struct {
	Rounds []RoundMetrics
	// FinalAccuracy is the last evaluated accuracy.
	FinalAccuracy float64
	// FinalLoss is the last evaluated test loss.
	FinalLoss float64
	// RoundsToTarget is the first round whose evaluation reached
	// TargetAccuracy, or -1.
	RoundsToTarget int
	// BytesToTarget is the cumulative byte count at that round, or the total.
	BytesToTarget int64
	// TimeToTarget is the simulated time at that round, or the total.
	TimeToTarget float64
	TotalBytes   int64
	ModelBytes   int64
	MetaBytes    int64
	SimTime      float64
	// StaleMean/StaleMax/StaleP95 summarize payload staleness over every
	// aggregation of the run (see RoundMetrics).
	StaleMean float64
	StaleMax  float64
	StaleP95  float64
	// EffNeighborsMean is the mean merged-payload count per aggregation over
	// the run; DropRate the late fraction of expected payloads; LateDrops
	// the total count of live neighbors missing at aggregation time (see
	// RoundMetrics.EffNeighbors/DropRate). Async engine only.
	EffNeighborsMean float64
	DropRate         float64
	LateDrops        int64
	// Epochs counts the topology epochs entered (>= 1 for async runs: the
	// initial graph is epoch 0). SpectralGapMean/Min average and bound the
	// per-epoch spectral gap of the live mixing matrix; TurnoverMean is the
	// mean per-rotation neighbor turnover (0 when the topology never
	// rotates). Async engine only.
	Epochs          int
	SpectralGapMean float64
	SpectralGapMin  float64
	TurnoverMean    float64
	// Telemetry is the end-of-run metrics snapshot when AsyncConfig.Telemetry
	// was set (nil otherwise). Observational only: values like the speculation
	// hit rate may differ across parallelism levels even though every other
	// Result field is bit-identical, so determinism comparisons skip it.
	Telemetry *metrics.Snapshot
}

// Engine runs one experiment.
type Engine struct {
	Nodes    []core.Node
	Topology topology.Provider
	TestSet  *datasets.Dataset
	Config   Config

	// Mesh optionally routes payloads through a transport (byte accounting
	// then cross-checks the mesh's own counters). Nil uses direct delivery.
	Mesh transport.Mesh

	// OnRound, if set, is called after every round with that round's metrics.
	OnRound func(RoundMetrics)
}

// Run executes the configured number of rounds (or stops at the target
// accuracy) and returns the collected metrics.
func (e *Engine) Run() (*Result, error) {
	cfg := e.Config
	cfg.setDefaults()
	n := len(e.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("simulation: no nodes")
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("simulation: rounds must be positive")
	}

	res := &Result{RoundsToTarget: -1}
	var ledger byteLedger
	simTime := 0.0

	pool := newComputePool(cfg.Parallelism)
	defer pool.close()

	payloads := make([][]byte, n)
	breakdowns := make([]codec.ByteBreakdown, n)
	losses := make([]float64, n)
	var faultRNG *vec.RNG
	if cfg.DropProb > 0 || cfg.OfflineProb > 0 {
		faultRNG = vec.NewRNG(cfg.FaultSeed ^ 0xfa017)
	}
	offline := make([]bool, n)
	sampler := newEvalSampler(n, cfg)

	for round := 0; round < cfg.Rounds; round++ {
		graph, weights := e.Topology.Round(round)
		if graph.N != n {
			return nil, fmt.Errorf("simulation: topology has %d nodes, engine has %d", graph.N, n)
		}

		// Failure injection: decide who sits this round out.
		for i := range offline {
			offline[i] = faultRNG != nil && cfg.OfflineProb > 0 && faultRNG.Float64() < cfg.OfflineProb
		}

		// Phase 1+2: local training then payload construction, per node.
		if err := pool.forEach(n, func(i int) error {
			if offline[i] {
				losses[i] = math.NaN()
				payloads[i] = nil
				breakdowns[i] = codec.ByteBreakdown{}
				return nil
			}
			loss, p, bd, err := trainShare(e.Nodes[i], round)
			if err != nil {
				return fmt.Errorf("node %d share: %w", i, err)
			}
			losses[i], payloads[i], breakdowns[i] = loss, p, bd
			return nil
		}); err != nil {
			return nil, err
		}

		// Phase 3: delivery along topology edges + byte accounting.
		inbox := make([]map[int][]byte, n)
		for i := 0; i < n; i++ {
			inbox[i] = make(map[int][]byte, graph.Degree(i))
		}
		maxNodeBytes := int64(0)
		expect := make([]int, n) // messages each node expects via the mesh
		for i := 0; i < n; i++ {
			if offline[i] {
				continue
			}
			var sentTo int64
			for _, j := range graph.Neighbors(i) {
				if offline[j] {
					continue
				}
				sentTo++
				if faultRNG != nil && cfg.DropProb > 0 && faultRNG.Float64() < cfg.DropProb {
					continue // sender pays for the bytes; receiver never sees them
				}
				if e.Mesh != nil {
					// The synchronous schedule delivers within the round, so
					// both timestamps carry the round clock.
					if err := e.Mesh.Send(transport.Message{
						From: i, To: j, Round: round, Payload: payloads[i],
						SentAt: simTime, ArriveAt: simTime,
					}); err != nil {
						return nil, fmt.Errorf("simulation: send %d->%d: %w", i, j, err)
					}
					expect[j]++
				} else {
					inbox[j][i] = payloads[i]
				}
			}
			sent := ledger.addSend(breakdowns[i], len(payloads[i]), sentTo)
			if sent > maxNodeBytes {
				maxNodeBytes = sent
			}
		}
		if e.Mesh != nil {
			for j := 0; j < n; j++ {
				for k := 0; k < expect[j]; k++ {
					msg, err := e.Mesh.Recv(j)
					if err != nil {
						return nil, fmt.Errorf("simulation: recv for %d: %w", j, err)
					}
					inbox[j][msg.From] = msg.Payload
				}
			}
		}

		// Phase 4: aggregation.
		if err := pool.forEach(n, func(i int) error {
			if offline[i] {
				return nil
			}
			if err := e.Nodes[i].Aggregate(round, weights[i], inbox[i]); err != nil {
				return fmt.Errorf("node %d aggregate: %w", i, err)
			}
			return nil
		}); err != nil {
			return nil, err
		}

		// Simulated clock: compute is parallel across nodes; the round's
		// communication is bounded by the busiest uplink.
		stepTime := float64(localSteps(e.Nodes[0])) * cfg.ComputeSecPerStep
		simTime += stepTime + float64(maxNodeBytes)/cfg.BandwidthBytesPerSec + cfg.LatencySec

		// Sampled runs reuse the row's eval subset for the alpha summary,
		// keeping row emission O(sample).
		subset := sampler.subsetFor(round)
		rm := RoundMetrics{
			Round:         round,
			TrainLoss:     mean(losses),
			TestLoss:      math.NaN(),
			TestAcc:       math.NaN(),
			CumTotalBytes: ledger.total,
			CumModelBytes: ledger.model,
			CumMetaBytes:  ledger.meta,
			SimTime:       simTime,
			MeanAlpha:     meanAlphaOver(e.Nodes, subset),
		}

		if round%cfg.EvalEvery == cfg.EvalEvery-1 || round == cfg.Rounds-1 {
			loss, acc := evaluateNodesOn(pool, e.Nodes, e.TestSet, cfg, subset, nil)
			rm.TestLoss, rm.TestAcc = loss, acc
			res.FinalAccuracy, res.FinalLoss = acc, loss
			if cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy && res.RoundsToTarget < 0 {
				res.RoundsToTarget = round + 1
				res.BytesToTarget = ledger.total
				res.TimeToTarget = simTime
			}
		}
		res.Rounds = append(res.Rounds, rm)
		if e.OnRound != nil {
			e.OnRound(rm)
		}
		if cfg.TargetAccuracy > 0 && res.RoundsToTarget >= 0 {
			break
		}
	}
	res.TotalBytes, res.ModelBytes, res.MetaBytes = ledger.total, ledger.model, ledger.meta
	res.SimTime = simTime
	if res.RoundsToTarget < 0 {
		res.BytesToTarget = ledger.total
		res.TimeToTarget = simTime
	}
	return res, nil
}

// Evaluate returns mean test loss and accuracy over the evaluated nodes.
func (e *Engine) Evaluate(cfg Config) (loss, acc float64) {
	cfg.setDefaults()
	return evaluateNodes(e.Nodes, e.TestSet, cfg)
}
