package simulation

import (
	"math"
	"testing"

	"repro/internal/choco"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/vec"
)

// buildTask constructs a small non-IID image task shared by the tests.
func buildTask(t *testing.T, nodes int, seed uint64) (*datasets.Dataset, [][]int) {
	t.Helper()
	rng := vec.NewRNG(seed)
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Channels: 1, Height: 8, Width: 8,
		TrainPerClass: 40, TestPerClass: 10,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := datasets.PartitionShards(ds, nodes, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	return ds, parts
}

type algo int

const (
	algoFull algo = iota
	algoRandom
	algoJWINS
	algoChoco
)

func buildNodes(t *testing.T, kind algo, ds *datasets.Dataset, parts [][]int, seed uint64) []core.Node {
	t.Helper()
	opts := core.TrainOpts{LR: 0.05, LocalSteps: 2}
	rootRNG := vec.NewRNG(seed)
	var nodes []core.Node
	for i := range parts {
		nodeRNG := rootRNG.Split()
		model := nn.NewMLP(64, 24, 4, nodeRNG)
		loader := datasets.NewLoader(ds, parts[i], 8, nodeRNG.Split())
		var (
			n   core.Node
			err error
		)
		switch kind {
		case algoFull:
			n, err = core.NewFullSharing(i, model, loader, opts, codec.Raw32{})
		case algoRandom:
			n, err = core.NewRandomSampling(i, model, loader, opts, 0.37, codec.Raw32{}, nodeRNG.Split())
		case algoJWINS:
			cfg := core.DefaultJWINSConfig()
			cfg.FloatCodec = codec.Raw32{}
			n, err = core.NewJWINS(i, model, loader, opts, cfg, nodeRNG.Split())
		case algoChoco:
			n, err = choco.New(i, model, loader, opts, choco.Config{Fraction: 0.2, Gamma: 0.2, FloatCodec: codec.Raw32{}})
		}
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	return nodes
}

func runAlgo(t *testing.T, kind algo, rounds int) *Result {
	t.Helper()
	const n = 8
	ds, parts := buildTask(t, n, 42)
	nodes := buildNodes(t, kind, ds, parts, 7)
	g, err := topology.Regular(n, 4, vec.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{
		Nodes:    nodes,
		Topology: topology.NewStatic(g),
		TestSet:  ds,
		Config:   Config{Rounds: rounds, EvalEvery: rounds, Parallelism: 2},
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFullSharingLearns(t *testing.T) {
	res := runAlgo(t, algoFull, 30)
	if res.FinalAccuracy < 0.6 {
		t.Fatalf("full-sharing accuracy %.2f, want > 0.6 (chance 0.25)", res.FinalAccuracy)
	}
}

func TestJWINSLearns(t *testing.T) {
	res := runAlgo(t, algoJWINS, 30)
	if res.FinalAccuracy < 0.6 {
		t.Fatalf("JWINS accuracy %.2f, want > 0.6", res.FinalAccuracy)
	}
}

func TestRandomSamplingLearns(t *testing.T) {
	res := runAlgo(t, algoRandom, 30)
	if res.FinalAccuracy < 0.45 {
		t.Fatalf("random sampling accuracy %.2f, want > 0.45", res.FinalAccuracy)
	}
}

func TestChocoLearns(t *testing.T) {
	res := runAlgo(t, algoChoco, 30)
	if res.FinalAccuracy < 0.45 {
		t.Fatalf("CHOCO accuracy %.2f, want > 0.45", res.FinalAccuracy)
	}
}

// TestJWINSSavesBytes: the headline claim — JWINS transfers far fewer bytes
// than full-sharing over the same number of rounds.
func TestJWINSSavesBytes(t *testing.T) {
	full := runAlgo(t, algoFull, 10)
	jwins := runAlgo(t, algoJWINS, 10)
	ratio := float64(jwins.TotalBytes) / float64(full.TotalBytes)
	if ratio > 0.65 {
		t.Fatalf("JWINS used %.0f%% of full-sharing bytes, expected < 65%%", ratio*100)
	}
	t.Logf("bytes: full %d, JWINS %d (%.0f%% savings)", full.TotalBytes, jwins.TotalBytes, (1-ratio)*100)
}

// TestMetadataShareIsSmall: with gamma compression, metadata must be a small
// fraction of total traffic (Figure 9's point).
func TestMetadataShareIsSmall(t *testing.T) {
	res := runAlgo(t, algoJWINS, 10)
	metaFrac := float64(res.MetaBytes) / float64(res.TotalBytes)
	if metaFrac > 0.25 {
		t.Fatalf("metadata is %.0f%% of traffic, expected well below 25%%", metaFrac*100)
	}
}

func TestEngineDeterminism(t *testing.T) {
	a := runAlgo(t, algoJWINS, 5)
	b := runAlgo(t, algoJWINS, 5)
	if a.TotalBytes != b.TotalBytes {
		t.Fatalf("bytes differ across identical runs: %d vs %d", a.TotalBytes, b.TotalBytes)
	}
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatal("round counts differ")
	}
	for i := range a.Rounds {
		if a.Rounds[i].TrainLoss != b.Rounds[i].TrainLoss {
			t.Fatalf("round %d train loss differs: %v vs %v", i, a.Rounds[i].TrainLoss, b.Rounds[i].TrainLoss)
		}
	}
}

func TestEngineWithMesh(t *testing.T) {
	const n = 6
	ds, parts := buildTask(t, n, 11)
	nodes := buildNodes(t, algoFull, ds, parts, 13)
	g, err := topology.Regular(n, 4, vec.NewRNG(15))
	if err != nil {
		t.Fatal(err)
	}
	mesh := transport.NewInMemory(n)
	defer mesh.Close()
	eng := &Engine{
		Nodes:    nodes,
		Topology: topology.NewStatic(g),
		TestSet:  ds,
		Config:   Config{Rounds: 3, EvalEvery: 3},
		Mesh:     mesh,
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Engine accounting must equal the mesh's own byte counters.
	var meshTotal int64
	for i := 0; i < n; i++ {
		meshTotal += mesh.SentBytes(i)
	}
	if meshTotal != res.TotalBytes {
		t.Fatalf("engine says %d bytes, mesh says %d", res.TotalBytes, meshTotal)
	}
}

func TestTargetAccuracyStopping(t *testing.T) {
	const n = 8
	ds, parts := buildTask(t, n, 21)
	nodes := buildNodes(t, algoFull, ds, parts, 23)
	g, err := topology.Regular(n, 4, vec.NewRNG(25))
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{
		Nodes:    nodes,
		Topology: topology.NewStatic(g),
		TestSet:  ds,
		Config: Config{
			Rounds: 100, EvalEvery: 2, TargetAccuracy: 0.5, Parallelism: 2,
		},
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsToTarget < 0 {
		t.Fatalf("never reached 50%% accuracy (final %.2f)", res.FinalAccuracy)
	}
	if res.RoundsToTarget >= 100 {
		t.Fatal("did not stop early")
	}
	if res.BytesToTarget <= 0 || res.TimeToTarget <= 0 {
		t.Fatalf("missing target metrics: %+v", res)
	}
	t.Logf("reached 50%% in %d rounds, %d bytes", res.RoundsToTarget, res.BytesToTarget)
}

func TestDynamicTopologyRun(t *testing.T) {
	const n = 8
	ds, parts := buildTask(t, n, 31)
	nodes := buildNodes(t, algoJWINS, ds, parts, 33)
	eng := &Engine{
		Nodes:    nodes,
		Topology: topology.NewDynamic(n, 4, vec.NewRNG(35)),
		TestSet:  ds,
		Config:   Config{Rounds: 10, EvalEvery: 10, Parallelism: 2},
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.FinalAccuracy) {
		t.Fatal("no evaluation recorded")
	}
}

func TestSimulatedClockAdvances(t *testing.T) {
	res := runAlgo(t, algoFull, 5)
	prev := 0.0
	for _, rm := range res.Rounds {
		if rm.SimTime <= prev {
			t.Fatalf("simulated time not monotone: %v after %v", rm.SimTime, prev)
		}
		prev = rm.SimTime
	}
}

func TestMeanAlphaRecorded(t *testing.T) {
	res := runAlgo(t, algoJWINS, 6)
	for _, rm := range res.Rounds {
		if math.IsNaN(rm.MeanAlpha) || rm.MeanAlpha <= 0 || rm.MeanAlpha > 1 {
			t.Fatalf("mean alpha %v out of range", rm.MeanAlpha)
		}
	}
	full := runAlgo(t, algoFull, 2)
	if !math.IsNaN(full.Rounds[0].MeanAlpha) {
		t.Fatal("full-sharing should have NaN mean alpha")
	}
}

func TestEngineValidation(t *testing.T) {
	eng := &Engine{}
	if _, err := eng.Run(); err == nil {
		t.Fatal("empty engine accepted")
	}
}
