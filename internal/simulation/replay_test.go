package simulation

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/trace"
)

// recordedRun executes one async run with a recorder attached and returns
// the trace and the result.
func recordedRun(t *testing.T, rounds int, mut func(*AsyncConfig)) (*trace.Trace, *Result) {
	t.Helper()
	var rec *trace.Recorder
	eng := asyncEngineFor(t, algoJWINS, rounds, func(cfg *AsyncConfig) {
		if mut != nil {
			mut(cfg)
		}
		policy := trace.PolicyBarrier
		if cfg.Gossip {
			policy = trace.PolicyGossip
		}
		meta := map[string]string{}
		if cfg.Policy != nil {
			policy = cfg.Policy.Name()
			switch p := cfg.Policy.(type) {
			case BoundedStalenessPolicy:
				meta["policy_k"] = strconv.Itoa(p.K)
				meta["policy_tau"] = strconv.Itoa(p.Tau)
				meta["policy_adaptive"] = strconv.FormatBool(p.AdaptiveTau)
			case DeadlinePolicy:
				meta["policy_deadline_factor"] = strconv.FormatFloat(p.Factor, 'g', -1, 64)
			}
		}
		rec = trace.NewRecorder(trace.Header{
			Nodes: 8, Rounds: rounds, Source: trace.SourceSim, Policy: policy, Meta: meta,
		})
		cfg.Record = rec
	})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rec.Trace(), res
}

// TestRecordReplayIdentical: a recorded schedule, round-tripped through the
// wire format, must replay into the identical event sequence, byte ledger,
// and learning trajectory — under both aggregation policies, with
// heterogeneity, churn, and message drops in play.
func TestRecordReplayIdentical(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*AsyncConfig)
	}{
		{"barrier-churn-drops", func(cfg *AsyncConfig) {
			cfg.Het = Heterogeneity{ComputeSpread: 0.4, BandwidthSpread: 0.3, LatencySpread: 0.2, Seed: 5}
			cfg.Churn = GenerateChurn(8, 0.25, 0.02, 0.2, 0.1, 77)
			cfg.DropProb = 0.1
			cfg.FaultSeed = 3
		}},
		{"gossip-het", func(cfg *AsyncConfig) {
			cfg.Gossip = true
			cfg.Het = Heterogeneity{ComputeSpread: 0.6, BandwidthSpread: 0.4, Seed: 21}
		}},
		{"bounded-het-churn", func(cfg *AsyncConfig) {
			cfg.Policy = BoundedStalenessPolicy{K: 2, Tau: 1}
			cfg.Het = Heterogeneity{ComputeSpread: 0.7, BandwidthSpread: 0.3, Seed: 11}
			cfg.Churn = GenerateChurn(8, 0.25, 0.02, 0.3, 0.1, 9)
		}},
		{"deadline-het-drops", func(cfg *AsyncConfig) {
			cfg.Policy = DeadlinePolicy{Factor: 1.2}
			cfg.Het = Heterogeneity{ComputeSpread: 1.0, BandwidthSpread: 0.4, Seed: 5}
			cfg.DropProb = 0.1
			cfg.FaultSeed = 3
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const rounds = 10
			recorded, recRes := recordedRun(t, rounds, tc.mut)

			// Round-trip through both encodings before replaying: the replay
			// must work from what survives the wire, not in-memory state.
			for _, binary := range []bool{false, true} {
				var buf bytes.Buffer
				var err error
				if binary {
					err = trace.WriteBinary(&buf, recorded)
				} else {
					err = trace.Write(&buf, recorded)
				}
				if err != nil {
					t.Fatal(err)
				}
				decoded, err := trace.Read(&buf)
				if err != nil {
					t.Fatal(err)
				}
				rp, err := trace.NewReplayer(decoded)
				if err != nil {
					t.Fatal(err)
				}
				rec2 := trace.NewRecorder(decoded.Header)
				eng := asyncEngineFor(t, algoJWINS, rounds, func(cfg *AsyncConfig) {
					tc.mut(cfg)
					// Replay must override these with the recorded schedule.
					cfg.Het = Heterogeneity{ComputeSpread: 9, Seed: 1234}
					cfg.Churn = nil
					cfg.DropProb = 0
					cfg.Replay = rp
					cfg.Record = rec2
				})
				repRes, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}

				replayed := rec2.Trace()
				if len(replayed.Events) != len(recorded.Events) {
					t.Fatalf("event counts differ: replay %d, recorded %d", len(replayed.Events), len(recorded.Events))
				}
				for i := range recorded.Events {
					if replayed.Events[i] != recorded.Events[i] {
						t.Fatalf("event %d differs:\nreplay   %+v\nrecorded %+v", i, replayed.Events[i], recorded.Events[i])
					}
				}
				if repRes.TotalBytes != recRes.TotalBytes || repRes.ModelBytes != recRes.ModelBytes ||
					repRes.MetaBytes != recRes.MetaBytes {
					t.Fatalf("ledger differs: replay (%d,%d,%d), recorded (%d,%d,%d)",
						repRes.TotalBytes, repRes.ModelBytes, repRes.MetaBytes,
						recRes.TotalBytes, recRes.ModelBytes, recRes.MetaBytes)
				}
				if repRes.SimTime != recRes.SimTime || repRes.FinalAccuracy != recRes.FinalAccuracy {
					t.Fatalf("trajectory differs: replay (%.6f, %.4f), recorded (%.6f, %.4f)",
						repRes.SimTime, repRes.FinalAccuracy, recRes.SimTime, recRes.FinalAccuracy)
				}
				if len(repRes.Rounds) != len(recRes.Rounds) {
					t.Fatalf("row counts differ: %d vs %d", len(repRes.Rounds), len(recRes.Rounds))
				}
				for i := range recRes.Rounds {
					if !metricsEqual(repRes.Rounds[i], recRes.Rounds[i]) {
						t.Fatalf("row %d differs: %+v vs %+v", i, repRes.Rounds[i], recRes.Rounds[i])
					}
				}
			}
		})
	}
}

// metricsEqual compares rows treating NaN as equal to NaN (unevaluated
// rounds carry NaN test metrics).
func metricsEqual(a, b RoundMetrics) bool {
	eq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	return a.Round == b.Round && eq(a.TrainLoss, b.TrainLoss) &&
		eq(a.TestLoss, b.TestLoss) && eq(a.TestAcc, b.TestAcc) &&
		a.CumTotalBytes == b.CumTotalBytes && a.CumModelBytes == b.CumModelBytes &&
		a.CumMetaBytes == b.CumMetaBytes && a.SimTime == b.SimTime &&
		eq(a.MeanAlpha, b.MeanAlpha) &&
		a.StaleMean == b.StaleMean && a.StaleMax == b.StaleMax && a.StaleP95 == b.StaleP95 &&
		a.EffNeighbors == b.EffNeighbors && a.DropRate == b.DropRate
}

// TestReplayMismatchErrors: replaying against a different configuration must
// fail loudly, not silently produce a wrong run.
func TestReplayMismatchErrors(t *testing.T) {
	recorded, _ := recordedRun(t, 5, nil)

	// Wrong node count.
	rp, err := trace.NewReplayer(recorded)
	if err != nil {
		t.Fatal(err)
	}
	smaller := recorded.Header
	smaller.Nodes = 4
	if _, err := trace.NewReplayer(&trace.Trace{Header: smaller, Events: recorded.Events}); err == nil {
		t.Fatal("replayer accepted header/event node mismatch")
	}

	// Bigger iteration budget than the recording: the schedule runs dry.
	eng := asyncEngineFor(t, algoJWINS, 9, func(cfg *AsyncConfig) {
		cfg.Replay = rp
	})
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "replay") {
		t.Fatalf("oversized replay budget: got %v, want replay stall error", err)
	}
}

// TestRecordedEarlyStopReplays: a run that stops at its target accuracy
// records only the executed prefix; the header must advertise the executed
// budget so the truncated trace replays cleanly instead of stalling.
func TestRecordedEarlyStopReplays(t *testing.T) {
	var rec *trace.Recorder
	eng := asyncEngineFor(t, algoJWINS, 30, func(cfg *AsyncConfig) {
		cfg.EvalEvery = 2
		cfg.TargetAccuracy = 0.3 // reached well before the 30-iteration budget
		rec = trace.NewRecorder(trace.Header{
			Nodes: 8, Rounds: 30, Source: trace.SourceSim, Policy: trace.PolicyBarrier,
		})
		cfg.Record = rec
	})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsToTarget <= 0 || len(res.Rounds) >= 30 {
		t.Fatalf("run did not stop early (rows %d, target round %d); test needs a truncated recording",
			len(res.Rounds), res.RoundsToTarget)
	}
	hdr := rec.Trace().Header
	if hdr.Rounds != len(res.Rounds) {
		t.Fatalf("header advertises %d rounds, run executed %d", hdr.Rounds, len(res.Rounds))
	}

	rp, err := trace.NewReplayer(rec.Trace())
	if err != nil {
		t.Fatal(err)
	}
	rec2 := trace.NewRecorder(hdr)
	eng2 := asyncEngineFor(t, algoJWINS, hdr.Rounds, func(cfg *AsyncConfig) {
		cfg.EvalEvery = 2
		cfg.Replay = rp
		cfg.Record = rec2
	})
	repRes, err := eng2.Run()
	if err != nil {
		t.Fatalf("truncated trace did not replay: %v", err)
	}
	if len(repRes.Rounds) != len(res.Rounds) {
		t.Fatalf("replay emitted %d rows, recording executed %d", len(repRes.Rounds), len(res.Rounds))
	}
	a, b := rec.Trace().Events, rec2.Trace().Events
	if len(a) != len(b) {
		t.Fatalf("event counts differ: recorded %d, replayed %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestStalenessMetrics: the barrier policy in the homogeneous no-churn limit
// merges only current-iteration payloads (zero staleness everywhere), while
// gossip under heterogeneity must observe nonzero lag. Rows and the result
// summary both carry the distribution.
func TestStalenessMetrics(t *testing.T) {
	clean := runAsync(t, algoFull, 10, nil)
	if clean.StaleMean != 0 || clean.StaleMax != 0 || clean.StaleP95 != 0 {
		t.Fatalf("degenerate barrier run reports staleness: %+v", clean)
	}
	for _, rm := range clean.Rounds {
		if rm.StaleMean != 0 || rm.StaleMax != 0 {
			t.Fatalf("degenerate barrier row %d reports staleness: %+v", rm.Round, rm)
		}
	}

	gossip := runAsync(t, algoFull, 20, func(cfg *AsyncConfig) {
		cfg.Gossip = true
		cfg.Het = Heterogeneity{ComputeSpread: 1.2, Seed: 7}
	})
	if gossip.StaleMax <= 0 {
		t.Fatal("gossip under heavy heterogeneity observed no staleness")
	}
	if gossip.StaleMean <= 0 || gossip.StaleMean > gossip.StaleMax {
		t.Fatalf("implausible staleness summary: mean %v, max %v", gossip.StaleMean, gossip.StaleMax)
	}
	if gossip.StaleP95 < gossip.StaleMean-1e-9 || gossip.StaleP95 > gossip.StaleMax+1e-9 {
		t.Fatalf("p95 %v outside [mean %v, max %v]", gossip.StaleP95, gossip.StaleMean, gossip.StaleMax)
	}
	anyRow := false
	for _, rm := range gossip.Rounds {
		if rm.StaleMax > 0 {
			anyRow = true
		}
		if math.IsNaN(rm.StaleMean) {
			t.Fatalf("row %d staleness is NaN", rm.Round)
		}
	}
	if !anyRow {
		t.Fatal("no row carries the observed staleness")
	}
}

// TestRecordedTraceValidates: what the engine records must satisfy the strict
// reader (monotone times, in-range ids) byte for byte.
func TestRecordedTraceValidates(t *testing.T) {
	recorded, _ := recordedRun(t, 8, func(cfg *AsyncConfig) {
		cfg.Het = Heterogeneity{ComputeSpread: 0.5, BandwidthSpread: 0.5, Seed: 3}
		cfg.Churn = GenerateChurn(8, 0.25, 0.02, 0.3, 0.1, 9)
		cfg.DropProb = 0.15
		cfg.FaultSeed = 8
	})
	if err := trace.Validate(recorded.Header, recorded.Events); err != nil {
		t.Fatalf("recorded trace fails validation: %v", err)
	}
	if len(recorded.Events) == 0 {
		t.Fatal("nothing recorded")
	}
	kinds := map[trace.Kind]int{}
	for _, ev := range recorded.Events {
		kinds[ev.Kind]++
	}
	for _, k := range []trace.Kind{trace.KindTrainDone, trace.KindSend, trace.KindArrival,
		trace.KindAggregate, trace.KindLeave, trace.KindJoin} {
		if kinds[k] == 0 {
			t.Fatalf("no %v events recorded: %v", k, kinds)
		}
	}
}
