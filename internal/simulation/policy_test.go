package simulation

import (
	"errors"
	"testing"

	"repro/internal/trace"
)

// TestPolicyReady: the readiness predicates, table-driven over the scheduler
// views the engine can present.
func TestPolicyReady(t *testing.T) {
	cases := []struct {
		name   string
		policy AggregationPolicy
		view   policyView
		want   bool
	}{
		{"barrier-complete", BarrierPolicy{}, policyView{iter: 3, live: 4, heard: 4}, true},
		{"barrier-missing-one", BarrierPolicy{}, policyView{iter: 3, live: 4, heard: 3}, false},
		{"barrier-isolated", BarrierPolicy{}, policyView{iter: 3, live: 0, heard: 0}, true},
		{"gossip-always", GossipPolicy{}, policyView{iter: 3, live: 4, heard: 0}, true},

		{"bounded-quorum-met", BoundedStalenessPolicy{K: 2, Tau: 1}, policyView{iter: 5, live: 4, heard: 2, minGot: 0, tau: 1}, true},
		{"bounded-quorum-short", BoundedStalenessPolicy{K: 2, Tau: 1}, policyView{iter: 5, live: 4, heard: 1, minGot: 0, tau: 1}, false},
		{"bounded-lag-ok", BoundedStalenessPolicy{K: 9, Tau: 2}, policyView{iter: 5, live: 4, heard: 1, minGot: 3, tau: 2}, true},
		{"bounded-lag-exceeded", BoundedStalenessPolicy{K: 9, Tau: 2}, policyView{iter: 5, live: 4, heard: 1, minGot: 2, tau: 2}, false},
		{"bounded-never-heard", BoundedStalenessPolicy{K: 9, Tau: 2}, policyView{iter: 1, live: 4, heard: 0, minGot: -1, tau: 2}, true},
		{"bounded-quorum-clamped", BoundedStalenessPolicy{K: 9, Tau: 0}, policyView{iter: 5, live: 3, heard: 3, minGot: 5, tau: 0}, true},
		{"bounded-isolated", BoundedStalenessPolicy{K: 2, Tau: 1}, policyView{iter: 5, live: 0}, true},

		{"deadline-complete", DeadlinePolicy{Factor: 1.5}, policyView{iter: 5, live: 4, heard: 4}, true},
		{"deadline-waiting", DeadlinePolicy{Factor: 1.5}, policyView{iter: 5, live: 4, heard: 2}, false},
		{"deadline-fired", DeadlinePolicy{Factor: 1.5}, policyView{iter: 5, live: 4, heard: 2, deadline: true}, true},
	}
	for _, tc := range cases {
		if got := tc.policy.ready(tc.view); got != tc.want {
			t.Errorf("%s: ready(%+v) = %v, want %v", tc.name, tc.view, got, tc.want)
		}
	}
}

// TestPolicyValidate: unusable parameters are rejected with ErrPolicyConfig.
func TestPolicyValidate(t *testing.T) {
	bad := []AggregationPolicy{
		BoundedStalenessPolicy{K: 0, Tau: 1},
		BoundedStalenessPolicy{K: 2, Tau: -1},
		DeadlinePolicy{Factor: 0},
		DeadlinePolicy{Factor: -1},
	}
	for _, p := range bad {
		if err := p.validate(); !errors.Is(err, ErrPolicyConfig) {
			t.Errorf("%#v: validate() = %v, want ErrPolicyConfig", p, err)
		}
	}
	good := []AggregationPolicy{
		BarrierPolicy{}, GossipPolicy{},
		BoundedStalenessPolicy{K: 1, Tau: 0},
		DeadlinePolicy{Factor: 1.5},
	}
	for _, p := range good {
		if err := p.validate(); err != nil {
			t.Errorf("%#v: validate() = %v, want nil", p, err)
		}
	}
}

// TestPolicyByName: the shared constructor behind CLI and replay specs.
func TestPolicyByName(t *testing.T) {
	if p, err := PolicyByName("", 0, 0, false, 0); err != nil || p != nil {
		t.Fatalf(`PolicyByName("") = (%v, %v), want (nil, nil)`, p, err)
	}
	p, err := PolicyByName(trace.PolicyBounded, 3, 2, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.(BoundedStalenessPolicy); got.K != 3 || got.Tau != 2 || !got.AdaptiveTau {
		t.Fatalf("bounded params lost: %+v", got)
	}
	for _, name := range []string{trace.PolicyBarrier, trace.PolicyGossip, trace.PolicyDeadline} {
		p, err := PolicyByName(name, 1, 1, false, 1.5)
		if err != nil || p.Name() != name {
			t.Fatalf("PolicyByName(%q) = (%v, %v)", name, p, err)
		}
	}
	if _, err := PolicyByName("quorum", 0, 0, false, 0); !errors.Is(err, ErrPolicyConfig) {
		t.Fatalf("unknown name: got %v, want ErrPolicyConfig", err)
	}
}

// TestPolicyConfigRejected: Run must refuse ambiguous or invalid policy
// configuration instead of guessing.
func TestPolicyConfigRejected(t *testing.T) {
	eng := asyncEngineFor(t, algoFull, 4, func(cfg *AsyncConfig) {
		cfg.Gossip = true
		cfg.Policy = BarrierPolicy{}
	})
	if _, err := eng.Run(); !errors.Is(err, ErrPolicyConfig) {
		t.Fatalf("Gossip+Policy: got %v, want ErrPolicyConfig", err)
	}

	eng = asyncEngineFor(t, algoFull, 4, func(cfg *AsyncConfig) {
		cfg.Policy = BoundedStalenessPolicy{K: 0, Tau: 2}
	})
	if _, err := eng.Run(); !errors.Is(err, ErrPolicyConfig) {
		t.Fatalf("invalid bounded params: got %v, want ErrPolicyConfig", err)
	}
}

// TestPolicyBehavior: the observable signatures of each policy. The barrier
// in the homogeneous no-churn limit merges every neighbor with nothing late;
// the deadline policy under heavy stragglers fires before the slowest
// neighbors deliver (late drops, drop rate > 0); bounded staleness still
// completes every iteration row.
func TestPolicyBehavior(t *testing.T) {
	clean := runAsync(t, algoFull, 8, nil)
	if clean.DropRate != 0 || clean.LateDrops != 0 {
		t.Fatalf("barrier run reports drops: rate %v, late %d", clean.DropRate, clean.LateDrops)
	}
	if clean.EffNeighborsMean != 4 {
		t.Fatalf("barrier on a degree-4 graph merged %.2f neighbors per aggregation", clean.EffNeighborsMean)
	}

	het := Heterogeneity{ComputeSpread: 1.2, BandwidthSpread: 0.4, Seed: 7}
	deadline := runAsync(t, algoFull, 12, func(cfg *AsyncConfig) {
		cfg.Policy = DeadlinePolicy{Factor: 1.1}
		cfg.Het = het
	})
	if deadline.LateDrops <= 0 || deadline.DropRate <= 0 {
		t.Fatalf("deadline under stragglers dropped nothing: rate %v, late %d", deadline.DropRate, deadline.LateDrops)
	}
	if deadline.EffNeighborsMean >= 4 {
		t.Fatalf("deadline drops should lower effective neighbors below the degree, got %.2f", deadline.EffNeighborsMean)
	}
	if len(deadline.Rounds) != 12 {
		t.Fatalf("deadline run emitted %d/12 rows", len(deadline.Rounds))
	}

	bounded := runAsync(t, algoFull, 12, func(cfg *AsyncConfig) {
		cfg.Policy = BoundedStalenessPolicy{K: 2, Tau: 2}
		cfg.Het = het
	})
	if len(bounded.Rounds) != 12 {
		t.Fatalf("bounded run emitted %d/12 rows", len(bounded.Rounds))
	}
	if bounded.StaleMax <= 0 {
		t.Fatal("bounded staleness under stragglers observed no lag")
	}
	// Bounded staleness may never be slower than the full barrier: the
	// barrier condition is one of its disjuncts.
	barrier := runAsync(t, algoFull, 12, func(cfg *AsyncConfig) {
		cfg.Het = het
	})
	if bounded.SimTime > barrier.SimTime {
		t.Fatalf("bounded run slower than the full barrier: %v vs %v", bounded.SimTime, barrier.SimTime)
	}
}

// TestReplayPolicyMismatch: a trace recorded under one policy must not replay
// under another — name and parameters are both validated.
func TestReplayPolicyMismatch(t *testing.T) {
	recorded, _ := recordedRun(t, 5, func(cfg *AsyncConfig) {
		cfg.Policy = BoundedStalenessPolicy{K: 2, Tau: 2}
	})
	rp, err := trace.NewReplayer(recorded)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong policy family.
	eng := asyncEngineFor(t, algoJWINS, 5, func(cfg *AsyncConfig) {
		cfg.Replay = rp
	})
	if _, err := eng.Run(); !errors.Is(err, ErrReplayConfig) {
		t.Fatalf("barrier engine accepted a bounded trace: %v", err)
	}

	// Right family, wrong parameter.
	rp2, err := trace.NewReplayer(recorded)
	if err != nil {
		t.Fatal(err)
	}
	eng = asyncEngineFor(t, algoJWINS, 5, func(cfg *AsyncConfig) {
		cfg.Policy = BoundedStalenessPolicy{K: 2, Tau: 3}
		cfg.Replay = rp2
	})
	if _, err := eng.Run(); !errors.Is(err, ErrReplayConfig) {
		t.Fatalf("tau mismatch accepted: %v", err)
	}
}

// TestAsyncParallelismInvarianceBounded: bounded staleness must stay
// bit-identical across parallelism levels — its quorum decisions depend only
// on the deterministic event order, never on worker scheduling.
func TestAsyncParallelismInvarianceBounded(t *testing.T) {
	mut := func(cfg *AsyncConfig) {
		cfg.Policy = BoundedStalenessPolicy{K: 2, Tau: 1}
		cfg.Het = Heterogeneity{ComputeSpread: 0.8, BandwidthSpread: 0.3, Seed: 21}
		cfg.Churn = GenerateChurn(8, 0.25, 0.02, 0.3, 0.1, 13)
	}
	ref := captureAsyncRun(t, 8, 12, 1, mut)
	for _, p := range parallelismLevels()[1:] {
		got := captureAsyncRun(t, 8, 12, p, mut)
		assertRunsIdentical(t, "bounded", ref, got, p)
	}
}

// TestAsyncParallelismInvarianceDeadline: the deadline policy injects its own
// schedule events; they must land at identical (Time, Seq) positions at every
// parallelism level.
func TestAsyncParallelismInvarianceDeadline(t *testing.T) {
	mut := func(cfg *AsyncConfig) {
		cfg.Policy = DeadlinePolicy{Factor: 1.2}
		cfg.Het = Heterogeneity{ComputeSpread: 1.0, BandwidthSpread: 0.4, Seed: 5}
		cfg.DropProb = 0.05
		cfg.FaultSeed = 3
	}
	ref := captureAsyncRun(t, 8, 12, 1, mut)
	deadlines := 0
	for _, ev := range ref.trace {
		if ev.Kind == EventDeadline {
			deadlines++
		}
	}
	if deadlines == 0 {
		t.Fatal("no deadline events in the reference trace; the arm is not exercising the policy")
	}
	for _, p := range parallelismLevels()[1:] {
		got := captureAsyncRun(t, 8, 12, p, mut)
		assertRunsIdentical(t, "deadline", ref, got, p)
	}
}
