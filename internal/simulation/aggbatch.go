// aggbatch.go routes the async scheduler's pool-dispatched aggregates
// through core.AggregatePipeline, the aggregate mirror of sharebatch.go:
// when several plan-sharing JWINS nodes aggregate in close succession,
// their merge compute is deferred into a small queue and submitted as ONE
// pooled task running a single batched aggregate pass (one decode-or-
// cache-hit sweep, one batched inverse DWT, one batched forward for the
// accumulator update).
//
// Only the compute is batched — never the schedule. Everything the
// aggregate EVENT produces (staleness samples, policy accounting, the
// trace record, inbox cleanup, the iteration advance, row emission, the
// next train-done push) stays at the event, exactly as the per-node path
// has it, so traces, ledgers, and rows are bit-identical to
// AggregateBatch=0 at any parallelism.
//
// Deferring an aggregate also defers the node's NEXT speculative train
// dispatch: the per-node path chains that train on the aggregate's future
// (tails[i]), and in the pool's inline mode a dispatch runs immediately —
// dispatching the train before the deferred aggregate ran would reorder
// the node's program-order chain. scheduleTrain therefore records the
// pending train in the node's queue entry, and always folds the train-done
// time into aggDue, so the flush happens before any event could observe
// either computation:
//
//   - when the queue reaches the configured batch size;
//   - in the event loop, before processing any event at or after aggDue
//     (every queued node's next train-done time bounds aggDue, so the
//     train-done commit — speculative or inline-fallback — always finds
//     its aggregate on tails[i]);
//   - at the top of drain(), which covers evaluation rows (they read every
//     model), error paths, and the end of the run;
//   - at the top of onJoin, the one churn path that re-dispatches work for
//     a node outside the aggregate→scheduleTrain flow.
//
// After a flush submits the batch, each member's pending train goes
// through the normal speculative machinery (the share-batch queue when
// ShareBatch is on, the per-node dispatch otherwise) against the updated
// tails — the same dispatches scheduleTrain would have made, only later,
// and "dispatching later" is bounded by the same safety predicate
// (specSafe) that already governs when those results may become visible.
package simulation

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/dwt"
	"repro/internal/topology"
)

// gatedBatchWidth applies the single-core gate to a requested batch width:
// on a GOMAXPROCS=1 host the deferred-dispatch machinery cannot overlap
// anything and has been measured to cost 1–5% wall (cache locality of the
// deferral queue), so batching auto-disables unless explicitly forced.
func gatedBatchWidth(requested int, force bool, gomaxprocs int) int {
	if requested >= 2 && gomaxprocs == 1 && !force {
		return 0
	}
	return requested
}

// aggEntry is one deferred aggregate: node's merge for iteration iter with
// the mixing weights and payload map captured at the aggregate event. jn is
// cleared once the entry has been folded into a flush group. trainPending
// marks that the node's next speculative train (for trainIter, whose
// train-done event is at trainT) was deferred along with it.
type aggEntry struct {
	node int
	iter int
	jn   *core.JWINSNode
	plan *dwt.Plan
	w    topology.Weights
	msgs map[int][]byte

	trainPending bool
	trainIter    int
	trainT       float64
}

// aggBatchCtx is the reusable state of one in-flight batched aggregate:
// the pipeline (with its batch scratch), members, dependency futures, and
// the per-member weight/payload slices AggregateBatch consumes. Acquired on
// the event loop at flush time, released by the pool worker, so the free
// list is mutex-guarded.
type aggBatchCtx struct {
	pipe  core.AggregatePipeline
	nodes []*core.JWINSNode
	ws    []topology.Weights
	msgs  []map[int][]byte
	prevs []*future
	ids   []int
}

// aggCtxPool is the free list of aggBatchCtx values.
type aggCtxPool struct {
	mu   sync.Mutex
	free []*aggBatchCtx
}

func (p *aggCtxPool) get() *aggBatchCtx {
	p.mu.Lock()
	var c *aggBatchCtx
	if n := len(p.free); n > 0 {
		c = p.free[n-1]
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if c == nil {
		return &aggBatchCtx{}
	}
	c.nodes = c.nodes[:0]
	c.ws = c.ws[:0]
	for i := range c.msgs {
		c.msgs[i] = nil // drop payload-map references from the previous batch
	}
	c.msgs = c.msgs[:0]
	c.prevs = c.prevs[:0]
	c.ids = c.ids[:0]
	return c
}

func (p *aggCtxPool) put(c *aggBatchCtx) {
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
}

// submitAggregate dispatches node i's aggregate on the pool — the per-node
// reference path; the batched path below must be bit-identical to it.
func (r *asyncRun) submitAggregate(i, iter int, wi topology.Weights, msgs map[int][]byte) {
	r.tails[i] = r.pool.submit(r.tails[i], func() error {
		err := r.eng.Nodes[i].Aggregate(iter, wi, msgs)
		r.msgsPool.put(msgs)
		if err != nil {
			return fmt.Errorf("node %d aggregate: %w", i, err)
		}
		return nil
	})
}

// enqueueAgg defers node i's aggregate into the batch queue when eligible
// (AggregateBatch >= 2, a plan-sharing JWINS node), reporting whether it
// did. The caller falls back to submitAggregate otherwise.
func (r *asyncRun) enqueueAgg(i, iter int, wi topology.Weights, msgs map[int][]byte) bool {
	if r.cfg.AggregateBatch < 2 {
		return false
	}
	jn, ok := r.eng.Nodes[i].(*core.JWINSNode)
	if !ok {
		return false
	}
	plan := jn.SharePlan()
	if plan == nil {
		return false
	}
	r.aggIdx[i] = len(r.aggQueue)
	r.aggQueue = append(r.aggQueue, aggEntry{node: i, iter: iter, jn: jn, plan: plan, w: wi, msgs: msgs})
	if len(r.aggQueue) >= r.cfg.AggregateBatch {
		r.flushAgg()
	}
	return true
}

// deferTrain records node i's speculative train in its queued aggregate
// entry (scheduleTrain calls it instead of dispatching when aggIdx[i] >= 0)
// and folds the train-done time into aggDue unconditionally — even a
// non-speculative train's inline fallback waits on tails[i] at its event,
// so the deferred aggregate must be flushed by then.
func (r *asyncRun) deferTrain(i, iter int, t float64, speculate bool) {
	e := &r.aggQueue[r.aggIdx[i]]
	if t < r.aggDue {
		r.aggDue = t
	}
	if speculate {
		e.trainPending = true
		e.trainIter = iter
		e.trainT = t
	}
}

// flushAgg dispatches every queued aggregate, grouping members by plan in
// first-appearance order (singletons take the per-node reference path),
// then re-runs each member's deferred speculative train dispatch against
// the updated tails. Safe to call with an empty queue.
func (r *asyncRun) flushAgg() {
	q := r.aggQueue
	if len(q) == 0 {
		return
	}
	for s := range q {
		if q[s].jn == nil {
			continue
		}
		if !r.dispatchAggGroup(q, s) {
			// Degenerate single-member group: the batched machinery would add
			// overhead for nothing, so it runs the per-node path instead.
			e := &q[s]
			r.submitAggregate(e.node, e.iter, e.w, e.msgs)
			e.jn = nil
		}
	}
	// Dispatch the deferred trains only now, after every member's aggregate
	// is on its tail: a speculative train chains on tails[node], and in the
	// pool's inline mode it would otherwise run before its aggregate.
	for s := range q {
		e := &q[s]
		r.aggIdx[e.node] = -1
		if !e.trainPending {
			continue
		}
		e.trainPending = false
		if r.cfg.ShareBatch >= 2 {
			// The node aggregated through a plan, so its share is batch-
			// eligible under the same plan.
			jn := r.eng.Nodes[e.node].(*core.JWINSNode)
			r.enqueueSpec(e.node, e.trainIter, e.trainT, jn, jn.SharePlan())
		} else {
			r.dispatchSpec(e.node, e.trainIter)
		}
	}
	r.aggQueue = q[:0]
	r.aggDue = math.Inf(1)
}

// dispatchAggGroup collects every queue entry from position s onward that
// shares q[s]'s plan and submits them as one batched task. It reports false
// (and submits nothing) when q[s] is the only member of its group.
func (r *asyncRun) dispatchAggGroup(q []aggEntry, s int) bool {
	plan := q[s].plan
	count := 0
	for j := s; j < len(q); j++ {
		if q[j].jn != nil && q[j].plan == plan {
			count++
		}
	}
	if count == 1 {
		return false
	}
	ctx := r.aggCtxs.get()
	for j := s; j < len(q); j++ {
		e := &q[j]
		if e.jn == nil || e.plan != plan {
			continue
		}
		ctx.ids = append(ctx.ids, e.node)
		ctx.nodes = append(ctx.nodes, e.jn)
		ctx.ws = append(ctx.ws, e.w)
		ctx.msgs = append(ctx.msgs, e.msgs)
		ctx.prevs = append(ctx.prevs, r.tails[e.node])
		e.jn = nil
	}
	fut := r.pool.submitBatch(ctx.prevs, func() error {
		// Stage-for-stage the per-node Aggregate (see core.AggregatePipeline's
		// bit-identity contract); nodes are independent, so batch order is
		// per-node order.
		err := ctx.pipe.AggregateBatch(ctx.nodes, ctx.ws, ctx.msgs)
		for _, m := range ctx.msgs {
			r.msgsPool.put(m)
		}
		if err != nil {
			return fmt.Errorf("aggregate batch %v: %w", ctx.ids, err)
		}
		r.aggCtxs.put(ctx)
		return nil
	})
	for _, i := range ctx.ids {
		r.tails[i] = fut
	}
	return true
}
