// events.go defines the event vocabulary and priority queue of the
// event-driven scheduler in async.go. Events are ordered by simulated time
// with a monotone sequence number as tie-break, so same-instant events are
// processed in push order and whole runs are reproducible from a seed.
package simulation

import "fmt"

// EventKind enumerates the scheduler's event types.
type EventKind int

// Event kinds.
const (
	// EventTrainDone fires when a node finishes its local SGD phase; the
	// scheduler then runs train+share and broadcasts the payload.
	EventTrainDone EventKind = iota
	// EventArrival fires when a payload (or the knowledge that it was
	// dropped) reaches its receiver.
	EventArrival
	// EventLeave removes a node from the live set (churn).
	EventLeave
	// EventJoin returns a node to the live set (churn).
	EventJoin
	// EventEpoch rotates the communication topology into epoch Iter
	// (EpochProvider runs only). Node is 0 by convention: the change is
	// global, not per-node.
	EventEpoch
	// EventDeadline fires a node's straggler-dropping aggregation deadline
	// for iteration Iter (DeadlinePolicy runs only). Stale deadlines — the
	// node already aggregated, churned, or advanced — are no-ops.
	EventDeadline
)

// String implements fmt.Stringer for trace output.
func (k EventKind) String() string {
	switch k {
	case EventTrainDone:
		return "train-done"
	case EventArrival:
		return "arrival"
	case EventLeave:
		return "leave"
	case EventJoin:
		return "join"
	case EventEpoch:
		return "epoch"
	case EventDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry in the async scheduler's queue. The exported fields are
// visible to trace hooks (AsyncConfig.OnEvent); payload and generation are
// scheduler-internal.
type Event struct {
	// Time is the simulated timestamp in seconds.
	Time float64
	// Seq breaks ties deterministically: same-time events process in the
	// order they were pushed.
	Seq int64
	// Kind is the event type.
	Kind EventKind
	// Node is the subject: the trainer, receiver, leaver, or joiner.
	Node int
	// From is the sender id (EventArrival only).
	From int
	// Iter is the sender's local iteration for arrivals, or the node's
	// iteration for train-done events.
	Iter int
	// Dropped marks an arrival whose payload was lost in flight: the
	// receiver learns it should stop waiting, but gets no bytes (the sync
	// engine's drop semantics, where senders still pay for the bytes).
	Dropped bool

	payload []byte
	gen     int // node generation; events from before a leave/join are stale
}

// eventQueue is an unboxed indexed 4-ary min-heap over (Time, Seq). Events
// live in a slot-addressed slab recycled through a free list, and the heap
// orders 4-byte slot indices instead of whole structs — so pushes never box
// through an interface, never allocate in steady state (the slab and index
// arrays grow once to the high-water mark), and sift operations move int32s
// rather than ~90-byte Event values. A 4-ary layout halves the tree depth of
// a binary heap, trading slightly more comparisons per level for far fewer
// cache-missing levels on the deep queues of 1024-node runs.
//
// (Time, Seq) is a total order (Seq is unique), so pop order is identical to
// the previous container/heap implementation — the bit-for-bit trace parity
// the determinism suite asserts.
type eventQueue struct {
	slab []Event // slot-addressed storage
	free []int32 // recycled slots
	heap []int32 // slot indices ordered by (Time, Seq)
}

// Len returns the number of queued events.
func (q *eventQueue) Len() int { return len(q.heap) }

// push enqueues ev, recycling a slab slot when one is free.
func (q *eventQueue) push(ev Event) {
	var slot int32
	if n := len(q.free); n > 0 {
		slot = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		slot = int32(len(q.slab))
		q.slab = append(q.slab, Event{})
	}
	q.slab[slot] = ev
	q.heap = append(q.heap, slot)
	q.siftUp(len(q.heap) - 1)
}

// pop removes and returns the minimum event. The event's slab slot is
// cleared (so recycled slots never pin payload buffers) and returned to the
// free list before the copy is handed back.
func (q *eventQueue) pop() Event {
	top := q.heap[0]
	ev := q.slab[top]
	q.slab[top] = Event{} // drop the payload reference held by the pooled slot
	q.free = append(q.free, top)
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 1 {
		q.siftDown(0)
	}
	return ev
}

// less orders slab slots by (Time, Seq).
func (q *eventQueue) less(a, b int32) bool {
	ea, eb := &q.slab[a], &q.slab[b]
	if ea.Time != eb.Time {
		return ea.Time < eb.Time
	}
	return ea.Seq < eb.Seq
}

func (q *eventQueue) siftUp(i int) {
	h := q.heap
	slot := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !q.less(slot, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = slot
}

func (q *eventQueue) siftDown(i int) {
	h := q.heap
	n := len(h)
	slot := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.less(h[c], h[best]) {
				best = c
			}
		}
		if !q.less(h[best], slot) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = slot
}
