// events.go defines the event vocabulary and priority queue of the
// event-driven scheduler in async.go. Events are ordered by simulated time
// with a monotone sequence number as tie-break, so same-instant events are
// processed in push order and whole runs are reproducible from a seed.
package simulation

import "fmt"

// EventKind enumerates the scheduler's event types.
type EventKind int

// Event kinds.
const (
	// EventTrainDone fires when a node finishes its local SGD phase; the
	// scheduler then runs train+share and broadcasts the payload.
	EventTrainDone EventKind = iota
	// EventArrival fires when a payload (or the knowledge that it was
	// dropped) reaches its receiver.
	EventArrival
	// EventLeave removes a node from the live set (churn).
	EventLeave
	// EventJoin returns a node to the live set (churn).
	EventJoin
	// EventEpoch rotates the communication topology into epoch Iter
	// (EpochProvider runs only). Node is 0 by convention: the change is
	// global, not per-node.
	EventEpoch
)

// String implements fmt.Stringer for trace output.
func (k EventKind) String() string {
	switch k {
	case EventTrainDone:
		return "train-done"
	case EventArrival:
		return "arrival"
	case EventLeave:
		return "leave"
	case EventJoin:
		return "join"
	case EventEpoch:
		return "epoch"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry in the async scheduler's queue. The exported fields are
// visible to trace hooks (AsyncConfig.OnEvent); payload and generation are
// scheduler-internal.
type Event struct {
	// Time is the simulated timestamp in seconds.
	Time float64
	// Seq breaks ties deterministically: same-time events process in the
	// order they were pushed.
	Seq int64
	// Kind is the event type.
	Kind EventKind
	// Node is the subject: the trainer, receiver, leaver, or joiner.
	Node int
	// From is the sender id (EventArrival only).
	From int
	// Iter is the sender's local iteration for arrivals, or the node's
	// iteration for train-done events.
	Iter int
	// Dropped marks an arrival whose payload was lost in flight: the
	// receiver learns it should stop waiting, but gets no bytes (the sync
	// engine's drop semantics, where senders still pay for the bytes).
	Dropped bool

	payload []byte
	gen     int // node generation; events from before a leave/join are stale
}

// eventQueue is a binary min-heap over (Time, Seq). It implements
// container/heap.Interface.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].Seq < q[j].Seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push implements heap.Interface.
func (q *eventQueue) Push(x any) { *q = append(*q, x.(*Event)) }

// Pop implements heap.Interface.
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
