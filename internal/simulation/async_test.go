package simulation

import (
	"math"
	"testing"

	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/vec"
)

// asyncEngineFor builds an AsyncEngine over the standard 8-node test task.
func asyncEngineFor(t *testing.T, kind algo, rounds int, mut func(*AsyncConfig)) *AsyncEngine {
	t.Helper()
	const n = 8
	ds, parts := buildTask(t, n, 42)
	nodes := buildNodes(t, kind, ds, parts, 7)
	g, err := topology.Regular(n, 4, vec.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := AsyncConfig{
		Config: Config{Rounds: rounds, EvalEvery: rounds, Parallelism: 2},
	}
	if mut != nil {
		mut(&cfg)
	}
	return &AsyncEngine{
		Nodes:    nodes,
		Topology: topology.NewStatic(g),
		TestSet:  ds,
		Config:   cfg,
	}
}

func runAsync(t *testing.T, kind algo, rounds int, mut func(*AsyncConfig)) *Result {
	t.Helper()
	res, err := asyncEngineFor(t, kind, rounds, mut).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAsyncMatchesSyncDegenerate: with homogeneous profiles, no churn, and
// the local-barrier policy, the event-driven scheduler must reproduce the
// synchronous engine: same per-iteration aggregation inputs, hence the same
// learning trajectory and the same cumulative byte ledger.
func TestAsyncMatchesSyncDegenerate(t *testing.T) {
	const rounds = 20
	sync := runAlgo(t, algoJWINS, rounds)
	async := runAsync(t, algoJWINS, rounds, nil)

	if len(async.Rounds) != len(sync.Rounds) {
		t.Fatalf("row counts differ: async %d, sync %d", len(async.Rounds), len(sync.Rounds))
	}
	for i := range sync.Rounds {
		s, a := sync.Rounds[i], async.Rounds[i]
		if a.CumTotalBytes != s.CumTotalBytes || a.CumMetaBytes != s.CumMetaBytes {
			t.Fatalf("round %d bytes differ: async (%d,%d), sync (%d,%d)",
				i, a.CumTotalBytes, a.CumMetaBytes, s.CumTotalBytes, s.CumMetaBytes)
		}
		if math.Abs(a.TrainLoss-s.TrainLoss) > 1e-9*(1+math.Abs(s.TrainLoss)) {
			t.Fatalf("round %d train loss differs: async %v, sync %v", i, a.TrainLoss, s.TrainLoss)
		}
	}
	// The acceptance bound: accuracy within 0.5 pp. With the barrier policy
	// the trajectories are identical so this is usually exact.
	if math.Abs(async.FinalAccuracy-sync.FinalAccuracy) > 0.005 {
		t.Fatalf("final accuracy diverged: async %.4f, sync %.4f", async.FinalAccuracy, sync.FinalAccuracy)
	}
}

// TestAsyncDeterministicTrace: same seed, same config => identical event
// trace (kind, time, node, sender, iteration) and identical final metrics.
func TestAsyncDeterministicTrace(t *testing.T) {
	type traceEntry struct {
		Time       float64
		Kind       EventKind
		Node, From int
		Iter       int
	}
	capture := func() ([]traceEntry, *Result) {
		var trace []traceEntry
		eng := asyncEngineFor(t, algoJWINS, 8, func(cfg *AsyncConfig) {
			cfg.Het = Heterogeneity{ComputeSpread: 0.4, BandwidthSpread: 0.3, LatencySpread: 0.2, Seed: 5}
			cfg.Churn = GenerateChurn(8, 0.25, 0.02, 0.2, 0.1, 77)
			cfg.DropProb = 0.1
			cfg.FaultSeed = 3
			cfg.OnEvent = func(ev Event) {
				trace = append(trace, traceEntry{ev.Time, ev.Kind, ev.Node, ev.From, ev.Iter})
			}
		})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return trace, res
	}
	traceA, resA := capture()
	traceB, resB := capture()
	if len(traceA) == 0 {
		t.Fatal("no events traced")
	}
	if len(traceA) != len(traceB) {
		t.Fatalf("trace lengths differ: %d vs %d", len(traceA), len(traceB))
	}
	for i := range traceA {
		if traceA[i] != traceB[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, traceA[i], traceB[i])
		}
	}
	if resA.TotalBytes != resB.TotalBytes || resA.FinalAccuracy != resB.FinalAccuracy || resA.SimTime != resB.SimTime {
		t.Fatalf("results differ: %+v vs %+v", resA, resB)
	}
}

// TestAsyncStragglersSlowOnlyNeighbors: a heavy compute tail must stretch
// simulated time, and the run must still learn.
func TestAsyncStragglersStretchTime(t *testing.T) {
	base := runAsync(t, algoFull, 12, nil)
	straggled := runAsync(t, algoFull, 12, func(cfg *AsyncConfig) {
		cfg.Het = Heterogeneity{ComputeSpread: 1.0, Seed: 11}
	})
	if straggled.SimTime <= base.SimTime {
		t.Fatalf("stragglers did not stretch sim time: %v <= %v", straggled.SimTime, base.SimTime)
	}
	if straggled.FinalAccuracy < 0.55 {
		t.Fatalf("straggled run failed to learn: %.2f", straggled.FinalAccuracy)
	}
}

// TestAsyncChurnJWINSSurvives: a third of the nodes leave and rejoin mid-run
// under the barrier policy; partial-sharing averaging must keep converging.
func TestAsyncChurnJWINSSurvives(t *testing.T) {
	res := runAsync(t, algoJWINS, 30, func(cfg *AsyncConfig) {
		cfg.Churn = GenerateChurn(8, 0.33, 0.05, 0.5, 0.2, 13)
	})
	if res.FinalAccuracy < 0.5 {
		t.Fatalf("JWINS under churn reached only %.2f", res.FinalAccuracy)
	}
	if len(res.Rounds) != 30 {
		t.Fatalf("run did not complete all rows: %d/30", len(res.Rounds))
	}
}

// TestAsyncGossipLearns: the non-blocking policy mixes stale models but must
// still converge on the degenerate (homogeneous) task.
func TestAsyncGossipLearns(t *testing.T) {
	res := runAsync(t, algoFull, 30, func(cfg *AsyncConfig) {
		cfg.Gossip = true
		cfg.Het = Heterogeneity{ComputeSpread: 0.5, Seed: 21}
	})
	if res.FinalAccuracy < 0.5 {
		t.Fatalf("gossip policy reached only %.2f", res.FinalAccuracy)
	}
}

// TestAsyncMeshAccounting: routing through the in-memory mesh must leave the
// engine's ledger equal to the mesh's own wire counters.
func TestAsyncMeshAccounting(t *testing.T) {
	eng := asyncEngineFor(t, algoFull, 5, nil)
	mesh := transport.NewInMemory(len(eng.Nodes))
	defer mesh.Close()
	eng.Mesh = mesh
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	var wire int64
	for i := range eng.Nodes {
		wire += mesh.SentBytes(i)
	}
	if wire != res.TotalBytes {
		t.Fatalf("ledger says %d bytes, mesh says %d", res.TotalBytes, wire)
	}
}

// TestAsyncMeshTransparency: a mesh-routed run must produce exactly the same
// learning trajectory and ledger as direct delivery, even when heterogeneity
// and churn reorder simulated deliveries relative to mesh send order (the
// meshFetch pairing must match on iteration, not just sender).
func TestAsyncMeshTransparency(t *testing.T) {
	run := func(withMesh bool) *Result {
		eng := asyncEngineFor(t, algoJWINS, 12, func(cfg *AsyncConfig) {
			cfg.Het = Heterogeneity{ComputeSpread: 0.6, BandwidthSpread: 0.5, Seed: 41}
			cfg.Churn = GenerateChurn(8, 0.25, 0.02, 0.2, 0.1, 43)
		})
		if withMesh {
			mesh := transport.NewInMemoryBuffered(len(eng.Nodes), 256)
			defer mesh.Close()
			eng.Mesh = mesh
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	direct := run(false)
	meshed := run(true)
	if direct.TotalBytes != meshed.TotalBytes || direct.FinalAccuracy != meshed.FinalAccuracy {
		t.Fatalf("mesh routing changed the run: direct (%d bytes, %.4f), meshed (%d bytes, %.4f)",
			direct.TotalBytes, direct.FinalAccuracy, meshed.TotalBytes, meshed.FinalAccuracy)
	}
	for i := range direct.Rounds {
		if direct.Rounds[i].TrainLoss != meshed.Rounds[i].TrainLoss {
			t.Fatalf("round %d train loss differs under mesh routing", i)
		}
	}
}

// TestAsyncSimTimeMonotone: emitted rows must carry non-decreasing simulated
// timestamps even under churn and heterogeneity.
func TestAsyncSimTimeMonotone(t *testing.T) {
	res := runAsync(t, algoFull, 15, func(cfg *AsyncConfig) {
		cfg.Het = Heterogeneity{ComputeSpread: 0.6, BandwidthSpread: 0.4, Seed: 31}
		cfg.Churn = GenerateChurn(8, 0.25, 0.05, 0.3, 0.1, 33)
	})
	prev := -1.0
	for _, rm := range res.Rounds {
		if rm.SimTime < prev {
			t.Fatalf("sim time regressed: %v after %v", rm.SimTime, prev)
		}
		prev = rm.SimTime
	}
}

// TestAsyncValidation: bad configurations must error, not hang.
func TestAsyncValidation(t *testing.T) {
	eng := &AsyncEngine{}
	if _, err := eng.Run(); err == nil {
		t.Fatal("empty async engine accepted")
	}
	eng2 := asyncEngineFor(t, algoFull, 3, func(cfg *AsyncConfig) {
		cfg.Profiles = make([]NodeProfile, 2) // wrong length
	})
	if _, err := eng2.Run(); err == nil {
		t.Fatal("profile length mismatch accepted")
	}
	eng3 := asyncEngineFor(t, algoFull, 3, func(cfg *AsyncConfig) {
		cfg.Churn = []ChurnEvent{{Time: 0.01, Node: 99}} // out of range
	})
	if _, err := eng3.Run(); err == nil {
		t.Fatal("out-of-range churn node accepted")
	}
}

// TestSampleProfilesDegenerate: zero spreads must reproduce the base config
// exactly, and sampling must be deterministic in the seed.
func TestSampleProfilesDegenerate(t *testing.T) {
	base := Config{}
	base.setDefaults()
	flat := SampleProfiles(4, Config{}, Heterogeneity{})
	for i, p := range flat {
		if p.ComputeSecPerStep != base.ComputeSecPerStep ||
			p.BandwidthBytesPerSec != base.BandwidthBytesPerSec ||
			p.LatencySec != base.LatencySec {
			t.Fatalf("profile %d deviates from base without heterogeneity: %+v", i, p)
		}
	}
	het := Heterogeneity{ComputeSpread: 0.5, Seed: 9}
	a := SampleProfiles(4, Config{}, het)
	b := SampleProfiles(4, Config{}, het)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("profile sampling not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	varied := false
	for i := 1; i < len(a); i++ {
		if a[i].ComputeSecPerStep != a[0].ComputeSecPerStep {
			varied = true
		}
	}
	if !varied {
		t.Fatal("nonzero spread produced identical profiles")
	}
}

// TestGenerateChurnShape: trace is seeded, paired (leave before rejoin), and
// sized by the requested fraction.
func TestGenerateChurnShape(t *testing.T) {
	tr := GenerateChurn(16, 0.25, 1, 10, 2, 5)
	if len(tr) != 8 { // 4 victims x (leave + join)
		t.Fatalf("expected 8 events, got %d", len(tr))
	}
	leaves := map[int]float64{}
	for _, ev := range tr {
		if !ev.Join {
			if ev.Time < 1 || ev.Time >= 10 {
				t.Fatalf("leave time %v outside [1,10)", ev.Time)
			}
			leaves[ev.Node] = ev.Time
		}
	}
	for _, ev := range tr {
		if ev.Join {
			left, ok := leaves[ev.Node]
			if !ok {
				t.Fatalf("node %d rejoins without leaving", ev.Node)
			}
			if ev.Time <= left {
				t.Fatalf("node %d rejoins at %v before leaving at %v", ev.Node, ev.Time, left)
			}
		}
	}
	again := GenerateChurn(16, 0.25, 1, 10, 2, 5)
	for i := range tr {
		if tr[i] != again[i] {
			t.Fatalf("churn trace not deterministic at %d", i)
		}
	}
	if got := GenerateChurn(16, 0, 1, 10, 2, 5); got != nil {
		t.Fatalf("zero fraction should yield nil trace, got %v", got)
	}
}
