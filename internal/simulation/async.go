// async.go is the event-driven counterpart to the synchronous round engine:
// a single-threaded discrete-event scheduler in which every node carries its
// own compute/bandwidth/latency profile, trains and communicates on its own
// clock, and can leave and rejoin mid-run. It reuses the roundio layer
// (train+share, byte ledger, evaluation) so metrics are directly comparable
// with Engine, and reports the same Result/RoundMetrics series, with rows
// aligned on per-node iteration numbers instead of global rounds.
//
// Aggregation is governed by a pluggable AggregationPolicy (see policy.go).
// Four policies are supported:
//
//   - local barrier (default): a node aggregates iteration k once every live
//     neighbor's iteration-k payload has arrived (or is known dropped, or the
//     neighbor left). With homogeneous profiles and no churn this reproduces
//     the synchronous schedule exactly — the degenerate-case parity test —
//     while heterogeneous profiles turn slow nodes into stragglers that stall
//     only their own neighborhood, not the whole graph.
//
//   - gossip: a node aggregates immediately after broadcasting, using the
//     freshest payload it holds from each live neighbor. Fast nodes run
//     ahead; stale models mix in asynchronously with unbounded staleness.
//
//   - bounded staleness: a node waits until at least k live neighbors
//     delivered the current iteration, or every live neighbor is within τ
//     iterations — the semi-async middle ground, with an adaptive mode that
//     retunes τ at each topology-epoch boundary from the observed lag p95.
//
//   - straggler-dropping deadline: a barrier with a simulated-time deadline
//     derived from the node's own nominal round length; late neighbors are
//     dropped from the merge and counted in the drop-rate metrics. Deadline
//     events are recorded in traces and consumed verbatim on replay, so the
//     record→replay byte-parity guarantee holds for every policy.
//
// Churn is a seeded trace of leave/join events. A leaver keeps its model; on
// rejoin its iteration counter fast-forwards to the run's emitted-row floor,
// so it resumes at the current global position with stale parameters — the
// scenario behind the paper's claim that partial-sharing averaging is
// "flexible to nodes leaving and joining" while CHOCO's error-feedback
// replicas desynchronize.
//
// The communication graph is driven through topology.LiveProvider. A plain
// Provider is pinned to its round-0 graph and only filtered for liveness
// (the static setting); a topology.EpochProvider additionally rotates the
// graph on simulated-time epochs: the scheduler processes an EventEpoch at
// each boundary, live nodes push their cached broadcast over every fresh
// edge (the state sync that keeps barriers deadlock-free across rotations),
// stale per-edge payload buffers are pruned and pooled, and the new epoch's
// mixing quality (spectral gap, neighbor turnover) lands in the emitted
// rows. Epoch boundaries are recorded in traces and replayed from them, so
// rotated runs keep the record→replay byte-parity guarantee.
package simulation

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vec"
)

// Typed configuration errors; match with errors.Is.
var (
	// ErrUnsupportedTopology rejects provider/engine combinations that would
	// silently run a different experiment than requested.
	ErrUnsupportedTopology = errors.New("simulation: unsupported topology for the async engine")
	// ErrReplayConfig rejects a replay whose engine configuration cannot
	// reproduce the recorded schedule (e.g. a mismatched epoch length).
	ErrReplayConfig = errors.New("simulation: replay configuration mismatch")
)

// NodeProfile is one node's hardware profile in the simulated-time model.
type NodeProfile struct {
	// ComputeSecPerStep is the duration of one local SGD step.
	ComputeSecPerStep float64
	// BandwidthBytesPerSec is the node's uplink; neighbor copies serialize
	// through it.
	BandwidthBytesPerSec float64
	// LatencySec is the one-way propagation delay added to every message.
	LatencySec float64
}

// Heterogeneity draws per-node profiles around the base Config values using
// independent lognormal multipliers (median 1), the standard straggler model:
// most nodes sit near the base, a heavy tail is markedly slower.
type Heterogeneity struct {
	// ComputeSpread is the lognormal sigma for compute time (0 = homogeneous).
	ComputeSpread float64
	// BandwidthSpread is the lognormal sigma for uplink bandwidth.
	BandwidthSpread float64
	// LatencySpread is the lognormal sigma for latency.
	LatencySpread float64
	// Seed drives the draws (default 0x686574, "het").
	Seed uint64
}

func (h Heterogeneity) zero() bool {
	return h.ComputeSpread == 0 && h.BandwidthSpread == 0 && h.LatencySpread == 0
}

// SampleProfiles draws n node profiles around base's time model. With a
// zero-valued Heterogeneity every profile equals the base exactly.
func SampleProfiles(n int, base Config, het Heterogeneity) []NodeProfile {
	base.setDefaults()
	seed := het.Seed
	if seed == 0 {
		seed = 0x686574
	}
	rng := vec.NewRNG(seed)
	out := make([]NodeProfile, n)
	for i := range out {
		out[i] = NodeProfile{
			ComputeSecPerStep:    base.ComputeSecPerStep * logNormal(rng, het.ComputeSpread),
			BandwidthBytesPerSec: base.BandwidthBytesPerSec / logNormal(rng, het.BandwidthSpread),
			LatencySec:           base.LatencySec * logNormal(rng, het.LatencySpread),
		}
	}
	return out
}

// logNormal returns exp(sigma * N(0,1)), drawing exactly one deviate even
// when sigma is zero so profiles stay stable as spreads are toggled.
func logNormal(rng *vec.RNG, sigma float64) float64 {
	z := rng.NormFloat64()
	if sigma == 0 {
		return 1
	}
	return math.Exp(sigma * z)
}

// NominalRoundSec estimates one synchronous round's duration under c's time
// model: local compute, one uplink's serialization of degree payload copies,
// and latency. Callers use it to place churn traces in absolute simulated
// time without running the schedule first.
func (c Config) NominalRoundSec(steps, payloadBytes, degree int) float64 {
	c.setDefaults()
	return float64(steps)*c.ComputeSecPerStep +
		float64(degree*(payloadBytes+transport.FrameOverhead))/c.BandwidthBytesPerSec +
		c.LatencySec
}

// ChurnEvent is one entry of a churn trace.
type ChurnEvent struct {
	// Time is the simulated timestamp at which the change applies.
	Time float64
	// Node is the affected node.
	Node int
	// Join is true for a rejoin, false for a departure.
	Join bool
}

// GenerateChurn builds a seeded trace in which fraction of the n nodes leave
// once at a uniform time in [start, end) and rejoin after a downtime of
// meanDown*(0.5+U[0,1)). Rejoin times may exceed end; the run keeps
// processing churn until every node's iteration budget is met.
func GenerateChurn(n int, fraction, start, end, meanDown float64, seed uint64) []ChurnEvent {
	k := int(fraction*float64(n) + 0.5)
	if k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	rng := vec.NewRNG(seed ^ 0x636875726e) // "churn"
	victims := rng.SampleWithoutReplacement(n, k)
	out := make([]ChurnEvent, 0, 2*k)
	for _, node := range victims {
		leave := start + rng.Float64()*(end-start)
		down := meanDown * (0.5 + rng.Float64())
		out = append(out,
			ChurnEvent{Time: leave, Node: node, Join: false},
			ChurnEvent{Time: leave + down, Node: node, Join: true},
		)
	}
	return out
}

// AsyncConfig extends the base Config with the event-driven knobs. The
// embedded Config's Rounds field becomes the per-node iteration budget;
// OfflineProb is ignored (churn traces subsume it), DropProb still drops
// individual messages in flight.
type AsyncConfig struct {
	Config

	// Profiles fixes per-node hardware profiles. Nil samples them from Het
	// around the base Config time model.
	Profiles []NodeProfile
	// Het is the heterogeneity distribution used when Profiles is nil.
	Het Heterogeneity
	// Churn is the leave/join trace (see GenerateChurn).
	Churn []ChurnEvent
	// Gossip switches from the local-barrier policy to immediate freshest-
	// payload aggregation. Shorthand for Policy: GossipPolicy{}; setting both
	// Gossip and Policy is a configuration error.
	Gossip bool
	// Policy selects the aggregation policy (see policy.go). Nil defaults to
	// BarrierPolicy (or GossipPolicy when Gossip is set).
	Policy AggregationPolicy
	// MixingEvery samples the spectral-gap computation, which is O(n·d) per
	// power iteration and would otherwise sit on the 1024-node critical path
	// at every rotation: 0 or 1 computes the gap at every epoch boundary,
	// k > 1 only at epochs whose index is a multiple of k, negative never.
	// Skipped epochs report NaN in the rows' SpectralGap column; the Result
	// aggregates cover sampled epochs only. Neighbor turnover (O(edges)) is
	// always reported.
	MixingEvery int
	// ShareBatch batches the speculative train+share dispatches of
	// plan-sharing JWINS nodes: up to ShareBatch queued dispatches become one
	// pooled task running a single core.SharePipeline pass (one cache-blocked
	// DWT sweep over all members' deltas instead of per-node cascades). 0 or
	// 1 runs the per-node reference path. Only compute is batched — each
	// member's result still commits at its own train-done event, so results
	// are bit-identical either way (see sharebatch.go).
	ShareBatch int
	// AggregateBatch is ShareBatch's mirror for the aggregate half: up to
	// AggregateBatch pool-dispatched aggregates of plan-sharing JWINS nodes
	// become one core.AggregatePipeline pass (one decode-or-cache-hit sweep,
	// one batched inverse DWT, one batched accumulator forward). 0 or 1 runs
	// the per-node reference path. Only compute is batched — staleness
	// accounting, trace records, inbox cleanup, and iteration advances stay
	// at the aggregate event, so results are bit-identical either way (see
	// aggbatch.go).
	AggregateBatch int
	// ShareBatchForce overrides the single-core gate on both batch knobs:
	// with GOMAXPROCS=1 deferred dispatch cannot overlap anything and costs
	// a measured 1–5% wall, so ShareBatch/AggregateBatch auto-disable there
	// unless this is set (differential tests and benchmarks set it so the
	// batched code paths run regardless of host shape).
	ShareBatchForce bool
	// NoDecodeCache disables the fleet-shared decoded-payload cache that
	// otherwise lets every broadcast payload be entropy-decoded once instead
	// of once per recipient. Identity-keyed and invalidated on churn/epoch
	// rotation, the cache never changes results (decoding is a pure function
	// of the payload bytes) — the knob exists for differential tests and
	// perf comparisons.
	NoDecodeCache bool
	// OnEvent, if set, observes every processed event in order — the
	// deterministic event trace.
	OnEvent func(Event)

	// Telemetry, if set, streams runtime metrics (queue depth, barrier wait,
	// speculation hit rate, byte counters, ...) into its registry as the run
	// executes, and leaves a point-in-time snapshot in Result.Telemetry.
	// Strictly observational — the schedule is bit-identical with or without
	// it — and allocation-free on the hot path (see telemetry.go).
	Telemetry *Telemetry

	// Record, if set, captures the full executed schedule as trace events:
	// the authoritative train-done/arrival/leave/join sequence plus derived
	// send records (byte breakdowns) and aggregate records (staleness lags).
	// An in-memory trace.Recorder keeps the schedule for immediate replay; a
	// trace.StreamRecorder writes it to disk incrementally, the only option
	// whose memory stays bounded on 1024-node schedules.
	Record trace.Sink

	// Replay, if set, makes a recorded trace the authoritative schedule:
	// train-done times, arrival times, message drops, and leave/join churn
	// all come from the recording. Profiles/Het/Churn/DropProb stop
	// influencing the schedule, so a run replays deterministically — or a
	// wall-clock cluster trace re-executes under the simulator's ledger. A
	// Replayer is consumed by the run; build a fresh one per replay.
	Replay *trace.Replayer
}

// AsyncEngine runs one experiment under the event-driven scheduler.
type AsyncEngine struct {
	Nodes    []core.Node
	Topology topology.Provider
	TestSet  *datasets.Dataset
	Config   AsyncConfig

	// Mesh optionally routes payloads through a transport, as in Engine.
	// Messages carry SentAt/ArriveAt simulated timestamps and stay queued
	// from broadcast time until their simulated delivery, so long-latency or
	// slow-uplink scenarios need a generously buffered mesh (see
	// transport.NewInMemoryBuffered).
	Mesh transport.Mesh

	// OnRound is called after each emitted iteration row.
	OnRound func(RoundMetrics)
}

// asyncNode is the scheduler's per-node state.
type asyncNode struct {
	live bool
	gen  int // bumped on leave/join; stale train-done events are discarded
	iter int // completed aggregations
	// waiting is true while the node has broadcast iteration `iter` and is
	// blocked on the aggregation policy's readiness condition. waitStart is
	// the simulated time the wait began (telemetry's barrier-wait series).
	waiting   bool
	waitStart float64
	// deadlineFired marks that the node's straggler deadline for iteration
	// `iter` was processed while it was still waiting (DeadlinePolicy only);
	// cleared when the aggregation fires or the node churns.
	deadlineFired bool
	// got[j] is the highest iteration for which sender j's payload arrived
	// or was known dropped — the barrier bookkeeping.
	got map[int]int
	// inbox[j][k] buffers sender j's iteration-k payload. The barrier policy
	// consumes entries <= the aggregated iteration; gossip keeps only the
	// freshest entry per sender.
	inbox map[int]map[int][]byte
	// lastPayload/lastIter/lastBD cache the node's most recent broadcast so
	// a rejoining neighbor can pull current state (see onJoin).
	lastPayload []byte
	lastIter    int
	lastBD      codec.ByteBreakdown
}

// trainTask carries one speculatively dispatched train+share computation.
// The pool worker fills the result fields before fut completes; the event
// loop reads them only after waiting on fut at the train-done event.
type trainTask struct {
	fut     *future
	loss    float64
	payload []byte
	bd      codec.ByteBreakdown
}

// asyncRun is the mutable state of one AsyncEngine.Run.
type asyncRun struct {
	eng      *AsyncEngine
	cfg      AsyncConfig
	profiles []NodeProfile
	nodes    []asyncNode
	queue    eventQueue
	seq      int64
	now      float64
	ledger   byteLedger
	faultRNG *vec.RNG

	// Aggregation-policy state. policy is the resolved AggregationPolicy,
	// blocking its cached Blocking(); curTau is the live staleness bound
	// (BoundedStalenessPolicy — the adaptive mode retunes it at epoch
	// boundaries from the lag samples accumulated since epochLagStart).
	policy        AggregationPolicy
	blocking      bool
	curTau        int
	epochLagStart int

	// Topology state. topo serves the live-filtered graph of the current
	// epoch; epochSec > 0 (an EpochProvider) enables rotation, and epoch is
	// the index the last processed EventEpoch advanced to. replayEpochs
	// holds the recorded rotations not yet scheduled (replay runs schedule
	// them verbatim instead of deriving boundaries from epochSec).
	topo         topology.LiveProvider
	epoch        int
	epochSec     float64
	replayEpochs []trace.Event

	// Mixing instrumentation: the current epoch's spectral gap and neighbor
	// turnover (reported in every emitted row) plus run-level accumulators.
	// gapCount counts the epochs whose gap was actually computed (the
	// MixingEvery sample); curGap is NaN on skipped epochs.
	curGap      float64
	curTurnover float64
	gapSum      float64
	gapMin      float64
	gapCount    int
	turnSum     float64
	turnCount   int
	epochCount  int
	liveBuf     []bool               // scratch live mask for the spectral-gap restriction
	slem        topology.SLEMScratch // reused power-iteration buffers

	// boxPool recycles per-sender inbox maps freed when an epoch rotation
	// severs an edge (or a rejoin resets a node), bounding steady-state
	// allocation at 1024-node scale.
	boxPool []map[int][]byte
	// msgsPool recycles the per-aggregation payload maps. Maps are acquired
	// on the event loop and released by the pool worker once Aggregate has
	// consumed them, so the pool is mutex-guarded; map identity never affects
	// results (nodes sort senders before merging).
	msgsPool msgsPool
	// lagScratch is the reusable staleness-sample buffer of aggregate(); its
	// contents are copied out synchronously before the next aggregation.
	lagScratch []float64

	// Worker-pool state. tails[i] is node i's most recently submitted task
	// (its per-node chain: train and aggregate strictly alternate in program
	// order); pendTrain[i] is the speculatively dispatched train+share whose
	// train-done event has not been processed yet, pointing into the
	// trainTasks slab (one reusable slot per node: a slot is rewritten only
	// after its previous result was committed at the train-done event, or
	// after the final drain). alphas[i] is the cut-off
	// committed at node i's last processed train-done — row emission must not
	// read JWINSNode.LastAlpha directly, since a speculative Share may already
	// have overwritten it ahead of the serial schedule.
	pool       *computePool
	tails      []*future
	pendTrain  []*trainTask
	trainTasks []trainTask
	alphas     []float64
	isJWINS    []bool
	// churnPending[i] holds the simulated times of node i's not-yet-processed
	// leave/join events, ascending. Speculation is suppressed while a churn
	// event could fire before the speculated train-done commits.
	churnPending [][]float64

	// Share-batch state (cfg.ShareBatch >= 2): eligible speculative
	// dispatches are deferred into specQueue and flushed as grouped
	// SharePipeline tasks — when the queue reaches the batch size, once after
	// the schedule is seeded, and always before processing an event at or
	// after specDue (the earliest queued train-done time), which keeps every
	// commit point exactly where the serial schedule has it. See sharebatch.go.
	specQueue []specEntry
	specDue   float64
	ctxPool   batchCtxPool

	// Aggregate-batch state (cfg.AggregateBatch >= 2): eligible aggregates
	// (and the speculative train each would have dispatched) are deferred
	// into aggQueue and flushed as grouped AggregatePipeline tasks — when
	// the queue reaches the batch size, before processing any event at or
	// after aggDue (every queued node's next train-done time bounds it), at
	// the top of drain, and at onJoin. aggIdx[i] is node i's queue position
	// (-1 when not queued). See aggbatch.go.
	aggQueue []aggEntry
	aggIdx   []int
	aggDue   float64
	aggCtxs  aggCtxPool

	// dcache is the fleet-shared decoded-payload cache (nil when disabled):
	// each broadcast payload is entropy-decoded once, by its first
	// aggregating recipient, and served by identity to the rest.
	dcache *core.DecodeCache

	// per-iteration training-loss accumulators for row emission
	lossSum   []float64
	lossCount []int
	emitted   int
	res       *Result
	stop      bool

	// evalSamp drives sampled rotating evaluation (nil = exact); its subsets
	// depend only on config + row index, so rows stay parallelism-invariant.
	evalSamp *evalSampler

	// meshPending buffers mesh messages drained out of order, keyed by
	// receiver then sender (FIFO per sender).
	meshPending []map[int][]transport.Message

	// trace subsystem state: recorder hook, replay oracle, staleness and
	// policy accumulators, and the count of replay lookups that found no
	// recorded event (a nonzero count on a stalled replay means config
	// mismatch).
	rec          trace.Sink
	replay       *trace.Replayer
	stale        *staleTracker
	polTrack     *policyTracker
	replayMisses int

	// telemetry: tel is nil when disabled; telWait is the per-policy
	// barrier-wait histogram resolved once at setup so the hot path touches
	// only pre-registered atomics.
	tel     *Telemetry
	telWait *metrics.Histogram
}

// Run executes the event-driven schedule and returns the collected metrics.
func (e *AsyncEngine) Run() (*Result, error) {
	cfg := e.Config
	cfg.setDefaults()
	// Single-core gate: deferred batch dispatch only pays off when the pool
	// can overlap it (see gatedBatchWidth).
	gmp := runtime.GOMAXPROCS(0)
	cfg.ShareBatch = gatedBatchWidth(cfg.ShareBatch, cfg.ShareBatchForce, gmp)
	cfg.AggregateBatch = gatedBatchWidth(cfg.AggregateBatch, cfg.ShareBatchForce, gmp)
	n := len(e.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("simulation: no nodes")
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("simulation: rounds must be positive")
	}
	profiles := cfg.Profiles
	if profiles == nil {
		profiles = SampleProfiles(n, cfg.Config, cfg.Het)
	}
	if len(profiles) != n {
		return nil, fmt.Errorf("simulation: %d profiles for %d nodes", len(profiles), n)
	}
	policy := cfg.Policy
	if policy == nil {
		if cfg.Gossip {
			policy = GossipPolicy{}
		} else {
			policy = BarrierPolicy{}
		}
	} else if cfg.Gossip {
		return nil, fmt.Errorf("%w: both Gossip and Policy are set; use Policy alone", ErrPolicyConfig)
	}
	if err := policy.validate(); err != nil {
		return nil, err
	}

	r := &asyncRun{
		eng:          e,
		cfg:          cfg,
		profiles:     profiles,
		nodes:        make([]asyncNode, n),
		lossSum:      make([]float64, cfg.Rounds),
		lossCount:    make([]int, cfg.Rounds),
		res:          &Result{RoundsToTarget: -1},
		rec:          cfg.Record,
		replay:       cfg.Replay,
		stale:        newStaleTracker(cfg.Rounds),
		polTrack:     newPolicyTracker(cfg.Rounds),
		policy:       policy,
		blocking:     policy.Blocking(),
		pool:         newComputePool(cfg.Parallelism),
		tails:        make([]*future, n),
		pendTrain:    make([]*trainTask, n),
		trainTasks:   make([]trainTask, n),
		alphas:       make([]float64, n),
		isJWINS:      make([]bool, n),
		churnPending: make([][]float64, n),
		specDue:      math.Inf(1),
		aggIdx:       make([]int, n),
		aggDue:       math.Inf(1),
		evalSamp:     newEvalSampler(n, cfg.Config),
	}
	for i := range r.aggIdx {
		r.aggIdx[i] = -1
	}
	if !cfg.NoDecodeCache {
		// One decode per broadcast payload fleet-wide: every node whose
		// aggregate path supports the cache shares this one. Attached per
		// run so reused fleets never serve a previous run's buffers.
		r.dcache = &core.DecodeCache{}
		for _, nd := range e.Nodes {
			if u, ok := nd.(core.DecodeCacheUser); ok {
				u.SetDecodeCache(r.dcache)
			}
		}
	}
	if bp, ok := policy.(BoundedStalenessPolicy); ok {
		r.curTau = bp.Tau
	}
	if cfg.Telemetry != nil {
		r.tel = cfg.Telemetry
		r.telWait = r.tel.waitHistogram(policy.Name())
		r.pool.telPooled = r.tel.poolTasks
		r.pool.telInline = r.tel.poolInline
	}
	// Registered before any validation early-return: the pool's workers must
	// not outlive a failed Run.
	defer r.pool.close()
	switch tp := e.Topology.(type) {
	case *topology.EpochProvider:
		// The engine owns liveness for the duration of the run; a provider
		// reused across runs must start from the all-live state.
		tp.ResetLive()
		r.topo = tp
		r.epochSec = tp.EpochSec
	case *topology.Dynamic:
		// Dynamic is the synchronous engine's per-round re-randomizer; the
		// event-driven scheduler has no round clock, so pinning it at round 0
		// would silently run a static-graph experiment.
		return nil, fmt.Errorf("%w: per-round Dynamic has no round clock under the event-driven scheduler; wrap topology.NewSeededDynamic in a topology.EpochProvider", ErrUnsupportedTopology)
	default:
		r.topo = topology.NewMasked(e.Topology, n)
	}
	for i, nd := range e.Nodes {
		if _, ok := nd.(*core.JWINSNode); ok {
			r.isJWINS[i] = true
		} else {
			r.alphas[i] = math.NaN()
		}
	}
	if cfg.DropProb > 0 && r.replay == nil {
		// Under replay, drops come from the recorded arrivals instead.
		r.faultRNG = vec.NewRNG(cfg.FaultSeed ^ 0xfa017)
	}
	if r.replay != nil {
		if rn := r.replay.Header().Nodes; rn != n {
			return nil, fmt.Errorf("simulation: replay trace has %d nodes, engine has %d", rn, n)
		}
		if err := r.validateReplayEpochs(); err != nil {
			return nil, err
		}
		if err := r.validateReplayPolicy(); err != nil {
			return nil, err
		}
		if err := r.validateReplayEval(); err != nil {
			return nil, err
		}
	}
	if e.Mesh != nil {
		r.meshPending = make([]map[int][]transport.Message, n)
		for i := range r.meshPending {
			r.meshPending[i] = map[int][]transport.Message{}
		}
	}
	g, w0 := r.graph()
	if g.N != n {
		return nil, fmt.Errorf("simulation: topology has %d nodes, engine has %d", g.N, n)
	}
	// Epoch 0's mixing quality (static runs report it too; their gap is then
	// constant and their turnover identically zero). Sampling off leaves NaN.
	r.epochCount = 1
	if r.mixingSampled(0) {
		r.curGap = r.slem.SpectralGap(g, w0, nil)
		r.gapSum, r.gapMin, r.gapCount = r.curGap, r.curGap, 1
	} else {
		r.curGap, r.gapMin = math.NaN(), math.NaN()
	}
	for i := range r.nodes {
		r.nodes[i] = asyncNode{
			live:     true,
			got:      make(map[int]int, g.Degree(i)),
			inbox:    make(map[int]map[int][]byte, g.Degree(i)),
			lastIter: -1,
		}
	}
	// The per-node churn calendar must exist before the first scheduleTrain:
	// speculation safety checks it. Event push order stays as before (initial
	// trains first, then churn) so same-time tie-breaking is unchanged.
	if r.replay != nil {
		for _, ev := range r.replay.Churn() {
			r.churnPending[ev.Node] = append(r.churnPending[ev.Node], ev.Time)
		}
	} else {
		for _, ch := range cfg.Churn {
			if ch.Node < 0 || ch.Node >= n {
				return nil, fmt.Errorf("simulation: churn event for node %d, engine has %d nodes", ch.Node, n)
			}
			r.churnPending[ch.Node] = append(r.churnPending[ch.Node], ch.Time)
		}
	}
	for i := range r.churnPending {
		sort.Float64s(r.churnPending[i])
	}
	// Seed the schedule: every node starts training at t=0; churn arrives on
	// its own clock.
	for i := 0; i < n; i++ {
		r.scheduleTrain(i)
	}
	// Flush the partial seed batch so its compute overlaps the schedule from
	// the start instead of waiting for the event loop's first due check.
	r.flushSpec()
	if r.replay != nil {
		// The recorded leave/join sequence is the churn schedule.
		for _, ev := range r.replay.Churn() {
			kind := EventLeave
			if ev.Kind == trace.KindJoin {
				kind = EventJoin
			}
			r.push(Event{Time: ev.Time, Kind: kind, Node: ev.Node})
		}
	} else {
		for _, ch := range cfg.Churn {
			kind := EventLeave
			if ch.Join {
				kind = EventJoin
			}
			r.push(Event{Time: ch.Time, Kind: kind, Node: ch.Node})
		}
	}
	// Topology rotation: one boundary event outstanding at a time. Under
	// replay the recorded rotations are the schedule; otherwise the first
	// boundary lands one epoch length in, and each processed boundary pushes
	// the next.
	if r.replay != nil {
		r.replayEpochs = r.replay.Epochs()
		r.pushNextReplayEpoch()
	} else if r.epochSec > 0 {
		r.push(Event{Time: r.epochSec, Kind: EventEpoch, Iter: 1})
	}

	// The final drain is mandatory on every path out of the loop: in-flight
	// workers mutate node state, and the pool must not close under them.
	if err := r.eventLoop(); err != nil {
		r.drain() // surface the loop's error, not a downstream chain error
		return nil, err
	}
	if err := r.drain(); err != nil {
		return nil, err
	}

	if r.replay != nil && !r.stop && r.emitted < cfg.Rounds {
		return nil, fmt.Errorf("simulation: replay stalled at %d/%d rows (%d missed schedule lookups): trace does not match this run configuration",
			r.emitted, cfg.Rounds, r.replayMisses)
	}
	if r.rec != nil && r.emitted > 0 && r.emitted < cfg.Rounds {
		// The run stopped early (target accuracy): the trace holds only the
		// executed prefix, so the header must advertise the executed budget —
		// otherwise a replay would chase rounds that were never scheduled.
		// Sinks that cannot adjust their header (a StreamRecorder on a
		// non-seekable destination) surface the problem at their Close.
		if rs, ok := r.rec.(trace.RoundsSetter); ok {
			rs.SetRounds(r.emitted)
		}
	}
	r.res.TotalBytes, r.res.ModelBytes, r.res.MetaBytes = r.ledger.total, r.ledger.model, r.ledger.meta
	r.res.SimTime = r.now
	r.res.StaleMean, r.res.StaleMax, r.res.StaleP95 = r.stale.runStats()
	r.res.EffNeighborsMean, r.res.DropRate, r.res.LateDrops = r.polTrack.runStats()
	r.res.Epochs = r.epochCount
	if r.gapCount > 0 {
		r.res.SpectralGapMean = r.gapSum / float64(r.gapCount)
		r.res.SpectralGapMin = r.gapMin
	} else {
		r.res.SpectralGapMean, r.res.SpectralGapMin = math.NaN(), math.NaN()
	}
	if r.turnCount > 0 {
		r.res.TurnoverMean = r.turnSum / float64(r.turnCount)
	}
	if r.res.RoundsToTarget < 0 {
		r.res.BytesToTarget = r.ledger.total
		r.res.TimeToTarget = r.now
	}
	if r.tel != nil {
		if r.dcache != nil {
			// Fold the decode cache's counters in before the snapshot. Hit/miss
			// totals depend on pool interleaving, so they are telemetry only —
			// never part of a determinism comparison.
			h, m := r.dcache.Stats()
			r.tel.decodeHits.Add(h)
			r.tel.decodeMisses.Add(m)
		}
		r.res.Telemetry = r.tel.Snapshot()
	}
	return r.res, nil
}

// eventLoop pops and processes events until the queue empties, the run
// stops, or the iteration budget is met.
func (r *asyncRun) eventLoop() error {
	for r.queue.Len() > 0 && !r.stop {
		ev := r.queue.pop()
		r.now = ev.Time
		// A deferred aggregate must be on its node's tail before the node's
		// next train-done commits (deferTrain folds every queued node's next
		// train-done time into aggDue); flush first — it may enqueue the
		// members' deferred speculative trains, which the spec check below
		// then picks up in the same pass.
		if len(r.aggQueue) > 0 && ev.Time >= r.aggDue {
			r.flushAgg()
		}
		// A queued speculative dispatch must be in flight before its own
		// train-done commits; flushing at the first event at or after the
		// earliest queued train-done time guarantees that (and never changes
		// results — dispatching earlier is always safe).
		if len(r.specQueue) > 0 && ev.Time >= r.specDue {
			r.flushSpec()
		}
		if r.tel != nil {
			// Depth at pop, inclusive of the event just taken.
			r.tel.queueDepth.Observe(float64(r.queue.Len() + 1))
			r.tel.events[ev.Kind].Inc()
		}
		if r.cfg.OnEvent != nil {
			r.cfg.OnEvent(ev)
		}
		if r.rec != nil {
			if tev, ok := schedTraceEvent(&ev); ok {
				r.rec.Record(tev)
			}
		}
		var err error
		switch ev.Kind {
		case EventTrainDone:
			err = r.onTrainDone(&ev)
		case EventArrival:
			err = r.onArrival(&ev)
		case EventLeave:
			r.popChurn(ev.Node)
			err = r.onLeave(ev.Node)
		case EventJoin:
			r.popChurn(ev.Node)
			err = r.onJoin(ev.Node)
		case EventEpoch:
			err = r.onEpoch(&ev)
		case EventDeadline:
			err = r.onDeadline(&ev)
		}
		if err != nil {
			return err
		}
		if r.emitted >= r.cfg.Rounds {
			break
		}
	}
	return nil
}

// graph returns the current epoch's live-filtered graph and mixing weights.
func (r *asyncRun) graph() (*topology.Graph, []topology.Weights) {
	return r.topo.Round(r.epoch)
}

// mixingSampled reports whether the spectral gap is computed for the given
// epoch under the MixingEvery cadence.
func (r *asyncRun) mixingSampled(epoch int) bool {
	k := r.cfg.MixingEvery
	if k < 0 {
		return false
	}
	if k <= 1 {
		return true
	}
	return epoch%k == 0
}

// validateReplayEpochs rejects replay configurations that cannot reproduce
// the recorded rotation schedule, before any event is processed.
func (r *asyncRun) validateReplayEpochs() error {
	if s := r.replay.Header().Meta["epoch_sec"]; s != "" {
		rec, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("%w: trace epoch_sec %q: %v", ErrReplayConfig, s, err)
		}
		if rec != r.epochSec {
			return fmt.Errorf("%w: trace was recorded with epoch length %gs, engine topology uses %gs", ErrReplayConfig, rec, r.epochSec)
		}
	}
	if len(r.replay.Epochs()) > 0 && r.epochSec <= 0 {
		return fmt.Errorf("%w: trace carries topology-rotation events but the engine topology never rotates; wrap it in a topology.EpochProvider with the recorded epoch length", ErrReplayConfig)
	}
	return nil
}

// validateReplayPolicy rejects a replay whose aggregation policy differs from
// the recording's: the policy shapes the schedule (deadline events, waiting
// decisions), so a mismatch would stall or silently diverge. Traces without a
// policy header (hand-built) skip the check; parameters are compared only
// when the recording carries them in Meta.
func (r *asyncRun) validateReplayPolicy() error {
	h := r.replay.Header()
	if h.Policy == "" {
		return nil
	}
	if h.Policy != r.policy.Name() {
		return fmt.Errorf("%w: trace was recorded under the %q policy, engine runs %q", ErrReplayConfig, h.Policy, r.policy.Name())
	}
	checkInt := func(key string, got int) error {
		s := h.Meta[key]
		if s == "" {
			return nil
		}
		rec, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("%w: trace %s %q: %v", ErrReplayConfig, key, s, err)
		}
		if rec != got {
			return fmt.Errorf("%w: trace was recorded with %s=%d, engine uses %d", ErrReplayConfig, key, rec, got)
		}
		return nil
	}
	switch p := r.policy.(type) {
	case BoundedStalenessPolicy:
		if err := checkInt("policy_k", p.K); err != nil {
			return err
		}
		if err := checkInt("policy_tau", p.Tau); err != nil {
			return err
		}
		if s := h.Meta["policy_adaptive"]; s != "" && (s == "true") != p.AdaptiveTau {
			return fmt.Errorf("%w: trace was recorded with policy_adaptive=%s, engine uses %v", ErrReplayConfig, s, p.AdaptiveTau)
		}
	case DeadlinePolicy:
		if s := h.Meta["policy_deadline_factor"]; s != "" {
			rec, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("%w: trace policy_deadline_factor %q: %v", ErrReplayConfig, s, err)
			}
			if rec != p.Factor {
				return fmt.Errorf("%w: trace was recorded with deadline factor %g, engine uses %g", ErrReplayConfig, rec, p.Factor)
			}
		}
	}
	return nil
}

// validateReplayEval rejects a replay whose evaluation schedule differs from
// the recording's. Sampled evaluation never shapes the event schedule, but it
// does shape the emitted rows, so a replay claiming row parity must score the
// same subsets. Traces without eval meta (recorded exact, or predating the
// sampler) skip the check.
func (r *asyncRun) validateReplayEval() error {
	h := r.replay.Header()
	checkInt := func(key string, got int) error {
		s := h.Meta[key]
		if s == "" {
			return nil
		}
		rec, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("%w: trace %s %q: %v", ErrReplayConfig, key, s, err)
		}
		if rec != got {
			return fmt.Errorf("%w: trace was recorded with %s=%d, engine uses %d", ErrReplayConfig, key, rec, got)
		}
		return nil
	}
	if err := checkInt("eval_sample", r.cfg.EvalSample); err != nil {
		return err
	}
	return checkInt("eval_rotate", r.cfg.EvalRotate)
}

// pushNextReplayEpoch schedules the next recorded rotation. It is called at
// the same program points where a live run would push its own boundary (run
// start, then at each processed boundary), so tie-break sequence numbers
// line up with the recording.
func (r *asyncRun) pushNextReplayEpoch() {
	if len(r.replayEpochs) == 0 {
		return
	}
	ev := r.replayEpochs[0]
	r.replayEpochs = r.replayEpochs[1:]
	r.push(Event{Time: ev.Time, Kind: EventEpoch, Iter: ev.Iter})
}

// onEpoch rotates the topology: the provider serves epoch ev.Iter from here
// on, payload buffers of severed edges are pruned (maps recycled), and every
// live node pushes its cached broadcast over each fresh edge. That state
// sync keeps the local barrier deadlock-free: a node waiting on a brand-new
// neighbor would otherwise block on an iteration payload that was broadcast
// before the edge existed. The re-sent payload carries the sender's last
// iteration, which is at least any iteration a waiting neighbor can be
// blocked on, so `got` bookkeeping advances and barriers re-fire.
func (r *asyncRun) onEpoch(ev *Event) error {
	if ev.Iter <= r.epoch {
		// Defensive: a stale or duplicate boundary (possible only in a
		// hand-edited replay trace) is a no-op — but it must still consume
		// its slot in the recorded rotation schedule, or every later
		// rotation would be silently dropped.
		if r.replay != nil {
			r.pushNextReplayEpoch()
		}
		return nil
	}
	gOld, _ := r.graph()
	r.epoch = ev.Iter
	gNew, wNew := r.graph()

	// Mixing instrumentation for the epoch just entered, restricted to live
	// nodes (a dead node's isolated row would pin the SLEM at 1). The gap is
	// only computed on MixingEvery-sampled epochs (NaN otherwise); turnover
	// is O(edges) and always reported.
	r.epochCount++
	if r.mixingSampled(r.epoch) {
		if r.liveBuf == nil {
			r.liveBuf = make([]bool, len(r.nodes))
		}
		for i := range r.nodes {
			r.liveBuf[i] = r.nodes[i].live
		}
		r.curGap = r.slem.SpectralGap(gNew, wNew, r.liveBuf)
		r.gapSum += r.curGap
		r.gapCount++
		if math.IsNaN(r.gapMin) || r.curGap < r.gapMin {
			r.gapMin = r.curGap
		}
	} else {
		r.curGap = math.NaN()
	}
	r.curTurnover = topology.EdgeTurnover(gOld, gNew)
	r.turnSum += r.curTurnover
	r.turnCount++

	// Adaptive-τ retune: the staleness bound for the new epoch is the p95 of
	// the lag samples observed since the previous boundary (floored at 1 so
	// the policy never degenerates to a strict barrier mid-run). Lags are a
	// deterministic function of the schedule, so recorded and replayed runs
	// retune identically. Epochs without samples keep the current bound.
	if bp, ok := r.policy.(BoundedStalenessPolicy); ok && bp.AdaptiveTau {
		if fresh := r.stale.all[r.epochLagStart:]; len(fresh) > 0 {
			tau := int(math.Ceil(trace.Quantile(fresh, 0.95)))
			if tau < 1 {
				tau = 1
			}
			r.curTau = tau
		}
		r.epochLagStart = len(r.stale.all)
	}

	// Re-key the per-edge buffers: payloads from senders that are no longer
	// neighbors can never satisfy a barrier and would otherwise accumulate
	// across rotations (the 384-node memory concern). Inner maps go back to
	// the pool for reuse by future arrivals. The `got` bookkeeping of a
	// severed edge is dropped too: if the edge reappears in a later epoch,
	// the barrier must wait for that boundary's state-sync arrival instead
	// of firing on stale evidence from a past epoch and aggregating without
	// the re-appeared neighbor's payload.
	for i := range r.nodes {
		st := &r.nodes[i]
		for j, box := range st.inbox {
			if !gNew.HasEdge(i, j) {
				delete(st.inbox, j)
				for k := range box {
					delete(box, k)
				}
				r.boxPool = append(r.boxPool, box)
			}
		}
		for j := range st.got {
			if !gNew.HasEdge(i, j) {
				delete(st.got, j)
			}
		}
	}
	if r.dcache != nil {
		// A sender the rotation fully disconnected has no recipients left for
		// its cached decodes; drop them (hygiene — identity keying already
		// rules out stale hits).
		for j := range r.nodes {
			if gNew.Degree(j) == 0 {
				r.dcache.InvalidateSender(j)
			}
		}
	}

	// State sync over fresh edges, serialized through each sender's uplink
	// like a broadcast. Both endpoints push, so a lagging node also receives
	// its new neighbor's latest state.
	for i := range r.nodes {
		st := &r.nodes[i]
		if !st.live || st.lastIter < 0 {
			continue
		}
		txEnd := 0.0
		for _, j := range gNew.Neighbors(i) {
			if gOld.HasEdge(i, j) {
				continue
			}
			txEnd += float64(len(st.lastPayload)+transport.FrameOverhead) / r.profiles[i].BandwidthBytesPerSec
			if err := r.sendOne(i, j, st.lastIter, st.lastPayload, st.lastBD, txEnd, false); err != nil {
				return err
			}
		}
	}
	if err := r.recheckAll(); err != nil {
		return err
	}
	// Schedule the next boundary only while other events remain: an
	// otherwise-dead run (everyone left for good) must drain, not rotate an
	// empty graph forever. Replay consumes the recorded schedule instead.
	if r.replay != nil {
		r.pushNextReplayEpoch()
	} else if r.epochSec > 0 && !r.stop && r.queue.Len() > 0 {
		r.push(Event{Time: float64(r.epoch+1) * r.epochSec, Kind: EventEpoch, Iter: r.epoch + 1})
	}
	return nil
}

// popChurn retires the front of node i's churn calendar as its leave/join
// event is processed (liveness no-ops still consume their calendar entry).
func (r *asyncRun) popChurn(i int) {
	if len(r.churnPending[i]) > 0 {
		r.churnPending[i] = r.churnPending[i][1:]
	}
}

// drain waits for every node's task chain to finish and returns the
// lowest-node-index error. It must run before Run returns so no pool worker
// keeps mutating node state after the caller regains control.
func (r *asyncRun) drain() error {
	// Deferred aggregates (and the speculative trains deferred with them)
	// must be in flight before the barrier: drain precedes evaluation rows,
	// error returns, and the end of the run, all of which read node state.
	r.flushAgg()
	if len(r.specQueue) > 0 {
		r.flushSpec()
	}
	var first error
	for i := range r.tails {
		if err := r.tails[i].wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// specSafe reports whether node i's train+share for the iteration starting
// now may run ahead of its train-done event (scheduled at time t) without
// becoming observable before the serial schedule would produce it. Two
// windows forbid it:
//
//   - a pending leave/join for node i at or before t would supersede the
//     event, and serial execution then never trains (the node's model,
//     loader, and RNG must stay untouched);
//   - an evaluation row at index < the train's iteration could be emitted
//     while the task is in flight, and evaluation reads every node's model.
//     Rows at or above the iteration cannot fire first: they need the node
//     itself to advance, which needs this train to commit.
func (r *asyncRun) specSafe(i int, t float64) bool {
	if pend := r.churnPending[i]; len(pend) > 0 && pend[0] <= t {
		return false
	}
	return r.nodes[i].iter <= r.nextEvalRow()
}

// nextEvalRow returns the smallest not-yet-emitted row index that will
// trigger an evaluation (the EvalEvery cadence or the final row).
func (r *asyncRun) nextEvalRow() int {
	e := r.cfg.EvalEvery
	k := r.emitted
	next := (k/e+1)*e - 1
	if last := r.cfg.Rounds - 1; last < next {
		next = last
	}
	return next
}

// push assigns the next sequence number and enqueues ev.
func (r *asyncRun) push(ev Event) {
	ev.Seq = r.seq
	r.seq++
	r.queue.push(ev)
}

// scheduleTrain enqueues node i's next train-done event under its profile —
// or, under replay, at the recorded completion time. A missing recording
// means the original event was superseded by churn before it mattered;
// skipping it is safe (the node's leave is on the schedule), and a stalled
// replay surfaces the miss count as a config-mismatch error.
func (r *asyncRun) scheduleTrain(i int) {
	st := &r.nodes[i]
	t := r.now + float64(localSteps(r.eng.Nodes[i]))*r.profiles[i].ComputeSecPerStep
	if r.replay != nil {
		rt, ok := r.replay.TrainDoneTime(i, st.iter)
		if !ok {
			r.replayMisses++
			return
		}
		// Clamp: a skewed cluster clock must not move simulated time backward.
		t = math.Max(rt, r.now)
	}
	r.push(Event{
		Time: t, Kind: EventTrainDone,
		Node: i, Iter: st.iter, gen: st.gen,
	})
	// Speculative dispatch: node i's state is final for this training phase
	// (nothing between here and the train-done event mutates it), so the
	// compute can start on the pool now and overlap other nodes' work. The
	// event loop commits the result — ledger, broadcast, trace — only when
	// the event fires, keeping the schedule bit-identical to serial. The
	// node's trainTask slot is reusable here: its previous result was
	// committed at the preceding train-done event (commit precedes the
	// aggregate that led to this scheduleTrain).
	if r.aggIdx[i] >= 0 {
		// The aggregate this train chains on is still queued: defer the
		// dispatch into the same queue entry so it chains on the batched
		// future at flush time (see aggbatch.go).
		r.deferTrain(i, st.iter, t, r.specSafe(i, t))
		return
	}
	if r.specSafe(i, t) {
		if r.cfg.ShareBatch >= 2 {
			if jn, ok := r.eng.Nodes[i].(*core.JWINSNode); ok {
				if plan := jn.SharePlan(); plan != nil {
					r.enqueueSpec(i, st.iter, t, jn, plan)
					return
				}
			}
		}
		r.dispatchSpec(i, st.iter)
	}
}

// dispatchSpec submits node i's speculative train+share for iteration iter
// on the pool — the per-node reference path (see scheduleTrain); the batched
// path in sharebatch.go must be bit-identical to it.
func (r *asyncRun) dispatchSpec(i, iter int) {
	tt := &r.trainTasks[i]
	tt.loss, tt.payload, tt.bd = 0, nil, codec.ByteBreakdown{}
	tt.fut = r.pool.submit(r.tails[i], func() error {
		loss, payload, bd, err := trainShare(r.eng.Nodes[i], iter)
		if err != nil {
			return fmt.Errorf("node %d share: %w", i, err)
		}
		tt.loss, tt.payload, tt.bd = loss, payload, bd
		return nil
	})
	r.pendTrain[i] = tt
	r.tails[i] = tt.fut
}

// onTrainDone runs the node's local steps and broadcast, then either blocks
// on the aggregation policy's readiness condition or (gossip) aggregates
// immediately. Under the deadline policy it also schedules the iteration's
// straggler deadline.
func (r *asyncRun) onTrainDone(ev *Event) error {
	i := ev.Node
	st := &r.nodes[i]
	if !st.live || ev.gen != st.gen || ev.Iter != st.iter {
		return nil // superseded by churn; speculation is suppressed for these
	}
	var (
		loss    float64
		payload []byte
		bd      codec.ByteBreakdown
	)
	if tt := r.pendTrain[i]; tt != nil {
		// Commit the speculative result at exactly the serial execution point.
		r.pendTrain[i] = nil
		if err := tt.fut.wait(); err != nil {
			return err
		}
		loss, payload, bd = tt.loss, tt.payload, tt.bd
		if r.tel != nil {
			r.tel.specHits.Inc()
		}
	} else {
		// Speculation was unsafe (churn or eval window): run inline, after any
		// still-running aggregate of this node.
		if r.tel != nil {
			r.tel.specMisses.Inc()
		}
		if err := r.tails[i].wait(); err != nil {
			return err
		}
		var err error
		loss, payload, bd, err = trainShare(r.eng.Nodes[i], st.iter)
		if err != nil {
			return fmt.Errorf("node %d share: %w", i, err)
		}
	}
	if r.isJWINS[i] {
		// Commit the sampled cut-off for row emission; LastAlpha itself may
		// run ahead under speculation.
		r.alphas[i] = r.eng.Nodes[i].(*core.JWINSNode).LastAlpha
	}
	if st.iter < len(r.lossSum) && !math.IsNaN(loss) {
		r.lossSum[st.iter] += loss
		r.lossCount[st.iter]++
	}
	if err := r.broadcast(i, st.iter, payload, bd); err != nil {
		return err
	}
	if !r.blocking {
		return r.aggregate(i)
	}
	st.waiting = true
	st.waitStart = r.now
	if dp, ok := r.policy.(DeadlinePolicy); ok {
		// The deadline is pushed before readiness is checked so its schedule
		// slot exists even when every payload already arrived (the stale
		// event is discarded at pop) — recording and replay then agree on
		// the event sequence. Under replay the recorded firing time is the
		// schedule; a deadline the recording never popped is not re-created.
		if r.replay != nil {
			if t, ok := r.replay.NextDeadline(i, st.iter); ok {
				r.push(Event{Time: math.Max(t, r.now), Kind: EventDeadline, Node: i, Iter: st.iter, gen: st.gen})
			}
		} else {
			t := r.now + dp.Factor*r.nominalRoundFor(i, len(payload))
			r.push(Event{Time: t, Kind: EventDeadline, Node: i, Iter: st.iter, gen: st.gen})
		}
	}
	return r.checkReady(i)
}

// nominalRoundFor estimates node i's own nominal round duration under its
// hardware profile and the current graph degree — the deadline policy's
// time base (compare Config.NominalRoundSec, which uses the base profile).
func (r *asyncRun) nominalRoundFor(i, payloadBytes int) float64 {
	p := r.profiles[i]
	g, _ := r.graph()
	return float64(localSteps(r.eng.Nodes[i]))*p.ComputeSecPerStep +
		float64(g.Degree(i)*(payloadBytes+transport.FrameOverhead))/p.BandwidthBytesPerSec +
		p.LatencySec
}

// onDeadline fires a node's straggler deadline: if the node is still waiting
// on the same iteration (and generation), the deadline unlocks the policy's
// readiness condition and the node aggregates whatever arrived. Anything else
// — the node aggregated early, churned, or advanced — makes the event stale
// and it is discarded.
func (r *asyncRun) onDeadline(ev *Event) error {
	st := &r.nodes[ev.Node]
	if !st.live || ev.gen != st.gen || ev.Iter != st.iter || !st.waiting {
		return nil
	}
	st.deadlineFired = true
	return r.checkReady(ev.Node)
}

// broadcast serializes copies of payload through node i's uplink to every
// live neighbor, charging the byte ledger per copy (drops included: the
// sender pays, the receiver only learns the message is gone). The payload is
// cached so rejoining neighbors can pull it later.
func (r *asyncRun) broadcast(i, iter int, payload []byte, bd codec.ByteBreakdown) error {
	st := &r.nodes[i]
	st.lastPayload, st.lastIter, st.lastBD = payload, iter, bd
	g, _ := r.graph()
	txEnd := 0.0
	for _, j := range g.Neighbors(i) {
		txEnd += float64(len(payload)+transport.FrameOverhead) / r.profiles[i].BandwidthBytesPerSec
		dropped := r.faultRNG != nil && r.faultRNG.Float64() < r.cfg.DropProb
		if err := r.sendOne(i, j, iter, payload, bd, txEnd, dropped); err != nil {
			return err
		}
	}
	return nil
}

// sendOne schedules one delivery from i to j, txDelay seconds of uplink
// serialization after now, and charges the ledger. Under replay the recorded
// schedule decides everything: the send record carries the drop flag, the
// arrival record the delivery time — and a send whose arrival was never
// recorded was still in flight when the recorded run ended, so it is paid
// for but never delivered, exactly like the original.
func (r *asyncRun) sendOne(i, j, iter int, payload []byte, bd codec.ByteBreakdown, txDelay float64, dropped bool) error {
	arriveAt := r.now + txDelay + r.profiles[i].LatencySec
	deliver := true
	if r.replay != nil {
		at, d, ok := r.replay.NextArrival(i, j, iter)
		if sd, sok := r.replay.NextSend(i, j, iter); sok {
			dropped = sd
		} else if ok {
			dropped = d
		} else {
			// Neither a send nor an arrival on record: count the miss; a
			// stalled replay reports it as a config mismatch.
			r.replayMisses++
		}
		if ok {
			// Clamp: skewed cluster clocks must not move simulated time back.
			arriveAt = math.Max(at, r.now)
		} else {
			deliver = false
		}
	}
	sent := r.ledger.addSend(bd, len(payload), 1)
	if r.tel != nil {
		r.tel.sends.Inc()
		r.tel.bytesTotal.Add(sent)
		r.tel.bytesModel.Add(int64(bd.Model))
		r.tel.bytesMeta.Add(int64(bd.Meta + transport.FrameOverhead))
	}
	if r.rec != nil {
		r.rec.Record(sendTraceEvent(r.now, i, j, iter, len(payload), bd, dropped))
	}
	if !deliver {
		return nil
	}
	if !dropped && r.eng.Mesh != nil {
		if err := r.eng.Mesh.Send(transport.Message{
			From: i, To: j, Round: iter, Payload: payload,
			SentAt: r.now, ArriveAt: arriveAt,
		}); err != nil {
			return fmt.Errorf("simulation: send %d->%d: %w", i, j, err)
		}
	}
	var cp []byte
	if !dropped && r.eng.Mesh == nil {
		cp = payload
	}
	r.push(Event{
		Time: arriveAt, Kind: EventArrival,
		Node: j, From: i, Iter: iter, Dropped: dropped, payload: cp,
	})
	return nil
}

// onArrival records a delivery (or drop notice) and re-checks the receiver's
// barrier.
func (r *asyncRun) onArrival(ev *Event) error {
	j := ev.Node
	st := &r.nodes[j]
	payload := ev.payload
	if !ev.Dropped && r.eng.Mesh != nil {
		msg, err := r.meshFetch(j, ev.From, ev.Iter)
		if err != nil {
			return err
		}
		payload = msg.Payload
	}
	if !st.live {
		return nil // the receiver is gone; the message is lost
	}
	if prev, ok := st.got[ev.From]; !ok || ev.Iter > prev {
		st.got[ev.From] = ev.Iter
	}
	if !ev.Dropped {
		box := st.inbox[ev.From]
		if box == nil {
			if n := len(r.boxPool); n > 0 {
				box = r.boxPool[n-1]
				r.boxPool = r.boxPool[:n-1]
			} else {
				box = make(map[int][]byte, 2)
			}
			st.inbox[ev.From] = box
		}
		if !r.blocking {
			// Keep only the freshest payload per sender.
			stale := false
			for k := range box {
				if k > ev.Iter {
					stale = true
				} else {
					delete(box, k)
				}
			}
			if stale {
				return nil
			}
		}
		box[ev.Iter] = payload
	}
	if st.waiting {
		return r.checkReady(j)
	}
	return nil
}

// checkReady consults the aggregation policy on node i's pending iteration:
// the full barrier fires once every live neighbor's payload (or drop notice,
// or departure) is in; bounded staleness once its quorum or lag bound holds;
// the deadline policy at the barrier or its deadline, whichever first.
func (r *asyncRun) checkReady(i int) error {
	st := &r.nodes[i]
	if !st.waiting {
		return nil
	}
	g, _ := r.graph()
	v := policyView{iter: st.iter, tau: r.curTau, deadline: st.deadlineFired, minGot: math.MaxInt}
	for _, j := range g.Neighbors(i) {
		v.live++
		got, ok := st.got[j]
		if !ok {
			got = -1
		}
		if got >= st.iter {
			v.heard++
		}
		if got < v.minGot {
			v.minGot = got
		}
	}
	if !r.policy.ready(v) {
		return nil
	}
	st.waiting = false
	st.deadlineFired = false
	if r.telWait != nil {
		r.telWait.Observe(r.now - st.waitStart)
	}
	return r.aggregate(i)
}

// aggregate merges node i's buffered payloads under the live-subgraph mixing
// weights, advances its iteration, and reschedules training.
func (r *asyncRun) aggregate(i int) error {
	st := &r.nodes[i]
	g, w := r.graph()
	msgs := r.msgsPool.get(g.Degree(i))
	// lags holds one staleness sample per merged payload: the aggregator's
	// iteration minus the payload's, clamped at zero (neighbors running
	// ahead are not stale). The scratch is consumed synchronously below.
	lags := r.lagScratch[:0]
	for _, j := range g.Neighbors(i) {
		box := st.inbox[j]
		if len(box) == 0 {
			continue
		}
		// Prefer the payload matching this iteration (blocking policies),
		// falling back to the freshest buffered one (gossip, a bounded or
		// deadline merge of a straggler, or a fast-forwarded joiner).
		if p, ok := box[st.iter]; ok && r.blocking {
			msgs[j] = p
			lags = append(lags, 0)
			continue
		}
		best := -1
		for k := range box {
			if k > best {
				best = k
			}
		}
		if best >= 0 {
			msgs[j] = box[best]
			lags = append(lags, math.Max(0, float64(st.iter-best)))
		}
	}
	// Decode+mix runs on the pool: nothing on the event schedule depends on
	// its result (the payloads in msgs are immutable, the mixing row w[i] is
	// rebuilt — never mutated — on liveness changes), so the loop moves on
	// while the model updates. The node's next train chains after it; row
	// evaluation and Run's exit wait for every chain. The worker returns the
	// msgs map to the pool once Aggregate has consumed it — map identity
	// cannot affect results because nodes sort senders before merging.
	if !r.enqueueAgg(i, st.iter, w[i], msgs) {
		r.submitAggregate(i, st.iter, w[i], msgs)
	}
	r.stale.add(st.iter, lags)
	if r.tel != nil {
		r.tel.aggregations.Inc()
		r.tel.inboxOccupancy.Observe(float64(len(lags)))
	}
	// Effective-neighbor / late-drop accounting: merged is what actually
	// mixed, expected the live-neighbor count, late the live neighbors whose
	// current-iteration payload had not landed (0 under the full barrier).
	{
		live, heard := g.Degree(i), 0
		for _, j := range g.Neighbors(i) {
			if got, ok := st.got[j]; ok && got >= st.iter {
				heard++
			}
		}
		r.polTrack.add(st.iter, len(lags), live, live-heard)
	}
	r.lagScratch = lags[:0]
	if r.rec != nil {
		// Mean and max are folded inline: summarizeLags would sort the
		// samples for a p95 the trace record does not carry.
		var sum, max float64
		for _, l := range lags {
			sum += l
			if l > max {
				max = l
			}
		}
		mean := 0.0
		if len(lags) > 0 {
			mean = sum / float64(len(lags))
		}
		r.rec.Record(trace.Event{
			Time: r.now, Kind: trace.KindAggregate, Node: i, Peer: -1, Iter: st.iter,
			LagMax: int(max), LagMean: mean, LagN: len(lags),
		})
	}
	if r.blocking {
		// Consume everything at or below the aggregated iteration. Emptied
		// boxes stay keyed in the inbox: the same neighbor refills them next
		// iteration, so dropping them would just re-allocate one box per edge
		// per round (epoch rotation prunes boxes of severed edges instead).
		for _, box := range st.inbox {
			for k := range box {
				if k <= st.iter {
					delete(box, k)
				}
			}
		}
	}
	st.iter++
	if err := r.emitRows(); err != nil {
		return err
	}
	if st.live && st.iter < r.cfg.Rounds && !r.stop {
		r.scheduleTrain(i)
	}
	return nil
}

// onLeave takes a node offline: its pending work is invalidated, the live
// subgraph shrinks, and neighbors blocked on it are re-checked.
func (r *asyncRun) onLeave(i int) error {
	st := &r.nodes[i]
	if !st.live {
		return nil
	}
	st.live = false
	st.gen++
	st.waiting = false
	st.deadlineFired = false
	r.topo.SetLive(i, false)
	if r.dcache != nil {
		// Hygiene, not correctness: entries are identity-keyed, so dropping
		// the leaver's cached decodes just releases memory sooner.
		r.dcache.InvalidateSender(i)
	}
	// Departure can unblock waiting neighbors and lower the row floor.
	return r.recheckAll()
}

// onJoin brings a node back: it keeps its (stale) model, fast-forwards to
// the run's current row floor, pulls every live neighbor's latest broadcast
// (the state sync that lets it participate in barriers whose payloads flew
// while it was away — without it, a joiner and a waiting neighbor could each
// block on a message the other will never resend), and starts training.
func (r *asyncRun) onJoin(i int) error {
	// onJoin re-dispatches work (the joiner's train, neighbor re-sends)
	// outside the aggregate→scheduleTrain flow; a queued aggregate for the
	// joiner must be on its tail before anything new chains after it.
	r.flushAgg()
	st := &r.nodes[i]
	if st.live {
		return nil
	}
	st.live = true
	st.gen++
	st.waiting = false
	st.deadlineFired = false
	if st.iter < r.emitted {
		st.iter = r.emitted
	}
	// Anything buffered before the departure is stale connectivity. The
	// bookkeeping maps are cleared in place and inner boxes recycled, not
	// re-allocated: churn at 1024-node scale must not grow the heap.
	for k := range st.got {
		delete(st.got, k)
	}
	for j, box := range st.inbox {
		delete(st.inbox, j)
		for k := range box {
			delete(box, k)
		}
		r.boxPool = append(r.boxPool, box)
	}
	r.topo.SetLive(i, true)
	g, _ := r.graph()
	for _, m := range g.Neighbors(i) {
		ms := &r.nodes[m]
		if ms.lastIter < 0 {
			continue
		}
		tx := float64(len(ms.lastPayload)+transport.FrameOverhead) / r.profiles[m].BandwidthBytesPerSec
		if err := r.sendOne(m, i, ms.lastIter, ms.lastPayload, ms.lastBD, tx, false); err != nil {
			return err
		}
	}
	if st.iter < r.cfg.Rounds && !r.stop {
		r.scheduleTrain(i)
	}
	return r.recheckAll()
}

// recheckAll re-evaluates every waiting node's readiness and the emission
// floor after a live-set change.
func (r *asyncRun) recheckAll() error {
	if err := r.emitRows(); err != nil {
		return err
	}
	for i := range r.nodes {
		if r.nodes[i].waiting {
			if err := r.checkReady(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// meshFetch drains the mesh for receiver `to` until the message from `from`
// carrying iteration `iter` surfaces, buffering everything else. Matching on
// (sender, iteration) — not sender alone — matters: the mesh delivers in
// send order, but arrival events fire in simulated-delivery order, and a
// small iteration-k+1 payload can overtake a large iteration-k one through
// the same uplink.
func (r *asyncRun) meshFetch(to, from, iter int) (transport.Message, error) {
	pending := r.meshPending[to][from]
	for idx, msg := range pending {
		if msg.Round == iter {
			r.meshPending[to][from] = append(pending[:idx:idx], pending[idx+1:]...)
			return msg, nil
		}
	}
	for {
		msg, err := r.eng.Mesh.Recv(to)
		if err != nil {
			return transport.Message{}, fmt.Errorf("simulation: recv for %d: %w", to, err)
		}
		if msg.From == from && msg.Round == iter {
			return msg, nil
		}
		r.meshPending[to][msg.From] = append(r.meshPending[to][msg.From], msg)
	}
}

// emitRows publishes iteration rows up to the minimum iteration completed by
// all live nodes, evaluating on the sync engine's cadence.
func (r *asyncRun) emitRows() error {
	floor := r.minLiveIter()
	for r.emitted < floor && r.emitted < r.cfg.Rounds && !r.stop {
		k := r.emitted
		// Sampled runs reuse the row's eval subset for the alpha summary too,
		// keeping emission O(sample); exact runs keep the full-fleet mean.
		subset := r.evalSamp.subsetFor(k)
		var alpha float64
		if subset != nil {
			alpha = meanOverIdx(r.alphas, subset)
		} else {
			alpha = mean(r.alphas)
		}
		rm := RoundMetrics{
			Round:            k,
			TrainLoss:        math.NaN(),
			TestLoss:         math.NaN(),
			TestAcc:          math.NaN(),
			CumTotalBytes:    r.ledger.total,
			CumModelBytes:    r.ledger.model,
			CumMetaBytes:     r.ledger.meta,
			SimTime:          r.now,
			MeanAlpha:        alpha,
			Epoch:            r.epoch,
			SpectralGap:      r.curGap,
			NeighborTurnover: r.curTurnover,
		}
		rm.StaleMean, rm.StaleMax, rm.StaleP95 = r.stale.rowStats(k)
		rm.EffNeighbors, rm.DropRate = r.polTrack.rowStats(k)
		if r.lossCount[k] > 0 {
			rm.TrainLoss = r.lossSum[k] / float64(r.lossCount[k])
		}
		if k%r.cfg.EvalEvery == r.cfg.EvalEvery-1 || k == r.cfg.Rounds-1 {
			// Synchronization point: evaluation reads every model, so every
			// chain must land. Speculation safety guarantees no train task
			// from the serial future is in flight here.
			if err := r.drain(); err != nil {
				return err
			}
			var live []bool
			if subset != nil {
				// Sampled rows skip offline nodes (they contribute NaN); the
				// exact path keeps its historical all-nodes semantics, so the
				// live mask only exists when sampling is on.
				if r.liveBuf == nil {
					r.liveBuf = make([]bool, len(r.nodes))
				}
				for i := range r.nodes {
					r.liveBuf[i] = r.nodes[i].live
				}
				live = r.liveBuf
			}
			loss, acc := evaluateNodesOn(r.pool, r.eng.Nodes, r.eng.TestSet, r.cfg.Config, subset, live)
			rm.TestLoss, rm.TestAcc = loss, acc
			r.res.FinalAccuracy, r.res.FinalLoss = acc, loss
			if r.cfg.TargetAccuracy > 0 && acc >= r.cfg.TargetAccuracy && r.res.RoundsToTarget < 0 {
				r.res.RoundsToTarget = k + 1
				r.res.BytesToTarget = r.ledger.total
				r.res.TimeToTarget = r.now
				r.stop = true
			}
		}
		r.res.Rounds = append(r.res.Rounds, rm)
		if r.tel != nil {
			r.tel.rows.Inc()
		}
		if r.eng.OnRound != nil {
			r.eng.OnRound(rm)
		}
		r.emitted++
	}
	return nil
}

// minLiveIter is the lowest completed iteration among live nodes, or the
// full budget when nobody is live (dead nodes cannot hold rows back forever;
// rows resume when someone rejoins behind the floor).
func (r *asyncRun) minLiveIter() int {
	min := r.cfg.Rounds
	any := false
	for i := range r.nodes {
		if !r.nodes[i].live {
			continue
		}
		any = true
		if r.nodes[i].iter < min {
			min = r.nodes[i].iter
		}
	}
	if !any {
		return r.emitted // freeze the floor while everyone is away
	}
	return min
}
