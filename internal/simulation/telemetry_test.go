package simulation

import (
	"math"
	"testing"
)

// TestTelemetryCountsMatchSchedule: the telemetry counters must agree with
// the independently observed event stream and the byte ledger — and enabling
// telemetry must not change the schedule or the results.
func TestTelemetryCountsMatchSchedule(t *testing.T) {
	const rounds = 10
	mutate := func(cfg *AsyncConfig) {
		cfg.Het = Heterogeneity{ComputeSpread: 0.4, BandwidthSpread: 0.3, Seed: 5}
		cfg.Churn = GenerateChurn(8, 0.25, 0.02, 0.2, 0.1, 77)
		cfg.DropProb = 0.1
		cfg.FaultSeed = 3
	}
	plain := runAsync(t, algoJWINS, rounds, mutate)

	tel := NewTelemetry()
	var byKind [6]int64
	var total int64
	res := runAsync(t, algoJWINS, rounds, func(cfg *AsyncConfig) {
		mutate(cfg)
		cfg.Telemetry = tel
		cfg.OnEvent = func(ev Event) { byKind[ev.Kind]++; total++ }
	})

	// Telemetry must be a pure observer.
	if res.TotalBytes != plain.TotalBytes || res.SimTime != plain.SimTime ||
		len(res.Rounds) != len(plain.Rounds) {
		t.Fatalf("telemetry changed the run: bytes %d vs %d, simtime %v vs %v, rows %d vs %d",
			res.TotalBytes, plain.TotalBytes, res.SimTime, plain.SimTime, len(res.Rounds), len(plain.Rounds))
	}

	s := res.Telemetry
	if s == nil {
		t.Fatal("Result.Telemetry is nil with Telemetry enabled")
	}
	kinds := []struct {
		kind  EventKind
		label string
	}{
		{EventTrainDone, `kind="train_done"`},
		{EventArrival, `kind="arrival"`},
		{EventLeave, `kind="leave"`},
		{EventJoin, `kind="join"`},
		{EventEpoch, `kind="epoch"`},
		{EventDeadline, `kind="deadline"`},
	}
	var counted int64
	for _, k := range kinds {
		got := s.Counter(MetricEvents + "{" + k.label + "}")
		if got != byKind[k.kind] {
			t.Fatalf("%s counter = %d, OnEvent saw %d", k.label, got, byKind[k.kind])
		}
		counted += got
	}
	if counted != total {
		t.Fatalf("event counters sum to %d, OnEvent saw %d", counted, total)
	}

	qd, ok := s.Histogram(MetricQueueDepth)
	if !ok || qd.Count != total {
		t.Fatalf("queue-depth observations = %d (ok=%v), want one per event (%d)", qd.Count, ok, total)
	}
	if qd.Quantile(0.5) < 1 {
		t.Fatalf("queue-depth p50 = %v, want >= 1", qd.Quantile(0.5))
	}

	if got := s.Counter(MetricBytesTotal); got != res.TotalBytes {
		t.Fatalf("bytes counter = %d, ledger total = %d", got, res.TotalBytes)
	}
	if got := s.Counter(MetricBytesModel); got != res.ModelBytes {
		t.Fatalf("model bytes counter = %d, ledger = %d", got, res.ModelBytes)
	}
	if got := s.Counter(MetricBytesMeta); got != res.MetaBytes {
		t.Fatalf("meta bytes counter = %d, ledger = %d", got, res.MetaBytes)
	}
	if got := s.Counter(MetricRows); got != int64(len(res.Rounds)) {
		t.Fatalf("rows counter = %d, emitted %d", got, len(res.Rounds))
	}
	// Every committed train-done is a hit or a miss; events superseded by
	// churn (stale generation) commit nothing, so the sum may fall short of
	// the raw event count but never exceed it.
	hits, misses := s.Counter(MetricSpecHits), s.Counter(MetricSpecMisses)
	if hits+misses == 0 || hits+misses > byKind[EventTrainDone] {
		t.Fatalf("spec hits %d + misses %d vs train-done events %d", hits, misses, byKind[EventTrainDone])
	}

	// Barrier policy: one wait observation per aggregation (waits may be 0
	// when every payload already arrived).
	wait, ok := s.Histogram(MetricBarrierWait + `{policy="barrier"}`)
	if !ok {
		t.Fatalf("barrier-wait histogram missing; histogram keys: %v", keysOf(s.Histograms))
	}
	aggs := s.Counter(MetricAggregations)
	if wait.Count != aggs {
		t.Fatalf("wait observations %d != aggregations %d", wait.Count, aggs)
	}
	if wait.Sum < 0 || math.IsNaN(wait.Sum) {
		t.Fatalf("negative/NaN total wait %v", wait.Sum)
	}
	occ, ok := s.Histogram(MetricInboxOccupancy)
	if !ok || occ.Count != aggs {
		t.Fatalf("inbox-occupancy observations = %d (ok=%v), want %d", occ.Count, ok, aggs)
	}
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTelemetryGossipPolicyLabel: the wait histogram is keyed by the resolved
// policy name, and non-blocking runs record no waits.
func TestTelemetryGossipPolicyLabel(t *testing.T) {
	tel := NewTelemetry()
	runAsync(t, algoJWINS, 6, func(cfg *AsyncConfig) {
		cfg.Gossip = true
		cfg.Telemetry = tel
	})
	s := tel.Snapshot()
	wait, ok := s.Histogram(MetricBarrierWait + `{policy="gossip"}`)
	if !ok {
		t.Fatalf("gossip wait histogram not registered; keys: %v", keysOf(s.Histograms))
	}
	if wait.Count != 0 {
		t.Fatalf("gossip recorded %d waits, want 0 (non-blocking policy)", wait.Count)
	}
	if s.Counter(MetricAggregations) == 0 {
		t.Fatal("no aggregations counted")
	}
}

// TestTelemetryPoolSplit: serial runs count only inline submissions, parallel
// runs only pooled ones.
func TestTelemetryPoolSplit(t *testing.T) {
	telSerial := NewTelemetry()
	runAsync(t, algoJWINS, 6, func(cfg *AsyncConfig) {
		cfg.Parallelism = 1
		cfg.Telemetry = telSerial
	})
	s := telSerial.Snapshot()
	if s.Counter(MetricPoolInline) == 0 || s.Counter(MetricPoolTasks) != 0 {
		t.Fatalf("serial split: inline=%d pooled=%d, want inline>0 pooled=0",
			s.Counter(MetricPoolInline), s.Counter(MetricPoolTasks))
	}

	telPar := NewTelemetry()
	runAsync(t, algoJWINS, 6, func(cfg *AsyncConfig) {
		cfg.Parallelism = 2
		cfg.Telemetry = telPar
	})
	p := telPar.Snapshot()
	if p.Counter(MetricPoolTasks) == 0 || p.Counter(MetricPoolInline) != 0 {
		t.Fatalf("parallel split: inline=%d pooled=%d, want pooled>0 inline=0",
			p.Counter(MetricPoolInline), p.Counter(MetricPoolTasks))
	}
}

// TestTelemetryReuseAccumulates: a Telemetry reused across runs accumulates
// until its registry is reset.
func TestTelemetryReuseAccumulates(t *testing.T) {
	tel := NewTelemetry()
	runAsync(t, algoJWINS, 4, func(cfg *AsyncConfig) { cfg.Telemetry = tel })
	first := tel.Snapshot().Counter(MetricRows)
	if first != 4 {
		t.Fatalf("first run rows = %d, want 4", first)
	}
	runAsync(t, algoJWINS, 4, func(cfg *AsyncConfig) { cfg.Telemetry = tel })
	if got := tel.Snapshot().Counter(MetricRows); got != 8 {
		t.Fatalf("accumulated rows = %d, want 8", got)
	}
	tel.Registry().Reset()
	if got := tel.Snapshot().Counter(MetricRows); got != 0 {
		t.Fatalf("rows after reset = %d, want 0", got)
	}
}
