// suite.go assembles the standard benchmark suite, the serial-vs-parallel
// determinism check, and the BENCH_*.json artifact format.
package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/simulation"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Bench is one named benchmark: fn runs a single iteration and returns the
// number of simulated scheduler events it processed (0 when not applicable).
type Bench struct {
	Name string
	Fn   func() (int64, error)
}

// Suite returns the standard benchmark list: the engine benchmarks (async at
// parallelism 1 and NumCPU, bracketing the worker pool's win; the dyntopo
// arm adds epoch rotation to the churned configuration) and the JWINS
// hot-path micros.
func Suite() ([]Bench, error) {
	pmax := MaxParallelism()
	benches := []Bench{
		{"engine-sync16", func() (int64, error) { return RunSync16(pmax) }},
		{"engine-async16-p1", func() (int64, error) { return RunAsync16(1) }},
		{fmt.Sprintf("engine-async16-p%d", pmax), func() (int64, error) { return RunAsync16(pmax) }},
		{"engine-asyncchurn16-p1", func() (int64, error) { return RunAsyncChurn16(1) }},
		{fmt.Sprintf("engine-asyncchurn16-p%d", pmax), func() (int64, error) { return RunAsyncChurn16(pmax) }},
		{"engine-asyncdyntopo16-p1", func() (int64, error) { return RunAsyncDynTopo16(1) }},
		{fmt.Sprintf("engine-asyncdyntopo16-p%d", pmax), func() (int64, error) { return RunAsyncDynTopo16(pmax) }},
		{"engine-async256-p1", func() (int64, error) { return RunAsync256(1) }},
		{fmt.Sprintf("engine-async256-p%d", pmax), func() (int64, error) { return RunAsync256(pmax) }},
		{"engine-async1024-p1", func() (int64, error) { return RunAsync1024(1) }},
		{fmt.Sprintf("engine-async1024-p%d", pmax), func() (int64, error) { return RunAsync1024(pmax) }},
		{"engine-async4096-p1", func() (int64, error) { return RunAsync4096(1) }},
		{fmt.Sprintf("engine-async4096-p%d", pmax), func() (int64, error) { return RunAsync4096(pmax) }},
		// Eval-cost bracket: identical 1024-node runs except the eval row
		// scores the full fleet exactly vs a 64-node rotating sample; the
		// ns/op delta is the per-row evaluation cost the sample removes.
		{"engine-async1024-evalexact-p1", func() (int64, error) { return RunAsyncScale(1024, 1, -1) }},
		// Share-batch bracket: identical JWINS runs except the batched arm
		// folds chained speculative dispatches into SharePipeline batches of
		// 8. Schedules are bit-identical (the parity suites enforce it), so
		// the ns/op delta is purely the batched compute win.
		{"engine-asyncjwins1024-p1", func() (int64, error) {
			return RunAsyncScaleJWINS(1024, 1, ScaleEvalSample, 0, 0)
		}},
		{"engine-asyncjwins1024-p1-b8", func() (int64, error) {
			return RunAsyncScaleJWINS(1024, 1, ScaleEvalSample, 8, 0)
		}},
		{"engine-asyncjwins4096-p1", func() (int64, error) {
			return RunAsyncScaleJWINS(4096, 1, ScaleEvalSample, 0, 0)
		}},
		{"engine-asyncjwins4096-p1-b8", func() (int64, error) {
			return RunAsyncScaleJWINS(4096, 1, ScaleEvalSample, 8, 0)
		}},
		// Aggregate-batch bracket: the b8a8 arms run both pipelines — batched
		// shares AND batched aggregates with the fleet-shared decode cache —
		// against the b8 share-only rows above.
		{"engine-asyncjwins1024-p1-b8a8", func() (int64, error) {
			return RunAsyncScaleJWINS(1024, 1, ScaleEvalSample, 8, 8)
		}},
		{"engine-asyncjwins4096-p1-b8a8", func() (int64, error) {
			return RunAsyncScaleJWINS(4096, 1, ScaleEvalSample, 8, 8)
		}},
		// Fleet-construction bracket: build-only, no run. Lazy is the
		// copy-on-write default; eager builds every layer graph up front.
		{"fleet-build-4096-lazy", func() (int64, error) {
			_, _, _, err := ScaleFleet(4096)
			return 0, err
		}},
		{"fleet-build-4096-eager", func() (int64, error) {
			_, _, _, err := ScaleFleetEager(4096)
			return 0, err
		}},
	}
	micro, err := microBenches()
	if err != nil {
		return nil, err
	}
	return append(benches, micro...), nil
}

// microBenches builds the Share/Aggregate micro-benchmarks over persistent
// 100k-parameter JWINS pairs, excluding local training. Aggregate re-merges
// a fixed payload pair so its cost is not polluted by Share's. Two codec
// variants run: flate32 (the paper default; its decode keeps a handful of
// compress/flate-internal allocations per op) and raw32 (zero-allocation
// steady state for the repository's own pipeline).
func microBenches() ([]Bench, error) {
	flatePair, err := microPair("", nil)
	if err != nil {
		return nil, err
	}
	rawPair, err := microPair("-raw32", codec.Raw32{})
	if err != nil {
		return nil, err
	}
	return append(flatePair, rawPair...), nil
}

func microPair(suffix string, fc codec.FloatCodec) ([]Bench, error) {
	const dim = 100_000
	a, b, err := JWINSPairCodec(dim, fc)
	if err != nil {
		return nil, err
	}
	// One node call per op, matching BenchmarkJWINSShare/BenchmarkJWINSAggregate
	// exactly so JSON baselines and benchstat output compare one-to-one.
	wA := PairWeights(1)
	round := 0
	share := Bench{"jwins-share-100k" + suffix, func() (int64, error) {
		round++
		_, _, err := a.Share(round)
		return 0, err
	}}
	if _, _, err := a.Share(0); err != nil {
		return nil, err
	}
	payloadB, _, err := b.Share(0)
	if err != nil {
		return nil, err
	}
	msgsA := map[int][]byte{1: payloadB}
	aggregate := Bench{"jwins-aggregate-100k" + suffix, func() (int64, error) {
		return 0, a.Aggregate(round, wA, msgsA)
	}}
	benches := []Bench{share, aggregate}
	batch, err := microShareBatch(suffix, fc)
	if err != nil {
		return nil, err
	}
	aggBatch, err := microAggregateBatch(suffix, fc)
	if err != nil {
		return nil, err
	}
	return append(benches, batch, aggBatch), nil
}

// microShareBatch is the batched counterpart of the jwins-share row: one op
// runs a SharePipeline batch of 8 plan-sharing 100k-parameter nodes, so its
// ns/op divided by 8 compares directly against jwins-share-100k ns/op.
func microShareBatch(suffix string, fc codec.FloatCodec) (Bench, error) {
	const (
		dim   = 100_000
		width = 8
	)
	nodes, err := JWINSBatchNodes(dim, width, fc)
	if err != nil {
		return Bench{}, err
	}
	pipe := &core.SharePipeline{}
	payloads := make([][]byte, width)
	bds := make([]codec.ByteBreakdown, width)
	if err := pipe.ShareBatch(nodes, payloads, bds); err != nil { // warm the scratch
		return Bench{}, err
	}
	return Bench{fmt.Sprintf("jwins-sharebatch%d-100k%s", width, suffix), func() (int64, error) {
		return 0, pipe.ShareBatch(nodes, payloads, bds)
	}}, nil
}

// microAggregateBatch is the batched counterpart of the jwins-aggregate row:
// one op runs an AggregatePipeline batch of 8 plan-sharing 100k-parameter
// recipients that all merge the SAME sender payload through a fleet-shared
// DecodeCache, so its ns/op divided by 8 compares directly against
// jwins-aggregate-100k ns/op. The sender's cache line is invalidated at the
// top of each op so every op pays exactly one decode plus seven cache hits —
// the steady-state cost of one broadcast fanned out to eight recipients,
// never a fully pre-decoded freebie.
func microAggregateBatch(suffix string, fc codec.FloatCodec) (Bench, error) {
	const (
		dim   = 100_000
		width = 8
	)
	nodes, err := JWINSBatchNodes(dim, width+1, fc)
	if err != nil {
		return Bench{}, err
	}
	sender, recips := nodes[width], nodes[:width]
	dc := &core.DecodeCache{}
	for _, n := range recips {
		n.SetDecodeCache(dc)
	}
	payload, _, err := sender.Share(0)
	if err != nil {
		return Bench{}, err
	}
	ws := make([]topology.Weights, width)
	msgs := make([]map[int][]byte, width)
	for i := range recips {
		ws[i] = topology.Weights{Self: 0.5, Neighbor: map[int]float64{width: 0.5}}
		msgs[i] = map[int][]byte{width: payload}
	}
	pipe := &core.AggregatePipeline{}
	if err := pipe.AggregateBatch(recips, ws, msgs); err != nil { // warm the scratch
		return Bench{}, err
	}
	return Bench{fmt.Sprintf("jwins-aggregatebatch%d-100k%s", width, suffix), func() (int64, error) {
		dc.InvalidateSender(width)
		return 0, pipe.AggregateBatch(recips, ws, msgs)
	}}, nil
}

// Report is the schema of a BENCH_*.json artifact.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	// GOMAXPROCS is the effective scheduler width — it diverges from NumCPU
	// under cgroup CPU limits or an explicit env override, and parallel
	// engine numbers are only comparable at equal width.
	GOMAXPROCS int  `json:"gomaxprocs"`
	Quick      bool `json:"quick,omitempty"`
	// Telemetry is the engine's own view of the reference async256 serial
	// run (queue depth, policy waits, speculation hit rate), recorded so an
	// anomalous timing regression can be cross-read against scheduler
	// behavior in the same artifact.
	Telemetry *TelemetryContext `json:"telemetry,omitempty"`
	Records   []Record          `json:"records"`
}

// TelemetryContext is the distilled engine-telemetry block of a Report.
type TelemetryContext struct {
	Source      string  `json:"source"` // the configuration probed
	Events      int64   `json:"events"`
	Sends       int64   `json:"sends"`
	BytesTotal  int64   `json:"bytes_total"`
	QueueP95    float64 `json:"queue_p95"`
	WaitP95     float64 `json:"wait_p95_s"`
	SpecHitRate float64 `json:"spec_hit_rate"`
}

// TelemetryProbe executes the async256 reference configuration serially with
// engine telemetry enabled and distills the snapshot. Strictly observational:
// the run it measures is schedule-identical to engine-async256-p1.
func TelemetryProbe() (*TelemetryContext, error) {
	nodes, ds, topo, err := ScaleFleet(256)
	if err != nil {
		return nil, err
	}
	tel := simulation.NewTelemetry()
	eng := &simulation.AsyncEngine{
		Nodes: nodes, Topology: topo, TestSet: ds,
		Config: simulation.AsyncConfig{
			Config:    simulation.Config{Rounds: 4, EvalEvery: 4, EvalNodes: 8, Parallelism: 1},
			Het:       simulation.Heterogeneity{ComputeSpread: 0.3, Seed: Seed},
			Telemetry: tel,
		},
	}
	if _, err := eng.Run(); err != nil {
		return nil, err
	}
	snap := tel.Snapshot()
	sum := simulation.Summarize(snap)
	ctx := &TelemetryContext{
		Source:      "engine-async256-p1",
		Sends:       snap.Counter(simulation.MetricSends),
		BytesTotal:  snap.Counter(simulation.MetricBytesTotal),
		QueueP95:    sum.QueueP95,
		WaitP95:     sum.WaitP95,
		SpecHitRate: sum.SpecHitRate,
	}
	for key, v := range snap.Counters {
		if strings.HasPrefix(key, simulation.MetricEvents+"{") {
			ctx.Events += v
		}
	}
	return ctx, nil
}

// Run executes the suite. quick runs each benchmark once (-benchtime=1x
// semantics, for CI smoke); otherwise iteration counts target ~1s each.
func Run(quick bool, logf func(format string, args ...any)) (*Report, error) {
	benches, err := Suite()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Quick:       quick,
	}
	if tel, err := TelemetryProbe(); err == nil {
		rep.Telemetry = tel
	} else if logf != nil {
		logf("telemetry probe failed: %v", err)
	}
	for _, b := range benches {
		iters := 1
		if !quick {
			if iters, err = autoIters(time.Second, b.Fn); err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
		}
		rec, err := measure(b.Name, iters, b.Fn)
		if err != nil {
			return nil, err
		}
		rep.Records = append(rep.Records, rec)
		if logf != nil {
			logf("%-28s %10d it  %14.0f ns/op  %12.1f allocs/op  %14.0f B/op  %s",
				rec.Name, rec.Iters, rec.NsPerOp, rec.AllocsPerOp, rec.BytesPerOp, eventsStr(rec.EventsPerSec))
		}
	}
	return rep, nil
}

func eventsStr(v float64) string {
	if v == 0 {
		return ""
	}
	return fmt.Sprintf("%12.0f events/s", v)
}

// WriteJSON writes the report to path.
func (r *Report) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// CheckDeterminism runs the AsyncChurn16 configuration (stragglers, churn,
// drops) and its epoch-rotated dyntopo and bounded-staleness variants
// serially and at every parallelism level up to NumCPU that is worth
// checking, and errors on any divergence in the event trace, byte ledger,
// result rows, or the bytes a streaming recorder emits (each run records its
// schedule through a trace.StreamRecorder, so the streamed .jtb must be
// bit-identical across parallelism levels too). CI fails the bench smoke job
// on a non-nil return.
func CheckDeterminism() error {
	type capture struct {
		trace    []simulation.Event
		result   *simulation.Result
		streamed []byte
	}
	run := func(parallelism int, dyntopo bool, policy simulation.AggregationPolicy) (capture, error) {
		nodes, ds, topo, err := EngineFleet()
		if err != nil {
			return capture{}, err
		}
		if dyntopo {
			topo = DynTopoProvider()
		}
		policyName := trace.PolicyBarrier
		if policy != nil {
			policyName = policy.Name()
		}
		var c capture
		var buf bytes.Buffer
		sr, err := trace.NewStreamRecorder(&buf, trace.Header{
			Nodes: len(nodes), Rounds: 10, Source: trace.SourceSim, Policy: policyName,
		}, true)
		if err != nil {
			return capture{}, err
		}
		eng := &simulation.AsyncEngine{
			Nodes: nodes, Topology: topo, TestSet: ds,
			Config: simulation.AsyncConfig{
				Config:  simulation.Config{Rounds: 10, EvalEvery: 5, Parallelism: parallelism, DropProb: 0.05, FaultSeed: 3},
				Het:     EngineHet(),
				Churn:   EngineChurn(),
				Policy:  policy,
				OnEvent: func(ev simulation.Event) { c.trace = append(c.trace, ev) },
				Record:  sr,
			},
		}
		c.result, err = eng.Run()
		if err != nil {
			return c, err
		}
		if err := sr.Close(); err != nil {
			return c, fmt.Errorf("stream recorder: %w", err)
		}
		c.streamed = buf.Bytes()
		return c, nil
	}
	levels := []int{2}
	if n := runtime.NumCPU(); n > 2 {
		levels = append(levels, n)
	}
	arms := []struct {
		name    string
		dyntopo bool
		policy  simulation.AggregationPolicy
	}{
		{"static", false, nil},
		{"dyntopo", true, nil},
		{"bounded", false, simulation.BoundedStalenessPolicy{K: 2, Tau: 2}},
	}
	for _, arm := range arms {
		ref, err := run(1, arm.dyntopo, arm.policy)
		if err != nil {
			return fmt.Errorf("%s serial: %w", arm.name, err)
		}
		for _, p := range levels {
			got, err := run(p, arm.dyntopo, arm.policy)
			if err != nil {
				return fmt.Errorf("%s parallelism %d: %w", arm.name, p, err)
			}
			if err := compareCaptures(ref.trace, got.trace, ref.result, got.result); err != nil {
				return fmt.Errorf("%s parallelism %d diverged from serial: %w", arm.name, p, err)
			}
			if !bytes.Equal(ref.streamed, got.streamed) {
				return fmt.Errorf("%s parallelism %d: streamed trace bytes diverge from serial (%d vs %d bytes)",
					arm.name, p, len(got.streamed), len(ref.streamed))
			}
		}
	}
	return nil
}

func compareCaptures(refTrace, gotTrace []simulation.Event, ref, got *simulation.Result) error {
	if len(refTrace) != len(gotTrace) {
		return fmt.Errorf("trace length %d != %d", len(gotTrace), len(refTrace))
	}
	for i := range refTrace {
		a, b := refTrace[i], gotTrace[i]
		if a.Time != b.Time || a.Seq != b.Seq || a.Kind != b.Kind || a.Node != b.Node ||
			a.From != b.From || a.Iter != b.Iter || a.Dropped != b.Dropped {
			return fmt.Errorf("event %d: %+v != %+v", i, b, a)
		}
	}
	if ref.TotalBytes != got.TotalBytes || ref.ModelBytes != got.ModelBytes || ref.MetaBytes != got.MetaBytes {
		return fmt.Errorf("byte ledger (%d,%d,%d) != (%d,%d,%d)",
			got.TotalBytes, got.ModelBytes, got.MetaBytes, ref.TotalBytes, ref.ModelBytes, ref.MetaBytes)
	}
	if ref.SimTime != got.SimTime || !floatEq(ref.FinalAccuracy, got.FinalAccuracy) || !floatEq(ref.FinalLoss, got.FinalLoss) {
		return fmt.Errorf("final metrics differ: (%v,%v,%v) != (%v,%v,%v)",
			got.SimTime, got.FinalAccuracy, got.FinalLoss, ref.SimTime, ref.FinalAccuracy, ref.FinalLoss)
	}
	if len(ref.Rounds) != len(got.Rounds) {
		return fmt.Errorf("row count %d != %d", len(got.Rounds), len(ref.Rounds))
	}
	for i := range ref.Rounds {
		a, b := ref.Rounds[i], got.Rounds[i]
		if a.CumTotalBytes != b.CumTotalBytes || !floatEq(a.TrainLoss, b.TrainLoss) ||
			!floatEq(a.TestAcc, b.TestAcc) || !floatEq(a.MeanAlpha, b.MeanAlpha) {
			return fmt.Errorf("row %d differs: %+v != %+v", i, b, a)
		}
	}
	return nil
}

// floatEq treats NaN == NaN (rows without evaluation carry NaN).
func floatEq(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}
