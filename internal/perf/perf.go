// Package perf is the repository's performance harness: canonical benchmark
// fleets (shared with bench_test.go so `go test -bench` and `jwins-bench
// -bench-json` measure the same workloads), a self-contained measurement
// loop reporting ns/op, allocs/op, bytes/op, and simulated events/sec, a
// serial-vs-parallel determinism check, and a JSON writer for committed
// BENCH_*.json baselines (compare across PRs with benchstat or jq).
package perf

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/simulation"
	"repro/internal/topology"
	"repro/internal/vec"
)

// Seed is the root seed of every perf fleet (the historical bench_test seed).
const Seed = 42

// MaxParallelism is the pool width of the "pmax" benchmark arms: NumCPU, but
// at least 2 so single-core machines still exercise the parallel code path.
func MaxParallelism() int {
	if n := runtime.NumCPU(); n > 2 {
		return n
	}
	return 2
}

// EngineFleet builds the canonical 16-node full-sharing benchmark fleet over
// a 4-regular graph on the standard small non-IID image task.
func EngineFleet() ([]core.Node, *datasets.Dataset, topology.Provider, error) {
	const n = 16
	rng := vec.NewRNG(Seed)
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Channels: 1, Height: 8, Width: 8,
		TrainPerClass: 40, TestPerClass: 10,
	}, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	parts, err := datasets.PartitionShards(ds, n, 2, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	opts := core.TrainOpts{LR: 0.05, LocalSteps: 2}
	nodes := make([]core.Node, n)
	for i := range nodes {
		nodeRNG := rng.Split()
		model := nn.NewMLP(64, 24, 4, nodeRNG)
		loader := datasets.NewLoader(ds, parts[i], 8, nodeRNG.Split())
		nodes[i], err = core.NewFullSharing(i, model, loader, opts, codec.Raw32{})
		if err != nil {
			return nil, nil, nil, err
		}
	}
	g, err := topology.Regular(n, 4, vec.NewRNG(Seed^1))
	if err != nil {
		return nil, nil, nil, err
	}
	return nodes, ds, topology.NewStatic(g), nil
}

// scaleFixtures memoizes the dataset synthesis behind ScaleFleet per node
// count, mirroring experiments' workload cache: repeated benchmark
// iterations (and the lazy-vs-eager fleet-build rows) share one read-only
// dataset and partition instead of re-synthesizing per call.
var scaleFixtures = struct {
	sync.Mutex
	m map[int]*scaleFixture
}{m: map[int]*scaleFixture{}}

type scaleFixture struct {
	ds    *datasets.Dataset
	parts [][]int
}

func scaleFixtureFor(n int) (*scaleFixture, error) {
	scaleFixtures.Lock()
	defer scaleFixtures.Unlock()
	if f, ok := scaleFixtures.m[n]; ok {
		return f, nil
	}
	rng := vec.NewRNG(Seed)
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Channels: 1, Height: 8, Width: 8,
		TrainPerClass: n, TestPerClass: 8,
	}, rng)
	if err != nil {
		return nil, err
	}
	parts, err := datasets.PartitionShards(ds, n, 2, rng)
	if err != nil {
		return nil, err
	}
	f := &scaleFixture{ds: ds, parts: parts}
	scaleFixtures.m[n] = f
	return f, nil
}

// ScaleFleet builds an n-node full-sharing raw32 fleet over a 4-regular
// graph on a deliberately lean task (8×8 single-channel 4-class images, one
// sample per class per node, a 64→16→4 MLP), so scheduler cost — not SGD —
// dominates. The fixture of the engine-async rows; mirrors
// experiments.ScaleWorkload, including its copy-on-write models: each node
// gets an nn.Lazy wrapper over shared initial weights, so construction cost
// is ~1 model regardless of n.
func ScaleFleet(n int) ([]core.Node, *datasets.Dataset, topology.Provider, error) {
	return scaleFleet(n, true)
}

// ScaleFleetEager is ScaleFleet with every node's layer graph built up
// front — the baseline of the fleet-build benchmark rows. Fleets behave
// bit-identically either way.
func ScaleFleetEager(n int) ([]core.Node, *datasets.Dataset, topology.Provider, error) {
	return scaleFleet(n, false)
}

func scaleFleet(n int, lazy bool) ([]core.Node, *datasets.Dataset, topology.Provider, error) {
	fix, err := scaleFixtureFor(n)
	if err != nil {
		return nil, nil, nil, err
	}
	// A dedicated RNG stream for the fleet: the dataset RNG lives inside the
	// memoized fixture, so node seeds must not depend on whether this call
	// hit the cache.
	rng := vec.NewRNG(Seed ^ 0x666c65) // "fle"
	template := nn.NewMLP(64, 16, 4, rng.Split())
	initial := make([]float64, template.ParamCount())
	template.CopyParams(initial)
	opts := core.TrainOpts{LR: 0.05, LocalSteps: 2}
	nodes := make([]core.Node, n)
	for i := range nodes {
		nodeRNG := rng.Split()
		// Same split discipline as experiments.BuildFleet: the model owns a
		// dedicated split so loader seeds are independent of when — or
		// whether — the layer graph is built.
		modelRNG := nodeRNG.Split()
		var model nn.Trainable
		if lazy {
			model = nn.NewLazy(len(initial), initial, func() nn.Trainable {
				return nn.NewMLP(64, 16, 4, modelRNG)
			})
		} else {
			m := nn.NewMLP(64, 16, 4, modelRNG)
			m.SetParams(initial)
			model = m
		}
		loader := datasets.NewLoader(fix.ds, fix.parts[i], 4, nodeRNG.Split())
		nodes[i], err = core.NewFullSharing(i, model, loader, opts, codec.Raw32{})
		if err != nil {
			return nil, nil, nil, err
		}
	}
	g, err := topology.Regular(n, 4, vec.NewRNG(Seed^1))
	if err != nil {
		return nil, nil, nil, err
	}
	return nodes, fix.ds, topology.NewStatic(g), nil
}

// ScaleFleetJWINS builds an n-node JWINS raw32 fleet on the same lean scale
// task, partitions, and RNG discipline as ScaleFleet (lazy copy-on-write
// models included). Every node's transformer resolves to the one cached DWT
// plan for the model dimension, so the fleet is share-batchable end to end —
// the fixture of the engine-asyncjwins rows that measure the batched share
// pipeline inside a full scheduler run.
func ScaleFleetJWINS(n int) ([]core.Node, *datasets.Dataset, topology.Provider, error) {
	fix, err := scaleFixtureFor(n)
	if err != nil {
		return nil, nil, nil, err
	}
	// Same dedicated fleet stream as scaleFleet, so JWINS rows and
	// full-sharing rows run over identically seeded models and loaders.
	rng := vec.NewRNG(Seed ^ 0x666c65) // "fle"
	template := nn.NewMLP(64, 16, 4, rng.Split())
	initial := make([]float64, template.ParamCount())
	template.CopyParams(initial)
	opts := core.TrainOpts{LR: 0.05, LocalSteps: 2}
	cfg := core.DefaultJWINSConfig()
	cfg.FloatCodec = codec.Raw32{}
	nodes := make([]core.Node, n)
	for i := range nodes {
		nodeRNG := rng.Split()
		modelRNG := nodeRNG.Split()
		model := nn.NewLazy(len(initial), initial, func() nn.Trainable {
			return nn.NewMLP(64, 16, 4, modelRNG)
		})
		loader := datasets.NewLoader(fix.ds, fix.parts[i], 4, nodeRNG.Split())
		nodes[i], err = core.NewJWINS(i, model, loader, opts, cfg, nodeRNG.Split())
		if err != nil {
			return nil, nil, nil, err
		}
	}
	g, err := topology.Regular(n, 4, vec.NewRNG(Seed^1))
	if err != nil {
		return nil, nil, nil, err
	}
	return nodes, fix.ds, topology.NewStatic(g), nil
}

// RunAsyncScaleJWINS is RunAsyncScale over a JWINS fleet with the batch
// widths set: shareBatch/aggregateBatch 0 run the per-node reference
// dispatch, >= 2 fold chained dispatches into batched SharePipeline /
// AggregatePipeline runs. Schedules are bit-identical either way; only the
// compute cost differs. Batching is forced on so single-core benchmark hosts
// measure the batched path rather than the GOMAXPROCS gate.
func RunAsyncScaleJWINS(n, parallelism, evalSample, shareBatch, aggregateBatch int) (int64, error) {
	nodes, ds, topo, err := ScaleFleetJWINS(n)
	if err != nil {
		return 0, err
	}
	cfg := simulation.Config{
		Rounds: 4, EvalEvery: 4, EvalNodes: 8,
		EvalSeed: Seed, Parallelism: parallelism,
	}
	if evalSample > 0 {
		cfg.EvalSample = evalSample
	}
	var events int64
	eng := &simulation.AsyncEngine{
		Nodes: nodes, Topology: topo, TestSet: ds,
		Config: simulation.AsyncConfig{
			Config:          cfg,
			Het:             simulation.Heterogeneity{ComputeSpread: 0.3, Seed: Seed},
			ShareBatch:      shareBatch,
			AggregateBatch:  aggregateBatch,
			ShareBatchForce: true,
			OnEvent:         func(simulation.Event) { events++ },
		},
	}
	if _, err := eng.Run(); err != nil {
		return 0, err
	}
	return events, nil
}

// JWINSBatchNodes builds n JWINS nodes over dim-parameter flat models; the
// plan cache hands every node the same *dwt.Plan, so the slice drops straight
// into core.SharePipeline.ShareBatch. The fixture of the share-batch
// micro-benchmarks and the batched allocation budget test.
func JWINSBatchNodes(dim, n int, fc codec.FloatCodec) ([]*core.JWINSNode, error) {
	rng := vec.NewRNG(3)
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 2, Channels: 1, Height: 4, Width: 4, TrainPerClass: 4, TestPerClass: 2,
	}, rng)
	if err != nil {
		return nil, err
	}
	loader := datasets.NewLoader(ds, []int{0, 1, 2, 3}, 2, rng.Split())
	opts := core.TrainOpts{LR: 0.1, LocalSteps: 1}
	cfg := core.DefaultJWINSConfig()
	if fc != nil {
		cfg.FloatCodec = fc
	}
	nodes := make([]*core.JWINSNode, n)
	for i := range nodes {
		nodes[i], err = core.NewJWINS(i, NewFlatModel(randomParams(dim, uint64(i+1))), loader, opts, cfg, rng.Split())
		if err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// ScaleEvalSample is the rotating eval subset size of the 1024/4096-node
// benchmark arms, matching the ext-scale sweep's sampled tier.
const ScaleEvalSample = 64

// RunAsync256 executes one iteration of the 256-node event-driven benchmark
// (heterogeneous profiles, 4 iterations per node, one final eval over a
// seeded 8-node subset) and returns the number of scheduler events processed.
func RunAsync256(parallelism int) (int64, error) {
	return RunAsyncScale(256, parallelism, 0)
}

// RunAsync1024 is the 1024-node tier with sampled rotating evaluation
// (ScaleEvalSample nodes per eval row).
func RunAsync1024(parallelism int) (int64, error) {
	return RunAsyncScale(1024, parallelism, ScaleEvalSample)
}

// RunAsync4096 is the 4096-node tier with sampled rotating evaluation.
func RunAsync4096(parallelism int) (int64, error) {
	return RunAsyncScale(4096, parallelism, ScaleEvalSample)
}

// RunAsyncScale executes one iteration of the n-node event-driven benchmark
// (heterogeneous profiles, 4 iterations per node, one eval row) and returns
// the number of scheduler events processed. evalSample > 0 scores a seeded
// rotating subset of that many nodes per eval row; evalSample == 0 keeps the
// historical seeded 8-node cap; evalSample < 0 evaluates the whole fleet
// exactly (the eval-cost suite rows difference full-exact vs sampled).
func RunAsyncScale(n, parallelism, evalSample int) (int64, error) {
	nodes, ds, topo, err := ScaleFleet(n)
	if err != nil {
		return 0, err
	}
	cfg := simulation.Config{
		Rounds: 4, EvalEvery: 4, EvalNodes: 8,
		EvalSeed: Seed, Parallelism: parallelism,
	}
	switch {
	case evalSample > 0:
		cfg.EvalSample = evalSample
	case evalSample < 0:
		cfg.EvalNodes = 0 // exact evaluation over the whole fleet
	}
	var events int64
	eng := &simulation.AsyncEngine{
		Nodes: nodes, Topology: topo, TestSet: ds,
		Config: simulation.AsyncConfig{
			Config:  cfg,
			Het:     simulation.Heterogeneity{ComputeSpread: 0.3, Seed: Seed},
			OnEvent: func(simulation.Event) { events++ },
		},
	}
	if _, err := eng.Run(); err != nil {
		return 0, err
	}
	return events, nil
}

// EngineChurn is the churn trace used by the AsyncChurn16 benchmark.
func EngineChurn() []simulation.ChurnEvent {
	return simulation.GenerateChurn(16, 0.25, 0.02, 0.15, 0.05, Seed)
}

// EngineHet is the straggler distribution used by the AsyncChurn16 benchmark.
func EngineHet() simulation.Heterogeneity {
	return simulation.Heterogeneity{ComputeSpread: 0.5, Seed: Seed}
}

// RunSync16 executes one iteration of the synchronous engine benchmark and
// returns the number of simulated node operations (train+share and aggregate
// per node per round).
func RunSync16(parallelism int) (int64, error) {
	nodes, ds, topo, err := EngineFleet()
	if err != nil {
		return 0, err
	}
	eng := &simulation.Engine{
		Nodes: nodes, Topology: topo, TestSet: ds,
		Config: simulation.Config{Rounds: 10, EvalEvery: 10, Parallelism: parallelism},
	}
	res, err := eng.Run()
	if err != nil {
		return 0, err
	}
	return 2 * int64(len(nodes)) * int64(len(res.Rounds)), nil
}

// RunAsync16 executes one iteration of the event-driven engine benchmark
// (homogeneous profiles, no churn) and returns the number of scheduler
// events processed.
func RunAsync16(parallelism int) (int64, error) {
	return runAsync(parallelism, nil, nil)
}

// RunAsyncChurn16 adds the straggler tail and 25% churn.
func RunAsyncChurn16(parallelism int) (int64, error) {
	het := EngineHet()
	return runAsync(parallelism, &het, EngineChurn())
}

// DynTopoEpochSec is the rotation cadence of the dynamic-topology benchmark
// arm: roughly two benchmark iterations per epoch under the default time
// model, so a 10-iteration run crosses several boundaries.
const DynTopoEpochSec = 0.05

// DynTopoProvider builds the epoch-rotated topology of the AsyncDynTopo16
// benchmark: deterministic random 4-regular graphs per epoch.
func DynTopoProvider() topology.Provider {
	return topology.NewEpochProvider(topology.NewSeededDynamic(16, 4, Seed^1), 16, DynTopoEpochSec)
}

// RunAsyncDynTopo16 is RunAsyncChurn16 over the epoch-rotated topology: the
// boundary work (graph regeneration, spectral gap, state-sync sends, buffer
// re-keying) joins the measured path.
func RunAsyncDynTopo16(parallelism int) (int64, error) {
	het := EngineHet()
	return runAsyncOn(parallelism, &het, EngineChurn(), DynTopoProvider())
}

func runAsync(parallelism int, het *simulation.Heterogeneity, churn []simulation.ChurnEvent) (int64, error) {
	return runAsyncOn(parallelism, het, churn, nil)
}

func runAsyncOn(parallelism int, het *simulation.Heterogeneity, churn []simulation.ChurnEvent, topo topology.Provider) (int64, error) {
	nodes, ds, defaultTopo, err := EngineFleet()
	if err != nil {
		return 0, err
	}
	if topo == nil {
		topo = defaultTopo
	}
	var events int64
	cfg := simulation.AsyncConfig{
		Config:  simulation.Config{Rounds: 10, EvalEvery: 10, Parallelism: parallelism},
		Churn:   churn,
		OnEvent: func(simulation.Event) { events++ },
	}
	if het != nil {
		cfg.Het = *het
	}
	eng := &simulation.AsyncEngine{Nodes: nodes, Topology: topo, TestSet: ds, Config: cfg}
	if _, err := eng.Run(); err != nil {
		return 0, err
	}
	return events, nil
}

// JWINSPair builds two connected JWINS nodes over a dim-parameter flat model
// with the paper's default configuration (flate32 values), the fixture of
// the Share/Aggregate micro-benchmarks.
func JWINSPair(dim int) (a, b *core.JWINSNode, err error) {
	return JWINSPairCodec(dim, nil)
}

// JWINSPairCodec is JWINSPair with an explicit float codec (nil keeps the
// default). The raw32 variant isolates the repository's own pipeline from
// compress/flate's internal per-block table allocations, which are the only
// allocations left on the decode path.
func JWINSPairCodec(dim int, fc codec.FloatCodec) (a, b *core.JWINSNode, err error) {
	rng := vec.NewRNG(3)
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 2, Channels: 1, Height: 4, Width: 4, TrainPerClass: 4, TestPerClass: 2,
	}, rng)
	if err != nil {
		return nil, nil, err
	}
	loader := datasets.NewLoader(ds, []int{0, 1, 2, 3}, 2, rng.Split())
	opts := core.TrainOpts{LR: 0.1, LocalSteps: 1}
	cfg := core.DefaultJWINSConfig()
	if fc != nil {
		cfg.FloatCodec = fc
	}
	a, err = core.NewJWINS(0, NewFlatModel(randomParams(dim, 1)), loader, opts, cfg, rng.Split())
	if err != nil {
		return nil, nil, err
	}
	b, err = core.NewJWINS(1, NewFlatModel(randomParams(dim, 2)), loader, opts, cfg, rng.Split())
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// PairWeights is the mixing row of a two-node clique for the micro fixtures.
func PairWeights(neighbor int) topology.Weights {
	return topology.Weights{Self: 0.5, Neighbor: map[int]float64{neighbor: 0.5}}
}

func randomParams(n int, seed uint64) []float64 {
	rng := vec.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// FlatModel is a minimal Trainable over a raw parameter vector: the model
// stand-in for micro-benchmarks that isolate the JWINS pipeline from SGD.
type FlatModel struct{ params []float64 }

// NewFlatModel wraps params as a Trainable.
func NewFlatModel(params []float64) *FlatModel { return &FlatModel{params: params} }

// ParamCount implements nn.Trainable.
func (m *FlatModel) ParamCount() int { return len(m.params) }

// CopyParams implements nn.Trainable.
func (m *FlatModel) CopyParams(dst []float64) { copy(dst, m.params) }

// SetParams implements nn.Trainable.
func (m *FlatModel) SetParams(src []float64) { copy(m.params, src) }

// TrainBatch implements nn.Trainable (no-op).
func (m *FlatModel) TrainBatch(*nn.Tensor, []float64, float64) float64 { return 0 }

// EvalBatch implements nn.Trainable (no-op).
func (m *FlatModel) EvalBatch(*nn.Tensor, []float64) (float64, int, int) { return 0, 0, 1 }

// Record is one benchmark's measurement in a BENCH_*.json file.
type Record struct {
	Name         string  `json:"name"`
	Iters        int     `json:"iters"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// measure runs fn iters times and reports per-op wall time, allocations,
// and bytes, plus simulated events/sec when fn reports events.
func measure(name string, iters int, fn func() (int64, error)) (Record, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var events int64
	for i := 0; i < iters; i++ {
		ev, err := fn()
		if err != nil {
			return Record{}, fmt.Errorf("%s: %w", name, err)
		}
		events += ev
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	rec := Record{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	}
	if events > 0 && elapsed > 0 {
		rec.EventsPerSec = float64(events) / elapsed.Seconds()
	}
	return rec, nil
}

// autoIters scales the iteration count so a benchmark runs for roughly
// budget, based on one warm-up run (which also primes pools and caches).
func autoIters(budget time.Duration, fn func() (int64, error)) (int, error) {
	start := time.Now()
	if _, err := fn(); err != nil {
		return 0, err
	}
	once := time.Since(start)
	if once <= 0 {
		return 100, nil
	}
	iters := int(budget / once)
	if iters < 1 {
		iters = 1
	}
	if iters > 10_000_000 {
		iters = 10_000_000
	}
	return iters, nil
}
