package perf

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/simulation"
	"repro/internal/topology"
)

// schedulerAllocCeiling is the committed per-event allocation budget of the
// steady-state event loop (raw32 codec, serial pool). The loop itself is
// allocation-free after the PR that pooled the event heap, payload maps, and
// nn scratch; what remains per train-done event is the freshly encoded
// broadcast payload (which must be a new allocation — it is retained by
// neighbors) plus map-bucket growth amortized across the run. Measured ~2.3
// allocs/event on go1.24; the ceiling leaves headroom for toolchain noise
// while still failing on any O(1)-per-event regression (the pre-PR engine
// sat at ~12).
const schedulerAllocCeiling = 4.0

// allocRun executes one serial raw32 engine run and returns its event count.
// Telemetry is enabled on purpose: the instrumented hot path must stay under
// the same ceiling — every metric op is a pre-registered atomic (see
// internal/simulation/telemetry.go), and the registry construction is
// rounds-independent so the lo/hi differencing cancels it exactly.
func allocRun(rounds int) (int64, error) {
	nodes, ds, topo, err := EngineFleet()
	if err != nil {
		return 0, err
	}
	var events int64
	eng := &simulation.AsyncEngine{
		Nodes: nodes, Topology: topo, TestSet: ds,
		Config: simulation.AsyncConfig{
			Config:    simulation.Config{Rounds: rounds, EvalEvery: rounds, Parallelism: 1},
			OnEvent:   func(simulation.Event) { events++ },
			Telemetry: simulation.NewTelemetry(),
		},
	}
	if _, err := eng.Run(); err != nil {
		return 0, err
	}
	return events, nil
}

// fleetAllocPerNodeCeiling is the committed per-node allocation budget of
// copy-on-write fleet construction (ScaleFleet). A lazy node costs its Lazy
// wrapper, build closure, two RNG splits, loader, and full-sharing shell —
// measured ~16 allocs/node on go1.24 — while an eager node adds the whole
// MLP layer graph (~42). The ceiling leaves toolchain headroom but fails if
// per-node model construction ever sneaks back into the build path.
const fleetAllocPerNodeCeiling = 24.0

// TestFleetConstructionAllocBudget guards the copy-on-write win the same way
// TestSchedulerAllocationCeiling guards the event loop: fleets at two sizes
// are measured and differenced, so the shared template model, topology, and
// memoized dataset fixture cancel, leaving the marginal cost per node.
func TestFleetConstructionAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is timing-insensitive but not free")
	}
	const (
		loNodes, hiNodes = 256, 1024
		samples          = 3
	)
	build := func(f func(int) ([]int, error), n int) float64 {
		return testing.AllocsPerRun(samples, func() {
			if _, err := f(n); err != nil {
				t.Fatal(err)
			}
		})
	}
	lazy := func(n int) ([]int, error) { _, _, _, err := ScaleFleet(n); return nil, err }
	eager := func(n int) ([]int, error) { _, _, _, err := ScaleFleetEager(n); return nil, err }
	// Warm the memoized dataset fixtures so synthesis stays out of both
	// measurements.
	for _, n := range []int{loNodes, hiNodes} {
		if _, err := lazy(n); err != nil {
			t.Fatal(err)
		}
	}
	span := float64(hiNodes - loNodes)
	lazyPerNode := (build(lazy, hiNodes) - build(lazy, loNodes)) / span
	eagerPerNode := (build(eager, hiNodes) - build(eager, loNodes)) / span
	t.Logf("fleet construction: lazy %.2f allocs/node, eager %.2f allocs/node", lazyPerNode, eagerPerNode)
	if lazyPerNode > fleetAllocPerNodeCeiling {
		t.Fatalf("lazy fleet construction allocates %.2f/node, ceiling is %.1f", lazyPerNode, fleetAllocPerNodeCeiling)
	}
	if lazyPerNode >= eagerPerNode {
		t.Fatalf("lazy construction (%.2f allocs/node) no cheaper than eager (%.2f): copy-on-write is not deferring model builds",
			lazyPerNode, eagerPerNode)
	}
}

// shareBatchAllocCeiling is the committed per-share allocation budget of the
// batched pipeline. Each share inherently allocates its freshly encoded
// payload (retained by neighbors, so it cannot be pooled) plus the raw32
// value-section copy; the batch's shared DWT scratch amortizes to ~zero.
// Measured ~2.1 allocs/share on go1.24; the ceiling matches the scheduler's
// per-event budget so a regression in either pipeline half fails the same
// kind of guard.
const shareBatchAllocCeiling = 4.0

// TestShareBatchAllocationBudget guards the batched share pipeline's
// steady-state allocation rate: a warm SharePipeline over 8 plan-sharing
// 100k-parameter nodes must stay under the committed per-share ceiling.
func TestShareBatchAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is timing-insensitive but not free")
	}
	const width = 8
	nodes, err := JWINSBatchNodes(100_000, width, codec.Raw32{})
	if err != nil {
		t.Fatal(err)
	}
	pipe := &core.SharePipeline{}
	payloads := make([][]byte, width)
	bds := make([]codec.ByteBreakdown, width)
	// Warm the batch scratch and every node's share buffers.
	if err := pipe.ShareBatch(nodes, payloads, bds); err != nil {
		t.Fatal(err)
	}
	perShare := testing.AllocsPerRun(10, func() {
		if err := pipe.ShareBatch(nodes, payloads, bds); err != nil {
			t.Fatal(err)
		}
	}) / width
	t.Logf("batched share: %.2f allocs/share over a width-%d batch", perShare, width)
	if perShare > shareBatchAllocCeiling {
		t.Fatalf("batched share allocates %.2f/share, ceiling is %.1f", perShare, shareBatchAllocCeiling)
	}
}

// aggregateBatchAllocCeiling is the committed per-aggregate allocation budget
// of the batched pipeline: with warm scratch, the raw32 codec, and a shared
// decode cache, the steady state is fully pooled — the only allocations are
// the cache's once-per-payload ready channel and slot bookkeeping, amortized
// over the fan-out. Measured 0.00 allocs/aggregate on go1.24; the ceiling
// leaves headroom for runtime map-rehash noise only.
const aggregateBatchAllocCeiling = 1.0

// TestAggregateBatchAllocationBudget guards the batched aggregate pipeline's
// steady-state allocation rate: a warm AggregatePipeline over 8 plan-sharing
// 100k-parameter recipients of one broadcast payload must stay under the
// committed per-aggregate ceiling, decode cache on.
func TestAggregateBatchAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is timing-insensitive but not free")
	}
	const width = 8
	nodes, err := JWINSBatchNodes(100_000, width+1, codec.Raw32{})
	if err != nil {
		t.Fatal(err)
	}
	sender, recips := nodes[width], nodes[:width]
	dc := &core.DecodeCache{}
	for _, n := range recips {
		n.SetDecodeCache(dc)
	}
	payload, _, err := sender.Share(0)
	if err != nil {
		t.Fatal(err)
	}
	ws := make([]topology.Weights, width)
	msgs := make([]map[int][]byte, width)
	for i := range recips {
		ws[i] = topology.Weights{Self: 0.5, Neighbor: map[int]float64{width: 0.5}}
		msgs[i] = map[int][]byte{width: payload}
	}
	pipe := &core.AggregatePipeline{}
	warm := func() {
		dc.InvalidateSender(width)
		if err := pipe.AggregateBatch(recips, ws, msgs); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm()
	perAgg := testing.AllocsPerRun(10, warm) / width
	t.Logf("batched aggregate: %.2f allocs/aggregate over a width-%d batch", perAgg, width)
	if perAgg > aggregateBatchAllocCeiling {
		t.Fatalf("batched aggregate allocates %.2f/aggregate, ceiling is %.1f", perAgg, aggregateBatchAllocCeiling)
	}
}

// TestSchedulerAllocationCeiling guards the event loop's steady-state
// allocation rate the way the JWINS hot-path AllocsPerRun tests guard the
// share/aggregate kernels. Whole runs at two round budgets are measured and
// differenced, so fleet construction, warm-up growth of the pooled buffers,
// and the final evaluation — identical in both — cancel, leaving the
// marginal cost per scheduler event.
func TestSchedulerAllocationCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is timing-insensitive but not free")
	}
	const (
		loRounds, hiRounds = 4, 12
		samples            = 3
	)
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(samples, func() {
			if _, err := allocRun(rounds); err != nil {
				t.Fatal(err)
			}
		})
	}
	loEvents, err := allocRun(loRounds)
	if err != nil {
		t.Fatal(err)
	}
	hiEvents, err := allocRun(hiRounds)
	if err != nil {
		t.Fatal(err)
	}
	if hiEvents <= loEvents {
		t.Fatalf("event counts did not grow with rounds: %d vs %d", loEvents, hiEvents)
	}
	loAllocs := measure(loRounds)
	hiAllocs := measure(hiRounds)
	perEvent := (hiAllocs - loAllocs) / float64(hiEvents-loEvents)
	t.Logf("steady state: %.2f allocs/event over %d marginal events (lo %d/%.0f, hi %d/%.0f)",
		perEvent, hiEvents-loEvents, loEvents, loAllocs, hiEvents, hiAllocs)
	if perEvent > schedulerAllocCeiling {
		t.Fatalf("steady-state event loop allocates %.2f/event, ceiling is %.1f", perEvent, schedulerAllocCeiling)
	}
}
