package perf

import (
	"encoding/json"
	"testing"
)

// TestTelemetryProbe: the BENCH artifact's telemetry block must reflect a
// real instrumented run — events flowed, payloads moved, and the queue was
// never observed empty at a pop (depth counts the popped event itself).
func TestTelemetryProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 256-node engine run")
	}
	ctx, err := TelemetryProbe()
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Source != "engine-async256-p1" {
		t.Fatalf("Source = %q", ctx.Source)
	}
	if ctx.Events == 0 || ctx.Sends == 0 || ctx.BytesTotal == 0 {
		t.Fatalf("probe counted nothing: %+v", ctx)
	}
	if ctx.QueueP95 < 1 {
		t.Fatalf("queue p95 = %v, want >= 1", ctx.QueueP95)
	}
	if ctx.SpecHitRate < 0 || ctx.SpecHitRate > 1 {
		t.Fatalf("spec hit rate = %v outside [0,1]", ctx.SpecHitRate)
	}
	// The block must survive the artifact round trip.
	buf, err := json.Marshal(Report{Telemetry: ctx, GOMAXPROCS: 4})
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Telemetry == nil || back.Telemetry.Events != ctx.Events || back.GOMAXPROCS != 4 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}
