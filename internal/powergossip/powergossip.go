// Package powergossip implements POWERGOSSIP (Vogels, Karimireddy & Jaggi,
// NeurIPS 2020), the low-rank gossip-compression algorithm the paper cites as
// the other state-of-the-art baseline ("performs as good as tuned CHOCO
// without introducing any hyperparameter"). Each edge compresses the
// *difference* between its endpoints' models with one warm-started power
// iteration: per round the endpoints exchange a left sketch p = M q and a
// right sketch s = Mᵀ p̂, reconstruct the rank-1 approximation
// p̂ (s_i - s_j)ᵀ ≈ M_i - M_j, and move half-way toward each other along it.
//
// POWERGOSSIP needs two message exchanges per edge per round with
// neighbor-specific payloads, which does not fit the broadcast-payload Node
// interface used by the simulation engine; it therefore ships with its own
// round driver and byte accounting, and is compared against JWINS in the
// extension experiment (cmd/jwins-bench -exp ext-powergossip).
package powergossip

import (
	"fmt"
	"math"

	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/topology"
	"repro/internal/vec"
)

// Config parameterizes POWERGOSSIP.
type Config struct {
	// Rank of the approximation per power iteration (1 in the paper's main
	// experiments; this implementation supports rank 1).
	// PowerIterations repeats the (p, s) exchange to sharpen the
	// approximation (default 1).
	PowerIterations int
}

// Node is one POWERGOSSIP participant.
type Node struct {
	id     int
	model  nn.Trainable
	loader *datasets.Loader
	lr     float64
	steps  int

	dim        int
	rows, cols int
	params     []float64
	// q[j] is the warm-started right vector for the edge to neighbor j.
	q map[int][]float64
}

// New builds a POWERGOSSIP node. The flat parameter vector is reshaped to a
// near-square matrix for the power iteration.
func New(id int, model nn.Trainable, loader *datasets.Loader, lr float64, localSteps int) (*Node, error) {
	if lr <= 0 || localSteps <= 0 {
		return nil, fmt.Errorf("powergossip: invalid hyperparameters lr=%v steps=%d", lr, localSteps)
	}
	dim := model.ParamCount()
	rows := int(math.Sqrt(float64(dim)))
	if rows < 1 {
		rows = 1
	}
	cols := (dim + rows - 1) / rows
	return &Node{
		id:     id,
		model:  model,
		loader: loader,
		lr:     lr,
		steps:  localSteps,
		dim:    dim,
		rows:   rows,
		cols:   cols,
		params: make([]float64, dim),
		q:      make(map[int][]float64),
	}, nil
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// Model returns the trainable.
func (n *Node) Model() nn.Trainable { return n.model }

// LocalTrain runs the local SGD phase.
func (n *Node) LocalTrain() float64 {
	var total float64
	for s := 0; s < n.steps; s++ {
		x, y := n.loader.Next()
		total += n.model.TrainBatch(x, y, n.lr)
	}
	return total / float64(n.steps)
}

// matVec computes p = M q where M is params reshaped [rows, cols]
// (zero-padded at the tail).
func (n *Node) matVec(q []float64, p []float64) {
	for r := 0; r < n.rows; r++ {
		var s float64
		base := r * n.cols
		for c := 0; c < n.cols; c++ {
			idx := base + c
			if idx >= n.dim {
				break
			}
			s += n.params[idx] * q[c]
		}
		p[r] = s
	}
}

// matTVec computes s = Mᵀ p.
func (n *Node) matTVec(p []float64, s []float64) {
	for c := 0; c < n.cols; c++ {
		s[c] = 0
	}
	for r := 0; r < n.rows; r++ {
		base := r * n.cols
		pv := p[r]
		if pv == 0 {
			continue
		}
		for c := 0; c < n.cols; c++ {
			idx := base + c
			if idx >= n.dim {
				break
			}
			s[c] += n.params[idx] * pv
		}
	}
}

// edgeQ returns the warm-started q for an edge, initialized deterministically
// from the edge identity so both endpoints start identical.
func (n *Node) edgeQ(j int) []float64 {
	if q, ok := n.q[j]; ok {
		return q
	}
	lo, hi := n.id, j
	if lo > hi {
		lo, hi = hi, lo
	}
	rng := vec.NewRNG(uint64(lo)<<32 | uint64(hi) | 0x9e37)
	q := make([]float64, n.cols)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	normalize(q)
	n.q[j] = q
	return q
}

func normalize(v []float64) {
	n := vec.Norm2(v)
	if n == 0 {
		v[0] = 1
		return
	}
	vec.Scale(v, 1/n)
}

// RunRound executes one synchronous POWERGOSSIP round over the graph:
// local training everywhere, then per-edge power-iteration gossip. It
// returns the mean train loss and the total bytes exchanged (all nodes).
func RunRound(nodes []*Node, g *topology.Graph, cfg Config) (meanLoss float64, bytes int64) {
	iters := cfg.PowerIterations
	if iters <= 0 {
		iters = 1
	}
	for _, nd := range nodes {
		meanLoss += nd.LocalTrain() / float64(len(nodes))
		nd.model.CopyParams(nd.params)
	}
	// Per edge: exchange p (rows floats each way), then s (cols floats each
	// way); both endpoints apply ±(1/2) p̂ (s_i - s_j)ᵀ.
	for i := 0; i < g.N; i++ {
		for _, j := range g.Neighbors(i) {
			if j <= i {
				continue // undirected edge handled once
			}
			ni, nj := nodes[i], nodes[j]
			q := ni.edgeQ(j)
			qj := nj.edgeQ(i)
			copy(qj, q) // warm starts stay synchronized
			for it := 0; it < iters; it++ {
				pi := make([]float64, ni.rows)
				pj := make([]float64, nj.rows)
				ni.matVec(q, pi)
				nj.matVec(q, pj)
				bytes += int64(4 * (len(pi) + len(pj))) // p exchange (float32 wire)
				pHat := vec.Diff(pi, pj)
				normalize(pHat)
				si := make([]float64, ni.cols)
				sj := make([]float64, nj.cols)
				ni.matTVec(pHat, si)
				nj.matTVec(pHat, sj)
				bytes += int64(4 * (len(si) + len(sj))) // s exchange
				diff := vec.Diff(si, sj)                // (M_i - M_j)^T p̂
				// Move both endpoints half-way along the rank-1 estimate.
				applyRank1(ni, pHat, diff, -0.5)
				applyRank1(nj, pHat, diff, +0.5)
				ni.model.SetParams(ni.params)
				nj.model.SetParams(nj.params)
				// Warm start for the next iteration/round.
				copy(q, diff)
				normalize(q)
				copy(qj, q)
			}
		}
	}
	return meanLoss, bytes
}

// applyRank1 adds scale * p s^T to the node's parameter matrix.
func applyRank1(n *Node, p, s []float64, scale float64) {
	for r := 0; r < n.rows; r++ {
		pv := p[r] * scale
		if pv == 0 {
			continue
		}
		base := r * n.cols
		for c := 0; c < n.cols; c++ {
			idx := base + c
			if idx >= n.dim {
				break
			}
			n.params[idx] += pv * s[c]
		}
	}
}
