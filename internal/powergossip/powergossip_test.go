package powergossip

import (
	"math"
	"testing"

	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/topology"
	"repro/internal/vec"
)

type stubModel struct {
	params []float64
}

func (s *stubModel) ParamCount() int                                   { return len(s.params) }
func (s *stubModel) CopyParams(dst []float64)                          { copy(dst, s.params) }
func (s *stubModel) SetParams(src []float64)                           { copy(s.params, src) }
func (s *stubModel) TrainBatch(*nn.Tensor, []float64, float64) float64 { return 0 }
func (s *stubModel) EvalBatch(*nn.Tensor, []float64) (float64, int, int) {
	return 0, 0, 1
}

func testLoader(t *testing.T) *datasets.Loader {
	t.Helper()
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 2, Channels: 1, Height: 4, Width: 4, TrainPerClass: 4, TestPerClass: 2,
	}, vec.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return datasets.NewLoader(ds, []int{0, 1, 2, 3}, 2, vec.NewRNG(2))
}

func TestValidation(t *testing.T) {
	if _, err := New(0, &stubModel{params: make([]float64, 10)}, testLoader(t), 0, 1); err == nil {
		t.Fatal("zero lr accepted")
	}
	if _, err := New(0, &stubModel{params: make([]float64, 10)}, testLoader(t), 0.1, 0); err == nil {
		t.Fatal("zero steps accepted")
	}
}

// TestRank1ExactForRank1Difference: when the true model difference is rank 1,
// a single power iteration recovers it exactly, so two nodes meet in the
// middle after one round.
func TestRank1ExactForRank1Difference(t *testing.T) {
	const rows, cols = 10, 10
	const dim = rows * cols
	rng := vec.NewRNG(3)
	u := make([]float64, rows)
	v := make([]float64, cols)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	base := make([]float64, dim)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	// Node B = base; node A = base + u v^T (a rank-1 offset).
	pa := append([]float64(nil), base...)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pa[r*cols+c] += u[r] * v[c]
		}
	}
	a, err := New(0, &stubModel{params: pa}, testLoader(t), 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(1, &stubModel{params: append([]float64(nil), base...)}, testLoader(t), 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := topology.Ring(2)
	RunRound([]*Node{a, b}, g, Config{PowerIterations: 1})

	// After meeting half-way along the exact rank-1 difference, both should
	// hold base + u v^T / 2.
	wantMid := append([]float64(nil), base...)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			wantMid[r*cols+c] += u[r] * v[c] / 2
		}
	}
	gotA := make([]float64, dim)
	gotB := make([]float64, dim)
	a.Model().CopyParams(gotA)
	b.Model().CopyParams(gotB)
	if mse := vec.MSE(gotA, wantMid); mse > 1e-10 {
		t.Fatalf("node A not at midpoint: MSE %v", mse)
	}
	if mse := vec.MSE(gotB, wantMid); mse > 1e-10 {
		t.Fatalf("node B not at midpoint: MSE %v", mse)
	}
}

// TestConsensusContracts: with no training, repeated POWERGOSSIP rounds must
// shrink disagreement on a connected graph.
func TestConsensusContracts(t *testing.T) {
	rng := vec.NewRNG(4)
	const n = 6
	const dim = 64
	g, err := topology.Regular(n, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		params := make([]float64, dim)
		for k := range params {
			params[k] = rng.NormFloat64() * 2
		}
		nodes[i], err = New(i, &stubModel{params: params}, testLoader(t), 0.1, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	spread := func() float64 {
		var worst float64
		for k := 0; k < dim; k++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, nd := range nodes {
				p := make([]float64, dim)
				nd.Model().CopyParams(p)
				lo = math.Min(lo, p[k])
				hi = math.Max(hi, p[k])
			}
			worst = math.Max(worst, hi-lo)
		}
		return worst
	}
	before := spread()
	var bytes int64
	for round := 0; round < 150; round++ {
		_, b := RunRound(nodes, g, Config{PowerIterations: 1})
		bytes += b
	}
	after := spread()
	if after > before/3 {
		t.Fatalf("POWERGOSSIP disagreement did not contract: %v -> %v", before, after)
	}
	if bytes <= 0 {
		t.Fatal("no bytes accounted")
	}
	// Low-rank sketches must be far cheaper than full models:
	// full sharing would cost 2 * dim floats per edge per round.
	fullBytes := int64(150) * int64(g.NumEdges()) * 2 * 4 * int64(dim)
	if bytes >= fullBytes {
		t.Fatalf("POWERGOSSIP used %d bytes, full sharing would use %d", bytes, fullBytes)
	}
}

// TestLearnsToy: POWERGOSSIP trains a small classifier collaboratively.
func TestLearnsToy(t *testing.T) {
	rng := vec.NewRNG(5)
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Channels: 1, Height: 8, Width: 8, TrainPerClass: 40, TestPerClass: 10,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	parts, err := datasets.PartitionShards(ds, n, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.Regular(n, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	template := nn.NewMLP(64, 24, 4, rng.Split())
	initial := make([]float64, template.ParamCount())
	template.CopyParams(initial)
	nodes := make([]*Node, n)
	for i := range nodes {
		nodeRNG := rng.Split()
		model := nn.NewMLP(64, 24, 4, nodeRNG)
		model.SetParams(initial)
		loader := datasets.NewLoader(ds, parts[i], 8, nodeRNG.Split())
		nodes[i], err = New(i, model, loader, 0.05, 2)
		if err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 40; round++ {
		RunRound(nodes, g, Config{PowerIterations: 2})
	}
	var acc float64
	for _, nd := range nodes {
		_, a := datasets.Evaluate(ds, nd.Model(), 16, 0)
		acc += a / n
	}
	if acc < 0.5 {
		t.Fatalf("POWERGOSSIP accuracy %.2f, want > 0.5 (chance 0.25)", acc)
	}
}
