// Package transport moves encoded model payloads between decentralized
// learning nodes. Experiments use the in-memory mesh (deterministic, metered);
// the TCP mesh carries the identical frames over real sockets and backs the
// tcpcluster example, standing in for the paper's ZeroMQ layer.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
)

// Message is one point-to-point payload delivery.
type Message struct {
	From, To int
	Round    int
	Payload  []byte

	// SentAt and ArriveAt are simulated-clock timestamps (seconds) stamped by
	// the engines: the synchronous engine stamps both with the round clock,
	// the event-driven engine stamps the sender's transmit-start time and the
	// scheduled delivery time (latency + uplink serialization). They are
	// simulation metadata, not wire bytes — the TCP mesh's frame format (and
	// therefore FrameOverhead and all byte accounting) is unchanged, so
	// timestamps do not survive a socket hop.
	SentAt, ArriveAt float64
}

// FrameOverhead is the per-message framing cost in bytes (length + from +
// round header), identical for both meshes so byte accounting matches.
const FrameOverhead = 12

// TimestampOverhead is the extra per-frame cost of the timestamped frame
// extension (see TCP.EnableTimestamps): the sender's SentAt as 8 bytes. It
// is measurement instrumentation for the cluster runner and deliberately NOT
// part of FrameOverhead — the byte ledger and the paper's cost model charge
// the plain frame, so sim and cluster byte accounting stay comparable.
const TimestampOverhead = 8

// Mesh delivers messages between nodes 0..N-1.
type Mesh interface {
	// Send enqueues msg for delivery. It must not retain msg.Payload.
	Send(msg Message) error
	// Recv blocks until a message for node `to` arrives.
	Recv(to int) (Message, error)
	// SentBytes returns the cumulative bytes (payload + framing) sent by node.
	SentBytes(node int) int64
	// Close releases resources; pending Recv calls return errors.
	Close() error
}

// ErrClosed is returned by operations on a closed mesh.
var ErrClosed = errors.New("transport: mesh closed")

// InMemory is a channel-based mesh for single-process simulations.
type InMemory struct {
	n      int
	queues []chan Message
	sent   []atomic.Int64
	closed atomic.Bool
	once   sync.Once
	// mu serializes Send against Close: senders hold the read side so Close
	// cannot close a queue between a sender's closed-check and its channel
	// send (a send on a closed channel panics).
	mu sync.RWMutex
}

var _ Mesh = (*InMemory)(nil)

// NewInMemory builds a mesh for n nodes. Queues are buffered so that a full
// synchronous round of sends (every node to every neighbor) never blocks.
// Event-driven schedules can hold more messages in flight (sends happen at
// broadcast time, receives only at simulated delivery time); size those
// meshes explicitly with NewInMemoryBuffered.
func NewInMemory(n int) *InMemory {
	return NewInMemoryBuffered(n, 4*n+16)
}

// NewInMemoryBuffered builds a mesh whose per-node queues hold perQueue
// undelivered messages before Send reports a full queue.
func NewInMemoryBuffered(n, perQueue int) *InMemory {
	m := &InMemory{n: n, queues: make([]chan Message, n), sent: make([]atomic.Int64, n)}
	for i := range m.queues {
		m.queues[i] = make(chan Message, perQueue)
	}
	return m
}

// Send implements Mesh.
func (m *InMemory) Send(msg Message) error {
	if msg.To < 0 || msg.To >= m.n || msg.From < 0 || msg.From >= m.n {
		return fmt.Errorf("transport: node id out of range in %d->%d", msg.From, msg.To)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed.Load() {
		return ErrClosed
	}
	cp := make([]byte, len(msg.Payload))
	copy(cp, msg.Payload)
	msg.Payload = cp
	m.sent[msg.From].Add(int64(len(cp) + FrameOverhead))
	select {
	case m.queues[msg.To] <- msg:
		return nil
	default:
		return fmt.Errorf("transport: queue for node %d full", msg.To)
	}
}

// Recv implements Mesh.
func (m *InMemory) Recv(to int) (Message, error) {
	if to < 0 || to >= m.n {
		return Message{}, fmt.Errorf("transport: node id %d out of range", to)
	}
	msg, ok := <-m.queues[to]
	if !ok {
		return Message{}, ErrClosed
	}
	return msg, nil
}

// SentBytes implements Mesh.
func (m *InMemory) SentBytes(node int) int64 { return m.sent[node].Load() }

// Close implements Mesh.
func (m *InMemory) Close() error {
	m.once.Do(func() {
		m.mu.Lock()
		m.closed.Store(true)
		for _, q := range m.queues {
			close(q)
		}
		m.mu.Unlock()
	})
	return nil
}

// TCP is a socket mesh: every node runs a listener and dials persistent
// connections to peers on demand. Frames are length-prefixed:
// [u32 payloadLen][u32 from][u32 round][payload] — or, with timestamps
// enabled, [u32 payloadLen][u32 from][u32 round][f64 sentAt][payload].
type TCP struct {
	id    int
	n     int
	addrs []string
	ln    net.Listener
	// ts enables the timestamped frame extension. All endpoints of a mesh
	// must agree (the frame layout changes); set it before any traffic.
	// Atomic because the accept/read goroutines are already running when
	// EnableTimestamps is called after NewTCP.
	ts atomic.Bool

	mu       sync.Mutex
	conns    map[int]net.Conn
	accepted map[net.Conn]struct{}
	inbox    chan Message
	done     chan struct{}
	sent     atomic.Int64
	closed   atomic.Bool
	wg       sync.WaitGroup
	// inboxMu serializes loopback Sends against Close's close(inbox): the
	// self-delivery path is not covered by wg (unlike readLoops), so without
	// it a concurrent Close could close the channel mid-send and panic.
	inboxMu sync.RWMutex
}

var _ Mesh = (*TCP)(nil)

// NewTCP starts a TCP mesh endpoint for node id. addrs maps every node to a
// host:port; addrs[id] is listened on. Use "127.0.0.1:0"-style addresses and
// Addr() to discover assigned ports in tests.
func NewTCP(id int, addrs []string) (*TCP, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("transport: node id %d out of range for %d addrs", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[id], err)
	}
	t := &TCP{
		id:       id,
		n:        len(addrs),
		addrs:    append([]string(nil), addrs...),
		ln:       ln,
		conns:    make(map[int]net.Conn),
		accepted: make(map[net.Conn]struct{}),
		inbox:    make(chan Message, 4*len(addrs)+16),
		done:     make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with port 0).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// EnableTimestamps switches the endpoint to timestamped frames: Send writes
// Message.SentAt after the header (TimestampOverhead extra wire bytes,
// reflected in SentBytes but not in the cost model's FrameOverhead), and
// received messages carry the sender's stamp. Every endpoint of the mesh
// must enable it, before any traffic — the cluster runner's handshake does.
// The receiver's clock stamps ArriveAt at the consumer, not here.
func (t *TCP) EnableTimestamps() { t.ts.Store(true) }

// SetPeerAddr updates the dialing address for a peer (used after peers bind
// ephemeral ports).
func (t *TCP) SetPeerAddr(node int, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[node] = addr
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed.Load() {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	var header [FrameOverhead]byte
	var stamp [TimestampOverhead]byte
	for {
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			return
		}
		payloadLen := binary.LittleEndian.Uint32(header[0:])
		from := int(binary.LittleEndian.Uint32(header[4:]))
		round := int(binary.LittleEndian.Uint32(header[8:]))
		if payloadLen > 1<<30 {
			return // corrupt frame; drop connection
		}
		sentAt := 0.0
		if t.ts.Load() {
			if _, err := io.ReadFull(conn, stamp[:]); err != nil {
				return
			}
			sentAt = math.Float64frombits(binary.LittleEndian.Uint64(stamp[:]))
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		select {
		case t.inbox <- Message{From: from, To: t.id, Round: round, Payload: payload, SentAt: sentAt}:
		case <-t.done:
			return
		}
	}
}

func (t *TCP) dial(to int) (net.Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[to]; ok {
		return c, nil
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("transport: dial node %d (%s): %w", to, t.addrs[to], err)
	}
	t.conns[to] = c
	return c, nil
}

// Send implements Mesh.
func (t *TCP) Send(msg Message) error {
	if t.closed.Load() {
		return ErrClosed
	}
	if msg.To == t.id {
		cp := make([]byte, len(msg.Payload))
		copy(cp, msg.Payload)
		msg.Payload = cp
		t.inboxMu.RLock()
		defer t.inboxMu.RUnlock()
		if t.closed.Load() {
			return ErrClosed
		}
		// Charge what the frame would cost on the wire, so loopback and
		// remote peers meter identically (including the timestamp extension).
		frameLen := len(cp) + FrameOverhead
		if t.ts.Load() {
			frameLen += TimestampOverhead
		}
		t.sent.Add(int64(frameLen))
		select {
		case t.inbox <- msg:
			return nil
		case <-t.done:
			return ErrClosed
		}
	}
	conn, err := t.dial(msg.To)
	if err != nil {
		return err
	}
	ts := t.ts.Load()
	headerLen := FrameOverhead
	if ts {
		headerLen += TimestampOverhead
	}
	frame := make([]byte, headerLen+len(msg.Payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(msg.Payload)))
	binary.LittleEndian.PutUint32(frame[4:], uint32(msg.From))
	binary.LittleEndian.PutUint32(frame[8:], uint32(msg.Round))
	if ts {
		binary.LittleEndian.PutUint64(frame[FrameOverhead:], math.Float64bits(msg.SentAt))
	}
	copy(frame[headerLen:], msg.Payload)
	t.mu.Lock()
	_, err = conn.Write(frame)
	t.mu.Unlock()
	if err != nil {
		return fmt.Errorf("transport: write to node %d: %w", msg.To, err)
	}
	t.sent.Add(int64(len(frame)))
	return nil
}

// Recv implements Mesh. Only the owning node's id is valid.
func (t *TCP) Recv(to int) (Message, error) {
	if to != t.id {
		return Message{}, fmt.Errorf("transport: TCP endpoint %d cannot receive for node %d", t.id, to)
	}
	msg, ok := <-t.inbox
	if !ok {
		return Message{}, ErrClosed
	}
	return msg, nil
}

// SentBytes implements Mesh. Only the owning node's counter is tracked.
func (t *TCP) SentBytes(node int) int64 {
	if node != t.id {
		return 0
	}
	return t.sent.Load()
}

// Close implements Mesh.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.done)
	err := t.ln.Close()
	t.mu.Lock()
	for _, c := range t.conns {
		c.Close()
	}
	for c := range t.accepted {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	t.inboxMu.Lock()
	close(t.inbox)
	t.inboxMu.Unlock()
	return err
}
