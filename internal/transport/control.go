// control.go is the cluster runner's control plane: a minimal JSON-message
// stream over TCP used for the coordinator/worker handshake (registration,
// id assignment, address exchange, start signal, result reports). The data
// plane — model payloads — stays on the framed TCP mesh; control traffic is
// low-rate and favours debuggability over compactness.
package transport

import (
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// ControlConn is one JSON-message stream. Messages are arbitrary JSON
// values; the application defines the schema (the stream format itself is
// self-framing).
type ControlConn struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// DialControl connects to a control listener.
func DialControl(addr string, timeout time.Duration) (*ControlConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial control %s: %w", addr, err)
	}
	return newControlConn(conn), nil
}

func newControlConn(conn net.Conn) *ControlConn {
	return &ControlConn{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
}

// Send writes one JSON message.
func (c *ControlConn) Send(v any) error {
	if err := c.enc.Encode(v); err != nil {
		return fmt.Errorf("transport: control send: %w", err)
	}
	return nil
}

// Recv reads the next JSON message into v.
func (c *ControlConn) Recv(v any) error {
	if err := c.dec.Decode(v); err != nil {
		return fmt.Errorf("transport: control recv: %w", err)
	}
	return nil
}

// SetDeadline bounds both reads and writes; use it to keep a wedged peer
// from hanging a cluster run forever.
func (c *ControlConn) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// RemoteAddr reports the peer's address (for log lines).
func (c *ControlConn) RemoteAddr() string { return c.conn.RemoteAddr().String() }

// Close closes the stream.
func (c *ControlConn) Close() error { return c.conn.Close() }

// ControlServer accepts control connections.
type ControlServer struct {
	ln net.Listener
}

// ListenControl starts a control listener ("host:0" picks a port; see Addr).
func ListenControl(addr string) (*ControlServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen control %s: %w", addr, err)
	}
	return &ControlServer{ln: ln}, nil
}

// Addr returns the bound address.
func (s *ControlServer) Addr() string { return s.ln.Addr().String() }

// Accept waits for the next control connection.
func (s *ControlServer) Accept() (*ControlConn, error) {
	conn, err := s.ln.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: control accept: %w", err)
	}
	return newControlConn(conn), nil
}

// Close stops the listener. Accepted connections stay open.
func (s *ControlServer) Close() error { return s.ln.Close() }
