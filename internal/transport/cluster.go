package transport

import (
	"errors"
	"fmt"
)

// TCPCluster bundles one TCP endpoint per node on the loopback interface and
// exposes them as a single Mesh, so the simulation engine can run over real
// sockets instead of channels (integration testing the wire path end to end).
type TCPCluster struct {
	endpoints []*TCP
}

var _ Mesh = (*TCPCluster)(nil)

// NewTCPCluster starts n loopback endpoints on ephemeral ports and exchanges
// their addresses.
func NewTCPCluster(n int) (*TCPCluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: cluster needs at least one node, got %d", n)
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	c := &TCPCluster{endpoints: make([]*TCP, n)}
	for i := range c.endpoints {
		ep, err := NewTCP(i, addrs)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.endpoints[i] = ep
	}
	for _, ep := range c.endpoints {
		for j, peer := range c.endpoints {
			ep.SetPeerAddr(j, peer.Addr())
		}
	}
	return c, nil
}

// Send implements Mesh by routing through the sender's endpoint.
func (c *TCPCluster) Send(msg Message) error {
	if msg.From < 0 || msg.From >= len(c.endpoints) {
		return fmt.Errorf("transport: sender %d out of range", msg.From)
	}
	return c.endpoints[msg.From].Send(msg)
}

// Recv implements Mesh.
func (c *TCPCluster) Recv(to int) (Message, error) {
	if to < 0 || to >= len(c.endpoints) {
		return Message{}, fmt.Errorf("transport: receiver %d out of range", to)
	}
	return c.endpoints[to].Recv(to)
}

// SentBytes implements Mesh.
func (c *TCPCluster) SentBytes(node int) int64 {
	if node < 0 || node >= len(c.endpoints) {
		return 0
	}
	return c.endpoints[node].SentBytes(node)
}

// Close implements Mesh.
func (c *TCPCluster) Close() error {
	var errs []error
	for _, ep := range c.endpoints {
		if ep != nil {
			if err := ep.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
