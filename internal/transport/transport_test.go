package transport

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestInMemoryRoundTrip(t *testing.T) {
	m := NewInMemory(3)
	defer m.Close()
	if err := m.Send(Message{From: 0, To: 2, Round: 7, Payload: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	msg, err := m.Recv(2)
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 0 || msg.Round != 7 || len(msg.Payload) != 3 {
		t.Fatalf("got %+v", msg)
	}
}

func TestInMemoryDoesNotAliasPayload(t *testing.T) {
	m := NewInMemory(2)
	defer m.Close()
	buf := []byte{9}
	if err := m.Send(Message{From: 0, To: 1, Payload: buf}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 0
	msg, err := m.Recv(1)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Payload[0] != 9 {
		t.Fatal("payload aliased sender buffer")
	}
}

func TestInMemoryMetering(t *testing.T) {
	m := NewInMemory(2)
	defer m.Close()
	payload := make([]byte, 100)
	if err := m.Send(Message{From: 0, To: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if got := m.SentBytes(0); got != 100+FrameOverhead {
		t.Fatalf("SentBytes = %d", got)
	}
	if got := m.SentBytes(1); got != 0 {
		t.Fatalf("receiver counted bytes: %d", got)
	}
}

func TestInMemoryValidation(t *testing.T) {
	m := NewInMemory(2)
	defer m.Close()
	if err := m.Send(Message{From: 0, To: 5}); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := m.Recv(-1); err == nil {
		t.Fatal("expected range error")
	}
}

func TestInMemoryClose(t *testing.T) {
	m := NewInMemory(2)
	done := make(chan error, 1)
	go func() {
		_, err := m.Recv(1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	m.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("Recv after close: %v", err)
	}
	if err := m.Send(Message{From: 0, To: 1}); err != ErrClosed {
		t.Fatalf("Send after close: %v", err)
	}
	// Double close is safe.
	m.Close()
}

func TestInMemoryConcurrent(t *testing.T) {
	const n = 8
	const perNode = 20
	m := NewInMemory(n)
	defer m.Close()
	var wg sync.WaitGroup
	for from := 0; from < n; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for i := 0; i < perNode; i++ {
				to := (from + 1 + i) % n
				if to == from {
					to = (to + 1) % n
				}
				if err := m.Send(Message{From: from, To: to, Round: i, Payload: []byte{byte(from)}}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(from)
	}
	wg.Wait()
	// All messages delivered, none lost.
	total := 0
	for to := 0; to < n; to++ {
	drain:
		for {
			select {
			case msg := <-func() chan Message { return m.queues[to] }():
				_ = msg
				total++
			default:
				break drain
			}
		}
	}
	if total != n*perNode {
		t.Fatalf("delivered %d of %d", total, n*perNode)
	}
}

func newTCPCluster(t *testing.T, n int) []*TCP {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	nodes := make([]*TCP, n)
	for i := range nodes {
		node, err := NewTCP(i, addrs)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
	}
	// Exchange bound addresses.
	for i, ni := range nodes {
		for j, nj := range nodes {
			ni.SetPeerAddr(j, nj.Addr())
		}
		_ = i
	}
	return nodes
}

func TestTCPRoundTrip(t *testing.T) {
	nodes := newTCPCluster(t, 3)
	payload := []byte("hello decentralized world")
	if err := nodes[0].Send(Message{From: 0, To: 2, Round: 5, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	msg, err := nodes[2].Recv(2)
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 0 || msg.Round != 5 || string(msg.Payload) != string(payload) {
		t.Fatalf("got %+v", msg)
	}
	want := int64(len(payload) + FrameOverhead)
	if got := nodes[0].SentBytes(0); got != want {
		t.Fatalf("SentBytes = %d, want %d", got, want)
	}
}

func TestTCPSelfSend(t *testing.T) {
	nodes := newTCPCluster(t, 2)
	if err := nodes[1].Send(Message{From: 1, To: 1, Round: 0, Payload: []byte{42}}); err != nil {
		t.Fatal(err)
	}
	msg, err := nodes[1].Recv(1)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Payload[0] != 42 {
		t.Fatalf("got %+v", msg)
	}
}

func TestTCPManyMessages(t *testing.T) {
	nodes := newTCPCluster(t, 4)
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for from := range nodes {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				to := (from + 1) % len(nodes)
				payload := []byte(fmt.Sprintf("msg-%d-%d", from, r))
				if err := nodes[from].Send(Message{From: from, To: to, Round: r, Payload: payload}); err != nil {
					errs <- err
					return
				}
			}
		}(from)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for to := range nodes {
		for r := 0; r < rounds; r++ {
			msg, err := nodes[to].Recv(to)
			if err != nil {
				t.Fatal(err)
			}
			if msg.To != to {
				t.Fatalf("misrouted: %+v", msg)
			}
		}
	}
}

func TestTCPRecvWrongNode(t *testing.T) {
	nodes := newTCPCluster(t, 2)
	if _, err := nodes[0].Recv(1); err == nil {
		t.Fatal("expected error receiving for foreign node")
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	nodes := newTCPCluster(t, 2)
	done := make(chan error, 1)
	go func() {
		_, err := nodes[0].Recv(0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	nodes[0].Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Recv after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

// TestInMemorySendCloseRace hammers Send from many goroutines while Close
// fires concurrently. Before Send/Close were serialized, this panicked with
// "send on closed channel" when Close won the race between a sender's
// closed-check and its channel send.
func TestInMemorySendCloseRace(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		m := NewInMemory(4)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; ; k++ {
					err := m.Send(Message{From: g % 4, To: (g + 1) % 4, Payload: []byte{1}})
					if err == ErrClosed {
						return
					}
					if err != nil && k > 1024 {
						return // queue full near close; good enough
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			runtime.Gosched()
			m.Close()
		}()
		wg.Wait()
	}
}

// TestTCPSelfSendCloseRace: the loopback fast path bypasses the socket (and
// the reader WaitGroup), so it needs its own serialization against Close.
func TestTCPSelfSendCloseRace(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		ep, err := NewTCP(0, []string{"127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if err := ep.Send(Message{From: 0, To: 0, Payload: []byte{2}}); err != nil {
						return
					}
					// Drain so the inbox never fills.
					if _, err := ep.Recv(0); err != nil {
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			runtime.Gosched()
			ep.Close()
		}()
		wg.Wait()
	}
}

// TestTCPSetPeerAddrConcurrent: peer-addr updates must be safe against
// concurrent dialing sends.
func TestTCPSetPeerAddrConcurrent(t *testing.T) {
	a, err := NewTCP(0, []string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(1, []string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Resolve the real address up front so every dial succeeds; the race
	// under test is concurrent map updates against dialing sends.
	a.SetPeerAddr(1, b.Addr())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				a.SetPeerAddr(1, b.Addr())
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 50; k++ {
			if err := a.Send(Message{From: 0, To: 1, Payload: []byte{3}}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if _, err := b.Recv(1); err != nil {
		t.Fatalf("no message survived concurrent addr updates: %v", err)
	}
}

// TestMessageTimestampsSurviveInMemory: the simulated-clock annotations ride
// through the in-memory mesh (the TCP wire format intentionally drops them).
func TestMessageTimestampsSurviveInMemory(t *testing.T) {
	m := NewInMemory(2)
	defer m.Close()
	if err := m.Send(Message{From: 0, To: 1, Round: 3, Payload: []byte{9}, SentAt: 1.5, ArriveAt: 2.25}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Recv(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.SentAt != 1.5 || got.ArriveAt != 2.25 {
		t.Fatalf("timestamps lost: %+v", got)
	}
}

// TestTCPTimestampedFrames: with the frame extension enabled on both ends,
// the sender's SentAt crosses the socket, the wire cost grows by exactly
// TimestampOverhead, and payloads stay intact.
func TestTCPTimestampedFrames(t *testing.T) {
	nodes := newTCPCluster(t, 2)
	for _, n := range nodes {
		n.EnableTimestamps()
	}
	payload := []byte("stamped")
	if err := nodes[0].Send(Message{From: 0, To: 1, Round: 3, Payload: payload, SentAt: 1.25}); err != nil {
		t.Fatal(err)
	}
	msg, err := nodes[1].Recv(1)
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 0 || msg.Round != 3 || string(msg.Payload) != string(payload) {
		t.Fatalf("got %+v", msg)
	}
	if msg.SentAt != 1.25 {
		t.Fatalf("SentAt = %v, want 1.25", msg.SentAt)
	}
	want := int64(len(payload) + FrameOverhead + TimestampOverhead)
	if got := nodes[0].SentBytes(0); got != want {
		t.Fatalf("SentBytes = %d, want %d", got, want)
	}
}

// TestControlRoundTrip: the JSON control plane delivers typed messages both
// ways and honours deadlines.
func TestControlRoundTrip(t *testing.T) {
	srv, err := ListenControl("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	type hello struct {
		Type string
		N    int
	}
	done := make(chan error, 1)
	go func() {
		conn, err := srv.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		var h hello
		if err := conn.Recv(&h); err != nil {
			done <- err
			return
		}
		if h.Type != "hello" || h.N != 7 {
			done <- fmt.Errorf("server got %+v", h)
			return
		}
		done <- conn.Send(hello{Type: "ack", N: h.N + 1})
	}()

	cli, err := DialControl(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := cli.Send(hello{Type: "hello", N: 7}); err != nil {
		t.Fatal(err)
	}
	var ack hello
	if err := cli.Recv(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Type != "ack" || ack.N != 8 {
		t.Fatalf("client got %+v", ack)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
