package datasets

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vec"
)

// corpus is a public-domain Shakespeare excerpt (sonnets and famous
// soliloquies). The LEAF Shakespeare benchmark assigns each speaking role to
// a client; we approximate that by giving each client a contiguous region of
// the corpus, so client vocabularies and styles differ, which is what makes
// the split non-IID.
const corpus = `shall i compare thee to a summers day
thou art more lovely and more temperate
rough winds do shake the darling buds of may
and summers lease hath all too short a date
sometime too hot the eye of heaven shines
and often is his gold complexion dimmd
and every fair from fair sometime declines
by chance or natures changing course untrimmd
but thy eternal summer shall not fade
nor lose possession of that fair thou owest
nor shall death brag thou wanderst in his shade
when in eternal lines to time thou growest
so long as men can breathe or eyes can see
so long lives this and this gives life to thee
to be or not to be that is the question
whether tis nobler in the mind to suffer
the slings and arrows of outrageous fortune
or to take arms against a sea of troubles
and by opposing end them to die to sleep
no more and by a sleep to say we end
the heartache and the thousand natural shocks
that flesh is heir to tis a consummation
devoutly to be wishd to die to sleep
to sleep perchance to dream ay theres the rub
for in that sleep of death what dreams may come
when we have shuffled off this mortal coil
must give us pause theres the respect
that makes calamity of so long life
tomorrow and tomorrow and tomorrow
creeps in this petty pace from day to day
to the last syllable of recorded time
and all our yesterdays have lighted fools
the way to dusty death out out brief candle
lifes but a walking shadow a poor player
that struts and frets his hour upon the stage
and then is heard no more it is a tale
told by an idiot full of sound and fury
signifying nothing
now is the winter of our discontent
made glorious summer by this sun of york
and all the clouds that lourd upon our house
in the deep bosom of the ocean buried
now are our brows bound with victorious wreaths
our bruised arms hung up for monuments
our stern alarums changed to merry meetings
our dreadful marches to delightful measures
friends romans countrymen lend me your ears
i come to bury caesar not to praise him
the evil that men do lives after them
the good is oft interred with their bones
so let it be with caesar the noble brutus
hath told you caesar was ambitious
if it were so it was a grievous fault
and grievously hath caesar answerd it
let me not to the marriage of true minds
admit impediments love is not love
which alters when it alteration finds
or bends with the remover to remove
o no it is an ever fixed mark
that looks on tempests and is never shaken
it is the star to every wandering bark
whose worths unknown although his height be taken
loves not times fool though rosy lips and cheeks
within his bending sickles compass come
love alters not with his brief hours and weeks
but bears it out even to the edge of doom
if this be error and upon me proved
i never writ nor no man ever loved
`

// TextConfig describes the synthetic Shakespeare next-character task.
type TextConfig struct {
	Name    string
	SeqLen  int // window length T (default 32)
	Clients int // number of clients (default 8)
	// WindowsPerClient is the number of training windows per client
	// (default 64).
	WindowsPerClient int
	// TestWindows is the number of test windows (default Clients*8).
	TestWindows int
}

func (c *TextConfig) setDefaults() {
	if c.SeqLen <= 1 {
		c.SeqLen = 32
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.WindowsPerClient <= 0 {
		c.WindowsPerClient = 64
	}
	if c.TestWindows <= 0 {
		c.TestWindows = c.Clients * 8
	}
	if c.Name == "" {
		c.Name = "shakespeare"
	}
}

// ShakespeareLike generates a character-level next-character prediction
// dataset from the embedded corpus. Each sample is a window of SeqLen
// character ids with per-position next-character targets.
func ShakespeareLike(cfg TextConfig, rng *vec.RNG) (*Dataset, error) {
	cfg.setDefaults()
	text := strings.TrimSpace(corpus)
	// Character vocabulary, deterministic ordering.
	seen := map[rune]bool{}
	for _, r := range text {
		seen[r] = true
	}
	var alphabet []rune
	for r := range seen {
		alphabet = append(alphabet, r)
	}
	sort.Slice(alphabet, func(i, j int) bool { return alphabet[i] < alphabet[j] })
	id := make(map[rune]int, len(alphabet))
	for i, r := range alphabet {
		id[r] = i
	}
	ids := make([]int, 0, len(text))
	for _, r := range text {
		ids = append(ids, id[r])
	}
	if len(ids) < cfg.SeqLen+2 {
		return nil, fmt.Errorf("datasets: corpus shorter than one window")
	}

	ds := &Dataset{
		Name:       cfg.Name,
		Task:       TaskSequence,
		InputShape: []int{cfg.SeqLen},
		Classes:    len(alphabet),
		Clients:    cfg.Clients,
	}

	// Window starting at position p (wrapping around the corpus).
	window := func(p int) Sample {
		x := make([]float64, cfg.SeqLen)
		y := make([]float64, cfg.SeqLen)
		for s := 0; s < cfg.SeqLen; s++ {
			x[s] = float64(ids[(p+s)%len(ids)])
			y[s] = float64(ids[(p+s+1)%len(ids)])
		}
		return Sample{X: x, Y: y}
	}

	// Each client owns a contiguous region; windows are drawn inside it.
	region := len(ids) / cfg.Clients
	if region < 2 {
		return nil, fmt.Errorf("datasets: too many clients (%d) for corpus of %d chars", cfg.Clients, len(ids))
	}
	for client := 0; client < cfg.Clients; client++ {
		base := client * region
		for wi := 0; wi < cfg.WindowsPerClient; wi++ {
			p := base + rng.Intn(region)
			ds.Train = append(ds.Train, window(p))
			ds.TrainClient = append(ds.TrainClient, client)
		}
	}
	for wi := 0; wi < cfg.TestWindows; wi++ {
		ds.Test = append(ds.Test, window(rng.Intn(len(ids))))
	}
	return ds, nil
}
