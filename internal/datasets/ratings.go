package datasets

import (
	"fmt"

	"repro/internal/vec"
)

// RatingConfig describes the synthetic MovieLens-like recommendation task:
// a low-rank ground-truth preference matrix plus noise, ratings clipped to
// the 1-5 star range, partitioned by user (the paper's client unit).
type RatingConfig struct {
	Name         string
	Users, Items int
	Rank         int     // ground-truth latent rank (default 4)
	TrainPerUser int     // ratings per user for training (default 20)
	TestPerUser  int     // ratings per user for testing (default 5)
	NoiseSD      float64 // rating noise (default 0.1)
}

func (c *RatingConfig) setDefaults() error {
	if c.Users <= 0 || c.Items <= 0 {
		return fmt.Errorf("datasets: invalid rating config %+v", *c)
	}
	if c.Rank <= 0 {
		c.Rank = 4
	}
	if c.TrainPerUser <= 0 {
		c.TrainPerUser = 20
	}
	if c.TestPerUser <= 0 {
		c.TestPerUser = 5
	}
	if c.NoiseSD == 0 {
		c.NoiseSD = 0.1
	}
	if c.Name == "" {
		c.Name = "movielens"
	}
	if c.TrainPerUser+c.TestPerUser > c.Items {
		return fmt.Errorf("datasets: %d ratings per user exceed %d items", c.TrainPerUser+c.TestPerUser, c.Items)
	}
	return nil
}

// MovieLensLike generates a recommendation dataset per cfg. Sample X is
// [user, item]; Y is the rating. Each user is a client.
func MovieLensLike(cfg RatingConfig, rng *vec.RNG) (*Dataset, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	// Ground-truth latent factors with per-user and per-item bias.
	uf := make([]float64, cfg.Users*cfg.Rank)
	vf := make([]float64, cfg.Items*cfg.Rank)
	ub := make([]float64, cfg.Users)
	ib := make([]float64, cfg.Items)
	for i := range uf {
		uf[i] = rng.NormFloat64() * 0.6
	}
	for i := range vf {
		vf[i] = rng.NormFloat64() * 0.6
	}
	for i := range ub {
		ub[i] = rng.NormFloat64() * 0.3
	}
	for i := range ib {
		ib[i] = rng.NormFloat64() * 0.3
	}
	rate := func(u, it int) float64 {
		var dot float64
		for k := 0; k < cfg.Rank; k++ {
			dot += uf[u*cfg.Rank+k] * vf[it*cfg.Rank+k]
		}
		r := 3 + dot + ub[u] + ib[it] + cfg.NoiseSD*rng.NormFloat64()
		if r < 1 {
			r = 1
		}
		if r > 5 {
			r = 5
		}
		return r
	}

	ds := &Dataset{
		Name:       cfg.Name,
		Task:       TaskRating,
		InputShape: []int{2},
		Classes:    0,
		Clients:    cfg.Users,
	}
	perUser := cfg.TrainPerUser + cfg.TestPerUser
	for u := 0; u < cfg.Users; u++ {
		items := rng.SampleWithoutReplacement(cfg.Items, perUser)
		rng.ShuffleInts(items)
		for i, it := range items {
			s := Sample{X: []float64{float64(u), float64(it)}, Y: []float64{rate(u, it)}}
			if i < cfg.TrainPerUser {
				ds.Train = append(ds.Train, s)
				ds.TrainClient = append(ds.TrainClient, u)
			} else {
				ds.Test = append(ds.Test, s)
			}
		}
	}
	return ds, nil
}
