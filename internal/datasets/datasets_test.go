package datasets

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/vec"
)

func testImages(t *testing.T, clients int) *Dataset {
	t.Helper()
	ds, err := SyntheticImages(ImageConfig{
		Classes: 4, Channels: 1, Height: 8, Width: 8,
		TrainPerClass: 20, TestPerClass: 5, Clients: clients,
	}, vec.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSyntheticImagesShape(t *testing.T) {
	ds := testImages(t, 0)
	if len(ds.Train) != 80 || len(ds.Test) != 20 {
		t.Fatalf("sizes: %d train, %d test", len(ds.Train), len(ds.Test))
	}
	if len(ds.Train[0].X) != 64 || len(ds.Train[0].Y) != 1 {
		t.Fatalf("sample shape wrong")
	}
	counts := make([]int, 4)
	for i := range ds.Train {
		counts[ds.Label(i)]++
	}
	for c, n := range counts {
		if n != 20 {
			t.Fatalf("class %d has %d train samples", c, n)
		}
	}
}

func TestSyntheticImagesLearnable(t *testing.T) {
	// A linear classifier should separate smooth class templates easily.
	ds := testImages(t, 0)
	rng := vec.NewRNG(2)
	clf := nn.NewMLP(64, 16, 4, rng)
	idx := make([]int, len(ds.Train))
	for i := range idx {
		idx[i] = i
	}
	loader := NewLoader(ds, idx, 16, rng)
	for step := 0; step < 300; step++ {
		x, y := loader.Next()
		clf.TrainBatch(x, y, 0.1)
	}
	_, acc := Evaluate(ds, clf, 16, 0)
	if acc < 0.8 {
		t.Fatalf("synthetic images not learnable: accuracy %.2f", acc)
	}
}

func TestPartitionShardsNonIID(t *testing.T) {
	ds := testImages(t, 0)
	rng := vec.NewRNG(3)
	parts, err := PartitionShards(ds, 8, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 8 {
		t.Fatalf("parts: %d", len(parts))
	}
	seen := map[int]bool{}
	for node, idx := range parts {
		if len(idx) == 0 {
			t.Fatalf("node %d empty", node)
		}
		classes := map[int]bool{}
		for _, i := range idx {
			if seen[i] {
				t.Fatalf("sample %d assigned twice", i)
			}
			seen[i] = true
			classes[ds.Label(i)] = true
		}
		// 2 shards -> at most 2+1 classes (shard may straddle a boundary).
		if len(classes) > 3 {
			t.Fatalf("node %d sees %d classes, expected few (non-IID)", node, len(classes))
		}
	}
}

func TestPartitionShardsTooMany(t *testing.T) {
	ds := testImages(t, 0)
	if _, err := PartitionShards(ds, 100, 2, vec.NewRNG(1)); err == nil {
		t.Fatal("expected error for too many shards")
	}
}

func TestPartitionByClient(t *testing.T) {
	ds := testImages(t, 10)
	parts, err := PartitionByClient(ds, 5, vec.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	// Each node gets 2 clients; samples of one client stay together.
	clientNode := map[int]int{}
	for node, idx := range parts {
		for _, i := range idx {
			c := ds.TrainClient[i]
			if prev, ok := clientNode[c]; ok && prev != node {
				t.Fatalf("client %d split across nodes %d and %d", c, prev, node)
			}
			clientNode[c] = node
		}
	}
	if len(clientNode) != 10 {
		t.Fatalf("only %d clients assigned", len(clientNode))
	}
}

func TestPartitionByClientErrors(t *testing.T) {
	noClients := testImages(t, 0)
	if _, err := PartitionByClient(noClients, 4, vec.NewRNG(1)); err == nil {
		t.Fatal("expected error without client structure")
	}
	withClients := testImages(t, 4)
	if _, err := PartitionByClient(withClients, 8, vec.NewRNG(1)); err == nil {
		t.Fatal("expected error for more nodes than clients")
	}
}

func TestPartitionIID(t *testing.T) {
	ds := testImages(t, 0)
	parts, err := PartitionIID(ds, 8, vec.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, idx := range parts {
		total += len(idx)
	}
	if total != len(ds.Train) {
		t.Fatalf("IID partition covers %d of %d", total, len(ds.Train))
	}
}

func TestPartitionDirichlet(t *testing.T) {
	ds := testImages(t, 0)
	parts, err := PartitionDirichlet(ds, 6, 0.5, vec.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for node, idx := range parts {
		if len(idx) == 0 {
			t.Fatalf("node %d empty", node)
		}
		total += len(idx)
	}
	if total != len(ds.Train) {
		t.Fatalf("dirichlet covers %d of %d", total, len(ds.Train))
	}
}

func TestLoaderCyclesAndShuffles(t *testing.T) {
	ds := testImages(t, 0)
	idx := []int{0, 1, 2, 3, 4}
	loader := NewLoader(ds, idx, 2, vec.NewRNG(7))
	if loader.Size() != 5 || loader.BatchesPerEpoch() != 3 {
		t.Fatalf("size %d batches %d", loader.Size(), loader.BatchesPerEpoch())
	}
	// Drain several epochs; batch sizes must be 2,2,1 repeating.
	sizes := []int{}
	for i := 0; i < 9; i++ {
		x, y := loader.Next()
		if x.Batch() != len(y)/len(ds.Train[0].Y) {
			t.Fatal("x/y size mismatch")
		}
		sizes = append(sizes, x.Batch())
	}
	want := []int{2, 2, 1, 2, 2, 1, 2, 2, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("batch sizes %v", sizes)
		}
	}
}

func TestShakespeareLike(t *testing.T) {
	ds, err := ShakespeareLike(TextConfig{SeqLen: 16, Clients: 6, WindowsPerClient: 10}, vec.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Task != TaskSequence || ds.Classes < 20 {
		t.Fatalf("vocab %d, task %v", ds.Classes, ds.Task)
	}
	if len(ds.Train) != 60 {
		t.Fatalf("train %d", len(ds.Train))
	}
	// Targets are inputs shifted by one.
	s := ds.Train[0]
	for i := 0; i < len(s.X)-1; i++ {
		if s.Y[i] != s.X[i+1] {
			t.Fatalf("target not shifted input at %d", i)
		}
	}
	// Ids are within vocabulary.
	for _, v := range s.X {
		if int(v) < 0 || int(v) >= ds.Classes {
			t.Fatalf("id %v out of range", v)
		}
	}
}

func TestMovieLensLike(t *testing.T) {
	ds, err := MovieLensLike(RatingConfig{Users: 10, Items: 50, TrainPerUser: 8, TestPerUser: 2}, vec.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 80 || len(ds.Test) != 20 {
		t.Fatalf("sizes %d/%d", len(ds.Train), len(ds.Test))
	}
	for _, s := range ds.Train {
		if s.Y[0] < 1 || s.Y[0] > 5 {
			t.Fatalf("rating %v out of range", s.Y[0])
		}
		u, it := int(s.X[0]), int(s.X[1])
		if u < 0 || u >= 10 || it < 0 || it >= 50 {
			t.Fatalf("ids out of range: %v", s.X)
		}
	}
	// No duplicate (user, item) pairs within a user.
	seen := map[[2]int]bool{}
	for _, s := range append(append([]Sample{}, ds.Train...), ds.Test...) {
		key := [2]int{int(s.X[0]), int(s.X[1])}
		if seen[key] {
			t.Fatalf("duplicate rating %v", key)
		}
		seen[key] = true
	}
}

func TestMovieLensLearnable(t *testing.T) {
	ds, err := MovieLensLike(RatingConfig{Users: 10, Items: 40, Rank: 3, TrainPerUser: 25, TestPerUser: 5}, vec.NewRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRNG(11)
	mf := nn.NewMatrixFactorization(10, 40, 4, rng)
	idx := make([]int, len(ds.Train))
	for i := range idx {
		idx[i] = i
	}
	loader := NewLoader(ds, idx, 25, rng)
	for step := 0; step < 600; step++ {
		x, y := loader.Next()
		mf.TrainBatch(x, y, 0.02)
	}
	loss, _ := Evaluate(ds, mf, 16, 0)
	if loss > 0.5 {
		t.Fatalf("MF test loss %v too high on low-rank data", loss)
	}
}

func TestDirichletDistribution(t *testing.T) {
	// The dirichlet helper must produce a probability vector.
	r := vec.NewRNG(12)
	for _, alpha := range []float64{0.1, 0.5, 1, 5} {
		w := dirichlet(10, alpha, r)
		var sum float64
		for _, v := range w {
			if v < 0 {
				t.Fatalf("negative weight %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("alpha=%v: sum %v", alpha, sum)
		}
	}
}

func TestEvaluateEmptyAndBounds(t *testing.T) {
	ds := testImages(t, 0)
	rng := vec.NewRNG(13)
	clf := nn.NewMLP(64, 4, 4, rng)
	loss, acc := Evaluate(ds, clf, 0, 7) // default batch, capped samples
	if loss <= 0 || acc < 0 || acc > 1 {
		t.Fatalf("loss %v acc %v", loss, acc)
	}
}
