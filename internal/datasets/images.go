package datasets

import (
	"fmt"

	"repro/internal/vec"
)

// ImageConfig describes a synthetic image-classification task. Each class
// gets a smooth random template (a coarse random grid bilinearly upsampled);
// samples are noisy, optionally client-styled renderings of their class
// template. This preserves what the paper's experiments need from CIFAR-10 /
// FEMNIST / CelebA: CNN-learnable structure with per-class signal and
// per-client variation for non-IID splits.
type ImageConfig struct {
	Name          string
	Classes       int
	Channels      int
	Height, Width int
	TrainPerClass int
	TestPerClass  int
	// Clients > 0 groups train samples into clients with distinct rendering
	// styles (brightness/contrast jitter), as in the LEAF benchmarks.
	Clients int
	// NoiseSD is the per-pixel Gaussian noise level (default 0.3).
	NoiseSD float64
	// TemplateGrid is the coarse grid size for templates (default 4).
	TemplateGrid int
}

func (c *ImageConfig) setDefaults() error {
	if c.Classes <= 1 || c.Channels <= 0 || c.Height <= 0 || c.Width <= 0 {
		return fmt.Errorf("datasets: invalid image config %+v", *c)
	}
	if c.TrainPerClass <= 0 {
		c.TrainPerClass = 50
	}
	if c.TestPerClass <= 0 {
		c.TestPerClass = 10
	}
	if c.NoiseSD == 0 {
		c.NoiseSD = 0.3
	}
	if c.TemplateGrid <= 1 {
		c.TemplateGrid = 4
	}
	if c.Name == "" {
		c.Name = "synthimages"
	}
	return nil
}

// SyntheticImages generates an image classification dataset per cfg.
func SyntheticImages(cfg ImageConfig, rng *vec.RNG) (*Dataset, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	templates := make([][]float64, cfg.Classes)
	for c := range templates {
		templates[c] = smoothTemplate(cfg, rng)
	}
	type style struct{ contrast, brightness float64 }
	styles := []style{{1, 0}}
	if cfg.Clients > 0 {
		styles = make([]style, cfg.Clients)
		for i := range styles {
			styles[i] = style{
				contrast:   1 + 0.3*rng.NormFloat64(),
				brightness: 0.3 * rng.NormFloat64(),
			}
		}
	}

	ds := &Dataset{
		Name:       cfg.Name,
		Task:       TaskImage,
		InputShape: []int{cfg.Channels, cfg.Height, cfg.Width},
		Classes:    cfg.Classes,
		Clients:    cfg.Clients,
	}
	pixels := cfg.Channels * cfg.Height * cfg.Width
	render := func(class, client int) Sample {
		st := styles[0]
		if cfg.Clients > 0 && client >= 0 {
			st = styles[client]
		}
		x := make([]float64, pixels)
		tmpl := templates[class]
		for i := range x {
			x[i] = st.contrast*tmpl[i] + st.brightness + cfg.NoiseSD*rng.NormFloat64()
		}
		return Sample{X: x, Y: []float64{float64(class)}}
	}

	clientOf := func(sampleIdx int) int {
		if cfg.Clients == 0 {
			return -1
		}
		return sampleIdx % cfg.Clients
	}
	idx := 0
	for c := 0; c < cfg.Classes; c++ {
		for i := 0; i < cfg.TrainPerClass; i++ {
			client := clientOf(idx)
			ds.Train = append(ds.Train, render(c, client))
			ds.TrainClient = append(ds.TrainClient, client)
			idx++
		}
	}
	for c := 0; c < cfg.Classes; c++ {
		for i := 0; i < cfg.TestPerClass; i++ {
			ds.Test = append(ds.Test, render(c, -1))
		}
	}
	return ds, nil
}

// smoothTemplate draws a coarse random grid per channel and upsamples it
// bilinearly, giving each class a smooth distinctive appearance.
func smoothTemplate(cfg ImageConfig, rng *vec.RNG) []float64 {
	g := cfg.TemplateGrid
	out := make([]float64, cfg.Channels*cfg.Height*cfg.Width)
	for ch := 0; ch < cfg.Channels; ch++ {
		grid := make([]float64, g*g)
		for i := range grid {
			grid[i] = 2*rng.Float64() - 1
		}
		for y := 0; y < cfg.Height; y++ {
			fy := 0.0
			if cfg.Height > 1 {
				fy = float64(y) * float64(g-1) / float64(cfg.Height-1)
			}
			y0 := int(fy)
			y1 := y0 + 1
			if y1 >= g {
				y1 = g - 1
			}
			wy := fy - float64(y0)
			for x := 0; x < cfg.Width; x++ {
				fx := 0.0
				if cfg.Width > 1 {
					fx = float64(x) * float64(g-1) / float64(cfg.Width-1)
				}
				x0 := int(fx)
				x1 := x0 + 1
				if x1 >= g {
					x1 = g - 1
				}
				wx := fx - float64(x0)
				v := (1-wy)*((1-wx)*grid[y0*g+x0]+wx*grid[y0*g+x1]) +
					wy*((1-wx)*grid[y1*g+x0]+wx*grid[y1*g+x1])
				out[ch*cfg.Height*cfg.Width+y*cfg.Width+x] = v
			}
		}
	}
	return out
}
