// Package datasets provides synthetic stand-ins for the paper's five
// benchmark datasets plus the non-IID partitioning schemes used in its
// evaluation. The real datasets (CIFAR-10, FEMNIST, CelebA, Shakespeare,
// MovieLens) are unavailable offline; these generators reproduce the
// *structure* the experiments depend on — class-templated images with
// per-client styles, character text grouped by client, and low-rank ratings —
// so that non-IID hardness and sparsification behaviour carry over.
package datasets

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/nn"
	"repro/internal/vec"
)

// Task discriminates how samples are batched and scored.
type Task int

// Task kinds.
const (
	// TaskImage is single-label image classification (X = pixels, Y = class).
	TaskImage Task = iota + 1
	// TaskSequence is next-token prediction (X = T token ids, Y = T targets).
	TaskSequence
	// TaskRating is recommendation (X = [user, item], Y = rating).
	TaskRating
)

// Sample is one training or test example.
type Sample struct {
	X []float64
	Y []float64
}

// Dataset is a generated task with a shared test set and per-sample client
// attribution for client-grouped partitioning.
type Dataset struct {
	Name       string
	Task       Task
	InputShape []int // per-sample input shape (e.g. [C, H, W], [T], [2])
	Classes    int   // number of classes (vocabulary size for sequences)
	Train      []Sample
	Test       []Sample
	// TrainClient[i] is the client that produced Train[i] (-1 if none).
	TrainClient []int
	// Clients is the number of distinct clients (0 if no client structure).
	Clients int
}

// Label returns the scalar class of train sample i (first target).
func (d *Dataset) Label(i int) int { return int(d.Train[i].Y[0]) }

// BatchTensors assembles the samples at indices into an input tensor and a
// flat target slice ready for nn.Trainable.TrainBatch / EvalBatch.
func (d *Dataset) BatchTensors(samples []Sample, indices []int) (*nn.Tensor, []float64) {
	return d.BatchTensorsInto(samples, indices, &nn.Tensor{}, nil)
}

// BatchTensorsInto is BatchTensors over caller-owned buffers: x's data and
// shape and the target slice are resized in place, so a loop that feeds
// batches straight into TrainBatch/EvalBatch allocates nothing in steady
// state. The returned tensor is x; the returned targets reuse ys's backing
// array when it is large enough.
func (d *Dataset) BatchTensorsInto(samples []Sample, indices []int, x *nn.Tensor, ys []float64) (*nn.Tensor, []float64) {
	if len(indices) == 0 {
		panic("datasets: empty batch")
	}
	perX := len(samples[indices[0]].X)
	n := len(indices) * perX
	if cap(x.Data) < n {
		x.Data = make([]float64, n)
	}
	x.Data = x.Data[:n]
	x.Shape = append(x.Shape[:0], len(indices))
	x.Shape = append(x.Shape, d.InputShape...)
	ys = ys[:0]
	for bi, si := range indices {
		s := samples[si]
		copy(x.Data[bi*perX:(bi+1)*perX], s.X)
		ys = append(ys, s.Y...)
	}
	return x, ys
}

// Loader yields shuffled minibatches over a node's local training indices,
// reshuffling at each epoch boundary with the node's own RNG.
type Loader struct {
	ds      *Dataset
	indices []int
	batch   int
	rng     *vec.RNG
	pos     int

	// Reused batch buffers: Next's results are valid until the next call,
	// which is how TrainBatch consumes them.
	x  nn.Tensor
	ys []float64
}

// NewLoader builds a loader over the given train indices.
func NewLoader(ds *Dataset, indices []int, batch int, rng *vec.RNG) *Loader {
	if len(indices) == 0 {
		panic("datasets: loader needs at least one sample")
	}
	if batch <= 0 {
		panic("datasets: batch size must be positive")
	}
	own := append([]int(nil), indices...)
	l := &Loader{ds: ds, indices: own, batch: batch, rng: rng}
	l.rng.ShuffleInts(l.indices)
	return l
}

// Size returns the number of local samples.
func (l *Loader) Size() int { return len(l.indices) }

// BatchesPerEpoch returns the number of minibatches in one local epoch.
func (l *Loader) BatchesPerEpoch() int {
	n := (len(l.indices) + l.batch - 1) / l.batch
	if n == 0 {
		n = 1
	}
	return n
}

// Next returns the next minibatch, reshuffling when an epoch completes. The
// returned tensor and targets are owned by the loader and valid until the
// next call.
func (l *Loader) Next() (*nn.Tensor, []float64) {
	if l.pos >= len(l.indices) {
		l.rng.ShuffleInts(l.indices)
		l.pos = 0
	}
	end := l.pos + l.batch
	if end > len(l.indices) {
		end = len(l.indices)
	}
	idx := l.indices[l.pos:end]
	l.pos = end
	x, ys := l.ds.BatchTensorsInto(l.ds.Train, idx, &l.x, l.ys)
	l.ys = ys
	return x, ys
}

// Evaluate scores model on up to maxSamples test samples (0 = all) in batches
// and returns mean loss and accuracy over scored predictions.
func Evaluate(ds *Dataset, model nn.Trainable, batch, maxSamples int) (loss, accuracy float64) {
	n := len(ds.Test)
	if maxSamples > 0 && maxSamples < n {
		n = maxSamples
	}
	if n == 0 {
		return 0, 0
	}
	if batch <= 0 {
		batch = 32
	}
	var sumLoss float64
	var correct, count int
	idx := make([]int, 0, batch)
	var xt nn.Tensor
	var ys []float64
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		idx = idx[:0]
		for i := start; i < end; i++ {
			idx = append(idx, i)
		}
		x, y := ds.BatchTensorsInto(ds.Test, idx, &xt, ys)
		ys = y
		l, c, m := model.EvalBatch(x, y)
		sumLoss += l
		correct += c
		count += m
	}
	return sumLoss / float64(count), float64(correct) / float64(count)
}

// --- Partitioners -----------------------------------------------------------

// PartitionShards implements the paper's CIFAR-10 scheme: sort train samples
// by label, cut into nodes*shardsPerNode contiguous shards, and deal
// shardsPerNode random shards to each node. With 2 shards per node each node
// sees at most 4 classes, the paper's hardest non-IID setting.
func PartitionShards(ds *Dataset, nodes, shardsPerNode int, rng *vec.RNG) ([][]int, error) {
	n := len(ds.Train)
	total := nodes * shardsPerNode
	if total > n {
		return nil, fmt.Errorf("datasets: %d shards requested for %d samples", total, n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ds.Label(order[a]) < ds.Label(order[b]) })
	shardSize := n / total
	shardIDs := rng.Perm(total)
	out := make([][]int, nodes)
	for node := 0; node < nodes; node++ {
		for s := 0; s < shardsPerNode; s++ {
			shard := shardIDs[node*shardsPerNode+s]
			start := shard * shardSize
			end := start + shardSize
			if shard == total-1 {
				end = n
			}
			out[node] = append(out[node], order[start:end]...)
		}
	}
	return out, nil
}

// PartitionByClient distributes whole clients across nodes so each node
// receives an (almost) equal number of clients, as the paper does for the
// LEAF datasets and MovieLens. Clients are shuffled first.
func PartitionByClient(ds *Dataset, nodes int, rng *vec.RNG) ([][]int, error) {
	if ds.Clients == 0 {
		return nil, fmt.Errorf("datasets: %s has no client structure", ds.Name)
	}
	if nodes > ds.Clients {
		return nil, fmt.Errorf("datasets: %d nodes for %d clients", nodes, ds.Clients)
	}
	byClient := make([][]int, ds.Clients)
	for i, c := range ds.TrainClient {
		if c >= 0 {
			byClient[c] = append(byClient[c], i)
		}
	}
	perm := rng.Perm(ds.Clients)
	out := make([][]int, nodes)
	for pos, client := range perm {
		node := pos % nodes
		out[node] = append(out[node], byClient[client]...)
	}
	for node, idx := range out {
		if len(idx) == 0 {
			return nil, fmt.Errorf("datasets: node %d received no samples", node)
		}
	}
	return out, nil
}

// PartitionIID deals samples uniformly at random (used in sanity checks).
func PartitionIID(ds *Dataset, nodes int, rng *vec.RNG) ([][]int, error) {
	n := len(ds.Train)
	if nodes > n {
		return nil, fmt.Errorf("datasets: %d nodes for %d samples", nodes, n)
	}
	perm := rng.Perm(n)
	out := make([][]int, nodes)
	for pos, idx := range perm {
		node := pos % nodes
		out[node] = append(out[node], idx)
	}
	return out, nil
}

// PartitionDirichlet splits class proportions per node from a symmetric
// Dirichlet(alpha) distribution, a common non-IID benchmark scheme; small
// alpha is more skewed.
func PartitionDirichlet(ds *Dataset, nodes int, alpha float64, rng *vec.RNG) ([][]int, error) {
	if ds.Classes == 0 {
		return nil, fmt.Errorf("datasets: %s has no class labels", ds.Name)
	}
	byClass := make([][]int, ds.Classes)
	for i := range ds.Train {
		c := ds.Label(i)
		byClass[c] = append(byClass[c], i)
	}
	out := make([][]int, nodes)
	for c, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		rng.ShuffleInts(idx)
		weights := dirichlet(nodes, alpha, rng)
		// Convert weights to cumulative counts.
		start := 0
		var cum float64
		for node := 0; node < nodes; node++ {
			cum += weights[node]
			end := int(cum*float64(len(idx)) + 0.5)
			if node == nodes-1 {
				end = len(idx)
			}
			if end > start {
				out[node] = append(out[node], idx[start:end]...)
			}
			start = end
		}
		_ = c
	}
	for node := range out {
		if len(out[node]) == 0 {
			// Guarantee progress everywhere: steal one sample from the
			// largest node.
			big := 0
			for i := range out {
				if len(out[i]) > len(out[big]) {
					big = i
				}
			}
			if len(out[big]) < 2 {
				return nil, fmt.Errorf("datasets: not enough samples to cover %d nodes", nodes)
			}
			out[node] = append(out[node], out[big][len(out[big])-1])
			out[big] = out[big][:len(out[big])-1]
		}
	}
	return out, nil
}

// dirichlet draws a symmetric Dirichlet(alpha) sample via Gamma(alpha, 1)
// normalization (Marsaglia-Tsang for alpha >= 1; boost trick below 1).
func dirichlet(n int, alpha float64, rng *vec.RNG) []float64 {
	out := make([]float64, n)
	var sum float64
	for i := range out {
		g := gamma(alpha, rng)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func gamma(alpha float64, rng *vec.RNG) float64 {
	if alpha < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gamma(alpha+1, rng) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / (3 * math.Sqrt(d))
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u == 0 {
			continue
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}
