package codec

import (
	"encoding/binary"
	"testing"
)

// fuzzSeedPayloads builds one valid payload per (index mode, codec) pair —
// the corpus the fuzzer mutates from, so it starts inside the wire format
// instead of rediscovering the header layout bit by bit.
func fuzzSeedPayloads(tb testing.TB) [][]byte {
	tb.Helper()
	vals := []float64{0.5, -1.25, 3.75, 0, -0.0625, 2}
	dense := SparseVector{Dim: 6, Values: vals}
	sparse := SparseVector{Dim: 40, Indices: []int{1, 4, 17, 18, 31, 39}, Values: vals}
	seeded := SparseVector{Dim: 40, Seed: 0xfeed, Values: vals}
	codecs := []FloatCodec{Raw32{}, PlaneFlate32{}, XOR32{}, NewQSGD(64, 9)}
	var out [][]byte
	for _, fc := range codecs {
		for _, c := range []struct {
			sv   SparseVector
			mode IndexMode
		}{{dense, IndexDense}, {sparse, IndexGamma}, {seeded, IndexSeed}} {
			buf, _, err := EncodeSparse(c.sv, c.mode, fc)
			if err != nil {
				tb.Fatal(err)
			}
			out = append(out, buf)
		}
	}
	return out
}

// FuzzDecodeSparseInto hammers the payload decoder with mutated wire bytes:
// it must never panic or allocate proportionally to a corrupt header's
// claims, and anything it accepts must satisfy the invariants the aggregation
// path relies on without further checks (count within dim, indices strictly
// increasing and in range).
func FuzzDecodeSparseInto(f *testing.F) {
	for _, buf := range fuzzSeedPayloads(f) {
		f.Add(buf)
	}
	// A few structurally corrupt mutants to steer early coverage.
	f.Add([]byte{})
	f.Add([]byte{1, 0, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Add([]byte{2, 3, 40, 0, 0, 0, 6, 0, 0, 0, 0xed, 0xfe, 0, 0, 0, 0, 0, 0})
	var sv SparseVector
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		// The harness bounds the claimed dimension: a 10-byte header may
		// declare dim up to 2^32, and legitimate seeded/QSGD payloads have no
		// per-value size floor, so dim itself is the only allocation bound.
		if len(data) >= 10 {
			if dim := binary.LittleEndian.Uint32(data[2:]); dim > 1<<20 {
				return
			}
		}
		// Reuse one scratch vector across inputs — the engines decode every
		// payload into warm scratch, so stale Indices/Values contents must
		// never leak into a later decode.
		if err := DecodeSparseInto(&sv, data); err != nil {
			return
		}
		if len(sv.Values) > sv.Dim {
			t.Fatalf("decoded %d values for dim %d", len(sv.Values), sv.Dim)
		}
		if sv.Indices != nil {
			if len(sv.Indices) != len(sv.Values) {
				t.Fatalf("%d indices for %d values", len(sv.Indices), len(sv.Values))
			}
			prev := -1
			for _, idx := range sv.Indices {
				if idx <= prev || idx >= sv.Dim {
					t.Fatalf("index %d out of order or range (prev %d, dim %d)", idx, prev, sv.Dim)
				}
				prev = idx
			}
		}
	})
}
