package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/vec"
)

// QSGD is the stochastic uniform quantizer of Alistarh et al. (NeurIPS 2017),
// which the paper cites as the origin of its Elias-gamma metadata scheme.
// Values are scaled by the vector's max magnitude and rounded stochastically
// to one of Levels buckets; each value is stored as a sign bit plus the
// gamma-coded bucket index. Unlike the other codecs QSGD is *lossy beyond
// float32*: decoding returns an unbiased estimate with per-element error at
// most maxAbs/Levels. Provided as an extension for quantization-based
// compression experiments (e.g. CHOCO with QSGD instead of TopK).
type QSGD struct {
	// Levels is the number of quantization buckets (default 64).
	Levels int
	// Seed drives stochastic rounding. Encoding advances an internal counter
	// so repeated calls use fresh randomness while remaining reproducible
	// for a fixed construction seed and call sequence.
	Seed uint64

	calls uint64
}

var _ FloatCodec = (*QSGD)(nil)

// NewQSGD builds a quantizer with the given level count and seed.
func NewQSGD(levels int, seed uint64) *QSGD {
	if levels <= 0 {
		levels = 64
	}
	return &QSGD{Levels: levels, Seed: seed}
}

// Name implements FloatCodec.
func (q *QSGD) Name() string { return "qsgd" }

// Encode implements FloatCodec.
func (q *QSGD) Encode(values []float64) ([]byte, error) {
	levels := q.Levels
	if levels <= 0 {
		levels = 64
	}
	if levels > 1<<20 {
		return nil, fmt.Errorf("codec: qsgd levels %d too large", levels)
	}
	q.calls++
	rng := vec.NewRNG(q.Seed ^ q.calls*0x9e3779b97f4a7c15)

	maxAbs := vec.MaxAbs(values)
	header := make([]byte, 8)
	binary.LittleEndian.PutUint32(header[0:], math.Float32bits(float32(maxAbs)))
	binary.LittleEndian.PutUint32(header[4:], uint32(levels))
	if maxAbs == 0 || len(values) == 0 {
		return header, nil
	}
	var w BitWriter
	for _, v := range values {
		sign := uint(0)
		if v < 0 {
			sign = 1
		}
		ratio := math.Abs(v) / maxAbs * float64(levels)
		bucket := math.Floor(ratio)
		if rng.Float64() < ratio-bucket {
			bucket++
		}
		if bucket > float64(levels) {
			bucket = float64(levels)
		}
		w.WriteBit(sign)
		WriteEliasGamma(&w, uint64(bucket)+1)
	}
	return append(header, w.Bytes()...), nil
}

// Decode implements FloatCodec.
func (q *QSGD) Decode(buf []byte, count int) ([]float64, error) {
	out := make([]float64, count)
	if err := q.DecodeInto(buf, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto implements FloatDecoderInto.
func (q *QSGD) DecodeInto(buf []byte, out []float64) error {
	if len(buf) < 8 {
		return fmt.Errorf("codec: qsgd header truncated: %w", ErrCorrupt)
	}
	maxAbs := float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[0:])))
	levels := int(binary.LittleEndian.Uint32(buf[4:]))
	if levels <= 0 {
		return fmt.Errorf("codec: qsgd invalid levels %d: %w", levels, ErrCorrupt)
	}
	if maxAbs == 0 || len(out) == 0 {
		for i := range out {
			out[i] = 0
		}
		return nil
	}
	r := BitReader{buf: buf[8:]}
	for i := range out {
		sign, err := r.ReadBit()
		if err != nil {
			return err
		}
		bucketPlus1, err := ReadEliasGamma(&r)
		if err != nil {
			return err
		}
		v := maxAbs * float64(bucketPlus1-1) / float64(levels)
		if sign == 1 {
			v = -v
		}
		out[i] = v
	}
	return nil
}
