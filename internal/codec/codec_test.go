package codec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	var w BitWriter
	w.WriteBit(1)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xdeadbeef, 32)
	w.WriteBit(0)
	buf := w.Bytes()
	r := NewBitReader(buf)
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("first bit")
	}
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("nibble = %b", v)
	}
	if v, _ := r.ReadBits(32); v != 0xdeadbeef {
		t.Fatalf("word = %x", v)
	}
	if b, _ := r.ReadBit(); b != 0 {
		t.Fatal("last bit")
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xff})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("expected error reading past end")
	}
	if _, err := r.ReadBits(100); err == nil {
		t.Fatal("expected error for >64 bit read")
	}
}

func TestEliasGammaKnownCodes(t *testing.T) {
	// gamma(1)=1, gamma(2)=010, gamma(3)=011, gamma(4)=00100.
	cases := []struct {
		v    uint64
		bits int
	}{{1, 1}, {2, 3}, {3, 3}, {4, 5}, {8, 7}, {255, 15}, {256, 17}}
	for _, c := range cases {
		if got := GammaEncodedBits(c.v); got != c.bits {
			t.Errorf("GammaEncodedBits(%d) = %d, want %d", c.v, got, c.bits)
		}
		var w BitWriter
		WriteEliasGamma(&w, c.v)
		if w.BitLen() != c.bits {
			t.Errorf("gamma(%d) wrote %d bits, want %d", c.v, w.BitLen(), c.bits)
		}
		r := NewBitReader(w.Bytes())
		got, err := ReadEliasGamma(r)
		if err != nil || got != c.v {
			t.Errorf("gamma round trip of %d: got %d err %v", c.v, got, err)
		}
	}
}

func TestEliasGammaSequence(t *testing.T) {
	var w BitWriter
	vals := []uint64{1, 2, 3, 100, 1, 77777, 5}
	for _, v := range vals {
		WriteEliasGamma(&w, v)
	}
	r := NewBitReader(w.Bytes())
	for i, want := range vals {
		got, err := ReadEliasGamma(r)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("value %d: got %d want %d", i, got, want)
		}
	}
}

func TestIndicesGammaRoundTrip(t *testing.T) {
	cases := [][]int{
		nil,
		{0},
		{5},
		{0, 1, 2, 3},
		{0, 100, 10000, 1000000},
		{7, 8, 9, 1 << 20},
	}
	for _, idx := range cases {
		buf, err := EncodeIndicesGamma(idx)
		if err != nil {
			t.Fatalf("%v: %v", idx, err)
		}
		got, err := DecodeIndicesGamma(buf, len(idx))
		if err != nil {
			t.Fatalf("%v: %v", idx, err)
		}
		if len(got) != len(idx) {
			t.Fatalf("%v: got %v", idx, got)
		}
		for i := range idx {
			if got[i] != idx[i] {
				t.Fatalf("%v: got %v", idx, got)
			}
		}
	}
}

func TestIndicesGammaRejectsUnsorted(t *testing.T) {
	if _, err := EncodeIndicesGamma([]int{3, 3}); err == nil {
		t.Fatal("expected error for duplicate index")
	}
	if _, err := EncodeIndicesGamma([]int{5, 2}); err == nil {
		t.Fatal("expected error for decreasing index")
	}
}

// TestIndicesGammaCompressionRatio reproduces the claim behind Figure 9:
// dense TopK index sets compress far below the naive 4 bytes/index.
func TestIndicesGammaCompressionRatio(t *testing.T) {
	r := vec.NewRNG(3)
	dim := 100000
	k := dim * 37 / 100 // JWINS average sharing fraction
	idx := r.SampleWithoutReplacement(dim, k)
	buf, err := EncodeIndicesGamma(idx)
	if err != nil {
		t.Fatal(err)
	}
	naive := 4 * k
	ratio := float64(naive) / float64(len(buf))
	if ratio < 5 {
		t.Fatalf("gamma compression ratio %.1f too low (got %d bytes for %d indices)", ratio, len(buf), k)
	}
	t.Logf("gamma metadata compression: %.1fx (%d -> %d bytes)", ratio, naive, len(buf))
}

func TestQuickIndicesGamma(t *testing.T) {
	f := func(seed uint64, rawDim uint16, rawFrac uint8) bool {
		dim := int(rawDim)%5000 + 1
		k := int(rawFrac) % (dim + 1)
		idx := vec.NewRNG(seed).SampleWithoutReplacement(dim, k)
		buf, err := EncodeIndicesGamma(idx)
		if err != nil {
			return false
		}
		got, err := DecodeIndicesGamma(buf, k)
		if err != nil {
			return false
		}
		for i := range idx {
			if got[i] != idx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func testFloatRoundTrip(t *testing.T, fc FloatCodec) {
	t.Helper()
	r := vec.NewRNG(9)
	cases := [][]float64{
		nil,
		{0},
		{1.5, -2.25, 3.75},
		{math.Pi, -math.E, 1e-30, 1e30},
	}
	big := make([]float64, 1000)
	for i := range big {
		big[i] = r.NormFloat64() * 0.1
	}
	cases = append(cases, big)
	for _, vals := range cases {
		buf, err := fc.Encode(vals)
		if err != nil {
			t.Fatalf("%s encode: %v", fc.Name(), err)
		}
		got, err := fc.Decode(buf, len(vals))
		if err != nil {
			t.Fatalf("%s decode: %v", fc.Name(), err)
		}
		for i := range vals {
			want := float64(float32(vals[i])) // codecs are float32-lossy by contract
			if got[i] != want {
				t.Fatalf("%s value %d: got %v want %v", fc.Name(), i, got[i], want)
			}
		}
	}
}

func TestRaw32RoundTrip(t *testing.T)        { testFloatRoundTrip(t, Raw32{}) }
func TestPlaneFlate32RoundTrip(t *testing.T) { testFloatRoundTrip(t, PlaneFlate32{}) }
func TestXOR32RoundTrip(t *testing.T)        { testFloatRoundTrip(t, XOR32{}) }

func TestFloatCodecByName(t *testing.T) {
	for _, name := range []string{"raw32", "flate32", "xor32"} {
		fc, err := FloatCodecByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fc.Name() != name {
			t.Fatalf("name mismatch: %s vs %s", fc.Name(), name)
		}
	}
	if _, err := FloatCodecByName("zstd"); err == nil {
		t.Fatal("expected error for unknown codec")
	}
}

// TestPlaneFlateCompresses checks that weight-like data (many values of
// similar magnitude) actually shrinks, which is the reason the paper applies
// a float compressor at all.
func TestPlaneFlateCompresses(t *testing.T) {
	r := vec.NewRNG(10)
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = r.NormFloat64() * 0.05
	}
	buf, err := PlaneFlate32{}.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	raw := 4 * len(vals)
	if len(buf) >= raw {
		t.Fatalf("flate32 did not compress: %d >= %d", len(buf), raw)
	}
	t.Logf("flate32: %d -> %d bytes (%.2fx)", raw, len(buf), float64(raw)/float64(len(buf)))
}

func TestEncodeDecodeSparseGamma(t *testing.T) {
	sv := SparseVector{
		Dim:     100,
		Indices: []int{1, 7, 42, 99},
		Values:  []float64{0.5, -1.25, 3, 4.75},
	}
	for _, fc := range []FloatCodec{Raw32{}, PlaneFlate32{}, XOR32{}} {
		buf, bd, err := EncodeSparse(sv, IndexGamma, fc)
		if err != nil {
			t.Fatalf("%s: %v", fc.Name(), err)
		}
		if bd.Total() != len(buf) {
			t.Fatalf("%s: breakdown %d+%d != len %d", fc.Name(), bd.Model, bd.Meta, len(buf))
		}
		got, err := DecodeSparse(buf)
		if err != nil {
			t.Fatalf("%s: %v", fc.Name(), err)
		}
		if got.Dim != sv.Dim || len(got.Indices) != 4 || len(got.Values) != 4 {
			t.Fatalf("%s: got %+v", fc.Name(), got)
		}
		for i := range sv.Indices {
			if got.Indices[i] != sv.Indices[i] {
				t.Fatalf("%s: indices %v", fc.Name(), got.Indices)
			}
			if got.Values[i] != float64(float32(sv.Values[i])) {
				t.Fatalf("%s: values %v", fc.Name(), got.Values)
			}
		}
	}
}

func TestEncodeDecodeSparseSeed(t *testing.T) {
	seed := uint64(12345)
	dim := 500
	count := 50
	idx := SeededIndices(seed, dim, count)
	vals := make([]float64, count)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	sv := SparseVector{Dim: dim, Seed: seed, Values: vals}
	buf, bd, err := EncodeSparse(sv, IndexSeed, Raw32{})
	if err != nil {
		t.Fatal(err)
	}
	// Seeded metadata is constant-size: header + seed, independent of count.
	if bd.Meta != 10+8+4 {
		t.Fatalf("seed metadata = %d bytes", bd.Meta)
	}
	got, err := DecodeSparse(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range idx {
		if got.Indices[i] != idx[i] {
			t.Fatalf("regenerated indices differ at %d: %d vs %d", i, got.Indices[i], idx[i])
		}
	}
}

func TestEncodeDecodeSparseDense(t *testing.T) {
	vals := []float64{1, 2, 3}
	sv := SparseVector{Dim: 3, Values: vals}
	buf, bd, err := EncodeSparse(sv, IndexDense, Raw32{})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Model != 12 {
		t.Fatalf("model bytes = %d, want 12", bd.Model)
	}
	got, err := DecodeSparse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Indices != nil {
		t.Fatal("dense payload should have nil indices")
	}
	if len(got.Values) != 3 {
		t.Fatalf("values: %v", got.Values)
	}
}

func TestEncodeSparseValidation(t *testing.T) {
	if _, _, err := EncodeSparse(SparseVector{Dim: 3, Values: []float64{1}}, IndexDense, Raw32{}); err == nil {
		t.Fatal("dense with wrong count should error")
	}
	if _, _, err := EncodeSparse(SparseVector{Dim: 3, Indices: []int{0}, Values: []float64{1, 2}}, IndexGamma, Raw32{}); err == nil {
		t.Fatal("gamma with mismatched lengths should error")
	}
}

func TestDecodeSparseCorrupt(t *testing.T) {
	sv := SparseVector{Dim: 10, Indices: []int{1, 5}, Values: []float64{1, 2}}
	buf, _, err := EncodeSparse(sv, IndexGamma, Raw32{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 5, 9, len(buf) - 1} {
		if _, err := DecodeSparse(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	bad := append([]byte{}, buf...)
	bad[0] = 99 // invalid index mode
	if _, err := DecodeSparse(bad); err == nil {
		t.Fatal("invalid mode not detected")
	}
}

func TestQuickSparseRoundTrip(t *testing.T) {
	f := func(seed uint64, rawDim uint16, rawK uint16) bool {
		dim := int(rawDim)%2000 + 1
		k := int(rawK) % (dim + 1)
		r := vec.NewRNG(seed)
		idx := r.SampleWithoutReplacement(dim, k)
		vals := make([]float64, k)
		for i := range vals {
			vals[i] = r.NormFloat64()
		}
		sv := SparseVector{Dim: dim, Indices: idx, Values: vals}
		buf, _, err := EncodeSparse(sv, IndexGamma, PlaneFlate32{})
		if err != nil {
			return false
		}
		got, err := DecodeSparse(buf)
		if err != nil {
			return false
		}
		for i := range idx {
			if got.Indices[i] != idx[i] || got.Values[i] != float64(float32(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
