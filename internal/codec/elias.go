package codec

import (
	"fmt"
	"math"
	"math/bits"
)

// WriteEliasGamma appends the Elias gamma code of v (v >= 1) to w:
// floor(log2 v) zero bits followed by the binary representation of v.
func WriteEliasGamma(w *BitWriter, v uint64) {
	if v == 0 {
		panic("codec: Elias gamma is undefined for 0")
	}
	n := uint(bits.Len64(v)) - 1
	for i := uint(0); i < n; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(v, n+1)
}

// ReadEliasGamma decodes one Elias gamma code from r.
func ReadEliasGamma(r *BitReader) (uint64, error) {
	var n uint
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 63 {
			return 0, fmt.Errorf("codec: gamma prefix too long: %w", ErrCorrupt)
		}
	}
	rest, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	return 1<<n | rest, nil
}

// EncodeIndicesGamma encodes a strictly increasing list of non-negative
// indices as Elias gamma codes over the difference array (first index + 1,
// then successive gaps), exactly the scheme the paper adopts from QSGD for
// sparsification metadata. An empty list encodes to an empty buffer.
func EncodeIndicesGamma(indices []int) ([]byte, error) {
	return AppendIndicesGamma(nil, indices)
}

// AppendIndicesGamma is EncodeIndicesGamma appending into dst (which may be
// nil or a reused buffer sliced to zero length). An empty index list appends
// nothing and returns dst unchanged.
func AppendIndicesGamma(dst []byte, indices []int) ([]byte, error) {
	if len(indices) == 0 {
		return dst, nil
	}
	w := BitWriter{buf: dst}
	prev := -1
	for pos, idx := range indices {
		if idx <= prev {
			return dst, fmt.Errorf("codec: indices must be strictly increasing (position %d: %d after %d)", pos, idx, prev)
		}
		WriteEliasGamma(&w, uint64(idx-prev)) // gap >= 1
		prev = idx
	}
	return w.Bytes(), nil
}

// DecodeIndicesGamma decodes count indices produced by EncodeIndicesGamma.
func DecodeIndicesGamma(buf []byte, count int) ([]int, error) {
	return AppendDecodeIndicesGamma(nil, buf, count)
}

// AppendDecodeIndicesGamma is DecodeIndicesGamma appending into dst, for
// callers that reuse index scratch across payloads.
func AppendDecodeIndicesGamma(dst []int, buf []byte, count int) ([]int, error) {
	if count == 0 {
		return dst, nil
	}
	r := BitReader{buf: buf}
	prev := -1
	for i := 0; i < count; i++ {
		gap, err := ReadEliasGamma(&r)
		if err != nil {
			return nil, fmt.Errorf("codec: index %d: %w", i, err)
		}
		// Valid gaps never exceed the (u32-bounded) vector dimension; larger
		// ones are corruption, and letting them through would overflow prev
		// into a negative index that panics in downstream scatters.
		if gap > math.MaxUint32 {
			return nil, fmt.Errorf("codec: index %d: gap %d out of range: %w", i, gap, ErrCorrupt)
		}
		prev += int(gap)
		if prev < 0 {
			return nil, fmt.Errorf("codec: index %d overflows: %w", i, ErrCorrupt)
		}
		dst = append(dst, prev)
	}
	return dst, nil
}

// GammaEncodedBits returns the exact bit length of the gamma code of v.
func GammaEncodedBits(v uint64) int {
	if v == 0 {
		panic("codec: Elias gamma is undefined for 0")
	}
	return 2*bits.Len64(v) - 1
}
