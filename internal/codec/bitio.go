// Package codec implements the wire-level encoders used by the decentralized
// learning algorithms: bit-level I/O, Elias gamma universal codes for
// sparsification metadata (parameter indices), seeded index descriptors for
// random sampling, and floating-point value codecs (a raw float32 format, a
// byte-plane+flate compressor standing in for fpzip, and a Gorilla-style XOR
// compressor). All byte counts reported by experiments come from the real
// encoded sizes produced here.
package codec

import (
	"errors"
	"fmt"
)

// ErrCorrupt is returned when a decoder runs out of bits or reads an invalid
// code. Wrap it with context via fmt.Errorf("...: %w", ErrCorrupt).
var ErrCorrupt = errors.New("codec: corrupt or truncated stream")

// BitWriter accumulates bits most-significant-first into a byte buffer.
// The zero value is ready to use.
type BitWriter struct {
	buf  []byte
	cur  byte
	nCur uint // bits currently in cur (0..7)
}

// WriteBit appends a single bit (0 or 1).
func (w *BitWriter) WriteBit(b uint) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the n low bits of v, most significant first. n may be 0.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i)))
	}
}

// Len returns the number of complete bytes written so far (excluding any
// partial final byte).
func (w *BitWriter) Len() int { return len(w.buf) }

// BitLen returns the total number of bits written.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes flushes the partial byte (zero-padded) and returns the encoded
// buffer. The writer remains usable; further writes continue after padding.
func (w *BitWriter) Bytes() []byte {
	if w.nCur > 0 {
		w.cur <<= 8 - w.nCur
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// BitReader consumes bits most-significant-first from a byte slice.
type BitReader struct {
	buf []byte
	pos int  // byte position
	bit uint // bit position within current byte (0 = MSB)
}

// NewBitReader returns a reader over buf. The reader does not copy buf.
func NewBitReader(buf []byte) *BitReader {
	return &BitReader{buf: buf}
}

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrCorrupt
	}
	b := uint(r.buf[r.pos]>>(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, nil
}

// ReadBits returns the next n bits as the low bits of a uint64.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, fmt.Errorf("codec: ReadBits(%d): %w", n, ErrCorrupt)
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}
