package codec

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestQSGDBoundedError(t *testing.T) {
	rng := vec.NewRNG(1)
	q := NewQSGD(64, 7)
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	buf, err := q.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Decode(buf, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	maxAbs := vec.MaxAbs(vals)
	bound := maxAbs/64 + 1e-6
	for i := range vals {
		if math.Abs(got[i]-vals[i]) > bound {
			t.Fatalf("value %d: |%v - %v| > %v", i, got[i], vals[i], bound)
		}
		// Sign must be preserved for clearly nonzero values.
		if math.Abs(vals[i]) > 2*bound && math.Signbit(got[i]) != math.Signbit(vals[i]) {
			t.Fatalf("value %d: sign flipped (%v -> %v)", i, vals[i], got[i])
		}
	}
}

// TestQSGDUnbiased: stochastic rounding must be unbiased — averaging many
// independent encodings of the same vector converges to the original.
func TestQSGDUnbiased(t *testing.T) {
	vals := []float64{0.1, -0.45, 0.77, -0.03, 1.0}
	q := NewQSGD(8, 99) // coarse levels make bias easy to spot
	const trials = 3000
	sums := make([]float64, len(vals))
	for trial := 0; trial < trials; trial++ {
		buf, err := q.Encode(vals)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.Decode(buf, len(vals))
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			sums[i] += v
		}
	}
	for i, v := range vals {
		mean := sums[i] / trials
		// Standard error of the bucket noise at 8 levels is ~1/(8*sqrt(N)).
		if math.Abs(mean-v) > 0.02 {
			t.Fatalf("value %d: mean %v, want %v (biased rounding)", i, mean, v)
		}
	}
}

func TestQSGDCompresses(t *testing.T) {
	rng := vec.NewRNG(2)
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 0.1
	}
	q := NewQSGD(16, 1)
	buf, err := q.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	raw := 4 * len(vals)
	if len(buf) >= raw/2 {
		t.Fatalf("qsgd-16 produced %d bytes, want < %d (half of raw float32)", len(buf), raw/2)
	}
	t.Logf("qsgd-16: %d -> %d bytes (%.1fx)", raw, len(buf), float64(raw)/float64(len(buf)))
}

func TestQSGDEdgeCases(t *testing.T) {
	q := NewQSGD(64, 1)
	// Zero vector.
	buf, err := q.Encode([]float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Decode(buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 0 {
			t.Fatalf("zero vector decoded to %v", got)
		}
	}
	// Empty vector.
	buf, err = q.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := q.Decode(buf, 0); err != nil || len(out) != 0 {
		t.Fatalf("empty round trip: %v %v", out, err)
	}
	// Truncated stream.
	if _, err := q.Decode([]byte{1, 2}, 1); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestQSGDInSparsePayload(t *testing.T) {
	q := NewQSGD(64, 5)
	sv := SparseVector{
		Dim:     100,
		Indices: []int{3, 50, 99},
		Values:  []float64{0.5, -0.25, 1.0},
	}
	buf, bd, err := EncodeSparse(sv, IndexGamma, q)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() != len(buf) {
		t.Fatal("byte breakdown mismatch")
	}
	got, err := DecodeSparse(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sv.Values {
		if math.Abs(got.Values[i]-sv.Values[i]) > 1.0/64+1e-6 {
			t.Fatalf("value %d: %v vs %v", i, got.Values[i], sv.Values[i])
		}
	}
}

func TestQSGDDeterministicPerSeed(t *testing.T) {
	a := NewQSGD(32, 11)
	b := NewQSGD(32, 11)
	vals := []float64{0.3, -0.7, 0.11}
	bufA, err := a.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	bufB, err := b.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	if string(bufA) != string(bufB) {
		t.Fatal("same-seed encoders disagree")
	}
	// Second call must use fresh randomness (counter advanced), but remain
	// reproducible against another same-seed encoder's second call.
	bufA2, _ := a.Encode(vals)
	bufB2, _ := b.Encode(vals)
	if string(bufA2) != string(bufB2) {
		t.Fatal("same-seed encoders disagree on second call")
	}
}
