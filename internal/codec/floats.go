package codec

import (
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
)

// FloatCodec encodes a vector of model values for the wire. Models are
// trained in float64 but transmitted as float32, matching the paper's setup
// (PyTorch float32 tensors compressed with fpzip); all codecs here therefore
// quantize to float32 before encoding, and decoding returns the float32
// values widened back to float64.
type FloatCodec interface {
	// Name identifies the codec on the wire.
	Name() string
	// Encode returns the encoded representation of values.
	Encode(values []float64) ([]byte, error)
	// Decode recovers exactly count values from buf.
	Decode(buf []byte, count int) ([]float64, error)
}

// FloatCodecByName returns the codec registered under name:
// "raw32", "flate32" (byte-plane + DEFLATE, the fpzip stand-in), "xor32"
// (Gorilla-style XOR with leading/trailing-zero headers).
func FloatCodecByName(name string) (FloatCodec, error) {
	switch name {
	case "raw32":
		return Raw32{}, nil
	case "flate32":
		return PlaneFlate32{}, nil
	case "xor32":
		return XOR32{}, nil
	default:
		return nil, fmt.Errorf("codec: unknown float codec %q", name)
	}
}

// Raw32 stores values as little-endian IEEE-754 float32.
type Raw32 struct{}

var _ FloatCodec = Raw32{}

// Name implements FloatCodec.
func (Raw32) Name() string { return "raw32" }

// Encode implements FloatCodec.
func (c Raw32) Encode(values []float64) ([]byte, error) {
	return c.AppendEncode(make([]byte, 0, 4*len(values)), values)
}

// AppendEncode implements FloatAppender.
func (Raw32) AppendEncode(dst []byte, values []float64) ([]byte, error) {
	var tmp [4]byte
	for _, v := range values {
		binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(float32(v)))
		dst = append(dst, tmp[:]...)
	}
	return dst, nil
}

// Decode implements FloatCodec.
func (c Raw32) Decode(buf []byte, count int) ([]float64, error) {
	out := make([]float64, count)
	if err := c.DecodeInto(buf, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto implements FloatDecoderInto.
func (Raw32) DecodeInto(buf []byte, out []float64) error {
	if len(buf) < 4*len(out) {
		return fmt.Errorf("codec: raw32 needs %d bytes, have %d: %w", 4*len(out), len(buf), ErrCorrupt)
	}
	for i := range out {
		out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
	}
	return nil
}

// PlaneFlate32 transposes float32 values into four byte planes (all sign/
// exponent bytes together, then successively lower mantissa bytes) and
// DEFLATEs the result. Like fpzip it exploits the strong redundancy of
// neural-network weight exponents; unlike fpzip it is built entirely from the
// Go standard library. Lossless with respect to the float32 quantization.
type PlaneFlate32 struct{}

var _ FloatCodec = PlaneFlate32{}

// Name implements FloatCodec.
func (PlaneFlate32) Name() string { return "flate32" }

// Encode implements FloatCodec.
func (c PlaneFlate32) Encode(values []float64) ([]byte, error) {
	return c.AppendEncode(nil, values)
}

// AppendEncode implements FloatAppender with pooled plane scratch and a
// pooled DEFLATE compressor (flate.NewWriter allocates ~600 KB per call).
func (PlaneFlate32) AppendEncode(dst []byte, values []float64) ([]byte, error) {
	n := len(values)
	pp := getByteBuf(4 * n)
	defer putByteBuf(pp)
	planes := *pp
	for i, v := range values {
		b := math.Float32bits(float32(v))
		planes[i] = byte(b >> 24)
		planes[n+i] = byte(b >> 16)
		planes[2*n+i] = byte(b >> 8)
		planes[3*n+i] = byte(b)
	}
	sw := sliceWriter{b: dst}
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(&sw)
	if _, err := fw.Write(planes); err != nil {
		flateWriterPool.Put(fw)
		return dst, fmt.Errorf("codec: flate write: %w", err)
	}
	if err := fw.Close(); err != nil {
		flateWriterPool.Put(fw)
		return dst, fmt.Errorf("codec: flate close: %w", err)
	}
	flateWriterPool.Put(fw)
	return sw.b, nil
}

// Decode implements FloatCodec.
func (c PlaneFlate32) Decode(buf []byte, count int) ([]float64, error) {
	out := make([]float64, count)
	if err := c.DecodeInto(buf, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto implements FloatDecoderInto with a pooled inflater.
func (PlaneFlate32) DecodeInto(buf []byte, out []float64) error {
	count := len(out)
	pp := getByteBuf(4 * count)
	defer putByteBuf(pp)
	planes := *pp
	fr := getFlateReader(buf)
	_, err := io.ReadFull(fr.fr, planes)
	putFlateReader(fr)
	if err != nil {
		return fmt.Errorf("codec: flate read: %w", ErrCorrupt)
	}
	n := count
	for i := range out {
		b := uint32(planes[i])<<24 | uint32(planes[n+i])<<16 |
			uint32(planes[2*n+i])<<8 | uint32(planes[3*n+i])
		out[i] = float64(math.Float32frombits(b))
	}
	return nil
}

// XOR32 is a Gorilla-style XOR compressor over float32 bit patterns: each
// value is XORed with its predecessor and encoded as either a single 0 bit
// (identical), or a control code with leading-zero count and the meaningful
// XOR bits. Works well when consecutive model values are similar in scale.
type XOR32 struct{}

var _ FloatCodec = XOR32{}

// Name implements FloatCodec.
func (XOR32) Name() string { return "xor32" }

// Encode implements FloatCodec.
func (c XOR32) Encode(values []float64) ([]byte, error) {
	return c.AppendEncode(nil, values)
}

// AppendEncode implements FloatAppender.
func (XOR32) AppendEncode(dst []byte, values []float64) ([]byte, error) {
	w := BitWriter{buf: dst}
	var prev uint32
	for i, v := range values {
		cur := math.Float32bits(float32(v))
		if i == 0 {
			w.WriteBits(uint64(cur), 32)
			prev = cur
			continue
		}
		x := cur ^ prev
		prev = cur
		if x == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		lead := uint(bits.LeadingZeros32(x))
		if lead > 31 {
			lead = 31
		}
		sig := 32 - lead // number of significant bits
		w.WriteBits(uint64(lead), 5)
		w.WriteBits(uint64(x), sig)
	}
	return w.Bytes(), nil
}

// Decode implements FloatCodec.
func (c XOR32) Decode(buf []byte, count int) ([]float64, error) {
	if count == 0 {
		return nil, nil
	}
	out := make([]float64, count)
	if err := c.DecodeInto(buf, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto implements FloatDecoderInto.
func (XOR32) DecodeInto(buf []byte, out []float64) error {
	if len(out) == 0 {
		return nil
	}
	r := BitReader{buf: buf}
	first, err := r.ReadBits(32)
	if err != nil {
		return err
	}
	prev := uint32(first)
	out[0] = float64(math.Float32frombits(prev))
	for i := 1; i < len(out); i++ {
		b, err := r.ReadBit()
		if err != nil {
			return err
		}
		if b == 0 {
			out[i] = float64(math.Float32frombits(prev))
			continue
		}
		lead, err := r.ReadBits(5)
		if err != nil {
			return err
		}
		sig := 32 - uint(lead)
		x, err := r.ReadBits(sig)
		if err != nil {
			return err
		}
		prev ^= uint32(x)
		out[i] = float64(math.Float32frombits(prev))
	}
	return nil
}
