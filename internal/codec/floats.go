package codec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
)

// FloatCodec encodes a vector of model values for the wire. Models are
// trained in float64 but transmitted as float32, matching the paper's setup
// (PyTorch float32 tensors compressed with fpzip); all codecs here therefore
// quantize to float32 before encoding, and decoding returns the float32
// values widened back to float64.
type FloatCodec interface {
	// Name identifies the codec on the wire.
	Name() string
	// Encode returns the encoded representation of values.
	Encode(values []float64) ([]byte, error)
	// Decode recovers exactly count values from buf.
	Decode(buf []byte, count int) ([]float64, error)
}

// FloatCodecByName returns the codec registered under name:
// "raw32", "flate32" (byte-plane + DEFLATE, the fpzip stand-in), "xor32"
// (Gorilla-style XOR with leading/trailing-zero headers).
func FloatCodecByName(name string) (FloatCodec, error) {
	switch name {
	case "raw32":
		return Raw32{}, nil
	case "flate32":
		return PlaneFlate32{}, nil
	case "xor32":
		return XOR32{}, nil
	default:
		return nil, fmt.Errorf("codec: unknown float codec %q", name)
	}
}

// Raw32 stores values as little-endian IEEE-754 float32.
type Raw32 struct{}

var _ FloatCodec = Raw32{}

// Name implements FloatCodec.
func (Raw32) Name() string { return "raw32" }

// Encode implements FloatCodec.
func (Raw32) Encode(values []float64) ([]byte, error) {
	out := make([]byte, 4*len(values))
	for i, v := range values {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(float32(v)))
	}
	return out, nil
}

// Decode implements FloatCodec.
func (Raw32) Decode(buf []byte, count int) ([]float64, error) {
	if len(buf) < 4*count {
		return nil, fmt.Errorf("codec: raw32 needs %d bytes, have %d: %w", 4*count, len(buf), ErrCorrupt)
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
	}
	return out, nil
}

// PlaneFlate32 transposes float32 values into four byte planes (all sign/
// exponent bytes together, then successively lower mantissa bytes) and
// DEFLATEs the result. Like fpzip it exploits the strong redundancy of
// neural-network weight exponents; unlike fpzip it is built entirely from the
// Go standard library. Lossless with respect to the float32 quantization.
type PlaneFlate32 struct{}

var _ FloatCodec = PlaneFlate32{}

// Name implements FloatCodec.
func (PlaneFlate32) Name() string { return "flate32" }

// Encode implements FloatCodec.
func (PlaneFlate32) Encode(values []float64) ([]byte, error) {
	n := len(values)
	planes := make([]byte, 4*n)
	for i, v := range values {
		b := math.Float32bits(float32(v))
		planes[i] = byte(b >> 24)
		planes[n+i] = byte(b >> 16)
		planes[2*n+i] = byte(b >> 8)
		planes[3*n+i] = byte(b)
	}
	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("codec: flate init: %w", err)
	}
	if _, err := fw.Write(planes); err != nil {
		return nil, fmt.Errorf("codec: flate write: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("codec: flate close: %w", err)
	}
	return out.Bytes(), nil
}

// Decode implements FloatCodec.
func (PlaneFlate32) Decode(buf []byte, count int) ([]float64, error) {
	fr := flate.NewReader(bytes.NewReader(buf))
	defer fr.Close()
	planes := make([]byte, 4*count)
	if _, err := io.ReadFull(fr, planes); err != nil {
		return nil, fmt.Errorf("codec: flate read: %w", ErrCorrupt)
	}
	out := make([]float64, count)
	n := count
	for i := range out {
		b := uint32(planes[i])<<24 | uint32(planes[n+i])<<16 |
			uint32(planes[2*n+i])<<8 | uint32(planes[3*n+i])
		out[i] = float64(math.Float32frombits(b))
	}
	return out, nil
}

// XOR32 is a Gorilla-style XOR compressor over float32 bit patterns: each
// value is XORed with its predecessor and encoded as either a single 0 bit
// (identical), or a control code with leading-zero count and the meaningful
// XOR bits. Works well when consecutive model values are similar in scale.
type XOR32 struct{}

var _ FloatCodec = XOR32{}

// Name implements FloatCodec.
func (XOR32) Name() string { return "xor32" }

// Encode implements FloatCodec.
func (XOR32) Encode(values []float64) ([]byte, error) {
	var w BitWriter
	var prev uint32
	for i, v := range values {
		cur := math.Float32bits(float32(v))
		if i == 0 {
			w.WriteBits(uint64(cur), 32)
			prev = cur
			continue
		}
		x := cur ^ prev
		prev = cur
		if x == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		lead := uint(bits.LeadingZeros32(x))
		if lead > 31 {
			lead = 31
		}
		sig := 32 - lead // number of significant bits
		w.WriteBits(uint64(lead), 5)
		w.WriteBits(uint64(x), sig)
	}
	return w.Bytes(), nil
}

// Decode implements FloatCodec.
func (XOR32) Decode(buf []byte, count int) ([]float64, error) {
	if count == 0 {
		return nil, nil
	}
	r := NewBitReader(buf)
	out := make([]float64, count)
	first, err := r.ReadBits(32)
	if err != nil {
		return nil, err
	}
	prev := uint32(first)
	out[0] = float64(math.Float32frombits(prev))
	for i := 1; i < count; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b == 0 {
			out[i] = float64(math.Float32frombits(prev))
			continue
		}
		lead, err := r.ReadBits(5)
		if err != nil {
			return nil, err
		}
		sig := 32 - uint(lead)
		x, err := r.ReadBits(sig)
		if err != nil {
			return nil, err
		}
		prev ^= uint32(x)
		out[i] = float64(math.Float32frombits(prev))
	}
	return out, nil
}
