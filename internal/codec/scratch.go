// scratch.go holds the package's reusable-buffer machinery: optional
// append/into codec interfaces, pooled DEFLATE compressor state, and pooled
// byte-plane scratch. Per-payload allocations in the encode/decode hot path
// (every Share and Aggregate of every node, every simulated round) otherwise
// dominate the engines' allocation profile.
package codec

import (
	"bytes"
	"compress/flate"
	"io"
	"sync"
)

// FloatAppender is implemented by codecs that can append their encoding to a
// caller-owned buffer instead of allocating a fresh one.
type FloatAppender interface {
	// AppendEncode appends the encoding of values to dst (which may be nil or
	// a recycled buffer sliced to length zero) and returns the extended
	// buffer.
	AppendEncode(dst []byte, values []float64) ([]byte, error)
}

// FloatDecoderInto is implemented by codecs that can decode into a
// caller-owned value slice.
type FloatDecoderInto interface {
	// DecodeInto decodes exactly len(out) values from buf into out.
	DecodeInto(buf []byte, out []float64) error
}

// appendEncode routes through FloatAppender when available, falling back to
// a plain Encode plus append.
func appendEncode(fc FloatCodec, dst []byte, values []float64) ([]byte, error) {
	if a, ok := fc.(FloatAppender); ok {
		return a.AppendEncode(dst, values)
	}
	buf, err := fc.Encode(values)
	if err != nil {
		return dst, err
	}
	return append(dst, buf...), nil
}

// decodeInto routes through FloatDecoderInto when available, falling back to
// Decode plus copy.
func decodeInto(fc FloatCodec, buf []byte, out []float64) error {
	if d, ok := fc.(FloatDecoderInto); ok {
		return d.DecodeInto(buf, out)
	}
	vals, err := fc.Decode(buf, len(out))
	if err != nil {
		return err
	}
	copy(out, vals)
	return nil
}

// sliceWriter is an io.Writer appending to a byte slice, so pooled flate
// writers can emit straight into caller-owned buffers.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// byteBufPool recycles the byte-plane scratch used by PlaneFlate32 (4 bytes
// per value, so up to a few MB for large models — well worth pooling).
var byteBufPool = sync.Pool{New: func() any { return new([]byte) }}

// getByteBuf returns a pooled byte slice of length n.
func getByteBuf(n int) *[]byte {
	p := byteBufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putByteBuf(p *[]byte) { byteBufPool.Put(p) }

// flateWriterPool recycles DEFLATE compressors: flate.NewWriter allocates
// hundreds of kilobytes of window state per call.
var flateWriterPool = sync.Pool{New: func() any {
	fw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		panic(err) // BestSpeed is a valid level; unreachable
	}
	return fw
}}

// flateReader pairs a reusable flate inflater with its reusable source.
type flateReader struct {
	src bytes.Reader
	fr  io.ReadCloser
}

var flateReaderPool = sync.Pool{New: func() any {
	r := &flateReader{}
	r.fr = flate.NewReader(&r.src)
	return r
}}

// getFlateReader returns a pooled inflater reset to read buf.
func getFlateReader(buf []byte) *flateReader {
	r := flateReaderPool.Get().(*flateReader)
	r.src.Reset(buf)
	// flate.NewReader's concrete type always implements Resetter.
	r.fr.(flate.Resetter).Reset(&r.src, nil)
	return r
}

func putFlateReader(r *flateReader) { flateReaderPool.Put(r) }
