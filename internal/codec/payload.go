package codec

import (
	"encoding/binary"
	"fmt"

	"repro/internal/vec"
)

// IndexMode says how a sparse vector's support is described on the wire.
type IndexMode uint8

// Index modes.
const (
	// IndexDense means all of [0, Dim) is present: no index metadata at all
	// (full-sharing).
	IndexDense IndexMode = iota
	// IndexGamma carries explicit sorted indices, delta + Elias gamma encoded
	// (JWINS, TopK, CHOCO).
	IndexGamma
	// IndexSeed carries only a PRNG seed and a count; the receiver
	// regenerates the index set (random-sampling baseline). This is the
	// "just share the seed" optimization described in the paper.
	IndexSeed
)

// SparseVector is a subset of coefficients of a Dim-dimensional vector.
// Exactly one support description is used depending on the index mode:
// Indices for explicit supports, or (Seed, len(Values)) for seeded supports.
type SparseVector struct {
	Dim     int
	Indices []int // strictly increasing; nil for dense or seeded vectors
	Seed    uint64
	Values  []float64
}

// SeededIndices regenerates the index set for a seeded sparse vector. Both
// sender and receiver call this, so it must stay deterministic across
// releases: it uses the repository's own RNG, not math/rand.
func SeededIndices(seed uint64, dim, count int) []int {
	r := vec.NewRNG(seed)
	return r.SampleWithoutReplacement(dim, count)
}

// floatCodecID maps codecs to wire IDs.
func floatCodecID(c FloatCodec) (uint8, error) {
	switch c.(type) {
	case Raw32:
		return 0, nil
	case PlaneFlate32:
		return 1, nil
	case XOR32:
		return 2, nil
	case *QSGD:
		return 3, nil
	default:
		return 0, fmt.Errorf("codec: unregistered float codec %q", c.Name())
	}
}

func floatCodecFromID(id uint8) (FloatCodec, error) {
	switch id {
	case 0:
		return Raw32{}, nil
	case 1:
		return PlaneFlate32{}, nil
	case 2:
		return XOR32{}, nil
	case 3:
		// QSGD payloads are self-describing (levels travel in the value
		// header), so decoding needs no construction parameters.
		return NewQSGD(0, 0), nil
	default:
		return nil, fmt.Errorf("codec: unknown float codec id %d: %w", id, ErrCorrupt)
	}
}

// ByteBreakdown splits an encoded payload into the bytes spent on model
// values versus sparsification metadata (header + index description). The
// paper's Figures 4, 9 and 10 plot exactly this split.
type ByteBreakdown struct {
	Model int
	Meta  int
}

// Total returns Model + Meta.
func (b ByteBreakdown) Total() int { return b.Model + b.Meta }

// Add accumulates another breakdown.
func (b *ByteBreakdown) Add(o ByteBreakdown) {
	b.Model += o.Model
	b.Meta += o.Meta
}

// EncodeScratch holds the reusable intermediate buffers of EncodeSparseWith.
// The zero value is ready; each owner (one per node) amortizes the value and
// index encoding scratch across every round of a run. The returned payload
// itself is always freshly allocated — payloads outlive the call (inboxes,
// rejoin caches, in-flight messages), so only the intermediates are reused.
type EncodeScratch struct {
	vals []byte
	idx  []byte
}

// EncodeSparse serializes sv using the given index mode and float codec.
//
// Wire format (little endian):
//
//	u8  indexMode | u8 floatCodecID | u32 dim | u32 count
//	[seed u64]                      (IndexSeed only)
//	[u32 indexByteLen | bytes]      (IndexGamma only)
//	u32 valueByteLen | bytes
func EncodeSparse(sv SparseVector, mode IndexMode, fc FloatCodec) ([]byte, ByteBreakdown, error) {
	var s EncodeScratch
	return EncodeSparseWith(&s, sv, mode, fc)
}

// EncodeSparseWith is EncodeSparse with caller-owned scratch: the value and
// index encodings are staged in s and copied once into an exact-size payload,
// so a warm scratch leaves the payload allocation as the call's only one.
func EncodeSparseWith(s *EncodeScratch, sv SparseVector, mode IndexMode, fc FloatCodec) ([]byte, ByteBreakdown, error) {
	var bd ByteBreakdown
	cid, err := floatCodecID(fc)
	if err != nil {
		return nil, bd, err
	}
	count := len(sv.Values)
	switch mode {
	case IndexDense:
		if count != sv.Dim {
			return nil, bd, fmt.Errorf("codec: dense payload has %d values for dim %d", count, sv.Dim)
		}
	case IndexGamma:
		if len(sv.Indices) != count {
			return nil, bd, fmt.Errorf("codec: %d indices for %d values", len(sv.Indices), count)
		}
	case IndexSeed:
		// Support is implied by (seed, count).
	default:
		return nil, bd, fmt.Errorf("codec: unknown index mode %d", mode)
	}

	s.vals, err = appendEncode(fc, s.vals[:0], sv.Values)
	if err != nil {
		return nil, bd, fmt.Errorf("codec: value encoding: %w", err)
	}
	valueBytes := s.vals
	var idxBytes []byte
	if mode == IndexGamma {
		s.idx, err = AppendIndicesGamma(s.idx[:0], sv.Indices)
		if err != nil {
			return nil, bd, err
		}
		idxBytes = s.idx
	}

	size := 10 + 4 + len(valueBytes)
	switch mode {
	case IndexGamma:
		size += 4 + len(idxBytes)
	case IndexSeed:
		size += 8
	}
	out := make([]byte, 0, size)
	out = append(out, byte(mode), cid)
	out = appendU32(out, uint32(sv.Dim))
	out = appendU32(out, uint32(count))
	switch mode {
	case IndexGamma:
		out = appendU32(out, uint32(len(idxBytes)))
		out = append(out, idxBytes...)
	case IndexSeed:
		var seedBuf [8]byte
		binary.LittleEndian.PutUint64(seedBuf[:], sv.Seed)
		out = append(out, seedBuf[:]...)
	}
	metaLen := len(out) + 4 // header + index part + value-length field
	out = appendU32(out, uint32(len(valueBytes)))
	out = append(out, valueBytes...)
	bd = ByteBreakdown{Model: len(valueBytes), Meta: metaLen}
	return out, bd, nil
}

// DecodeSparse parses a payload produced by EncodeSparse. For IndexSeed
// payloads the index set is regenerated, so sv.Indices is always populated
// (except for dense payloads, where it stays nil).
func DecodeSparse(buf []byte) (SparseVector, error) {
	var sv SparseVector
	if err := DecodeSparseInto(&sv, buf); err != nil {
		return SparseVector{}, err
	}
	return sv, nil
}

// DecodeSparseInto is DecodeSparse reusing sv's Indices and Values capacity,
// so a node can decode every neighbor payload of a round into warm scratch.
// Dense payloads reset Indices to nil (the same convention as DecodeSparse).
// On error sv is left in an unspecified state.
func DecodeSparseInto(sv *SparseVector, buf []byte) error {
	if len(buf) < 10 {
		return fmt.Errorf("codec: payload too short: %w", ErrCorrupt)
	}
	mode := IndexMode(buf[0])
	fc, err := floatCodecFromID(buf[1])
	if err != nil {
		return err
	}
	sv.Dim = int(binary.LittleEndian.Uint32(buf[2:]))
	count := int(binary.LittleEndian.Uint32(buf[6:]))
	// count can never legitimately exceed the vector dimension; reject here,
	// before any count-sized work (seeded index regeneration, value buffers),
	// so a corrupt header yields ErrCorrupt instead of a huge allocation.
	if count > sv.Dim {
		return fmt.Errorf("codec: count %d exceeds dim %d: %w", count, sv.Dim, ErrCorrupt)
	}
	sv.Seed = 0
	sv.Indices = sv.Indices[:0]
	pos := 10
	switch mode {
	case IndexDense:
		if count != sv.Dim {
			return fmt.Errorf("codec: dense count %d != dim %d: %w", count, sv.Dim, ErrCorrupt)
		}
		sv.Indices = nil
	case IndexGamma:
		if len(buf) < pos+4 {
			return fmt.Errorf("codec: truncated index length: %w", ErrCorrupt)
		}
		idxLen := int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		if len(buf) < pos+idxLen {
			return fmt.Errorf("codec: truncated index bytes: %w", ErrCorrupt)
		}
		sv.Indices, err = AppendDecodeIndicesGamma(sv.Indices, buf[pos:pos+idxLen], count)
		if err != nil {
			return err
		}
		// Decoded indices are strictly increasing, so the last one bounds them
		// all; one out of range would panic in the receiver's scatter.
		if count > 0 && sv.Indices[count-1] >= sv.Dim {
			return fmt.Errorf("codec: index %d exceeds dim %d: %w", sv.Indices[count-1], sv.Dim, ErrCorrupt)
		}
		pos += idxLen
	case IndexSeed:
		if len(buf) < pos+8 {
			return fmt.Errorf("codec: truncated seed: %w", ErrCorrupt)
		}
		sv.Seed = binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
	default:
		return fmt.Errorf("codec: unknown index mode %d: %w", mode, ErrCorrupt)
	}
	if len(buf) < pos+4 {
		return fmt.Errorf("codec: truncated value length: %w", ErrCorrupt)
	}
	valLen := int(binary.LittleEndian.Uint32(buf[pos:]))
	pos += 4
	if len(buf) < pos+valLen {
		return fmt.Errorf("codec: truncated values: %w", ErrCorrupt)
	}
	// Each codec has a hard lower bound on encoded bytes per value; a value
	// section too small for the claimed count is corrupt, and rejecting it
	// here keeps the value-buffer allocation behind real evidence.
	if need, ok := minValueBytes(fc, count); ok && valLen < need {
		return fmt.Errorf("codec: %d value bytes cannot hold %d %s values: %w", valLen, count, fc.Name(), ErrCorrupt)
	}
	// Seeded index regeneration is count-sized work, so it waits until the
	// value section has passed every structural check: a corrupt seeded header
	// must fail cheaply, not after rebuilding a huge index set.
	if mode == IndexSeed {
		sv.Indices = SeededIndices(sv.Seed, sv.Dim, count)
	}
	if cap(sv.Values) < count {
		sv.Values = make([]float64, count)
	} else {
		sv.Values = sv.Values[:count]
	}
	return decodeInto(fc, buf[pos:pos+valLen], sv.Values)
}

// minValueBytes returns a codec's hard minimum encoded size for count values
// (ok=false when no such bound exists — QSGD legitimately encodes any number
// of zeros as a bare 8-byte header).
func minValueBytes(fc FloatCodec, count int) (int, bool) {
	if count == 0 {
		return 0, true
	}
	switch fc.(type) {
	case Raw32:
		return 4 * count, true
	case XOR32:
		// 32 bits for the first value, then at least one bit per value.
		return (32 + (count - 1) + 7) / 8, true
	case PlaneFlate32:
		// DEFLATE expands 4*count plane bytes by at most ~1032:1 (258-byte
		// matches, 1-bit minimum codes).
		return 4 * count / 1032, true
	default:
		return 0, false
	}
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}
