package codec

import (
	"encoding/binary"
	"fmt"

	"repro/internal/vec"
)

// IndexMode says how a sparse vector's support is described on the wire.
type IndexMode uint8

// Index modes.
const (
	// IndexDense means all of [0, Dim) is present: no index metadata at all
	// (full-sharing).
	IndexDense IndexMode = iota
	// IndexGamma carries explicit sorted indices, delta + Elias gamma encoded
	// (JWINS, TopK, CHOCO).
	IndexGamma
	// IndexSeed carries only a PRNG seed and a count; the receiver
	// regenerates the index set (random-sampling baseline). This is the
	// "just share the seed" optimization described in the paper.
	IndexSeed
)

// SparseVector is a subset of coefficients of a Dim-dimensional vector.
// Exactly one support description is used depending on the index mode:
// Indices for explicit supports, or (Seed, len(Values)) for seeded supports.
type SparseVector struct {
	Dim     int
	Indices []int // strictly increasing; nil for dense or seeded vectors
	Seed    uint64
	Values  []float64
}

// SeededIndices regenerates the index set for a seeded sparse vector. Both
// sender and receiver call this, so it must stay deterministic across
// releases: it uses the repository's own RNG, not math/rand.
func SeededIndices(seed uint64, dim, count int) []int {
	r := vec.NewRNG(seed)
	return r.SampleWithoutReplacement(dim, count)
}

// floatCodecID maps codecs to wire IDs.
func floatCodecID(c FloatCodec) (uint8, error) {
	switch c.(type) {
	case Raw32:
		return 0, nil
	case PlaneFlate32:
		return 1, nil
	case XOR32:
		return 2, nil
	case *QSGD:
		return 3, nil
	default:
		return 0, fmt.Errorf("codec: unregistered float codec %q", c.Name())
	}
}

func floatCodecFromID(id uint8) (FloatCodec, error) {
	switch id {
	case 0:
		return Raw32{}, nil
	case 1:
		return PlaneFlate32{}, nil
	case 2:
		return XOR32{}, nil
	case 3:
		// QSGD payloads are self-describing (levels travel in the value
		// header), so decoding needs no construction parameters.
		return NewQSGD(0, 0), nil
	default:
		return nil, fmt.Errorf("codec: unknown float codec id %d: %w", id, ErrCorrupt)
	}
}

// ByteBreakdown splits an encoded payload into the bytes spent on model
// values versus sparsification metadata (header + index description). The
// paper's Figures 4, 9 and 10 plot exactly this split.
type ByteBreakdown struct {
	Model int
	Meta  int
}

// Total returns Model + Meta.
func (b ByteBreakdown) Total() int { return b.Model + b.Meta }

// Add accumulates another breakdown.
func (b *ByteBreakdown) Add(o ByteBreakdown) {
	b.Model += o.Model
	b.Meta += o.Meta
}

// EncodeSparse serializes sv using the given index mode and float codec.
//
// Wire format (little endian):
//
//	u8  indexMode | u8 floatCodecID | u32 dim | u32 count
//	[seed u64]                      (IndexSeed only)
//	[u32 indexByteLen | bytes]      (IndexGamma only)
//	u32 valueByteLen | bytes
func EncodeSparse(sv SparseVector, mode IndexMode, fc FloatCodec) ([]byte, ByteBreakdown, error) {
	var bd ByteBreakdown
	cid, err := floatCodecID(fc)
	if err != nil {
		return nil, bd, err
	}
	count := len(sv.Values)
	switch mode {
	case IndexDense:
		if count != sv.Dim {
			return nil, bd, fmt.Errorf("codec: dense payload has %d values for dim %d", count, sv.Dim)
		}
	case IndexGamma:
		if len(sv.Indices) != count {
			return nil, bd, fmt.Errorf("codec: %d indices for %d values", len(sv.Indices), count)
		}
	case IndexSeed:
		// Support is implied by (seed, count).
	default:
		return nil, bd, fmt.Errorf("codec: unknown index mode %d", mode)
	}

	valueBytes, err := fc.Encode(sv.Values)
	if err != nil {
		return nil, bd, fmt.Errorf("codec: value encoding: %w", err)
	}

	out := make([]byte, 0, len(valueBytes)+32)
	out = append(out, byte(mode), cid)
	out = appendU32(out, uint32(sv.Dim))
	out = appendU32(out, uint32(count))
	switch mode {
	case IndexGamma:
		idxBytes, err := EncodeIndicesGamma(sv.Indices)
		if err != nil {
			return nil, bd, err
		}
		out = appendU32(out, uint32(len(idxBytes)))
		out = append(out, idxBytes...)
	case IndexSeed:
		var seedBuf [8]byte
		binary.LittleEndian.PutUint64(seedBuf[:], sv.Seed)
		out = append(out, seedBuf[:]...)
	}
	metaLen := len(out) + 4 // header + index part + value-length field
	out = appendU32(out, uint32(len(valueBytes)))
	out = append(out, valueBytes...)
	bd = ByteBreakdown{Model: len(valueBytes), Meta: metaLen}
	return out, bd, nil
}

// DecodeSparse parses a payload produced by EncodeSparse. For IndexSeed
// payloads the index set is regenerated, so sv.Indices is always populated
// (except for dense payloads, where it stays nil).
func DecodeSparse(buf []byte) (SparseVector, error) {
	var sv SparseVector
	if len(buf) < 10 {
		return sv, fmt.Errorf("codec: payload too short: %w", ErrCorrupt)
	}
	mode := IndexMode(buf[0])
	fc, err := floatCodecFromID(buf[1])
	if err != nil {
		return sv, err
	}
	sv.Dim = int(binary.LittleEndian.Uint32(buf[2:]))
	count := int(binary.LittleEndian.Uint32(buf[6:]))
	pos := 10
	switch mode {
	case IndexDense:
		if count != sv.Dim {
			return sv, fmt.Errorf("codec: dense count %d != dim %d: %w", count, sv.Dim, ErrCorrupt)
		}
	case IndexGamma:
		if len(buf) < pos+4 {
			return sv, fmt.Errorf("codec: truncated index length: %w", ErrCorrupt)
		}
		idxLen := int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		if len(buf) < pos+idxLen {
			return sv, fmt.Errorf("codec: truncated index bytes: %w", ErrCorrupt)
		}
		sv.Indices, err = DecodeIndicesGamma(buf[pos:pos+idxLen], count)
		if err != nil {
			return sv, err
		}
		pos += idxLen
	case IndexSeed:
		if len(buf) < pos+8 {
			return sv, fmt.Errorf("codec: truncated seed: %w", ErrCorrupt)
		}
		sv.Seed = binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		sv.Indices = SeededIndices(sv.Seed, sv.Dim, count)
	default:
		return sv, fmt.Errorf("codec: unknown index mode %d: %w", mode, ErrCorrupt)
	}
	if len(buf) < pos+4 {
		return sv, fmt.Errorf("codec: truncated value length: %w", ErrCorrupt)
	}
	valLen := int(binary.LittleEndian.Uint32(buf[pos:]))
	pos += 4
	if len(buf) < pos+valLen {
		return sv, fmt.Errorf("codec: truncated values: %w", ErrCorrupt)
	}
	sv.Values, err = fc.Decode(buf[pos:pos+valLen], count)
	if err != nil {
		return sv, err
	}
	return sv, nil
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}
