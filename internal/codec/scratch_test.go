package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/vec"
)

func randomValues(n int, seed uint64) []float64 {
	r := vec.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.NormFloat64()
	}
	return out
}

// TestAppendEncodeMatchesEncode: the append-variants must be byte-identical
// to the allocating entry points for every codec, including when appending
// after existing content.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	vals := randomValues(513, 7)
	for _, fc := range []FloatCodec{Raw32{}, PlaneFlate32{}, XOR32{}} {
		plain, err := fc.Encode(vals)
		if err != nil {
			t.Fatalf("%s: %v", fc.Name(), err)
		}
		appended, err := fc.(FloatAppender).AppendEncode([]byte("prefix"), vals)
		if err != nil {
			t.Fatalf("%s: %v", fc.Name(), err)
		}
		if !bytes.HasPrefix(appended, []byte("prefix")) {
			t.Fatalf("%s: AppendEncode clobbered the prefix", fc.Name())
		}
		if !bytes.Equal(appended[len("prefix"):], plain) {
			t.Fatalf("%s: AppendEncode differs from Encode", fc.Name())
		}
	}
}

// TestDecodeIntoMatchesDecode: DecodeInto into dirty scratch must reproduce
// Decode exactly for every codec (QSGD included — it is deterministic given
// a fixed encoded buffer).
func TestDecodeIntoMatchesDecode(t *testing.T) {
	vals := randomValues(257, 9)
	q := NewQSGD(64, 5)
	for _, fc := range []FloatCodec{Raw32{}, PlaneFlate32{}, XOR32{}, q} {
		buf, err := fc.Encode(vals)
		if err != nil {
			t.Fatalf("%s: %v", fc.Name(), err)
		}
		want, err := fc.Decode(buf, len(vals))
		if err != nil {
			t.Fatalf("%s: %v", fc.Name(), err)
		}
		got := make([]float64, len(vals))
		for i := range got {
			got[i] = math.Inf(1) // dirty scratch
		}
		if err := fc.(FloatDecoderInto).DecodeInto(buf, got); err != nil {
			t.Fatalf("%s: %v", fc.Name(), err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: value %d: DecodeInto %v != Decode %v", fc.Name(), i, got[i], want[i])
			}
		}
	}
}

// TestEncodeSparseWithScratchReuse: repeated encodes through one scratch must
// keep producing payloads identical to the scratch-free path, across modes
// and changing sizes (shrinking and growing reuse).
func TestEncodeSparseWithScratchReuse(t *testing.T) {
	var s EncodeScratch
	r := vec.NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		dim := 200 + r.Intn(800)
		k := 1 + r.Intn(dim)
		idx := vec.NewRNG(uint64(trial)).SampleWithoutReplacement(dim, k)
		vals := randomValues(k, uint64(trial)*3+1)
		sv := SparseVector{Dim: dim, Indices: idx, Values: vals}
		want, wantBD, err := EncodeSparse(sv, IndexGamma, PlaneFlate32{})
		if err != nil {
			t.Fatal(err)
		}
		got, gotBD, err := EncodeSparseWith(&s, sv, IndexGamma, PlaneFlate32{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) || wantBD != gotBD {
			t.Fatalf("trial %d: scratch encode differs (bd %+v vs %+v)", trial, gotBD, wantBD)
		}
	}
}

// TestDecodeSparseIntoScratchReuse: one SparseVector decoded repeatedly from
// payloads of different shapes (gamma, dense, seeded) must always match the
// fresh DecodeSparse result.
func TestDecodeSparseIntoScratchReuse(t *testing.T) {
	const dim = 300
	dense := SparseVector{Dim: dim, Values: randomValues(dim, 1)}
	idx := vec.NewRNG(2).SampleWithoutReplacement(dim, 40)
	sparse := SparseVector{Dim: dim, Indices: idx, Values: randomValues(40, 3)}
	seeded := SparseVector{Dim: dim, Seed: 99, Values: randomValues(25, 4)}

	bufDense, _, err := EncodeSparse(dense, IndexDense, Raw32{})
	if err != nil {
		t.Fatal(err)
	}
	bufSparse, _, err := EncodeSparse(sparse, IndexGamma, PlaneFlate32{})
	if err != nil {
		t.Fatal(err)
	}
	bufSeeded, _, err := EncodeSparse(seeded, IndexSeed, Raw32{})
	if err != nil {
		t.Fatal(err)
	}

	var sv SparseVector
	for trial := 0; trial < 3; trial++ { // cycle so every shape follows every other
		for _, buf := range [][]byte{bufSparse, bufDense, bufSeeded, bufDense} {
			want, err := DecodeSparse(buf)
			if err != nil {
				t.Fatal(err)
			}
			if err := DecodeSparseInto(&sv, buf); err != nil {
				t.Fatal(err)
			}
			if sv.Dim != want.Dim || sv.Seed != want.Seed {
				t.Fatalf("header differs: %+v vs %+v", sv, want)
			}
			if (sv.Indices == nil) != (want.Indices == nil) || len(sv.Indices) != len(want.Indices) {
				t.Fatalf("index shape differs: %v vs %v", sv.Indices, want.Indices)
			}
			for i := range want.Indices {
				if sv.Indices[i] != want.Indices[i] {
					t.Fatalf("index %d differs", i)
				}
			}
			if len(sv.Values) != len(want.Values) {
				t.Fatalf("value count differs: %d vs %d", len(sv.Values), len(want.Values))
			}
			for i := range want.Values {
				if sv.Values[i] != want.Values[i] {
					t.Fatalf("value %d differs: %v vs %v", i, sv.Values[i], want.Values[i])
				}
			}
		}
	}
}

// TestDecodeSparseRejectsAbsurdHeaders: corrupt count/dim headers must yield
// ErrCorrupt before any count-sized allocation — a hostile payload (cluster
// sockets, on-disk traces) must not OOM the decoder.
func TestDecodeSparseRejectsAbsurdHeaders(t *testing.T) {
	legit, _, err := EncodeSparse(SparseVector{Dim: 8, Values: randomValues(8, 1)}, IndexDense, Raw32{})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), legit...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"count>dim": corrupt(func(b []byte) {
			b[6], b[7], b[8], b[9] = 0xF0, 0xFF, 0xFF, 0x7F // count ~2^31
		}),
		"dense giant dim tiny values": corrupt(func(b []byte) {
			// dim = count = 2^28 but the value section stays 32 bytes.
			b[2], b[3], b[4], b[5] = 0, 0, 0, 0x10
			b[6], b[7], b[8], b[9] = 0, 0, 0, 0x10
		}),
	}
	for name, buf := range cases {
		if _, err := DecodeSparse(buf); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// TestAppendDecodeIndicesGamma round-trips through dirty scratch.
func TestAppendDecodeIndicesGamma(t *testing.T) {
	idx := []int{0, 3, 4, 100, 101, 4095}
	buf, err := AppendIndicesGamma(nil, idx)
	if err != nil {
		t.Fatal(err)
	}
	scratch := []int{9, 9, 9}
	got, err := AppendDecodeIndicesGamma(scratch[:0], buf, len(idx))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(idx) {
		t.Fatalf("len %d != %d", len(got), len(idx))
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("index %d: %d != %d", i, got[i], idx[i])
		}
	}
}

// TestDecodeHotPathAllocationFree: with warm scratch, the raw32 sparse decode
// (the repository's own pipeline, no compress/flate internals) must not
// allocate at all, and the flate32 path must stay within the handful of
// allocations compress/flate's inflater makes per dynamic block.
func TestDecodeHotPathAllocationFree(t *testing.T) {
	const dim = 4096
	idx := vec.NewRNG(5).SampleWithoutReplacement(dim, dim/3)
	vals := randomValues(dim/3, 6)
	sv := SparseVector{Dim: dim, Indices: idx, Values: vals}
	buf, _, err := EncodeSparse(sv, IndexGamma, Raw32{})
	if err != nil {
		t.Fatal(err)
	}
	var dst SparseVector
	if err := DecodeSparseInto(&dst, buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeSparseInto(&dst, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("raw32 DecodeSparseInto allocates %v per op, want 0", allocs)
	}
}
