package vec

import "math"

// RNG is a small, fast, deterministic random number generator
// (xoshiro256** seeded through SplitMix64). Every node, dataset generator,
// and topology builder owns its own RNG so that experiments are exactly
// reproducible from a single root seed, independent of goroutine scheduling.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for NormFloat64 (Box-Muller produces pairs)
	haveSpare bool
	spare     float64
}

// SplitMix64 advances a SplitMix64 state and returns the next value.
// It is exported because seed-derivation for wire-level seeded sparsification
// (random-sampling baseline) must match on sender and receiver.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed via SplitMix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	st := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&st)
	}
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child generator. The child stream is a pure
// function of the parent state at the time of the call, so splitting in a
// fixed order yields reproducible per-node streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("vec: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded integers.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	return aHi*bHi + w2 + (w1 >> 32), a * b
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a standard normal deviate (polar Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			f := math.Sqrt(-2 * math.Log(s) / s)
			r.spare = v * f
			r.haveSpare = true
			return u * f
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place (Fisher-Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// SampleWithoutReplacement returns k distinct uniform indices from [0, n) in
// increasing order. It panics if k > n or k < 0.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("vec: sample size out of range")
	}
	// Partial Fisher-Yates over a dense index array: O(n) memory but simple
	// and exact; n here is the model dimension (at most a few million).
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := idx[:k]
	sortInts(out)
	return out
}

// sortInts is an insertion/heap-free quicksort for ints. Kept local to avoid
// pulling package sort into this hot path with interface conversions.
func sortInts(a []int) {
	if len(a) < 2 {
		return
	}
	if len(a) < 16 {
		for i := 1; i < len(a); i++ {
			for j := i; j > 0 && a[j] < a[j-1]; j-- {
				a[j], a[j-1] = a[j-1], a[j]
			}
		}
		return
	}
	pivot := a[len(a)/2]
	left, right := 0, len(a)-1
	for left <= right {
		for a[left] < pivot {
			left++
		}
		for a[right] > pivot {
			right--
		}
		if left <= right {
			a[left], a[right] = a[right], a[left]
			left++
			right--
		}
	}
	sortInts(a[:right+1])
	sortInts(a[left:])
}
