// Package vec provides flat float64 vector math and deterministic random
// number generation used throughout the repository. Decentralized learning
// algorithms in this codebase treat models as flat parameter vectors, so
// these primitives are on the hot path of every training round.
package vec

import (
	"fmt"
	"math"
)

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Add computes dst[i] += src[i]. It panics if lengths differ.
func Add(dst, src []float64) {
	mustSameLen(len(dst), len(src))
	for i, v := range src {
		dst[i] += v
	}
}

// Sub computes dst[i] -= src[i]. It panics if lengths differ.
func Sub(dst, src []float64) {
	mustSameLen(len(dst), len(src))
	for i, v := range src {
		dst[i] -= v
	}
}

// AXPY computes dst[i] += a*src[i]. It panics if lengths differ.
func AXPY(a float64, dst, src []float64) {
	mustSameLen(len(dst), len(src))
	for i, v := range src {
		dst[i] += a * v
	}
}

// Scale multiplies every element of x by a.
func Scale(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

// Diff returns a new vector a-b. It panics if lengths differ.
func Diff(a, b []float64) []float64 {
	out := make([]float64, len(a))
	DiffInto(out, a, b)
	return out
}

// DiffInto computes dst[i] = a[i] - b[i] without allocating. It panics if
// lengths differ. dst may alias a or b.
func DiffInto(dst, a, b []float64) {
	mustSameLen(len(a), len(b))
	mustSameLen(len(dst), len(a))
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// Dot returns the inner product of a and b. It panics if lengths differ.
func Dot(a, b []float64) float64 {
	mustSameLen(len(a), len(b))
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// MSE returns the mean squared error between a and b.
// It panics if lengths differ or if both are empty.
func MSE(a, b []float64) float64 {
	mustSameLen(len(a), len(b))
	if len(a) == 0 {
		panic("vec: MSE of empty vectors")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

// MaxAbs returns the maximum absolute value in x (0 for empty x).
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty vector.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("vec: length mismatch %d != %d", a, b))
	}
}
