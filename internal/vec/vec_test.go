package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCloneIndependence(t *testing.T) {
	x := []float64{1, 2, 3}
	y := Clone(x)
	y[0] = 99
	if x[0] != 1 {
		t.Fatalf("Clone aliases the input: x=%v", x)
	}
}

func TestAddSubAXPY(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	Add(a, b)
	want := []float64{11, 22, 33}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("Add: got %v want %v", a, want)
		}
	}
	Sub(a, b)
	for i, w := range []float64{1, 2, 3} {
		if a[i] != w {
			t.Fatalf("Sub: got %v", a)
		}
	}
	AXPY(2, a, b)
	for i, w := range []float64{21, 42, 63} {
		if a[i] != w {
			t.Fatalf("AXPY: got %v", a)
		}
	}
}

func TestDotNormMSE(t *testing.T) {
	a := []float64{3, 4}
	if got := Dot(a, a); got != 25 {
		t.Fatalf("Dot = %v, want 25", got)
	}
	if got := Norm2(a); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	b := []float64{0, 0}
	if got := MSE(a, b); got != 12.5 {
		t.Fatalf("MSE = %v, want 12.5", got)
	}
}

func TestDiffScaleFillZero(t *testing.T) {
	d := Diff([]float64{5, 7}, []float64{2, 3})
	if d[0] != 3 || d[1] != 4 {
		t.Fatalf("Diff = %v", d)
	}
	Scale(d, 10)
	if d[0] != 30 || d[1] != 40 {
		t.Fatalf("Scale = %v", d)
	}
	Fill(d, 1)
	Zero(d)
	if d[0] != 0 || d[1] != 0 {
		t.Fatalf("Zero = %v", d)
	}
}

func TestDiffInto(t *testing.T) {
	a := []float64{5, 7, 9}
	b := []float64{1, 2, 3}
	dst := []float64{-1, -1, -1}
	DiffInto(dst, a, b)
	want := Diff(a, b)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("DiffInto = %v, want %v", dst, want)
		}
	}
	// Aliasing: dst may be one of the operands.
	DiffInto(a, a, b)
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("aliased DiffInto = %v, want %v", a, want)
		}
	}
}

func TestStats(t *testing.T) {
	x := []float64{-4, 1, 3}
	if MaxAbs(x) != 4 {
		t.Fatalf("MaxAbs = %v", MaxAbs(x))
	}
	if Sum(x) != 0 {
		t.Fatalf("Sum = %v", Sum(x))
	}
	if Mean(x) != 0 {
		t.Fatalf("Mean = %v", Mean(x))
	}
	if Mean(nil) != 0 {
		t.Fatalf("Mean(nil) = %v", Mean(nil))
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Add([]float64{1}, []float64{1, 2})
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverge at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produce suspiciously similar streams")
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produce identical first values")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(1)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		// Each bucket expects 10000; allow 10% slack.
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn bucket %d badly skewed: %d/%d", v, c, draws)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(2)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(3)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(4)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(5)
	s := r.SampleWithoutReplacement(50, 20)
	if len(s) != 20 {
		t.Fatalf("len = %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("not strictly increasing: %v", s)
		}
	}
	for _, v := range s {
		if v < 0 || v >= 50 {
			t.Fatalf("out of range: %d", v)
		}
	}
	// Full sample is the identity set.
	full := r.SampleWithoutReplacement(10, 10)
	for i, v := range full {
		if v != i {
			t.Fatalf("full sample missing %d: %v", i, full)
		}
	}
	// Empty sample.
	if got := r.SampleWithoutReplacement(10, 0); len(got) != 0 {
		t.Fatalf("empty sample: %v", got)
	}
}

func TestSampleUniformity(t *testing.T) {
	r := NewRNG(6)
	counts := make([]int, 20)
	const rounds = 20000
	for i := 0; i < rounds; i++ {
		for _, v := range r.SampleWithoutReplacement(20, 5) {
			counts[v]++
		}
	}
	// Each index expects rounds*5/20 = 5000 hits.
	for v, c := range counts {
		if c < 4500 || c > 5500 {
			t.Fatalf("index %d sampled %d times, expected ~5000", v, c)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the SplitMix64 reference implementation.
	st := uint64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := SplitMix64(&st); got != w {
			t.Fatalf("SplitMix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestQuickDiffAddInverse(t *testing.T) {
	f := func(a []float64) bool {
		if len(a) == 0 {
			return true
		}
		b := make([]float64, len(a))
		for i := range b {
			b[i] = float64(i) * 0.5
		}
		d := Diff(a, b)
		Add(d, b)
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
				continue
			}
			if math.Abs(d[i]-a[i]) > 1e-12*(1+math.Abs(a[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
