package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/codec"
	"repro/internal/topology"
	"repro/internal/vec"
)

// TestQuickShareBudgetRespected: for any alpha and model size, the number of
// shared coefficients equals round(alpha * coeffDim) clamped to [1, coeffDim].
func TestQuickShareBudgetRespected(t *testing.T) {
	ds := tinyDataset(t)
	f := func(seed uint64, rawDim uint16, rawAlpha uint8) bool {
		dim := int(rawDim)%2000 + 8
		alpha := (float64(rawAlpha%100) + 1) / 100
		cfg := DefaultJWINSConfig()
		cfg.Alphas = FixedAlpha(alpha)
		cfg.FloatCodec = codec.Raw32{}
		model := &stubModel{params: make([]float64, dim)}
		r := vec.NewRNG(seed)
		for i := range model.params {
			model.params[i] = r.NormFloat64()
		}
		node, err := NewJWINS(0, model, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, cfg, vec.NewRNG(seed))
		if err != nil {
			return false
		}
		payload, _, err := node.Share(0)
		if err != nil {
			return false
		}
		sv, err := codec.DecodeSparse(payload)
		if err != nil {
			return false
		}
		want := int(math.Round(alpha * float64(node.CoeffDim())))
		if want < 1 {
			want = 1
		}
		if want > node.CoeffDim() {
			want = node.CoeffDim()
		}
		return len(sv.Values) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSenderReceiverAgree: whatever the sender selected, the receiver
// decodes exactly those (index, value) pairs — the wire is faithful.
func TestQuickSenderReceiverAgree(t *testing.T) {
	ds := tinyDataset(t)
	f := func(seed uint64, rawDim uint16) bool {
		dim := int(rawDim)%1000 + 8
		cfg := DefaultJWINSConfig()
		cfg.FloatCodec = codec.Raw32{}
		model := &stubModel{params: make([]float64, dim)}
		r := vec.NewRNG(seed)
		for i := range model.params {
			model.params[i] = r.NormFloat64()
		}
		node, err := NewJWINS(0, model, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, cfg, vec.NewRNG(seed))
		if err != nil {
			return false
		}
		payload, _, err := node.Share(0)
		if err != nil {
			return false
		}
		sv, err := codec.DecodeSparse(payload)
		if err != nil {
			return false
		}
		// Decoded indices must match the node's own record of what it shared
		// (nil for dense payloads means "all").
		shared := node.lastShared
		if sv.Indices == nil {
			if len(sv.Values) != node.CoeffDim() {
				return false
			}
			return true
		}
		if len(sv.Indices) != len(shared) {
			return false
		}
		for i := range shared {
			if sv.Indices[i] != shared[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSelfAggregateIsStable: aggregating with no neighbors must leave
// the model unchanged up to float32 wire quantization and DWT round trip,
// for any model content.
func TestQuickSelfAggregateIsStable(t *testing.T) {
	ds := tinyDataset(t)
	f := func(seed uint64, rawDim uint16) bool {
		dim := int(rawDim)%1000 + 8
		cfg := DefaultJWINSConfig()
		cfg.FloatCodec = codec.Raw32{}
		model := &stubModel{params: make([]float64, dim)}
		r := vec.NewRNG(seed)
		for i := range model.params {
			model.params[i] = r.NormFloat64()
		}
		before := vec.Clone(model.params)
		node, err := NewJWINS(0, model, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, cfg, vec.NewRNG(seed))
		if err != nil {
			return false
		}
		if _, _, err := node.Share(0); err != nil {
			return false
		}
		if err := node.Aggregate(0, topology.Weights{Self: 1, Neighbor: map[int]float64{}}, nil); err != nil {
			return false
		}
		after := make([]float64, dim)
		node.Model().CopyParams(after)
		// Self-aggregation = DWT -> weighted average with itself -> IDWT.
		return vec.MSE(before, after) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
