package core

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/datasets"
	"repro/internal/topology"
	"repro/internal/vec"
)

// allocPair builds two connected JWINS nodes over a flat stub model, bypassing
// SGD so only the share/aggregate pipeline runs.
func allocPair(t *testing.T, dim int, fc codec.FloatCodec) (*JWINSNode, *JWINSNode) {
	t.Helper()
	ds := tinyDataset(t)
	rng := vec.NewRNG(3)
	loader := datasets.NewLoader(ds, []int{0, 1, 2, 3}, 2, rng.Split())
	opts := TrainOpts{LR: 0.1, LocalSteps: 1}
	cfg := DefaultJWINSConfig()
	cfg.FloatCodec = fc
	mk := func(id int, seed uint64) *JWINSNode {
		params := make([]float64, dim)
		r := vec.NewRNG(seed)
		for i := range params {
			params[i] = r.NormFloat64()
		}
		n, err := NewJWINS(id, &stubModel{params: params}, loader, opts, cfg, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	return mk(0, 1), mk(1, 2)
}

// TestJWINSHotPathAllocationFree is the zero-allocation acceptance guard: with
// warm per-node scratch and the raw32 codec (no compress/flate internals),
// Aggregate must not allocate at all, and Share must allocate only the
// returned payload (payloads outlive the call, so that one allocation is
// irreducible by design).
func TestJWINSHotPathAllocationFree(t *testing.T) {
	const dim = 20_000
	a, b := allocPair(t, dim, codec.Raw32{})
	if _, _, err := a.Share(0); err != nil {
		t.Fatal(err)
	}
	payload, _, err := b.Share(0)
	if err != nil {
		t.Fatal(err)
	}
	w := topology.Weights{Self: 0.5, Neighbor: map[int]float64{1: 0.5}}
	msgs := map[int][]byte{1: payload}
	if err := a.Aggregate(0, w, msgs); err != nil {
		t.Fatal(err)
	}

	round := 1
	shareAllocs := testing.AllocsPerRun(30, func() {
		if _, _, err := a.Share(round); err != nil {
			t.Fatal(err)
		}
		round++
	})
	// The randomized cut-off resizes the payload every round, so allow the
	// payload allocation plus an occasional scratch growth.
	if shareAllocs > 3 {
		t.Fatalf("Share allocates %v per op with warm scratch, want <= 3 (payload only)", shareAllocs)
	}

	aggAllocs := testing.AllocsPerRun(30, func() {
		if err := a.Aggregate(round, w, msgs); err != nil {
			t.Fatal(err)
		}
	})
	if aggAllocs > 0 {
		t.Fatalf("Aggregate allocates %v per op with warm scratch, want 0", aggAllocs)
	}
}

// TestJWINSBandAdaptiveShareAllocationBudget extends the hot-path guard to
// the band-adaptive selection path: its per-band masses, the selection set,
// and the merged index list all live in per-node scratch, so a warm
// band-adaptive Share must cost no more than the default path — the payload
// plus occasional scratch growth.
func TestJWINSBandAdaptiveShareAllocationBudget(t *testing.T) {
	const dim = 20_000
	ds := tinyDataset(t)
	rng := vec.NewRNG(3)
	loader := datasets.NewLoader(ds, []int{0, 1, 2, 3}, 2, rng.Split())
	cfg := DefaultJWINSConfig()
	cfg.FloatCodec = codec.Raw32{}
	cfg.BandAdaptive = true
	params := make([]float64, dim)
	r := vec.NewRNG(1)
	for i := range params {
		params[i] = r.NormFloat64()
	}
	n, err := NewJWINS(0, &stubModel{params: params}, loader, TrainOpts{LR: 0.1, LocalSteps: 1}, cfg, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	round := 0
	warm := func() {
		m := n.Model().(*stubModel)
		pr := vec.NewRNG(uint64(7000 + round))
		for i := range m.params {
			m.params[i] += 0.01 * pr.NormFloat64()
		}
		if _, _, err := n.Share(round); err != nil {
			t.Fatal(err)
		}
		round++
	}
	warm()
	warm()
	shareAllocs := testing.AllocsPerRun(30, warm)
	// The band path keeps one map for the selection set; Go maps shrink
	// lazily, so allow the same payload + scratch budget as the default path
	// plus occasional bucket churn.
	if shareAllocs > 4 {
		t.Fatalf("band-adaptive Share allocates %v per op with warm scratch, want <= 4", shareAllocs)
	}
}
