package core

import (
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/topology"
	"repro/internal/vec"
)

// stubModel is a Trainable whose training is a no-op; it isolates the
// communication/averaging path for consensus tests.
type stubModel struct {
	params []float64
}

func (s *stubModel) ParamCount() int                                   { return len(s.params) }
func (s *stubModel) CopyParams(dst []float64)                          { copy(dst, s.params) }
func (s *stubModel) SetParams(src []float64)                           { copy(s.params, src) }
func (s *stubModel) TrainBatch(*nn.Tensor, []float64, float64) float64 { return 0 }
func (s *stubModel) EvalBatch(*nn.Tensor, []float64) (float64, int, int) {
	return 0, 0, 1
}

// tinyDataset is the minimal dataset needed to build loaders for stub nodes.
func tinyDataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 2, Channels: 1, Height: 4, Width: 4, TrainPerClass: 4, TestPerClass: 2,
	}, vec.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func stubLoader(t *testing.T, ds *datasets.Dataset) *datasets.Loader {
	t.Helper()
	return datasets.NewLoader(ds, []int{0, 1, 2, 3}, 2, vec.NewRNG(2))
}

func TestAlphaDistributions(t *testing.T) {
	d := DefaultAlphas()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if m := d.Mean(); math.Abs(m-0.342857) > 1e-4 {
		t.Fatalf("default mean = %v", m)
	}
	rng := vec.NewRNG(3)
	counts := map[float64]int{}
	for i := 0; i < 7000; i++ {
		counts[d.Sample(rng)]++
	}
	for _, v := range d.Values {
		if c := counts[v]; c < 700 || c > 1300 {
			t.Fatalf("alpha %v drawn %d/7000 times, want ~1000", v, c)
		}
	}

	b20, err := BudgetAlphas(0.20)
	if err != nil {
		t.Fatal(err)
	}
	if m := b20.Mean(); math.Abs(m-0.19) > 1e-9 {
		t.Fatalf("20%% budget mean = %v", m)
	}
	b10, err := BudgetAlphas(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if m := b10.Mean(); math.Abs(m-0.0975) > 1e-9 {
		t.Fatalf("10%% budget mean = %v", m)
	}
	if _, err := BudgetAlphas(0.33); err == nil {
		t.Fatal("expected error for unknown budget")
	}
	if err := (AlphaDist{Values: []float64{2}, Probs: []float64{1}}).Validate(); err == nil {
		t.Fatal("alpha > 1 must be rejected")
	}
	if err := (AlphaDist{Values: []float64{0.5}, Probs: []float64{0.5}}).Validate(); err == nil {
		t.Fatal("probs != 1 must be rejected")
	}
}

// runConsensusRound drives one full communicate+aggregate round directly.
func runConsensusRound(t *testing.T, nodes []Node, g *topology.Graph, w []topology.Weights, round int) {
	t.Helper()
	payloads := make([][]byte, len(nodes))
	for i, n := range nodes {
		p, _, err := n.Share(round)
		if err != nil {
			t.Fatalf("node %d share: %v", i, err)
		}
		payloads[i] = p
	}
	for i, n := range nodes {
		msgs := map[int][]byte{}
		for _, j := range g.Neighbors(i) {
			msgs[j] = payloads[j]
		}
		if err := n.Aggregate(round, w[i], msgs); err != nil {
			t.Fatalf("node %d aggregate: %v", i, err)
		}
	}
}

// TestFullSharingConsensus: with no training, repeated D-PSGD averaging over
// a connected graph with doubly stochastic weights must drive all nodes to
// the uniform average of the initial vectors.
func TestFullSharingConsensus(t *testing.T) {
	ds := tinyDataset(t)
	rng := vec.NewRNG(4)
	const n = 8
	const dim = 33
	g, err := topology.Regular(n, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := topology.MetropolisHastings(g)

	var nodes []Node
	want := make([]float64, dim)
	for i := 0; i < n; i++ {
		params := make([]float64, dim)
		for k := range params {
			params[k] = rng.NormFloat64()
			want[k] += params[k] / n
		}
		node, err := NewFullSharing(i, &stubModel{params: params}, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, codec.Raw32{})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	for round := 0; round < 60; round++ {
		runConsensusRound(t, nodes, g, w, round)
	}
	for i, node := range nodes {
		got := make([]float64, dim)
		node.Model().CopyParams(got)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-3 {
				t.Fatalf("node %d param %d = %v, want consensus %v", i, k, got[k], want[k])
			}
		}
	}
}

// TestJWINSFullAlphaMatchesFullSharing: with alpha fixed at 100% and the
// wavelet enabled, JWINS shares every coefficient, so one round must produce
// (up to float32 wire quantization) the same averaged model as full-sharing.
func TestJWINSFullAlphaMatchesFullSharing(t *testing.T) {
	ds := tinyDataset(t)
	rng := vec.NewRNG(5)
	const n = 4
	const dim = 57
	g := topology.Ring(n)
	w := topology.MetropolisHastings(g)

	initial := make([][]float64, n)
	for i := range initial {
		initial[i] = make([]float64, dim)
		for k := range initial[i] {
			initial[i][k] = rng.NormFloat64()
		}
	}

	build := func(jwins bool) []Node {
		var nodes []Node
		for i := 0; i < n; i++ {
			model := &stubModel{params: vec.Clone(initial[i])}
			var node Node
			var err error
			if jwins {
				cfg := DefaultJWINSConfig()
				cfg.Alphas = FixedAlpha(1)
				cfg.FloatCodec = codec.Raw32{}
				node, err = NewJWINS(i, model, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, cfg, vec.NewRNG(uint64(100+i)))
			} else {
				node, err = NewFullSharing(i, model, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, codec.Raw32{})
			}
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, node)
		}
		return nodes
	}

	jwinsNodes := build(true)
	fullNodes := build(false)
	runConsensusRound(t, jwinsNodes, g, w, 0)
	runConsensusRound(t, fullNodes, g, w, 0)
	for i := range jwinsNodes {
		a := make([]float64, dim)
		b := make([]float64, dim)
		jwinsNodes[i].Model().CopyParams(a)
		fullNodes[i].Model().CopyParams(b)
		for k := range a {
			// float32 wire + DWT round trip: allow small tolerance.
			if math.Abs(a[k]-b[k]) > 1e-5 {
				t.Fatalf("node %d param %d: jwins %v vs full %v", i, k, a[k], b[k])
			}
		}
	}
}

// TestJWINSPartialConsensus: even with partial sharing, repeated rounds must
// drive nodes toward consensus on a connected graph.
func TestJWINSPartialConsensus(t *testing.T) {
	ds := tinyDataset(t)
	rng := vec.NewRNG(6)
	const n = 6
	const dim = 40
	g, err := topology.Regular(n, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := topology.MetropolisHastings(g)
	var nodes []Node
	for i := 0; i < n; i++ {
		params := make([]float64, dim)
		for k := range params {
			params[k] = rng.NormFloat64() * 3
		}
		cfg := DefaultJWINSConfig()
		cfg.FloatCodec = codec.Raw32{}
		node, err := NewJWINS(i, &stubModel{params: params}, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, cfg, vec.NewRNG(uint64(200+i)))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	spread := func() float64 {
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		vec.Fill(lo, math.Inf(1))
		vec.Fill(hi, math.Inf(-1))
		for _, node := range nodes {
			p := make([]float64, dim)
			node.Model().CopyParams(p)
			for k, v := range p {
				lo[k] = math.Min(lo[k], v)
				hi[k] = math.Max(hi[k], v)
			}
		}
		var worst float64
		for k := range lo {
			worst = math.Max(worst, hi[k]-lo[k])
		}
		return worst
	}
	before := spread()
	for round := 0; round < 80; round++ {
		runConsensusRound(t, nodes, g, w, round)
	}
	after := spread()
	if after > before/5 {
		t.Fatalf("JWINS did not contract disagreement: %v -> %v", before, after)
	}
}

func TestJWINSAlphaSampling(t *testing.T) {
	ds := tinyDataset(t)
	cfg := DefaultJWINSConfig()
	node, err := NewJWINS(0, &stubModel{params: make([]float64, 64)}, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, cfg, vec.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for round := 0; round < 60; round++ {
		if _, _, err := node.Share(round); err != nil {
			t.Fatal(err)
		}
		seen[node.LastAlpha] = true
		// Feed itself to keep state consistent (self-loop-free aggregate).
		if err := node.Aggregate(round, topology.Weights{Self: 1, Neighbor: map[int]float64{}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) < 4 {
		t.Fatalf("randomized cut-off drew only %d distinct alphas in 60 rounds", len(seen))
	}
	// Disabled cut-off always shares the mean.
	cfg.DisableRandomCutoff = true
	node2, err := NewJWINS(1, &stubModel{params: make([]float64, 64)}, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, cfg, vec.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		if _, _, err := node2.Share(round); err != nil {
			t.Fatal(err)
		}
		if math.Abs(node2.LastAlpha-cfg.Alphas.Mean()) > 1e-12 {
			t.Fatalf("disabled cut-off sampled %v, want mean %v", node2.LastAlpha, cfg.Alphas.Mean())
		}
		if err := node2.Aggregate(round, topology.Weights{Self: 1, Neighbor: map[int]float64{}}, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJWINSAccumulatorReset: coefficients shared in a round must have their
// importance score reset, while unshared ones keep accumulating.
func TestJWINSAccumulatorReset(t *testing.T) {
	ds := tinyDataset(t)
	cfg := DefaultJWINSConfig()
	cfg.DisableWavelet = true // parameter domain makes the bookkeeping transparent
	cfg.Alphas = FixedAlpha(0.25)
	cfg.FloatCodec = codec.Raw32{}
	dim := 16
	model := &stubModel{params: make([]float64, dim)}
	node, err := NewJWINS(0, model, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, cfg, vec.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	// Fabricate parameter changes before Share: indices 0-3 move a lot,
	// index 7 a little, so TopK with k = 25% * 16 = 4 selects exactly 0-3.
	model.params[0] = 10
	model.params[1] = 9
	model.params[2] = 8
	model.params[3] = 7
	model.params[7] = 0.1
	if _, _, err := node.Share(0); err != nil {
		t.Fatal(err)
	}
	if len(node.lastShared) != 4 {
		t.Fatalf("shared %d indices, want 4", len(node.lastShared))
	}
	for i, idx := range node.lastShared {
		if idx != i {
			t.Fatalf("shared indices %v, want [0 1 2 3]", node.lastShared)
		}
	}
	if err := node.Aggregate(0, topology.Weights{Self: 1, Neighbor: map[int]float64{}}, nil); err != nil {
		t.Fatal(err)
	}
	// Shared index 3 was reset; no averaging change happened (self weight 1),
	// so its score must be ~0 while index 7 keeps its accumulated score.
	if math.Abs(node.acc[3]) > 1e-6 {
		t.Fatalf("acc[3] = %v, want ~0 after reset", node.acc[3])
	}
	if math.Abs(node.acc[7]-0.1) > 1e-6 {
		t.Fatalf("acc[7] = %v, want 0.1 retained", node.acc[7])
	}
}

func TestRandomSamplingSeedRegeneration(t *testing.T) {
	ds := tinyDataset(t)
	dim := 50
	params := make([]float64, dim)
	for i := range params {
		params[i] = float64(i)
	}
	node, err := NewRandomSampling(0, &stubModel{params: params}, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, 0.2, codec.Raw32{}, vec.NewRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	payload, bd, err := node.Share(0)
	if err != nil {
		t.Fatal(err)
	}
	// Seeded metadata: constant-size regardless of k.
	if bd.Meta > 32 {
		t.Fatalf("seeded metadata too large: %d bytes", bd.Meta)
	}
	sv, err := codec.DecodeSparse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.Indices) != 10 {
		t.Fatalf("decoded %d indices, want 10", len(sv.Indices))
	}
	for pos, idx := range sv.Indices {
		if sv.Values[pos] != float64(float32(params[idx])) {
			t.Fatalf("value mismatch at %d", idx)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	ds := tinyDataset(t)
	model := &stubModel{params: make([]float64, 8)}
	loader := stubLoader(t, ds)
	if _, err := NewFullSharing(0, model, loader, TrainOpts{LR: 0, LocalSteps: 1}, nil); err == nil {
		t.Fatal("zero LR accepted")
	}
	if _, err := NewRandomSampling(0, model, loader, TrainOpts{LR: 0.1, LocalSteps: 1}, 1.5, nil, vec.NewRNG(1)); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	cfg := DefaultJWINSConfig()
	cfg.Wavelet = "nope"
	if _, err := NewJWINS(0, model, loader, TrainOpts{LR: 0.1, LocalSteps: 1}, cfg, vec.NewRNG(1)); err == nil {
		t.Fatal("unknown wavelet accepted")
	}
	cfg = DefaultJWINSConfig()
	cfg.Alphas = AlphaDist{}
	if _, err := NewJWINS(0, model, loader, TrainOpts{LR: 0.1, LocalSteps: 1}, cfg, vec.NewRNG(1)); err == nil {
		t.Fatal("empty alpha distribution accepted")
	}
}

func TestAggregateRejectsUnknownSender(t *testing.T) {
	ds := tinyDataset(t)
	node, err := NewFullSharing(0, &stubModel{params: make([]float64, 8)}, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, codec.Raw32{})
	if err != nil {
		t.Fatal(err)
	}
	payload, _, err := node.Share(0)
	if err != nil {
		t.Fatal(err)
	}
	err = node.Aggregate(0, topology.Weights{Self: 1, Neighbor: map[int]float64{}}, map[int][]byte{5: payload})
	if err == nil {
		t.Fatal("expected error for sender without weight")
	}
}
