package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/codec"
	"repro/internal/datasets"
	"repro/internal/dwt"
	"repro/internal/nn"
	"repro/internal/sparsify"
	"repro/internal/topology"
	"repro/internal/vec"
)

// JWINSConfig configures the JWINS node (Algorithm 1). The zero value is not
// usable; start from DefaultJWINSConfig.
type JWINSConfig struct {
	// Wavelet names the transform basis (default sym2, the paper's choice).
	Wavelet string
	// Levels is the decomposition depth (default 4, per the paper).
	Levels int
	// Alphas is the randomized cut-off distribution.
	Alphas AlphaDist
	// FloatCodec compresses shared coefficient values (default flate32).
	FloatCodec codec.FloatCodec

	// Ablation switches (Figure 8):
	// DisableWavelet ranks and averages in the raw parameter domain
	// (degenerates JWINS to accumulated TopK).
	DisableWavelet bool
	// DisableAccumulation ranks by the current round's change only.
	DisableAccumulation bool
	// DisableRandomCutoff always shares the mean of the alpha distribution.
	DisableRandomCutoff bool

	// AccumulateLiteralEq4 switches the accumulator update to the literal
	// reading of eq. (4): V <- zeroShared(V') + DWT(x^(t+1,0) - x^(t,0)),
	// which re-adds the local change for unshared coefficients. The default
	// (false) adds only the averaging-induced change DWT(x^(t+1,0) - x^(t,tau)),
	// so unshared coefficients accumulate the total round change exactly once.
	// See DESIGN.md, "Equation (4) ambiguity".
	AccumulateLiteralEq4 bool

	// BandAdaptive implements the paper's future-work direction of adapting
	// the selection to parameter structure: the round's coefficient budget K
	// is split across wavelet sub-bands in proportion to each band's
	// accumulated importance mass, and TopK runs inside each band. Ignored
	// when the wavelet is disabled.
	BandAdaptive bool

	// AccumulationDecay in (0, 1] multiplies the carried-over importance
	// scores before each round's update, discounting stale accumulated
	// changes — the concern Deep Gradient Compression (cited in Section V)
	// addresses with momentum correction. 0 or 1 keeps the paper's plain sum.
	AccumulationDecay float64
}

// DefaultJWINSConfig returns the paper's configuration: 4-level sym2 wavelets,
// the default alpha distribution, and flate32 value compression.
func DefaultJWINSConfig() JWINSConfig {
	return JWINSConfig{
		Wavelet:    "sym2",
		Levels:     4,
		Alphas:     DefaultAlphas(),
		FloatCodec: codec.PlaneFlate32{},
	}
}

// JWINSNode implements Algorithm 1 of the paper.
type JWINSNode struct {
	baseNode
	cfg       JWINSConfig
	transform dwt.Transform
	rng       *vec.RNG

	dim        int       // flat parameter dimension
	coeffDim   int       // coefficient vector dimension
	acc        []float64 // V: accumulated importance scores (coeff domain)
	params     []float64 // scratch: current parameters x^(t,tau)
	startPar   []float64 // x^(t,0)
	curCoeffs  []float64 // DWT(x^(t,tau)), computed in Share
	newCoeffs  []float64 // scratch for the averaged coefficients
	wsum       []float64 // scratch for present-weight sums
	lastShared []int     // indices shared this round (aliases topk scratch)

	// Reusable hot-path scratch: Share and Aggregate run every simulated
	// round on every node, so they must not allocate in steady state.
	deltaPar    []float64 // x^(t,tau) - x^(t,0)
	deltaCoeff  []float64 // DWT of the delta
	newParams   []float64 // inverse-transformed averaged parameters
	installed   []float64 // DWT of the installed parameters (eq. 4)
	startCoeffs []float64 // DWT of x^(t,0) (literal eq. 4 only, lazy)
	sharedVals  []float64 // gathered coefficient values for the payload
	topk        sparsify.TopKScratch
	dec         decodeScratch
	enc         codec.EncodeScratch

	// Band-adaptive selection scratch (BandAdaptive only): per-band masses,
	// the cross-band selection set, and the sorted result, reused per call so
	// the band path matches the flat path's zero steady-state allocations.
	bandMasses []float64
	bandSel    map[int]bool
	bandOut    []int

	// LastAlpha records the cut-off sampled in the most recent Share call
	// (instrumented for the Figure 3 experiment).
	LastAlpha float64
	// lastK is the budget derived from LastAlpha in the most recent
	// shareSelect, carried to shareEncode's dense-vs-sparse decision.
	lastK int
}

var _ Node = (*JWINSNode)(nil)

// NewJWINS builds a JWINS node. Each node owns its RNG (cut-off draws are
// independent across nodes, per Section III-B).
func NewJWINS(id int, model nn.Trainable, loader *datasets.Loader, opts TrainOpts, cfg JWINSConfig, rng *vec.RNG) (*JWINSNode, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Alphas.Validate(); err != nil {
		return nil, err
	}
	if cfg.FloatCodec == nil {
		cfg.FloatCodec = codec.PlaneFlate32{}
	}
	dim := model.ParamCount()
	var transform dwt.Transform
	if cfg.DisableWavelet {
		transform = dwt.Identity{N: dim}
	} else {
		if cfg.Wavelet == "" {
			cfg.Wavelet = "sym2"
		}
		if cfg.Levels <= 0 {
			cfg.Levels = 4
		}
		w, err := dwt.ByName(cfg.Wavelet)
		if err != nil {
			return nil, err
		}
		tr, err := dwt.NewTransformer(dim, w, cfg.Levels)
		if err != nil {
			return nil, err
		}
		transform = tr
	}
	cd := transform.CoeffLen()
	n := &JWINSNode{
		baseNode:   baseNode{id: id, model: model, loader: loader, opts: opts},
		cfg:        cfg,
		transform:  transform,
		rng:        rng,
		dim:        dim,
		coeffDim:   cd,
		acc:        make([]float64, cd),
		params:     make([]float64, dim),
		startPar:   make([]float64, dim),
		curCoeffs:  make([]float64, cd),
		newCoeffs:  make([]float64, cd),
		wsum:       make([]float64, cd),
		deltaPar:   make([]float64, dim),
		deltaCoeff: make([]float64, cd),
		newParams:  make([]float64, dim),
		installed:  make([]float64, cd),
	}
	model.CopyParams(n.startPar)
	return n, nil
}

// CoeffDim returns the wavelet coefficient dimension.
func (n *JWINSNode) CoeffDim() int { return n.coeffDim }

// Accumulator returns the live importance-score vector V (read-only use).
func (n *JWINSNode) Accumulator() []float64 { return n.acc }

// Share implements lines 5-8 of Algorithm 1: accumulate the wavelet-domain
// model change, sample the cut-off, select TopK of the accumulated scores,
// and encode the selected coefficients of DWT(x^(t,tau)) with compressed
// index metadata.
//
// The body is split into stages (sharePrep, shareSelect, shareEncode, with
// the two forward transforms between them) so SharePipeline can run the same
// stages for a batch of nodes through one shared plan; the per-node order of
// operations here is the reference the batch path must match bit for bit.
func (n *JWINSNode) Share(round int) ([]byte, codec.ByteBreakdown, error) {
	n.sharePrep()
	n.transform.Forward(n.deltaPar, n.deltaCoeff)
	n.shareSelect()
	// Share DWT(x^(t,tau))[I] with compressed indices (line 8).
	n.transform.Forward(n.params, n.curCoeffs)
	return n.shareEncode()
}

// sharePrep snapshots the model and computes the round's parameter change
// x^(t,tau) - x^(t,0) into deltaPar.
func (n *JWINSNode) sharePrep() {
	n.model.CopyParams(n.params)
	vec.DiffInto(n.deltaPar, n.params, n.startPar)
}

// shareSelect folds deltaCoeff — which must already hold DWT(deltaPar) —
// into the accumulator (eq. 3), samples the randomized cut-off (line 6), and
// selects the round's index set (line 7).
func (n *JWINSNode) shareSelect() {
	// V' = V + DWT(x^(t,tau) - x^(t,0))   (eq. 3)
	switch {
	case n.cfg.DisableAccumulation:
		copy(n.acc, n.deltaCoeff)
	case n.cfg.AccumulationDecay > 0 && n.cfg.AccumulationDecay < 1:
		vec.Scale(n.acc, n.cfg.AccumulationDecay)
		vec.Add(n.acc, n.deltaCoeff)
	default:
		vec.Add(n.acc, n.deltaCoeff)
	}

	// Randomized cut-off (line 6).
	alpha := n.cfg.Alphas.Mean()
	if !n.cfg.DisableRandomCutoff {
		alpha = n.cfg.Alphas.Sample(n.rng)
	}
	n.LastAlpha = alpha
	k := int(math.Round(alpha * float64(n.coeffDim)))
	if k < 1 {
		k = 1
	}
	if k > n.coeffDim {
		k = n.coeffDim
	}
	n.lastK = k

	// TopK over accumulated importance (line 7), optionally split per band.
	if n.cfg.BandAdaptive {
		n.lastShared = n.bandAdaptiveTopK(k)
	} else {
		n.lastShared = sparsify.TopKIndicesWith(&n.topk, n.acc, k)
	}
}

// shareEncode gathers and encodes the selected coefficients of curCoeffs —
// which must already hold DWT(params).
func (n *JWINSNode) shareEncode() ([]byte, codec.ByteBreakdown, error) {
	sv := codec.SparseVector{Dim: n.coeffDim}
	mode := codec.IndexGamma
	if n.lastK == n.coeffDim {
		mode = codec.IndexDense // full share: skip index metadata entirely
		sv.Values = n.curCoeffs
	} else {
		sv.Indices = n.lastShared
		n.sharedVals = sparsify.AppendGather(n.sharedVals[:0], n.curCoeffs, n.lastShared)
		sv.Values = n.sharedVals
	}
	return encodeSparsePayloadWith(&n.enc, sv, mode, n.cfg.FloatCodec)
}

// Aggregate implements lines 9-12 of Algorithm 1: average the received
// partial wavelet vectors with the node's own coefficients (per-coefficient,
// weight-normalized), invert the transform, and update the accumulator.
//
// Like Share, the body is split into stages (aggMerge, the inverse
// transform, aggInstall, the eq.-4 forward transform, aggFold) so
// AggregatePipeline can run the same stages for a batch of nodes through one
// shared plan; the per-node order of operations here is the reference the
// batch path must match bit for bit.
func (n *JWINSNode) Aggregate(round int, w topology.Weights, msgs map[int][]byte) error {
	if err := n.aggMerge(w, msgs); err != nil {
		return err
	}
	n.transform.Inverse(n.newCoeffs, n.newParams)
	n.aggInstall()
	if !n.cfg.DisableAccumulation {
		// Fold in the round's remaining model change (eq. 4).
		n.transform.Forward(n.newParams, n.installed)
	}
	n.aggFold()
	return nil
}

// SetDecodeCache attaches the fleet-shared decoded-payload cache; aggMerge
// then serves neighbor decodes from it instead of decoding per recipient.
func (n *JWINSNode) SetDecodeCache(c *DecodeCache) { n.dec.cache = c }

// aggMerge decodes the neighbor payloads (once fleet-wide when a
// DecodeCache is attached) and computes the weight-normalized partial
// average into newCoeffs (lines 9-10).
func (n *JWINSNode) aggMerge(w topology.Weights, msgs map[int][]byte) error {
	decoded, err := n.dec.decodeAll(n.coeffDim, w, msgs)
	if err != nil {
		n.dec.releaseHeld()
		return err
	}
	partialAverage(n.curCoeffs, w.Self, decoded, n.newCoeffs, n.wsum)
	n.dec.releaseHeld()
	return nil
}

// aggInstall installs the reconstructed model — newParams must already hold
// the inverse transform of newCoeffs — and resets V for the coefficients
// just shared (line 12, first half).
func (n *JWINSNode) aggInstall() {
	n.model.SetParams(n.newParams)
	if !n.cfg.DisableAccumulation {
		for _, idx := range n.lastShared {
			n.acc[idx] = 0
		}
	}
}

// aggFold folds the round's remaining change into the accumulator —
// installed must already hold DWT(newParams) when accumulation is on — and
// advances the round baseline x^(t+1,0).
func (n *JWINSNode) aggFold() {
	if !n.cfg.DisableAccumulation {
		if n.cfg.AccumulateLiteralEq4 {
			if n.startCoeffs == nil {
				n.startCoeffs = make([]float64, n.coeffDim)
			}
			n.transform.Forward(n.startPar, n.startCoeffs)
			for k := range n.acc {
				n.acc[k] += n.installed[k] - n.startCoeffs[k]
			}
		} else {
			for k := range n.acc {
				n.acc[k] += n.installed[k] - n.curCoeffs[k]
			}
		}
	}
	copy(n.startPar, n.newParams)
}

// bandAdaptiveTopK distributes the budget k over wavelet sub-bands
// proportionally to each band's accumulated |V| mass, then selects TopK
// inside each band. Bands whose share rounds to zero still contribute their
// single largest coefficient when mass is non-zero, and any remainder is
// filled from the globally best unselected coefficients.
// Every call runs through per-node scratch (bandMasses, bandSel, bandOut,
// the shared top-k scratch): the band path is on the share hot path for
// band-adaptive fleets and must stay allocation-free in steady state. Each
// top-k call's result is consumed before the next reuses the scratch; the
// returned slice stays valid until the next selection, like the flat path.
func (n *JWINSNode) bandAdaptiveTopK(k int) []int {
	tr, ok := n.transform.(*dwt.Transformer)
	if !ok {
		return sparsify.TopKIndicesWith(&n.topk, n.acc, k)
	}
	bands := tr.Bands()
	n.bandMasses = n.bandMasses[:0]
	var total float64
	for _, b := range bands {
		var m float64
		for _, v := range n.acc[b.Offset : b.Offset+b.Len] {
			m += math.Abs(v)
		}
		n.bandMasses = append(n.bandMasses, m)
		total += m
	}
	if total == 0 {
		return sparsify.TopKIndicesWith(&n.topk, n.acc, k)
	}
	if n.bandSel == nil {
		n.bandSel = make(map[int]bool, k)
	}
	clear(n.bandSel)
	selected := n.bandSel
	for bi, b := range bands {
		kb := int(math.Round(float64(k) * n.bandMasses[bi] / total))
		if kb == 0 && n.bandMasses[bi] > 0 {
			kb = 1
		}
		if kb > b.Len {
			kb = b.Len
		}
		if kb == 0 {
			continue
		}
		local := sparsify.TopKIndicesWith(&n.topk, n.acc[b.Offset:b.Offset+b.Len], kb)
		for _, li := range local {
			if len(selected) >= k {
				break
			}
			selected[b.Offset+li] = true
		}
	}
	// Fill any remainder from the global ranking.
	if len(selected) < k {
		for _, idx := range sparsify.TopKIndicesWith(&n.topk, n.acc, k+len(selected)) {
			if len(selected) >= k {
				break
			}
			selected[idx] = true
		}
	}
	n.bandOut = n.bandOut[:0]
	for idx := range selected {
		n.bandOut = append(n.bandOut, idx)
	}
	sort.Ints(n.bandOut)
	return n.bandOut
}

// encodeSparsePayloadWith wraps codec.EncodeSparseWith — the node's reusable
// encode scratch stages the intermediates; the returned payload itself is
// always freshly allocated — with shared error context.
func encodeSparsePayloadWith(s *codec.EncodeScratch, sv codec.SparseVector, mode codec.IndexMode, fc codec.FloatCodec) ([]byte, codec.ByteBreakdown, error) {
	buf, bd, err := codec.EncodeSparseWith(s, sv, mode, fc)
	if err != nil {
		return nil, bd, fmt.Errorf("core: encoding share payload: %w", err)
	}
	return buf, bd, nil
}
