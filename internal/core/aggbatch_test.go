package core

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/topology"
)

// ringExchange runs one full share+aggregate round over a ring: every node
// shares, then aggregates its two ring neighbors' payloads under uniform
// Metropolis weights. ref aggregates per-node; bat through AggregateBatch.
// Both fleets produce their own payloads (Share is deterministic, the fleets
// are bit-identical pair-wise, and payload buffers are freshly allocated).
func ringExchange(t *testing.T, ref, bat []*JWINSNode, pipe *AggregatePipeline, round int) {
	t.Helper()
	n := len(ref)
	share := func(fleet []*JWINSNode) [][]byte {
		payloads := make([][]byte, n)
		for i, nd := range fleet {
			p, _, err := nd.Share(round)
			if err != nil {
				t.Fatal(err)
			}
			payloads[i] = p
		}
		return payloads
	}
	weights := func(i int) topology.Weights {
		w := topology.Weights{Self: 1.0, Neighbor: map[int]float64{}}
		if n > 1 {
			w = topology.Weights{Self: 1.0 / 3, Neighbor: map[int]float64{
				(i + 1) % n: 1.0 / 3, (i + n - 1) % n: 1.0 / 3,
			}}
		}
		return w
	}
	msgsFor := func(payloads [][]byte, i int) map[int][]byte {
		if n == 1 {
			return nil
		}
		return map[int][]byte{
			(i + 1) % n:     payloads[(i+1)%n],
			(i + n - 1) % n: payloads[(i+n-1)%n],
		}
	}

	refPayloads := share(ref)
	for i, nd := range ref {
		if err := nd.Aggregate(round, weights(i), msgsFor(refPayloads, i)); err != nil {
			t.Fatal(err)
		}
	}

	batPayloads := share(bat)
	ws := make([]topology.Weights, n)
	msgs := make([]map[int][]byte, n)
	for i := range bat {
		ws[i] = weights(i)
		msgs[i] = msgsFor(batPayloads, i)
	}
	if err := pipe.AggregateBatch(bat, ws, msgs); err != nil {
		t.Fatal(err)
	}
}

// TestAggregateBatchBitIdenticalToPerNode is the aggregate half of the
// pipeline differential layer: across several configs (accumulation on/off,
// the literal eq.-4 variant, decay, band-adaptive selection, a batch of one)
// and three exchange rounds, a batched fleet's every per-node observable —
// installed model, accumulator, round baseline, next round's payload — must
// match the per-node Aggregate path bit for bit. A second pass attaches a
// shared DecodeCache to the batched fleet, proving cached decodes are
// indistinguishable from fresh ones.
func TestAggregateBatchBitIdenticalToPerNode(t *testing.T) {
	raw := DefaultJWINSConfig()
	raw.FloatCodec = codec.Raw32{}
	noAcc := DefaultJWINSConfig()
	noAcc.DisableAccumulation = true
	eq4 := DefaultJWINSConfig()
	eq4.AccumulateLiteralEq4 = true
	eq4.FloatCodec = codec.Raw32{}
	decay := DefaultJWINSConfig()
	decay.AccumulationDecay = 0.9
	band := DefaultJWINSConfig()
	band.BandAdaptive = true
	cases := []struct {
		name  string
		cfg   JWINSConfig
		batch int
	}{
		{"default-flate32", DefaultJWINSConfig(), 8},
		{"raw32", raw, 8},
		{"no-accumulation", noAcc, 8},
		{"literal-eq4", eq4, 8},
		{"decay", decay, 4},
		{"band-adaptive", band, 4},
		{"batch-of-one", raw, 1},
	}
	const dim = 700 // odd-ish dim exercises the padded layout
	for _, tc := range cases {
		for _, cached := range []bool{false, true} {
			name := tc.name
			if cached {
				name += "/decode-cache"
			}
			t.Run(name, func(t *testing.T) {
				ref := pipelineFleet(t, tc.batch, dim, tc.cfg)
				bat := pipelineFleet(t, tc.batch, dim, tc.cfg)
				if cached {
					dc := &DecodeCache{}
					for _, nd := range bat {
						nd.SetDecodeCache(dc)
					}
				}
				var pipe AggregatePipeline
				for round := 0; round < 3; round++ {
					perturb(ref, round)
					perturb(bat, round)
					ringExchange(t, ref, bat, &pipe, round)
					for i, rn := range ref {
						bn := bat[i]
						if !floatsBitEqual(rn.Model().(*stubModel).params, bn.Model().(*stubModel).params) {
							t.Fatalf("round %d node %d: models diverge after aggregate", round, i)
						}
						if !floatsBitEqual(rn.acc, bn.acc) {
							t.Fatalf("round %d node %d: accumulators diverge", round, i)
						}
						if !floatsBitEqual(rn.startPar, bn.startPar) {
							t.Fatalf("round %d node %d: round baselines diverge", round, i)
						}
						if rn.LastAlpha != bn.LastAlpha {
							t.Fatalf("round %d node %d: alpha %v vs %v", round, i, rn.LastAlpha, bn.LastAlpha)
						}
					}
				}
			})
		}
	}
}

// TestAggregateBatchPlanChecks covers the batch eligibility contract: mixed
// plans, identity transforms, and mis-sized inputs are rejected.
func TestAggregateBatchPlanChecks(t *testing.T) {
	cfg := DefaultJWINSConfig()
	nodes := pipelineFleet(t, 2, 256, cfg)
	other := pipelineFleet(t, 1, 300, cfg) // different dim -> different plan
	var pipe AggregatePipeline
	ws := []topology.Weights{{Self: 1}, {Self: 1}, {Self: 1}}
	msgs := make([]map[int][]byte, 3)
	if err := pipe.AggregateBatch(append(nodes, other...), ws, msgs); err == nil {
		t.Fatal("mixed-plan batch was not rejected")
	}
	noWavelet := DefaultJWINSConfig()
	noWavelet.DisableWavelet = true
	ident := pipelineFleet(t, 1, 256, noWavelet)
	if err := pipe.AggregateBatch(ident, ws[:1], msgs[:1]); err == nil {
		t.Fatal("identity-transform batch was not rejected")
	}
	if err := pipe.AggregateBatch(nodes, ws[:1], msgs[:2]); err == nil {
		t.Fatal("mis-sized inputs were not rejected")
	}
	if err := pipe.AggregateBatch(nil, nil, nil); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
}

// TestAggregateBatchAllocationBudget holds the batched aggregate to the
// engine's per-event ceiling: with warm scratch, the raw32 codec, and a
// shared decode cache, a batched aggregate must allocate no more per node
// than the per-node path's amortized scratch growth.
func TestAggregateBatchAllocationBudget(t *testing.T) {
	const (
		batch = 8
		dim   = 20_000
	)
	cfg := DefaultJWINSConfig()
	cfg.FloatCodec = codec.Raw32{}
	nodes := pipelineFleet(t, batch, dim, cfg)
	dc := &DecodeCache{}
	for _, nd := range nodes {
		nd.SetDecodeCache(dc)
	}
	var pipe AggregatePipeline
	ws := make([]topology.Weights, batch)
	msgs := make([]map[int][]byte, batch)
	round := 0
	warm := func() {
		perturb(nodes, round)
		payloads := make([][]byte, batch)
		for i, nd := range nodes {
			p, _, err := nd.Share(round)
			if err != nil {
				t.Fatal(err)
			}
			payloads[i] = p
		}
		round++
		for i := range nodes {
			ws[i] = topology.Weights{Self: 1.0 / 3, Neighbor: map[int]float64{
				(i + 1) % batch: 1.0 / 3, (i + batch - 1) % batch: 1.0 / 3,
			}}
			msgs[i] = map[int][]byte{
				(i + 1) % batch:         payloads[(i+1)%batch],
				(i + batch - 1) % batch: payloads[(i+batch-1)%batch],
			}
		}
		if err := pipe.AggregateBatch(nodes, ws, msgs); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm()
	// The share/map setup above allocates (payloads, weight maps); measure
	// only the batched aggregate itself.
	var aggAllocs float64
	full := func() {
		perturb(nodes, round)
		payloads := make([][]byte, batch)
		for i, nd := range nodes {
			p, _, err := nd.Share(round)
			if err != nil {
				t.Fatal(err)
			}
			payloads[i] = p
		}
		round++
		for i := range nodes {
			msgs[i] = map[int][]byte{
				(i + 1) % batch:         payloads[(i+1)%batch],
				(i + batch - 1) % batch: payloads[(i+batch-1)%batch],
			}
		}
		aggAllocs += testing.AllocsPerRun(1, func() {
			if err := pipe.AggregateBatch(nodes, ws, msgs); err != nil {
				t.Fatal(err)
			}
		})
	}
	const runs = 10
	for i := 0; i < runs; i++ {
		full()
	}
	perAgg := aggAllocs / runs / batch
	t.Logf("batched aggregate: %.2f allocs/aggregate (batch %d)", perAgg, batch)
	if perAgg > 4 {
		t.Fatalf("batched aggregate allocates %.2f per node, engine ceiling is 4", perAgg)
	}
}
