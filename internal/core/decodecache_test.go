package core

import (
	"sync"
	"testing"

	"repro/internal/codec"
)

// testPayload encodes a small dense vector whose values are a deterministic
// function of seed, returning a freshly allocated buffer each call — the
// same allocation discipline Share has, which the cache's identity keying
// relies on.
func testPayload(t *testing.T, dim int, seed float64) []byte {
	t.Helper()
	vals := make([]float64, dim)
	for i := range vals {
		vals[i] = seed + float64(i)
	}
	buf, _, err := codec.EncodeSparse(codec.SparseVector{Dim: dim, Values: vals},
		codec.IndexDense, codec.Raw32{})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func decodeRef(t *testing.T, buf []byte) codec.SparseVector {
	t.Helper()
	var sv codec.SparseVector
	if err := codec.DecodeSparseInto(&sv, buf); err != nil {
		t.Fatal(err)
	}
	return sv
}

// TestDecodeCacheServesDecodedPayload: a hit returns the identical decoded
// vector the miss produced, for the identical buffer, and the counters see
// one miss plus the hits.
func TestDecodeCacheServesDecodedPayload(t *testing.T) {
	dc := &DecodeCache{}
	buf := testPayload(t, 64, 1)
	want := decodeRef(t, buf)

	e1 := dc.acquire(3, buf)
	if e1.err != nil {
		t.Fatal(e1.err)
	}
	if !floatsBitEqual(e1.sv.Values, want.Values) || e1.sv.Dim != want.Dim {
		t.Fatal("miss decode differs from reference decode")
	}
	e2 := dc.acquire(3, buf)
	if e2 != e1 {
		t.Fatal("second acquire of the same buffer did not hit the cached entry")
	}
	hits, misses := dc.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	dc.release(e1)
	dc.release(e2)
}

// TestDecodeCacheReusedKeyNeverStale is the invalidation-correctness test
// the engine's churn and bounded-staleness paths depend on: a sender that
// re-broadcasts for the SAME iteration (a rejoin re-send, a deadline
// re-merge, a stale-inbox reuse) produces a new buffer with different
// contents, and the cache must decode that buffer — identity keying, not any
// (sender, iteration) key, decides hits. The recipient's per-node path would
// decode exactly what it was handed; the cache must never serve anything
// else.
func TestDecodeCacheReusedKeyNeverStale(t *testing.T) {
	dc := &DecodeCache{}
	const sender = 5
	first := testPayload(t, 64, 1)
	second := testPayload(t, 64, 2) // same sender, same nominal iteration, new bytes

	e1 := dc.acquire(sender, first)
	if e1.err != nil {
		t.Fatal(e1.err)
	}
	e2 := dc.acquire(sender, second)
	if e2.err != nil {
		t.Fatal(e2.err)
	}
	if e2 == e1 {
		t.Fatal("different payload served from a previous broadcast's entry")
	}
	if !floatsBitEqual(e2.sv.Values, decodeRef(t, second).Values) {
		t.Fatal("re-broadcast decoded to stale values")
	}
	// A third acquire of each buffer still resolves to its own entry.
	if dc.acquire(sender, first) != e1 || dc.acquire(sender, second) != e2 {
		t.Fatal("identity lookup confused the two broadcasts")
	}
	h, m := dc.Stats()
	if h != 2 || m != 2 {
		t.Fatalf("stats (%d hits, %d misses), want (2, 2)", h, m)
	}
}

// TestDecodeCacheEviction: a sender's slot set is bounded at decodeCacheWays;
// the oldest entry is evicted, and an evicted-but-held entry stays valid for
// its holder until released (epoch rotation severing edges mid-aggregate is
// exactly this shape).
func TestDecodeCacheEviction(t *testing.T) {
	dc := &DecodeCache{}
	bufs := make([][]byte, decodeCacheWays+1)
	entries := make([]*cacheEntry, decodeCacheWays+1)
	for i := range bufs {
		bufs[i] = testPayload(t, 32, float64(i))
		entries[i] = dc.acquire(7, bufs[i])
		if entries[i].err != nil {
			t.Fatal(entries[i].err)
		}
	}
	if got := len(dc.slots[7]); got != decodeCacheWays {
		t.Fatalf("sender slot holds %d entries, want %d", got, decodeCacheWays)
	}
	// The oldest entry was evicted while still held: its decoded view must
	// survive until release.
	if !entries[0].dead {
		t.Fatal("oldest entry was not retired on overflow")
	}
	if !floatsBitEqual(entries[0].sv.Values, decodeRef(t, bufs[0]).Values) {
		t.Fatal("held evicted entry lost its decoded values")
	}
	// Re-acquiring the evicted buffer is a miss into a fresh entry.
	again := dc.acquire(7, bufs[0])
	if again == entries[0] {
		t.Fatal("evicted entry resurrected on lookup")
	}
	for _, e := range entries {
		dc.release(e)
	}
	dc.release(again)
}

// TestDecodeCacheInvalidateSender: invalidation drops a sender's entries
// (releasing the retained payload references) without touching other
// senders, and entries still held at invalidation time recycle only at their
// last release.
func TestDecodeCacheInvalidateSender(t *testing.T) {
	dc := &DecodeCache{}
	a := dc.acquire(1, testPayload(t, 32, 1))
	b := dc.acquire(2, testPayload(t, 32, 2))
	dc.release(a)

	dc.InvalidateSender(1)
	if _, ok := dc.slots[1]; ok {
		t.Fatal("invalidated sender still has a slot set")
	}
	if len(dc.free) != 1 {
		t.Fatalf("released+invalidated entry not recycled (free list %d)", len(dc.free))
	}
	if _, ok := dc.slots[2]; !ok {
		t.Fatal("invalidation of sender 1 dropped sender 2's entries")
	}

	dc.InvalidateSender(2) // b still held: retire, don't recycle
	if len(dc.free) != 1 {
		t.Fatal("held entry recycled while a holder remains")
	}
	vals := decodeRef(t, testPayload(t, 32, 2))
	if !floatsBitEqual(b.sv.Values, vals.Values) {
		t.Fatal("held entry invalidated out from under its holder")
	}
	dc.release(b)
	if len(dc.free) != 2 {
		t.Fatal("entry not recycled at last release")
	}
}

// TestDecodeCacheConcurrentDecodeOnce: many goroutines acquiring the same
// buffer get one decode (the ready channel publishes it) and every acquirer
// observes the same values — the fan-out case the cache exists for.
func TestDecodeCacheConcurrentDecodeOnce(t *testing.T) {
	dc := &DecodeCache{}
	buf := testPayload(t, 256, 3)
	want := decodeRef(t, buf)
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := dc.acquire(9, buf)
			defer dc.release(e)
			if e.err != nil {
				errs <- e.err
				return
			}
			if !floatsBitEqual(e.sv.Values, want.Values) {
				errs <- errStaleDecode
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	h, m := dc.Stats()
	if m != 1 || h != workers-1 {
		t.Fatalf("stats (%d hits, %d misses), want (%d, 1)", h, m, workers-1)
	}
}

var errStaleDecode = &staleDecodeError{}

type staleDecodeError struct{}

func (*staleDecodeError) Error() string { return "concurrent acquirer observed wrong decoded values" }

// TestDecodeCacheErrorPropagates: a corrupt payload's decode error reaches
// every acquirer, exactly like the per-node decode path's error would.
func TestDecodeCacheErrorPropagates(t *testing.T) {
	dc := &DecodeCache{}
	corrupt := []byte{0xff, 0xff, 0xff}
	e1 := dc.acquire(4, corrupt)
	if e1.err == nil {
		t.Fatal("corrupt payload decoded without error")
	}
	e2 := dc.acquire(4, corrupt)
	if e2 != e1 || e2.err == nil {
		t.Fatal("hit on the corrupt entry did not surface the decode error")
	}
	dc.release(e1)
	dc.release(e2)
}
