package core

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/sparsify"
)

// bandNode builds a 16-dim, 2-level haar JWINS node whose coefficient layout
// is exactly [cA2: 0-3 | cD2: 4-7 | cD1: 8-15], with a zeroed accumulator
// the tests write into directly.
func bandNode(t *testing.T, disableWavelet bool) *JWINSNode {
	t.Helper()
	cfg := DefaultJWINSConfig()
	cfg.Wavelet = "haar"
	cfg.Levels = 2
	cfg.BandAdaptive = true
	cfg.DisableWavelet = disableWavelet
	cfg.FloatCodec = codec.Raw32{}
	nodes := pipelineFleet(t, 1, 16, cfg)
	n := nodes[0]
	if n.CoeffDim() != 16 {
		t.Fatalf("coeffDim %d, want 16", n.CoeffDim())
	}
	for i := range n.acc {
		n.acc[i] = 0
	}
	return n
}

func assertSelection(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("selected %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("selected %v, want %v", got, want)
		}
		if i > 0 && got[i] <= got[i-1] {
			t.Fatalf("selection %v not strictly ascending", got)
		}
	}
}

// TestBandAdaptiveZeroMassBands: bands with zero accumulated mass receive no
// budget; the whole budget lands in the single live band.
func TestBandAdaptiveZeroMassBands(t *testing.T) {
	n := bandNode(t, false)
	n.acc[0] = 5
	n.acc[1] = 3
	assertSelection(t, n.bandAdaptiveTopK(2), []int{0, 1})
}

// TestBandAdaptiveZeroTotalMass: an all-zero accumulator falls back to the
// global ranking, whose zero ties break toward the lowest indices.
func TestBandAdaptiveZeroTotalMass(t *testing.T) {
	n := bandNode(t, false)
	assertSelection(t, n.bandAdaptiveTopK(3), []int{0, 1, 2})
}

// TestBandAdaptiveTinyMassGetsOne: a band whose proportional budget rounds
// to zero still contributes its single largest coefficient when its mass is
// non-zero, and the k cap truncates in band order.
func TestBandAdaptiveTinyMassGetsOne(t *testing.T) {
	n := bandNode(t, false)
	n.acc[0] = 0.001 // cA2: rounds to zero budget, bumped to one
	for i := 8; i < 16; i++ {
		n.acc[i] = 1 // cD1 holds effectively all the mass
	}
	assertSelection(t, n.bandAdaptiveTopK(2), []int{0, 8})
}

// TestBandAdaptiveFullBudget: k = coeffDim selects everything.
func TestBandAdaptiveFullBudget(t *testing.T) {
	n := bandNode(t, false)
	for i := range n.acc {
		n.acc[i] = 1
	}
	want := make([]int, 16)
	for i := range want {
		want[i] = i
	}
	assertSelection(t, n.bandAdaptiveTopK(16), want)
}

// TestBandAdaptiveSingleBandFallback: without a wavelet the transform has a
// single (identity) band and no band table, so selection degrades to the
// plain global TopK.
func TestBandAdaptiveSingleBandFallback(t *testing.T) {
	n := bandNode(t, true)
	n.acc[3] = 2
	n.acc[11] = 5
	n.acc[12] = 1
	got := n.bandAdaptiveTopK(2)
	assertSelection(t, got, []int{3, 11})
	want := sparsify.TopKIndices(n.acc, 2)
	assertSelection(t, got, want)
}

// TestBandAdaptiveRemainderFill: when band budgets cannot absorb k (one live
// band shorter than k), the remainder comes from the global ranking in rank
// order — here the zero ties fill lowest-index-first — and the result stays
// ascending.
func TestBandAdaptiveRemainderFill(t *testing.T) {
	n := bandNode(t, false)
	for i := 4; i < 8; i++ {
		n.acc[i] = 1 // cD2 is the only live band, 4 slots, k = 6
	}
	assertSelection(t, n.bandAdaptiveTopK(6), []int{0, 1, 4, 5, 6, 7})
}
