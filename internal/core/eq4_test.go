package core

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/topology"
	"repro/internal/vec"
)

// buildLearningFleet creates a small JWINS fleet over a real model for
// end-to-end accumulator-variant comparisons.
func buildLearningFleet(t *testing.T, cfg JWINSConfig, seed uint64) ([]Node, *datasets.Dataset, *topology.Graph, []topology.Weights) {
	t.Helper()
	rng := vec.NewRNG(seed)
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Channels: 1, Height: 8, Width: 8, TrainPerClass: 30, TestPerClass: 8,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	parts, err := datasets.PartitionShards(ds, n, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.Regular(n, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := topology.MetropolisHastings(g)
	template := nn.NewMLP(64, 16, 4, rng.Split())
	initial := make([]float64, template.ParamCount())
	template.CopyParams(initial)
	var nodes []Node
	for i := 0; i < n; i++ {
		nodeRNG := rng.Split()
		model := nn.NewMLP(64, 16, 4, nodeRNG)
		model.SetParams(initial)
		loader := datasets.NewLoader(ds, parts[i], 8, nodeRNG.Split())
		node, err := NewJWINS(i, model, loader, TrainOpts{LR: 0.05, LocalSteps: 2}, cfg, nodeRNG.Split())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	return nodes, ds, g, w
}

func trainRounds(t *testing.T, nodes []Node, g *topology.Graph, w []topology.Weights, rounds int) {
	t.Helper()
	for round := 0; round < rounds; round++ {
		for _, nd := range nodes {
			nd.LocalTrain()
		}
		runConsensusRound(t, nodes, g, w, round)
	}
}

func meanAccuracy(ds *datasets.Dataset, nodes []Node) float64 {
	var acc float64
	for _, nd := range nodes {
		_, a := datasets.Evaluate(ds, nd.Model(), 16, 0)
		acc += a / float64(len(nodes))
	}
	return acc
}

// TestEq4VariantsBothLearn: the two readings of eq. (4) (see DESIGN.md) are
// both valid error-feedback schemes and must both reach useful accuracy.
func TestEq4VariantsBothLearn(t *testing.T) {
	for _, literal := range []bool{false, true} {
		cfg := DefaultJWINSConfig()
		cfg.FloatCodec = codec.Raw32{}
		cfg.AccumulateLiteralEq4 = literal
		nodes, ds, g, w := buildLearningFleet(t, cfg, 404)
		trainRounds(t, nodes, g, w, 25)
		if acc := meanAccuracy(ds, nodes); acc < 0.5 {
			t.Fatalf("literal=%v: accuracy %.2f, want > 0.5 (chance 0.25)", literal, acc)
		}
	}
}

// TestBandAdaptiveLearns: the band-adaptive extension must also train.
func TestBandAdaptiveLearns(t *testing.T) {
	cfg := DefaultJWINSConfig()
	cfg.FloatCodec = codec.Raw32{}
	cfg.BandAdaptive = true
	nodes, ds, g, w := buildLearningFleet(t, cfg, 505)
	trainRounds(t, nodes, g, w, 25)
	if acc := meanAccuracy(ds, nodes); acc < 0.5 {
		t.Fatalf("band-adaptive accuracy %.2f, want > 0.5", acc)
	}
}

// TestAccumulationDecayLearns: discounted accumulation (DGC-style staleness
// handling) must remain a working error-feedback scheme.
func TestAccumulationDecayLearns(t *testing.T) {
	cfg := DefaultJWINSConfig()
	cfg.FloatCodec = codec.Raw32{}
	cfg.AccumulationDecay = 0.9
	nodes, ds, g, w := buildLearningFleet(t, cfg, 606)
	trainRounds(t, nodes, g, w, 25)
	if acc := meanAccuracy(ds, nodes); acc < 0.5 {
		t.Fatalf("decayed-accumulation accuracy %.2f, want > 0.5", acc)
	}
}
