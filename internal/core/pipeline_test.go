package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/topology"
	"repro/internal/vec"
)

// pipelineFleet builds n identical-shape JWINS nodes with deterministic
// per-node parameters and RNG seeds, so two calls produce two fleets whose
// nodes are bit-identical pair-wise.
func pipelineFleet(t *testing.T, n, dim int, cfg JWINSConfig) []*JWINSNode {
	t.Helper()
	ds := tinyDataset(t)
	loader := stubLoader(t, ds)
	opts := TrainOpts{LR: 0.1, LocalSteps: 1}
	nodes := make([]*JWINSNode, n)
	for i := range nodes {
		params := make([]float64, dim)
		r := vec.NewRNG(uint64(100 + i))
		for j := range params {
			params[j] = r.NormFloat64()
		}
		node, err := NewJWINS(i, &stubModel{params: params}, loader, opts, cfg, vec.NewRNG(uint64(500+i)))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	return nodes
}

// perturb applies the same deterministic pseudo-training step to a fleet's
// models so share deltas are non-trivial.
func perturb(nodes []*JWINSNode, round int) {
	for i, n := range nodes {
		m := n.Model().(*stubModel)
		r := vec.NewRNG(uint64(9000 + 31*i + round))
		for j := range m.params {
			m.params[j] += 0.01 * r.NormFloat64()
		}
	}
}

func floatsBitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestShareBatchBitIdenticalToPerNode is the pipeline half of the
// differential test layer: for several configs (default, raw32, band
// adaptive, decayed accumulation, batch of one), a batched fleet's payloads
// and every per-node observable must match the per-node reference path bit
// for bit across rounds, including across an aggregate exchange.
func TestShareBatchBitIdenticalToPerNode(t *testing.T) {
	raw := DefaultJWINSConfig()
	raw.FloatCodec = codec.Raw32{}
	band := DefaultJWINSConfig()
	band.BandAdaptive = true
	decay := DefaultJWINSConfig()
	decay.AccumulationDecay = 0.9
	decay.FloatCodec = codec.Raw32{}
	cases := []struct {
		name  string
		cfg   JWINSConfig
		batch int
	}{
		{"default-flate32", DefaultJWINSConfig(), 8},
		{"raw32", raw, 8},
		{"band-adaptive", band, 4},
		{"decay", decay, 8},
		{"batch-of-one", raw, 1},
	}
	const dim = 700 // odd-ish dim exercises the padded layout
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := pipelineFleet(t, tc.batch, dim, tc.cfg)
			bat := pipelineFleet(t, tc.batch, dim, tc.cfg)
			var pipe SharePipeline
			payloads := make([][]byte, tc.batch)
			bds := make([]codec.ByteBreakdown, tc.batch)
			w := topology.Weights{Self: 1.0}
			for round := 0; round < 3; round++ {
				perturb(ref, round)
				perturb(bat, round)
				if err := pipe.ShareBatch(bat, payloads, bds); err != nil {
					t.Fatal(err)
				}
				for i, rn := range ref {
					refPayload, refBD, err := rn.Share(round)
					if err != nil {
						t.Fatal(err)
					}
					bn := bat[i]
					if !bytes.Equal(refPayload, payloads[i]) {
						t.Fatalf("round %d node %d: batched payload differs from per-node Share", round, i)
					}
					if refBD != bds[i] {
						t.Fatalf("round %d node %d: byte breakdown differs: %+v vs %+v", round, i, refBD, bds[i])
					}
					if rn.LastAlpha != bn.LastAlpha {
						t.Fatalf("round %d node %d: alpha %v vs %v", round, i, rn.LastAlpha, bn.LastAlpha)
					}
					if !floatsBitEqual(rn.acc, bn.acc) {
						t.Fatalf("round %d node %d: accumulators diverge", round, i)
					}
					if len(rn.lastShared) != len(bn.lastShared) {
						t.Fatalf("round %d node %d: selection sizes diverge", round, i)
					}
					for j := range rn.lastShared {
						if rn.lastShared[j] != bn.lastShared[j] {
							t.Fatalf("round %d node %d: selections diverge at %d", round, i, j)
						}
					}
					// Self-aggregate both fleets so persistent state (model,
					// startPar, accumulator fold) is exercised across rounds.
					if err := rn.Aggregate(round, w, nil); err != nil {
						t.Fatal(err)
					}
					if err := bn.Aggregate(round, w, nil); err != nil {
						t.Fatal(err)
					}
					if !floatsBitEqual(rn.Model().(*stubModel).params, bn.Model().(*stubModel).params) {
						t.Fatalf("round %d node %d: models diverge after aggregate", round, i)
					}
				}
			}
		})
	}
}

// TestShareBatchPlanChecks covers the batch eligibility contract: mixed
// plans and identity transforms are rejected, not silently mis-batched.
func TestShareBatchPlanChecks(t *testing.T) {
	cfg := DefaultJWINSConfig()
	nodes := pipelineFleet(t, 2, 256, cfg)
	other := pipelineFleet(t, 1, 300, cfg) // different dim -> different plan
	var pipe SharePipeline
	payloads := make([][]byte, 3)
	bds := make([]codec.ByteBreakdown, 3)
	if err := pipe.ShareBatch(append(nodes, other...), payloads, bds); err == nil {
		t.Fatal("mixed-plan batch was not rejected")
	}
	noWavelet := DefaultJWINSConfig()
	noWavelet.DisableWavelet = true
	ident := pipelineFleet(t, 1, 256, noWavelet)
	if ident[0].SharePlan() != nil {
		t.Fatal("identity transform reported a shared plan")
	}
	if err := pipe.ShareBatch(ident, payloads[:1], bds[:1]); err == nil {
		t.Fatal("identity-transform batch was not rejected")
	}
	if err := pipe.ShareBatch(nil, nil, nil); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
}

// TestShareBatchAllocationBudget holds the batch path to the engine's
// per-event allocation ceiling (<= 4 allocs/event, internal/perf): with warm
// scratch and the raw32 codec, a batched share must allocate no more per
// node than the per-node path — the payload, plus amortized scratch growth.
func TestShareBatchAllocationBudget(t *testing.T) {
	const (
		batch = 8
		dim   = 20_000
	)
	cfg := DefaultJWINSConfig()
	cfg.FloatCodec = codec.Raw32{}
	nodes := pipelineFleet(t, batch, dim, cfg)
	var pipe SharePipeline
	payloads := make([][]byte, batch)
	bds := make([]codec.ByteBreakdown, batch)
	round := 0
	warm := func() {
		perturb(nodes, round)
		round++
		if err := pipe.ShareBatch(nodes, payloads, bds); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm()
	perShare := testing.AllocsPerRun(20, warm) / batch
	t.Logf("batched share: %.2f allocs/share (batch %d)", perShare, batch)
	if perShare > 4 {
		t.Fatalf("batched share allocates %.2f per node, engine ceiling is 4", perShare)
	}
}
