package core

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/sparsify"
	"repro/internal/topology"
	"repro/internal/vec"
)

// FullSharingNode is standard D-PSGD: every round the whole parameter vector
// is exchanged and averaged with Metropolis-Hastings weights.
type FullSharingNode struct {
	baseNode
	fc     codec.FloatCodec
	dim    int
	params []float64
	newPar []float64
	wsum   []float64
	dec    decodeScratch
	enc    codec.EncodeScratch
}

var _ Node = (*FullSharingNode)(nil)

// NewFullSharing builds a full-sharing baseline node.
func NewFullSharing(id int, model nn.Trainable, loader *datasets.Loader, opts TrainOpts, fc codec.FloatCodec) (*FullSharingNode, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if fc == nil {
		fc = codec.PlaneFlate32{}
	}
	dim := model.ParamCount()
	return &FullSharingNode{
		baseNode: baseNode{id: id, model: model, loader: loader, opts: opts},
		fc:       fc,
		dim:      dim,
		params:   make([]float64, dim),
		newPar:   make([]float64, dim),
		wsum:     make([]float64, dim),
	}, nil
}

// Share implements Node: the dense parameter vector.
func (n *FullSharingNode) Share(round int) ([]byte, codec.ByteBreakdown, error) {
	n.model.CopyParams(n.params)
	sv := codec.SparseVector{Dim: n.dim, Values: n.params}
	return encodeSparsePayloadWith(&n.enc, sv, codec.IndexDense, n.fc)
}

// SetDecodeCache attaches the fleet-shared decoded-payload cache.
func (n *FullSharingNode) SetDecodeCache(c *DecodeCache) { n.dec.cache = c }

// Aggregate implements Node: the classic weighted average
// x_i <- w_ii x_i + sum_j w_ij x_j.
func (n *FullSharingNode) Aggregate(round int, w topology.Weights, msgs map[int][]byte) error {
	decoded, err := n.dec.decodeAll(n.dim, w, msgs)
	if err != nil {
		n.dec.releaseHeld()
		return err
	}
	partialAverage(n.params, w.Self, decoded, n.newPar, n.wsum)
	n.dec.releaseHeld()
	n.model.SetParams(n.newPar)
	return nil
}

// RandomSamplingNode shares a fixed-size uniformly random subset of
// parameters each round. Thanks to the common PRNG trick (Section II-B2),
// only the seed travels as metadata.
type RandomSamplingNode struct {
	baseNode
	fc       codec.FloatCodec
	fraction float64
	rng      *vec.RNG
	dim      int
	params   []float64
	newPar   []float64
	wsum     []float64
	vals     []float64
	dec      decodeScratch
	enc      codec.EncodeScratch
}

var _ Node = (*RandomSamplingNode)(nil)

// NewRandomSampling builds a random-sampling baseline node sharing the given
// fraction of parameters per round (the paper uses 37% to byte-match JWINS).
func NewRandomSampling(id int, model nn.Trainable, loader *datasets.Loader, opts TrainOpts, fraction float64, fc codec.FloatCodec, rng *vec.RNG) (*RandomSamplingNode, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("core: sharing fraction %v out of (0, 1]", fraction)
	}
	if fc == nil {
		fc = codec.PlaneFlate32{}
	}
	dim := model.ParamCount()
	return &RandomSamplingNode{
		baseNode: baseNode{id: id, model: model, loader: loader, opts: opts},
		fc:       fc,
		fraction: fraction,
		rng:      rng,
		dim:      dim,
		params:   make([]float64, dim),
		newPar:   make([]float64, dim),
		wsum:     make([]float64, dim),
	}, nil
}

// Share implements Node: seed-described random subset of raw parameters.
func (n *RandomSamplingNode) Share(round int) ([]byte, codec.ByteBreakdown, error) {
	n.model.CopyParams(n.params)
	k := int(n.fraction * float64(n.dim))
	if k < 1 {
		k = 1
	}
	if k >= n.dim {
		sv := codec.SparseVector{Dim: n.dim, Values: n.params}
		return encodeSparsePayloadWith(&n.enc, sv, codec.IndexDense, n.fc)
	}
	seed := n.rng.Uint64()
	indices := codec.SeededIndices(seed, n.dim, k)
	n.vals = sparsify.AppendGather(n.vals[:0], n.params, indices)
	sv := codec.SparseVector{
		Dim:    n.dim,
		Seed:   seed,
		Values: n.vals,
	}
	return encodeSparsePayloadWith(&n.enc, sv, codec.IndexSeed, n.fc)
}

// SetDecodeCache attaches the fleet-shared decoded-payload cache.
func (n *RandomSamplingNode) SetDecodeCache(c *DecodeCache) { n.dec.cache = c }

// Aggregate implements Node: per-parameter weighted average over providers.
func (n *RandomSamplingNode) Aggregate(round int, w topology.Weights, msgs map[int][]byte) error {
	decoded, err := n.dec.decodeAll(n.dim, w, msgs)
	if err != nil {
		n.dec.releaseHeld()
		return err
	}
	partialAverage(n.params, w.Self, decoded, n.newPar, n.wsum)
	n.dec.releaseHeld()
	n.model.SetParams(n.newPar)
	return nil
}
