package core

import (
	"fmt"

	"repro/internal/vec"
)

// AlphaDist is the randomized cut-off distribution of Section III-B: every
// round, every node independently samples a sharing fraction alpha from it.
// The expectation of the distribution is the communication budget.
type AlphaDist struct {
	Values []float64 // sharing fractions in (0, 1]
	Probs  []float64 // matching probabilities, summing to 1
}

// UniformAlphas builds the uniform distribution over the given fractions.
// The paper's default is Uniform{10, 15, 20, 25, 30, 40, 100}%.
func UniformAlphas(values ...float64) AlphaDist {
	probs := make([]float64, len(values))
	for i := range probs {
		probs[i] = 1 / float64(len(values))
	}
	return AlphaDist{Values: append([]float64(nil), values...), Probs: probs}
}

// DefaultAlphas is the paper's default cut-off distribution
// (uniform over {10, 15, 20, 25, 30, 40, 100}%, mean ~34%).
func DefaultAlphas() AlphaDist {
	return UniformAlphas(0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 1.00)
}

// BudgetAlphas returns the paper's low-budget distributions:
// budget 0.20 -> p(100%) = 0.1, p(10%) = 0.9;
// budget 0.10 -> p(100%) = 0.05, p(5%) = 0.95.
func BudgetAlphas(budget float64) (AlphaDist, error) {
	switch {
	case budget == 0.20:
		return AlphaDist{Values: []float64{1.00, 0.10}, Probs: []float64{0.1, 0.9}}, nil
	case budget == 0.10:
		return AlphaDist{Values: []float64{1.00, 0.05}, Probs: []float64{0.05, 0.95}}, nil
	default:
		return AlphaDist{}, fmt.Errorf("core: no predefined alpha distribution for budget %v", budget)
	}
}

// FixedAlpha is the degenerate distribution sharing fraction a every round
// (used by the "without randomized cut-off" ablation and random sampling).
func FixedAlpha(a float64) AlphaDist {
	return AlphaDist{Values: []float64{a}, Probs: []float64{1}}
}

// Validate checks the distribution is well formed.
func (d AlphaDist) Validate() error {
	if len(d.Values) == 0 || len(d.Values) != len(d.Probs) {
		return fmt.Errorf("core: alpha distribution needs matching values/probs, got %d/%d", len(d.Values), len(d.Probs))
	}
	var sum float64
	for i, v := range d.Values {
		if v <= 0 || v > 1 {
			return fmt.Errorf("core: alpha value %v out of (0, 1]", v)
		}
		if d.Probs[i] < 0 {
			return fmt.Errorf("core: negative probability %v", d.Probs[i])
		}
		sum += d.Probs[i]
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("core: alpha probabilities sum to %v, want 1", sum)
	}
	return nil
}

// Sample draws one sharing fraction.
func (d AlphaDist) Sample(rng *vec.RNG) float64 {
	u := rng.Float64()
	var cum float64
	for i, p := range d.Probs {
		cum += p
		if u < cum {
			return d.Values[i]
		}
	}
	return d.Values[len(d.Values)-1]
}

// Mean returns the expected sharing fraction (the communication budget).
func (d AlphaDist) Mean() float64 {
	var m float64
	for i, v := range d.Values {
		m += v * d.Probs[i]
	}
	return m
}
