package core

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/topology"
	"repro/internal/vec"
)

// TestBandAdaptiveSelectsBudget: the adaptive selector must return exactly k
// sorted distinct indices and keep the node functional over rounds.
func TestBandAdaptiveSelectsBudget(t *testing.T) {
	ds := tinyDataset(t)
	cfg := DefaultJWINSConfig()
	cfg.BandAdaptive = true
	cfg.Alphas = FixedAlpha(0.25)
	cfg.FloatCodec = codec.Raw32{}
	dim := 128
	model := &stubModel{params: make([]float64, dim)}
	node, err := NewJWINS(0, model, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, cfg, vec.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRNG(78)
	for round := 0; round < 5; round++ {
		for i := range model.params {
			model.params[i] += rng.NormFloat64() * 0.1
		}
		if _, _, err := node.Share(round); err != nil {
			t.Fatal(err)
		}
		k := int(0.25*float64(node.CoeffDim()) + 0.5)
		if len(node.lastShared) != k {
			t.Fatalf("round %d: selected %d indices, want %d", round, len(node.lastShared), k)
		}
		for i := 1; i < len(node.lastShared); i++ {
			if node.lastShared[i] <= node.lastShared[i-1] {
				t.Fatalf("indices not strictly increasing: %v", node.lastShared)
			}
		}
		if err := node.Aggregate(round, topology.Weights{Self: 1, Neighbor: map[int]float64{}}, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBandAdaptiveCoversActiveBands: when importance mass concentrates in
// one band, most of the budget must land there.
func TestBandAdaptiveCoversActiveBands(t *testing.T) {
	ds := tinyDataset(t)
	cfg := DefaultJWINSConfig()
	cfg.BandAdaptive = true
	cfg.DisableAccumulation = false
	cfg.Alphas = FixedAlpha(0.1)
	cfg.FloatCodec = codec.Raw32{}
	dim := 256
	model := &stubModel{params: make([]float64, dim)}
	node, err := NewJWINS(0, model, stubLoader(t, ds), TrainOpts{LR: 0.1, LocalSteps: 1}, cfg, vec.NewRNG(79))
	if err != nil {
		t.Fatal(err)
	}
	// A smooth (low-frequency) parameter change concentrates wavelet mass in
	// the approximation band, which occupies the front of the layout.
	for i := range model.params {
		model.params[i] = 5.0 // constant shift = pure low frequency
	}
	if _, _, err := node.Share(0); err != nil {
		t.Fatal(err)
	}
	front := 0
	cut := node.CoeffDim() / 8 // cA4+cD4 region for 4 levels
	for _, idx := range node.lastShared {
		if idx < cut {
			front++
		}
	}
	if front < len(node.lastShared)/2 {
		t.Fatalf("only %d/%d selections in the low-frequency region for a smooth change",
			front, len(node.lastShared))
	}
}
