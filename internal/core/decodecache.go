package core

import (
	"sync"

	"repro/internal/codec"
)

// decodeCacheWays bounds the live entries kept per sender. A sender has at
// most one payload per iteration, and recipients lag each other by at most
// the staleness window, so a few ways cover gossip and bounded-staleness
// inboxes; anything older is evicted and simply re-decoded on the rare
// late acquire.
const decodeCacheWays = 3

// DecodeCache is the fleet-level decoded-payload cache: every payload a
// sender broadcasts is decoded exactly once, into an immutable
// codec.SparseVector shared by all recipients, instead of once per
// recipient (a payload broadcast to d neighbors was decoded d times
// fleet-wide — entropy-decode and inflate dominate the aggregate micro for
// flate32/QSGD).
//
// Entries are keyed by the identity of the payload's backing array, not by
// (sender, iteration): churn and epoch state-sync can legitimately put a
// different byte slice under a reused key, and identity keying makes it
// structurally impossible to serve a vector the per-node decode path would
// not have produced for those exact bytes. The entry retains the payload
// slice itself, so its address cannot be recycled by the GC and reused by a
// later payload while the entry lives. InvalidateSender is therefore memory
// hygiene (drop a churned-out or disconnected sender's buffers), never a
// correctness requirement.
//
// A DecodeCache is safe for concurrent use: concurrent acquires of the same
// payload decode it once, with late arrivals waiting on the entry's ready
// channel. Decoded vectors are refcounted; callers must release every
// acquired entry once they no longer read its vector.
type DecodeCache struct {
	mu     sync.Mutex
	slots  map[int][]*cacheEntry
	free   []*cacheEntry
	hits   int64
	misses int64
}

// cacheEntry is one decoded payload. buf retains the encoded payload (the
// identity key), sv the decoded vector; both are immutable while the entry
// is discoverable. refs counts acquirers that have not released yet; dead
// marks entries evicted from their slot, recycled to the free list at the
// last release.
type cacheEntry struct {
	buf   []byte
	ready chan struct{}
	sv    codec.SparseVector
	err   error
	refs  int
	dead  bool
}

// acquire returns the decoded entry for payload, decoding it on first
// acquire. The caller owns one reference and must release it; the entry's
// sv and err are valid once acquire returns. payload must be non-empty.
func (c *DecodeCache) acquire(sender int, payload []byte) *cacheEntry {
	c.mu.Lock()
	for _, e := range c.slots[sender] {
		if len(e.buf) == len(payload) && &e.buf[0] == &payload[0] {
			e.refs++
			c.hits++
			c.mu.Unlock()
			<-e.ready
			return e
		}
	}
	e := c.newEntryLocked()
	e.buf = payload
	c.misses++
	if c.slots == nil {
		c.slots = make(map[int][]*cacheEntry)
	}
	s := append(c.slots[sender], e)
	if len(s) > decodeCacheWays {
		old := s[0]
		copy(s, s[1:])
		s = s[:len(s)-1]
		c.retireLocked(old)
	}
	c.slots[sender] = s
	c.mu.Unlock()

	e.err = codec.DecodeSparseInto(&e.sv, payload)
	close(e.ready)
	return e
}

// release drops one reference; the last release of an evicted entry
// recycles it (its decode buffers stay warm on the free list).
func (c *DecodeCache) release(e *cacheEntry) {
	c.mu.Lock()
	e.refs--
	if e.refs == 0 && e.dead {
		c.recycleLocked(e)
	}
	c.mu.Unlock()
}

// InvalidateSender drops every cached payload of one sender — called on
// churn (the node left) and on epoch rotation when the sender lost all its
// edges. Purely memory hygiene: identity keying already prevents stale
// serving (see the type comment).
func (c *DecodeCache) InvalidateSender(sender int) {
	c.mu.Lock()
	for _, e := range c.slots[sender] {
		c.retireLocked(e)
	}
	delete(c.slots, sender)
	c.mu.Unlock()
}

// Stats returns the lifetime hit/miss counters. Counts may vary slightly
// with parallelism (concurrent first acquires race for the miss), so they
// are telemetry, never part of determinism comparisons.
func (c *DecodeCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *DecodeCache) newEntryLocked() *cacheEntry {
	var e *cacheEntry
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		e = &cacheEntry{}
	}
	e.refs = 1
	e.dead = false
	e.err = nil
	e.ready = make(chan struct{})
	return e
}

// retireLocked evicts an entry from its slot: no new acquirer can find it,
// and it is recycled as soon as the last holder releases.
func (c *DecodeCache) retireLocked(e *cacheEntry) {
	e.dead = true
	if e.refs == 0 {
		c.recycleLocked(e)
	}
}

func (c *DecodeCache) recycleLocked(e *cacheEntry) {
	e.buf = nil // release the retained payload; sv capacity stays warm
	c.free = append(c.free, e)
}

// DecodeCacheUser is implemented by nodes whose aggregate path can serve
// decodes from a shared DecodeCache; the engine wires one cache into every
// node that supports it.
type DecodeCacheUser interface {
	SetDecodeCache(*DecodeCache)
}
