// Package core implements the paper's decentralized learning algorithms over
// a common Node interface: JWINS (wavelet ranking + accumulation + randomized
// cut-off + compressed metadata), full-sharing D-PSGD, and the
// random-sampling sparsification baseline. CHOCO-SGD lives in internal/choco.
//
// All algorithms follow the train-communicate-aggregate round structure of
// Section II-A: the simulation engine calls LocalTrain, then Share, delivers
// payloads along the topology, and calls Aggregate with the mixing weights.
package core

import (
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/topology"
)

// Node is one decentralized learning participant.
type Node interface {
	// ID returns the node's index in the topology.
	ID() int
	// LocalTrain runs the configured number of local SGD steps and returns
	// the mean train-batch loss.
	LocalTrain() float64
	// Share returns the payload this node broadcasts to all its neighbors in
	// the given round, with its model/metadata byte breakdown.
	Share(round int) ([]byte, codec.ByteBreakdown, error)
	// Aggregate merges the payloads received from neighbors (keyed by sender
	// id) using the node's mixing weights and installs the averaged model.
	Aggregate(round int, w topology.Weights, msgs map[int][]byte) error
	// Model exposes the trainable for evaluation.
	Model() nn.Trainable
}

// TrainOpts are the local-training hyperparameters shared by all algorithms
// (tuned once on full-sharing, per the paper's protocol).
type TrainOpts struct {
	LR         float64
	LocalSteps int // tau local SGD steps per communication round
}

func (o TrainOpts) validate() error {
	if o.LR <= 0 {
		return fmt.Errorf("core: learning rate must be positive, got %v", o.LR)
	}
	if o.LocalSteps <= 0 {
		return fmt.Errorf("core: local steps must be positive, got %d", o.LocalSteps)
	}
	return nil
}

// baseNode carries the state every algorithm shares: the model, the local
// data loader, and the training options.
type baseNode struct {
	id     int
	model  nn.Trainable
	loader *datasets.Loader
	opts   TrainOpts
}

func (b *baseNode) ID() int             { return b.id }
func (b *baseNode) Model() nn.Trainable { return b.model }

// LocalStepCount reports tau; the simulation's time model uses it.
func (b *baseNode) LocalStepCount() int { return b.opts.LocalSteps }

// LocalTrain implements the tau-step local SGD phase.
func (b *baseNode) LocalTrain() float64 {
	var total float64
	for s := 0; s < b.opts.LocalSteps; s++ {
		x, y := b.loader.Next()
		total += b.model.TrainBatch(x, y, b.opts.LR)
	}
	return total / float64(b.opts.LocalSteps)
}

// partialAverage performs the per-coefficient weighted average used by both
// JWINS (in the wavelet domain) and random sampling (in the parameter
// domain): each coefficient is averaged over the nodes that provided it,
// normalized by the sum of the weights actually present. own is the node's
// full coefficient vector; out receives the averaged vector (may alias own's
// backing array only if callers no longer need own). Dense payloads (nil
// Indices) take a branch-free full-vector pass instead of materializing an
// explicit [0, Dim) index set.
func partialAverage(own []float64, selfWeight float64, msgs []decodedMsg, out, wsum []float64) {
	for k := range out {
		out[k] = selfWeight * own[k]
		wsum[k] = selfWeight
	}
	for _, m := range msgs {
		if m.sv.Indices == nil {
			for k, v := range m.sv.Values {
				out[k] += m.weight * v
				wsum[k] += m.weight
			}
			continue
		}
		for pos, idx := range m.sv.Indices {
			out[idx] += m.weight * m.sv.Values[pos]
			wsum[idx] += m.weight
		}
	}
	for k := range out {
		out[k] /= wsum[k]
	}
}

// decodedMsg pairs a decoded sparse vector with its mixing weight. sv is a
// view: it aliases either the slot's own decode scratch (own) or an
// immutable shared DecodeCache entry — readers must treat it as read-only.
type decodedMsg struct {
	sv     codec.SparseVector
	own    codec.SparseVector
	weight float64
}

// decodeScratch holds one node's reusable payload-decoding state: the sorted
// sender list and one sparse-vector slot per neighbor, so steady-state
// aggregation decodes every payload into warm buffers. Each node owns one;
// it is not safe for concurrent use (nodes are single-threaded by the
// engines' per-node task chains). With a DecodeCache attached, slots alias
// shared cache entries instead of decoding locally; held tracks the entries
// to release once the aggregate no longer reads them.
type decodeScratch struct {
	senders []int
	msgs    []decodedMsg
	cache   *DecodeCache
	held    []*cacheEntry
}

// releaseHeld returns every cache entry acquired by the last decodeAll. Call
// it as soon as the decoded vectors are no longer read (after the partial
// average); safe to call when no cache is attached or nothing is held.
func (d *decodeScratch) releaseHeld() {
	for i, e := range d.held {
		d.cache.release(e)
		d.held[i] = nil
	}
	d.held = d.held[:0]
}

// decodeAll decodes neighbor payloads and attaches mixing weights, erroring
// on senders missing from the weight row (a topology/delivery bug) and on
// dimension mismatches. Dense payloads keep nil Indices (partialAverage
// handles them with a full-vector pass). Senders are processed in increasing
// id order so floating-point accumulation is bit-for-bit reproducible across
// runs (map iteration order is not). The returned slice and its sparse
// vectors are owned by the scratch and valid until its next use.
func (d *decodeScratch) decodeAll(dim int, w topology.Weights, msgs map[int][]byte) ([]decodedMsg, error) {
	d.senders = d.senders[:0]
	for from := range msgs {
		d.senders = append(d.senders, from)
	}
	sort.Ints(d.senders)
	for len(d.msgs) < len(d.senders) {
		d.msgs = append(d.msgs, decodedMsg{})
	}
	out := d.msgs[:len(d.senders)]
	for slot, from := range d.senders {
		buf := msgs[from]
		weight, ok := w.Neighbor[from]
		if !ok {
			return nil, fmt.Errorf("core: payload from %d but no mixing weight for it", from)
		}
		m := &out[slot]
		m.weight = weight
		if d.cache != nil && len(buf) > 0 {
			e := d.cache.acquire(from, buf)
			if e.err != nil {
				d.cache.release(e)
				return nil, fmt.Errorf("core: payload from %d: %w", from, e.err)
			}
			d.held = append(d.held, e)
			m.sv = e.sv
		} else {
			if err := codec.DecodeSparseInto(&m.own, buf); err != nil {
				return nil, fmt.Errorf("core: payload from %d: %w", from, err)
			}
			m.sv = m.own
		}
		if m.sv.Dim != dim {
			return nil, fmt.Errorf("core: payload from %d has dim %d, want %d", from, m.sv.Dim, dim)
		}
	}
	return out, nil
}
