package core

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/dwt"
	"repro/internal/topology"
)

// SharePlan returns the immutable DWT plan backing this node's transform, or
// nil when the transform is not plan-backed (the DisableWavelet ablation's
// Identity). Nodes returning the same *Plan can run through one SharePipeline
// batch.
func (n *JWINSNode) SharePlan() *dwt.Plan {
	if tr, ok := n.transform.(*dwt.Transformer); ok {
		return tr.Plan()
	}
	return nil
}

// SharePipeline runs the share phase of a batch of JWINS nodes through their
// fleet-shared DWT plan: stage by stage — model snapshot and delta, batched
// forward transform of the deltas, accumulator update + cut-off + top-k,
// batched forward transform of the current parameters, gather + encode —
// with one set of batch scratch instead of per-node ping-pong buffers.
//
// Every per-node observable (accumulator, selected indices, LastAlpha,
// encoded payload, RNG stream) is bit-identical to calling Share on each
// node in order: the stages are literally the same methods the per-node path
// runs, nodes are independent, and the batched transform is bit-identical to
// the looped one (see dwt's differential tests). A SharePipeline reuses its
// scratch across calls and is NOT safe for concurrent use.
type SharePipeline struct {
	scratch dwt.Scratch
	ins     [][]float64
	outs    [][]float64
}

// ShareBatch runs the share phase for all nodes, which must share one
// non-nil plan, writing each node's payload and byte breakdown into
// payloads/bds. (JWINSNode.Share ignores its round argument, so the batch
// needs none.) On error the batch stops at the first failing node, in batch
// order.
func (p *SharePipeline) ShareBatch(nodes []*JWINSNode, payloads [][]byte, bds []codec.ByteBreakdown) error {
	if len(nodes) == 0 {
		return nil
	}
	if len(payloads) != len(nodes) || len(bds) != len(nodes) {
		return fmt.Errorf("core: ShareBatch result slices sized %d/%d, want %d", len(payloads), len(bds), len(nodes))
	}
	plan := nodes[0].SharePlan()
	if plan == nil {
		return fmt.Errorf("core: ShareBatch node %d has no shared plan (identity transform)", nodes[0].ID())
	}
	for _, n := range nodes[1:] {
		if n.SharePlan() != plan {
			return fmt.Errorf("core: ShareBatch node %d does not share the batch plan", n.ID())
		}
	}

	// Stage 1: snapshot models and form parameter deltas.
	p.ins, p.outs = p.ins[:0], p.outs[:0]
	for _, n := range nodes {
		n.sharePrep()
		p.ins = append(p.ins, n.deltaPar)
		p.outs = append(p.outs, n.deltaCoeff)
	}
	// Stage 2: one batched pass turns every node's delta into coefficients.
	plan.ForwardBatch(p.ins, p.outs, &p.scratch)

	// Stage 3: accumulate, sample cut-offs, select indices (per-node RNGs).
	for _, n := range nodes {
		n.shareSelect()
	}

	// Stage 4: batched forward of the current parameters.
	p.ins, p.outs = p.ins[:0], p.outs[:0]
	for _, n := range nodes {
		p.ins = append(p.ins, n.params)
		p.outs = append(p.outs, n.curCoeffs)
	}
	plan.ForwardBatch(p.ins, p.outs, &p.scratch)

	// Stage 5: gather and encode each node's payload.
	for i, n := range nodes {
		payload, bd, err := n.shareEncode()
		if err != nil {
			return err
		}
		payloads[i], bds[i] = payload, bd
	}
	return nil
}

// AggregatePipeline is SharePipeline's mirror for lines 9-12 of Algorithm 1:
// the aggregate phase of a batch of plan-sharing JWINS nodes runs stage by
// stage — decode-or-cache-hit + partial average, batched inverse transform,
// model install + accumulator reset, batched forward transform for the
// eq.-4 update, accumulator fold — through one shared plan and one set of
// batch scratch.
//
// The stages are literally the same methods the per-node Aggregate runs, in
// the same per-node order, and the batched transforms are bit-identical to
// the looped ones (dwt's differential tests), so every per-node observable
// — installed model, accumulator, startPar baseline — matches calling
// Aggregate on each node in batch order bit for bit. An AggregatePipeline
// reuses its scratch across calls and is NOT safe for concurrent use.
type AggregatePipeline struct {
	scratch dwt.Scratch
	ins     [][]float64
	outs    [][]float64
}

// AggregateBatch runs the aggregate phase for all nodes, which must share
// one non-nil plan; ws[i] and msgs[i] are node i's mixing weights and
// received payloads. On a decode/weight error the batch stops at the first
// failing node (earlier nodes have merged but not installed — callers treat
// any error as fatal to the run, as the engine does).
func (p *AggregatePipeline) AggregateBatch(nodes []*JWINSNode, ws []topology.Weights, msgs []map[int][]byte) error {
	if len(nodes) == 0 {
		return nil
	}
	if len(ws) != len(nodes) || len(msgs) != len(nodes) {
		return fmt.Errorf("core: AggregateBatch input slices sized %d/%d, want %d", len(ws), len(msgs), len(nodes))
	}
	plan := nodes[0].SharePlan()
	if plan == nil {
		return fmt.Errorf("core: AggregateBatch node %d has no shared plan (identity transform)", nodes[0].ID())
	}
	for _, n := range nodes[1:] {
		if n.SharePlan() != plan {
			return fmt.Errorf("core: AggregateBatch node %d does not share the batch plan", n.ID())
		}
	}

	// Stage 1: decode (once fleet-wide under a DecodeCache) and partial-average.
	for i, n := range nodes {
		if err := n.aggMerge(ws[i], msgs[i]); err != nil {
			return err
		}
	}

	// Stage 2: one batched inverse pass reconstructs every node's parameters.
	p.ins, p.outs = p.ins[:0], p.outs[:0]
	for _, n := range nodes {
		p.ins = append(p.ins, n.newCoeffs)
		p.outs = append(p.outs, n.newParams)
	}
	plan.InverseBatch(p.ins, p.outs, &p.scratch)

	// Stage 3: install models and reset the shared accumulator entries.
	for _, n := range nodes {
		n.aggInstall()
	}

	// Stage 4: batched forward of the installed parameters (eq. 4), for the
	// accumulation-enabled nodes only.
	p.ins, p.outs = p.ins[:0], p.outs[:0]
	for _, n := range nodes {
		if n.cfg.DisableAccumulation {
			continue
		}
		p.ins = append(p.ins, n.newParams)
		p.outs = append(p.outs, n.installed)
	}
	plan.ForwardBatch(p.ins, p.outs, &p.scratch)

	// Stage 5: fold accumulators and advance the round baselines.
	for _, n := range nodes {
		n.aggFold()
	}
	return nil
}
