package core

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/dwt"
)

// SharePlan returns the immutable DWT plan backing this node's transform, or
// nil when the transform is not plan-backed (the DisableWavelet ablation's
// Identity). Nodes returning the same *Plan can run through one SharePipeline
// batch.
func (n *JWINSNode) SharePlan() *dwt.Plan {
	if tr, ok := n.transform.(*dwt.Transformer); ok {
		return tr.Plan()
	}
	return nil
}

// SharePipeline runs the share phase of a batch of JWINS nodes through their
// fleet-shared DWT plan: stage by stage — model snapshot and delta, batched
// forward transform of the deltas, accumulator update + cut-off + top-k,
// batched forward transform of the current parameters, gather + encode —
// with one set of batch scratch instead of per-node ping-pong buffers.
//
// Every per-node observable (accumulator, selected indices, LastAlpha,
// encoded payload, RNG stream) is bit-identical to calling Share on each
// node in order: the stages are literally the same methods the per-node path
// runs, nodes are independent, and the batched transform is bit-identical to
// the looped one (see dwt's differential tests). A SharePipeline reuses its
// scratch across calls and is NOT safe for concurrent use.
type SharePipeline struct {
	scratch dwt.Scratch
	ins     [][]float64
	outs    [][]float64
}

// ShareBatch runs the share phase for all nodes, which must share one
// non-nil plan, writing each node's payload and byte breakdown into
// payloads/bds. (JWINSNode.Share ignores its round argument, so the batch
// needs none.) On error the batch stops at the first failing node, in batch
// order.
func (p *SharePipeline) ShareBatch(nodes []*JWINSNode, payloads [][]byte, bds []codec.ByteBreakdown) error {
	if len(nodes) == 0 {
		return nil
	}
	if len(payloads) != len(nodes) || len(bds) != len(nodes) {
		return fmt.Errorf("core: ShareBatch result slices sized %d/%d, want %d", len(payloads), len(bds), len(nodes))
	}
	plan := nodes[0].SharePlan()
	if plan == nil {
		return fmt.Errorf("core: ShareBatch node %d has no shared plan (identity transform)", nodes[0].ID())
	}
	for _, n := range nodes[1:] {
		if n.SharePlan() != plan {
			return fmt.Errorf("core: ShareBatch node %d does not share the batch plan", n.ID())
		}
	}

	// Stage 1: snapshot models and form parameter deltas.
	p.ins, p.outs = p.ins[:0], p.outs[:0]
	for _, n := range nodes {
		n.sharePrep()
		p.ins = append(p.ins, n.deltaPar)
		p.outs = append(p.outs, n.deltaCoeff)
	}
	// Stage 2: one batched pass turns every node's delta into coefficients.
	plan.ForwardBatch(p.ins, p.outs, &p.scratch)

	// Stage 3: accumulate, sample cut-offs, select indices (per-node RNGs).
	for _, n := range nodes {
		n.shareSelect()
	}

	// Stage 4: batched forward of the current parameters.
	p.ins, p.outs = p.ins[:0], p.outs[:0]
	for _, n := range nodes {
		p.ins = append(p.ins, n.params)
		p.outs = append(p.outs, n.curCoeffs)
	}
	plan.ForwardBatch(p.ins, p.outs, &p.scratch)

	// Stage 5: gather and encode each node's payload.
	for i, n := range nodes {
		payload, bd, err := n.shareEncode()
		if err != nil {
			return err
		}
		payloads[i], bds[i] = payload, bd
	}
	return nil
}
