// prometheus.go renders a Registry in the Prometheus text exposition format
// (version 0.0.4), the lingua franca every scraper and `curl | grep` speaks.
// No client library is vendored; the format is a few lines of fmt.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus writes every registered metric in text exposition format.
// Histograms emit cumulative le buckets plus _sum and _count, matching what
// promtool and Grafana expect of a native histogram-typed series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()

	// Group by name so # HELP / # TYPE headers are emitted once per family
	// even when several labeled series share a name.
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	bw := bufio.NewWriter(w)
	prev := ""
	for _, e := range entries {
		if e.name != prev {
			prev = e.name
			if e.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", e.name, e.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, typeString(e.kind))
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", e.name, braced(e.label), e.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %d\n", e.name, braced(e.label), e.g.Value())
		case kindHistogram:
			writeHistogram(bw, e)
		}
	}
	return bw.Flush()
}

func typeString(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

func braced(label string) string {
	if label == "" {
		return ""
	}
	return "{" + label + "}"
}

// writeHistogram emits cumulative buckets: each le series counts observations
// at or below the bound, ending with le="+Inf" equal to _count.
func writeHistogram(w io.Writer, e *entry) {
	h := e.h
	sep := ""
	if e.label != "" {
		sep = e.label + ","
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", e.name, sep, formatBound(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", e.name, sep, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", e.name, braced(e.label), formatBound(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", e.name, braced(e.label), h.count.Load())
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
