// http.go is the -telemetry-addr endpoint shared by jwins-train and
// jwins-node: Prometheus exposition at /metrics, expvar at /debug/vars, and
// the full net/http/pprof surface at /debug/pprof/ — all stdlib, so a real
// cluster run gets live introspection without a single dependency.
package metrics

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// servedRegistries feeds the single global expvar var: expvar.Publish is
// process-global and panics on duplicate names, so every Serve call appends
// its registry here and "jwins_metrics" is published exactly once.
var (
	servedMu         sync.Mutex
	servedRegistries []*Registry
	publishOnce      sync.Once
)

func publishExpvar() {
	expvar.Publish("jwins_metrics", expvar.Func(func() any {
		servedMu.Lock()
		regs := append([]*Registry(nil), servedRegistries...)
		servedMu.Unlock()
		if len(regs) == 1 {
			return regs[0].Snapshot()
		}
		out := make([]*Snapshot, len(regs))
		for i, r := range regs {
			out[i] = r.Snapshot()
		}
		return out
	}))
}

// Server is a live telemetry HTTP listener. Close releases the port.
type Server struct {
	ln  net.Listener
	srv *http.Server
	reg *Registry
}

// Serve starts a telemetry server on addr (e.g. "127.0.0.1:9090", or ":0"
// for an ephemeral port — see Addr). The registry is scraped live: each
// /metrics request renders the current atomic values.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	servedMu.Lock()
	servedRegistries = append(servedRegistries, reg)
	servedMu.Unlock()
	publishOnce.Do(publishExpvar)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}, reg: reg}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and withdraws the registry from the expvar view.
// In-flight requests are abandoned; telemetry is best-effort by design.
func (s *Server) Close() error {
	servedMu.Lock()
	for i, r := range servedRegistries {
		if r == s.reg {
			servedRegistries = append(servedRegistries[:i], servedRegistries[i+1:]...)
			break
		}
	}
	servedMu.Unlock()
	return s.srv.Close()
}
