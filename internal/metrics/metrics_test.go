package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("jwins_test_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("jwins_test_depth", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Re-registration returns the same metric.
	if r.Counter("jwins_test_total", "") != c {
		t.Fatal("re-registered counter is a different instance")
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := New()
	h := r.Histogram("jwins_test_wait", "", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 5, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hs, ok := s.Histogram("jwins_test_wait")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	wantCounts := []int64{1, 2, 1, 1, 1} // (≤1, ≤2, ≤4, ≤8, +Inf)
	for i, w := range wantCounts {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Count != 6 {
		t.Fatalf("count = %d, want 6", hs.Count)
	}
	if want := 0.5 + 1.5 + 1.5 + 3 + 5 + 100; math.Abs(hs.Sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", hs.Sum, want)
	}
	if m := hs.Mean(); math.Abs(m-hs.Sum/6) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	// Boundary values land in the bucket whose bound equals them.
	h2 := r.Histogram("jwins_test_edge", "", []float64{1, 2})
	h2.Observe(1)
	h2.Observe(2)
	s2, _ := r.Snapshot().Histogram("jwins_test_edge")
	if s2.Counts[0] != 1 || s2.Counts[1] != 1 || s2.Counts[2] != 0 {
		t.Fatalf("boundary counts %v, want [1 1 0]", s2.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	hs := HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []int64{0, 100, 0, 0},
		Count:  100,
	}
	// All mass in (1,2]; the median interpolates to 1.5.
	if q := hs.Quantile(0.5); math.Abs(q-1.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 1.5", q)
	}
	if q := hs.Quantile(1); math.Abs(q-2) > 1e-9 {
		t.Fatalf("p100 = %v, want 2", q)
	}
	// Overflow bucket clamps to the last finite bound.
	over := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{0, 0, 5}, Count: 5}
	if q := over.Quantile(0.5); q != 2 {
		t.Fatalf("overflow p50 = %v, want 2", q)
	}
	empty := HistogramSnapshot{Bounds: []float64{1}}
	if q := empty.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty quantile = %v, want NaN", q)
	}
	if m := empty.Mean(); !math.IsNaN(m) {
		t.Fatalf("empty mean = %v, want NaN", m)
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	r := New()
	h := r.Histogram("jwins_test_alloc", "", ExpBuckets(1, 2, 12))
	c := r.Counter("jwins_test_alloc_total", "")
	g := r.Gauge("jwins_test_alloc_depth", "")
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(3.7)
		c.Inc()
		g.Set(9)
	})
	if allocs != 0 {
		t.Fatalf("hot-path metric ops allocate %.1f/op, want 0", allocs)
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	r := New()
	h := r.Histogram("jwins_test_conc", "", []float64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	s, _ := r.Snapshot().Histogram("jwins_test_conc")
	if s.Count != 8000 || s.Sum != 8000 {
		t.Fatalf("count=%d sum=%v, want 8000/8000", s.Count, s.Sum)
	}
}

func TestReset(t *testing.T) {
	r := New()
	c := r.Counter("jwins_test_total", "")
	h := r.Histogram("jwins_test_hist", "", []float64{1})
	c.Add(5)
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter after reset = %d", c.Value())
	}
	s, _ := r.Snapshot().Histogram("jwins_test_hist")
	if s.Count != 0 || s.Sum != 0 || s.Counts[0] != 0 {
		t.Fatalf("histogram after reset: %+v", s)
	}
	// Pointers stay live after reset.
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("counter dead after reset")
	}
}

func TestLabeledSeriesAndSnapshotKeys(t *testing.T) {
	r := New()
	r.CounterLabeled("jwins_events_total", `kind="train_done"`, "events").Add(3)
	r.CounterLabeled("jwins_events_total", `kind="arrival"`, "events").Add(4)
	s := r.Snapshot()
	if got := s.Counter(`jwins_events_total{kind="train_done"}`); got != 3 {
		t.Fatalf("labeled counter = %d, want 3", got)
	}
	if got := s.Counter(`jwins_events_total{kind="arrival"}`); got != 4 {
		t.Fatalf("labeled counter = %d, want 4", got)
	}
	if got := s.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
	var nilSnap *Snapshot
	if nilSnap.Counter("x") != 0 {
		t.Fatal("nil snapshot Counter should return 0")
	}
	if _, ok := nilSnap.Histogram("x"); ok {
		t.Fatal("nil snapshot Histogram should report absent")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("jwins_c", "").Add(2)
	r.Histogram("jwins_h", "", []float64{1, 2}).Observe(1.5)
	buf, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["jwins_c"] != 2 {
		t.Fatalf("round-tripped counter = %d", back.Counters["jwins_c"])
	}
	if h := back.Histograms["jwins_h"]; h.Count != 1 || h.Counts[1] != 1 {
		t.Fatalf("round-tripped histogram %+v", h)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("jwins_sends_total", "total sends").Add(12)
	r.Gauge("jwins_queue_depth", "queue depth").Set(5)
	h := r.Histogram("jwins_wait_seconds", "barrier wait", []float64{0.1, 1})
	// Binary-exact values so the shortest-float formatting is stable.
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(10)
	r.CounterLabeled("jwins_events_total", `kind="send"`, "").Add(7)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE jwins_sends_total counter",
		"jwins_sends_total 12",
		"# TYPE jwins_queue_depth gauge",
		"jwins_queue_depth 5",
		"# TYPE jwins_wait_seconds histogram",
		`jwins_wait_seconds_bucket{le="0.1"} 1`,
		`jwins_wait_seconds_bucket{le="1"} 2`,
		`jwins_wait_seconds_bucket{le="+Inf"} 3`,
		"jwins_wait_seconds_sum 10.5625",
		"jwins_wait_seconds_count 3",
		`jwins_events_total{kind="send"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestServeEndpoints(t *testing.T) {
	r := New()
	r.Counter("jwins_live_total", "").Add(99)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "jwins_live_total 99") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars missing memstats:\n%.200s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing goroutine profile:\n%.200s", body)
	}

	// A second server on another registry must not panic on expvar publish.
	r2 := New()
	srv2, err := Serve("127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	srv2.Close()
}

func TestMismatchedKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r := New()
	r.Counter("jwins_x", "")
	r.Gauge("jwins_x", "")
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("jwins_bench", "", ExpBuckets(1, 2, 14))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
	_ = fmt.Sprint(h.Count())
}
