// Package metrics is a zero-allocation telemetry registry for the engine hot
// path: counters, gauges, and fixed-bucket histograms backed by atomics.
//
// Design constraints, in order:
//
//   - Observe/Add/Set must not allocate and must not take locks — they run
//     inside the scheduler loop, which carries a CI-enforced ≤4 allocs/event
//     ceiling (internal/perf TestSchedulerAllocationCeiling).
//   - Metrics are observational only. Instrumented code must never branch on
//     a metric value: snapshots may vary with parallelism (speculation hit
//     rates do), but the scheduled state they observe may not, so the
//     record→replay and parallelism-invariance parity suites stay byte-exact
//     with telemetry enabled.
//   - Registration is cheap but locked; callers pre-register every metric at
//     setup and keep the returned pointers, so steady state is pure atomics.
//
// A Registry serializes to a point-in-time Snapshot (for Result rows, CSVs,
// and BENCH artifacts) and to Prometheus text exposition (for the
// -telemetry-addr HTTP endpoint, see Serve).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The zero value is unusable;
// obtain one from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Allocation-free.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one. Allocation-free.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 level (queue depth, live nodes, ...).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. Allocation-free.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative). Allocation-free.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative-friendly histogram. Bucket upper
// bounds are set at registration and never change; an implicit +Inf bucket
// catches overflow. Observe is lock-free and allocation-free: one binary
// search over the bounds, one atomic add, and a CAS loop folding the value
// into the float64 sum.
type Histogram struct {
	bounds []float64      // sorted upper bounds (exclusive of +Inf)
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// Observe records v. Allocation-free.
func (h *Histogram) Observe(v float64) {
	// First bucket whose bound is >= v; len(bounds) means +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type entry struct {
	name  string // Prometheus metric name, e.g. "jwins_engine_events_total"
	label string // optional single label pair, e.g. `kind="train_done"`
	help  string
	kind  metricKind
	c     *Counter
	g     *Gauge
	h     *Histogram
}

// key is the snapshot map key: name plus the label pair in braces when set.
func (e *entry) key() string {
	if e.label == "" {
		return e.name
	}
	return e.name + "{" + e.label + "}"
}

// Registry owns a set of named metrics. Registration takes a mutex (setup
// path); reads of registered metric pointers are lock-free.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byKey   map[string]*entry
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

func (r *Registry) register(e *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byKey[e.key()]; ok {
		if prev.kind != e.kind {
			panic(fmt.Sprintf("metrics: %s re-registered as a different kind", e.key()))
		}
		return prev
	}
	r.byKey[e.key()] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterLabeled(name, "", help)
}

// CounterLabeled registers a counter carrying one fixed label pair, given as
// a literal Prometheus label body, e.g. `kind="train_done"`.
func (r *Registry) CounterLabeled(name, label, help string) *Counter {
	e := r.register(&entry{name: name, label: label, help: help, kind: kindCounter, c: &Counter{}})
	return e.c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.register(&entry{name: name, help: help, kind: kindGauge, g: &Gauge{}})
	return e.g
}

// Histogram registers (or returns the existing) histogram under name with the
// given sorted bucket upper bounds. The bounds slice is copied.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramLabeled(name, "", help, bounds)
}

// HistogramLabeled registers a histogram carrying one fixed label pair (see
// CounterLabeled). Re-registration under the same name+label returns the
// existing histogram; its original bounds win.
func (r *Registry) HistogramLabeled(name, label, help string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: histogram %s bounds are not sorted", name))
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	e := r.register(&entry{name: name, label: label, help: help, kind: kindHistogram, h: h})
	return e.h
}

// Reset zeroes every registered metric (counts, gauges, histogram buckets and
// sums). Registration survives; pointers held by instrumented code stay
// valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		switch e.kind {
		case kindCounter:
			e.c.v.Store(0)
		case kindGauge:
			e.g.v.Store(0)
		case kindHistogram:
			for i := range e.h.counts {
				e.h.counts[i].Store(0)
			}
			e.h.sum.Store(0)
			e.h.count.Store(0)
		}
	}
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is +Inf
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Mean returns the average observed value, or NaN when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding the target rank. Values in the +Inf bucket clamp
// to the last finite bound. Returns NaN when the histogram is empty.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) { // +Inf bucket: clamp
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of a registry, safe to retain and
// serialize after the run that produced it has been torn down. Keys are the
// metric name with the label pair appended in braces when present.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every registered metric. Counters and empty histograms with
// zero values are included (callers filter if they want sparsity).
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, e := range r.entries {
		switch e.kind {
		case kindCounter:
			s.Counters[e.key()] = e.c.Value()
		case kindGauge:
			s.Gauges[e.key()] = e.g.Value()
		case kindHistogram:
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), e.h.bounds...),
				Counts: make([]int64, len(e.h.counts)),
				Sum:    math.Float64frombits(e.h.sum.Load()),
				Count:  e.h.count.Load(),
			}
			for i := range e.h.counts {
				hs.Counts[i] = e.h.counts[i].Load()
			}
			s.Histograms[e.key()] = hs
		}
	}
	return s
}

// Counter returns the named counter value, or 0 when absent.
func (s *Snapshot) Counter(key string) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[key]
}

// Histogram returns the named histogram snapshot and whether it exists.
func (s *Snapshot) Histogram(key string) (HistogramSnapshot, bool) {
	if s == nil {
		return HistogramSnapshot{}, false
	}
	h, ok := s.Histograms[key]
	return h, ok
}

// ExpBuckets returns n upper bounds starting at start, each factor× the
// previous — the standard shape for queue depths and byte sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}
